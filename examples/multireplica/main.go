// Multi-replica example: the paper's multi-GPU compatibility claim (§1),
// demonstrated with synchronous data-parallel replicas. A global batch is
// split across R "devices" (replicas), each of which additionally runs the
// coarse-grain batch-level parallelization internally; gradients combine
// in replica order, so the loss trace equals a single-device run over the
// same global batches — convergence invariance across devices.
//
//	go run ./examples/multireplica -replicas 4 -workers 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/net"
	"coarsegrain/internal/replica"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

func main() {
	var (
		replicas    = flag.Int("replicas", 4, "number of model replicas (devices)")
		workers     = flag.Int("workers", 2, "coarse-grain workers inside each replica")
		globalBatch = flag.Int("batch", 32, "global batch size")
		iters       = flag.Int("iters", 30, "training iterations")
	)
	flag.Parse()
	if *globalBatch%*replicas != 0 {
		log.Fatalf("global batch %d not divisible by %d replicas", *globalBatch, *replicas)
	}

	const seed = 21
	src := data.NewSyntheticMNIST(8**globalBatch, seed)
	cfg := solver.Config{Type: solver.SGD, BaseLR: 0.01, Momentum: 0.9}

	// Reference: one device over the full global batch.
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: *globalBatch, Seed: seed})
	check(err)
	single, err := net.New(specs, nil)
	check(err)
	sref, err := solver.New(cfg, single)
	check(err)
	fmt.Printf("single device, global batch %d ...\n", *globalBatch)
	ref := sref.Step(*iters)

	// Replicated: R devices, each over a shard, each with its own coarse
	// engine (batch-level parallelism composes with device parallelism).
	nets := make([]*net.Net, *replicas)
	var engines []core.Engine
	for r := 0; r < *replicas; r++ {
		shard, err := data.NewShard(src, r, *replicas, *globalBatch)
		check(err)
		rspecs, err := zoo.LeNet(shard, zoo.Options{BatchSize: shard.LocalBatch(), Seed: seed})
		check(err)
		eng := core.NewCoarse(*workers)
		engines = append(engines, eng)
		nets[r], err = net.New(rspecs, eng)
		check(err)
	}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	trainer, err := replica.New(nets, cfg)
	check(err)
	fmt.Printf("%d replicas x %d workers, local batch %d ...\n",
		*replicas, *workers, *globalBatch / *replicas)
	got := trainer.Step(*iters)

	fmt.Printf("\n%-6s %14s %14s %12s\n", "iter", "single", "replicated", "rel dev")
	worst := 0.0
	for i := range ref {
		rel := math.Abs(got[i]-ref[i]) / math.Max(ref[i], 1e-12)
		if rel > worst {
			worst = rel
		}
		if i%5 == 0 || i == len(ref)-1 {
			fmt.Printf("%-6d %14.6f %14.6f %12.2e\n", i+1, ref[i], got[i], rel)
		}
	}
	fmt.Printf("\nworst relative deviation: %.2e — the replicated loss trace is the\n", worst)
	fmt.Println("single-device trace: splitting the batch across devices with a")
	fmt.Println("synchronous ordered gradient combine changes no training parameter.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
