// Custom-layer example: the paper's *network-agnostic* headline claim,
// demonstrated. A brand-new "research-stage" layer — here Swish,
// x·sigmoid(βx), a post-2016 activation no library kernel existed for —
// is defined below in ~60 lines against the generic Layer contract. It
// immediately runs, in parallel, under the coarse-grain engine: no engine
// changes, no per-layer kernel, no "recoding efforts" (§3.3). Its
// learnable β even gets the privatized, order-reduced gradient treatment
// automatically.
//
//	go run ./examples/customlayer
package main

import (
	"fmt"
	"log"
	"math"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
)

// Swish is y = x * sigmoid(beta*x) with a learnable scalar beta
// (Ramachandran et al., 2017). The only parallelization work is declaring
// the coalesced loop: (sample, channel) planes, via ForwardExtent and
// disjoint ranges — everything the paper's transformation needs.
type Swish struct {
	beta          *blob.Blob // 1-element learnable parameter
	name          string
	extent, plane int
	propagateDown bool
}

// Interface conformance is the whole integration story.
var _ layers.Layer = (*Swish)(nil)

// NewSwish creates a Swish layer with beta initialized to 1.
func NewSwish(name string) *Swish {
	b := blob.Named(name+"_beta", 1)
	b.Data()[0] = 1
	return &Swish{beta: b, name: name, propagateDown: true}
}

func (l *Swish) Name() string         { return l.name }
func (l *Swish) Type() string         { return "Swish" }
func (l *Swish) Params() []*blob.Blob { return []*blob.Blob{l.beta} }
func (l *Swish) SetPropagateDown(f []bool) {
	if len(f) > 0 {
		l.propagateDown = f[0]
	}
}

func (l *Swish) SetUp(bottom, top []*blob.Blob) error {
	if len(bottom) != 1 || len(top) != 1 {
		return fmt.Errorf("swish: want 1 bottom and 1 top")
	}
	l.Reshape(bottom, top)
	return nil
}

func (l *Swish) Reshape(bottom, top []*blob.Blob) {
	top[0].ReshapeLike(bottom[0])
	l.extent = bottom[0].Dim(0)
	if bottom[0].AxisCount() >= 2 {
		l.extent *= bottom[0].Dim(1)
	}
	l.plane = bottom[0].Count() / l.extent
}

func (l *Swish) ForwardExtent() int { return l.extent }

func (l *Swish) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	beta := float64(l.beta.Data()[0])
	in, out := bottom[0].Data(), top[0].Data()
	for i := lo * l.plane; i < hi*l.plane; i++ {
		x := float64(in[i])
		out[i] = float32(x / (1 + math.Exp(-beta*x)))
	}
}

func (l *Swish) BackwardExtent() int { return l.extent }

func (l *Swish) BackwardRange(lo, hi int, bottom, top []*blob.Blob, paramGrads []*blob.Blob) {
	beta := float64(l.beta.Data()[0])
	in := bottom[0].Data()
	dy := top[0].Diff()
	dx := bottom[0].Diff()
	var dBeta float64
	for i := lo * l.plane; i < hi*l.plane; i++ {
		x := float64(in[i])
		s := 1 / (1 + math.Exp(-beta*x))
		y := x * s
		// dy/dx = s + beta*y*(1-s); dy/dbeta = x*y*(1-s).
		if l.propagateDown {
			dx[i] = dy[i] * float32(s+beta*y*(1-s))
		}
		dBeta += float64(dy[i]) * x * y * (1 - s)
	}
	paramGrads[0].Diff()[0] += float32(dBeta)
}

func main() {
	src := data.NewSyntheticMNIST(512, 31)
	d, err := layers.NewData("data", src, 32)
	check(err)
	conv, err := layers.NewConvolution("conv", layers.ConvConfig{
		NumOutput: 6, Kernel: 5, Stride: 2,
		WeightFiller: layers.XavierFiller{}, RNG: rng.New(31, 1),
	})
	check(err)
	ip, err := layers.NewInnerProduct("ip", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(31, 2),
	})
	check(err)

	engine := core.NewCoarse(4)
	defer engine.Close()
	network, err := net.New([]net.LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv"}},
		{Layer: NewSwish("swish"), Bottoms: []string{"conv"}, Tops: []string{"swish"}}, // <- the new layer
		{Layer: ip, Bottoms: []string{"swish"}, Tops: []string{"ip"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip", "label"}, Tops: []string{"loss"}},
		{Layer: layers.NewAccuracy("acc", 1), Bottoms: []string{"ip", "label"}, Tops: []string{"acc"}},
	}, engine)
	check(err)

	s, err := solver.New(solver.Config{Type: solver.SGD, BaseLR: 0.02, Momentum: 0.9}, network)
	check(err)

	fmt.Printf("training a net containing a custom Swish layer on %d coarse workers\n", engine.Workers())
	for e := 0; e < 5; e++ {
		losses := s.Step(20)
		acc, _ := network.Output("acc")
		var beta float32
		for _, l := range network.Layers() {
			if sw, ok := l.(*Swish); ok {
				beta = sw.beta.Data()[0]
			}
		}
		fmt.Printf("iter %3d  loss %.4f  acc %.2f  learned beta %.4f\n",
			s.Iter(), losses[len(losses)-1], acc, beta)
	}
	fmt.Println("\nthe Swish layer required zero engine changes — batch-level")
	fmt.Println("parallelism and privatized+ordered beta gradients came from the")
	fmt.Println("generic contract (the paper's network-agnostic property)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
