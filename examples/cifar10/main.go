// CIFAR-10 example: trains the paper's 14-layer CIFAR-10-full network
// from its prototxt definition (configs/cifar10_full.prototxt) and prints
// the per-layer profile organized into the three network levels the paper
// analyses in §4.2.1.
//
//	go run ./examples/cifar10                 # synthetic CIFAR
//	go run ./examples/cifar10 -data ~/cifar   # real binary batches
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/net"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/prototxt"
	"coarsegrain/internal/solver"
)

// levels is the paper's §4.2.1 decomposition of the CIFAR-10 network.
var levels = [][]string{
	{"cifar"},
	{"conv1", "pool1", "relu1", "norm1"},
	{"conv2", "relu2", "pool2", "norm2"},
	{"conv3", "relu3", "pool3"},
	{"ip1", "loss"},
}

func main() {
	var (
		iters   = flag.Int("iters", 40, "training iterations")
		batch   = flag.Int("batch", 32, "batch size (paper uses 100)")
		samples = flag.Int("samples", 512, "synthetic dataset size")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		model   = flag.String("model", "configs/cifar10_full.prototxt", "network prototxt")
		dataDir = flag.String("data", "", "directory with real CIFAR-10 binary batches")
	)
	flag.Parse()

	src, real := data.LoadCIFAR10(*dataDir, *samples, 11)
	fmt.Printf("CIFAR-10 source: real=%v, %d samples\n", real, src.Len())

	raw, err := os.ReadFile(*model)
	check(err)
	specs, err := prototxt.ParseNet(string(raw), prototxt.BuildOptions{
		Source: src, Seed: 11, BatchOverride: *batch,
	})
	check(err)

	engine := core.NewCoarse(*workers)
	defer engine.Close()
	network, err := net.New(specs, engine)
	check(err)
	fmt.Printf("built %d-layer CIFAR-10-full from %s\n", len(specs), *model)

	s, err := solver.New(solver.Config{
		Type: solver.SGD, BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.004, LRPolicy: "fixed",
	}, network)
	check(err)

	start := time.Now()
	for s.Iter() < *iters {
		losses := s.Step(min(10, *iters-s.Iter()))
		fmt.Printf("iter %4d  loss %.4f\n", s.Iter(), losses[len(losses)-1])
	}
	fmt.Printf("trained %d iterations in %v\n\n", *iters, time.Since(start).Round(time.Millisecond))

	// Per-level profile (the paper's three-level analysis).
	rec := profile.NewRecorder()
	network.SetRecorder(rec)
	network.ZeroParamDiffs()
	network.ForwardBackward()
	network.SetRecorder(nil)
	total := float64(rec.TotalMean().Microseconds())
	fmt.Println("per-level profile:")
	for li, names := range levels {
		var us float64
		for _, nm := range names {
			us += float64((rec.Mean(nm, profile.Forward) + rec.Mean(nm, profile.Backward)).Microseconds())
		}
		fmt.Printf("  level %d  %-28s %10.0f us (%4.1f%%)\n", li, strings.Join(names, "+"), us, us/total*100)
	}
	fmt.Printf("  iteration total %21s %10.0f us\n", "", total)
	fmt.Printf("\nprivatization scratch: %.1f KB over %d workers (network: %.1f MB)\n",
		float64(engine.ScratchBytes())/1024, engine.Workers(),
		float64(network.MemoryBytes())/(1<<20))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
