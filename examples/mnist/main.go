// MNIST example: trains the paper's LeNet benchmark network and compares
// the four execution engines (sequential, coarse-grain batch-parallel,
// fine-grain BLAS-parallel, tuned im2col+GEMM) on identical weights — the
// workload of the paper's Figures 4-6.
//
//	go run ./examples/mnist              # synthetic MNIST
//	go run ./examples/mnist -data ~/mnist -iters 500
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/net"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

func main() {
	var (
		iters   = flag.Int("iters", 100, "training iterations")
		batch   = flag.Int("batch", 64, "batch size")
		samples = flag.Int("samples", 1024, "synthetic dataset size")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		dataDir = flag.String("data", "", "directory with real MNIST files")
	)
	flag.Parse()

	src, real := data.LoadMNIST(*dataDir, *samples, 7)
	fmt.Printf("MNIST source: real=%v, %d samples\n", real, src.Len())

	// Train LeNet with the coarse-grain engine and the Caffe solver.
	engine := core.NewCoarse(*workers)
	defer engine.Close()
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: *batch, Seed: 7, Accuracy: true})
	check(err)
	network, err := net.New(specs, engine)
	check(err)
	s, err := solver.New(zoo.LeNetSolver(), network)
	check(err)

	fmt.Printf("training LeNet, batch %d, %d workers\n", *batch, *workers)
	start := time.Now()
	for s.Iter() < *iters {
		losses := s.Step(min(20, *iters-s.Iter()))
		acc, _ := network.Output("accuracy")
		fmt.Printf("iter %4d  loss %.4f  acc %.3f  lr %.5f\n",
			s.Iter(), losses[len(losses)-1], acc, s.LearningRate())
	}
	fmt.Printf("trained in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Per-layer profile under the trained weights (Figure 4's view).
	rec := profile.NewRecorder()
	network.SetRecorder(rec)
	for i := 0; i < 3; i++ {
		network.ZeroParamDiffs()
		network.ForwardBackward()
	}
	network.SetRecorder(nil)
	fmt.Println("per-layer profile (coarse engine):")
	fmt.Print(rec.Table())

	// Engine comparison on identical weights: every engine computes the
	// same loss (bitwise for coarse; within float tolerance for the
	// fine/tuned kernels, whose operation order differs).
	fmt.Println("\nengine comparison (same weights, same batch):")
	for _, mk := range []func() core.Engine{
		func() core.Engine { return core.NewSequential() },
		func() core.Engine { return core.NewCoarse(*workers) },
		func() core.Engine { return core.NewFine(*workers) },
		func() core.Engine { return core.NewTuned(*workers) },
	} {
		e := mk()
		fresh, err := zoo.LeNet(data.Subset{Src: src, N: src.Len()}, zoo.Options{BatchSize: *batch, Seed: 7})
		check(err)
		n2, err := net.New(fresh, e)
		check(err)
		check(n2.CopyParamsFrom(network))
		t0 := time.Now()
		loss := n2.ForwardBackward()
		fmt.Printf("  %-10s %8.3fms  loss %.6f\n", e.Name(), float64(time.Since(t0).Microseconds())/1000, loss)
		e.Close()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
