// Convergence-invariance demonstration: trains the same LeNet from the
// same initial weights under the sequential engine and under the
// coarse-grain engine at several worker counts, printing the loss traces
// side by side. The traces coincide (to float precision) because the
// batch-level parallelization changes no training parameter and merges
// gradients with a deterministic ordered reduction — the paper's central
// "convergence invariance" property (§1, §3.2.1).
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"
	"math"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/net"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

const (
	iterations = 30
	batch      = 16
	seed       = 123
)

func trace(engine core.Engine) []float64 {
	src := data.NewSyntheticMNIST(256, seed)
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: batch, Seed: seed})
	check(err)
	n, err := net.New(specs, engine)
	check(err)
	s, err := solver.New(zoo.LeNetSolver(), n)
	check(err)
	return s.Step(iterations)
}

func main() {
	workerCounts := []int{2, 4, 8}

	fmt.Println("training the same LeNet under different engines / worker counts")
	seq := trace(core.NewSequential())
	traces := [][]float64{seq}
	headers := []string{"sequential"}
	for _, w := range workerCounts {
		e := core.NewCoarse(w)
		traces = append(traces, trace(e))
		headers = append(headers, fmt.Sprintf("coarse/%d", w))
		e.Close()
	}

	fmt.Printf("\n%-6s", "iter")
	for _, h := range headers {
		fmt.Printf(" %12s", h)
	}
	fmt.Printf(" %12s\n", "max rel dev")
	worst := 0.0
	for i := 0; i < iterations; i++ {
		fmt.Printf("%-6d", i+1)
		var maxRel float64
		for _, tr := range traces {
			fmt.Printf(" %12.6f", tr[i])
			rel := math.Abs(tr[i]-seq[i]) / math.Max(seq[i], 1e-12)
			if rel > maxRel {
				maxRel = rel
			}
		}
		if maxRel > worst {
			worst = maxRel
		}
		fmt.Printf(" %12.2e\n", maxRel)
	}

	fmt.Printf("\nworst relative deviation from the sequential trace: %.2e\n", worst)
	fmt.Println("(identical hyperparameters at every worker count — the batch size,")
	fmt.Println(" learning rate and update order never change, so the convergence")
	fmt.Println(" behaviour is that of the sequential algorithm)")

	// Determinism at a fixed worker count is bitwise.
	e1 := core.NewCoarse(4)
	a := trace(e1)
	e1.Close()
	e2 := core.NewCoarse(4)
	b := trace(e2)
	e2.Close()
	bitwise := true
	for i := range a {
		if a[i] != b[i] {
			bitwise = false
		}
	}
	fmt.Printf("two coarse/4 runs bit-identical: %v\n", bitwise)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
