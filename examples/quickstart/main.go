// Quickstart: build a small convolutional network, train it with the
// coarse-grain (batch-level) parallel engine, and evaluate its accuracy —
// the minimal end-to-end use of the library's public surface.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
)

func main() {
	// 1. A data source: 512 synthetic MNIST-like digits (the loader uses
	//    the real MNIST files automatically when they exist on disk —
	//    see data.LoadMNIST).
	src := data.NewSyntheticMNIST(512, 42)

	// 2. Layers, wired by blob name into a feed-forward net:
	//    data -> conv(8 maps, 5x5/2) -> ReLU -> fc(10) -> softmax loss.
	seed := rng.New(42, 0)
	dataL, err := layers.NewData("data", src, 32)
	check(err)
	conv, err := layers.NewConvolution("conv", layers.ConvConfig{
		NumOutput: 8, Kernel: 5, Stride: 2,
		WeightFiller: layers.XavierFiller{}, RNG: seed.Split(1),
	})
	check(err)
	fc, err := layers.NewInnerProduct("fc", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: seed.Split(2),
	})
	check(err)

	// 3. The execution engine is where the paper's contribution lives:
	//    core.NewCoarse(P) parallelizes every layer's batch loop over P
	//    workers with privatized, order-reduced gradients. Swapping it
	//    for core.NewSequential() changes nothing about the training
	//    trajectory — that is the convergence-invariance property.
	engine := core.NewCoarse(runtime.GOMAXPROCS(0))
	defer engine.Close()

	network, err := net.New([]net.LayerSpec{
		{Layer: dataL, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv"}},
		{Layer: layers.NewReLU("relu", 0), Bottoms: []string{"conv"}, Tops: []string{"relu"}},
		{Layer: fc, Bottoms: []string{"relu"}, Tops: []string{"fc"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"fc", "label"}, Tops: []string{"loss"}},
		{Layer: layers.NewAccuracy("acc", 1), Bottoms: []string{"fc", "label"}, Tops: []string{"acc"}},
	}, engine)
	check(err)

	// 4. An SGD solver with momentum drives Algorithm 1.
	s, err := solver.New(solver.Config{
		Type: solver.SGD, BaseLR: 0.02, Momentum: 0.9,
	}, network)
	check(err)

	fmt.Printf("training on %d workers (%s engine)\n", engine.Workers(), engine.Name())
	for epoch := 0; epoch < 5; epoch++ {
		losses := s.Step(16)
		acc, err := network.Output("acc")
		check(err)
		fmt.Printf("after %3d iterations: loss %.4f, batch accuracy %.2f\n",
			s.Iter(), losses[len(losses)-1], acc)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
