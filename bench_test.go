// Package coarsegrain_test holds the testing.B benchmark suite: one
// benchmark family per table/figure of the paper's evaluation (DESIGN.md
// §3 maps each to its experiment id). Run with:
//
//	go test -bench=. -benchmem
//
// Wall-clock speedups across worker counts are only meaningful on a
// multi-core host; `cmd/dnnbench` additionally reports the calibrated
// model numbers that stand in for the paper's 16-core machine.
package coarsegrain_test

import (
	"fmt"
	"testing"

	"coarsegrain/internal/bench"
	"coarsegrain/internal/blas"
	"coarsegrain/internal/blob"
	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

// threadCounts is the paper's evaluated worker set.
var threadCounts = []int{1, 2, 4, 8, 12, 16}

// buildLeNet builds the MNIST benchmark net on an engine.
func buildLeNet(b *testing.B, batch int, eng core.Engine) *net.Net {
	b.Helper()
	src := data.NewSyntheticMNIST(4*batch, 1)
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: batch, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	n, err := net.New(specs, eng)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// buildCIFAR builds the CIFAR-10-full benchmark net (reduced batch so the
// direct convolutions fit benchmark time).
func buildCIFAR(b *testing.B, batch int, eng core.Engine) *net.Net {
	b.Helper()
	src := data.NewSyntheticCIFAR(4*batch, 1)
	specs, err := zoo.CIFARFull(src, zoo.Options{BatchSize: batch, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	n, err := net.New(specs, eng)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func iterate(b *testing.B, n *net.Net) {
	b.Helper()
	n.ZeroParamDiffs()
	n.ForwardBackward() // warm-up + shape settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
}

// --- Figures 4 & 6 (MNIST): full training iteration per engine/threads ---

func BenchmarkFigure6MNISTCoarse(b *testing.B) {
	for _, t := range threadCounts {
		b.Run(fmt.Sprintf("threads=%d", t), func(b *testing.B) {
			eng := core.NewCoarse(t)
			defer eng.Close()
			iterate(b, buildLeNet(b, 64, eng))
		})
	}
}

func BenchmarkFigure6MNISTSequential(b *testing.B) {
	iterate(b, buildLeNet(b, 64, core.NewSequential()))
}

func BenchmarkFigure6MNISTFine(b *testing.B) {
	eng := core.NewFine(16)
	defer eng.Close()
	iterate(b, buildLeNet(b, 64, eng))
}

func BenchmarkFigure6MNISTTuned(b *testing.B) {
	eng := core.NewTuned(16)
	defer eng.Close()
	iterate(b, buildLeNet(b, 64, eng))
}

// --- Figures 7 & 9 (CIFAR-10) ---

func BenchmarkFigure9CIFARCoarse(b *testing.B) {
	for _, t := range threadCounts {
		b.Run(fmt.Sprintf("threads=%d", t), func(b *testing.B) {
			eng := core.NewCoarse(t)
			defer eng.Close()
			iterate(b, buildCIFAR(b, 16, eng))
		})
	}
}

func BenchmarkFigure9CIFARSequential(b *testing.B) {
	iterate(b, buildCIFAR(b, 16, core.NewSequential()))
}

func BenchmarkFigure9CIFARTuned(b *testing.B) {
	eng := core.NewTuned(16)
	defer eng.Close()
	iterate(b, buildCIFAR(b, 16, eng))
}

// --- Figures 5 & 8: per-layer passes (the dominating layers) ---

// layerBench times one layer's forward or backward under an engine.
func layerBench(b *testing.B, mk func() (layers.Layer, []*blob.Blob, []*blob.Blob), eng core.Engine, backward bool) {
	b.Helper()
	l, bottoms, tops := mk()
	eng.Forward(l, bottoms, tops)
	if backward {
		r := rng.New(9, 9)
		for i := range tops[0].Diff() {
			tops[0].Diff()[i] = r.Range(-1, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if backward {
			for _, p := range l.Params() {
				p.ZeroDiff()
			}
			eng.Backward(l, bottoms, tops)
		} else {
			eng.Forward(l, bottoms, tops)
		}
	}
}

// mkConv1 replicates LeNet's conv1 geometry (batch 64, 1x28x28 -> 20x24x24).
func mkConv1(b *testing.B) func() (layers.Layer, []*blob.Blob, []*blob.Blob) {
	return func() (layers.Layer, []*blob.Blob, []*blob.Blob) {
		r := rng.New(3, 3)
		l, err := layers.NewConvolution("conv1", layers.ConvConfig{
			NumOutput: 20, Kernel: 5, WeightFiller: layers.XavierFiller{}, RNG: r,
		})
		if err != nil {
			b.Fatal(err)
		}
		bottom := blob.New(64, 1, 28, 28)
		for i := range bottom.Data() {
			bottom.Data()[i] = r.Range(0, 1)
		}
		tops := []*blob.Blob{blob.New()}
		if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
			b.Fatal(err)
		}
		return l, []*blob.Blob{bottom}, tops
	}
}

func BenchmarkFigure5Conv1(b *testing.B) {
	for _, t := range []int{1, 4, 16} {
		for _, phase := range []string{"fwd", "bwd"} {
			b.Run(fmt.Sprintf("%s/threads=%d", phase, t), func(b *testing.B) {
				eng := core.NewCoarse(t)
				defer eng.Close()
				layerBench(b, mkConv1(b), eng, phase == "bwd")
			})
		}
	}
}

// mkPool2 replicates LeNet's pool2 geometry (the poorly scaling layer).
func mkPool2(b *testing.B) func() (layers.Layer, []*blob.Blob, []*blob.Blob) {
	return func() (layers.Layer, []*blob.Blob, []*blob.Blob) {
		r := rng.New(4, 4)
		l, err := layers.NewPooling("pool2", layers.PoolConfig{Method: layers.MaxPool, Kernel: 2, Stride: 2})
		if err != nil {
			b.Fatal(err)
		}
		bottom := blob.New(64, 50, 8, 8)
		for i := range bottom.Data() {
			bottom.Data()[i] = r.Range(0, 1)
		}
		tops := []*blob.Blob{blob.New()}
		if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
			b.Fatal(err)
		}
		return l, []*blob.Blob{bottom}, tops
	}
}

func BenchmarkFigure5Pool2(b *testing.B) {
	for _, t := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("fwd/threads=%d", t), func(b *testing.B) {
			eng := core.NewCoarse(t)
			defer eng.Close()
			layerBench(b, mkPool2(b), eng, false)
		})
	}
}

// mkIP1 replicates LeNet's ip1 (800 -> 500), the other limiting layer.
func mkIP1(b *testing.B) func() (layers.Layer, []*blob.Blob, []*blob.Blob) {
	return func() (layers.Layer, []*blob.Blob, []*blob.Blob) {
		r := rng.New(5, 5)
		l, err := layers.NewInnerProduct("ip1", layers.IPConfig{
			NumOutput: 500, WeightFiller: layers.XavierFiller{}, RNG: r,
		})
		if err != nil {
			b.Fatal(err)
		}
		bottom := blob.New(64, 800)
		for i := range bottom.Data() {
			bottom.Data()[i] = r.Range(-1, 1)
		}
		tops := []*blob.Blob{blob.New()}
		if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
			b.Fatal(err)
		}
		return l, []*blob.Blob{bottom}, tops
	}
}

func BenchmarkFigure5IP1(b *testing.B) {
	for _, t := range []int{1, 4, 16} {
		for _, phase := range []string{"fwd", "bwd"} {
			b.Run(fmt.Sprintf("%s/threads=%d", phase, t), func(b *testing.B) {
				eng := core.NewCoarse(t)
				defer eng.Close()
				layerBench(b, mkIP1(b), eng, phase == "bwd")
			})
		}
	}
}

// --- Ablation A-red: ordered vs tree gradient reduction ---

func BenchmarkAblationReduction(b *testing.B) {
	for _, mode := range []core.ReductionMode{core.OrderedReduction, core.TreeReduction} {
		for _, t := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/threads=%d", mode, t), func(b *testing.B) {
				eng := core.NewCoarseWithReduction(t, mode)
				defer eng.Close()
				layerBench(b, mkIP1(b), eng, true)
			})
		}
	}
}

// --- Substrate benches: the BLAS kernels behind every layer ---

func BenchmarkGemm(b *testing.B) {
	r := rng.New(6, 6)
	for _, n := range []int{32, 128, 512} {
		a := make([]float32, n*n)
		bm := make([]float32, n*n)
		c := make([]float32, n*n)
		for i := range a {
			a[i] = r.Range(-1, 1)
			bm[i] = r.Range(-1, 1)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(3 * n * n * 4))
			for i := 0; i < b.N; i++ {
				blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
			}
		})
	}
}

func BenchmarkGemmParallel(b *testing.B) {
	r := rng.New(7, 7)
	n := 256
	a := make([]float32, n*n)
	bm := make([]float32, n*n)
	c := make([]float32, n*n)
	for i := range a {
		a[i] = r.Range(-1, 1)
		bm[i] = r.Range(-1, 1)
	}
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := par.NewPool(w)
			defer p.Close()
			for i := 0; i < b.N; i++ {
				blas.GemmParallel(p, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
			}
		})
	}
}

// BenchmarkGemmKernels times the retained reference kernel against the
// blocked packed kernel on the exact GEMM shapes the benchmark networks
// emit (bench.NetGemmShapes; PERFORMANCE.md records a run). SetBytes is
// the flop count, so the MB/s column reads directly as MFLOP/s.
func BenchmarkGemmKernels(b *testing.B) {
	r := rng.New(11, 11)
	for _, netName := range []string{"mnist", "cifar"} {
		for _, s := range bench.NetGemmShapes(netName) {
			arows, acols := s.M, s.K
			if s.TransA == blas.Trans {
				arows, acols = s.K, s.M
			}
			brows, bcols := s.K, s.N
			if s.TransB == blas.Trans {
				brows, bcols = s.N, s.K
			}
			a := make([]float32, arows*acols)
			bm := make([]float32, brows*bcols)
			c := make([]float32, s.M*s.N)
			for i := range a {
				a[i] = r.Range(-1, 1)
			}
			for i := range bm {
				bm[i] = r.Range(-1, 1)
			}
			flops := int64(2) * int64(s.M) * int64(s.N) * int64(s.K)
			b.Run(fmt.Sprintf("%s/%s/ref", netName, s.Name), func(b *testing.B) {
				b.SetBytes(flops)
				for i := 0; i < b.N; i++ {
					blas.GemmReference(s.TransA, s.TransB, s.M, s.N, s.K, 1, a, acols, bm, bcols, 0, c, s.N)
				}
			})
			b.Run(fmt.Sprintf("%s/%s/blocked", netName, s.Name), func(b *testing.B) {
				b.SetBytes(flops)
				for i := 0; i < b.N; i++ {
					blas.Gemm(s.TransA, s.TransB, s.M, s.N, s.K, 1, a, acols, bm, bcols, 0, c, s.N)
				}
			})
		}
	}
}

func BenchmarkIm2col(b *testing.B) {
	im := make([]float32, 3*32*32)
	outH := blas.ConvOutSize(32, 5, 2, 1)
	col := make([]float32, 3*5*5*outH*outH)
	b.SetBytes(int64(len(col) * 4))
	for i := 0; i < b.N; i++ {
		blas.Im2col(im, 3, 32, 32, 5, 5, 2, 2, 1, 1, col)
	}
}

// --- Convergence-experiment cost (T-conv): one training step ---

func BenchmarkTrainingStep(b *testing.B) {
	for _, t := range []int{1, 4} {
		b.Run(fmt.Sprintf("coarse/threads=%d", t), func(b *testing.B) {
			eng := core.NewCoarse(t)
			defer eng.Close()
			n := buildLeNet(b, 16, eng)
			s, err := solver.New(zoo.LeNetSolver(), n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(1)
			}
		})
	}
}

// --- Parallel runtime overhead (the model's RegionOverheadUS term) ---

func BenchmarkParallelRegion(b *testing.B) {
	for _, w := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := par.NewPool(w)
			defer p.Close()
			for i := 0; i < b.N; i++ {
				p.For(w, func(lo, hi, rank int) {})
			}
		})
	}
}

// --- Ablation: direct vs lowered (im2col+GEMM) convolution in the coarse
// path — the "research-stage code" vs "optimized library" contrast the
// paper's introduction draws. ---

func BenchmarkConvImplementation(b *testing.B) {
	for _, lowered := range []bool{false, true} {
		name := "direct"
		if lowered {
			name = "lowered"
		}
		b.Run(name, func(b *testing.B) {
			mk := func() (layers.Layer, []*blob.Blob, []*blob.Blob) {
				r := rng.New(10, 10)
				l, err := layers.NewConvolution("conv2", layers.ConvConfig{
					NumOutput: 50, Kernel: 5, Lowered: lowered,
					WeightFiller: layers.XavierFiller{}, RNG: r,
				})
				if err != nil {
					b.Fatal(err)
				}
				bottom := blob.New(64, 20, 12, 12) // LeNet conv2 geometry
				for i := range bottom.Data() {
					bottom.Data()[i] = r.Range(-1, 1)
				}
				tops := []*blob.Blob{blob.New()}
				if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
					b.Fatal(err)
				}
				return l, []*blob.Blob{bottom}, tops
			}
			eng := core.NewCoarse(1)
			defer eng.Close()
			layerBench(b, mk, eng, false)
		})
	}
}
