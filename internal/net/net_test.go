package net

import (
	"math"
	"strings"
	"testing"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/rng"
)

// tinyNet builds a small conv net on synthetic MNIST-like data:
// data -> conv(4,5x5) -> pool(2/2) -> ip(10) -> loss.
func tinyNet(t testing.TB, batch int, seed uint64, eng core.Engine) *Net {
	t.Helper()
	src := data.NewSyntheticMNIST(256, seed)
	d, err := layers.NewData("data", src, batch)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := layers.NewConvolution("conv1", layers.ConvConfig{
		NumOutput: 4, Kernel: 5, Stride: 2,
		WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := layers.NewPooling("pool1", layers.PoolConfig{Method: layers.MaxPool, Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := layers.NewInnerProduct("ip1", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 11),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New([]LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv1"}},
		{Layer: pool, Bottoms: []string{"conv1"}, Tops: []string{"pool1"}},
		{Layer: ip, Bottoms: []string{"pool1"}, Tops: []string{"ip1"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip1", "label"}, Tops: []string{"loss"}},
		{Layer: layers.NewAccuracy("acc", 1), Bottoms: []string{"ip1", "label"}, Tops: []string{"acc"}},
	}, eng)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetBuildAndShapes(t *testing.T) {
	n := tinyNet(t, 8, 1, nil)
	if got := n.Blob("data").Shape(); got[0] != 8 || got[1] != 1 || got[2] != 28 || got[3] != 28 {
		t.Fatalf("data shape %v", got)
	}
	// conv 5x5 stride 2 on 28 -> 12; pool 2/2 -> 6.
	if got := n.Blob("conv1").Shape(); got[2] != 12 {
		t.Fatalf("conv1 shape %v", got)
	}
	if got := n.Blob("pool1").Shape(); got[2] != 6 {
		t.Fatalf("pool1 shape %v", got)
	}
	if got := n.Blob("ip1").Shape(); got[1] != 10 {
		t.Fatalf("ip1 shape %v", got)
	}
	if len(n.Params()) != 4 { // conv w+b, ip w+b
		t.Fatalf("param count %d", len(n.Params()))
	}
	if len(n.ParamNames()) != 4 {
		t.Fatal("param names mismatch")
	}
	if len(n.Layers()) != 6 {
		t.Fatalf("layer count %d", len(n.Layers()))
	}
	if !strings.Contains(n.String(), "conv1") {
		t.Fatal("String() missing layer")
	}
}

func TestNetForwardProducesFiniteLoss(t *testing.T) {
	n := tinyNet(t, 8, 2, nil)
	loss := n.Forward()
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	// Untrained 10-class network: loss near ln(10).
	if loss < 1 || loss > 5 {
		t.Fatalf("untrained loss %v implausible", loss)
	}
	acc, err := n.Output("acc")
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestNetBackwardFillsGradients(t *testing.T) {
	n := tinyNet(t, 8, 3, nil)
	n.ZeroParamDiffs()
	n.ForwardBackward()
	for i, p := range n.Params() {
		if p.AsumDiff() == 0 {
			t.Fatalf("param %s has zero gradient", n.ParamNames()[i])
		}
	}
}

func TestNetErrors(t *testing.T) {
	src := data.NewSyntheticMNIST(16, 1)
	d, _ := layers.NewData("data", src, 4)
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty net accepted")
	}
	if _, err := New([]LayerSpec{{Layer: nil}}, nil); err == nil {
		t.Fatal("nil layer accepted")
	}
	// Unknown bottom.
	if _, err := New([]LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: layers.NewReLU("r", 0), Bottoms: []string{"nope"}, Tops: []string{"r"}},
	}, nil); err == nil {
		t.Fatal("unknown bottom accepted")
	}
	// Duplicate top that is NOT the layer's own bottom (not in-place).
	src2 := data.NewSyntheticMNIST(16, 1)
	d2, _ := layers.NewData("data", src2, 4)
	if _, err := New([]LayerSpec{
		{Layer: d2, Tops: []string{"data", "label"}},
		{Layer: layers.NewReLU("r", 0), Bottoms: []string{"data"}, Tops: []string{"label"}},
	}, nil); err == nil {
		t.Fatal("duplicate top accepted")
	}
}

func TestNetOutputErrors(t *testing.T) {
	n := tinyNet(t, 4, 4, nil)
	if _, err := n.Output("missing"); err == nil {
		t.Fatal("missing blob accepted")
	}
	if _, err := n.Output("data"); err == nil {
		t.Fatal("non-scalar blob accepted")
	}
}

func TestNetRecorderCollectsAllLayers(t *testing.T) {
	n := tinyNet(t, 8, 5, nil)
	rec := profile.NewRecorder()
	n.SetRecorder(rec)
	n.ForwardBackward()
	ls := rec.Layers()
	if len(ls) != 6 {
		t.Fatalf("recorded %d layers: %v", len(ls), ls)
	}
	if rec.Stat("conv1", profile.Forward).Count != 1 {
		t.Fatal("conv1 forward not recorded")
	}
	if rec.Stat("conv1", profile.Backward).Count != 1 {
		t.Fatal("conv1 backward not recorded")
	}
	// Accuracy has no backward (extent 0) and the data layer does not
	// backprop, so they are skipped in the backward pass.
	if rec.Stat("data", profile.Backward).Count != 0 {
		t.Fatal("data backward should be skipped")
	}
}

// The central claim: running the SAME network under different engines and
// worker counts produces the same forward loss (bitwise for coarse, whose
// forward has no reductions) and near-identical gradients.
func TestNetEngineEquivalence(t *testing.T) {
	ref := tinyNet(t, 16, 6, core.NewSequential())
	refLoss := ref.Forward()
	ref.Backward()

	engines := []core.Engine{
		core.NewCoarse(2), core.NewCoarse(5), core.NewCoarse(16),
		core.NewFine(4), core.NewTuned(4),
	}
	for _, e := range engines {
		n := tinyNet(t, 16, 6, e) // same seed -> same weights and data
		loss := n.Forward()
		n.Backward()
		if e.Name() == "coarse" {
			if loss != refLoss {
				t.Fatalf("%s/%d: loss %v != sequential %v (must be bitwise)", e.Name(), e.Workers(), loss, refLoss)
			}
		} else if math.Abs(loss-refLoss) > 1e-4 {
			t.Fatalf("%s: loss %v deviates from %v", e.Name(), loss, refLoss)
		}
		for i := range ref.Params() {
			a := ref.Params()[i].Diff()
			b := n.Params()[i].Diff()
			var m float64
			for j := range a {
				if d := math.Abs(float64(a[j] - b[j])); d > m {
					m = d
				}
			}
			if m > 2e-3 {
				t.Fatalf("%s/%d: param %d gradient deviates by %g", e.Name(), e.Workers(), i, m)
			}
		}
		e.Close()
	}
}

func TestNetCopyParamsFrom(t *testing.T) {
	a := tinyNet(t, 4, 7, nil)
	b := tinyNet(t, 4, 8, nil) // different seed -> different weights
	if err := b.CopyParamsFrom(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Params() {
		av := a.Params()[i].Data()
		bv := b.Params()[i].Data()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatal("params not copied")
			}
		}
	}
}

func TestNetSetEngineHotSwap(t *testing.T) {
	n := tinyNet(t, 8, 9, nil)
	l1 := n.Forward()
	e := core.NewCoarse(3)
	defer e.Close()
	n.SetEngine(e)
	if n.Engine() != e {
		t.Fatal("engine not swapped")
	}
	// Next batch differs (cursor advanced), but must still be finite.
	l2 := n.Forward()
	if math.IsNaN(l2) || l2 <= 0 {
		t.Fatalf("loss after engine swap: %v (first %v)", l2, l1)
	}
}

func TestNetMemoryBytes(t *testing.T) {
	n := tinyNet(t, 8, 10, nil)
	if n.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
	// data blob alone: 8*1*28*28 floats * 2 buffers * 4 bytes.
	if n.MemoryBytes() < int64(8*28*28*8) {
		t.Fatal("memory total implausibly small")
	}
}

func TestNetSetTrainTogglesDropout(t *testing.T) {
	src := data.NewSyntheticMNIST(16, 1)
	d, _ := layers.NewData("data", src, 4)
	drop, err := layers.NewDropout("drop", 0.5, rng.New(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	n, err := New([]LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: drop, Bottoms: []string{"data"}, Tops: []string{"dropped"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.SetTrain(false)
	n.Forward()
	in := n.Blob("data").Data()
	out := n.Blob("dropped").Data()
	for i := range in {
		if in[i] != out[i] {
			t.Fatal("dropout active in test mode")
		}
	}
}

// Propagation analysis: the first conv's bottom (data) needs no gradient,
// so its propagateDown must be disabled and the data blob diff untouched.
func TestNetDisablesGradientIntoData(t *testing.T) {
	n := tinyNet(t, 8, 11, nil)
	dataBlob := n.Blob("data")
	for i := range dataBlob.Diff() {
		dataBlob.Diff()[i] = 42
	}
	n.ForwardBackward()
	for _, v := range dataBlob.Diff() {
		if v != 42 {
			t.Fatal("gradient propagated into the data blob")
		}
	}
	// But the conv's own weights did get gradients.
	if n.Params()[0].AsumDiff() == 0 {
		t.Fatal("conv weights got no gradient")
	}
}

// Two gradient-producing consumers of one blob must be rejected: bottom
// diffs overwrite, so the second writer would silently clobber the first.
func TestNetRejectsConflictingGradientWriters(t *testing.T) {
	src := data.NewSyntheticMNIST(16, 1)
	d, _ := layers.NewData("data", src, 4)
	ipA, _ := layers.NewInnerProduct("ipA", layers.IPConfig{NumOutput: 10, RNG: rng.New(1, 1)})
	ipB, _ := layers.NewInnerProduct("ipB", layers.IPConfig{NumOutput: 10, RNG: rng.New(1, 2)})
	// Both inner products consume (and would backprop into) "mid".
	relu := layers.NewReLU("mid", 0)
	conv, _ := layers.NewConvolution("conv", layers.ConvConfig{NumOutput: 2, Kernel: 5, Stride: 2, RNG: rng.New(1, 3)})
	_, err := New([]LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv"}},
		{Layer: relu, Bottoms: []string{"conv"}, Tops: []string{"mid"}},
		{Layer: ipA, Bottoms: []string{"mid"}, Tops: []string{"a"}},
		{Layer: ipB, Bottoms: []string{"mid"}, Tops: []string{"b"}},
		{Layer: layers.NewEltwise("sum", layers.EltwiseSum, nil), Bottoms: []string{"a", "b"}, Tops: []string{"sum"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"sum", "label"}, Tops: []string{"loss"}},
	}, nil)
	if err == nil {
		t.Fatal("conflicting gradient writers accepted")
	}
	if !strings.Contains(err.Error(), "Eltwise") {
		t.Fatalf("error should suggest a combining layer: %v", err)
	}
}

// branchingNet builds a residual-style DAG:
// data -> conv -> relu -> split -> (ipA, ipB) -> eltwise-sum -> loss,
// validating Split + Eltwise end to end under an engine.
func branchingNet(t *testing.T, seed uint64, eng core.Engine) *Net {
	t.Helper()
	src := data.NewSyntheticMNIST(128, seed)
	d, err := layers.NewData("data", src, 8)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := layers.NewConvolution("conv", layers.ConvConfig{
		NumOutput: 4, Kernel: 5, Stride: 2, WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ipA, err := layers.NewInnerProduct("ipA", layers.IPConfig{NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 2)})
	if err != nil {
		t.Fatal(err)
	}
	ipB, err := layers.NewInnerProduct("ipB", layers.IPConfig{NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 3)})
	if err != nil {
		t.Fatal(err)
	}
	n, err := New([]LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv"}},
		{Layer: layers.NewReLU("relu", 0), Bottoms: []string{"conv"}, Tops: []string{"relu"}},
		{Layer: layers.NewSplit("split"), Bottoms: []string{"relu"}, Tops: []string{"r1", "r2"}},
		{Layer: ipA, Bottoms: []string{"r1"}, Tops: []string{"a"}},
		{Layer: ipB, Bottoms: []string{"r2"}, Tops: []string{"b"}},
		{Layer: layers.NewEltwise("sum", layers.EltwiseSum, nil), Bottoms: []string{"a", "b"}, Tops: []string{"sum"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"sum", "label"}, Tops: []string{"loss"}},
	}, eng)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBranchingDAGGradientsAndEngineEquivalence(t *testing.T) {
	ref := branchingNet(t, 44, core.NewSequential())
	refLoss := ref.Forward()
	ref.ZeroParamDiffs()
	ref.Backward()
	// All four parameterized blobs get gradients through the DAG.
	for i, p := range ref.Params() {
		if p.AsumDiff() == 0 {
			t.Fatalf("param %s got no gradient through the DAG", ref.ParamNames()[i])
		}
	}
	e := core.NewCoarse(4)
	defer e.Close()
	n := branchingNet(t, 44, e)
	if loss := n.Forward(); loss != refLoss {
		t.Fatalf("coarse DAG loss %v != sequential %v", loss, refLoss)
	}
	n.ZeroParamDiffs()
	n.Backward()
	for i := range ref.Params() {
		a, b := ref.Params()[i].Diff(), n.Params()[i].Diff()
		for j := range a {
			d := float64(a[j] - b[j])
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("DAG param %d grad deviates", i)
			}
		}
	}
}

func TestBranchingDAGTrains(t *testing.T) {
	// The DAG must actually learn (Split backward sums both branches).
	n := branchingNet(t, 45, nil)
	var first, last float64
	for i := 0; i < 30; i++ {
		n.ZeroParamDiffs()
		loss := n.ForwardBackward()
		if i == 0 {
			first = loss
		}
		last = loss
		// Plain SGD step.
		for _, p := range n.Params() {
			p.ScaleDiff(0.05)
			p.Update()
		}
	}
	if last >= first {
		t.Fatalf("branching DAG did not learn: %v -> %v", first, last)
	}
}

// In-place layers: Caffe runs ReLU with top == bottom. The net must
// alias the blob, and training must match the out-of-place variant.
func TestInPlaceReLUMatchesOutOfPlace(t *testing.T) {
	build := func(inPlace bool) *Net {
		src := data.NewSyntheticMNIST(128, 50)
		d, err := layers.NewData("data", src, 8)
		if err != nil {
			t.Fatal(err)
		}
		conv, err := layers.NewConvolution("conv", layers.ConvConfig{
			NumOutput: 4, Kernel: 5, Stride: 2, WeightFiller: layers.XavierFiller{}, RNG: rng.New(50, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		ip, err := layers.NewInnerProduct("ip", layers.IPConfig{NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(50, 2)})
		if err != nil {
			t.Fatal(err)
		}
		reluTop := "relu"
		ipBottom := "relu"
		if inPlace {
			reluTop = "conv" // same as bottom: in-place
			ipBottom = "conv"
		}
		n, err := New([]LayerSpec{
			{Layer: d, Tops: []string{"data", "label"}},
			{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv"}},
			{Layer: layers.NewReLU("relu1", 0), Bottoms: []string{"conv"}, Tops: []string{reluTop}},
			{Layer: ip, Bottoms: []string{ipBottom}, Tops: []string{"ip"}},
			{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip", "label"}, Tops: []string{"loss"}},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	ref := build(false)
	n := build(true)
	// Blob is aliased, not duplicated.
	if n.Blob("relu") != nil {
		t.Fatal("in-place net created a separate relu blob")
	}
	// Identical training trajectories.
	for i := 0; i < 5; i++ {
		ref.ZeroParamDiffs()
		n.ZeroParamDiffs()
		lossRef := ref.ForwardBackward()
		loss := n.ForwardBackward()
		if loss != lossRef {
			t.Fatalf("iter %d: in-place loss %v != %v", i, loss, lossRef)
		}
		for pi := range ref.Params() {
			a, b := ref.Params()[pi].Diff(), n.Params()[pi].Diff()
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("iter %d: param %d grad differs in place", i, pi)
				}
			}
			ref.Params()[pi].ScaleDiff(0.1)
			n.Params()[pi].ScaleDiff(0.1)
			ref.Params()[pi].Update()
			n.Params()[pi].Update()
		}
	}
}

func TestInPlaceRejectedForNonCapableLayer(t *testing.T) {
	src := data.NewSyntheticMNIST(16, 51)
	d, _ := layers.NewData("data", src, 4)
	conv, _ := layers.NewConvolution("conv", layers.ConvConfig{NumOutput: 1, Kernel: 3, RNG: rng.New(51, 1)})
	_, err := New([]LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"data"}}, // conv cannot run in place
	}, nil)
	if err == nil {
		t.Fatal("in-place convolution accepted")
	}
}

func TestInPlaceUnderCoarseEngine(t *testing.T) {
	src := data.NewSyntheticMNIST(64, 52)
	d, _ := layers.NewData("data", src, 8)
	conv, _ := layers.NewConvolution("conv", layers.ConvConfig{
		NumOutput: 3, Kernel: 5, Stride: 2, WeightFiller: layers.XavierFiller{}, RNG: rng.New(52, 1)})
	ip, _ := layers.NewInnerProduct("ip", layers.IPConfig{NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(52, 2)})
	e := core.NewCoarse(4)
	defer e.Close()
	n, err := New([]LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv"}},
		{Layer: layers.NewSigmoid("sig"), Bottoms: []string{"conv"}, Tops: []string{"conv"}}, // in place
		{Layer: ip, Bottoms: []string{"conv"}, Tops: []string{"ip"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip", "label"}, Tops: []string{"loss"}},
	}, e)
	if err != nil {
		t.Fatal(err)
	}
	n.ZeroParamDiffs()
	loss := n.ForwardBackward()
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("loss %v", loss)
	}
	for i, p := range n.Params() {
		if p.AsumDiff() == 0 {
			t.Fatalf("param %d got no gradient through in-place layer", i)
		}
	}
}
