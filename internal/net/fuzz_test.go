package net

import (
	"math"
	"testing"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

// randomNet builds a random-but-valid convolutional stack: data followed
// by 2-5 random feature layers (conv / pool / relu / sigmoid / lrn /
// batchnorm / dropout), a flatten-free InnerProduct head and a softmax
// loss. The generator is the executable form of the paper's
// network-agnostic claim: the coarse engine must handle *whatever* comes
// out of it, bit-identically in the forward pass and within float
// tolerance in the gradients.
func randomNet(t *testing.T, r *rng.RNG, eng core.Engine) *Net {
	t.Helper()
	seed := r.Uint64()
	wrng := rng.New(seed, 1)
	src := data.NewSyntheticMNIST(64, seed)
	batch := 2 + r.Intn(7) // 2..8
	d, err := layers.NewData("data", src, batch)
	if err != nil {
		t.Fatal(err)
	}
	specs := []LayerSpec{{Layer: d, Tops: []string{"data", "label"}}}
	prev := "data"
	channels := 1
	spatial := 28
	nLayers := 2 + r.Intn(4)
	mk := func(name string, l layers.Layer, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, LayerSpec{Layer: l, Bottoms: []string{prev}, Tops: []string{name}})
		prev = name
	}
	for i := 0; i < nLayers && spatial >= 6; i++ {
		name := string(rune('a'+i)) + "L"
		switch r.Intn(6) {
		case 0: // conv
			kernel := 3 + 2*r.Intn(2) // 3 or 5
			out := 1 + r.Intn(6)
			lowered := r.Bernoulli(0.5)
			l, err := layers.NewConvolution(name, layers.ConvConfig{
				NumOutput: out, Kernel: kernel, Pad: r.Intn(2), Lowered: lowered,
				WeightFiller: layers.GaussianFiller{Std: 0.2}, RNG: wrng.Split(uint64(i)),
			})
			mk(name, l, err)
			channels = out
			// Worst case (pad 0, stride 1): spatial shrinks by kernel-1.
			// The tracker only guards the loop; exact shapes come from
			// the net's own inference.
			spatial = spatial - kernel + 1
		case 1: // pooling
			method := layers.MaxPool
			if r.Bernoulli(0.5) {
				method = layers.AvePool
			}
			l, err := layers.NewPooling(name, layers.PoolConfig{Method: method, Kernel: 2, Stride: 2})
			mk(name, l, err)
			spatial = (spatial + 1) / 2
		case 2:
			mk(name, layers.NewReLU(name, 0.05), nil)
		case 3:
			mk(name, layers.NewSigmoid(name), nil)
		case 4:
			l, err := layers.NewLRN(name, layers.LRNConfig{LocalSize: 3, Alpha: 0.01, Beta: 0.75})
			mk(name, l, err)
		case 5:
			l, err := layers.NewBatchNorm(name, layers.BNConfig{})
			mk(name, l, err)
		}
		_ = channels
	}
	ip, err := layers.NewInnerProduct("head", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.GaussianFiller{Std: 0.1}, RNG: wrng.Split(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	specs = append(specs,
		LayerSpec{Layer: ip, Bottoms: []string{prev}, Tops: []string{"head"}},
		LayerSpec{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"head", "label"}, Tops: []string{"loss"}},
	)
	n, err := New(specs, eng)
	if err != nil {
		t.Fatalf("random net invalid (seed construction bug): %v\n%v", err, specs)
	}
	return n
}

// TestRandomNetsEngineEquivalence fuzzes architectures and checks the
// coarse engine against sequential on each.
func TestRandomNetsEngineEquivalence(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		r := rng.New(1234, uint64(trial))
		ref := randomNet(t, r, core.NewSequential())
		refLoss := ref.Forward()
		ref.ZeroParamDiffs()
		ref.Backward()

		r2 := rng.New(1234, uint64(trial)) // identical construction stream
		workers := 2 + int(r.Uint32()%7)
		e := core.NewCoarse(workers)
		n := randomNet(t, r2, e)

		loss := n.Forward()
		if loss != refLoss {
			t.Fatalf("trial %d (workers=%d): forward loss %v != %v\nnet:\n%s",
				trial, workers, loss, refLoss, n)
		}
		n.ZeroParamDiffs()
		n.Backward()
		for pi := range ref.Params() {
			a, b := ref.Params()[pi].Diff(), n.Params()[pi].Diff()
			var m float64
			for j := range a {
				if d := math.Abs(float64(a[j] - b[j])); d > m {
					m = d
				}
			}
			// Scale tolerance by gradient magnitude.
			scale := math.Max(ref.Params()[pi].AsumDiff()/float64(len(a)+1), 1)
			if m > 1e-3*scale {
				t.Fatalf("trial %d (workers=%d): param %s grad deviates by %g\nnet:\n%s",
					trial, workers, ref.ParamNames()[pi], m, n)
			}
		}
		e.Close()
	}
}

// TestRandomNetsTuneEngineRuns fuzzes the tuned engine for crashes and
// NaNs across random architectures.
func TestRandomNetsTunedEngineRuns(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		r := rng.New(777, uint64(trial))
		e := core.NewTuned(3)
		n := randomNet(t, r, e)
		n.ZeroParamDiffs()
		loss := n.ForwardBackward()
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("trial %d: tuned engine produced loss %v\n%s", trial, loss, n)
		}
		e.Close()
	}
}
