package net

import "testing"

func TestBackwardLayerHookCoversParamsInReverseOrder(t *testing.T) {
	n := tinyNet(t, 4, 3, nil)
	n.Forward()
	var ranges [][2]int
	n.SetBackwardLayerHook(func(lo, hi int) { ranges = append(ranges, [2]int{lo, hi}) })
	n.Backward()

	// tinyNet has two parameterized layers: conv1 (params 0,1) and ip1
	// (params 2,3). Backward visits ip1 first.
	want := [][2]int{{2, 4}, {0, 2}}
	if len(ranges) != len(want) {
		t.Fatalf("hook fired %d times (%v), want %d", len(ranges), ranges, len(want))
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("hook call %d = %v, want %v (full sequence %v)", i, ranges[i], want[i], ranges)
		}
	}

	// Detach: no further calls.
	n.SetBackwardLayerHook(nil)
	before := len(ranges)
	n.Backward()
	if len(ranges) != before {
		t.Fatal("hook fired after detach")
	}
}

func TestBackwardParamOrderMatchesHookOrder(t *testing.T) {
	n := tinyNet(t, 4, 4, nil)
	n.Forward()
	var fromHook []int
	n.SetBackwardLayerHook(func(lo, hi int) {
		for p := lo; p < hi; p++ {
			fromHook = append(fromHook, p)
		}
	})
	n.Backward()

	order := n.BackwardParamOrder()
	if len(order) != len(n.Params()) {
		t.Fatalf("BackwardParamOrder has %d entries, want %d", len(order), len(n.Params()))
	}
	seen := make(map[int]bool)
	for _, p := range order {
		if seen[p] {
			t.Fatalf("param %d appears twice in %v", p, order)
		}
		seen[p] = true
	}
	if len(fromHook) != len(order) {
		t.Fatalf("hook delivered %v, order is %v", fromHook, order)
	}
	for i := range order {
		if fromHook[i] != order[i] {
			t.Fatalf("hook sequence %v disagrees with BackwardParamOrder %v at %d", fromHook, order, i)
		}
	}
}
