// Package net composes layers into a feed-forward network DAG and drives
// the per-iteration forward and backward passes through an execution
// engine, mirroring Caffe's Net<float> (§2.1 of the paper).
//
// Blobs are wired by name: each layer declares the names of the blobs it
// consumes (bottoms) and produces (tops); the net resolves them, infers
// shapes through Layer.SetUp, determines which blobs need gradients and
// tells layers not to compute gradients nobody consumes (e.g. the first
// convolution after the data layer, as Caffe does).
package net

import (
	"fmt"
	"strings"
	"time"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/core"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/trace"
)

// LayerSpec declares one layer and its blob wiring.
type LayerSpec struct {
	Layer   layers.Layer
	Bottoms []string
	Tops    []string
}

// Net is a feed-forward network: layers in topological order plus the
// blobs flowing between them.
type Net struct {
	specs   []LayerSpec
	bottoms [][]*blob.Blob
	tops    [][]*blob.Blob
	blobs   map[string]*blob.Blob

	params     []*blob.Blob
	paramNames []string
	// paramLo[i] is the index into params of layer i's first parameter;
	// layer i owns params[paramLo[i]:paramLo[i+1]] (params are appended
	// in spec order, so each layer's range is contiguous).
	paramLo []int

	// backwardHook, when set, fires after each layer's backward pass
	// with the layer's parameter index range — see SetBackwardLayerHook.
	backwardHook func(lo, hi int)

	// lossIdx lists the indices of layers implementing LossWeighter.
	lossIdx []int
	// needsBackward[i] reports whether layer i participates in backprop.
	needsBackward []bool

	engine   core.Engine
	recorder *profile.Recorder
	tracer   *trace.Tracer

	// forwardOnly marks inference nets built by NewForward: activation
	// blobs carry no gradient buffers and Backward panics.
	forwardOnly bool
}

// New builds a network from specs, running each layer's SetUp in order.
// The engine drives all passes and may be swapped later with SetEngine.
func New(specs []LayerSpec, engine core.Engine) (*Net, error) {
	return build(specs, engine, false)
}

// NewForward builds a forward-only (inference) network: activation blobs
// are created data-only (no gradient buffer is ever allocated), every
// parameter blob's diff buffer is dropped, and layers that distinguish
// train/test mode start in test mode. The memory footprint is roughly
// half of a trainable net's and the forward pass never touches a Diff
// slice, which is what makes the serving hot path allocation-free
// (SERVING.md). Backward and ForwardBackward panic on such a net.
func NewForward(specs []LayerSpec, engine core.Engine) (*Net, error) {
	return build(specs, engine, true)
}

// stater matches snapshot.Stater structurally (layers carrying
// non-learnable state blobs, e.g. BatchNorm's moving averages).
type stater interface {
	StateBlobs() []*blob.Blob
}

func build(specs []LayerSpec, engine core.Engine, forwardOnly bool) (*Net, error) {
	if engine == nil {
		engine = core.NewSequential()
	}
	n := &Net{
		specs:       specs,
		blobs:       make(map[string]*blob.Blob),
		engine:      engine,
		forwardOnly: forwardOnly,
	}
	needsGrad := make(map[string]bool)
	// diffWriters counts, per blob, the layers whose backward pass writes
	// the blob's gradient. Layer BackwardRange contracts OVERWRITE bottom
	// diffs (they do not accumulate), so at most one writer is allowed;
	// a second consumer must be gradient-free (like Accuracy) or the
	// graph needs an explicit combining layer (Eltwise).
	diffWriters := make(map[string]string)
	for i, spec := range specs {
		if spec.Layer == nil {
			return nil, fmt.Errorf("net: spec %d has nil layer", i)
		}
		name := spec.Layer.Name()
		var bots []*blob.Blob
		for _, bn := range spec.Bottoms {
			b, ok := n.blobs[bn]
			if !ok {
				return nil, fmt.Errorf("net: layer %s consumes unknown blob %q", name, bn)
			}
			bots = append(bots, b)
		}
		var tops []*blob.Blob
		inPlace := false
		for _, tn := range spec.Tops {
			if existing, dup := n.blobs[tn]; dup {
				// In-place mode (Caffe's "top == bottom", e.g. ReLU): the
				// layer must consume the same blob it produces and declare
				// that its backward tolerates the overwrite.
				ipl, can := spec.Layer.(layers.InPlacer)
				if can && ipl.CanRunInPlace() && containsString(spec.Bottoms, tn) {
					tops = append(tops, existing)
					inPlace = true
					continue
				}
				return nil, fmt.Errorf("net: layer %s re-produces blob %q (layer does not support in-place)", name, tn)
			}
			var t *blob.Blob
			if forwardOnly {
				t = blob.NamedDataOnly(tn)
			} else {
				t = blob.Named(tn)
			}
			n.blobs[tn] = t
			tops = append(tops, t)
		}
		if err := spec.Layer.SetUp(bots, tops); err != nil {
			return nil, fmt.Errorf("net: %w", err)
		}
		n.bottoms = append(n.bottoms, bots)
		n.tops = append(n.tops, tops)

		n.paramLo = append(n.paramLo, len(n.params))
		for pi, p := range spec.Layer.Params() {
			n.params = append(n.params, p)
			n.paramNames = append(n.paramNames, fmt.Sprintf("%s[%d]", name, pi))
		}
		if _, ok := spec.Layer.(layers.LossWeighter); ok {
			n.lossIdx = append(n.lossIdx, i)
		}

		// Gradient-need analysis: a layer backpropagates iff it has
		// parameters or any bottom needs a gradient; its tops then need
		// gradients for upstream... (downstream in backward order).
		layerNeeds := len(spec.Layer.Params()) > 0
		flags := make([]bool, len(spec.Bottoms))
		for bi, bn := range spec.Bottoms {
			flags[bi] = needsGrad[bn]
			if needsGrad[bn] {
				layerNeeds = true
			}
		}
		if _, isLoss := spec.Layer.(layers.LossWeighter); isLoss {
			layerNeeds = true
		}
		if ps, ok := spec.Layer.(interface{ SetPropagateDown([]bool) }); ok {
			ps.SetPropagateDown(flags)
		}
		n.needsBackward = append(n.needsBackward, layerNeeds)
		if layerNeeds {
			for _, tn := range spec.Tops {
				needsGrad[tn] = true
			}
		}
		if layerNeeds && spec.Layer.BackwardExtent() > 0 && !inPlace {
			// In-place layers transform the shared blob's diff in place
			// (read then overwrite); they are not additional writers.
			for bi, bn := range spec.Bottoms {
				if !flags[bi] {
					continue
				}
				if prev, dup := diffWriters[bn]; dup {
					return nil, fmt.Errorf(
						"net: blob %q receives gradients from both %s and %s; bottom diffs overwrite, so insert an explicit combining layer (e.g. Eltwise)",
						bn, prev, name)
				}
				diffWriters[bn] = name
			}
		}
	}
	n.paramLo = append(n.paramLo, len(n.params))
	if len(specs) == 0 {
		return nil, fmt.Errorf("net: no layers")
	}
	if forwardOnly {
		// Inference never reads parameter gradients: drop them so the net
		// holds only the coefficients (plus layer state), and start in
		// test mode (Dropout passes through, BatchNorm uses its moving
		// averages).
		for _, p := range n.params {
			p.DropDiff()
		}
		for _, l := range n.Layers() {
			if st, ok := l.(stater); ok {
				for _, b := range st.StateBlobs() {
					b.DropDiff()
				}
			}
		}
		n.SetTrain(false)
	}
	return n, nil
}

// ForwardOnly reports whether the net was built by NewForward.
func (n *Net) ForwardOnly() bool { return n.forwardOnly }

// Reshape re-runs shape inference through every layer in topological
// order, propagating (possibly changed) bottom shapes to top blobs. The
// serving engine calls it after Data.SetBatchSize so a dynamic batch of
// any size ≤ the warmed maximum flows through without reallocation
// (blob buffers are reused while capacity suffices).
func (n *Net) Reshape() {
	for i, spec := range n.specs {
		spec.Layer.Reshape(n.bottoms[i], n.tops[i])
	}
}

// ShareParamsWith makes every parameter (and layer-state) blob of n alias
// ref's data buffers: the two nets then read the same single copy of the
// coefficients. This is the serving replica pool's weight sharing — R
// forward-only replicas hold one set of weights, not R — and is safe
// precisely because forward passes only ever read parameter data.
// Architectures must match (same parameter count and element counts).
// Snapshot loads into ref are immediately visible to every sharer.
func (n *Net) ShareParamsWith(ref *Net) error {
	if len(n.params) != len(ref.params) {
		return fmt.Errorf("net: param count mismatch %d vs %d", len(n.params), len(ref.params))
	}
	for i, p := range n.params {
		if p.Count() != ref.params[i].Count() {
			return fmt.Errorf("net: param %d count mismatch", i)
		}
		p.ShareDataWith(ref.params[i])
	}
	nl, rl := n.Layers(), ref.Layers()
	if len(nl) != len(rl) {
		return fmt.Errorf("net: layer count mismatch %d vs %d", len(nl), len(rl))
	}
	for i, l := range nl {
		st, ok := l.(stater)
		if !ok {
			continue
		}
		rst, ok := rl[i].(stater)
		if !ok {
			return fmt.Errorf("net: layer %d state mismatch", i)
		}
		sb, rb := st.StateBlobs(), rst.StateBlobs()
		if len(sb) != len(rb) {
			return fmt.Errorf("net: layer %d state blob count mismatch", i)
		}
		for j, b := range sb {
			b.ShareDataWith(rb[j])
		}
	}
	return nil
}

// SetEngine swaps the execution engine (e.g. to compare sequential,
// coarse and fine runs on the same trained state). An attached tracer is
// propagated to the new engine.
func (n *Net) SetEngine(e core.Engine) {
	n.engine = e
	if n.tracer.Enabled() {
		propagateTracer(e, n.tracer)
	}
}

// Engine returns the current execution engine.
func (n *Net) Engine() core.Engine { return n.engine }

// SetRecorder attaches a per-layer timing recorder (nil detaches).
func (n *Net) SetRecorder(r *profile.Recorder) { n.recorder = r }

// SetTracer attaches a span tracer (nil detaches): every layer×phase
// engine call becomes a driver span carrying the layer's FLOP/byte
// counters, and the tracer is propagated to the engine (and through it
// to the worker pool) so parallel engines add per-worker band spans.
// Attach before training, never while a pass is in flight.
func (n *Net) SetTracer(t *trace.Tracer) {
	n.tracer = t
	propagateTracer(n.engine, t)
}

// Tracer returns the attached tracer (nil when tracing is off).
func (n *Net) Tracer() *trace.Tracer { return n.tracer }

// propagateTracer hands the tracer to engines that support one (the
// sequential engine has no worker team and needs none — its layer time
// is fully covered by the driver spans).
func propagateTracer(e core.Engine, t *trace.Tracer) {
	if ts, ok := e.(interface{ SetTracer(*trace.Tracer) }); ok {
		ts.SetTracer(t)
	}
}

// Layers returns the layers in topological order.
func (n *Net) Layers() []layers.Layer {
	out := make([]layers.Layer, len(n.specs))
	for i, s := range n.specs {
		out[i] = s.Layer
	}
	return out
}

// Blob returns a blob by name, or nil when absent.
func (n *Net) Blob(name string) *blob.Blob { return n.blobs[name] }

// Params returns all learnable parameter blobs in layer order.
func (n *Net) Params() []*blob.Blob { return n.params }

// ParamNames returns diagnostic names parallel to Params().
func (n *Net) ParamNames() []string { return n.paramNames }

// Forward runs the full forward pass (Algorithm 1 lines 3-7, the
// inherently sequential layer loop) and returns the weighted loss.
// When neither a recorder nor a tracer is attached, the loop takes no
// clock readings at all.
func (n *Net) Forward() float64 {
	timed := n.recorder != nil || n.tracer.Enabled()
	for i, spec := range n.specs {
		var start time.Time
		if timed {
			start = time.Now()
			n.tracer.SetScope(spec.Layer.Name(), trace.PhaseForward)
		}
		n.engine.Forward(spec.Layer, n.bottoms[i], n.tops[i])
		if timed {
			d := time.Since(start)
			if n.recorder != nil {
				n.recorder.Add(spec.Layer.Name(), profile.Forward, d)
			}
			n.recordLayerSpan(i, trace.PhaseForward, start, d)
		}
	}
	return n.Loss()
}

// recordLayerSpan emits the driver span for one engine call, including
// the layer's pass cost (when it reports one) and the blob bytes the
// pass touches.
func (n *Net) recordLayerSpan(i int, phase trace.Phase, start time.Time, d time.Duration) {
	tr := n.tracer
	if !tr.Enabled() {
		return
	}
	spec := n.specs[i]
	s := trace.Span{
		Name: spec.Layer.Name(), Phase: phase, Rank: trace.RankDriver, Band: -1,
		Start: tr.Stamp(start), Dur: d,
	}
	if phase == trace.PhaseForward {
		s.Hi = spec.Layer.ForwardExtent()
	} else {
		s.Hi = spec.Layer.BackwardExtent()
	}
	if c, ok := spec.Layer.(layers.Coster); ok {
		if phase == trace.PhaseForward {
			s.FLOPs = c.ForwardFLOPs()
		} else {
			s.FLOPs = c.BackwardFLOPs()
		}
	}
	for _, b := range n.bottoms[i] {
		s.Bytes += b.MemoryBytes()
	}
	for _, b := range n.tops[i] {
		s.Bytes += b.MemoryBytes()
	}
	tr.Record(s)
}

// Loss returns the current weighted sum of loss-layer outputs.
func (n *Net) Loss() float64 {
	var loss float64
	for _, i := range n.lossIdx {
		w := n.specs[i].Layer.(layers.LossWeighter).LossWeight()
		loss += float64(w) * float64(n.tops[i][0].Data()[0])
	}
	return loss
}

// SetBackwardLayerHook registers h to fire after each layer's backward
// pass completes, with the half-open range [lo, hi) of indices into
// Params() whose gradients just became final (nil detaches). The
// backward pass visits layers in reverse topological order and each
// parameter's gradient is written only by its owning layer, so once a
// layer's backward returns its parameter gradients will not change
// again this iteration — which is what lets a distributed trainer ship
// layer k's gradient slices while the engine is still on layer k-1
// (the comm/compute overlap of DISTRIBUTED.md). The hook runs on the
// driving goroutine between engine calls and fires only for layers
// that own parameters.
func (n *Net) SetBackwardLayerHook(h func(lo, hi int)) { n.backwardHook = h }

// BackwardParamOrder returns the indices into Params() in the order
// their gradients become final during Backward — the canonical send
// order of the distributed gradient scatter (last layer's parameters
// first, ascending within a layer).
func (n *Net) BackwardParamOrder() []int {
	order := make([]int, len(n.params))
	k := 0
	for i := len(n.specs) - 1; i >= 0; i-- {
		if !n.needsBackward[i] {
			continue
		}
		for p := n.paramLo[i]; p < n.paramLo[i+1]; p++ {
			order[k] = p
			k++
		}
	}
	return order[:k]
}

// Backward runs the full backward pass (Algorithm 1 lines 8-10), seeding
// each loss layer's top gradient with its loss weight. Parameter gradients
// ACCUMULATE; call ZeroParamDiffs first (the solver does).
func (n *Net) Backward() {
	if n.forwardOnly {
		panic("net: Backward on a forward-only net (built with NewForward)")
	}
	for _, i := range n.lossIdx {
		w := n.specs[i].Layer.(layers.LossWeighter).LossWeight()
		n.tops[i][0].Diff()[0] = w
	}
	timed := n.recorder != nil || n.tracer.Enabled()
	for i := len(n.specs) - 1; i >= 0; i-- {
		if !n.needsBackward[i] {
			continue
		}
		var start time.Time
		if timed {
			start = time.Now()
			n.tracer.SetScope(n.specs[i].Layer.Name(), trace.PhaseBackward)
		}
		n.engine.Backward(n.specs[i].Layer, n.bottoms[i], n.tops[i])
		if timed {
			d := time.Since(start)
			if n.recorder != nil {
				n.recorder.Add(n.specs[i].Layer.Name(), profile.Backward, d)
			}
			n.recordLayerSpan(i, trace.PhaseBackward, start, d)
		}
		if n.backwardHook != nil && n.paramLo[i+1] > n.paramLo[i] {
			n.backwardHook(n.paramLo[i], n.paramLo[i+1])
		}
	}
}

// ForwardBackward runs one full iteration pass pair and returns the loss.
func (n *Net) ForwardBackward() float64 {
	loss := n.Forward()
	n.Backward()
	return loss
}

// ZeroParamDiffs clears all parameter gradients.
func (n *Net) ZeroParamDiffs() {
	for _, p := range n.params {
		p.ZeroDiff()
	}
}

// SetTrain toggles train/test mode on layers that distinguish them
// (Dropout).
func (n *Net) SetTrain(train bool) {
	for _, s := range n.specs {
		if d, ok := s.Layer.(interface{ SetTrain(bool) }); ok {
			d.SetTrain(train)
		}
	}
}

// Output returns the scalar value of a 1-element blob (loss, accuracy).
func (n *Net) Output(name string) (float32, error) {
	b := n.blobs[name]
	if b == nil {
		return 0, fmt.Errorf("net: no blob %q", name)
	}
	if b.Count() != 1 {
		return 0, fmt.Errorf("net: blob %q is not scalar (count %d)", name, b.Count())
	}
	return b.Data()[0], nil
}

// MemoryBytes returns the memory held by all blobs and parameters — the
// baseline of the paper's §3.2.1 memory-overhead comparison.
func (n *Net) MemoryBytes() int64 {
	var total int64
	for _, b := range n.blobs {
		total += b.MemoryBytes()
	}
	for _, p := range n.params {
		total += p.MemoryBytes()
	}
	return total
}

// String renders the network topology.
func (n *Net) String() string {
	var b strings.Builder
	for i, s := range n.specs {
		fmt.Fprintf(&b, "%2d %-12s %-16s %v -> %v\n", i, s.Layer.Name(), s.Layer.Type(), s.Bottoms, s.Tops)
	}
	return b.String()
}

// containsString reports whether xs contains s.
func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// CopyParamsFrom copies parameter data from another net with an identical
// architecture — used to run engine-equivalence comparisons from a common
// starting point.
func (n *Net) CopyParamsFrom(o *Net) error {
	if len(n.params) != len(o.params) {
		return fmt.Errorf("net: param count mismatch %d vs %d", len(n.params), len(o.params))
	}
	for i, p := range n.params {
		if p.Count() != o.params[i].Count() {
			return fmt.Errorf("net: param %d count mismatch", i)
		}
		p.CopyDataFrom(o.params[i])
	}
	return nil
}
