package net

import (
	"bytes"
	"testing"

	"coarsegrain/internal/core"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/trace"
)

// benchNet builds the benchmark network used by the tracing-overhead
// benchmarks.
func benchNet(b *testing.B, eng core.Engine) *Net {
	return tinyNet(b, 16, 1, eng)
}

// TestTraceCoarseEndToEnd drives a coarse-engine net with a tracer
// attached and checks the acceptance shape: a driver span per
// layer×phase and per-worker band spans for every parallel region, which
// export to valid Chrome trace JSON.
func TestTraceCoarseEndToEnd(t *testing.T) {
	const workers = 3
	eng := core.NewCoarse(workers)
	defer eng.Close()
	n := tinyNet(t, 8, 1, eng)
	tr := trace.New(workers)
	n.SetTracer(tr)

	const iters = 2
	for i := 0; i < iters; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}

	spans := tr.Snapshot()
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d spans", tr.Dropped())
	}
	type lp struct {
		name  string
		phase trace.Phase
	}
	driver := map[lp]int{}
	workerBands := map[lp]map[int]bool{}
	ranksSeen := map[int]bool{}
	for _, s := range spans {
		k := lp{s.Name, s.Phase}
		if s.Rank == trace.RankDriver {
			driver[k]++
			continue
		}
		ranksSeen[s.Rank] = true
		if workerBands[k] == nil {
			workerBands[k] = map[int]bool{}
		}
		workerBands[k][s.Band] = true
	}

	// Every layer has a forward driver span each iteration.
	for _, layer := range []string{"data", "conv1", "pool1", "ip1", "loss", "acc"} {
		if got := driver[lp{layer, trace.PhaseForward}]; got != iters {
			t.Errorf("%s forward driver spans = %d, want %d", layer, got, iters)
		}
	}
	// Backprop reaches conv1 (it has params) but not the data layer.
	for _, layer := range []string{"conv1", "pool1", "ip1", "loss"} {
		if got := driver[lp{layer, trace.PhaseBackward}]; got != iters {
			t.Errorf("%s backward driver spans = %d, want %d", layer, got, iters)
		}
	}
	if got := driver[lp{"data", trace.PhaseBackward}]; got != 0 {
		t.Errorf("data layer has %d backward spans", got)
	}
	// Parameterized layers get a reduce span per backward pass.
	for _, layer := range []string{"conv1", "ip1"} {
		if got := driver[lp{layer, trace.PhaseReduce}]; got != iters {
			t.Errorf("%s reduce spans = %d, want %d", layer, got, iters)
		}
	}
	// Parallel layers produce worker spans covering every band 0..P-1
	// (batch 8 across 3 workers leaves no rank empty for these layers).
	for _, k := range []lp{{"conv1", trace.PhaseForward}, {"ip1", trace.PhaseForward}} {
		bands := workerBands[k]
		for b := 0; b < workers; b++ {
			if !bands[b] {
				t.Errorf("%s %v: band %d missing (got %v)", k.name, k.phase, b, bands)
			}
		}
	}
	// Every rank recorded something.
	for r := 0; r < workers; r++ {
		if !ranksSeen[r] {
			t.Errorf("rank %d recorded no spans", r)
		}
	}
	// The conv driver spans carry FLOP and byte counters.
	var sawCounters bool
	for _, s := range spans {
		if s.Rank == trace.RankDriver && s.Name == "conv1" && s.Phase == trace.PhaseForward {
			if s.FLOPs > 0 && s.Bytes > 0 {
				sawCounters = true
			}
		}
	}
	if !sawCounters {
		t.Error("conv1 forward driver span missing FLOP/byte counters")
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := trace.ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	if stats.Threads != workers+1 {
		t.Errorf("threads = %d, want %d", stats.Threads, workers+1)
	}
}

// TestTraceSequentialEngine checks that the serial engine produces
// driver-only spans (no worker rows) and that SetEngine re-propagates an
// attached tracer.
func TestTraceSequentialEngine(t *testing.T) {
	n := tinyNet(t, 4, 1, core.NewSequential())
	tr := trace.New(1)
	n.SetTracer(tr)
	n.ZeroParamDiffs()
	n.ForwardBackward()
	for _, s := range tr.Snapshot() {
		if s.Rank != trace.RankDriver {
			t.Fatalf("sequential engine recorded worker span %+v", s)
		}
	}

	// Swapping to a coarse engine propagates the tracer to its pool.
	eng := core.NewCoarse(2)
	defer eng.Close()
	tr2 := trace.New(2)
	n.SetTracer(tr2)
	n.SetEngine(eng)
	n.ZeroParamDiffs()
	n.ForwardBackward()
	var workerSpans int
	for _, s := range tr2.Snapshot() {
		if s.Rank >= 0 {
			workerSpans++
		}
	}
	if workerSpans == 0 {
		t.Fatal("tracer did not reach the swapped-in coarse engine's pool")
	}
}

// TestRecorderAndTracerCoexist checks the legacy profile.Recorder path
// is unchanged when both instruments are attached.
func TestRecorderAndTracerCoexist(t *testing.T) {
	eng := core.NewCoarse(2)
	defer eng.Close()
	n := tinyNet(t, 4, 1, eng)
	tr := trace.New(2)
	n.SetTracer(tr)
	rec := profile.NewRecorder()
	n.SetRecorder(rec)
	n.ZeroParamDiffs()
	n.ForwardBackward()
	if len(rec.Layers()) == 0 {
		t.Fatal("recorder saw no layers")
	}
	// The tracer's LayerRecorder bridge sees the same layers in the same
	// order as the directly attached recorder.
	bridged := trace.LayerRecorder(tr.Snapshot())
	a, b := rec.Layers(), bridged.Layers()
	if len(a) != len(b) {
		t.Fatalf("layer sets differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layer order differs: %v vs %v", a, b)
		}
	}
}

// BenchmarkForwardBackwardNoTracer is the tracing-disabled baseline the
// <5% enabled-overhead budget is measured against; compare with
// BenchmarkForwardBackwardTraced (OBSERVABILITY.md records the method).
func BenchmarkForwardBackwardNoTracer(b *testing.B) {
	eng := core.NewCoarse(2)
	defer eng.Close()
	n := benchNet(b, eng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
}

// BenchmarkForwardBackwardTraced measures the same iteration with span
// recording enabled.
func BenchmarkForwardBackwardTraced(b *testing.B) {
	eng := core.NewCoarse(2)
	defer eng.Close()
	n := benchNet(b, eng)
	tr := trace.NewWithCapacity(2, 1<<12)
	n.SetTracer(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.Len() >= 1<<11 {
			// Keep the ring from wrapping so every iteration pays the
			// same recording cost.
			tr.Reset()
		}
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
}
