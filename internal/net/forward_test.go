package net

import (
	"testing"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

// forwardSpecs builds the tinyNet topology without the loss/accuracy
// tail — the shape a serving net has after stripping training-only
// layers.
func forwardSpecs(t testing.TB, batch int, seed uint64) []LayerSpec {
	t.Helper()
	src := data.NewSyntheticMNIST(256, seed)
	d, err := layers.NewData("data", src, batch)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := layers.NewConvolution("conv1", layers.ConvConfig{
		NumOutput: 4, Kernel: 5, Stride: 2,
		WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := layers.NewInnerProduct("ip1", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 11),
	})
	if err != nil {
		t.Fatal(err)
	}
	return []LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv1"}},
		{Layer: ip, Bottoms: []string{"conv1"}, Tops: []string{"ip1"}},
	}
}

func TestForwardOnlyMatchesTrainableForward(t *testing.T) {
	fwd, err := NewForward(forwardSpecs(t, 4, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(forwardSpecs(t, 4, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fwd.ForwardOnly() || full.ForwardOnly() {
		t.Fatal("ForwardOnly flag wrong")
	}
	fwd.Forward()
	full.Forward()
	a, b := fwd.Blob("ip1").Data(), full.Blob("ip1").Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestForwardOnlyDropsGradientBuffers(t *testing.T) {
	fwd, err := NewForward(forwardSpecs(t, 4, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"data", "conv1", "ip1"} {
		if fwd.Blob(name).Diff() != nil {
			t.Fatalf("activation %q has a diff buffer in forward-only mode", name)
		}
	}
	for i, p := range fwd.Params() {
		if p.Diff() != nil {
			t.Fatalf("param %d has a diff buffer in forward-only mode", i)
		}
	}
	full, err := New(forwardSpecs(t, 4, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.MemoryBytes() >= full.MemoryBytes() {
		t.Fatalf("forward-only net (%d B) not smaller than trainable net (%d B)",
			fwd.MemoryBytes(), full.MemoryBytes())
	}
}

func TestForwardOnlyBackwardPanics(t *testing.T) {
	fwd, err := NewForward(forwardSpecs(t, 2, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on a forward-only net did not panic")
		}
	}()
	fwd.Backward()
}

func TestShareParamsWith(t *testing.T) {
	ref, err := NewForward(forwardSpecs(t, 2, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewForward(forwardSpecs(t, 2, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble the replica's own weights so a pass would differ, then
	// share: the replica must see ref's copy, not its own.
	rep.Params()[0].ScaleData(-3)
	if err := rep.ShareParamsWith(ref); err != nil {
		t.Fatal(err)
	}
	// A write through ref must be visible in rep: one copy of the weights.
	ref.Params()[0].Data()[0] = 42
	if rep.Params()[0].Data()[0] != 42 {
		t.Fatal("params not aliased after ShareParamsWith")
	}
	// Both nets must now produce identical outputs on the same input.
	ref.Params()[0].Data()[0] = 0.01
	ref.Forward()
	rep.Forward()
	a, b := ref.Blob("ip1").Data(), rep.Blob("ip1").Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shared-weight outputs differ at %d", i)
		}
	}
}

// TestDynamicBatchReshape drives the serving resize path: warm at the
// maximum batch, then shrink and re-grow via Data.SetBatchSize +
// net.Reshape. Outputs for a batch of b must be bit-identical to the
// leading b rows of outputs computed at any other batch size over the
// same samples.
func TestDynamicBatchReshape(t *testing.T) {
	specs := forwardSpecs(t, 8, 7)
	fwd, err := NewForward(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	dataL := specs[0].Layer.(*layers.Data)
	dataL.Rewind()
	fwd.Forward()
	want := append([]float32(nil), fwd.Blob("ip1").Data()...)

	dataL.SetBatchSize(3)
	fwd.Reshape()
	if got := fwd.Blob("ip1").Shape()[0]; got != 3 {
		t.Fatalf("reshape to batch 3: output batch %d", got)
	}
	dataL.Rewind()
	fwd.Forward()
	got := fwd.Blob("ip1").Data()
	if len(got) != 3*10 {
		t.Fatalf("output length %d, want 30", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("batch-3 output %d differs from batch-8 row: %g vs %g", i, got[i], want[i])
		}
	}

	// Grow back to the warmed maximum: still bit-identical.
	dataL.SetBatchSize(8)
	fwd.Reshape()
	dataL.Rewind()
	fwd.Forward()
	got = fwd.Blob("ip1").Data()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("batch-8 output %d differs after resize cycle", i)
		}
	}
}

func TestForwardOnlyWithCoarseEngine(t *testing.T) {
	eng := core.NewCoarse(3)
	defer eng.Close()
	fwd, err := NewForward(forwardSpecs(t, 4, 3), eng)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewForward(forwardSpecs(t, 4, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	fwd.Forward()
	seq.Forward()
	a, b := fwd.Blob("ip1").Data(), seq.Blob("ip1").Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coarse forward-only output %d differs from sequential", i)
		}
	}
}
