package faultinject_test

import (
	"testing"

	"coarsegrain/internal/data"
	"coarsegrain/internal/faultinject"
	"coarsegrain/internal/net"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

// mkLeNet builds the same seeded LeNet solver every time it is called —
// the "restart the training binary" primitive of the recovery drill. The
// dataset is exactly one batch long, so the data cursor is at the start of
// a batch at every iteration boundary and a restored run sees exactly the
// batches the uninterrupted run saw.
func mkLeNet(t *testing.T) *solver.Solver {
	t.Helper()
	src := data.NewSyntheticMNIST(8, 77)
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(zoo.LeNetSolver(), n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCrashRecoveryEndToEnd is the acceptance scenario of ISSUE 4: a
// training run crashes mid-interval AND its newest checkpoint is corrupted
// on disk; recovery must fall back to the last valid checkpoint and, from
// there, reproduce the uninterrupted run's loss trajectory bit for bit.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	const (
		total     = 30
		ckptEvery = 5
		crashAt   = 17
	)

	// Run A: the uninterrupted reference.
	ref := mkLeNet(t)
	refLosses := ref.Step(total)

	// Run B, phase 1: checkpoint every ckptEvery iterations, crash at 17.
	dir := t.TempDir()
	b1 := mkLeNet(t)
	for b1.Iter() < crashAt {
		step := min(ckptEvery-b1.Iter()%ckptEvery, crashAt-b1.Iter())
		b1.Step(step)
		if b1.Iter()%ckptEvery == 0 {
			if _, err := snapshot.SaveCheckpoint(dir, b1, 3); err != nil {
				t.Fatal(err)
			}
		}
	}
	// "Crash": b1 is abandoned; iterations 15..17 are lost.

	// Bit-rot the newest checkpoint (ckpt-15) with a seeded flip.
	newest := snapshot.CheckpointPath(dir, 15)
	off, err := faultinject.New(1).CorruptFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flipped byte %d of %s", off, newest)

	// Run B, phase 2: a fresh process resumes. The corrupt ckpt-15 must be
	// skipped, ckpt-10 loaded.
	b2 := mkLeNet(t)
	path, skipped, err := snapshot.LoadLatestValid(dir, b2)
	if err != nil {
		t.Fatal(err)
	}
	if path != snapshot.CheckpointPath(dir, 10) {
		t.Fatalf("resumed from %q, want the iteration-10 checkpoint", path)
	}
	if len(skipped) != 1 || skipped[0] != newest {
		t.Fatalf("skipped = %v, want just the corrupted newest", skipped)
	}
	if b2.Iter() != 10 {
		t.Fatalf("resumed iteration = %d, want 10", b2.Iter())
	}

	// From iteration 10 on, the recovered run must match run A exactly.
	resumed := b2.Step(total - 10)
	for i, loss := range resumed {
		if want := refLosses[10+i]; loss != want {
			t.Fatalf("recovered trajectory diverged at iteration %d: %v vs %v",
				10+i, loss, want)
		}
	}
	if resumed[len(resumed)-1] != refLosses[total-1] {
		t.Fatal("final losses differ")
	}
}

// TestRecoverySurvivesTornNewest runs the same drill with the torn-write
// fault model: the newest checkpoint is a strict prefix of itself, as a
// crash during a non-atomic save would leave it.
func TestRecoverySurvivesTornNewest(t *testing.T) {
	dir := t.TempDir()
	s := mkLeNet(t)
	for i := 0; i < 3; i++ {
		s.Step(2)
		if _, err := snapshot.SaveCheckpoint(dir, s, 0); err != nil {
			t.Fatal(err)
		}
	}
	n, err := faultinject.New(2).TruncateFile(snapshot.CheckpointPath(dir, 6))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tore checkpoint to %d bytes", n)
	s2 := mkLeNet(t)
	path, _, err := snapshot.LoadLatestValid(dir, s2)
	if err != nil {
		t.Fatal(err)
	}
	if path != snapshot.CheckpointPath(dir, 4) || s2.Iter() != 4 {
		t.Fatalf("resumed %q at iter %d, want the iteration-4 checkpoint", path, s2.Iter())
	}
}
