package faultinject

import (
	"testing"

	"coarsegrain/internal/transport"
)

func TestClusterScenarioIsDeterministic(t *testing.T) {
	a, err := New(9).ClusterScenario(4, 20, transport.ChaosCrash)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(9).ClusterScenario(4, 20, transport.ChaosCrash)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed gave different scenarios: %v vs %v", a, b)
	}
}

func TestClusterScenarioNeverTargetsCoordinatorOrIterZero(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		s, err := New(seed).ClusterScenario(3, 10, transport.ChaosHang)
		if err != nil {
			t.Fatal(err)
		}
		if s.Victim < 1 || s.Victim > 2 {
			t.Fatalf("seed %d: victim %d outside worker ranks [1,2]", seed, s.Victim)
		}
		if s.AtIter < 1 || s.AtIter > 9 {
			t.Fatalf("seed %d: trigger %d outside [1,9]", seed, s.AtIter)
		}
	}
}

func TestClusterScenarioPartitionCutsCoordinator(t *testing.T) {
	s, err := New(3).ClusterScenario(3, 8, transport.ChaosPartition)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Peers) != 1 || s.Peers[0] != 0 {
		t.Fatalf("partition cut %v, want [0]", s.Peers)
	}
	if c, err := New(3).ClusterScenario(3, 8, transport.ChaosCrash); err != nil || c.Peers != nil {
		t.Fatalf("non-partition scenario carries a cut: %v (err %v)", c.Peers, err)
	}
}

func TestClusterScenarioWrap(t *testing.T) {
	s, err := New(5).ClusterScenario(3, 10, transport.ChaosCrash)
	if err != nil {
		t.Fatal(err)
	}
	group := make([]transport.Transport, 3)
	locals := transport.NewLocalGroup(3)
	for i, l := range locals {
		group[i] = l
	}
	ch, err := s.Wrap(group)
	if err != nil {
		t.Fatal(err)
	}
	if group[s.Victim] != transport.Transport(ch) {
		t.Fatal("victim's slot was not replaced with the Chaos wrapper")
	}
	if ch.TriggerIter() != s.AtIter {
		t.Fatalf("chaos trigger %d, want planned %d", ch.TriggerIter(), s.AtIter)
	}
	for r, tr := range group {
		if r != s.Victim {
			if _, wrapped := tr.(*transport.Chaos); wrapped {
				t.Fatalf("rank %d wrapped; only the victim should be", r)
			}
		}
	}
	if _, err := s.Wrap(group[:1]); err == nil {
		t.Fatal("Wrap accepted a group the victim is outside of")
	}
}

func TestClusterScenarioValidation(t *testing.T) {
	if _, err := New(1).ClusterScenario(1, 10, transport.ChaosCrash); err == nil {
		t.Fatal("accepted a single-rank group")
	}
	if _, err := New(1).ClusterScenario(3, 1, transport.ChaosCrash); err == nil {
		t.Fatal("accepted a single-iteration run")
	}
}
