package faultinject

// This file is the cluster arm of the injector: where the rest of the
// package breaks one process (a torn checkpoint, a poisoned gradient),
// ClusterScenario breaks one *rank* of a distributed group — crash,
// hang, partition or straggle, via transport.Chaos — with every choice
// (victim, trigger iteration, partition cut) drawn from the same seeded
// stream, so a cluster failure drill replays bit-identically from its
// seed. The elastic supervisor (internal/dist.RunElastic) is the code
// under test; cmd/dnncluster's -chaos-* flags feed these plans into
// real runs.

import (
	"fmt"
	"time"

	"coarsegrain/internal/transport"
)

// ClusterScenario is one fully resolved cluster failure: which rank
// fails, how, and at which training iteration.
type ClusterScenario struct {
	// Victim is the failing base rank — never 0: killing the
	// coordinator is unrecoverable by design (it owns the solver), so
	// seeded drills always target a worker.
	Victim int
	// Mode is the injected failure.
	Mode transport.ChaosMode
	// AtIter is the iteration whose first data-plane operation triggers
	// the failure.
	AtIter int
	// Peers is the outbound cut for ChaosPartition (always includes the
	// coordinator, so the failure is detectable); nil otherwise.
	Peers []int
	// Delay is the per-iteration slowdown for ChaosStraggle (zero means
	// the transport.Chaos default).
	Delay time.Duration
}

// ClusterScenario draws a scenario from the injector's stream: a victim
// in [1, ranks) and a trigger in [1, iters) — never iteration 0, so the
// group always commits work before the failure, which is what makes the
// recovery's bit-identity claim non-vacuous.
func (in *Injector) ClusterScenario(ranks, iters int, mode transport.ChaosMode) (ClusterScenario, error) {
	if ranks < 2 {
		return ClusterScenario{}, fmt.Errorf("faultinject: cluster scenario needs >= 2 ranks, got %d", ranks)
	}
	if iters < 2 {
		return ClusterScenario{}, fmt.Errorf("faultinject: cluster scenario needs >= 2 iterations, got %d", iters)
	}
	s := ClusterScenario{
		Victim: 1 + in.r.Intn(ranks-1),
		Mode:   mode,
		AtIter: 1 + in.r.Intn(iters-1),
	}
	if mode == transport.ChaosPartition {
		s.Peers = []int{0}
	}
	return s, nil
}

// Wrap applies the scenario to a group's transports (index = base
// rank): the victim's endpoint is wrapped in a transport.Chaos carrying
// the planned failure, every other endpoint is untouched. Returns the
// victim's Chaos handle so tests can assert on TriggerIter and Fired.
func (s ClusterScenario) Wrap(group []transport.Transport) (*transport.Chaos, error) {
	if s.Victim <= 0 || s.Victim >= len(group) {
		return nil, fmt.Errorf("faultinject: victim rank %d outside group of %d", s.Victim, len(group))
	}
	ch := transport.NewChaos(group[s.Victim], transport.ChaosConfig{
		Mode:          s.Mode,
		AtIter:        s.AtIter,
		Peers:         s.Peers,
		StraggleDelay: s.Delay,
	}, 0)
	group[s.Victim] = ch
	return ch, nil
}

// String renders the scenario for logs and drill output.
func (s ClusterScenario) String() string {
	return fmt.Sprintf("rank %d %s at iteration %d", s.Victim, s.Mode, s.AtIter)
}
