package faultinject

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
)

func writeTemp(t *testing.T, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "victim.bin")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptFileIsDeterministic(t *testing.T) {
	content := make([]byte, 4096)
	for i := range content {
		content[i] = byte(i)
	}
	p1 := writeTemp(t, content)
	p2 := writeTemp(t, content)
	off1, err := New(42).CorruptFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := New(42).CorruptFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != off2 {
		t.Fatalf("same seed flipped different offsets: %d vs %d", off1, off2)
	}
	got, _ := os.ReadFile(p1)
	diffs := 0
	for i := range content {
		if got[i] != content[i] {
			diffs++
			if int64(i) != off1 {
				t.Fatalf("byte %d changed, reported offset %d", i, off1)
			}
			if got[i] != content[i]^0xFF {
				t.Fatalf("byte %d = %#x, want inverted %#x", i, got[i], content[i]^0xFF)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diffs)
	}
	// A different seed picks a different offset (for this content size).
	p3 := writeTemp(t, content)
	off3, err := New(43).CorruptFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	if off3 == off1 {
		t.Logf("seeds 42 and 43 collided on offset %d (possible, just unlucky)", off1)
	}
}

func TestCorruptFileRejectsEmpty(t *testing.T) {
	if _, err := New(1).CorruptFile(writeTemp(t, nil)); err == nil {
		t.Fatal("empty file corrupted successfully")
	}
}

func TestTruncateFileIsDeterministicStrictPrefix(t *testing.T) {
	content := make([]byte, 1000)
	p1, p2 := writeTemp(t, content), writeTemp(t, content)
	n1, err := New(7).TruncateFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := New(7).TruncateFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("same seed truncated to different lengths: %d vs %d", n1, n2)
	}
	if n1 <= 0 || n1 >= int64(len(content)) {
		t.Fatalf("truncated length %d is not a strict prefix of %d", n1, len(content))
	}
	st, _ := os.Stat(p1)
	if st.Size() != n1 {
		t.Fatalf("file is %d bytes, reported %d", st.Size(), n1)
	}
}

func tinyTrainNet(t *testing.T) *net.Net {
	t.Helper()
	d, err := layers.NewData("data", microSource{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := layers.NewInnerProduct("ip", layers.IPConfig{NumOutput: 2, RNG: rng.New(5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New([]net.LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: ip, Bottoms: []string{"data"}, Tops: []string{"ip"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip", "label"}, Tops: []string{"loss"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// microSource is a 4-pixel 2-class toy dataset for poisoning tests.
type microSource struct{}

func (microSource) Len() int           { return 4 }
func (microSource) SampleShape() []int { return []int{1, 2, 2} }
func (microSource) Classes() int       { return 2 }
func (microSource) Read(i int, out []float32) int {
	for j := range out {
		out[j] = float32(j)
	}
	return i % 2
}

func TestGradPoisonerFiresOnceAtArmedIteration(t *testing.T) {
	n := tinyTrainNet(t)
	g1, err := New(3).GradPoisoner(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(3).GradPoisoner(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g1.param != g2.param || g1.index != g2.index {
		t.Fatalf("same seed armed different targets: (%d,%d) vs (%d,%d)",
			g1.param, g1.index, g2.param, g2.index)
	}
	if g1.Apply(4) || g1.Fired {
		t.Fatal("poison fired before its iteration")
	}
	if !g1.Apply(5) || !g1.Fired {
		t.Fatal("poison did not fire at its iteration")
	}
	v := n.Params()[g1.param].Diff()[g1.index]
	if !math.IsNaN(float64(v)) {
		t.Fatalf("target gradient = %v, want NaN", v)
	}
}

func TestGradPoisonerHookComposes(t *testing.T) {
	n := tinyTrainNet(t)
	g, err := New(9).GradPoisoner(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sawNaN bool
	downstream := func(iter int, loss float64) solver.PreUpdateAction {
		x := n.Params()[g.param].Diff()[g.index]
		if x != x {
			sawNaN = true
			return solver.ActHalt
		}
		return solver.ActProceed
	}
	hook := g.Hook(downstream)
	if act := hook(1, 0.5); act != solver.ActProceed {
		t.Fatalf("pre-poison iteration returned %v", act)
	}
	if act := hook(2, 0.5); act != solver.ActHalt {
		t.Fatalf("poisoned iteration returned %v: downstream must see the NaN", act)
	}
	if !sawNaN {
		t.Fatal("downstream hook ran before the poison landed")
	}
	// nil downstream: poison still lands, training proceeds.
	g2, err := New(9).GradPoisoner(tinyTrainNet(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if act := g2.Hook(nil)(0, 0.5); act != solver.ActProceed {
		t.Fatalf("nil downstream returned %v", act)
	}
	if !g2.Fired {
		t.Fatal("nil downstream swallowed the poison")
	}
}

func TestFlakyOpenerFailsExactlyNTimes(t *testing.T) {
	content := make([]byte, 10000)
	path := writeTemp(t, content)
	fo := New(11).FlakyOpener(2)
	readAll := func() error {
		rc, err := fo.Open(path)
		if err != nil {
			return err
		}
		_, err = io.ReadAll(rc)
		rc.Close()
		return err
	}
	for i := 0; i < 2; i++ {
		if err := readAll(); !errors.Is(err, ErrTransient) {
			t.Fatalf("attempt %d: err = %v, want transient", i+1, err)
		}
	}
	if err := readAll(); err != nil {
		t.Fatalf("attempt 3 should succeed: %v", err)
	}
	if fo.Attempts(path) != 3 {
		t.Fatalf("attempts = %d", fo.Attempts(path))
	}
	// Determinism: a second injector with the same seed fails the same way
	// (same open-vs-midread choices, same byte budgets).
	fo2 := New(11).FlakyOpener(2)
	for i := 0; i < 2; i++ {
		rc, err := fo2.Open(path)
		if err != nil {
			continue
		}
		io.ReadAll(rc)
		rc.Close()
	}
}

func TestLoaderRetryAbsorbsTransientFailures(t *testing.T) {
	// Two MNIST files (images + labels), each failing twice before
	// succeeding: DefaultRetry's 3 attempts must absorb that.
	dir := t.TempDir()
	imgPath, lblPath := writeMNIST(t, dir, 4)
	fo := New(21).FlakyOpener(2)
	restore := data.SetOpenFile(fo.Open)
	defer restore()
	old := data.DefaultRetry
	data.DefaultRetry = data.RetryPolicy{Attempts: 3, Backoff: time.Microsecond}
	defer func() { data.DefaultRetry = old }()

	ds, err := data.LoadMNISTFiles(imgPath, lblPath)
	if err != nil {
		t.Fatalf("retry failed to absorb 2 transient faults: %v", err)
	}
	if ds.Len() != 4 {
		t.Fatalf("dataset has %d samples, want 4", ds.Len())
	}
	if got := fo.Attempts(imgPath); got != 3 {
		t.Fatalf("image file opened %d times, want 3", got)
	}
}

func TestLoaderRetryGivesUpBeyondBudget(t *testing.T) {
	dir := t.TempDir()
	imgPath, lblPath := writeMNIST(t, dir, 2)
	fo := New(22).FlakyOpener(5) // more failures than attempts
	restore := data.SetOpenFile(fo.Open)
	defer restore()
	old := data.DefaultRetry
	data.DefaultRetry = data.RetryPolicy{Attempts: 3, Backoff: time.Microsecond}
	defer func() { data.DefaultRetry = old }()

	if _, err := data.LoadMNISTFiles(imgPath, lblPath); err == nil {
		t.Fatal("5 consecutive faults absorbed by a 3-attempt budget")
	} else if !errors.Is(err, ErrTransient) {
		t.Fatalf("error does not wrap the transient cause: %v", err)
	}
}

// writeMNIST writes a minimal valid IDX image/label pair with n samples.
func writeMNIST(t *testing.T, dir string, n int) (imgPath, lblPath string) {
	t.Helper()
	img := []byte{0, 0, 8, 3, 0, 0, 0, byte(n), 0, 0, 0, 28, 0, 0, 0, 28}
	img = append(img, make([]byte, n*28*28)...)
	lbl := []byte{0, 0, 8, 1, 0, 0, 0, byte(n)}
	for i := 0; i < n; i++ {
		lbl = append(lbl, byte(i%10))
	}
	imgPath = filepath.Join(dir, "images.idx")
	lblPath = filepath.Join(dir, "labels.idx")
	if err := os.WriteFile(imgPath, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lblPath, lbl, 0o644); err != nil {
		t.Fatal(err)
	}
	return imgPath, lblPath
}
