// Package faultinject is the deterministic fault-injection harness behind
// the robustness test suite (ROBUSTNESS.md): every recovery path the
// runtime claims to handle — a corrupt or torn checkpoint, a NaN poisoned
// into a gradient, a flaky dataset read — can be triggered on purpose,
// reproducibly, from a single seed.
//
// Determinism is the point. Chaos that cannot be replayed cannot be
// debugged; the Injector derives every decision (which byte to flip,
// which gradient element to poison, where a read breaks) from a private
// internal/rng stream, so a failing scenario reruns bit-identically under
// the same seed — the same property the paper demands of the training
// computation itself.
package faultinject

import (
	"fmt"
	"io"
	"math"
	"os"

	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
)

// Injector derives fault decisions from a seeded RNG stream.
type Injector struct {
	r *rng.RNG
}

// New creates an injector; the same seed yields the same fault sequence.
func New(seed uint64) *Injector {
	return &Injector{r: rng.New(seed, 0xFA017)}
}

// CorruptFile flips one byte of the file at a seeded offset — the
// bit-rot / partial-overwrite model a checksummed snapshot must detect.
// Returns the offset flipped.
func (in *Injector) CorruptFile(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if st.Size() == 0 {
		return 0, fmt.Errorf("faultinject: %s is empty", path)
	}
	off := int64(in.r.Intn(int(st.Size())))
	return off, FlipByteAt(path, off)
}

// FlipByteAt inverts the byte at offset off of the file in place.
func FlipByteAt(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		f.Close()
		return err
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TruncateFile shears the file to a seeded strict prefix of itself — the
// torn-write model of a crash mid-save. Returns the new length.
func (in *Injector) TruncateFile(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if st.Size() < 2 {
		return 0, fmt.Errorf("faultinject: %s too small to truncate", path)
	}
	n := 1 + int64(in.r.Intn(int(st.Size()-1)))
	return n, os.Truncate(path, n)
}

// GradPoisoner writes a NaN into one seeded element of one seeded
// parameter gradient when training reaches a fixed iteration — the
// minimal numerical fault a divergence guard must catch.
type GradPoisoner struct {
	n     *net.Net
	at    int
	param int
	index int
	// Fired reports whether the poison has been delivered.
	Fired bool
}

// GradPoisoner arms a poisoner for iteration at. The target element is
// chosen from the injector's stream at arming time, so the scenario is
// fixed before training starts.
func (in *Injector) GradPoisoner(n *net.Net, at int) (*GradPoisoner, error) {
	params := n.Params()
	if len(params) == 0 {
		return nil, fmt.Errorf("faultinject: net has no parameters")
	}
	p := in.r.Intn(len(params))
	if params[p].Count() == 0 {
		return nil, fmt.Errorf("faultinject: parameter %d is empty", p)
	}
	return &GradPoisoner{
		n: n, at: at, param: p, index: in.r.Intn(params[p].Count()),
	}, nil
}

// Apply delivers the poison when iter matches the armed iteration;
// call it after the backward pass (e.g. from a solver pre-update hook).
func (g *GradPoisoner) Apply(iter int) bool {
	if iter != g.at {
		return false
	}
	g.n.Params()[g.param].Diff()[g.index] = float32(math.NaN())
	g.Fired = true
	return true
}

// Hook composes the poisoner with a downstream solver pre-update hook
// (nil means proceed): the poison lands first, then the downstream hook —
// typically guard.Monitor.Check — sees the damaged gradient.
func (g *GradPoisoner) Hook(next solver.PreUpdateHook) solver.PreUpdateHook {
	return func(iter int, loss float64) solver.PreUpdateAction {
		g.Apply(iter)
		if next == nil {
			return solver.ActProceed
		}
		return next(iter, loss)
	}
}

// ErrTransient is the error flaky readers return; it models a recoverable
// I/O failure (NFS hiccup, throttled object store) that a bounded retry
// should absorb.
var ErrTransient = fmt.Errorf("faultinject: transient read failure")

// FlakyOpener makes the first Failures read attempts of every path fail —
// either at open, or (when the injector decides so) partway through the
// read, which exercises truncated-read handling too. It plugs into the
// dataset loaders via data.SetOpenFile.
type FlakyOpener struct {
	open     func(string) (io.ReadCloser, error)
	failures int
	r        *rng.RNG
	attempts map[string]int
}

// FlakyOpener wraps the real file opener: per path, the first failures
// attempts fail deterministically, later ones succeed.
func (in *Injector) FlakyOpener(failures int) *FlakyOpener {
	return &FlakyOpener{
		open:     func(path string) (io.ReadCloser, error) { return os.Open(path) },
		failures: failures,
		r:        in.r.Split(1),
		attempts: map[string]int{},
	}
}

// Attempts reports how many opens were made for path.
func (f *FlakyOpener) Attempts(path string) int { return f.attempts[path] }

// Open implements the data.SetOpenFile signature.
func (f *FlakyOpener) Open(path string) (io.ReadCloser, error) {
	f.attempts[path]++
	if f.attempts[path] <= f.failures {
		// Half the failures happen at open, half partway through the
		// read; both must look transient to the loader's retry loop.
		if f.r.Bernoulli(0.5) {
			return nil, fmt.Errorf("faultinject: open %s: %w", path, ErrTransient)
		}
		st, err := os.Stat(path)
		if err != nil || st.Size() < 2 {
			// Too small to break partway through: fail at open instead.
			return nil, fmt.Errorf("faultinject: open %s: %w", path, ErrTransient)
		}
		rc, err := f.open(path)
		if err != nil {
			return nil, err
		}
		// The budget is a seeded strict prefix of the file, so the read
		// always breaks before completing.
		return &flakyFile{rc: rc, remaining: 1 + int64(f.r.Intn(int(st.Size()-1)))}, nil
	}
	return f.open(path)
}

// flakyFile reads normally until its byte budget runs out, then fails.
type flakyFile struct {
	rc        io.ReadCloser
	remaining int64
}

func (ff *flakyFile) Read(p []byte) (int, error) {
	if ff.remaining <= 0 {
		return 0, ErrTransient
	}
	if int64(len(p)) > ff.remaining {
		p = p[:ff.remaining]
	}
	n, err := ff.rc.Read(p)
	ff.remaining -= int64(n)
	if err == nil && ff.remaining <= 0 {
		err = ErrTransient
	}
	return n, err
}

func (ff *flakyFile) Close() error { return ff.rc.Close() }
