package layers

import (
	"fmt"
	"math"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/rng"
)

// Filler initializes a parameter blob, mirroring Caffe's weight fillers.
type Filler interface {
	// Fill writes initial values into b's data using r.
	Fill(b *blob.Blob, r *rng.RNG)
	// String describes the filler for diagnostics.
	String() string
}

// ConstantFiller sets every element to Value (Caffe "constant").
type ConstantFiller struct{ Value float32 }

// Fill implements Filler.
func (f ConstantFiller) Fill(b *blob.Blob, _ *rng.RNG) {
	d := b.Data()
	for i := range d {
		d[i] = f.Value
	}
}

func (f ConstantFiller) String() string { return fmt.Sprintf("constant(%g)", f.Value) }

// GaussianFiller draws from N(Mean, Std²) (Caffe "gaussian").
type GaussianFiller struct{ Mean, Std float32 }

// Fill implements Filler.
func (f GaussianFiller) Fill(b *blob.Blob, r *rng.RNG) {
	d := b.Data()
	for i := range d {
		d[i] = r.Gaussian(f.Mean, f.Std)
	}
}

func (f GaussianFiller) String() string { return fmt.Sprintf("gaussian(%g, %g)", f.Mean, f.Std) }

// UniformFiller draws uniformly from [Min, Max) (Caffe "uniform").
type UniformFiller struct{ Min, Max float32 }

// Fill implements Filler.
func (f UniformFiller) Fill(b *blob.Blob, r *rng.RNG) {
	d := b.Data()
	for i := range d {
		d[i] = r.Range(f.Min, f.Max)
	}
}

func (f UniformFiller) String() string { return fmt.Sprintf("uniform[%g, %g)", f.Min, f.Max) }

// XavierFiller draws uniformly from [-s, s) with s = sqrt(3 / fanIn),
// Caffe's "xavier" (Glorot) filler with the default fan-in normalization.
// Fan-in is count / dim(0): for a conv weight (O, C, KH, KW) that is
// C*KH*KW; for an inner-product weight (N, K) it is K.
type XavierFiller struct{}

// Fill implements Filler.
func (XavierFiller) Fill(b *blob.Blob, r *rng.RNG) {
	fanIn := 1
	if b.AxisCount() > 0 && b.Dim(0) > 0 {
		fanIn = b.Count() / b.Dim(0)
	}
	s := float32(math.Sqrt(3.0 / float64(fanIn)))
	d := b.Data()
	for i := range d {
		d[i] = r.Range(-s, s)
	}
}

func (XavierFiller) String() string { return "xavier" }

// MSRAFiller draws from N(0, 2/fanIn), the He initialization Caffe calls
// "msra"; appropriate ahead of ReLU nonlinearities.
type MSRAFiller struct{}

// Fill implements Filler.
func (MSRAFiller) Fill(b *blob.Blob, r *rng.RNG) {
	fanIn := 1
	if b.AxisCount() > 0 && b.Dim(0) > 0 {
		fanIn = b.Count() / b.Dim(0)
	}
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	d := b.Data()
	for i := range d {
		d[i] = r.Gaussian(0, std)
	}
}

func (MSRAFiller) String() string { return "msra" }

// FillerByName constructs a filler from its Caffe prototxt name. The value
// parameter is interpreted per type (constant value, gaussian std, uniform
// half-range). Unknown names return an error.
func FillerByName(name string, value float32) (Filler, error) {
	switch name {
	case "", "constant":
		return ConstantFiller{Value: value}, nil
	case "gaussian":
		return GaussianFiller{Std: value}, nil
	case "uniform":
		return UniformFiller{Min: -value, Max: value}, nil
	case "xavier":
		return XavierFiller{}, nil
	case "msra":
		return MSRAFiller{}, nil
	default:
		return nil, fmt.Errorf("layers: unknown filler %q", name)
	}
}
