package layers

import (
	"math"
	"testing"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
)

// runForward drives a layer through the sequential path.
func runForward(l Layer, bottoms, tops []*blob.Blob) {
	if p, ok := l.(ForwardPreparer); ok {
		p.ForwardPrepare(bottoms, tops)
	}
	if n := l.ForwardExtent(); n > 0 {
		l.ForwardRange(0, n, bottoms, tops)
	}
	if f, ok := l.(ForwardFinisher); ok {
		f.ForwardFinish(bottoms, tops)
	}
}

func setup(t *testing.T, l Layer, bottoms []*blob.Blob) []*blob.Blob {
	t.Helper()
	tops := make([]*blob.Blob, topArity(l))
	for i := range tops {
		tops[i] = blob.New()
	}
	if err := l.SetUp(bottoms, tops); err != nil {
		t.Fatalf("SetUp: %v", err)
	}
	return tops
}

func almostEq(t *testing.T, got, want, tol float32, msg string) {
	t.Helper()
	if math.Abs(float64(got-want)) > float64(tol) {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

// --- Convolution ---

func TestConvForwardKnownValues(t *testing.T) {
	l, err := NewConvolution("c", ConvConfig{NumOutput: 1, Kernel: 2,
		WeightFiller: ConstantFiller{Value: 1}, BiasFiller: ConstantFiller{Value: 10}})
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(1, 1, 3, 3)
	copy(bottom.Data(), []float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	// All-ones 2x2 kernel: window sums + bias 10.
	want := []float32{12 + 10, 16 + 10, 24 + 10, 28 + 10}
	for i, w := range want {
		almostEq(t, tops[0].Data()[i], w, 1e-5, "conv output")
	}
	if s := tops[0].Shape(); s[0] != 1 || s[1] != 1 || s[2] != 2 || s[3] != 2 {
		t.Fatalf("conv top shape %v", s)
	}
}

func TestConvShapesLeNet(t *testing.T) {
	// conv1 of LeNet: 20 maps, 5x5, on 28x28 -> 24x24.
	r := rng.New(1, 1)
	l, err := NewConvolution("conv1", ConvConfig{NumOutput: 20, Kernel: 5, RNG: r})
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(4, 1, 28, 28)
	tops := setup(t, l, []*blob.Blob{bottom})
	if s := tops[0].Shape(); s[1] != 20 || s[2] != 24 || s[3] != 24 {
		t.Fatalf("lenet conv1 shape %v", s)
	}
	if w := l.Params()[0].Shape(); w[0] != 20 || w[1] != 1 || w[2] != 5 || w[3] != 5 {
		t.Fatalf("weight shape %v", w)
	}
	if l.ForwardExtent() != 4*20 {
		t.Fatalf("forward extent %d", l.ForwardExtent())
	}
	if l.BackwardExtent() != 4 {
		t.Fatalf("backward extent %d", l.BackwardExtent())
	}
}

func TestConvEnginePathsAgree(t *testing.T) {
	r := rng.New(2, 1)
	mk := func() (*Convolution, *blob.Blob, []*blob.Blob) {
		rr := rng.New(7, 7)
		l, err := NewConvolution("c", ConvConfig{NumOutput: 4, Kernel: 3, Pad: 1,
			WeightFiller: GaussianFiller{Std: 0.2}, RNG: rr})
		if err != nil {
			t.Fatal(err)
		}
		bottom := randomBlob(r, -1, 1, 3, 2, 6, 6)
		tops := setup(t, l, []*blob.Blob{bottom})
		return l, bottom, tops
	}
	// Sequential reference. The three variants must share inputs: rebuild
	// bottom identically by copying.
	lSeq, bSeq, tSeq := mk()
	runForward(lSeq, []*blob.Blob{bSeq}, tSeq)

	p := par.NewPool(4)
	defer p.Close()

	lFine, bFine, tFine := mk()
	bFine.CopyDataFrom(bSeq)
	lFine.Params()[0].CopyDataFrom(lSeq.Params()[0])
	lFine.Params()[1].CopyDataFrom(lSeq.Params()[1])
	lFine.ForwardFine(p, []*blob.Blob{bFine}, tFine)
	for i := range tSeq[0].Data() {
		almostEq(t, tFine[0].Data()[i], tSeq[0].Data()[i], 1e-5, "fine forward")
	}

	lTuned, bTuned, tTuned := mk()
	bTuned.CopyDataFrom(bSeq)
	lTuned.Params()[0].CopyDataFrom(lSeq.Params()[0])
	lTuned.Params()[1].CopyDataFrom(lSeq.Params()[1])
	lTuned.ForwardTuned(p, []*blob.Blob{bTuned}, tTuned)
	for i := range tSeq[0].Data() {
		almostEq(t, tTuned[0].Data()[i], tSeq[0].Data()[i], 1e-4, "tuned forward")
	}

	// Backward agreement: seed identical top diffs.
	for i := range tSeq[0].Diff() {
		g := r.Range(-1, 1)
		tSeq[0].Diff()[i] = g
		tFine[0].Diff()[i] = g
		tTuned[0].Diff()[i] = g
	}
	lSeq.BackwardRange(0, lSeq.BackwardExtent(), []*blob.Blob{bSeq}, tSeq, lSeq.Params())
	lFine.BackwardFine(p, []*blob.Blob{bFine}, tFine)
	lTuned.BackwardTuned(p, []*blob.Blob{bTuned}, tTuned)
	for i := range bSeq.Diff() {
		almostEq(t, bFine.Diff()[i], bSeq.Diff()[i], 1e-4, "fine bottom grad")
		almostEq(t, bTuned.Diff()[i], bSeq.Diff()[i], 1e-4, "tuned bottom grad")
	}
	for pi := range lSeq.Params() {
		for i := range lSeq.Params()[pi].Diff() {
			almostEq(t, lFine.Params()[pi].Diff()[i], lSeq.Params()[pi].Diff()[i], 1e-3, "fine param grad")
			almostEq(t, lTuned.Params()[pi].Diff()[i], lSeq.Params()[pi].Diff()[i], 1e-3, "tuned param grad")
		}
	}
}

func TestConvBadConfig(t *testing.T) {
	if _, err := NewConvolution("c", ConvConfig{NumOutput: 0, Kernel: 3}); err == nil {
		t.Fatal("zero NumOutput accepted")
	}
	if _, err := NewConvolution("c", ConvConfig{NumOutput: 2}); err == nil {
		t.Fatal("zero kernel accepted")
	}
}

func TestConvWrongBottomRank(t *testing.T) {
	l, _ := NewConvolution("c", ConvConfig{NumOutput: 1, Kernel: 2})
	if err := l.SetUp([]*blob.Blob{blob.New(3, 4)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("2-D bottom accepted")
	}
}

func TestConvPropagateDownSkipsBottomDiff(t *testing.T) {
	r := rng.New(3, 1)
	l, err := NewConvolution("c", ConvConfig{NumOutput: 2, Kernel: 2, RNG: r})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 1, 4, 4)
	tops := setup(t, l, []*blob.Blob{bottom})
	l.SetPropagateDown([]bool{false})
	runForward(l, []*blob.Blob{bottom}, tops)
	for i := range tops[0].Diff() {
		tops[0].Diff()[i] = 1
	}
	for i := range bottom.Diff() {
		bottom.Diff()[i] = 42 // sentinel
	}
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{bottom}, tops, l.Params())
	for i := range bottom.Diff() {
		if bottom.Diff()[i] != 42 {
			t.Fatal("bottom diff touched despite propagateDown=false")
		}
	}
	// Weight gradient must still be computed.
	if l.Params()[0].AsumDiff() == 0 {
		t.Fatal("weight gradient not computed")
	}
}

// --- Pooling ---

func TestMaxPoolForwardAndMask(t *testing.T) {
	l, err := NewPooling("p", PoolConfig{Method: MaxPool, Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(1, 1, 4, 4)
	copy(bottom.Data(), []float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	})
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	want := []float32{4, 8, 12, 16}
	for i, w := range want {
		almostEq(t, tops[0].Data()[i], w, 0, "max pool")
	}
	// Backward routes gradient to the argmax positions.
	copy(tops[0].Diff(), []float32{1, 2, 3, 4})
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{bottom}, tops, nil)
	if bottom.DiffAt(0, 0, 1, 1) != 1 || bottom.DiffAt(0, 0, 1, 3) != 2 ||
		bottom.DiffAt(0, 0, 3, 1) != 3 || bottom.DiffAt(0, 0, 3, 3) != 4 {
		t.Fatalf("max pool backward wrong: %v", bottom.Diff())
	}
	if bottom.DiffAt(0, 0, 0, 0) != 0 {
		t.Fatal("gradient leaked to non-max position")
	}
}

func TestAvePoolForward(t *testing.T) {
	l, err := NewPooling("p", PoolConfig{Method: AvePool, Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(1, 1, 2, 2)
	copy(bottom.Data(), []float32{1, 2, 3, 4})
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	almostEq(t, tops[0].Data()[0], 2.5, 1e-6, "ave pool")
}

func TestPoolFineMatchesSeq(t *testing.T) {
	r := rng.New(4, 1)
	for _, m := range []PoolMethod{MaxPool, AvePool} {
		l, err := NewPooling("p", PoolConfig{Method: m, Kernel: 3, Stride: 2})
		if err != nil {
			t.Fatal(err)
		}
		bottom := randomBlob(r, -1, 1, 2, 3, 8, 8)
		tops := setup(t, l, []*blob.Blob{bottom})
		runForward(l, []*blob.Blob{bottom}, tops)
		ref := append([]float32(nil), tops[0].Data()...)
		p := par.NewPool(3)
		l.ForwardFine(p, []*blob.Blob{bottom}, tops)
		p.Close()
		for i := range ref {
			if tops[0].Data()[i] != ref[i] {
				t.Fatalf("%v fine forward differs at %d", m, i)
			}
		}
	}
}

func TestPoolShapesCIFAR(t *testing.T) {
	// pool1 of CIFAR: 3x3 stride 2 on 32x32 -> 16x16 (ceil mode).
	l, _ := NewPooling("p", PoolConfig{Method: MaxPool, Kernel: 3, Stride: 2})
	bottom := blob.New(2, 32, 32, 32)
	tops := setup(t, l, []*blob.Blob{bottom})
	if s := tops[0].Shape(); s[2] != 16 || s[3] != 16 {
		t.Fatalf("cifar pool1 shape %v", s)
	}
}

// --- InnerProduct ---

func TestInnerProductKnownValues(t *testing.T) {
	l, err := NewInnerProduct("ip", IPConfig{NumOutput: 2,
		WeightFiller: ConstantFiller{Value: 1}, BiasFiller: ConstantFiller{Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(2, 3)
	copy(bottom.Data(), []float32{1, 2, 3, 4, 5, 6})
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	want := []float32{11, 11, 20, 20} // row sums + bias
	for i, w := range want {
		almostEq(t, tops[0].Data()[i], w, 1e-5, "ip output")
	}
}

func TestInnerProductFineMatchesSeq(t *testing.T) {
	r := rng.New(5, 1)
	l, err := NewInnerProduct("ip", IPConfig{NumOutput: 7,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 5, 9)
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	ref := append([]float32(nil), tops[0].Data()...)
	p := par.NewPool(4)
	defer p.Close()
	l.ForwardFine(p, []*blob.Blob{bottom}, tops)
	for i := range ref {
		almostEq(t, tops[0].Data()[i], ref[i], 1e-5, "ip fine forward")
	}

	// Backward comparison.
	for i := range tops[0].Diff() {
		tops[0].Diff()[i] = r.Range(-1, 1)
	}
	l.Params()[0].ZeroDiff()
	l.Params()[1].ZeroDiff()
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{bottom}, tops, l.Params())
	wRef := append([]float32(nil), l.Params()[0].Diff()...)
	bRef := append([]float32(nil), l.Params()[1].Diff()...)
	xRef := append([]float32(nil), bottom.Diff()...)
	l.Params()[0].ZeroDiff()
	l.Params()[1].ZeroDiff()
	bottom.ZeroDiff()
	l.BackwardFine(p, []*blob.Blob{bottom}, tops)
	for i := range wRef {
		almostEq(t, l.Params()[0].Diff()[i], wRef[i], 1e-4, "ip fine dW")
	}
	for i := range bRef {
		almostEq(t, l.Params()[1].Diff()[i], bRef[i], 1e-4, "ip fine db")
	}
	for i := range xRef {
		almostEq(t, bottom.Diff()[i], xRef[i], 1e-4, "ip fine dx")
	}
}

func TestInnerProductBadConfig(t *testing.T) {
	if _, err := NewInnerProduct("ip", IPConfig{NumOutput: -1}); err == nil {
		t.Fatal("negative NumOutput accepted")
	}
}

// --- Activations ---

func TestReLUValues(t *testing.T) {
	l := NewReLU("r", 0)
	bottom := blob.New(1, 4)
	copy(bottom.Data(), []float32{-2, -0.5, 0.5, 2})
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	want := []float32{0, 0, 0.5, 2}
	for i, w := range want {
		almostEq(t, tops[0].Data()[i], w, 0, "relu")
	}
}

func TestSigmoidValues(t *testing.T) {
	l := NewSigmoid("s")
	bottom := blob.New(1, 3)
	copy(bottom.Data(), []float32{0, 100, -100})
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	almostEq(t, tops[0].Data()[0], 0.5, 1e-6, "sigmoid(0)")
	almostEq(t, tops[0].Data()[1], 1, 1e-6, "sigmoid(100)")
	almostEq(t, tops[0].Data()[2], 0, 1e-6, "sigmoid(-100)")
}

func TestTanHValues(t *testing.T) {
	l := NewTanH("t")
	bottom := blob.New(1, 2)
	copy(bottom.Data(), []float32{0, 1})
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	almostEq(t, tops[0].Data()[0], 0, 1e-6, "tanh(0)")
	almostEq(t, tops[0].Data()[1], float32(math.Tanh(1)), 1e-6, "tanh(1)")
}

func TestElementwiseFineMatchesSeq(t *testing.T) {
	r := rng.New(6, 1)
	l := NewReLU("r", 0.1)
	bottom := randomBlob(r, -1, 1, 4, 3, 5, 5)
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	ref := append([]float32(nil), tops[0].Data()...)
	p := par.NewPool(5)
	defer p.Close()
	l.ForwardFine(p, []*blob.Blob{bottom}, tops)
	for i := range ref {
		if tops[0].Data()[i] != ref[i] {
			t.Fatal("relu fine differs")
		}
	}
}

// --- LRN ---

func TestLRNUniformInput(t *testing.T) {
	// With all inputs = v, interior channels see scale = K + alpha*v²
	// (window fully populated: sum = n*v², times alpha/n).
	l, err := NewLRN("n", LRNConfig{LocalSize: 3, Alpha: 0.3, Beta: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(1, 5, 1, 1)
	v := float32(2)
	for i := range bottom.Data() {
		bottom.Data()[i] = v
	}
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	wantInterior := v / (1 + 0.3*v*v)
	almostEq(t, tops[0].Data()[2], wantInterior, 1e-5, "lrn interior")
	// Edge channel: window has 2 entries -> scale = 1 + (0.3/3)*2v².
	wantEdge := v / (1 + 0.1*2*v*v)
	almostEq(t, tops[0].Data()[0], wantEdge, 1e-5, "lrn edge")
}

func TestLRNFineMatchesSeq(t *testing.T) {
	r := rng.New(7, 1)
	l, err := NewLRN("n", LRNConfig{LocalSize: 5, Alpha: 0.01, Beta: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 8, 4, 4)
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	ref := append([]float32(nil), tops[0].Data()...)
	p := par.NewPool(3)
	defer p.Close()
	l.ForwardFine(p, []*blob.Blob{bottom}, tops)
	for i := range ref {
		if tops[0].Data()[i] != ref[i] {
			t.Fatal("lrn fine differs")
		}
	}
}

func TestLRNEvenSizeRejected(t *testing.T) {
	if _, err := NewLRN("n", LRNConfig{LocalSize: 4}); err == nil {
		t.Fatal("even LocalSize accepted")
	}
}

// --- Softmax & losses ---

func TestSoftmaxSumsToOne(t *testing.T) {
	r := rng.New(8, 1)
	l := NewSoftmax("sm")
	bottom := randomBlob(r, -3, 3, 4, 7)
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	for s := 0; s < 4; s++ {
		var sum float32
		for c := 0; c < 7; c++ {
			v := tops[0].At(s, c)
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", v)
			}
			sum += v
		}
		almostEq(t, sum, 1, 1e-5, "softmax sum")
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	l := NewSoftmax("sm")
	bottom := blob.New(1, 3)
	copy(bottom.Data(), []float32{1, 2, 3})
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	ref := append([]float32(nil), tops[0].Data()...)
	copy(bottom.Data(), []float32{101, 102, 103})
	runForward(l, []*blob.Blob{bottom}, tops)
	for i := range ref {
		almostEq(t, tops[0].Data()[i], ref[i], 1e-5, "softmax shift invariance")
	}
}

func TestSoftmaxWithLossUniformScores(t *testing.T) {
	l := NewSoftmaxWithLoss("loss")
	scores := blob.New(3, 10) // all zeros -> uniform distribution
	labels := blob.New(3)
	labels.Data()[0], labels.Data()[1], labels.Data()[2] = 0, 5, 9
	tops := setup(t, l, []*blob.Blob{scores, labels})
	runForward(l, []*blob.Blob{scores, labels}, tops)
	almostEq(t, tops[0].Data()[0], float32(math.Log(10)), 1e-5, "uniform loss = ln(10)")
}

func TestSoftmaxWithLossPerfectPrediction(t *testing.T) {
	l := NewSoftmaxWithLoss("loss")
	scores := blob.New(2, 4)
	labels := blob.New(2)
	scores.Set(50, 0, 1)
	labels.Data()[0] = 1
	scores.Set(50, 1, 3)
	labels.Data()[1] = 3
	tops := setup(t, l, []*blob.Blob{scores, labels})
	runForward(l, []*blob.Blob{scores, labels}, tops)
	if tops[0].Data()[0] > 1e-4 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", tops[0].Data()[0])
	}
}

func TestSoftmaxWithLossLabelOutOfRangePanics(t *testing.T) {
	l := NewSoftmaxWithLoss("loss")
	scores := blob.New(1, 3)
	labels := blob.New(1)
	labels.Data()[0] = 7
	tops := setup(t, l, []*blob.Blob{scores, labels})
	defer func() {
		if recover() == nil {
			t.Fatal("bad label did not panic")
		}
	}()
	runForward(l, []*blob.Blob{scores, labels}, tops)
}

func TestSoftmaxWithLossBatchMismatch(t *testing.T) {
	l := NewSoftmaxWithLoss("loss")
	if err := l.SetUp([]*blob.Blob{blob.New(3, 4), blob.New(2)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("batch mismatch accepted")
	}
}

func TestEuclideanLossKnownValue(t *testing.T) {
	l := NewEuclideanLoss("el")
	a := blob.New(2, 2)
	b := blob.New(2, 2)
	copy(a.Data(), []float32{1, 2, 3, 4})
	copy(b.Data(), []float32{1, 0, 3, 2}) // diffs 0,2,0,2
	tops := setup(t, l, []*blob.Blob{a, b})
	runForward(l, []*blob.Blob{a, b}, tops)
	almostEq(t, tops[0].Data()[0], 2, 1e-5, "euclidean loss (0.5*(4+4)/2)")
}

// --- Accuracy ---

func TestAccuracyTop1(t *testing.T) {
	l := NewAccuracy("acc", 1)
	scores := blob.New(4, 3)
	labels := blob.New(4)
	put := func(s int, vals [3]float32, lab int) {
		for c, v := range vals {
			scores.Set(v, s, c)
		}
		labels.Data()[s] = float32(lab)
	}
	put(0, [3]float32{1, 5, 2}, 1) // correct
	put(1, [3]float32{9, 5, 2}, 1) // wrong
	put(2, [3]float32{1, 2, 3}, 2) // correct
	put(3, [3]float32{1, 2, 3}, 0) // wrong
	tops := setup(t, l, []*blob.Blob{scores, labels})
	runForward(l, []*blob.Blob{scores, labels}, tops)
	almostEq(t, tops[0].Data()[0], 0.5, 1e-6, "top-1 accuracy")
}

func TestAccuracyTopK(t *testing.T) {
	l := NewAccuracy("acc", 2)
	scores := blob.New(2, 4)
	labels := blob.New(2)
	copy(scores.Data(), []float32{
		9, 5, 2, 1, // label 1 is 2nd -> in top-2
		9, 5, 2, 1, // label 3 is 4th -> not in top-2
	})
	labels.Data()[0] = 1
	labels.Data()[1] = 3
	tops := setup(t, l, []*blob.Blob{scores, labels})
	runForward(l, []*blob.Blob{scores, labels}, tops)
	almostEq(t, tops[0].Data()[0], 0.5, 1e-6, "top-2 accuracy")
	if l.BackwardExtent() != 0 {
		t.Fatal("accuracy should have no backward")
	}
}

// --- Dropout ---

func TestDropoutTestModeIsIdentity(t *testing.T) {
	r := rng.New(9, 1)
	l, err := NewDropout("d", 0.5, r.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	l.SetTrain(false)
	bottom := randomBlob(r, -1, 1, 3, 4)
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	for i := range bottom.Data() {
		if tops[0].Data()[i] != bottom.Data()[i] {
			t.Fatal("test-mode dropout is not identity")
		}
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	r := rng.New(10, 1)
	ratio := float32(0.3)
	l, err := NewDropout("d", ratio, r.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(100, 100)
	for i := range bottom.Data() {
		bottom.Data()[i] = 1
	}
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	zeros := 0
	var mean float64
	for _, v := range tops[0].Data() {
		if v == 0 {
			zeros++
		}
		mean += float64(v)
	}
	n := float64(bottom.Count())
	if frac := float64(zeros) / n; math.Abs(frac-float64(ratio)) > 0.02 {
		t.Fatalf("drop fraction %v, want ~%v", frac, ratio)
	}
	// Inverted dropout preserves the expectation.
	if mean/n < 0.95 || mean/n > 1.05 {
		t.Fatalf("mean after dropout %v, want ~1", mean/n)
	}
}

func TestDropoutBadRatio(t *testing.T) {
	if _, err := NewDropout("d", 1.0, nil); err == nil {
		t.Fatal("ratio 1.0 accepted")
	}
	if _, err := NewDropout("d", -0.1, nil); err == nil {
		t.Fatal("negative ratio accepted")
	}
}

// --- Data ---

type countingSource struct{ n int }

func (s countingSource) Len() int           { return s.n }
func (s countingSource) SampleShape() []int { return []int{1, 2, 2} }
func (s countingSource) Classes() int       { return s.n }
func (s countingSource) Read(i int, out []float32) int {
	for j := range out {
		out[j] = float32(i)
	}
	return i
}

func TestDataLayerBatches(t *testing.T) {
	l, err := NewData("data", countingSource{n: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	tops := setup(t, l, nil)
	if s := tops[0].Shape(); s[0] != 4 || s[1] != 1 || s[2] != 2 || s[3] != 2 {
		t.Fatalf("data top shape %v", s)
	}
	runForward(l, nil, tops)
	for s := 0; s < 4; s++ {
		if tops[1].Data()[s] != float32(s) {
			t.Fatalf("labels %v", tops[1].Data())
		}
		if tops[0].At(s, 0, 0, 0) != float32(s) {
			t.Fatal("pixels wrong")
		}
	}
	// Second batch continues; third wraps (10 samples, batch 4).
	runForward(l, nil, tops)
	if tops[1].Data()[0] != 4 {
		t.Fatalf("second batch starts at %v", tops[1].Data()[0])
	}
	runForward(l, nil, tops)
	if tops[1].Data()[0] != 8 || tops[1].Data()[2] != 0 {
		t.Fatalf("wrap batch labels %v", tops[1].Data())
	}
	if l.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", l.Epoch())
	}
	l.Rewind()
	runForward(l, nil, tops)
	if tops[1].Data()[0] != 0 {
		t.Fatal("rewind did not reset cursor")
	}
}

func TestDataSkipMatchesReadingThrough(t *testing.T) {
	// Skip(n) must land cursor and epoch exactly where loading n
	// batches would, wraparound included — the data half of what makes
	// a resumed (or elastically re-formed) run bit-identical.
	read, err := NewData("read", countingSource{n: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	readTops := setup(t, read, nil)
	for i := 0; i < 7; i++ { // 28 samples over a 10-sample source
		runForward(read, nil, readTops)
	}

	skip, err := NewData("skip", countingSource{n: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	skipTops := setup(t, skip, nil)
	skip.Skip(7)
	if skip.Epoch() != read.Epoch() {
		t.Fatalf("epoch after Skip(7) = %d, want %d", skip.Epoch(), read.Epoch())
	}
	runForward(read, nil, readTops)
	runForward(skip, nil, skipTops)
	for s := 0; s < 4; s++ {
		if skipTops[1].Data()[s] != readTops[1].Data()[s] {
			t.Fatalf("batch after Skip diverged: %v vs %v", skipTops[1].Data(), readTops[1].Data())
		}
	}

	// Zero and negative skips are no-ops.
	before := skipTops[1].Data()[0]
	skip.Skip(0)
	skip.Skip(-3)
	runForward(read, nil, readTops)
	runForward(skip, nil, skipTops)
	if skipTops[1].Data()[0] != readTops[1].Data()[0] {
		t.Fatalf("no-op skip moved the cursor (was %v)", before)
	}
}

func TestDataLayerErrors(t *testing.T) {
	if _, err := NewData("d", nil, 4); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewData("d", countingSource{n: 10}, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := NewData("d", countingSource{n: 0}, 1); err == nil {
		t.Fatal("empty source accepted")
	}
}

// --- Fillers ---

func TestFillers(t *testing.T) {
	r := rng.New(11, 1)
	b := blob.New(100, 50)

	ConstantFiller{Value: 3}.Fill(b, r)
	if b.Data()[17] != 3 {
		t.Fatal("constant filler")
	}

	XavierFiller{}.Fill(b, r)
	s := float32(math.Sqrt(3.0 / 50.0))
	for _, v := range b.Data() {
		if v < -s || v >= s {
			t.Fatalf("xavier value %v outside [-%v, %v)", v, s, s)
		}
	}

	GaussianFiller{Mean: 1, Std: 0.1}.Fill(b, r)
	var mean float64
	for _, v := range b.Data() {
		mean += float64(v)
	}
	mean /= float64(b.Count())
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("gaussian filler mean %v", mean)
	}

	UniformFiller{Min: 2, Max: 3}.Fill(b, r)
	for _, v := range b.Data() {
		if v < 2 || v >= 3 {
			t.Fatalf("uniform filler value %v", v)
		}
	}

	MSRAFiller{}.Fill(b, r)
	var sq float64
	for _, v := range b.Data() {
		sq += float64(v) * float64(v)
	}
	variance := sq / float64(b.Count())
	if math.Abs(variance-2.0/50.0) > 0.01 {
		t.Fatalf("msra variance %v, want %v", variance, 2.0/50.0)
	}
}

func TestFillerByName(t *testing.T) {
	for _, name := range []string{"constant", "gaussian", "uniform", "xavier", "msra", ""} {
		if _, err := FillerByName(name, 0.5); err != nil {
			t.Fatalf("FillerByName(%q): %v", name, err)
		}
	}
	if _, err := FillerByName("bogus", 0); err == nil {
		t.Fatal("unknown filler accepted")
	}
}

// --- Coalesced-range consistency: computing a layer forward in arbitrary
// chunk splits must equal the single-range result (the property the coarse
// engine relies on). ---

func TestChunkedForwardEqualsWhole(t *testing.T) {
	r := rng.New(12, 1)
	mk := func() []Layer {
		conv, _ := NewConvolution("c", ConvConfig{NumOutput: 3, Kernel: 3, RNG: rng.New(1, 1)})
		pool, _ := NewPooling("p", PoolConfig{Method: MaxPool, Kernel: 2, Stride: 2})
		ip, _ := NewInnerProduct("ip", IPConfig{NumOutput: 4, RNG: rng.New(2, 2)})
		lrn, _ := NewLRN("n", LRNConfig{LocalSize: 3, Alpha: 0.1, Beta: 0.75})
		return []Layer{conv, pool, NewReLU("r", 0), ip, lrn, NewSoftmax("sm")}
	}
	for _, l := range mk() {
		var bottom *blob.Blob
		switch l.Type() {
		case "InnerProduct", "Softmax":
			bottom = randomBlob(r, -1, 1, 6, 10)
		default:
			bottom = randomBlob(r, -1, 1, 6, 4, 8, 8)
		}
		tops := setup(t, l, []*blob.Blob{bottom})
		runForward(l, []*blob.Blob{bottom}, tops)
		ref := append([]float32(nil), tops[0].Data()...)
		tops[0].ZeroData()
		// Recompute in ragged chunks.
		n := l.ForwardExtent()
		for lo := 0; lo < n; {
			hi := lo + 1 + (lo % 3)
			if hi > n {
				hi = n
			}
			l.ForwardRange(lo, hi, []*blob.Blob{bottom}, tops)
			lo = hi
		}
		for i := range ref {
			if tops[0].Data()[i] != ref[i] {
				t.Fatalf("%s: chunked forward differs at %d", l.Type(), i)
			}
		}
	}
}

// The lowered (im2col+GEMM) convolution must agree with the direct loop
// nest in both passes, under arbitrary chunked range splits.
func TestConvLoweredMatchesDirect(t *testing.T) {
	r := rng.New(61, 1)
	mk := func(lowered bool) (*Convolution, *blob.Blob, []*blob.Blob) {
		l, err := NewConvolution("c", ConvConfig{
			NumOutput: 4, Kernel: 3, Pad: 1, Stride: 2, Lowered: lowered,
			WeightFiller: GaussianFiller{Std: 0.3}, RNG: rng.New(8, 8),
		})
		if err != nil {
			t.Fatal(err)
		}
		bottom := blob.New(5, 3, 7, 6)
		tops := setup(t, l, []*blob.Blob{bottom})
		return l, bottom, tops
	}
	ld, bd, td := mk(false)
	ll, bl, tl := mk(true)
	for i := range bd.Data() {
		v := r.Range(-1, 1)
		bd.Data()[i] = v
		bl.Data()[i] = v
	}
	runForward(ld, []*blob.Blob{bd}, td)
	// Lowered forward in ragged chunks (extent = samples).
	n := ll.ForwardExtent()
	if n != 5 {
		t.Fatalf("lowered forward extent %d, want 5", n)
	}
	for lo := 0; lo < n; lo += 2 {
		ll.ForwardRange(lo, min(lo+2, n), []*blob.Blob{bl}, tl)
	}
	for i := range td[0].Data() {
		almostEq(t, tl[0].Data()[i], td[0].Data()[i], 1e-4, "lowered forward")
	}

	for i := range td[0].Diff() {
		g := r.Range(-1, 1)
		td[0].Diff()[i] = g
		tl[0].Diff()[i] = g
	}
	ld.BackwardRange(0, ld.BackwardExtent(), []*blob.Blob{bd}, td, ld.Params())
	for lo := 0; lo < ll.BackwardExtent(); lo += 3 {
		ll.BackwardRange(lo, min(lo+3, ll.BackwardExtent()), []*blob.Blob{bl}, tl, ll.Params())
	}
	for i := range bd.Diff() {
		almostEq(t, bl.Diff()[i], bd.Diff()[i], 1e-4, "lowered bottom grad")
	}
	for pi := range ld.Params() {
		for i := range ld.Params()[pi].Diff() {
			almostEq(t, ll.Params()[pi].Diff()[i], ld.Params()[pi].Diff()[i], 1e-3, "lowered param grad")
		}
	}
}

func TestConvLoweredGradientCheck(t *testing.T) {
	r := rng.New(62, 1)
	l, err := NewConvolution("c", ConvConfig{NumOutput: 2, Kernel: 3, Pad: 1, Lowered: true,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 2, 5, 5)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-2, 2e-2)
}

func TestDeconvolutionShapesAndUpsampling(t *testing.T) {
	// kernel 2, stride 2, no pad: exact 2x upsampling.
	l, err := NewDeconvolution("dc", ConvConfig{NumOutput: 1, Kernel: 2, Stride: 2,
		WeightFiller: ConstantFiller{Value: 1}, NoBias: true})
	if err != nil {
		t.Fatal(err)
	}
	bottom := blob.New(1, 1, 2, 2)
	copy(bottom.Data(), []float32{1, 2, 3, 4})
	tops := setup(t, l, []*blob.Blob{bottom})
	if s := tops[0].Shape(); s[2] != 4 || s[3] != 4 {
		t.Fatalf("deconv shape %v, want 4x4", s)
	}
	runForward(l, []*blob.Blob{bottom}, tops)
	// Each input pixel becomes a 2x2 block of its value.
	want := []float32{
		1, 1, 2, 2,
		1, 1, 2, 2,
		3, 3, 4, 4,
		3, 3, 4, 4,
	}
	for i, v := range want {
		almostEq(t, tops[0].Data()[i], v, 1e-6, "deconv upsample")
	}
	// Weight shape: (C_in, C_out, KH, KW).
	if s := l.Params()[0].Shape(); s[0] != 1 || s[1] != 1 || s[2] != 2 || s[3] != 2 {
		t.Fatalf("deconv weight shape %v", s)
	}
}

func TestDeconvolutionInvertsConvShapes(t *testing.T) {
	// conv k5/s1 shrinks 28->24; deconv k5/s1 restores 24->28.
	conv, _ := NewConvolution("c", ConvConfig{NumOutput: 4, Kernel: 5, RNG: rng.New(1, 1)})
	dec, _ := NewDeconvolution("d", ConvConfig{NumOutput: 1, Kernel: 5, RNG: rng.New(1, 2)})
	bottom := blob.New(2, 1, 28, 28)
	mid := []*blob.Blob{blob.New()}
	if err := conv.SetUp([]*blob.Blob{bottom}, mid); err != nil {
		t.Fatal(err)
	}
	out := []*blob.Blob{blob.New()}
	if err := dec.SetUp(mid, out); err != nil {
		t.Fatal(err)
	}
	if s := out[0].Shape(); s[2] != 28 || s[3] != 28 {
		t.Fatalf("deconv did not restore 28x28: %v", s)
	}
}

func TestDeconvolutionChunkedForward(t *testing.T) {
	r := rng.New(83, 1)
	l, err := NewDeconvolution("dc", ConvConfig{NumOutput: 2, Kernel: 3, Stride: 2,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: rng.New(5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 5, 2, 4, 4)
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	ref := append([]float32(nil), tops[0].Data()...)
	tops[0].ZeroData()
	n := l.ForwardExtent()
	for lo := 0; lo < n; lo += 2 {
		l.ForwardRange(lo, min(lo+2, n), []*blob.Blob{bottom}, tops)
	}
	for i := range ref {
		if tops[0].Data()[i] != ref[i] {
			t.Fatal("chunked deconv forward differs")
		}
	}
}
