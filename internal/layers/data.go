package layers

import (
	"fmt"

	"coarsegrain/internal/blob"
)

// Source is the dataset abstraction consumed by the Data layer. Package
// data provides synthetic MNIST-like and CIFAR-like sources plus loaders
// for the real on-disk formats.
type Source interface {
	// Len returns the number of samples.
	Len() int
	// SampleShape returns the per-sample shape (channels, height, width).
	SampleShape() []int
	// Classes returns the number of label classes.
	Classes() int
	// Read writes sample i's pixels into out (len = C*H*W) and returns its
	// label. Read must be safe for concurrent use with distinct i.
	Read(i int, out []float32) int
}

// Data is the input layer: it feeds batches of samples and labels into the
// network. Tops are [data (S,C,H,W), labels (S)].
//
// As the paper observes (§4.3 "Locality between layers"), data layers
// execute *sequentially*: the batch load happens in ForwardPrepare on one
// thread, which is exactly why the first convolution suffers the locality
// penalty the paper measures. The forward extent is therefore 0.
type Data struct {
	base
	src       Source
	batchSize int
	cursor    int
	epoch     int
}

// NewData creates a data layer reading consecutive batches from src,
// wrapping around at the end of an epoch.
func NewData(name string, src Source, batchSize int) (*Data, error) {
	if src == nil {
		return nil, fmt.Errorf("layer %s: nil source", name)
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("layer %s: batch size must be positive, got %d", name, batchSize)
	}
	if src.Len() == 0 {
		return nil, fmt.Errorf("layer %s: empty source", name)
	}
	return &Data{base: base{name: name, typ: "Data"}, src: src, batchSize: batchSize}, nil
}

// Epoch returns the number of completed passes over the source.
func (l *Data) Epoch() int { return l.epoch }

// Rewind resets the read cursor to the beginning of the source.
func (l *Data) Rewind() { l.cursor = 0 }

// Skip advances the read cursor by batches whole batches without
// loading any samples, updating the epoch counter across wraparounds.
// A run resumed (or elastically re-formed) at iteration F calls
// Skip(F) on a fresh layer so its cursor lands exactly where a clean
// run's would after F iterations — same samples, same order, which is
// half of what makes resumed training bit-identical.
func (l *Data) Skip(batches int) {
	if batches <= 0 {
		return
	}
	total := l.cursor + batches*l.batchSize
	l.epoch += total / l.src.Len()
	l.cursor = total % l.src.Len()
}

// BatchSize returns the configured batch size.
func (l *Data) BatchSize() int { return l.batchSize }

// SetBatchSize changes the batch size for subsequent passes. The caller
// must re-run shape inference (net.Reshape) before the next forward so
// every downstream blob tracks the new leading dimension. The serving
// engine uses this to run partially-filled dynamic batches: blob buffers
// are reused as long as capacity suffices, so shrinking below a
// previously-seen batch size allocates nothing.
func (l *Data) SetBatchSize(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("layer %s: batch size must be positive, got %d", l.name, n))
	}
	if n > l.src.Len() {
		panic(fmt.Sprintf("layer %s: batch size %d exceeds source length %d", l.name, n, l.src.Len()))
	}
	l.batchSize = n
}

// SetUp implements Layer.
func (l *Data) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 0, 2); err != nil {
		return err
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Data) Reshape(bottom, top []*blob.Blob) {
	ss := l.src.SampleShape()
	shape := append([]int{l.batchSize}, ss...)
	top[0].Reshape(shape...)
	top[1].Reshape(l.batchSize)
}

// ForwardPrepare implements ForwardPreparer: the sequential batch load.
func (l *Data) ForwardPrepare(bottom, top []*blob.Blob) {
	sampleLen := top[0].CountFrom(1)
	data := top[0].Data()
	labels := top[1].Data()
	for s := 0; s < l.batchSize; s++ {
		lab := l.src.Read(l.cursor, data[s*sampleLen:(s+1)*sampleLen])
		labels[s] = float32(lab)
		l.cursor++
		if l.cursor == l.src.Len() {
			l.cursor = 0
			l.epoch++
		}
	}
}

// ForwardExtent implements Layer: all work is in the sequential prepare.
func (l *Data) ForwardExtent() int { return 0 }

// ForwardRange implements Layer (never called: extent is 0).
func (l *Data) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {}

// BackwardExtent implements Layer: data has no gradient.
func (l *Data) BackwardExtent() int { return 0 }

// BackwardRange implements Layer (never called: extent is 0).
func (l *Data) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {}
