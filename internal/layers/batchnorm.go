package layers

import (
	"fmt"
	"math"

	"coarsegrain/internal/blob"
)

// BatchNorm normalizes each channel over the mini-batch (Ioffe & Szegedy,
// 2015) with learnable scale and shift:
//
//	y = gamma * (x − mean_c) / sqrt(var_c + eps) + beta
//
// BatchNorm is the stress case for batch-level parallelism that the paper
// only brushes against in §3.1.3: unlike every LeNet/CIFAR layer, its
// transformation couples ALL samples of the batch through the channel
// statistics. The layer maps this onto the engine contract with the
// backward/forward hooks:
//
//   - ForwardPrepare (serial, deterministic): batch mean/variance per
//     channel, moving-average update;
//   - ForwardRange (parallel over (sample, channel) planes): normalize;
//   - BackwardPrepare (serial): the two whole-batch reductions Σdy and
//     Σdy·x̂ per channel that the input gradient needs;
//   - BackwardRange (parallel): per-plane dx from those sums, plus
//     dgamma/dbeta accumulation into the (privatized) parameter grads.
//
// The serial statistics passes are a genuine scaling limit — exactly the
// kind of term the simtime model charges as sequential work.
type BatchNorm struct {
	base
	eps      float32
	momentum float32 // moving-average factor (fraction of OLD value kept)

	num, channels, spatial int

	// Learnable parameters: gamma (scale), beta (shift).
	// Internal state (not learnable): moving mean/variance for test mode.
	movingMean, movingVar *blob.Blob

	// Per-forward cached statistics for the backward pass.
	mean, invStd []float32
	// Per-backward cached reductions.
	sumDy, sumDyXhat []float32

	train         bool
	propagateDown bool
}

// BNConfig configures a BatchNorm layer.
type BNConfig struct {
	// Eps stabilizes the variance (default 1e-5).
	Eps float32
	// Momentum is the moving-average retention factor (default 0.9).
	Momentum float32
}

// NewBatchNorm creates a batch normalization layer.
func NewBatchNorm(name string, cfg BNConfig) (*BatchNorm, error) {
	if cfg.Eps == 0 {
		cfg.Eps = 1e-5
	}
	if cfg.Momentum == 0 {
		cfg.Momentum = 0.9
	}
	if cfg.Eps < 0 || cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, fmt.Errorf("layer %s: bad batchnorm config %+v", name, cfg)
	}
	return &BatchNorm{
		base:          base{name: name, typ: "BatchNorm"},
		eps:           cfg.Eps,
		momentum:      cfg.Momentum,
		movingMean:    blob.New(),
		movingVar:     blob.New(),
		train:         true,
		propagateDown: true,
	}, nil
}

// SetTrain toggles batch statistics (train) vs moving averages (test).
func (l *BatchNorm) SetTrain(train bool) { l.train = train }

// SetPropagateDown implements the optional propagation control.
func (l *BatchNorm) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// StateBlobs exposes the non-learnable state (moving mean and variance)
// for snapshotting.
func (l *BatchNorm) StateBlobs() []*blob.Blob {
	return []*blob.Blob{l.movingMean, l.movingVar}
}

// SetUp implements Layer.
func (l *BatchNorm) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() < 2 {
		return fmt.Errorf("layer %s: batchnorm needs >= 2 axes, got %v", l.name, bottom[0].Shape())
	}
	c := bottom[0].Dim(1)
	gamma := blob.Named(l.name+"_gamma", c)
	for i := range gamma.Data() {
		gamma.Data()[i] = 1
	}
	beta := blob.Named(l.name+"_beta", c)
	l.params = []*blob.Blob{gamma, beta}
	l.movingMean.Reshape(c)
	l.movingVar.Reshape(c)
	for i := range l.movingVar.Data() {
		l.movingVar.Data()[i] = 1
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *BatchNorm) Reshape(bottom, top []*blob.Blob) {
	b := bottom[0]
	l.num = b.Dim(0)
	l.channels = b.Dim(1)
	l.spatial = b.CountFrom(2)
	top[0].ReshapeLike(b)
	for _, buf := range []*[]float32{&l.mean, &l.invStd, &l.sumDy, &l.sumDyXhat} {
		if cap(*buf) < l.channels {
			*buf = make([]float32, l.channels)
		}
		*buf = (*buf)[:l.channels]
	}
}

// planeBase returns the flat offset of (s, c) plane data.
func (l *BatchNorm) planeBase(s, c int) int { return (s*l.channels + c) * l.spatial }

// ForwardPrepare implements ForwardPreparer: the serial statistics pass.
func (l *BatchNorm) ForwardPrepare(bottom, top []*blob.Blob) {
	if !l.train {
		for c := 0; c < l.channels; c++ {
			l.mean[c] = l.movingMean.Data()[c]
			l.invStd[c] = 1 / float32(math.Sqrt(float64(l.movingVar.Data()[c]+l.eps)))
		}
		return
	}
	in := bottom[0].Data()
	m := float64(l.num * l.spatial)
	for c := 0; c < l.channels; c++ {
		var sum, sumSq float64
		for s := 0; s < l.num; s++ {
			base := l.planeBase(s, c)
			for i := base; i < base+l.spatial; i++ {
				v := float64(in[i])
				sum += v
				sumSq += v * v
			}
		}
		mean := sum / m
		variance := sumSq/m - mean*mean
		if variance < 0 {
			variance = 0
		}
		l.mean[c] = float32(mean)
		l.invStd[c] = float32(1 / math.Sqrt(variance+float64(l.eps)))
		l.movingMean.Data()[c] = l.momentum*l.movingMean.Data()[c] + (1-l.momentum)*float32(mean)
		l.movingVar.Data()[c] = l.momentum*l.movingVar.Data()[c] + (1-l.momentum)*float32(variance)
	}
}

// ForwardExtent implements Layer: (sample, channel) planes.
func (l *BatchNorm) ForwardExtent() int { return l.num * l.channels }

// ForwardRange implements Layer.
func (l *BatchNorm) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	in := bottom[0].Data()
	out := top[0].Data()
	gamma := l.params[0].Data()
	beta := l.params[1].Data()
	for plane := lo; plane < hi; plane++ {
		c := plane % l.channels
		scale := gamma[c] * l.invStd[c]
		shift := beta[c] - scale*l.mean[c]
		base := plane * l.spatial
		for i := base; i < base+l.spatial; i++ {
			out[i] = scale*in[i] + shift
		}
	}
}

// BackwardPrepare implements BackwardPreparer: the serial whole-batch
// reductions Σdy and Σdy·x̂ per channel.
func (l *BatchNorm) BackwardPrepare(bottom, top []*blob.Blob) {
	in := bottom[0].Data()
	dy := top[0].Diff()
	for c := 0; c < l.channels; c++ {
		var sDy, sDyX float64
		for s := 0; s < l.num; s++ {
			base := l.planeBase(s, c)
			for i := base; i < base+l.spatial; i++ {
				xhat := (in[i] - l.mean[c]) * l.invStd[c]
				sDy += float64(dy[i])
				sDyX += float64(dy[i]) * float64(xhat)
			}
		}
		l.sumDy[c] = float32(sDy)
		l.sumDyXhat[c] = float32(sDyX)
	}
}

// BackwardExtent implements Layer.
func (l *BatchNorm) BackwardExtent() int { return l.num * l.channels }

// BackwardRange implements Layer:
//
//	dx = (gamma·invStd/m) · (m·dy − Σdy − x̂·Σ(dy·x̂))   (train)
//	dx = gamma·invStd·dy                                 (test)
//	dgamma += Σ_plane dy·x̂ ; dbeta += Σ_plane dy
func (l *BatchNorm) BackwardRange(lo, hi int, bottom, top []*blob.Blob, paramGrads []*blob.Blob) {
	in := bottom[0].Data()
	dx := bottom[0].Diff()
	dy := top[0].Diff()
	gamma := l.params[0].Data()
	gGrad := paramGrads[0].Diff()
	bGrad := paramGrads[1].Diff()
	m := float32(l.num * l.spatial)
	for plane := lo; plane < hi; plane++ {
		c := plane % l.channels
		base := plane * l.spatial
		var pDy, pDyX float32
		for i := base; i < base+l.spatial; i++ {
			xhat := (in[i] - l.mean[c]) * l.invStd[c]
			pDy += dy[i]
			pDyX += dy[i] * xhat
			if l.propagateDown {
				if l.train {
					dx[i] = gamma[c] * l.invStd[c] / m * (m*dy[i] - l.sumDy[c] - xhat*l.sumDyXhat[c])
				} else {
					dx[i] = gamma[c] * l.invStd[c] * dy[i]
				}
			}
		}
		gGrad[c] += pDyX
		bGrad[c] += pDy
	}
}
