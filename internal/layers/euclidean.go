package layers

import (
	"fmt"

	"coarsegrain/internal/blob"
)

// EuclideanLoss computes 0.5/S * Σ_s ||a_s − b_s||², the regression loss.
// Bottoms are the prediction and the target (same shape); the top is a
// 1-element blob. Like SoftmaxWithLoss, per-sample terms are stored by
// index and summed serially for worker-count independence.
type EuclideanLoss struct {
	base
	num, dim   int
	perSample  []float32
	lossWeight float32
	// propagate[i] reports whether bottom i receives a gradient.
	propagate [2]bool
}

// NewEuclideanLoss creates the loss layer with loss weight 1.
func NewEuclideanLoss(name string) *EuclideanLoss {
	return &EuclideanLoss{
		base:       base{name: name, typ: "EuclideanLoss"},
		lossWeight: 1,
		propagate:  [2]bool{true, true},
	}
}

// LossWeight implements LossWeighter.
func (l *EuclideanLoss) LossWeight() float32 { return l.lossWeight }

// SetPropagateDown implements the optional propagation control.
func (l *EuclideanLoss) SetPropagateDown(flags []bool) {
	for i := 0; i < len(flags) && i < 2; i++ {
		l.propagate[i] = flags[i]
	}
}

// SetUp implements Layer.
func (l *EuclideanLoss) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 2, 1); err != nil {
		return err
	}
	if bottom[0].Count() != bottom[1].Count() {
		return fmt.Errorf("layer %s: bottom counts differ: %d vs %d", l.name, bottom[0].Count(), bottom[1].Count())
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *EuclideanLoss) Reshape(bottom, top []*blob.Blob) {
	l.num = bottom[0].Dim(0)
	l.dim = bottom[0].CountFrom(1)
	if cap(l.perSample) < l.num {
		l.perSample = make([]float32, l.num)
	}
	l.perSample = l.perSample[:l.num]
	top[0].Reshape(1)
}

// ForwardExtent implements Layer.
func (l *EuclideanLoss) ForwardExtent() int { return l.num }

// ForwardRange implements Layer.
func (l *EuclideanLoss) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	a := bottom[0].Data()
	b := bottom[1].Data()
	for s := lo; s < hi; s++ {
		var sum float64
		for i := s * l.dim; i < (s+1)*l.dim; i++ {
			d := float64(a[i]) - float64(b[i])
			sum += d * d
		}
		l.perSample[s] = float32(sum / 2)
	}
}

// ForwardFinish implements ForwardFinisher.
func (l *EuclideanLoss) ForwardFinish(bottom, top []*blob.Blob) {
	var sum float64
	for _, v := range l.perSample {
		sum += float64(v)
	}
	top[0].Data()[0] = float32(sum / float64(l.num))
}

// BackwardExtent implements Layer.
func (l *EuclideanLoss) BackwardExtent() int { return l.num }

// BackwardRange implements Layer: d a = (a−b) w/S, d b = −(a−b) w/S.
func (l *EuclideanLoss) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	a := bottom[0].Data()
	b := bottom[1].Data()
	seed := top[0].Diff()[0] / float32(l.num)
	for s := lo; s < hi; s++ {
		for i := s * l.dim; i < (s+1)*l.dim; i++ {
			d := (a[i] - b[i]) * seed
			if l.propagate[0] {
				bottom[0].Diff()[i] = d
			}
			if l.propagate[1] {
				bottom[1].Diff()[i] = -d
			}
		}
	}
}
