package layers

import (
	"fmt"
	"math"

	"coarsegrain/internal/blas"
	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
)

// PoolMethod selects the pooling operation.
type PoolMethod int

const (
	// MaxPool takes the maximum of each window (Caffe MAX).
	MaxPool PoolMethod = iota
	// AvePool takes the mean of each window (Caffe AVE).
	AvePool
)

// String implements fmt.Stringer.
func (m PoolMethod) String() string {
	if m == MaxPool {
		return "MAX"
	}
	return "AVE"
}

// PoolConfig configures a Pooling layer.
type PoolConfig struct {
	Method           PoolMethod
	Kernel           int
	KernelH, KernelW int
	Pad              int
	PadH, PadW       int
	Stride           int
	StrideH, StrideW int
}

func (c *PoolConfig) normalize() error {
	if c.KernelH == 0 {
		c.KernelH = c.Kernel
	}
	if c.KernelW == 0 {
		c.KernelW = c.Kernel
	}
	if c.KernelH <= 0 || c.KernelW <= 0 {
		return fmt.Errorf("pooling: kernel size must be positive, got %dx%d", c.KernelH, c.KernelW)
	}
	if c.PadH == 0 {
		c.PadH = c.Pad
	}
	if c.PadW == 0 {
		c.PadW = c.Pad
	}
	if c.StrideH == 0 {
		c.StrideH = c.Stride
	}
	if c.StrideW == 0 {
		c.StrideW = c.Stride
	}
	if c.StrideH == 0 {
		c.StrideH = 1
	}
	if c.StrideW == 0 {
		c.StrideW = 1
	}
	return nil
}

// Pooling performs spatial dimensionality reduction (§2.2.1). Each
// (sample, channel) plane is independent, so both passes coalesce the two
// outermost loops into an S*C iteration space — the finest race-free
// granularity, matching the paper's observation that pooling layers keep
// the same data-thread distribution as the convolutions they follow.
type Pooling struct {
	base
	cfg PoolConfig

	num, channels, height, width int
	outH, outW                   int

	// mask records, for MAX pooling, the flat input index (within the
	// (s,c) plane) of each output's maximum, for the backward scatter.
	mask []int32

	propagateDown bool
}

// NewPooling creates a pooling layer.
func NewPooling(name string, cfg PoolConfig) (*Pooling, error) {
	if err := cfg.normalize(); err != nil {
		return nil, fmt.Errorf("layer %s: %w", name, err)
	}
	return &Pooling{base: base{name: name, typ: "Pooling"}, cfg: cfg, propagateDown: true}, nil
}

// SetPropagateDown implements the optional propagation control.
func (l *Pooling) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *Pooling) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() != 4 {
		return fmt.Errorf("layer %s: pooling needs a 4-D bottom, got %v", l.name, bottom[0].Shape())
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Pooling) Reshape(bottom, top []*blob.Blob) {
	b := bottom[0]
	l.num, l.channels, l.height, l.width = b.Num(), b.Channels(), b.Height(), b.Width()
	l.outH = blas.PoolOutSize(l.height, l.cfg.KernelH, l.cfg.PadH, l.cfg.StrideH)
	l.outW = blas.PoolOutSize(l.width, l.cfg.KernelW, l.cfg.PadW, l.cfg.StrideW)
	top[0].Reshape(l.num, l.channels, l.outH, l.outW)
	if l.cfg.Method == MaxPool {
		n := l.num * l.channels * l.outH * l.outW
		if cap(l.mask) < n {
			l.mask = make([]int32, n)
		}
		l.mask = l.mask[:n]
	}
}

// ForwardExtent implements Layer: one iteration per (sample, channel)
// plane.
func (l *Pooling) ForwardExtent() int { return l.num * l.channels }

// ForwardRange implements Layer.
func (l *Pooling) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	for civ := lo; civ < hi; civ++ {
		l.forwardPlane(civ, bottom[0], top[0])
	}
}

// forwardPlane pools one (s,c) plane. plane is the flattened (s*C + c).
func (l *Pooling) forwardPlane(plane int, bottom, top *blob.Blob) {
	in := bottom.Data()[plane*l.height*l.width:]
	out := top.Data()[plane*l.outH*l.outW:]
	var mask []int32
	if l.cfg.Method == MaxPool {
		mask = l.mask[plane*l.outH*l.outW:]
	}
	for oh := 0; oh < l.outH; oh++ {
		hs := oh*l.cfg.StrideH - l.cfg.PadH
		he := min(hs+l.cfg.KernelH, l.height)
		hs = max(hs, 0)
		for ow := 0; ow < l.outW; ow++ {
			ws := ow*l.cfg.StrideW - l.cfg.PadW
			we := min(ws+l.cfg.KernelW, l.width)
			ws = max(ws, 0)
			oidx := oh*l.outW + ow
			switch l.cfg.Method {
			case MaxPool:
				best := float32(math.Inf(-1))
				bestIdx := int32(-1)
				for ih := hs; ih < he; ih++ {
					for iw := ws; iw < we; iw++ {
						if v := in[ih*l.width+iw]; v > best {
							best = v
							bestIdx = int32(ih*l.width + iw)
						}
					}
				}
				out[oidx] = best
				mask[oidx] = bestIdx
			case AvePool:
				// Caffe AVE divides by the full (padded) window size.
				var sum float32
				for ih := hs; ih < he; ih++ {
					for iw := ws; iw < we; iw++ {
						sum += in[ih*l.width+iw]
					}
				}
				out[oidx] = sum / float32(l.cfg.KernelH*l.cfg.KernelW)
			}
		}
	}
}

// BackwardExtent implements Layer: same (sample, channel) granularity —
// each plane's input gradient is private to its iteration.
func (l *Pooling) BackwardExtent() int {
	if !l.propagateDown {
		return 0
	}
	return l.num * l.channels
}

// BackwardRange implements Layer. Pooling has no parameters; paramGrads is
// empty.
func (l *Pooling) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	for civ := lo; civ < hi; civ++ {
		l.backwardPlane(civ, bottom[0], top[0])
	}
}

func (l *Pooling) backwardPlane(plane int, bottom, top *blob.Blob) {
	inDiff := bottom.Diff()[plane*l.height*l.width : (plane+1)*l.height*l.width]
	outDiff := top.Diff()[plane*l.outH*l.outW:]
	for i := range inDiff {
		inDiff[i] = 0
	}
	switch l.cfg.Method {
	case MaxPool:
		mask := l.mask[plane*l.outH*l.outW:]
		for oidx := 0; oidx < l.outH*l.outW; oidx++ {
			if m := mask[oidx]; m >= 0 {
				inDiff[m] += outDiff[oidx]
			}
		}
	case AvePool:
		scale := 1 / float32(l.cfg.KernelH*l.cfg.KernelW)
		for oh := 0; oh < l.outH; oh++ {
			hs := max(oh*l.cfg.StrideH-l.cfg.PadH, 0)
			he := min(oh*l.cfg.StrideH-l.cfg.PadH+l.cfg.KernelH, l.height)
			for ow := 0; ow < l.outW; ow++ {
				ws := max(ow*l.cfg.StrideW-l.cfg.PadW, 0)
				we := min(ow*l.cfg.StrideW-l.cfg.PadW+l.cfg.KernelW, l.width)
				g := outDiff[oh*l.outW+ow] * scale
				for ih := hs; ih < he; ih++ {
					for iw := ws; iw < we; iw++ {
						inDiff[ih*l.width+iw] += g
					}
				}
			}
		}
	}
}

// ForwardFine implements FineForwarder: pooling planes are tiny independent
// kernels, the case where the paper reports extraordinary plain-GPU
// speedups; the fine path simply splits the plane loop across the pool.
func (l *Pooling) ForwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	p.For(l.num*l.channels, func(lo, hi, _ int) {
		for plane := lo; plane < hi; plane++ {
			l.forwardPlane(plane, bottom[0], top[0])
		}
	})
}

// BackwardFine implements FineBackwarder.
func (l *Pooling) BackwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	if !l.propagateDown {
		return
	}
	p.For(l.num*l.channels, func(lo, hi, _ int) {
		for plane := lo; plane < hi; plane++ {
			l.backwardPlane(plane, bottom[0], top[0])
		}
	})
}
