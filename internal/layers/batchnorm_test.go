package layers

import (
	"math"
	"testing"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/rng"
)

func TestBatchNormNormalizesTrainMode(t *testing.T) {
	r := rng.New(71, 1)
	l, err := NewBatchNorm("bn", BNConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -3, 3, 8, 4, 3, 3)
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	// With gamma=1, beta=0 the output is standardized per channel.
	out := tops[0].Data()
	for c := 0; c < 4; c++ {
		var sum, sumSq float64
		n := 0
		for s := 0; s < 8; s++ {
			base := ((s*4 + c) * 9)
			for i := base; i < base+9; i++ {
				sum += float64(out[i])
				sumSq += float64(out[i]) * float64(out[i])
				n++
			}
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("channel %d mean %v, want ~0", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d variance %v, want ~1", c, variance)
		}
	}
}

func TestBatchNormGradientTrainMode(t *testing.T) {
	r := rng.New(72, 1)
	l, err := NewBatchNorm("bn", BNConfig{Eps: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 4, 3, 2, 2)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-3, 3e-2)
}

func TestBatchNormGradientTestMode(t *testing.T) {
	r := rng.New(73, 1)
	l, err := NewBatchNorm("bn", BNConfig{Eps: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	l.SetTrain(false)
	bottom := randomBlob(r, -1, 1, 4, 3, 2, 2)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-3, 2e-2)
}

func TestBatchNormTestModeUsesMovingStats(t *testing.T) {
	r := rng.New(74, 1)
	l, err := NewBatchNorm("bn", BNConfig{Momentum: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, 2, 4, 8, 2, 2, 2) // mean ~3
	tops := setup(t, l, []*blob.Blob{bottom})
	// A few training passes accumulate moving statistics toward the batch
	// stats.
	for i := 0; i < 20; i++ {
		runForward(l, []*blob.Blob{bottom}, tops)
	}
	l.SetTrain(false)
	runForward(l, []*blob.Blob{bottom}, tops)
	// Output should be approximately standardized even in test mode, since
	// the moving stats converged to this (fixed) batch's stats.
	var sum float64
	for _, v := range tops[0].Data() {
		sum += float64(v)
	}
	mean := sum / float64(tops[0].Count())
	if math.Abs(mean) > 0.05 {
		t.Fatalf("test-mode output mean %v, want ~0", mean)
	}
	// Moving state is exposed for snapshotting.
	st := l.StateBlobs()
	if len(st) != 2 || st[0].Count() != 2 {
		t.Fatalf("state blobs wrong: %v", st)
	}
	if math.Abs(float64(st[0].Data()[0])-3) > 0.2 {
		t.Fatalf("moving mean %v, want ~3", st[0].Data()[0])
	}
}

func TestBatchNormGammaBeta(t *testing.T) {
	r := rng.New(75, 1)
	l, err := NewBatchNorm("bn", BNConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 4, 2, 2, 2)
	tops := setup(t, l, []*blob.Blob{bottom})
	l.Params()[0].Data()[0] = 2  // gamma channel 0
	l.Params()[1].Data()[1] = -5 // beta channel 1
	runForward(l, []*blob.Blob{bottom}, tops)
	// Channel 0 variance ~4, channel 1 mean ~-5.
	var sumSq0, sum1 float64
	for s := 0; s < 4; s++ {
		for i := 0; i < 4; i++ {
			v0 := float64(tops[0].At(s, 0, i/2, i%2))
			v1 := float64(tops[0].At(s, 1, i/2, i%2))
			sumSq0 += v0 * v0
			sum1 += v1
		}
	}
	if v := sumSq0 / 16; math.Abs(v-4) > 0.1 {
		t.Fatalf("gamma scaling: variance %v, want ~4", v)
	}
	if m := sum1 / 16; math.Abs(m+5) > 0.05 {
		t.Fatalf("beta shift: mean %v, want ~-5", m)
	}
}

func TestBatchNormConfigValidation(t *testing.T) {
	if _, err := NewBatchNorm("bn", BNConfig{Momentum: 1.5}); err == nil {
		t.Fatal("bad momentum accepted")
	}
	if _, err := NewBatchNorm("bn", BNConfig{Eps: -1}); err == nil {
		t.Fatal("negative eps accepted")
	}
	l, _ := NewBatchNorm("bn", BNConfig{})
	if err := l.SetUp([]*blob.Blob{blob.New(4)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("1-D bottom accepted")
	}
}

func TestBatchNormChunkedForwardEqualsWhole(t *testing.T) {
	r := rng.New(76, 1)
	l, err := NewBatchNorm("bn", BNConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 6, 4, 3, 3)
	tops := setup(t, l, []*blob.Blob{bottom})
	runForward(l, []*blob.Blob{bottom}, tops)
	ref := append([]float32(nil), tops[0].Data()...)
	// Stats already computed in prepare; ranges are independent.
	tops[0].ZeroData()
	n := l.ForwardExtent()
	for lo := 0; lo < n; lo += 7 {
		l.ForwardRange(lo, min(lo+7, n), []*blob.Blob{bottom}, tops)
	}
	for i := range ref {
		if tops[0].Data()[i] != ref[i] {
			t.Fatal("chunked batchnorm forward differs")
		}
	}
}
