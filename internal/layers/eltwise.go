package layers

import (
	"fmt"
	"math"

	"coarsegrain/internal/blob"
)

// EltwiseOp selects the elementwise combination.
type EltwiseOp int

const (
	// EltwiseSum computes a coefficient-weighted sum (Caffe SUM).
	EltwiseSum EltwiseOp = iota
	// EltwiseProd computes the elementwise product (Caffe PROD).
	EltwiseProd
	// EltwiseMax computes the elementwise maximum (Caffe MAX).
	EltwiseMax
)

// String implements fmt.Stringer.
func (o EltwiseOp) String() string {
	switch o {
	case EltwiseProd:
		return "PROD"
	case EltwiseMax:
		return "MAX"
	default:
		return "SUM"
	}
}

// Eltwise combines N same-shaped bottoms elementwise — the layer behind
// residual-style connections. It exists here mainly to exercise the
// network-agnostic claim on non-linear network graphs: the coarse engine
// parallelizes it through the same generic interface as every other
// layer, with no engine changes.
type Eltwise struct {
	base
	op     EltwiseOp
	coeffs []float32 // SUM coefficients, one per bottom (default 1)

	// argmax records, for MAX, which bottom supplied each element.
	argmax []int32

	extent, plane int
	propagate     []bool
}

// NewEltwise creates an elementwise combination layer. For EltwiseSum,
// coeffs optionally weights each bottom (nil = all ones); other ops ignore
// coeffs.
func NewEltwise(name string, op EltwiseOp, coeffs []float32) *Eltwise {
	return &Eltwise{
		base:   base{name: name, typ: "Eltwise"},
		op:     op,
		coeffs: append([]float32(nil), coeffs...),
	}
}

// SetPropagateDown implements the optional propagation control.
func (l *Eltwise) SetPropagateDown(flags []bool) {
	l.propagate = append(l.propagate[:0], flags...)
}

func (l *Eltwise) propagateTo(i int) bool {
	return i >= len(l.propagate) || l.propagate[i]
}

// SetUp implements Layer.
func (l *Eltwise) SetUp(bottom, top []*blob.Blob) error {
	if len(bottom) < 2 {
		return fmt.Errorf("layer %s: eltwise needs >= 2 bottoms, got %d", l.name, len(bottom))
	}
	if len(top) != 1 {
		return fmt.Errorf("layer %s: eltwise needs 1 top, got %d", l.name, len(top))
	}
	for i, b := range bottom[1:] {
		if !b.SameShape(bottom[0]) {
			return fmt.Errorf("layer %s: bottom %d shape %v != bottom 0 shape %v",
				l.name, i+1, b.Shape(), bottom[0].Shape())
		}
	}
	if l.op == EltwiseSum && len(l.coeffs) != 0 && len(l.coeffs) != len(bottom) {
		return fmt.Errorf("layer %s: %d coefficients for %d bottoms", l.name, len(l.coeffs), len(bottom))
	}
	if l.op == EltwiseSum && len(l.coeffs) == 0 {
		l.coeffs = make([]float32, len(bottom))
		for i := range l.coeffs {
			l.coeffs[i] = 1
		}
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Eltwise) Reshape(bottom, top []*blob.Blob) {
	top[0].ReshapeLike(bottom[0])
	l.extent = planeExtent(bottom[0])
	l.plane = planeSize(bottom[0])
	if l.op == EltwiseMax {
		n := bottom[0].Count()
		if cap(l.argmax) < n {
			l.argmax = make([]int32, n)
		}
		l.argmax = l.argmax[:n]
	}
}

// ForwardExtent implements Layer.
func (l *Eltwise) ForwardExtent() int { return l.extent }

// ForwardRange implements Layer.
func (l *Eltwise) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	out := top[0].Data()
	start, end := lo*l.plane, hi*l.plane
	switch l.op {
	case EltwiseSum:
		for i := start; i < end; i++ {
			var acc float32
			for bi, b := range bottom {
				acc += l.coeffs[bi] * b.Data()[i]
			}
			out[i] = acc
		}
	case EltwiseProd:
		for i := start; i < end; i++ {
			acc := float32(1)
			for _, b := range bottom {
				acc *= b.Data()[i]
			}
			out[i] = acc
		}
	case EltwiseMax:
		for i := start; i < end; i++ {
			best := float32(math.Inf(-1))
			var arg int32
			for bi, b := range bottom {
				if v := b.Data()[i]; v > best {
					best = v
					arg = int32(bi)
				}
			}
			out[i] = best
			l.argmax[i] = arg
		}
	}
}

// BackwardExtent implements Layer.
func (l *Eltwise) BackwardExtent() int { return l.extent }

// BackwardRange implements Layer.
func (l *Eltwise) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	outDiff := top[0].Diff()
	start, end := lo*l.plane, hi*l.plane
	for bi, b := range bottom {
		if !l.propagateTo(bi) {
			continue
		}
		inDiff := b.Diff()
		switch l.op {
		case EltwiseSum:
			c := l.coeffs[bi]
			for i := start; i < end; i++ {
				inDiff[i] = c * outDiff[i]
			}
		case EltwiseProd:
			for i := start; i < end; i++ {
				// d bottom_bi = dy * prod of the other bottoms.
				p := float32(1)
				for bj, ob := range bottom {
					if bj != bi {
						p *= ob.Data()[i]
					}
				}
				inDiff[i] = outDiff[i] * p
			}
		case EltwiseMax:
			for i := start; i < end; i++ {
				if l.argmax[i] == int32(bi) {
					inDiff[i] = outDiff[i]
				} else {
					inDiff[i] = 0
				}
			}
		}
	}
}
