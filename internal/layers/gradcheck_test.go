package layers

import (
	"math"
	"testing"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/rng"
)

// gradCheck verifies a layer's BackwardRange against centered finite
// differences of its forward pass.
//
// The objective is J = Σ_t <top_t, w_t> for fixed random weights w_t, so
// the analytic gradient is obtained by seeding every top diff with w and
// running the layer's backward. checkBottoms selects which bottom blobs'
// gradients to verify; when params is true the parameter gradients are
// verified too.
func gradCheck(t *testing.T, l Layer, bottoms []*blob.Blob, checkBottoms []bool, params bool, eps, tol float64) {
	t.Helper()
	tops := make([]*blob.Blob, topArity(l))
	for i := range tops {
		tops[i] = blob.New()
	}
	if err := l.SetUp(bottoms, tops); err != nil {
		t.Fatalf("SetUp: %v", err)
	}
	r := rng.New(99, 42)
	weights := make([][]float32, len(tops))

	forward := func() {
		if p, ok := l.(ForwardPreparer); ok {
			p.ForwardPrepare(bottoms, tops)
		}
		if n := l.ForwardExtent(); n > 0 {
			l.ForwardRange(0, n, bottoms, tops)
		}
		if f, ok := l.(ForwardFinisher); ok {
			f.ForwardFinish(bottoms, tops)
		}
	}
	objective := func() float64 {
		forward()
		var j float64
		for ti, top := range tops {
			for i, v := range top.Data() {
				j += float64(v) * float64(weights[ti][i])
			}
		}
		return j
	}

	// First forward fixes top shapes; then draw objective weights.
	forward()
	for ti, top := range tops {
		w := make([]float32, top.Count())
		for i := range w {
			w[i] = r.Range(0.5, 1.5) // positive, away from 0
		}
		weights[ti] = w
	}

	// Analytic gradients.
	for _, b := range bottoms {
		b.ZeroDiff()
	}
	for _, p := range l.Params() {
		p.ZeroDiff()
	}
	forward()
	for ti, top := range tops {
		copy(top.Diff(), weights[ti])
	}
	if n := l.BackwardExtent(); n > 0 {
		if p, ok := l.(BackwardPreparer); ok {
			p.BackwardPrepare(bottoms, tops)
		}
		l.BackwardRange(0, n, bottoms, tops, l.Params())
		if f, ok := l.(BackwardFinisher); ok {
			f.BackwardFinish(bottoms, tops)
		}
	}

	check := func(name string, target *blob.Blob, i int, analytic float64) {
		t.Helper()
		d := target.Data()
		orig := d[i]
		d[i] = orig + float32(eps)
		jPlus := objective()
		d[i] = orig - float32(eps)
		jMinus := objective()
		d[i] = orig
		numeric := (jPlus - jMinus) / (2 * eps)
		scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
		if math.Abs(analytic-numeric)/scale > tol {
			t.Errorf("%s[%d]: analytic %g vs numeric %g", name, i, analytic, numeric)
		}
	}

	for bi, b := range bottoms {
		if bi >= len(checkBottoms) || !checkBottoms[bi] {
			continue
		}
		grad := append([]float32(nil), b.Diff()...)
		for i := range b.Data() {
			check("bottom"+string(rune('0'+bi)), b, i, float64(grad[i]))
		}
	}
	if params {
		for pi, p := range l.Params() {
			grad := append([]float32(nil), p.Diff()...)
			for i := range p.Data() {
				check(p.Name()+string(rune('0'+pi)), p, i, float64(grad[i]))
			}
		}
	}
}

// topArity returns how many top blobs a layer type produces.
func topArity(l Layer) int {
	switch l.Type() {
	case "Data":
		return 2
	default:
		return 1
	}
}

// randomBlob creates a blob with uniform values in [lo, hi).
func randomBlob(r *rng.RNG, lo, hi float32, shape ...int) *blob.Blob {
	b := blob.New(shape...)
	d := b.Data()
	for i := range d {
		d[i] = r.Range(lo, hi)
	}
	return b
}

func TestGradConvolution(t *testing.T) {
	r := rng.New(1, 10)
	l, err := NewConvolution("c", ConvConfig{NumOutput: 3, Kernel: 3, Stride: 1, Pad: 1,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 2, 5, 5)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-2, 2e-2)
}

func TestGradConvolutionStridePad(t *testing.T) {
	r := rng.New(2, 10)
	l, err := NewConvolution("c", ConvConfig{NumOutput: 2, KernelH: 3, KernelW: 2,
		StrideH: 2, StrideW: 1, PadH: 1, PadW: 0,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 3, 6, 5)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-2, 2e-2)
}

func TestGradConvolutionNoBias(t *testing.T) {
	r := rng.New(3, 10)
	l, err := NewConvolution("c", ConvConfig{NumOutput: 2, Kernel: 3, NoBias: true,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 2, 4, 4)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-2, 2e-2)
}

func TestGradPoolingMax(t *testing.T) {
	r := rng.New(4, 10)
	l, err := NewPooling("p", PoolConfig{Method: MaxPool, Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Well-separated values avoid argmax flips under perturbation.
	bottom := blob.New(2, 2, 4, 4)
	for i := range bottom.Data() {
		bottom.Data()[i] = float32(i%17) + 0.1*r.Float32()
	}
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, false, 1e-3, 2e-2)
}

func TestGradPoolingAve(t *testing.T) {
	r := rng.New(5, 10)
	l, err := NewPooling("p", PoolConfig{Method: AvePool, Kernel: 3, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 2, 5, 5)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, false, 1e-2, 2e-2)
}

func TestGradInnerProduct(t *testing.T) {
	r := rng.New(6, 10)
	l, err := NewInnerProduct("ip", IPConfig{NumOutput: 4,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 3, 5)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-2, 2e-2)
}

func TestGradInnerProduct4D(t *testing.T) {
	r := rng.New(7, 10)
	l, err := NewInnerProduct("ip", IPConfig{NumOutput: 3, NoBias: true,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 2, 3, 3)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-2, 2e-2)
}

func TestGradReLU(t *testing.T) {
	r := rng.New(8, 10)
	// Keep values away from the kink at 0.
	bottom := blob.New(2, 3, 4, 4)
	for i := range bottom.Data() {
		v := r.Range(0.2, 1)
		if r.Bernoulli(0.5) {
			v = -v
		}
		bottom.Data()[i] = v
	}
	gradCheck(t, NewReLU("r", 0), []*blob.Blob{bottom}, []bool{true}, false, 1e-3, 2e-2)
}

func TestGradLeakyReLU(t *testing.T) {
	r := rng.New(9, 10)
	bottom := blob.New(2, 6)
	for i := range bottom.Data() {
		v := r.Range(0.2, 1)
		if r.Bernoulli(0.5) {
			v = -v
		}
		bottom.Data()[i] = v
	}
	gradCheck(t, NewReLU("r", 0.1), []*blob.Blob{bottom}, []bool{true}, false, 1e-3, 2e-2)
}

func TestGradSigmoid(t *testing.T) {
	r := rng.New(10, 10)
	bottom := randomBlob(r, -2, 2, 3, 4)
	gradCheck(t, NewSigmoid("s"), []*blob.Blob{bottom}, []bool{true}, false, 1e-2, 2e-2)
}

func TestGradTanH(t *testing.T) {
	r := rng.New(11, 10)
	bottom := randomBlob(r, -2, 2, 3, 4)
	gradCheck(t, NewTanH("t"), []*blob.Blob{bottom}, []bool{true}, false, 1e-2, 2e-2)
}

func TestGradLRN(t *testing.T) {
	r := rng.New(12, 10)
	l, err := NewLRN("n", LRNConfig{LocalSize: 3, Alpha: 0.5, Beta: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 5, 3, 3)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, false, 1e-3, 2e-2)
}

func TestGradSoftmax(t *testing.T) {
	r := rng.New(13, 10)
	bottom := randomBlob(r, -2, 2, 3, 5)
	gradCheck(t, NewSoftmax("sm"), []*blob.Blob{bottom}, []bool{true}, false, 1e-3, 2e-2)
}

func TestGradSoftmaxWithLoss(t *testing.T) {
	r := rng.New(14, 10)
	scores := randomBlob(r, -2, 2, 4, 5)
	labels := blob.New(4)
	for s := 0; s < 4; s++ {
		labels.Data()[s] = float32(r.Intn(5))
	}
	gradCheck(t, NewSoftmaxWithLoss("loss"), []*blob.Blob{scores, labels},
		[]bool{true, false}, false, 1e-3, 2e-2)
}

func TestGradEuclideanLoss(t *testing.T) {
	r := rng.New(15, 10)
	a := randomBlob(r, -1, 1, 3, 4)
	b := randomBlob(r, -1, 1, 3, 4)
	gradCheck(t, NewEuclideanLoss("el"), []*blob.Blob{a, b},
		[]bool{true, true}, false, 1e-3, 2e-2)
}

func TestGradDropoutFrozenMask(t *testing.T) {
	// Dropout gradients are exact for a fixed mask: prepare once, then
	// verify that backward applies the same mask as forward.
	r := rng.New(16, 10)
	l, err := NewDropout("d", 0.4, r.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 3, 6)
	tops := []*blob.Blob{blob.New()}
	if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
		t.Fatal(err)
	}
	l.ForwardPrepare([]*blob.Blob{bottom}, tops)
	l.ForwardRange(0, l.ForwardExtent(), []*blob.Blob{bottom}, tops)
	for i := range tops[0].Diff() {
		tops[0].Diff()[i] = 1
	}
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{bottom}, tops, nil)
	for i := range bottom.Data() {
		want := float32(0)
		if tops[0].Data()[i] != 0 {
			want = tops[0].Data()[i] / bottom.Data()[i] // the mask scale
		}
		got := bottom.Diff()[i]
		if math.Abs(float64(got-want)) > 1e-4 {
			t.Fatalf("dropout grad[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestGradDeconvolution(t *testing.T) {
	r := rng.New(81, 10)
	l, err := NewDeconvolution("dc", ConvConfig{NumOutput: 3, Kernel: 3, Stride: 2, Pad: 1,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 2, 4, 4)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-2, 2e-2)
}

func TestGradDeconvolutionNoBias(t *testing.T) {
	r := rng.New(82, 10)
	l, err := NewDeconvolution("dc", ConvConfig{NumOutput: 2, Kernel: 2, NoBias: true,
		WeightFiller: GaussianFiller{Std: 0.3}, RNG: r.Split(0)})
	if err != nil {
		t.Fatal(err)
	}
	bottom := randomBlob(r, -1, 1, 2, 3, 3, 3)
	gradCheck(t, l, []*blob.Blob{bottom}, []bool{true}, true, 1e-2, 2e-2)
}
