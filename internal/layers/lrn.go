package layers

import (
	"fmt"
	"math"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
)

// LRNConfig configures a LocalResponseNormalization layer (Caffe LRN,
// ACROSS_CHANNELS region — the norm1/norm2 layers of the CIFAR-10 network).
type LRNConfig struct {
	LocalSize int     // window size n over channels (odd, default 5)
	Alpha     float32 // scaling (default 1e-4)
	Beta      float32 // exponent (default 0.75)
	K         float32 // additive constant (default 1)
}

func (c *LRNConfig) normalize() error {
	if c.LocalSize == 0 {
		c.LocalSize = 5
	}
	if c.LocalSize%2 == 0 || c.LocalSize < 0 {
		return fmt.Errorf("lrn: LocalSize must be odd and positive, got %d", c.LocalSize)
	}
	if c.Alpha == 0 {
		c.Alpha = 1e-4
	}
	if c.Beta == 0 {
		c.Beta = 0.75
	}
	if c.K == 0 {
		c.K = 1
	}
	return nil
}

// LRN is across-channel local response normalization:
//
//	scale(s,c,h,w) = K + (Alpha/n) * Σ_{c' ∈ window(c)} x(s,c',h,w)²
//	y = x * scale^{-Beta}
//
// Channels within a window are coupled, so the race-free coalesced unit is
// a whole sample: both passes have extent S. The paper singles out the LRN
// layers ("norm1", "norm2") as the layers that *change the data-thread
// distribution* relative to their conv/pool neighbours (which distribute
// over S*C), causing the locality losses analysed in §4.2.1 — this
// implementation preserves exactly that structural property.
type LRN struct {
	base
	cfg LRNConfig

	num, channels, height, width int

	// scale caches the normalization denominators for the backward pass.
	scale         *blob.Blob
	propagateDown bool
}

// NewLRN creates a local response normalization layer.
func NewLRN(name string, cfg LRNConfig) (*LRN, error) {
	if err := cfg.normalize(); err != nil {
		return nil, fmt.Errorf("layer %s: %w", name, err)
	}
	return &LRN{base: base{name: name, typ: "LRN"}, cfg: cfg, scale: blob.New(), propagateDown: true}, nil
}

// SetPropagateDown implements the optional propagation control.
func (l *LRN) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *LRN) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() != 4 {
		return fmt.Errorf("layer %s: LRN needs a 4-D bottom, got %v", l.name, bottom[0].Shape())
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *LRN) Reshape(bottom, top []*blob.Blob) {
	b := bottom[0]
	l.num, l.channels, l.height, l.width = b.Num(), b.Channels(), b.Height(), b.Width()
	top[0].ReshapeLike(b)
	l.scale.ReshapeLike(b)
}

// ForwardExtent implements Layer: whole samples (channel coupling).
func (l *LRN) ForwardExtent() int { return l.num }

// ForwardRange implements Layer.
func (l *LRN) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	for s := lo; s < hi; s++ {
		l.forwardSample(s, bottom[0], top[0])
	}
}

func (l *LRN) forwardSample(s int, bottom, top *blob.Blob) {
	hw := l.height * l.width
	chw := l.channels * hw
	in := bottom.Data()[s*chw : (s+1)*chw]
	out := top.Data()[s*chw : (s+1)*chw]
	sc := l.scale.Data()[s*chw : (s+1)*chw]
	l.forwardColumns(in, out, sc, 0, hw)
}

// forwardColumns normalizes spatial positions [plo, phi) of one sample.
// Splitting by column keeps the sliding-window recurrence per position.
func (l *LRN) forwardColumns(in, out, sc []float32, plo, phi int) {
	hw := l.height * l.width
	half := l.cfg.LocalSize / 2
	alphaOverN := l.cfg.Alpha / float32(l.cfg.LocalSize)
	for p := plo; p < phi; p++ {
		// Sliding sum of squares over the channel axis at position p.
		var sum float32
		for c := 0; c <= half && c < l.channels; c++ {
			v := in[c*hw+p]
			sum += v * v
		}
		for c := 0; c < l.channels; c++ {
			sc[c*hw+p] = l.cfg.K + alphaOverN*sum
			out[c*hw+p] = in[c*hw+p] * float32(math.Pow(float64(sc[c*hw+p]), -float64(l.cfg.Beta)))
			// Slide: add channel c+half+1, drop channel c-half.
			if nc := c + half + 1; nc < l.channels {
				v := in[nc*hw+p]
				sum += v * v
			}
			if oc := c - half; oc >= 0 {
				v := in[oc*hw+p]
				sum -= v * v
			}
		}
	}
}

// BackwardExtent implements Layer.
func (l *LRN) BackwardExtent() int {
	if !l.propagateDown {
		return 0
	}
	return l.num
}

// BackwardRange implements Layer. LRN has no parameters.
func (l *LRN) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	for s := lo; s < hi; s++ {
		l.backwardSample(s, bottom[0], top[0])
	}
}

func (l *LRN) backwardSample(s int, bottom, top *blob.Blob) {
	hw := l.height * l.width
	chw := l.channels * hw
	in := bottom.Data()[s*chw : (s+1)*chw]
	inDiff := bottom.Diff()[s*chw : (s+1)*chw]
	out := top.Data()[s*chw : (s+1)*chw]
	outDiff := top.Diff()[s*chw : (s+1)*chw]
	sc := l.scale.Data()[s*chw : (s+1)*chw]
	l.backwardColumns(in, inDiff, out, outDiff, sc, 0, hw)
}

// backwardColumns computes the input gradient for spatial positions
// [plo, phi) of one sample using the standard LRN derivative:
//
//	dx_c = dy_c * scale_c^{-β} − (2αβ/n) x_c Σ_{c'∈win(c)} dy_{c'} y_{c'} / scale_{c'}
func (l *LRN) backwardColumns(in, inDiff, out, outDiff, sc []float32, plo, phi int) {
	hw := l.height * l.width
	half := l.cfg.LocalSize / 2
	ratio := 2 * l.cfg.Alpha * l.cfg.Beta / float32(l.cfg.LocalSize)
	for p := plo; p < phi; p++ {
		// Sliding sum of dy*y/scale over the channel window.
		var sum float32
		for c := 0; c <= half && c < l.channels; c++ {
			i := c*hw + p
			sum += outDiff[i] * out[i] / sc[i]
		}
		for c := 0; c < l.channels; c++ {
			i := c*hw + p
			inDiff[i] = outDiff[i]*float32(math.Pow(float64(sc[i]), -float64(l.cfg.Beta))) - ratio*in[i]*sum
			if nc := c + half + 1; nc < l.channels {
				j := nc*hw + p
				sum += outDiff[j] * out[j] / sc[j]
			}
			if oc := c - half; oc >= 0 {
				j := oc*hw + p
				sum -= outDiff[j] * out[j] / sc[j]
			}
		}
	}
}

// ForwardFine implements FineForwarder: per sample, spatial positions are
// split across workers (the GPU kernel's pixel-level decomposition).
func (l *LRN) ForwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	hw := l.height * l.width
	chw := l.channels * hw
	for s := 0; s < l.num; s++ {
		in := bottom[0].Data()[s*chw : (s+1)*chw]
		out := top[0].Data()[s*chw : (s+1)*chw]
		sc := l.scale.Data()[s*chw : (s+1)*chw]
		p.For(hw, func(plo, phi, _ int) {
			l.forwardColumns(in, out, sc, plo, phi)
		})
	}
}

// BackwardFine implements FineBackwarder.
func (l *LRN) BackwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	if !l.propagateDown {
		return
	}
	hw := l.height * l.width
	chw := l.channels * hw
	for s := 0; s < l.num; s++ {
		in := bottom[0].Data()[s*chw : (s+1)*chw]
		inDiff := bottom[0].Diff()[s*chw : (s+1)*chw]
		out := top[0].Data()[s*chw : (s+1)*chw]
		outDiff := top[0].Diff()[s*chw : (s+1)*chw]
		sc := l.scale.Data()[s*chw : (s+1)*chw]
		p.For(hw, func(plo, phi, _ int) {
			l.backwardColumns(in, inDiff, out, outDiff, sc, plo, phi)
		})
	}
}
