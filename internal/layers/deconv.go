package layers

import (
	"fmt"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/rng"
)

// Deconvolution (transposed convolution) upsamples its input: each input
// pixel scatters a kernel-shaped patch into the output,
//
//	outH = (inH-1)*stride - 2*pad + kernel,
//
// the building block of the deconvolutional visualization networks the
// paper cites ([26], Zeiler & Fergus) and of fully-convolutional decoders
// — exactly the kind of "research-stage" layer the network-agnostic
// argument is about: no optimized library kernel existed for it, yet the
// coarse engine parallelizes it through the generic contract.
//
// The weight blob has Caffe's deconvolution shape (C_in, C_out, KH, KW).
// Both passes coalesce over samples: the forward scatter touches every
// output channel of a sample (so one sample is the race-free unit), and
// the backward gather likewise couples all input channels.
type Deconvolution struct {
	base
	cfg ConvConfig

	num, channels, height, width int
	outH, outW                   int

	propagateDown bool
}

// NewDeconvolution creates a transposed-convolution layer. NumOutput is
// the output channel count; Kernel/Stride/Pad follow ConvConfig rules.
func NewDeconvolution(name string, cfg ConvConfig) (*Deconvolution, error) {
	if err := cfg.normalize(); err != nil {
		return nil, fmt.Errorf("layer %s: %w", name, err)
	}
	if cfg.RNG == nil {
		cfg.RNG = rng.New(1, 3)
	}
	return &Deconvolution{
		base:          base{name: name, typ: "Deconvolution"},
		cfg:           cfg,
		propagateDown: !cfg.DisablePropagation,
	}, nil
}

// SetPropagateDown implements the optional propagation control.
func (l *Deconvolution) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *Deconvolution) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() != 4 {
		return fmt.Errorf("layer %s: deconvolution needs a 4-D bottom, got %v", l.name, bottom[0].Shape())
	}
	c := bottom[0].Channels()
	weights := blob.Named(l.name+"_w", c, l.cfg.NumOutput, l.cfg.KernelH, l.cfg.KernelW)
	l.cfg.WeightFiller.Fill(weights, l.cfg.RNG)
	l.params = []*blob.Blob{weights}
	if !l.cfg.NoBias {
		bias := blob.Named(l.name+"_b", l.cfg.NumOutput)
		l.cfg.BiasFiller.Fill(bias, l.cfg.RNG)
		l.params = append(l.params, bias)
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Deconvolution) Reshape(bottom, top []*blob.Blob) {
	b := bottom[0]
	l.num, l.channels, l.height, l.width = b.Num(), b.Channels(), b.Height(), b.Width()
	l.outH = (l.height-1)*l.cfg.StrideH - 2*l.cfg.PadH + l.cfg.KernelH
	l.outW = (l.width-1)*l.cfg.StrideW - 2*l.cfg.PadW + l.cfg.KernelW
	if l.outH <= 0 || l.outW <= 0 {
		panic(fmt.Sprintf("layer %s: output size %dx%d not positive", l.name, l.outH, l.outW))
	}
	top[0].Reshape(l.num, l.cfg.NumOutput, l.outH, l.outW)
}

// ForwardExtent implements Layer: one sample per iteration (the scatter
// writes to every output channel of the sample).
func (l *Deconvolution) ForwardExtent() int { return l.num }

// ForwardRange implements Layer.
func (l *Deconvolution) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	kh, kw := l.cfg.KernelH, l.cfg.KernelW
	ph, pw := l.cfg.PadH, l.cfg.PadW
	sh, sw := l.cfg.StrideH, l.cfg.StrideW
	o := l.cfg.NumOutput
	w := l.params[0].Data()
	ohw := l.outH * l.outW
	for s := lo; s < hi; s++ {
		out := top[0].Data()[s*o*ohw : (s+1)*o*ohw]
		if l.cfg.NoBias {
			for i := range out {
				out[i] = 0
			}
		} else {
			bias := l.params[1].Data()
			for co := 0; co < o; co++ {
				ch := out[co*ohw : (co+1)*ohw]
				for i := range ch {
					ch[i] = bias[co]
				}
			}
		}
		in := bottom[0].Data()[s*l.channels*l.height*l.width:]
		for ci := 0; ci < l.channels; ci++ {
			chIn := in[ci*l.height*l.width:]
			wci := w[ci*o*kh*kw:]
			for ih := 0; ih < l.height; ih++ {
				for iw := 0; iw < l.width; iw++ {
					v := chIn[ih*l.width+iw]
					if v == 0 {
						continue
					}
					for co := 0; co < o; co++ {
						wk := wci[co*kh*kw:]
						chOut := out[co*ohw:]
						for ki := 0; ki < kh; ki++ {
							oh := ih*sh - ph + ki
							if oh < 0 || oh >= l.outH {
								continue
							}
							for kj := 0; kj < kw; kj++ {
								ow := iw*sw - pw + kj
								if ow < 0 || ow >= l.outW {
									continue
								}
								chOut[oh*l.outW+ow] += v * wk[ki*kw+kj]
							}
						}
					}
				}
			}
		}
	}
}

// BackwardExtent implements Layer.
func (l *Deconvolution) BackwardExtent() int { return l.num }

// BackwardRange implements Layer: the gather duals of the forward scatter.
//
//	dW[ci,co,k] += Σ x[ci,i] · dy[co, i*s-p+k]
//	dx[ci,i]     = Σ w[ci,co,k] · dy[co, i*s-p+k]
//	db[co]      += Σ dy[co]
func (l *Deconvolution) BackwardRange(lo, hi int, bottom, top []*blob.Blob, paramGrads []*blob.Blob) {
	kh, kw := l.cfg.KernelH, l.cfg.KernelW
	ph, pw := l.cfg.PadH, l.cfg.PadW
	sh, sw := l.cfg.StrideH, l.cfg.StrideW
	o := l.cfg.NumOutput
	ohw := l.outH * l.outW
	w := l.params[0].Data()
	wGrad := paramGrads[0].Diff()
	var bGrad []float32
	if !l.cfg.NoBias {
		bGrad = paramGrads[1].Diff()
	}
	for s := lo; s < hi; s++ {
		outDiff := top[0].Diff()[s*o*ohw : (s+1)*o*ohw]
		if bGrad != nil {
			for co := 0; co < o; co++ {
				var sum float32
				for _, v := range outDiff[co*ohw : (co+1)*ohw] {
					sum += v
				}
				bGrad[co] += sum
			}
		}
		in := bottom[0].Data()[s*l.channels*l.height*l.width:]
		var inDiff []float32
		if l.propagateDown {
			inDiff = bottom[0].Diff()[s*l.channels*l.height*l.width:]
		}
		for ci := 0; ci < l.channels; ci++ {
			chIn := in[ci*l.height*l.width:]
			var chInDiff []float32
			if inDiff != nil {
				chInDiff = inDiff[ci*l.height*l.width:]
			}
			wci := w[ci*o*kh*kw:]
			gci := wGrad[ci*o*kh*kw:]
			for ih := 0; ih < l.height; ih++ {
				for iw := 0; iw < l.width; iw++ {
					x := chIn[ih*l.width+iw]
					var acc float32
					for co := 0; co < o; co++ {
						wk := wci[co*kh*kw:]
						gk := gci[co*kh*kw:]
						chOut := outDiff[co*ohw:]
						for ki := 0; ki < kh; ki++ {
							oh := ih*sh - ph + ki
							if oh < 0 || oh >= l.outH {
								continue
							}
							for kj := 0; kj < kw; kj++ {
								ow := iw*sw - pw + kj
								if ow < 0 || ow >= l.outW {
									continue
								}
								g := chOut[oh*l.outW+ow]
								gk[ki*kw+kj] += x * g
								acc += wk[ki*kw+kj] * g
							}
						}
					}
					if chInDiff != nil {
						chInDiff[ih*l.width+iw] = acc
					}
				}
			}
		}
	}
}
