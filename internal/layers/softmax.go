package layers

import (
	"fmt"
	"math"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
)

// softmaxSample computes the softmax of in into out (both length c) with
// the usual max-subtraction for numerical stability.
func softmaxSample(in, out []float32) {
	maxV := in[0]
	for _, v := range in[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range in {
		e := math.Exp(float64(v - maxV))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
}

// Softmax normalizes scores into a probability distribution per sample
// (over axis 1, flattening trailing axes).
type Softmax struct {
	base
	num, classes  int
	propagateDown bool
}

// NewSoftmax creates a softmax layer.
func NewSoftmax(name string) *Softmax {
	return &Softmax{base: base{name: name, typ: "Softmax"}, propagateDown: true}
}

// SetPropagateDown implements the optional propagation control.
func (l *Softmax) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *Softmax) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() < 2 {
		return fmt.Errorf("layer %s: softmax needs >= 2 axes, got %v", l.name, bottom[0].Shape())
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Softmax) Reshape(bottom, top []*blob.Blob) {
	l.num = bottom[0].Dim(0)
	l.classes = bottom[0].CountFrom(1)
	top[0].ReshapeLike(bottom[0])
}

// ForwardExtent implements Layer.
func (l *Softmax) ForwardExtent() int { return l.num }

// ForwardRange implements Layer.
func (l *Softmax) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	for s := lo; s < hi; s++ {
		softmaxSample(bottom[0].Data()[s*l.classes:(s+1)*l.classes], top[0].Data()[s*l.classes:(s+1)*l.classes])
	}
}

// BackwardExtent implements Layer.
func (l *Softmax) BackwardExtent() int {
	if !l.propagateDown {
		return 0
	}
	return l.num
}

// BackwardRange implements Layer: dx = (dy − <dy, y>) ⊙ y per sample.
func (l *Softmax) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	for s := lo; s < hi; s++ {
		y := top[0].Data()[s*l.classes : (s+1)*l.classes]
		dy := top[0].Diff()[s*l.classes : (s+1)*l.classes]
		dx := bottom[0].Diff()[s*l.classes : (s+1)*l.classes]
		var dot float64
		for i := range y {
			dot += float64(dy[i]) * float64(y[i])
		}
		for i := range y {
			dx[i] = (dy[i] - float32(dot)) * y[i]
		}
	}
}

// SoftmaxWithLoss fuses softmax and multinomial logistic loss, the "loss"
// layer of both benchmark networks. Bottom 0 carries scores (S x C),
// bottom 1 carries integer labels stored as float32 (S). The top is a
// 1-element blob holding the mean negative log-likelihood.
//
// Per-sample losses are written by sample index during the parallel region
// and summed serially in ForwardFinish, so the reported loss is independent
// of the worker count — part of the convergence-invariance property.
type SoftmaxWithLoss struct {
	base
	num, classes int

	// prob caches softmax probabilities for the backward pass.
	prob *blob.Blob
	// perSample holds each sample's -log p(label).
	perSample  []float32
	lossWeight float32
}

// NewSoftmaxWithLoss creates the fused loss layer with loss weight 1.
func NewSoftmaxWithLoss(name string) *SoftmaxWithLoss {
	return &SoftmaxWithLoss{
		base:       base{name: name, typ: "SoftmaxWithLoss"},
		prob:       blob.New(),
		lossWeight: 1,
	}
}

// LossWeight implements LossWeighter.
func (l *SoftmaxWithLoss) LossWeight() float32 { return l.lossWeight }

// SetLossWeight changes the loss weight.
func (l *SoftmaxWithLoss) SetLossWeight(w float32) { l.lossWeight = w }

// SetUp implements Layer.
func (l *SoftmaxWithLoss) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 2, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() < 2 {
		return fmt.Errorf("layer %s: scores need >= 2 axes, got %v", l.name, bottom[0].Shape())
	}
	if bottom[1].Dim(0) != bottom[0].Dim(0) {
		return fmt.Errorf("layer %s: label batch %d != score batch %d", l.name, bottom[1].Dim(0), bottom[0].Dim(0))
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *SoftmaxWithLoss) Reshape(bottom, top []*blob.Blob) {
	l.num = bottom[0].Dim(0)
	l.classes = bottom[0].CountFrom(1)
	l.prob.ReshapeLike(bottom[0])
	if cap(l.perSample) < l.num {
		l.perSample = make([]float32, l.num)
	}
	l.perSample = l.perSample[:l.num]
	top[0].Reshape(1)
}

// ForwardExtent implements Layer.
func (l *SoftmaxWithLoss) ForwardExtent() int { return l.num }

// ForwardRange implements Layer.
func (l *SoftmaxWithLoss) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	labels := bottom[1].Data()
	for s := lo; s < hi; s++ {
		p := l.prob.Data()[s*l.classes : (s+1)*l.classes]
		softmaxSample(bottom[0].Data()[s*l.classes:(s+1)*l.classes], p)
		lab := int(labels[s])
		if lab < 0 || lab >= l.classes {
			panic(fmt.Sprintf("layer %s: label %d out of range [0,%d)", l.name, lab, l.classes))
		}
		pv := float64(p[lab])
		if pv < 1e-20 {
			pv = 1e-20
		}
		l.perSample[s] = float32(-math.Log(pv))
	}
}

// ForwardFinish implements ForwardFinisher: deterministic serial loss sum.
func (l *SoftmaxWithLoss) ForwardFinish(bottom, top []*blob.Blob) {
	var sum float64
	for _, v := range l.perSample {
		sum += float64(v)
	}
	top[0].Data()[0] = float32(sum / float64(l.num))
}

// Prob exposes the cached probabilities (used by tests and diagnostics).
func (l *SoftmaxWithLoss) Prob() *blob.Blob { return l.prob }

// BackwardExtent implements Layer.
func (l *SoftmaxWithLoss) BackwardExtent() int { return l.num }

// BackwardRange implements Layer: d score = (prob − onehot(label)) * w / S
// where w is the seed gradient stored in the top blob's diff by the net.
func (l *SoftmaxWithLoss) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	labels := bottom[1].Data()
	seed := top[0].Diff()[0] / float32(l.num)
	for s := lo; s < hi; s++ {
		p := l.prob.Data()[s*l.classes : (s+1)*l.classes]
		dx := bottom[0].Diff()[s*l.classes : (s+1)*l.classes]
		for i := range dx {
			dx[i] = p[i] * seed
		}
		dx[int(labels[s])] -= seed
	}
}

// ForwardFine implements FineForwarder: sample loop split across workers
// (the per-sample softmax is itself tiny). The engine runs ForwardFinish
// serially afterwards, as for every engine.
func (l *SoftmaxWithLoss) ForwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	p.For(l.num, func(lo, hi, _ int) { l.ForwardRange(lo, hi, bottom, top) })
}

// BackwardFine implements FineBackwarder.
func (l *SoftmaxWithLoss) BackwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	p.For(l.num, func(lo, hi, _ int) { l.BackwardRange(lo, hi, bottom, top, nil) })
}
