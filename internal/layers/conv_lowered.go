package layers

import (
	"sync"

	"coarsegrain/internal/blas"
	"coarsegrain/internal/blob"
)

// The lowered convolution path: im2col + GEMM per sample, which is what
// Caffe's CPU convolution actually does (the direct loop nest in conv.go
// models the "research-stage" code the paper's introduction motivates).
// Enable with ConvConfig.Lowered.
//
// Inside a coarse-grain parallel region every worker lowers its own
// samples, so each needs a private column buffer — exactly the "object
// privatization" step of Algorithm 4 (line 2). The buffers come from a
// sync.Pool, which gives per-worker reuse without the layer knowing the
// team size.

// colBuf wraps one pooled buffer. The pool stores these pointers rather
// than []float32 values: boxing a slice header into the pool's
// interface would allocate on every put, which the serving path's
// zero-alloc steady state (SERVING.md) cannot afford.
type colBuf struct{ data []float32 }

// colBuffers hands out column/scratch buffers of at least n floats.
type colBuffers struct{ pool sync.Pool }

func (c *colBuffers) get(n int) *colBuf {
	b, _ := c.pool.Get().(*colBuf)
	if b == nil {
		b = &colBuf{}
	}
	if cap(b.data) < n {
		b.data = make([]float32, n)
	}
	b.data = b.data[:n]
	return b
}

func (c *colBuffers) put(b *colBuf) { c.pool.Put(b) }

// forwardLoweredRange computes samples [lo, hi) via im2col+GEMM. One
// GemmScratch serves the whole band: the packed-panel buffers of the
// blocked kernel are reused sample to sample (the GEMM shape is constant
// across the band), exactly like the column buffer.
func (l *Convolution) forwardLoweredRange(lo, hi int, bottom, top *blob.Blob) {
	o := l.cfg.NumOutput
	ckk := l.channels * l.cfg.KernelH * l.cfg.KernelW
	ohw := l.outH * l.outW
	chw := l.channels * l.height * l.width
	w := l.params[0].Data()
	cb := l.cols.get(ckk * ohw)
	defer l.cols.put(cb)
	col := cb.data
	gs := blas.GetScratch()
	defer blas.PutScratch(gs)
	for s := lo; s < hi; s++ {
		im := bottom.Data()[s*chw:]
		blas.Im2col(im, l.channels, l.height, l.width, l.cfg.KernelH, l.cfg.KernelW,
			l.cfg.PadH, l.cfg.PadW, l.cfg.StrideH, l.cfg.StrideW, col)
		out := top.Data()[s*o*ohw : (s+1)*o*ohw]
		blas.GemmWithScratch(gs, blas.NoTrans, blas.NoTrans, o, ohw, ckk, 1, w, ckk, col, ohw, 0, out, ohw)
		if !l.cfg.NoBias {
			bias := l.params[1].Data()
			for oc := 0; oc < o; oc++ {
				blas.AddScalar(out[oc*ohw:(oc+1)*ohw], bias[oc])
			}
		}
	}
}

// backwardLoweredRange computes gradients for samples [lo, hi) via GEMMs:
// dW += dTop·colᵀ, dcol = Wᵀ·dTop, then col2im scatters dcol into the
// bottom gradient. Parameter gradients accumulate into the (possibly
// privatized) paramGrads blobs.
func (l *Convolution) backwardLoweredRange(lo, hi int, bottom, top *blob.Blob, paramGrads []*blob.Blob) {
	o := l.cfg.NumOutput
	ckk := l.channels * l.cfg.KernelH * l.cfg.KernelW
	ohw := l.outH * l.outW
	chw := l.channels * l.height * l.width
	w := l.params[0].Data()
	wGrad := paramGrads[0].Diff()
	var bGrad []float32
	if !l.cfg.NoBias {
		bGrad = paramGrads[1].Diff()
	}
	cb := l.cols.get(ckk * ohw)
	defer l.cols.put(cb)
	dcb := l.cols.get(ckk * ohw)
	defer l.cols.put(dcb)
	col, dcol := cb.data, dcb.data
	gs := blas.GetScratch()
	defer blas.PutScratch(gs)
	for s := lo; s < hi; s++ {
		im := bottom.Data()[s*chw:]
		outDiff := top.Diff()[s*o*ohw : (s+1)*o*ohw]
		blas.Im2col(im, l.channels, l.height, l.width, l.cfg.KernelH, l.cfg.KernelW,
			l.cfg.PadH, l.cfg.PadW, l.cfg.StrideH, l.cfg.StrideW, col)
		blas.GemmWithScratch(gs, blas.NoTrans, blas.Trans, o, ckk, ohw, 1, outDiff, ohw, col, ohw, 1, wGrad, ckk)
		if bGrad != nil {
			for oc := 0; oc < o; oc++ {
				var sum float32
				for _, v := range outDiff[oc*ohw : (oc+1)*ohw] {
					sum += v
				}
				bGrad[oc] += sum
			}
		}
		if !l.propagateDown {
			continue
		}
		blas.GemmWithScratch(gs, blas.Trans, blas.NoTrans, ckk, ohw, o, 1, w, ckk, outDiff, ohw, 0, dcol, ohw)
		inDiff := bottom.Diff()[s*chw : (s+1)*chw]
		for i := range inDiff {
			inDiff[i] = 0
		}
		blas.Col2im(dcol, l.channels, l.height, l.width, l.cfg.KernelH, l.cfg.KernelW,
			l.cfg.PadH, l.cfg.PadW, l.cfg.StrideH, l.cfg.StrideW, inDiff)
	}
}
