package layers

import (
	"fmt"

	"coarsegrain/internal/blas"
	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
)

// ConvConfig configures a Convolution layer. Kernel is required; Pad and
// Stride default to 0 and 1. Per-axis values (KernelH...) override the
// square settings when non-zero.
type ConvConfig struct {
	NumOutput          int
	Kernel             int
	KernelH, KernelW   int
	Pad                int
	PadH, PadW         int
	Stride             int
	StrideH, StrideW   int
	BiasTerm           bool // NOTE: set via NewConvolution default (true); see WithoutBias
	NoBias             bool // disable the bias term
	WeightFiller       Filler
	BiasFiller         Filler
	RNG                *rng.RNG
	DisablePropagation bool // skip gradient w.r.t. bottom (first conv after data)
	// Lowered selects the im2col+GEMM implementation (Caffe's CPU path)
	// for the sequential/coarse engines instead of the direct loop nest;
	// the coalesced unit becomes one sample and each worker privatizes a
	// column buffer (see conv_lowered.go).
	Lowered bool
}

func (c *ConvConfig) normalize() error {
	if c.NumOutput <= 0 {
		return fmt.Errorf("convolution: NumOutput must be positive, got %d", c.NumOutput)
	}
	if c.KernelH == 0 {
		c.KernelH = c.Kernel
	}
	if c.KernelW == 0 {
		c.KernelW = c.Kernel
	}
	if c.KernelH <= 0 || c.KernelW <= 0 {
		return fmt.Errorf("convolution: kernel size must be positive, got %dx%d", c.KernelH, c.KernelW)
	}
	if c.PadH == 0 {
		c.PadH = c.Pad
	}
	if c.PadW == 0 {
		c.PadW = c.Pad
	}
	if c.StrideH == 0 {
		c.StrideH = c.Stride
	}
	if c.StrideW == 0 {
		c.StrideW = c.Stride
	}
	if c.StrideH == 0 {
		c.StrideH = 1
	}
	if c.StrideW == 0 {
		c.StrideW = 1
	}
	if c.WeightFiller == nil {
		c.WeightFiller = XavierFiller{}
	}
	if c.BiasFiller == nil {
		c.BiasFiller = ConstantFiller{}
	}
	if c.RNG == nil {
		c.RNG = rng.New(1, 1)
	}
	return nil
}

// Convolution is a 2-D convolutional layer (feature learning, §2.2.1).
//
// The sequential/coarse-grain implementation is the direct loop nest of
// Algorithm 2: the forward pass coalesces the two outermost loops (sample,
// output channel) and computes each output feature map independently; the
// backward pass coalesces over samples only, because the gradient with
// respect to the input accumulates contributions from all output channels
// of the same sample and must stay within one worker to remain race-free.
//
// The layer additionally implements the tuned (cuDNN-analogue) path:
// im2col lowering plus GEMM, with the GEMM rows split across the pool.
type Convolution struct {
	base
	cfg ConvConfig

	// Cached geometry, valid after SetUp/Reshape.
	num, channels, height, width int
	outH, outW                   int

	propagateDown bool

	// Scratch for the tuned path: one column buffer (samples are processed
	// serially in that path, parallelism is inside the GEMM), plus its
	// backward twin holding dcol = W^T * dTop before col2im. Both persist
	// across calls so the tuned hot path allocates nothing in steady state.
	colBuf  []float32
	dcolBuf []float32
	// cols hands out per-worker private column buffers for the lowered
	// path (Algorithm 4's object privatization).
	cols colBuffers
}

// NewConvolution creates a convolution layer. It returns an error for
// invalid configurations.
func NewConvolution(name string, cfg ConvConfig) (*Convolution, error) {
	if err := cfg.normalize(); err != nil {
		return nil, fmt.Errorf("layer %s: %w", name, err)
	}
	return &Convolution{
		base:          base{name: name, typ: "Convolution"},
		cfg:           cfg,
		propagateDown: !cfg.DisablePropagation,
	}, nil
}

// SetPropagateDown lets the net disable the input-gradient computation
// when the bottom blob needs no gradient (e.g. it comes from a data layer).
func (l *Convolution) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *Convolution) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() != 4 {
		return fmt.Errorf("layer %s: convolution needs a 4-D bottom, got %v", l.name, bottom[0].Shape())
	}
	c := bottom[0].Channels()
	weights := blob.Named(l.name+"_w", l.cfg.NumOutput, c, l.cfg.KernelH, l.cfg.KernelW)
	l.cfg.WeightFiller.Fill(weights, l.cfg.RNG)
	l.params = []*blob.Blob{weights}
	if !l.cfg.NoBias {
		bias := blob.Named(l.name+"_b", l.cfg.NumOutput)
		l.cfg.BiasFiller.Fill(bias, l.cfg.RNG)
		l.params = append(l.params, bias)
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Convolution) Reshape(bottom, top []*blob.Blob) {
	b := bottom[0]
	l.num, l.channels, l.height, l.width = b.Num(), b.Channels(), b.Height(), b.Width()
	if l.channels != l.params[0].Dim(1) {
		panic(fmt.Sprintf("layer %s: channel count changed from %d to %d", l.name, l.params[0].Dim(1), l.channels))
	}
	l.outH = blas.ConvOutSize(l.height, l.cfg.KernelH, l.cfg.PadH, l.cfg.StrideH)
	l.outW = blas.ConvOutSize(l.width, l.cfg.KernelW, l.cfg.PadW, l.cfg.StrideW)
	if l.outH <= 0 || l.outW <= 0 {
		panic(fmt.Sprintf("layer %s: output size %dx%d not positive", l.name, l.outH, l.outW))
	}
	top[0].Reshape(l.num, l.cfg.NumOutput, l.outH, l.outW)
	colLen := l.channels * l.cfg.KernelH * l.cfg.KernelW * l.outH * l.outW
	if cap(l.colBuf) < colLen {
		l.colBuf = make([]float32, colLen)
	}
	l.colBuf = l.colBuf[:colLen]
}

// ForwardExtent implements Layer: in the direct implementation the
// (sample, output-channel) loops are coalesced, giving S*O small work
// units (Algorithm 4's civ loop); the lowered implementation's unit is one
// im2col'd sample, so its extent is S.
func (l *Convolution) ForwardExtent() int {
	if l.cfg.Lowered {
		return l.num
	}
	return l.num * l.cfg.NumOutput
}

// ForwardRange implements Layer.
func (l *Convolution) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	if l.cfg.Lowered {
		l.forwardLoweredRange(lo, hi, bottom[0], top[0])
		return
	}
	for civ := lo; civ < hi; civ++ {
		s := civ / l.cfg.NumOutput
		o := civ % l.cfg.NumOutput
		l.forwardOne(s, o, bottom[0], top[0])
	}
}

// forwardOne computes output feature map o of sample s by direct
// convolution.
func (l *Convolution) forwardOne(s, o int, bottom, top *blob.Blob) {
	kh, kw := l.cfg.KernelH, l.cfg.KernelW
	ph, pw := l.cfg.PadH, l.cfg.PadW
	sh, sw := l.cfg.StrideH, l.cfg.StrideW
	in := bottom.Data()[s*l.channels*l.height*l.width:]
	w := l.params[0].Data()[o*l.channels*kh*kw:]
	out := top.Data()[(s*l.cfg.NumOutput+o)*l.outH*l.outW:]
	var biasVal float32
	if !l.cfg.NoBias {
		biasVal = l.params[1].Data()[o]
	}
	for oh := 0; oh < l.outH; oh++ {
		for ow := 0; ow < l.outW; ow++ {
			acc := biasVal
			for c := 0; c < l.channels; c++ {
				chIn := in[c*l.height*l.width:]
				chW := w[c*kh*kw:]
				for ki := 0; ki < kh; ki++ {
					ih := oh*sh - ph + ki
					if ih < 0 || ih >= l.height {
						continue
					}
					rowIn := chIn[ih*l.width:]
					rowW := chW[ki*kw:]
					for kj := 0; kj < kw; kj++ {
						iw := ow*sw - pw + kj
						if iw < 0 || iw >= l.width {
							continue
						}
						acc += rowW[kj] * rowIn[iw]
					}
				}
			}
			out[oh*l.outW+ow] = acc
		}
	}
}

// BackwardExtent implements Layer: backward coalesces over samples only —
// all output channels of a sample contribute to the same input-gradient
// region, so a sample is the smallest race-free unit.
func (l *Convolution) BackwardExtent() int { return l.num }

// BackwardRange implements Layer.
func (l *Convolution) BackwardRange(lo, hi int, bottom, top []*blob.Blob, paramGrads []*blob.Blob) {
	if l.cfg.Lowered {
		l.backwardLoweredRange(lo, hi, bottom[0], top[0], paramGrads)
		return
	}
	kh, kw := l.cfg.KernelH, l.cfg.KernelW
	ph, pw := l.cfg.PadH, l.cfg.PadW
	sh, sw := l.cfg.StrideH, l.cfg.StrideW
	chw := l.channels * l.height * l.width
	wData := l.params[0].Data()
	wGrad := paramGrads[0].Diff()
	var bGrad []float32
	if !l.cfg.NoBias {
		bGrad = paramGrads[1].Diff()
	}
	for s := lo; s < hi; s++ {
		in := bottom[0].Data()[s*chw : (s+1)*chw]
		inDiff := bottom[0].Diff()[s*chw : (s+1)*chw]
		if l.propagateDown {
			for i := range inDiff {
				inDiff[i] = 0
			}
		}
		for o := 0; o < l.cfg.NumOutput; o++ {
			outDiff := top[0].Diff()[(s*l.cfg.NumOutput+o)*l.outH*l.outW:]
			ow0 := o * l.channels * kh * kw
			for oh := 0; oh < l.outH; oh++ {
				for ow := 0; ow < l.outW; ow++ {
					g := outDiff[oh*l.outW+ow]
					if g == 0 {
						continue
					}
					if bGrad != nil {
						bGrad[o] += g
					}
					for c := 0; c < l.channels; c++ {
						cw0 := ow0 + c*kh*kw
						ci0 := c * l.height * l.width
						for ki := 0; ki < kh; ki++ {
							ih := oh*sh - ph + ki
							if ih < 0 || ih >= l.height {
								continue
							}
							for kj := 0; kj < kw; kj++ {
								iw := ow*sw - pw + kj
								if iw < 0 || iw >= l.width {
									continue
								}
								widx := cw0 + ki*kw + kj
								iidx := ci0 + ih*l.width + iw
								wGrad[widx] += g * in[iidx]
								if l.propagateDown {
									inDiff[iidx] += g * wData[widx]
								}
							}
						}
					}
				}
			}
		}
	}
}

// ForwardFine implements FineForwarder: the plain-GPU analogue. Samples
// are walked serially and the output-channel loop of each sample is split
// across workers — inner-loop parallelism with the modest granularity the
// paper observes for Caffe's native GPU convolution kernels.
func (l *Convolution) ForwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	for s := 0; s < l.num; s++ {
		s := s
		p.For(l.cfg.NumOutput, func(olo, ohi, _ int) {
			for o := olo; o < ohi; o++ {
				l.forwardOne(s, o, bottom[0], top[0])
			}
		})
	}
}

// BackwardFine implements FineBackwarder: per sample, the output-channel
// loop of the weight/bias gradient is split across workers (each worker
// owns disjoint rows of the weight gradient); the input gradient is then
// accumulated serially per sample.
func (l *Convolution) BackwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	kh, kw := l.cfg.KernelH, l.cfg.KernelW
	ph, pw := l.cfg.PadH, l.cfg.PadW
	sh, sw := l.cfg.StrideH, l.cfg.StrideW
	chw := l.channels * l.height * l.width
	wData := l.params[0].Data()
	wGrad := l.params[0].Diff()
	var bGrad []float32
	if !l.cfg.NoBias {
		bGrad = l.params[1].Diff()
	}
	for s := 0; s < l.num; s++ {
		in := bottom[0].Data()[s*chw : (s+1)*chw]
		inDiff := bottom[0].Diff()[s*chw : (s+1)*chw]
		if l.propagateDown {
			for i := range inDiff {
				inDiff[i] = 0
			}
		}
		// Weight and bias gradients: rows (output channels) are disjoint.
		p.For(l.cfg.NumOutput, func(olo, ohi, _ int) {
			for o := olo; o < ohi; o++ {
				outDiff := top[0].Diff()[(s*l.cfg.NumOutput+o)*l.outH*l.outW:]
				ow0 := o * l.channels * kh * kw
				for oh := 0; oh < l.outH; oh++ {
					for ow := 0; ow < l.outW; ow++ {
						g := outDiff[oh*l.outW+ow]
						if g == 0 {
							continue
						}
						if bGrad != nil {
							bGrad[o] += g
						}
						for c := 0; c < l.channels; c++ {
							cw0 := ow0 + c*kh*kw
							ci0 := c * l.height * l.width
							for ki := 0; ki < kh; ki++ {
								ih := oh*sh - ph + ki
								if ih < 0 || ih >= l.height {
									continue
								}
								for kj := 0; kj < kw; kj++ {
									iw := ow*sw - pw + kj
									if iw < 0 || iw >= l.width {
										continue
									}
									wGrad[cw0+ki*kw+kj] += g * in[ci0+ih*l.width+iw]
								}
							}
						}
					}
				}
			}
		})
		if !l.propagateDown {
			continue
		}
		// Input gradient: split across input channels (disjoint writes).
		p.For(l.channels, func(clo, chi, _ int) {
			for c := clo; c < chi; c++ {
				ci0 := c * l.height * l.width
				for o := 0; o < l.cfg.NumOutput; o++ {
					outDiff := top[0].Diff()[(s*l.cfg.NumOutput+o)*l.outH*l.outW:]
					cw0 := o*l.channels*kh*kw + c*kh*kw
					for oh := 0; oh < l.outH; oh++ {
						for ow := 0; ow < l.outW; ow++ {
							g := outDiff[oh*l.outW+ow]
							if g == 0 {
								continue
							}
							for ki := 0; ki < kh; ki++ {
								ih := oh*sh - ph + ki
								if ih < 0 || ih >= l.height {
									continue
								}
								for kj := 0; kj < kw; kj++ {
									iw := ow*sw - pw + kj
									if iw < 0 || iw >= l.width {
										continue
									}
									inDiff[ci0+ih*l.width+iw] += g * wData[cw0+ki*kw+kj]
								}
							}
						}
					}
				}
			}
		})
	}
}

// ForwardTuned implements TunedForwarder: the cuDNN analogue. Each sample
// is lowered with im2col and the convolution becomes one GEMM,
// W (O x CKK) * col (CKK x OHW), with GEMM rows split across the pool.
func (l *Convolution) ForwardTuned(p *par.Pool, bottom, top []*blob.Blob) {
	o := l.cfg.NumOutput
	ckk := l.channels * l.cfg.KernelH * l.cfg.KernelW
	ohw := l.outH * l.outW
	w := l.params[0].Data()
	for s := 0; s < l.num; s++ {
		im := bottom[0].Data()[s*l.channels*l.height*l.width:]
		blas.Im2col(im, l.channels, l.height, l.width, l.cfg.KernelH, l.cfg.KernelW,
			l.cfg.PadH, l.cfg.PadW, l.cfg.StrideH, l.cfg.StrideW, l.colBuf)
		out := top[0].Data()[s*o*ohw : (s+1)*o*ohw]
		blas.GemmParallel(p, blas.NoTrans, blas.NoTrans, o, ohw, ckk, 1, w, ckk, l.colBuf, ohw, 0, out, ohw)
		if !l.cfg.NoBias {
			bias := l.params[1].Data()
			p.For(o, func(olo, ohi, _ int) {
				for oc := olo; oc < ohi; oc++ {
					blas.AddScalar(out[oc*ohw:(oc+1)*ohw], bias[oc])
				}
			})
		}
	}
}

// BackwardTuned implements TunedBackwarder: dW += dTop * col^T and
// dcol = W^T * dTop per sample, followed by col2im scattering; all GEMMs
// are row-parallel.
func (l *Convolution) BackwardTuned(p *par.Pool, bottom, top []*blob.Blob) {
	o := l.cfg.NumOutput
	ckk := l.channels * l.cfg.KernelH * l.cfg.KernelW
	ohw := l.outH * l.outW
	chw := l.channels * l.height * l.width
	w := l.params[0].Data()
	wGrad := l.params[0].Diff()
	if cap(l.dcolBuf) < len(l.colBuf) {
		l.dcolBuf = make([]float32, len(l.colBuf))
	}
	dcol := l.dcolBuf[:len(l.colBuf)]
	for s := 0; s < l.num; s++ {
		im := bottom[0].Data()[s*chw:]
		outDiff := top[0].Diff()[s*o*ohw : (s+1)*o*ohw]
		blas.Im2col(im, l.channels, l.height, l.width, l.cfg.KernelH, l.cfg.KernelW,
			l.cfg.PadH, l.cfg.PadW, l.cfg.StrideH, l.cfg.StrideW, l.colBuf)
		// dW (O x CKK) += dTop (O x OHW) * col^T (OHW x CKK).
		blas.GemmParallel(p, blas.NoTrans, blas.Trans, o, ckk, ohw, 1, outDiff, ohw, l.colBuf, ohw, 1, wGrad, ckk)
		if !l.cfg.NoBias {
			bGrad := l.params[1].Diff()
			for oc := 0; oc < o; oc++ {
				var sum float32
				row := outDiff[oc*ohw : (oc+1)*ohw]
				for _, v := range row {
					sum += v
				}
				bGrad[oc] += sum
			}
		}
		if !l.propagateDown {
			continue
		}
		// dcol (CKK x OHW) = W^T (CKK x O) * dTop (O x OHW).
		blas.GemmParallel(p, blas.Trans, blas.NoTrans, ckk, ohw, o, 1, w, ckk, outDiff, ohw, 0, dcol, ohw)
		inDiff := bottom[0].Diff()[s*chw : (s+1)*chw]
		for i := range inDiff {
			inDiff[i] = 0
		}
		blas.Col2im(dcol, l.channels, l.height, l.width, l.cfg.KernelH, l.cfg.KernelW,
			l.cfg.PadH, l.cfg.PadW, l.cfg.StrideH, l.cfg.StrideW, inDiff)
	}
}

// ForwardFLOPs implements Coster: the direct convolution's multiply-add
// count over the whole batch (2 FLOPs per MAC, plus the bias adds).
func (l *Convolution) ForwardFLOPs() int64 {
	macs := int64(l.num) * int64(l.cfg.NumOutput) * int64(l.outH) * int64(l.outW) *
		int64(l.channels) * int64(l.cfg.KernelH) * int64(l.cfg.KernelW)
	flops := 2 * macs
	if !l.cfg.NoBias {
		flops += int64(l.num) * int64(l.cfg.NumOutput) * int64(l.outH) * int64(l.outW)
	}
	return flops
}

// BackwardFLOPs implements Coster: the weight-gradient pass always runs;
// the bottom-diff pass runs only when gradients propagate down (the
// first convolution after the data layer skips it, as Caffe does).
func (l *Convolution) BackwardFLOPs() int64 {
	macs := int64(l.num) * int64(l.cfg.NumOutput) * int64(l.outH) * int64(l.outW) *
		int64(l.channels) * int64(l.cfg.KernelH) * int64(l.cfg.KernelW)
	passes := int64(1)
	if l.propagateDown {
		passes = 2
	}
	flops := 2 * macs * passes
	if !l.cfg.NoBias {
		flops += int64(l.num) * int64(l.cfg.NumOutput) * int64(l.outH) * int64(l.outW)
	}
	return flops
}
