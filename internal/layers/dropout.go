package layers

import (
	"fmt"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/rng"
)

// Dropout implements inverted dropout: during training each element is
// zeroed with probability Ratio and survivors are scaled by 1/(1-Ratio);
// at test time the layer is the identity.
//
// The mask is drawn *serially* in ForwardPrepare from the layer's private
// RNG stream — this keeps the training trajectory bit-identical for any
// worker count (convergence invariance): the random sequence consumed per
// iteration does not depend on how the parallel region was scheduled.
type Dropout struct {
	base
	ratio float32
	rng   *rng.RNG

	mask          []float32
	train         bool
	extent, plane int
	propagateDown bool
}

// NewDropout creates a dropout layer with the given drop ratio in [0, 1).
func NewDropout(name string, ratio float32, r *rng.RNG) (*Dropout, error) {
	if ratio < 0 || ratio >= 1 {
		return nil, fmt.Errorf("layer %s: dropout ratio must be in [0,1), got %g", name, ratio)
	}
	if r == nil {
		r = rng.New(7, 7)
	}
	return &Dropout{
		base:          base{name: name, typ: "Dropout"},
		ratio:         ratio,
		rng:           r,
		train:         true,
		propagateDown: true,
	}, nil
}

// SetTrain switches between training (mask applied) and testing (identity).
func (l *Dropout) SetTrain(train bool) { l.train = train }

// CanRunInPlace implements InPlacer: the backward needs only the mask.
func (l *Dropout) CanRunInPlace() bool { return true }

// SetPropagateDown implements the optional propagation control.
func (l *Dropout) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *Dropout) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Dropout) Reshape(bottom, top []*blob.Blob) {
	top[0].ReshapeLike(bottom[0])
	n := bottom[0].Count()
	if cap(l.mask) < n {
		l.mask = make([]float32, n)
	}
	l.mask = l.mask[:n]
	l.extent = planeExtent(bottom[0])
	l.plane = planeSize(bottom[0])
}

// ForwardPrepare implements ForwardPreparer: serial mask generation.
func (l *Dropout) ForwardPrepare(bottom, top []*blob.Blob) {
	if !l.train {
		return
	}
	scale := 1 / (1 - l.ratio)
	for i := range l.mask {
		if l.rng.Bernoulli(l.ratio) {
			l.mask[i] = 0
		} else {
			l.mask[i] = scale
		}
	}
}

// ForwardExtent implements Layer.
func (l *Dropout) ForwardExtent() int { return l.extent }

// ForwardRange implements Layer.
func (l *Dropout) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	in := bottom[0].Data()
	out := top[0].Data()
	if !l.train {
		copy(out[lo*l.plane:hi*l.plane], in[lo*l.plane:hi*l.plane])
		return
	}
	for i := lo * l.plane; i < hi*l.plane; i++ {
		out[i] = in[i] * l.mask[i]
	}
}

// BackwardExtent implements Layer.
func (l *Dropout) BackwardExtent() int {
	if !l.propagateDown {
		return 0
	}
	return l.extent
}

// BackwardRange implements Layer.
func (l *Dropout) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	inDiff := bottom[0].Diff()
	outDiff := top[0].Diff()
	if !l.train {
		copy(inDiff[lo*l.plane:hi*l.plane], outDiff[lo*l.plane:hi*l.plane])
		return
	}
	for i := lo * l.plane; i < hi*l.plane; i++ {
		inDiff[i] = outDiff[i] * l.mask[i]
	}
}
