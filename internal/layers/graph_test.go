package layers

import (
	"testing"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/rng"
)

// --- Eltwise ---

func TestEltwiseSumForwardBackward(t *testing.T) {
	l := NewEltwise("e", EltwiseSum, []float32{2, -1})
	a := blob.New(2, 3)
	b := blob.New(2, 3)
	copy(a.Data(), []float32{1, 2, 3, 4, 5, 6})
	copy(b.Data(), []float32{6, 5, 4, 3, 2, 1})
	tops := setup(t, l, []*blob.Blob{a, b})
	runForward(l, []*blob.Blob{a, b}, tops)
	want := []float32{-4, -1, 2, 5, 8, 11}
	for i, w := range want {
		almostEq(t, tops[0].Data()[i], w, 1e-6, "eltwise sum")
	}
	for i := range tops[0].Diff() {
		tops[0].Diff()[i] = float32(i + 1)
	}
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{a, b}, tops, nil)
	if a.Diff()[2] != 2*3 || b.Diff()[2] != -3 {
		t.Fatalf("eltwise sum grads: %v %v", a.Diff(), b.Diff())
	}
}

func TestEltwiseProdGradient(t *testing.T) {
	r := rng.New(21, 1)
	l := NewEltwise("e", EltwiseProd, nil)
	a := randomBlob(r, 0.5, 1.5, 3, 4)
	b := randomBlob(r, 0.5, 1.5, 3, 4)
	gradCheck(t, l, []*blob.Blob{a, b}, []bool{true, true}, false, 1e-3, 2e-2)
}

func TestEltwiseSumGradient(t *testing.T) {
	r := rng.New(22, 1)
	l := NewEltwise("e", EltwiseSum, []float32{0.5, 2, -1})
	a := randomBlob(r, -1, 1, 2, 5)
	b := randomBlob(r, -1, 1, 2, 5)
	c := randomBlob(r, -1, 1, 2, 5)
	gradCheck(t, l, []*blob.Blob{a, b, c}, []bool{true, true, true}, false, 1e-3, 2e-2)
}

func TestEltwiseMaxRoutesGradient(t *testing.T) {
	l := NewEltwise("e", EltwiseMax, nil)
	a := blob.New(1, 3)
	b := blob.New(1, 3)
	copy(a.Data(), []float32{5, 1, 5})
	copy(b.Data(), []float32{2, 8, 2})
	tops := setup(t, l, []*blob.Blob{a, b})
	runForward(l, []*blob.Blob{a, b}, tops)
	want := []float32{5, 8, 5}
	for i, w := range want {
		almostEq(t, tops[0].Data()[i], w, 0, "eltwise max")
	}
	copy(tops[0].Diff(), []float32{1, 1, 1})
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{a, b}, tops, nil)
	if a.Diff()[0] != 1 || a.Diff()[1] != 0 || b.Diff()[1] != 1 || b.Diff()[0] != 0 {
		t.Fatalf("max grads: %v %v", a.Diff(), b.Diff())
	}
}

func TestEltwiseValidation(t *testing.T) {
	l := NewEltwise("e", EltwiseSum, nil)
	if err := l.SetUp([]*blob.Blob{blob.New(2, 2)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("single bottom accepted")
	}
	if err := l.SetUp([]*blob.Blob{blob.New(2, 2), blob.New(2, 3)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
	l2 := NewEltwise("e", EltwiseSum, []float32{1})
	if err := l2.SetUp([]*blob.Blob{blob.New(2, 2), blob.New(2, 2)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("wrong coeff count accepted")
	}
}

func TestEltwiseChunkedEqualsWhole(t *testing.T) {
	r := rng.New(23, 1)
	l := NewEltwise("e", EltwiseSum, nil)
	a := randomBlob(r, -1, 1, 4, 3, 2, 2)
	b := randomBlob(r, -1, 1, 4, 3, 2, 2)
	tops := setup(t, l, []*blob.Blob{a, b})
	runForward(l, []*blob.Blob{a, b}, tops)
	ref := append([]float32(nil), tops[0].Data()...)
	tops[0].ZeroData()
	n := l.ForwardExtent()
	for lo := 0; lo < n; lo += 5 {
		hi := min(lo+5, n)
		l.ForwardRange(lo, hi, []*blob.Blob{a, b}, tops)
	}
	for i := range ref {
		if tops[0].Data()[i] != ref[i] {
			t.Fatal("chunked eltwise differs")
		}
	}
}

// --- Concat ---

func TestConcatForwardBackward(t *testing.T) {
	l := NewConcat("c")
	a := blob.New(2, 1, 2, 2) // 1 channel
	b := blob.New(2, 2, 2, 2) // 2 channels
	for i := range a.Data() {
		a.Data()[i] = float32(i)
	}
	for i := range b.Data() {
		b.Data()[i] = 100 + float32(i)
	}
	tops := setup(t, l, []*blob.Blob{a, b})
	if s := tops[0].Shape(); s[0] != 2 || s[1] != 3 || s[2] != 2 || s[3] != 2 {
		t.Fatalf("concat shape %v", s)
	}
	runForward(l, []*blob.Blob{a, b}, tops)
	// Sample 0: a's 4 values then b's 8 values.
	if tops[0].At(0, 0, 0, 0) != 0 || tops[0].At(0, 1, 0, 0) != 100 || tops[0].At(0, 2, 1, 1) != 107 {
		t.Fatalf("concat values wrong: %v", tops[0].Data())
	}
	// Sample 1 offsets.
	if tops[0].At(1, 0, 0, 0) != 4 || tops[0].At(1, 1, 0, 0) != 108 {
		t.Fatal("concat sample 1 wrong")
	}
	for i := range tops[0].Diff() {
		tops[0].Diff()[i] = float32(i)
	}
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{a, b}, tops, nil)
	if a.Diff()[0] != 0 || a.Diff()[3] != 3 || b.Diff()[0] != 4 || b.Diff()[7] != 11 {
		t.Fatalf("concat grads: %v %v", a.Diff(), b.Diff())
	}
}

func TestConcatValidation(t *testing.T) {
	l := NewConcat("c")
	if err := l.SetUp([]*blob.Blob{blob.New(2, 1, 2, 2), blob.New(3, 1, 2, 2)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("batch mismatch accepted")
	}
	if err := l.SetUp([]*blob.Blob{blob.New(2, 1, 2, 2), blob.New(2, 1, 3, 3)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("spatial mismatch accepted")
	}
	if err := l.SetUp(nil, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("no bottoms accepted")
	}
}

func TestConcatGradient(t *testing.T) {
	r := rng.New(24, 1)
	l := NewConcat("c")
	a := randomBlob(r, -1, 1, 2, 2, 3, 3)
	b := randomBlob(r, -1, 1, 2, 4, 3, 3)
	gradCheck(t, l, []*blob.Blob{a, b}, []bool{true, true}, false, 1e-3, 2e-2)
}

// --- Flatten ---

func TestFlattenRoundTrip(t *testing.T) {
	r := rng.New(25, 1)
	l := NewFlatten("f")
	bottom := randomBlob(r, -1, 1, 3, 2, 4, 4)
	tops := setup(t, l, []*blob.Blob{bottom})
	if s := tops[0].Shape(); len(s) != 2 || s[0] != 3 || s[1] != 32 {
		t.Fatalf("flatten shape %v", s)
	}
	runForward(l, []*blob.Blob{bottom}, tops)
	for i := range bottom.Data() {
		if tops[0].Data()[i] != bottom.Data()[i] {
			t.Fatal("flatten changed values")
		}
	}
	for i := range tops[0].Diff() {
		tops[0].Diff()[i] = float32(i)
	}
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{bottom}, tops, nil)
	for i := range bottom.Diff() {
		if bottom.Diff()[i] != float32(i) {
			t.Fatal("flatten backward wrong")
		}
	}
}

func TestEltwiseOpString(t *testing.T) {
	if EltwiseSum.String() != "SUM" || EltwiseProd.String() != "PROD" || EltwiseMax.String() != "MAX" {
		t.Fatal("op strings wrong")
	}
}

// --- Split ---

func TestSplitForwardCopiesAndBackwardSums(t *testing.T) {
	l := NewSplit("s")
	bottom := blob.New(2, 3)
	copy(bottom.Data(), []float32{1, 2, 3, 4, 5, 6})
	tops := []*blob.Blob{blob.New(), blob.New(), blob.New()}
	if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
		t.Fatal(err)
	}
	runForward(l, []*blob.Blob{bottom}, tops)
	for _, top := range tops {
		for i := range bottom.Data() {
			if top.Data()[i] != bottom.Data()[i] {
				t.Fatal("split did not copy")
			}
		}
	}
	for ti, top := range tops {
		for i := range top.Diff() {
			top.Diff()[i] = float32(ti + 1)
		}
	}
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{bottom}, tops, nil)
	for _, v := range bottom.Diff() {
		if v != 6 { // 1+2+3
			t.Fatalf("split backward sum: %v", bottom.Diff())
		}
	}
}

func TestSplitGradient(t *testing.T) {
	// Manual gradient check (the helper only supports fixed arities):
	// J = <top0, w0> + <top1, w1>; dJ/dbottom = w0 + w1.
	r := rng.New(26, 1)
	l := NewSplit("s")
	bottom := randomBlob(r, -1, 1, 2, 4)
	tops := []*blob.Blob{blob.New(), blob.New()}
	if err := l.SetUp([]*blob.Blob{bottom}, tops); err != nil {
		t.Fatal(err)
	}
	runForward(l, []*blob.Blob{bottom}, tops)
	for _, top := range tops {
		for i := range top.Diff() {
			top.Diff()[i] = r.Range(0.5, 1.5)
		}
	}
	l.BackwardRange(0, l.BackwardExtent(), []*blob.Blob{bottom}, tops, nil)
	for i := range bottom.Diff() {
		want := tops[0].Diff()[i] + tops[1].Diff()[i]
		almostEq(t, bottom.Diff()[i], want, 1e-6, "split gradient")
	}
}

func TestSplitValidation(t *testing.T) {
	l := NewSplit("s")
	if err := l.SetUp([]*blob.Blob{blob.New(2), blob.New(2)}, []*blob.Blob{blob.New()}); err == nil {
		t.Fatal("two bottoms accepted")
	}
	if err := l.SetUp([]*blob.Blob{blob.New(2)}, nil); err == nil {
		t.Fatal("no tops accepted")
	}
}
