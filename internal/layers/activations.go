package layers

import (
	"fmt"
	"math"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
)

// elementwise is the shared machinery of activation layers: the top has the
// bottom's shape, both passes coalesce the (sample, channel) loops and each
// iteration transforms one contiguous plane. These layers are the center of
// the paper's u-shaped scalability curves — tiny granularity, negligible
// total weight.
type elementwise struct {
	base
	// fwd maps an input value to an output value.
	fwd func(x float32) float32
	// bwd maps (input value, output value, output gradient) to the input
	// gradient.
	bwd func(x, y, dy float32) float32

	extent, plane int
	propagateDown bool
}

// CanRunInPlace implements InPlacer: every activation here differentiates
// through its output (or a sign test the output preserves), so top may
// alias bottom.
func (l *elementwise) CanRunInPlace() bool { return true }

// SetPropagateDown implements the optional propagation control.
func (l *elementwise) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *elementwise) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() < 1 {
		return fmt.Errorf("layer %s: scalar bottom not supported", l.name)
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *elementwise) Reshape(bottom, top []*blob.Blob) {
	top[0].ReshapeLike(bottom[0])
	l.extent = planeExtent(bottom[0])
	l.plane = planeSize(bottom[0])
}

// ForwardExtent implements Layer.
func (l *elementwise) ForwardExtent() int { return l.extent }

// ForwardRange implements Layer.
func (l *elementwise) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	in := bottom[0].Data()
	out := top[0].Data()
	for i := lo * l.plane; i < hi*l.plane; i++ {
		out[i] = l.fwd(in[i])
	}
}

// BackwardExtent implements Layer.
func (l *elementwise) BackwardExtent() int {
	if !l.propagateDown {
		return 0
	}
	return l.extent
}

// BackwardRange implements Layer.
func (l *elementwise) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	in := bottom[0].Data()
	out := top[0].Data()
	outDiff := top[0].Diff()
	inDiff := bottom[0].Diff()
	for i := lo * l.plane; i < hi*l.plane; i++ {
		inDiff[i] = l.bwd(in[i], out[i], outDiff[i])
	}
}

// ForwardFine implements FineForwarder: elementwise kernels map perfectly
// to fine-grain threads (the paper's ReLU GPU speedups); we split the flat
// element range.
func (l *elementwise) ForwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	in := bottom[0].Data()
	out := top[0].Data()
	p.For(len(in), func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			out[i] = l.fwd(in[i])
		}
	})
}

// BackwardFine implements FineBackwarder.
func (l *elementwise) BackwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	if !l.propagateDown {
		return
	}
	in := bottom[0].Data()
	out := top[0].Data()
	outDiff := top[0].Diff()
	inDiff := bottom[0].Diff()
	p.For(len(in), func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			inDiff[i] = l.bwd(in[i], out[i], outDiff[i])
		}
	})
}

// NewReLU creates a rectified linear unit layer: y = max(x, 0), with an
// optional leaky negative slope (Caffe negative_slope).
func NewReLU(name string, negativeSlope float32) *elementwise {
	return &elementwise{
		base: base{name: name, typ: "ReLU"},
		fwd: func(x float32) float32 {
			if x > 0 {
				return x
			}
			return negativeSlope * x
		},
		bwd: func(x, _, dy float32) float32 {
			if x > 0 {
				return dy
			}
			return negativeSlope * dy
		},
		propagateDown: true,
	}
}

// NewSigmoid creates a logistic sigmoid layer: y = 1/(1+exp(-x)).
func NewSigmoid(name string) *elementwise {
	return &elementwise{
		base: base{name: name, typ: "Sigmoid"},
		fwd: func(x float32) float32 {
			return float32(1 / (1 + math.Exp(-float64(x))))
		},
		bwd: func(_, y, dy float32) float32 {
			return dy * y * (1 - y)
		},
		propagateDown: true,
	}
}

// NewTanH creates a hyperbolic tangent layer.
func NewTanH(name string) *elementwise {
	return &elementwise{
		base: base{name: name, typ: "TanH"},
		fwd: func(x float32) float32 {
			return float32(math.Tanh(float64(x)))
		},
		bwd: func(_, y, dy float32) float32 {
			return dy * (1 - y*y)
		},
		propagateDown: true,
	}
}
