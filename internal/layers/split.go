package layers

import (
	"fmt"

	"coarsegrain/internal/blob"
)

// Split fans one bottom out to N tops, the layer Caffe inserts wherever a
// blob feeds multiple gradient-producing consumers: bottom-diff contracts
// OVERWRITE (they do not accumulate), so each consumer writes its own top
// copy and Split's backward SUMS the top diffs into the bottom diff.
// Forward copies values; both passes coalesce over (sample, channel)
// planes.
type Split struct {
	base
	extent, plane int
	propagateDown bool
}

// NewSplit creates a split layer.
func NewSplit(name string) *Split {
	return &Split{base: base{name: name, typ: "Split"}, propagateDown: true}
}

// SetPropagateDown implements the optional propagation control.
func (l *Split) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *Split) SetUp(bottom, top []*blob.Blob) error {
	if len(bottom) != 1 {
		return fmt.Errorf("layer %s: split needs 1 bottom, got %d", l.name, len(bottom))
	}
	if len(top) < 1 {
		return fmt.Errorf("layer %s: split needs >= 1 top", l.name)
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Split) Reshape(bottom, top []*blob.Blob) {
	for _, t := range top {
		t.ReshapeLike(bottom[0])
	}
	l.extent = planeExtent(bottom[0])
	l.plane = planeSize(bottom[0])
}

// ForwardExtent implements Layer.
func (l *Split) ForwardExtent() int { return l.extent }

// ForwardRange implements Layer.
func (l *Split) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	src := bottom[0].Data()[lo*l.plane : hi*l.plane]
	for _, t := range top {
		copy(t.Data()[lo*l.plane:hi*l.plane], src)
	}
}

// BackwardExtent implements Layer.
func (l *Split) BackwardExtent() int {
	if !l.propagateDown {
		return 0
	}
	return l.extent
}

// BackwardRange implements Layer: bottom diff = Σ top diffs.
func (l *Split) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	dst := bottom[0].Diff()
	start, end := lo*l.plane, hi*l.plane
	copy(dst[start:end], top[0].Diff()[start:end])
	for _, t := range top[1:] {
		td := t.Diff()
		for i := start; i < end; i++ {
			dst[i] += td[i]
		}
	}
}
