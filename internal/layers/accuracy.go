package layers

import (
	"fmt"

	"coarsegrain/internal/blob"
)

// Accuracy computes top-K classification accuracy. Bottom 0 carries scores
// (S x C), bottom 1 labels (S); the top is a 1-element blob with the
// fraction of samples whose true label is among the K highest scores.
// Accuracy has no backward pass.
type Accuracy struct {
	base
	topK         int
	num, classes int
	correct      []float32
}

// NewAccuracy creates an accuracy layer (topK defaults to 1 when < 1).
func NewAccuracy(name string, topK int) *Accuracy {
	if topK < 1 {
		topK = 1
	}
	return &Accuracy{base: base{name: name, typ: "Accuracy"}, topK: topK}
}

// SetUp implements Layer.
func (l *Accuracy) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 2, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() < 2 {
		return fmt.Errorf("layer %s: scores need >= 2 axes, got %v", l.name, bottom[0].Shape())
	}
	if bottom[1].Dim(0) != bottom[0].Dim(0) {
		return fmt.Errorf("layer %s: label batch %d != score batch %d", l.name, bottom[1].Dim(0), bottom[0].Dim(0))
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Accuracy) Reshape(bottom, top []*blob.Blob) {
	l.num = bottom[0].Dim(0)
	l.classes = bottom[0].CountFrom(1)
	if cap(l.correct) < l.num {
		l.correct = make([]float32, l.num)
	}
	l.correct = l.correct[:l.num]
	top[0].Reshape(1)
}

// ForwardExtent implements Layer.
func (l *Accuracy) ForwardExtent() int { return l.num }

// ForwardRange implements Layer.
func (l *Accuracy) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	labels := bottom[1].Data()
	for s := lo; s < hi; s++ {
		scores := bottom[0].Data()[s*l.classes : (s+1)*l.classes]
		lab := int(labels[s])
		if lab < 0 || lab >= l.classes {
			panic(fmt.Sprintf("layer %s: label %d out of range [0,%d)", l.name, lab, l.classes))
		}
		// The label is in the top K iff fewer than K classes score
		// strictly higher than it.
		higher := 0
		for c, v := range scores {
			if v > scores[lab] || (v == scores[lab] && c < lab) {
				higher++
			}
		}
		if higher < l.topK {
			l.correct[s] = 1
		} else {
			l.correct[s] = 0
		}
	}
}

// ForwardFinish implements ForwardFinisher.
func (l *Accuracy) ForwardFinish(bottom, top []*blob.Blob) {
	var sum float32
	for _, v := range l.correct {
		sum += v
	}
	top[0].Data()[0] = sum / float32(l.num)
}

// BackwardExtent implements Layer: accuracy has no gradient.
func (l *Accuracy) BackwardExtent() int { return 0 }

// BackwardRange implements Layer (never called: extent is 0).
func (l *Accuracy) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {}
