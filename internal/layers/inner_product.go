package layers

import (
	"fmt"

	"coarsegrain/internal/blas"
	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
)

// IPConfig configures an InnerProduct (fully connected) layer.
type IPConfig struct {
	NumOutput    int
	NoBias       bool
	WeightFiller Filler
	BiasFiller   Filler
	RNG          *rng.RNG
}

func (c *IPConfig) normalize() error {
	if c.NumOutput <= 0 {
		return fmt.Errorf("inner product: NumOutput must be positive, got %d", c.NumOutput)
	}
	if c.WeightFiller == nil {
		c.WeightFiller = XavierFiller{}
	}
	if c.BiasFiller == nil {
		c.BiasFiller = ConstantFiller{}
	}
	if c.RNG == nil {
		c.RNG = rng.New(1, 2)
	}
	return nil
}

// InnerProduct is a fully connected layer: top[s] = W * bottom[s] + b,
// treating everything after the batch axis as a flat feature vector.
//
// This is the literal f(x, W, b) = W*x + b transformation of §2.1.2: the
// coarse path coalesces over samples and issues one GEMV per sample (the
// "BLAS call per data segment" of Algorithm 2); the fine path instead
// performs the whole batch as a single GEMM with its rows split across
// workers (BLAS-level parallelism, §3.1.1).
type InnerProduct struct {
	base
	cfg IPConfig

	num, k        int // batch size, input features
	propagateDown bool
}

// NewInnerProduct creates a fully connected layer.
func NewInnerProduct(name string, cfg IPConfig) (*InnerProduct, error) {
	if err := cfg.normalize(); err != nil {
		return nil, fmt.Errorf("layer %s: %w", name, err)
	}
	return &InnerProduct{base: base{name: name, typ: "InnerProduct"}, cfg: cfg, propagateDown: true}, nil
}

// SetPropagateDown implements the optional propagation control.
func (l *InnerProduct) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *InnerProduct) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() < 2 {
		return fmt.Errorf("layer %s: inner product needs at least 2 axes, got %v", l.name, bottom[0].Shape())
	}
	k := bottom[0].CountFrom(1)
	w := blob.Named(l.name+"_w", l.cfg.NumOutput, k)
	l.cfg.WeightFiller.Fill(w, l.cfg.RNG)
	l.params = []*blob.Blob{w}
	if !l.cfg.NoBias {
		b := blob.Named(l.name+"_b", l.cfg.NumOutput)
		l.cfg.BiasFiller.Fill(b, l.cfg.RNG)
		l.params = append(l.params, b)
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *InnerProduct) Reshape(bottom, top []*blob.Blob) {
	l.num = bottom[0].Dim(0)
	l.k = bottom[0].CountFrom(1)
	if l.k != l.params[0].Dim(1) {
		panic(fmt.Sprintf("layer %s: input feature count changed from %d to %d", l.name, l.params[0].Dim(1), l.k))
	}
	top[0].Reshape(l.num, l.cfg.NumOutput)
}

// ForwardExtent implements Layer: the coalesced loop is over samples.
func (l *InnerProduct) ForwardExtent() int { return l.num }

// ForwardRange implements Layer: the whole sample band is one GEMM,
// Top[lo:hi] (B x N) = X[lo:hi] (B x K) * W^T, which runs on the blocked
// packed kernel instead of a GEMV per sample. The kernel's band-
// invariance contract (gemm_blocked.go) keeps the coarse engine's
// forward bit-identical to sequential for every worker count even though
// worker bands cut the batch at arbitrary rows.
func (l *InnerProduct) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	n := l.cfg.NumOutput
	w := l.params[0].Data()
	gs := blas.GetScratch()
	defer blas.PutScratch(gs)
	blas.GemmWithScratch(gs, blas.NoTrans, blas.Trans, hi-lo, n, l.k, 1,
		bottom[0].Data()[lo*l.k:hi*l.k], l.k, w, l.k, 0, top[0].Data()[lo*n:hi*n], n)
	if !l.cfg.NoBias {
		bias := l.params[1].Data()
		for s := lo; s < hi; s++ {
			blas.Axpy(1, bias, top[0].Data()[s*n:(s+1)*n])
		}
	}
}

// BackwardExtent implements Layer.
func (l *InnerProduct) BackwardExtent() int { return l.num }

// BackwardRange implements Layer, as two band GEMMs plus a bias sum:
//
//	dW += dY[lo:hi]^T X[lo:hi]   (N x K, accumulated into paramGrads)
//	dX[lo:hi] = dY[lo:hi] W      (per-sample rows, disjoint across bands)
//	db += sum_s dy_s
//
// dX rows are computed independently, so bottom diffs stay bit-identical
// for any worker count. dW sums the band's samples inside one GEMM (K
// blocking over samples) rather than as per-sample rank-1 updates; with
// the coarse engine's privatized gradients and ordered merge this remains
// bit-deterministic at a fixed worker count, and within float-summation
// tolerance of sequential across worker counts — the same contract the
// ordered reduction already provides.
func (l *InnerProduct) BackwardRange(lo, hi int, bottom, top []*blob.Blob, paramGrads []*blob.Blob) {
	n := l.cfg.NumOutput
	w := l.params[0].Data()
	x := bottom[0].Data()
	dy := top[0].Diff()
	gs := blas.GetScratch()
	defer blas.PutScratch(gs)
	blas.GemmWithScratch(gs, blas.Trans, blas.NoTrans, n, l.k, hi-lo, 1,
		dy[lo*n:hi*n], n, x[lo*l.k:hi*l.k], l.k, 1, paramGrads[0].Diff(), l.k)
	if !l.cfg.NoBias {
		bGrad := paramGrads[1].Diff()
		for s := lo; s < hi; s++ {
			blas.Axpy(1, dy[s*n:(s+1)*n], bGrad)
		}
	}
	if l.propagateDown {
		blas.GemmWithScratch(gs, blas.NoTrans, blas.NoTrans, hi-lo, l.k, n, 1,
			dy[lo*n:hi*n], n, w, l.k, 0, bottom[0].Diff()[lo*l.k:hi*l.k], l.k)
	}
}

// ForwardFine implements FineForwarder: the whole batch as one GEMM,
// Top (S x N) = Bottom (S x K) * W^T (K x N), rows split across workers.
func (l *InnerProduct) ForwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	n := l.cfg.NumOutput
	blas.GemmParallel(p, blas.NoTrans, blas.Trans, l.num, n, l.k, 1,
		bottom[0].Data(), l.k, l.params[0].Data(), l.k, 0, top[0].Data(), n)
	if !l.cfg.NoBias {
		bias := l.params[1].Data()
		p.For(l.num, func(lo, hi, _ int) {
			for s := lo; s < hi; s++ {
				blas.Axpy(1, bias, top[0].Data()[s*n:(s+1)*n])
			}
		})
	}
}

// BackwardFine implements FineBackwarder: dW = dY^T X as one GEMM with
// weight rows split across workers; dX = dY W likewise; db summed serially
// (it is N elements — negligible).
func (l *InnerProduct) BackwardFine(p *par.Pool, bottom, top []*blob.Blob) {
	n := l.cfg.NumOutput
	// dW (N x K) += dY^T (N x S) * X (S x K).
	blas.GemmParallel(p, blas.Trans, blas.NoTrans, n, l.k, l.num, 1,
		top[0].Diff(), n, bottom[0].Data(), l.k, 1, l.params[0].Diff(), l.k)
	if !l.cfg.NoBias {
		bGrad := l.params[1].Diff()
		dy := top[0].Diff()
		for s := 0; s < l.num; s++ {
			blas.Axpy(1, dy[s*n:(s+1)*n], bGrad)
		}
	}
	if l.propagateDown {
		// dX (S x K) = dY (S x N) * W (N x K).
		blas.GemmParallel(p, blas.NoTrans, blas.NoTrans, l.num, l.k, n, 1,
			top[0].Diff(), n, l.params[0].Data(), l.k, 0, bottom[0].Diff(), l.k)
	}
}

// ForwardFLOPs implements Coster: one S x K x N GEMM (2 FLOPs per MAC)
// plus the bias adds.
func (l *InnerProduct) ForwardFLOPs() int64 {
	flops := 2 * int64(l.num) * int64(l.k) * int64(l.cfg.NumOutput)
	if !l.cfg.NoBias {
		flops += int64(l.num) * int64(l.cfg.NumOutput)
	}
	return flops
}

// BackwardFLOPs implements Coster: the dW GEMM always runs; the dX GEMM
// only when gradients propagate down; the bias gradient is a column sum.
func (l *InnerProduct) BackwardFLOPs() int64 {
	gemm := 2 * int64(l.num) * int64(l.k) * int64(l.cfg.NumOutput)
	flops := gemm
	if l.propagateDown {
		flops += gemm
	}
	if !l.cfg.NoBias {
		flops += int64(l.num) * int64(l.cfg.NumOutput)
	}
	return flops
}
