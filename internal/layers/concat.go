package layers

import (
	"fmt"

	"coarsegrain/internal/blob"
)

// Concat concatenates N bottoms along the channel axis (axis 1), the
// inception-style branch merge. All bottoms must agree on every other
// dimension. Both passes coalesce over samples: each sample's output
// segment is assembled from the corresponding segments of every bottom.
type Concat struct {
	base
	num       int
	chunks    []int // per-bottom elements per sample (CountFrom(1))
	total     int   // sum of chunks
	propagate []bool
}

// NewConcat creates a channel concatenation layer.
func NewConcat(name string) *Concat {
	return &Concat{base: base{name: name, typ: "Concat"}}
}

// SetPropagateDown implements the optional propagation control.
func (l *Concat) SetPropagateDown(flags []bool) {
	l.propagate = append(l.propagate[:0], flags...)
}

func (l *Concat) propagateTo(i int) bool {
	return i >= len(l.propagate) || l.propagate[i]
}

// SetUp implements Layer.
func (l *Concat) SetUp(bottom, top []*blob.Blob) error {
	if len(bottom) < 1 {
		return fmt.Errorf("layer %s: concat needs >= 1 bottom", l.name)
	}
	if len(top) != 1 {
		return fmt.Errorf("layer %s: concat needs 1 top, got %d", l.name, len(top))
	}
	first := bottom[0]
	if first.AxisCount() < 2 {
		return fmt.Errorf("layer %s: concat needs >= 2 axes, got %v", l.name, first.Shape())
	}
	for i, b := range bottom[1:] {
		if b.AxisCount() != first.AxisCount() || b.Dim(0) != first.Dim(0) || b.CountFrom(2) != first.CountFrom(2) {
			return fmt.Errorf("layer %s: bottom %d shape %v incompatible with %v",
				l.name, i+1, b.Shape(), first.Shape())
		}
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Concat) Reshape(bottom, top []*blob.Blob) {
	l.num = bottom[0].Dim(0)
	l.chunks = l.chunks[:0]
	l.total = 0
	channels := 0
	for _, b := range bottom {
		c := b.CountFrom(1)
		l.chunks = append(l.chunks, c)
		l.total += c
		channels += b.Dim(1)
	}
	shape := append([]int{l.num, channels}, bottom[0].Shape()[2:]...)
	top[0].Reshape(shape...)
}

// ForwardExtent implements Layer.
func (l *Concat) ForwardExtent() int { return l.num }

// ForwardRange implements Layer.
func (l *Concat) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	out := top[0].Data()
	for s := lo; s < hi; s++ {
		off := s * l.total
		for bi, b := range bottom {
			c := l.chunks[bi]
			copy(out[off:off+c], b.Data()[s*c:(s+1)*c])
			off += c
		}
	}
}

// BackwardExtent implements Layer.
func (l *Concat) BackwardExtent() int { return l.num }

// BackwardRange implements Layer.
func (l *Concat) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	outDiff := top[0].Diff()
	for s := lo; s < hi; s++ {
		off := s * l.total
		for bi, b := range bottom {
			c := l.chunks[bi]
			if l.propagateTo(bi) {
				copy(b.Diff()[s*c:(s+1)*c], outDiff[off:off+c])
			}
			off += c
		}
	}
}

// Flatten reshapes (S, d1, d2, ...) into (S, d1*d2*...), preserving
// values. It is a pure copy layer (this implementation does not alias
// buffers), coalesced over samples.
type Flatten struct {
	base
	num, dim      int
	propagateDown bool
}

// NewFlatten creates a flatten layer.
func NewFlatten(name string) *Flatten {
	return &Flatten{base: base{name: name, typ: "Flatten"}, propagateDown: true}
}

// SetPropagateDown implements the optional propagation control.
func (l *Flatten) SetPropagateDown(flags []bool) {
	if len(flags) > 0 {
		l.propagateDown = flags[0]
	}
}

// SetUp implements Layer.
func (l *Flatten) SetUp(bottom, top []*blob.Blob) error {
	if err := checkBottomTop(l, bottom, top, 1, 1); err != nil {
		return err
	}
	if bottom[0].AxisCount() < 1 {
		return fmt.Errorf("layer %s: flatten needs at least 1 axis", l.name)
	}
	l.Reshape(bottom, top)
	return nil
}

// Reshape implements Layer.
func (l *Flatten) Reshape(bottom, top []*blob.Blob) {
	l.num = bottom[0].Dim(0)
	l.dim = bottom[0].CountFrom(1)
	top[0].Reshape(l.num, l.dim)
}

// ForwardExtent implements Layer.
func (l *Flatten) ForwardExtent() int { return l.num }

// ForwardRange implements Layer.
func (l *Flatten) ForwardRange(lo, hi int, bottom, top []*blob.Blob) {
	copy(top[0].Data()[lo*l.dim:hi*l.dim], bottom[0].Data()[lo*l.dim:hi*l.dim])
}

// BackwardExtent implements Layer.
func (l *Flatten) BackwardExtent() int {
	if !l.propagateDown {
		return 0
	}
	return l.num
}

// BackwardRange implements Layer.
func (l *Flatten) BackwardRange(lo, hi int, bottom, top []*blob.Blob, _ []*blob.Blob) {
	copy(bottom[0].Diff()[lo*l.dim:hi*l.dim], top[0].Diff()[lo*l.dim:hi*l.dim])
}
