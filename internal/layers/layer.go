// Package layers implements the Caffe-style layer catalogue used by the two
// benchmark networks of the paper (LeNet/MNIST and CIFAR-10-full):
// Convolution, Pooling (MAX/AVE), InnerProduct, ReLU, Sigmoid, TanH, LRN,
// Dropout, Softmax, SoftmaxWithLoss, EuclideanLoss, Accuracy and Data.
//
// # The parallelization contract
//
// Every layer exposes its forward and backward loop nests in the coalesced
// form of the paper's Algorithms 4 and 5: a single counted iteration space
// (ForwardExtent/BackwardExtent) plus a range body (ForwardRange/
// BackwardRange) that processes the contiguous sub-range [lo, hi). The
// execution engines (package core) decide how ranges are scheduled:
//
//   - sequential: one call covering [0, extent);
//   - coarse-grain (the paper's contribution): static chunks across a
//     worker pool, with parameter gradients privatized per worker and
//     merged by an ordered reduction;
//   - fine-grain: layers that additionally implement FineForwarder /
//     FineBackwarder parallelize *inside* the BLAS calls instead (the
//     plain-GPU analogue), and TunedForwarder/TunedBackwarder provides the
//     im2col+GEMM convolution path (the cuDNN analogue).
//
// Race-freedom is by construction, and part of the interface contract:
// distinct coalesced ranges of the same layer must touch disjoint regions of
// the top blobs (forward) and of the bottom diff blobs (backward). Each
// layer chooses how many loops it coalesces (the paper: "the number of
// coalesced loops is layer dependent") precisely so that this holds.
//
// Work that is inherently sequential — loading a data batch, summing
// per-sample losses — lives in the optional ForwardPreparer /
// ForwardFinisher hooks, which engines run serially around the parallel
// region. Per-sample results are always stored by sample index, so the
// serial finish step is deterministic for any worker count.
package layers

import (
	"fmt"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
)

// Layer is the unit of network computation. Implementations must be safe
// for concurrent ForwardRange (resp. BackwardRange) calls on disjoint
// ranges after SetUp/Reshape.
type Layer interface {
	// Name returns the layer instance name ("conv1").
	Name() string
	// Type returns the layer type name ("Convolution").
	Type() string
	// SetUp validates bottom shapes, allocates parameters and shapes the
	// top blobs. Called once when the net is built.
	SetUp(bottom, top []*blob.Blob) error
	// Reshape re-derives top shapes from (possibly changed) bottom shapes.
	// Must be cheap when nothing changed.
	Reshape(bottom, top []*blob.Blob)
	// Params returns the learnable parameter blobs (possibly empty).
	Params() []*blob.Blob

	// ForwardExtent returns the number of coalesced forward iterations for
	// the current shapes. An extent of 0 means all forward work happens in
	// the ForwardPrepare/ForwardFinish hooks (e.g. the Data layer, which
	// the paper observes executes sequentially).
	ForwardExtent() int
	// ForwardRange computes the coalesced iterations [lo, hi). Writes to
	// top blobs for distinct ranges must be disjoint.
	ForwardRange(lo, hi int, bottom, top []*blob.Blob)

	// BackwardExtent returns the number of coalesced backward iterations.
	// 0 means the layer has no backward pass (Data, Accuracy).
	BackwardExtent() int
	// BackwardRange computes gradient iterations [lo, hi). Gradients with
	// respect to parameters are ACCUMULATED (+=) into paramGrads, which
	// has the same shapes as Params() — the engine passes either the
	// parameters themselves (sequential) or per-worker private blobs
	// (coarse-grain, Algorithm 5's privatization). Gradients with respect
	// to bottoms are written to the bottom blobs' Diff; writes for
	// distinct ranges must be disjoint.
	BackwardRange(lo, hi int, bottom, top []*blob.Blob, paramGrads []*blob.Blob)
}

// ForwardPreparer is implemented by layers that need a serial step before
// the parallel forward region (batch loading, dropout mask generation).
type ForwardPreparer interface {
	ForwardPrepare(bottom, top []*blob.Blob)
}

// ForwardFinisher is implemented by layers that need a serial step after
// the parallel forward region (summing per-sample losses/accuracies).
type ForwardFinisher interface {
	ForwardFinish(bottom, top []*blob.Blob)
}

// InPlacer is implemented by layers that can run with top == bottom (the
// same blob), Caffe's in-place mode for activations and dropout: the
// forward overwrites its input and the backward overwrites the shared
// diff. A layer may only claim this when its backward never needs the
// pre-activation input (ReLU's sign test works on the output; Sigmoid and
// TanH differentiate through the output alone).
type InPlacer interface {
	CanRunInPlace() bool
}

// BackwardPreparer is implemented by layers that need a serial step before
// the parallel backward region. The canonical user is BatchNorm, whose
// input gradient depends on whole-batch reductions of the top gradient:
// the reductions run here (deterministically, in sample order), then the
// parallel range computes per-sample gradients from them.
type BackwardPreparer interface {
	BackwardPrepare(bottom, top []*blob.Blob)
}

// BackwardFinisher is implemented by layers that need a serial step after
// the parallel backward region.
type BackwardFinisher interface {
	BackwardFinish(bottom, top []*blob.Blob)
}

// FineForwarder is the fine-grain (BLAS-level) forward implementation,
// the analogue of a layer's plain-GPU kernel: parallelism lives inside the
// linear-algebra calls rather than across batch samples.
type FineForwarder interface {
	ForwardFine(p *par.Pool, bottom, top []*blob.Blob)
}

// FineBackwarder is the fine-grain backward implementation. Parameter
// gradients are accumulated directly into Params() diffs (no privatization
// is needed: the BLAS-level split keeps writes disjoint).
type FineBackwarder interface {
	BackwardFine(p *par.Pool, bottom, top []*blob.Blob)
}

// TunedForwarder is the "industrial" optimized forward path, the cuDNN
// analogue: a restructured algorithm (e.g. im2col+GEMM convolution), not
// just a parallelized loop nest.
type TunedForwarder interface {
	ForwardTuned(p *par.Pool, bottom, top []*blob.Blob)
}

// TunedBackwarder is the optimized backward path (cuDNN analogue).
type TunedBackwarder interface {
	BackwardTuned(p *par.Pool, bottom, top []*blob.Blob)
}

// Coster is implemented by layers that can state the arithmetic cost of
// one full pass over the current shapes. The tracer attaches these
// counters to the per-layer spans, which turns a trace into achieved-
// GFLOP/s numbers without any external roofline bookkeeping. Costs are
// nominal multiply-add counts (2 FLOPs per MAC), not instruction counts.
type Coster interface {
	// ForwardFLOPs is the cost of Forward over the whole extent.
	ForwardFLOPs() int64
	// BackwardFLOPs is the cost of Backward over the whole extent, for
	// the current propagate-down setting.
	BackwardFLOPs() int64
}

// LossWeighter is implemented by loss layers; the net multiplies the
// layer's top scalar by this weight when accumulating the iteration loss.
type LossWeighter interface {
	LossWeight() float32
}

// base carries the boilerplate shared by all layers.
type base struct {
	name   string
	typ    string
	params []*blob.Blob
}

func (b *base) Name() string         { return b.name }
func (b *base) Type() string         { return b.typ }
func (b *base) Params() []*blob.Blob { return b.params }

// checkBottomTop validates arity; every SetUp starts with it.
func checkBottomTop(l Layer, bottom, top []*blob.Blob, nBottom, nTop int) error {
	if len(bottom) != nBottom {
		return fmt.Errorf("layer %s (%s): want %d bottom blobs, got %d", l.Name(), l.Type(), nBottom, len(bottom))
	}
	if len(top) != nTop {
		return fmt.Errorf("layer %s (%s): want %d top blobs, got %d", l.Name(), l.Type(), nTop, len(top))
	}
	return nil
}

// planeExtent returns the coalesced extent used by elementwise and
// per-plane layers: the product of the two outermost dimensions (batch and
// channels) when the blob is at least 2-D, else the batch dimension. Each
// coalesced iteration then covers one contiguous plane of CountFrom(2)
// elements, which keeps the static-schedule work unit small (the paper's
// motivation for coalescing, §3.2.1) while preserving contiguous access.
func planeExtent(b *blob.Blob) int {
	switch b.AxisCount() {
	case 0:
		return 0
	case 1:
		return b.Dim(0)
	default:
		return b.Dim(0) * b.Dim(1)
	}
}

// planeSize returns the element count of one planeExtent iteration.
func planeSize(b *blob.Blob) int {
	if b.AxisCount() <= 1 {
		return 1
	}
	return b.CountFrom(2)
}
