package prototxt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coarsegrain/internal/data"
	"coarsegrain/internal/net"
	"coarsegrain/internal/solver"
)

func TestParseScalarsAndBlocks(t *testing.T) {
	doc, err := Parse(`
name: "LeNet"   # a comment
count: 42
rate: 0.5
flag: true
block {
  inner: "x"
  inner2 { deep: 3 }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.String("name", "") != "LeNet" {
		t.Fatalf("name = %q", doc.String("name", ""))
	}
	if v, _ := doc.Int("count", 0); v != 42 {
		t.Fatalf("count = %d", v)
	}
	if v, _ := doc.Float("rate", 0); v != 0.5 {
		t.Fatalf("rate = %v", v)
	}
	fv, _ := doc.Get("flag")
	if b, err := fv.Bool(); err != nil || !b {
		t.Fatal("flag not parsed")
	}
	blk := doc.Msg("block")
	if blk == nil || blk.String("inner", "") != "x" {
		t.Fatal("block not parsed")
	}
	if d, _ := blk.Msg("inner2").Int("deep", 0); d != 3 {
		t.Fatal("nested block not parsed")
	}
}

func TestParseRepeatedFields(t *testing.T) {
	doc, err := Parse(`
bottom: "a"
bottom: "b"
layer { name: "l1" }
layer { name: "l2" }
`)
	if err != nil {
		t.Fatal(err)
	}
	bs := doc.All("bottom")
	if len(bs) != 2 || bs[0].Scalar != "a" || bs[1].Scalar != "b" {
		t.Fatalf("bottoms %v", bs)
	}
	if ls := doc.All("layer"); len(ls) != 2 {
		t.Fatalf("layers %d", len(ls))
	}
}

func TestParseColonBeforeBlock(t *testing.T) {
	doc, err := Parse(`param: { value: 1 }`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Msg("param") == nil {
		t.Fatal("colon-block not parsed")
	}
}

func TestParseNegativeAndExponent(t *testing.T) {
	doc, err := Parse(`a: -0.5 b: 5e-05`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Float("a", 0); v != -0.5 {
		t.Fatalf("a = %v", v)
	}
	if v, _ := doc.Float("b", 0); v != 5e-05 {
		t.Fatalf("b = %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`name "x"`,       // missing colon
		`block { name: `, // truncated
		`name: "unterm`,  // unterminated string
		`}`,              // stray brace... actually parsed as terminator
		`: "x"`,          // missing field name
		`a: !`,           // bad character
	} {
		if _, err := Parse(src); err == nil && src != `}` {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestValueErrors(t *testing.T) {
	v := Value{Scalar: "abc"}
	if _, err := v.Float(); err == nil {
		t.Fatal("non-number accepted")
	}
	if _, err := v.Bool(); err == nil {
		t.Fatal("non-bool accepted")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `name: "N"
layer {
  name: "l1"
  type: "ReLU"
}
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := doc.Render("")
	doc2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered output: %v\n%s", err, rendered)
	}
	if doc2.String("name", "") != "N" || doc2.Msg("layer").String("type", "") != "ReLU" {
		t.Fatalf("round trip lost data:\n%s", rendered)
	}
}

func TestBuildNetFromLeNetConfig(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "configs", "lenet.prototxt"))
	if err != nil {
		t.Fatal(err)
	}
	src := data.NewSyntheticMNIST(128, 1)
	specs, err := ParseNet(string(raw), BuildOptions{Source: src, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 9 {
		t.Fatalf("LeNet prototxt produced %d layers", len(specs))
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Blob("conv1").Shape(); got[1] != 20 || got[2] != 24 {
		t.Fatalf("conv1 shape %v", got)
	}
	if loss := n.ForwardBackward(); loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
}

func TestBuildNetFromCIFARConfig(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "configs", "cifar10_full.prototxt"))
	if err != nil {
		t.Fatal(err)
	}
	src := data.NewSyntheticCIFAR(32, 1)
	specs, err := ParseNet(string(raw), BuildOptions{Source: src, Seed: 1, BatchOverride: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 14 {
		t.Fatalf("CIFAR prototxt produced %d layers", len(specs))
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Blob("data").Shape(); got[0] != 8 {
		t.Fatalf("batch override ignored: %v", got)
	}
	if got := n.Blob("norm1").Shape(); got[1] != 32 || got[2] != 16 {
		t.Fatalf("norm1 shape %v", got)
	}
	if loss := n.Forward(); loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
}

func TestBuildSolverFromConfigs(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "configs", "lenet_solver.prototxt"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseSolver(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Type != solver.SGD || cfg.BaseLR != 0.01 || cfg.Momentum != 0.9 ||
		cfg.LRPolicy != "inv" || cfg.Power != 0.75 {
		t.Fatalf("lenet solver parsed wrong: %+v", cfg)
	}
	raw2, err := os.ReadFile(filepath.Join("..", "..", "configs", "cifar10_full_solver.prototxt"))
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := ParseSolver(string(raw2))
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.BaseLR != 0.001 || cfg2.LRPolicy != "fixed" || cfg2.WeightDecay != 0.004 {
		t.Fatalf("cifar solver parsed wrong: %+v", cfg2)
	}
}

func TestBuildNetErrors(t *testing.T) {
	src := data.NewSyntheticMNIST(16, 1)
	cases := []string{
		``,                                 // no layers
		`layer { type: "ReLU" }`,           // missing name
		`layer { name: "x" }`,              // missing type
		`layer { name: "x" type: "Warp" }`, // unknown type
		`layer { name: "d" type: "Data" top: "data" top: "label" }`, // handled below with nil source
	}
	for i, c := range cases {
		opt := BuildOptions{Source: src}
		if i == len(cases)-1 {
			opt.Source = nil
		}
		if _, err := ParseNet(c, opt); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestBuildAllLayerTypes(t *testing.T) {
	// One prototxt exercising every supported type.
	src := data.NewSyntheticMNIST(32, 1)
	text := `
layer { name: "d" type: "Data" top: "data" top: "label" data_param { batch_size: 4 } }
layer { name: "c" type: "Convolution" bottom: "data" top: "c"
  convolution_param { num_output: 2 kernel_size: 5 stride: 2 weight_filler { type: "xavier" } } }
layer { name: "p" type: "Pooling" bottom: "c" top: "p" pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layer { name: "n" type: "LRN" bottom: "p" top: "n" lrn_param { local_size: 3 alpha: 0.0001 beta: 0.75 } }
layer { name: "r" type: "ReLU" bottom: "n" top: "r" relu_param { negative_slope: 0.01 } }
layer { name: "s" type: "Sigmoid" bottom: "r" top: "s" }
layer { name: "th" type: "TanH" bottom: "s" top: "th" }
layer { name: "dr" type: "Dropout" bottom: "th" top: "dr" dropout_param { dropout_ratio: 0.2 } }
layer { name: "sp" type: "Split" bottom: "dr" top: "dr1" top: "dr2" top: "dr3" }
layer { name: "ip" type: "InnerProduct" bottom: "dr1" top: "ip" inner_product_param { num_output: 10 } }
layer { name: "ipb" type: "InnerProduct" bottom: "dr2" top: "ipb" inner_product_param { num_output: 10 } }
layer { name: "elt" type: "Eltwise" bottom: "ip" bottom: "ipb" top: "elt" eltwise_param { operation: SUM coeff: 0.5 coeff: 0.5 } }
layer { name: "fl" type: "Flatten" bottom: "elt" top: "fl" }
layer { name: "cc" type: "Concat" bottom: "fl" top: "cc" }
layer { name: "sm" type: "Softmax" bottom: "dr3" top: "sm" }
layer { name: "acc" type: "Accuracy" bottom: "cc" bottom: "label" top: "acc" accuracy_param { top_k: 2 } }
layer { name: "loss" type: "SoftmaxWithLoss" bottom: "cc" bottom: "label" top: "loss" }
`
	specs, err := ParseNet(text, BuildOptions{Source: src, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loss := n.ForwardBackward(); loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
}

func TestLegacyLayersKeyword(t *testing.T) {
	src := data.NewSyntheticMNIST(16, 1)
	text := `
layers { name: "d" type: "DATA" top: "data" top: "label" data_param { batch_size: 2 } }
layers { name: "r" type: "RELU" bottom: "data" top: "r" }
`
	specs, err := ParseNet(text, BuildOptions{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("legacy layers produced %d specs", len(specs))
	}
}

func TestRenderQuoting(t *testing.T) {
	doc, _ := Parse(`a: "hello world"`)
	out := doc.Render("")
	if !strings.Contains(out, `"hello world"`) {
		t.Fatalf("rendered %q", out)
	}
}

func TestTransformParamOnDataLayer(t *testing.T) {
	src := data.NewSyntheticCIFAR(32, 1)
	text := `
layer {
  name: "d" type: "Data" top: "data" top: "label"
  data_param { batch_size: 4 }
  transform_param { scale: 2.0 crop_size: 28 mirror: true mean_value: 0.5 mean_value: 0.5 mean_value: 0.5 }
}
layer { name: "r" type: "ReLU" bottom: "data" top: "r" }
`
	specs, err := ParseNet(text, BuildOptions{Source: src, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Crop applied: 28x28 instead of 32x32.
	if s := n.Blob("data").Shape(); s[2] != 28 || s[3] != 28 {
		t.Fatalf("transform crop not applied: %v", s)
	}
	n.Forward()
	// Values scaled by 2 after subtracting 0.5: range [-1, 1].
	for _, v := range n.Blob("data").Data() {
		if v < -1.001 || v > 1.001 {
			t.Fatalf("transform value %v out of range", v)
		}
	}
}

func TestTransformParamErrors(t *testing.T) {
	src := data.NewSyntheticCIFAR(8, 1)
	text := `
layer { name: "d" type: "Data" top: "data" top: "label"
  transform_param { crop_size: 99 } }
`
	if _, err := ParseNet(text, BuildOptions{Source: src}); err == nil {
		t.Fatal("oversized crop accepted")
	}
}

func TestDeconvolutionFromPrototxt(t *testing.T) {
	src := data.NewSyntheticMNIST(16, 1)
	text := `
layer { name: "d" type: "Data" top: "data" top: "label" data_param { batch_size: 2 } }
layer { name: "c" type: "Convolution" bottom: "data" top: "c"
  convolution_param { num_output: 2 kernel_size: 5 stride: 2 weight_filler { type: "xavier" } } }
layer { name: "up" type: "Deconvolution" bottom: "c" top: "up"
  convolution_param { num_output: 1 kernel_size: 4 stride: 2 pad: 1 weight_filler { type: "xavier" } } }
`
	specs, err := ParseNet(text, BuildOptions{Source: src, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// conv: 28 -> 12; deconv k4/s2/p1: (12-1)*2 - 2 + 4 = 24.
	if s := n.Blob("up").Shape(); s[2] != 24 || s[3] != 24 {
		t.Fatalf("deconv shape %v", s)
	}
	n.ZeroParamDiffs()
	if loss := n.Forward(); loss != 0 {
		// No loss layer: Forward returns 0; just ensure it runs.
		t.Fatalf("unexpected loss %v", loss)
	}
}
