// Package prototxt parses the protobuf text format Caffe uses for network
// and solver definitions (§2.1: "Caffe allows a user to specify the
// network structure in a prototext format") and builds networks and solver
// configurations from it.
//
// The supported grammar is the subset the benchmark networks need:
//
//	message := (field)*
//	field   := ident ':' scalar | ident '{' message '}' | ident ':' '{' message '}'
//	scalar  := string | number | bool | ident
//
// Repeated fields (e.g. multiple `layer { ... }` blocks, multiple
// `bottom:` entries) accumulate in order. '#' starts a comment.
package prototxt

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Value is one field value: a scalar or a nested message.
type Value struct {
	// Scalar holds the raw token for scalar values ("" for messages).
	Scalar string
	// Msg holds the nested message for block values (nil for scalars).
	Msg *Message
}

// Float interprets the scalar as a number.
func (v Value) Float() (float64, error) {
	f, err := strconv.ParseFloat(v.Scalar, 64)
	if err != nil {
		return 0, fmt.Errorf("prototxt: %q is not a number", v.Scalar)
	}
	return f, nil
}

// Int interprets the scalar as an integer.
func (v Value) Int() (int, error) {
	f, err := v.Float()
	if err != nil {
		return 0, err
	}
	return int(f), nil
}

// Bool interprets the scalar as a boolean.
func (v Value) Bool() (bool, error) {
	switch v.Scalar {
	case "true", "1":
		return true, nil
	case "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("prototxt: %q is not a bool", v.Scalar)
}

// Message is an ordered multimap of field name to values.
type Message struct {
	names  []string
	values []Value
}

// add appends one field occurrence.
func (m *Message) add(name string, v Value) {
	m.names = append(m.names, name)
	m.values = append(m.values, v)
}

// All returns every value of the named field, in order.
func (m *Message) All(name string) []Value {
	var out []Value
	for i, n := range m.names {
		if n == name {
			out = append(out, m.values[i])
		}
	}
	return out
}

// Get returns the sole value of the named field; ok is false when absent.
func (m *Message) Get(name string) (Value, bool) {
	vs := m.All(name)
	if len(vs) == 0 {
		return Value{}, false
	}
	return vs[0], true
}

// String returns the named scalar field or def when absent.
func (m *Message) String(name, def string) string {
	if v, ok := m.Get(name); ok {
		return v.Scalar
	}
	return def
}

// Float returns the named numeric field or def when absent.
func (m *Message) Float(name string, def float64) (float64, error) {
	v, ok := m.Get(name)
	if !ok {
		return def, nil
	}
	return v.Float()
}

// Int returns the named integer field or def when absent.
func (m *Message) Int(name string, def int) (int, error) {
	v, ok := m.Get(name)
	if !ok {
		return def, nil
	}
	return v.Int()
}

// Msg returns the named nested message, or nil when absent.
func (m *Message) Msg(name string) *Message {
	if v, ok := m.Get(name); ok {
		return v.Msg
	}
	return nil
}

// FieldNames returns the field names in declaration order (with repeats).
func (m *Message) FieldNames() []string { return m.names }

type lexer struct {
	src  string
	pos  int
	line int
}

type token struct {
	kind string // "ident", "scalar", "string", "{", "}", ":", "eof"
	text string
	line int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r' || c == ',':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '{' || c == '}' || c == ':':
			l.pos++
			return token{kind: string(c), text: string(c), line: l.line}, nil
		case c == '"' || c == '\'':
			quote := c
			start := l.pos + 1
			i := start
			for i < len(l.src) && l.src[i] != quote {
				if l.src[i] == '\n' {
					return token{}, fmt.Errorf("prototxt:%d: unterminated string", l.line)
				}
				i++
			}
			if i == len(l.src) {
				return token{}, fmt.Errorf("prototxt:%d: unterminated string", l.line)
			}
			text := l.src[start:i]
			l.pos = i + 1
			return token{kind: "string", text: text, line: l.line}, nil
		default:
			if isWordByte(c) {
				start := l.pos
				for l.pos < len(l.src) && isWordByte(l.src[l.pos]) {
					l.pos++
				}
				return token{kind: "ident", text: l.src[start:l.pos], line: l.line}, nil
			}
			return token{}, fmt.Errorf("prototxt:%d: unexpected character %q", l.line, c)
		}
	}
	return token{kind: "eof", line: l.line}, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == '.' || c == '-' || c == '+' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Parse parses a prototxt document into a Message.
func Parse(src string) (*Message, error) {
	l := &lexer{src: src, line: 1}
	msg, tok, err := parseMessage(l)
	if err != nil {
		return nil, err
	}
	if tok.kind != "eof" {
		return nil, fmt.Errorf("prototxt:%d: unexpected %q at top level", tok.line, tok.text)
	}
	return msg, nil
}

// parseMessage parses fields until '}' or EOF; it returns the terminator.
func parseMessage(l *lexer) (*Message, token, error) {
	m := &Message{}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, token{}, err
		}
		if tok.kind == "eof" || tok.kind == "}" {
			return m, tok, nil
		}
		if tok.kind != "ident" {
			return nil, token{}, fmt.Errorf("prototxt:%d: expected field name, got %q", tok.line, tok.text)
		}
		name := tok.text
		tok, err = l.next()
		if err != nil {
			return nil, token{}, err
		}
		switch tok.kind {
		case "{":
			sub, term, err := parseMessage(l)
			if err != nil {
				return nil, token{}, err
			}
			if term.kind != "}" {
				return nil, token{}, fmt.Errorf("prototxt:%d: missing '}' for %s", tok.line, name)
			}
			m.add(name, Value{Msg: sub})
		case ":":
			tok, err = l.next()
			if err != nil {
				return nil, token{}, err
			}
			switch tok.kind {
			case "string", "ident":
				m.add(name, Value{Scalar: tok.text})
			case "{":
				sub, term, err := parseMessage(l)
				if err != nil {
					return nil, token{}, err
				}
				if term.kind != "}" {
					return nil, token{}, fmt.Errorf("prototxt:%d: missing '}' for %s", tok.line, name)
				}
				m.add(name, Value{Msg: sub})
			default:
				return nil, token{}, fmt.Errorf("prototxt:%d: expected value after %s:, got %q", tok.line, name, tok.text)
			}
		default:
			return nil, token{}, fmt.Errorf("prototxt:%d: expected ':' or '{' after %s, got %q", tok.line, name, tok.text)
		}
	}
}

// quoteIfNeeded is used by String renderers of messages.
func quoteIfNeeded(s string) string {
	for _, r := range s {
		if !isWordByte(byte(r)) {
			return strconv.Quote(s)
		}
	}
	if s == "" {
		return `""`
	}
	return s
}

// Render pretty-prints a message back to prototxt (used in diagnostics and
// round-trip tests).
func (m *Message) Render(indent string) string {
	var b strings.Builder
	for i, name := range m.names {
		v := m.values[i]
		if v.Msg != nil {
			fmt.Fprintf(&b, "%s%s {\n%s%s}\n", indent, name, v.Msg.Render(indent+"  "), indent)
		} else {
			fmt.Fprintf(&b, "%s%s: %s\n", indent, name, quoteIfNeeded(v.Scalar))
		}
	}
	return b.String()
}
