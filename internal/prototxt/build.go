package prototxt

import (
	"fmt"

	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
)

// BuildOptions controls net construction from a prototxt document.
type BuildOptions struct {
	// Source backs every Data layer (the prototxt's lmdb/leveldb source
	// is replaced by the Go Source abstraction).
	Source layers.Source
	// Seed drives weight initialization.
	Seed uint64
	// BatchOverride, when positive, replaces every Data layer's
	// batch_size.
	BatchOverride int
}

// BuildNet constructs net layer specs from a parsed prototxt document.
// Both `layer { ... }` (current Caffe) and `layers { ... }` (legacy) field
// names are accepted.
func BuildNet(doc *Message, opt BuildOptions) ([]net.LayerSpec, error) {
	layerMsgs := append(doc.All("layer"), doc.All("layers")...)
	if len(layerMsgs) == 0 {
		return nil, fmt.Errorf("prototxt: no layer blocks")
	}
	r := rng.New(opt.Seed, 1000)
	var specs []net.LayerSpec
	for i, lv := range layerMsgs {
		if lv.Msg == nil {
			return nil, fmt.Errorf("prototxt: layer %d is not a block", i)
		}
		spec, err := buildLayer(lv.Msg, opt, r.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// ParseNet parses and builds in one step.
func ParseNet(src string, opt BuildOptions) ([]net.LayerSpec, error) {
	doc, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return BuildNet(doc, opt)
}

func buildLayer(m *Message, opt BuildOptions, r *rng.RNG) (net.LayerSpec, error) {
	name := m.String("name", "")
	typ := m.String("type", "")
	if name == "" || typ == "" {
		return net.LayerSpec{}, fmt.Errorf("prototxt: layer needs name and type (got name=%q type=%q)", name, typ)
	}
	var bottoms, tops []string
	for _, v := range m.All("bottom") {
		bottoms = append(bottoms, v.Scalar)
	}
	for _, v := range m.All("top") {
		tops = append(tops, v.Scalar)
	}
	var l layers.Layer
	var err error
	switch typ {
	case "Data", "DATA":
		if opt.Source == nil {
			return net.LayerSpec{}, fmt.Errorf("prototxt: layer %s: no data source provided", name)
		}
		batch := 64
		if dp := m.Msg("data_param"); dp != nil {
			if batch, err = dp.Int("batch_size", batch); err != nil {
				return net.LayerSpec{}, err
			}
		}
		if opt.BatchOverride > 0 {
			batch = opt.BatchOverride
		}
		src := opt.Source
		if tp := m.Msg("transform_param"); tp != nil {
			tr := data.Transform{Train: true, Seed: opt.Seed}
			scale, err := tp.Float("scale", 0)
			if err != nil {
				return net.LayerSpec{}, err
			}
			tr.Scale = float32(scale)
			if tr.Crop, err = tp.Int("crop_size", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if mv, ok := tp.Get("mirror"); ok {
				if tr.Mirror, err = mv.Bool(); err != nil {
					return net.LayerSpec{}, err
				}
			}
			for _, v := range tp.All("mean_value") {
				f, err := v.Float()
				if err != nil {
					return net.LayerSpec{}, err
				}
				tr.MeanValue = append(tr.MeanValue, float32(f))
			}
			if src, err = data.NewTransformed(src, tr); err != nil {
				return net.LayerSpec{}, fmt.Errorf("prototxt: layer %s: %w", name, err)
			}
		}
		l, err = layers.NewData(name, src, batch)
	case "Convolution", "CONVOLUTION":
		cfg := layers.ConvConfig{RNG: r}
		if cp := m.Msg("convolution_param"); cp != nil {
			if cfg.NumOutput, err = cp.Int("num_output", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.Kernel, err = cp.Int("kernel_size", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.KernelH, err = cp.Int("kernel_h", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.KernelW, err = cp.Int("kernel_w", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.Pad, err = cp.Int("pad", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.Stride, err = cp.Int("stride", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.WeightFiller, err = fillerFrom(cp.Msg("weight_filler")); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.BiasFiller, err = fillerFrom(cp.Msg("bias_filler")); err != nil {
				return net.LayerSpec{}, err
			}
			if bt, ok := cp.Get("bias_term"); ok {
				b, err := bt.Bool()
				if err != nil {
					return net.LayerSpec{}, err
				}
				cfg.NoBias = !b
			}
		}
		l, err = layers.NewConvolution(name, cfg)
	case "Deconvolution", "DECONVOLUTION":
		cfg := layers.ConvConfig{RNG: r}
		if cp := m.Msg("convolution_param"); cp != nil {
			if cfg.NumOutput, err = cp.Int("num_output", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.Kernel, err = cp.Int("kernel_size", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.Pad, err = cp.Int("pad", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.Stride, err = cp.Int("stride", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.WeightFiller, err = fillerFrom(cp.Msg("weight_filler")); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.BiasFiller, err = fillerFrom(cp.Msg("bias_filler")); err != nil {
				return net.LayerSpec{}, err
			}
		}
		l, err = layers.NewDeconvolution(name, cfg)
	case "Pooling", "POOLING":
		cfg := layers.PoolConfig{}
		if pp := m.Msg("pooling_param"); pp != nil {
			switch pp.String("pool", "MAX") {
			case "MAX":
				cfg.Method = layers.MaxPool
			case "AVE":
				cfg.Method = layers.AvePool
			default:
				return net.LayerSpec{}, fmt.Errorf("prototxt: layer %s: unsupported pool %q", name, pp.String("pool", ""))
			}
			if cfg.Kernel, err = pp.Int("kernel_size", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.Pad, err = pp.Int("pad", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.Stride, err = pp.Int("stride", 0); err != nil {
				return net.LayerSpec{}, err
			}
		}
		l, err = layers.NewPooling(name, cfg)
	case "InnerProduct", "INNER_PRODUCT":
		cfg := layers.IPConfig{RNG: r}
		if ip := m.Msg("inner_product_param"); ip != nil {
			if cfg.NumOutput, err = ip.Int("num_output", 0); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.WeightFiller, err = fillerFrom(ip.Msg("weight_filler")); err != nil {
				return net.LayerSpec{}, err
			}
			if cfg.BiasFiller, err = fillerFrom(ip.Msg("bias_filler")); err != nil {
				return net.LayerSpec{}, err
			}
		}
		l, err = layers.NewInnerProduct(name, cfg)
	case "ReLU", "RELU":
		slope := 0.0
		if rp := m.Msg("relu_param"); rp != nil {
			if slope, err = rp.Float("negative_slope", 0); err != nil {
				return net.LayerSpec{}, err
			}
		}
		l = layers.NewReLU(name, float32(slope))
	case "Sigmoid", "SIGMOID":
		l = layers.NewSigmoid(name)
	case "TanH", "TANH":
		l = layers.NewTanH(name)
	case "LRN":
		cfg := layers.LRNConfig{}
		if lp := m.Msg("lrn_param"); lp != nil {
			if cfg.LocalSize, err = lp.Int("local_size", 0); err != nil {
				return net.LayerSpec{}, err
			}
			a, err := lp.Float("alpha", 0)
			if err != nil {
				return net.LayerSpec{}, err
			}
			b, err := lp.Float("beta", 0)
			if err != nil {
				return net.LayerSpec{}, err
			}
			cfg.Alpha, cfg.Beta = float32(a), float32(b)
		}
		l, err = layers.NewLRN(name, cfg)
	case "Dropout", "DROPOUT":
		ratio := 0.5
		if dp := m.Msg("dropout_param"); dp != nil {
			if ratio, err = dp.Float("dropout_ratio", 0.5); err != nil {
				return net.LayerSpec{}, err
			}
		}
		l, err = layers.NewDropout(name, float32(ratio), r)
	case "Eltwise", "ELTWISE":
		op := layers.EltwiseSum
		var coeffs []float32
		if ep := m.Msg("eltwise_param"); ep != nil {
			switch ep.String("operation", "SUM") {
			case "SUM":
				op = layers.EltwiseSum
			case "PROD":
				op = layers.EltwiseProd
			case "MAX":
				op = layers.EltwiseMax
			default:
				return net.LayerSpec{}, fmt.Errorf("prototxt: layer %s: unsupported eltwise operation %q", name, ep.String("operation", ""))
			}
			for _, c := range ep.All("coeff") {
				v, err := c.Float()
				if err != nil {
					return net.LayerSpec{}, err
				}
				coeffs = append(coeffs, float32(v))
			}
		}
		l = layers.NewEltwise(name, op, coeffs)
	case "Concat", "CONCAT":
		l = layers.NewConcat(name)
	case "Split", "SPLIT":
		l = layers.NewSplit(name)
	case "BatchNorm", "BATCHNORM":
		cfg := layers.BNConfig{}
		if bp := m.Msg("batch_norm_param"); bp != nil {
			e, err := bp.Float("eps", 0)
			if err != nil {
				return net.LayerSpec{}, err
			}
			mo, err := bp.Float("moving_average_fraction", 0)
			if err != nil {
				return net.LayerSpec{}, err
			}
			cfg.Eps, cfg.Momentum = float32(e), float32(mo)
		}
		l, err = layers.NewBatchNorm(name, cfg)
	case "Flatten", "FLATTEN":
		l = layers.NewFlatten(name)
	case "Softmax", "SOFTMAX":
		l = layers.NewSoftmax(name)
	case "SoftmaxWithLoss", "SOFTMAX_LOSS":
		l = layers.NewSoftmaxWithLoss(name)
	case "EuclideanLoss", "EUCLIDEAN_LOSS":
		l = layers.NewEuclideanLoss(name)
	case "Accuracy", "ACCURACY":
		topK := 1
		if ap := m.Msg("accuracy_param"); ap != nil {
			if topK, err = ap.Int("top_k", 1); err != nil {
				return net.LayerSpec{}, err
			}
		}
		l = layers.NewAccuracy(name, topK)
	default:
		return net.LayerSpec{}, fmt.Errorf("prototxt: layer %s: unsupported type %q", name, typ)
	}
	if err != nil {
		return net.LayerSpec{}, err
	}
	return net.LayerSpec{Layer: l, Bottoms: bottoms, Tops: tops}, nil
}

func fillerFrom(m *Message) (layers.Filler, error) {
	if m == nil {
		return nil, nil
	}
	val, err := m.Float("value", 0)
	if err != nil {
		return nil, err
	}
	std, err := m.Float("std", 0)
	if err != nil {
		return nil, err
	}
	typ := m.String("type", "constant")
	switch typ {
	case "gaussian":
		return layers.GaussianFiller{Std: float32(std)}, nil
	default:
		return layers.FillerByName(typ, float32(val))
	}
}

// BuildSolver extracts a solver configuration from a parsed solver
// prototxt document.
func BuildSolver(doc *Message) (solver.Config, error) {
	var cfg solver.Config
	cfg.Type = solver.Type(doc.String("type", string(solver.SGD)))
	f := func(name string, def float64) (float32, error) {
		v, err := doc.Float(name, def)
		return float32(v), err
	}
	var err error
	if cfg.BaseLR, err = f("base_lr", 0); err != nil {
		return cfg, err
	}
	if cfg.Momentum, err = f("momentum", 0); err != nil {
		return cfg, err
	}
	if cfg.WeightDecay, err = f("weight_decay", 0); err != nil {
		return cfg, err
	}
	cfg.LRPolicy = doc.String("lr_policy", "fixed")
	if cfg.Gamma, err = f("gamma", 0); err != nil {
		return cfg, err
	}
	if cfg.Power, err = f("power", 0); err != nil {
		return cfg, err
	}
	if cfg.StepSize, err = doc.Int("stepsize", 0); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// ParseSolver parses and builds a solver config in one step.
func ParseSolver(src string) (solver.Config, error) {
	doc, err := Parse(src)
	if err != nil {
		return solver.Config{}, err
	}
	return BuildSolver(doc)
}
