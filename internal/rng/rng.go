// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used everywhere in the library where reproducibility
// matters: weight initialization, synthetic dataset generation, dropout
// masks and data shuffling.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014). It is deliberately
// independent from math/rand so that streams are stable across Go releases
// and so that every component can own a private, seeded stream ("share by
// communicating" — no global RNG state is shared between goroutines).
package rng

import "math"

// RNG is a PCG-XSH-RR 64/32 generator. The zero value is NOT valid; use New.
// RNG is not safe for concurrent use; give each goroutine its own stream
// (see Split).
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// New returns a generator seeded with seed on stream seq. Distinct seq
// values yield independent streams even under the same seed.
func New(seed, seq uint64) *RNG {
	r := &RNG{inc: (seq << 1) | 1}
	r.state = 0
	r.Uint32()
	r.state += seed
	r.Uint32()
	return r
}

// Split derives an independent child stream. The child is deterministic in
// (parent state, i), so splitting the same parent at the same point with the
// same index always yields the same stream.
func (r *RNG) Split(i uint64) *RNG {
	return New(r.Uint64()^(i*0x9e3779b97f4a7c15), i+(r.inc>>1))
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint32(n)
	for {
		v := r.Uint32()
		prod := uint64(v) * uint64(bound)
		low := uint32(prod)
		if low >= bound || low >= (-bound)%bound {
			return int(prod >> 32)
		}
	}
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint32()>>8) * (1.0 / (1 << 24))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Range returns a uniform float32 in [lo, hi).
func (r *RNG) Range(lo, hi float32) float32 {
	return lo + (hi-lo)*r.Float32()
}

// NormFloat32 returns a normally distributed float32 with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *RNG) NormFloat32() float32 {
	// Reject u1 == 0 to keep Log finite.
	var u1 float64
	for {
		u1 = r.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 := r.Float64()
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// Gaussian returns a normally distributed float32 with the given mean and
// standard deviation.
func (r *RNG) Gaussian(mean, std float32) float32 {
	return mean + std*r.NormFloat32()
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float32) bool {
	return r.Float32() < p
}
