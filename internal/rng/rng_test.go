package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctStreams(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different seq collide too often: %d/1000", same)
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different seeds collide too often: %d/1000", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() *RNG { return New(99, 3) }
	a := mk().Split(5)
	b := mk().Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split streams not deterministic")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1, 1)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestFloat32Range(t *testing.T) {
	r := New(12, 34)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float32 mean %v too far from 0.5", mean)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(12, 34)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5, 6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(r.NormFloat32())
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestGaussianScaling(t *testing.T) {
	r := New(5, 6)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Gaussian(3, 0.5))
	}
	if mean := sum / n; math.Abs(mean-3) > 0.02 {
		t.Fatalf("gaussian(3, .5) mean %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(7, 8)
	out := make([]int, 100)
	r.Perm(out)
	seen := make([]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestPermMixes(t *testing.T) {
	r := New(7, 8)
	out := make([]int, 50)
	r.Perm(out)
	fixed := 0
	for i, v := range out {
		if i == v {
			fixed++
		}
	}
	if fixed > 10 {
		t.Fatalf("permutation barely shuffles: %d fixed points", fixed)
	}
}

func TestRange(t *testing.T) {
	r := New(1, 2)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(1, 2)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1.0) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

// Property: Intn(n) stays in range for arbitrary seeds/streams/bounds.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed, seq uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed, seq)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: generators with the same (seed, seq) always agree.
func TestQuickDeterministic(t *testing.T) {
	f := func(seed, seq uint64) bool {
		a, b := New(seed, seq), New(seed, seq)
		for i := 0; i < 20; i++ {
			if a.Uint32() != b.Uint32() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
