package zoo

import (
	"testing"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/net"
	"coarsegrain/internal/solver"
)

func TestLeNetArchitecture(t *testing.T) {
	src := data.NewSyntheticMNIST(256, 1)
	specs, err := LeNet(src, Options{BatchSize: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 9 {
		t.Fatalf("LeNet has %d layers, want 9 (paper Figure 3)", len(specs))
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shapes from the LeNet definition: conv1 20x24x24, pool1 20x12x12,
	// conv2 50x8x8, pool2 50x4x4, ip1 500, ip2 10.
	cases := map[string][]int{
		"data":  {64, 1, 28, 28},
		"conv1": {64, 20, 24, 24},
		"pool1": {64, 20, 12, 12},
		"conv2": {64, 50, 8, 8},
		"pool2": {64, 50, 4, 4},
		"ip1":   {64, 500},
		"ip2":   {64, 10},
	}
	for name, want := range cases {
		got := n.Blob(name).Shape()
		if len(got) != len(want) {
			t.Fatalf("%s shape %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s shape %v, want %v", name, got, want)
			}
		}
	}
	loss := n.Forward()
	if loss < 1 || loss > 5 {
		t.Fatalf("untrained LeNet loss %v", loss)
	}
}

func TestCIFARFullArchitecture(t *testing.T) {
	src := data.NewSyntheticCIFAR(200, 2)
	specs, err := CIFARFull(src, Options{BatchSize: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 14 {
		t.Fatalf("CIFAR-full has %d layers, want 14 (paper Figure 3)", len(specs))
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]int{
		"data":  {100, 3, 32, 32},
		"conv1": {100, 32, 32, 32}, // pad 2 keeps 32x32
		"pool1": {100, 32, 16, 16},
		"norm1": {100, 32, 16, 16},
		"conv2": {100, 32, 16, 16},
		"pool2": {100, 32, 8, 8},
		"conv3": {100, 64, 8, 8},
		"pool3": {100, 64, 4, 4},
		"ip1":   {100, 10},
	}
	for name, want := range cases {
		got := n.Blob(name).Shape()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s shape %v, want %v", name, got, want)
			}
		}
	}
	if loss := n.Forward(); loss < 1 || loss > 5 {
		t.Fatalf("untrained CIFAR loss %v", loss)
	}
}

func TestLeNetTrainsUnderCoarseEngine(t *testing.T) {
	src := data.NewSyntheticMNIST(256, 3)
	specs, err := LeNet(src, Options{BatchSize: 16, Seed: 3, Accuracy: true})
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewCoarse(4)
	defer e.Close()
	n, err := net.New(specs, e)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(LeNetSolver(), n)
	if err != nil {
		t.Fatal(err)
	}
	losses := s.Step(40)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("LeNet loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestCIFARFullRunsOneIteration(t *testing.T) {
	src := data.NewSyntheticCIFAR(64, 4)
	specs, err := CIFARFull(src, Options{BatchSize: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(CIFARFullSolver(), n)
	if err != nil {
		t.Fatal(err)
	}
	losses := s.Step(2)
	for _, l := range losses {
		if l <= 0 || l != l {
			t.Fatalf("bad loss %v", l)
		}
	}
}

func TestBuildByName(t *testing.T) {
	src := data.NewSyntheticMNIST(64, 5)
	for _, name := range []string{"lenet", "mnist"} {
		if _, err := Build(name, src, Options{BatchSize: 4}); err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
	}
	csrc := data.NewSyntheticCIFAR(64, 5)
	for _, name := range []string{"cifar", "cifar10", "cifar10-full"} {
		if _, err := Build(name, csrc, Options{BatchSize: 4}); err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
	}
	if _, err := Build("alexnet", src, Options{}); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestSolverConfigsValid(t *testing.T) {
	src := data.NewSyntheticMNIST(64, 6)
	specs, _ := LeNet(src, Options{BatchSize: 4, Seed: 6})
	n, _ := net.New(specs, nil)
	if _, err := solver.New(LeNetSolver(), n); err != nil {
		t.Fatalf("LeNetSolver config invalid: %v", err)
	}
	if _, err := solver.New(CIFARFullSolver(), n); err != nil {
		t.Fatalf("CIFARFullSolver config invalid: %v", err)
	}
}

func TestSeedReproducibility(t *testing.T) {
	src1 := data.NewSyntheticMNIST(64, 7)
	src2 := data.NewSyntheticMNIST(64, 7)
	s1, _ := LeNet(src1, Options{BatchSize: 4, Seed: 9})
	s2, _ := LeNet(src2, Options{BatchSize: 4, Seed: 9})
	n1, _ := net.New(s1, nil)
	n2, _ := net.New(s2, nil)
	for i := range n1.Params() {
		a, b := n1.Params()[i].Data(), n2.Params()[i].Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
	if n1.Forward() != n2.Forward() {
		t.Fatal("same seed produced different loss")
	}
}

// The lowered-convolution variant must compute the same function as the
// direct variant (same weights, same data).
func TestLoweredConvVariantMatchesDirect(t *testing.T) {
	mk := func(lowered bool) *net.Net {
		src := data.NewSyntheticMNIST(64, 8)
		specs, err := LeNet(src, Options{BatchSize: 8, Seed: 8, LoweredConv: lowered})
		if err != nil {
			t.Fatal(err)
		}
		n, err := net.New(specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk(false)
	b := mk(true)
	la, lb := a.Forward(), b.Forward()
	rel := (la - lb) / la
	if rel > 1e-5 || rel < -1e-5 {
		t.Fatalf("lowered LeNet loss %v vs direct %v", lb, la)
	}
}
