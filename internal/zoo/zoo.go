// Package zoo builds the two benchmark networks of the paper's evaluation
// exactly as shipped with Caffe: the LeNet MNIST classifier (9 layers,
// Figure 3 top) and the CIFAR-10-full CNN (14 layers, Figure 3 bottom),
// plus their Caffe solver configurations.
package zoo

import (
	"fmt"

	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
)

// Options configures a network build.
type Options struct {
	// BatchSize defaults to the Caffe training value (64 MNIST, 100 CIFAR).
	BatchSize int
	// Seed drives weight initialization; equal seeds give bit-identical
	// initial parameters.
	Seed uint64
	// Accuracy appends an Accuracy layer next to the loss.
	Accuracy bool
	// LoweredConv selects the im2col+GEMM convolution implementation
	// (Caffe's CPU path) instead of the direct loop nest.
	LoweredConv bool
}

// LeNet builds the MNIST network of §2.2.1: data, conv1(20,5x5), pool1(MAX
// 2/2), conv2(50,5x5), pool2(MAX 2/2), ip1(500), relu1, ip2(10), loss —
// the layer inventory of the paper's Figure 3 and the per-layer series of
// Figures 4-6.
func LeNet(src layers.Source, opt Options) ([]net.LayerSpec, error) {
	if opt.BatchSize == 0 {
		opt.BatchSize = 64
	}
	r := rng.New(opt.Seed, 100)
	dataL, err := layers.NewData("mnist", src, opt.BatchSize)
	if err != nil {
		return nil, err
	}
	conv1, err := layers.NewConvolution("conv1", layers.ConvConfig{
		NumOutput: 20, Kernel: 5, Stride: 1, Lowered: opt.LoweredConv,
		WeightFiller: layers.XavierFiller{}, RNG: r.Split(1),
	})
	if err != nil {
		return nil, err
	}
	pool1, err := layers.NewPooling("pool1", layers.PoolConfig{Method: layers.MaxPool, Kernel: 2, Stride: 2})
	if err != nil {
		return nil, err
	}
	conv2, err := layers.NewConvolution("conv2", layers.ConvConfig{
		NumOutput: 50, Kernel: 5, Stride: 1, Lowered: opt.LoweredConv,
		WeightFiller: layers.XavierFiller{}, RNG: r.Split(2),
	})
	if err != nil {
		return nil, err
	}
	pool2, err := layers.NewPooling("pool2", layers.PoolConfig{Method: layers.MaxPool, Kernel: 2, Stride: 2})
	if err != nil {
		return nil, err
	}
	ip1, err := layers.NewInnerProduct("ip1", layers.IPConfig{
		NumOutput: 500, WeightFiller: layers.XavierFiller{}, RNG: r.Split(3),
	})
	if err != nil {
		return nil, err
	}
	ip2, err := layers.NewInnerProduct("ip2", layers.IPConfig{
		NumOutput: src.Classes(), WeightFiller: layers.XavierFiller{}, RNG: r.Split(4),
	})
	if err != nil {
		return nil, err
	}
	specs := []net.LayerSpec{
		{Layer: dataL, Tops: []string{"data", "label"}},
		{Layer: conv1, Bottoms: []string{"data"}, Tops: []string{"conv1"}},
		{Layer: pool1, Bottoms: []string{"conv1"}, Tops: []string{"pool1"}},
		{Layer: conv2, Bottoms: []string{"pool1"}, Tops: []string{"conv2"}},
		{Layer: pool2, Bottoms: []string{"conv2"}, Tops: []string{"pool2"}},
		{Layer: ip1, Bottoms: []string{"pool2"}, Tops: []string{"ip1"}},
		{Layer: layers.NewReLU("relu1", 0), Bottoms: []string{"ip1"}, Tops: []string{"relu1"}},
		{Layer: ip2, Bottoms: []string{"relu1"}, Tops: []string{"ip2"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip2", "label"}, Tops: []string{"loss"}},
	}
	if opt.Accuracy {
		specs = append(specs, net.LayerSpec{
			Layer: layers.NewAccuracy("accuracy", 1), Bottoms: []string{"ip2", "label"}, Tops: []string{"accuracy"},
		})
	}
	return specs, nil
}

// LeNetSolver returns the Caffe lenet_solver.prototxt hyperparameters:
// SGD, base_lr 0.01, momentum 0.9, weight_decay 5e-4, inv policy with
// gamma 1e-4 and power 0.75.
func LeNetSolver() solver.Config {
	return solver.Config{
		Type: solver.SGD, BaseLR: 0.01, Momentum: 0.9, WeightDecay: 0.0005,
		LRPolicy: "inv", Gamma: 0.0001, Power: 0.75,
	}
}

// CIFARFull builds the CIFAR-10 network of §2.2.1, organized in the three
// levels the paper's §4.2.1 analyses:
//
//	level 1: conv1(32,5x5,pad2) pool1(MAX 3/2) relu1 norm1(LRN)
//	level 2: conv2(32,5x5,pad2) relu2 pool2(AVE 3/2) norm2(LRN)
//	level 3: conv3(64,5x5,pad2) relu3 pool3(AVE 3/2)
//
// followed by ip1(10) and the softmax loss — 14 layers including data.
func CIFARFull(src layers.Source, opt Options) ([]net.LayerSpec, error) {
	if opt.BatchSize == 0 {
		opt.BatchSize = 100
	}
	r := rng.New(opt.Seed, 200)
	dataL, err := layers.NewData("cifar", src, opt.BatchSize)
	if err != nil {
		return nil, err
	}
	newConv := func(name string, out int, std float32, stream uint64) (*layers.Convolution, error) {
		return layers.NewConvolution(name, layers.ConvConfig{
			NumOutput: out, Kernel: 5, Pad: 2, Stride: 1, Lowered: opt.LoweredConv,
			WeightFiller: layers.GaussianFiller{Std: std}, RNG: r.Split(stream),
		})
	}
	conv1, err := newConv("conv1", 32, 0.0001, 1)
	if err != nil {
		return nil, err
	}
	conv2, err := newConv("conv2", 32, 0.01, 2)
	if err != nil {
		return nil, err
	}
	conv3, err := newConv("conv3", 64, 0.01, 3)
	if err != nil {
		return nil, err
	}
	pool1, err := layers.NewPooling("pool1", layers.PoolConfig{Method: layers.MaxPool, Kernel: 3, Stride: 2})
	if err != nil {
		return nil, err
	}
	pool2, err := layers.NewPooling("pool2", layers.PoolConfig{Method: layers.AvePool, Kernel: 3, Stride: 2})
	if err != nil {
		return nil, err
	}
	pool3, err := layers.NewPooling("pool3", layers.PoolConfig{Method: layers.AvePool, Kernel: 3, Stride: 2})
	if err != nil {
		return nil, err
	}
	lrnCfg := layers.LRNConfig{LocalSize: 3, Alpha: 5e-5, Beta: 0.75}
	norm1, err := layers.NewLRN("norm1", lrnCfg)
	if err != nil {
		return nil, err
	}
	norm2, err := layers.NewLRN("norm2", lrnCfg)
	if err != nil {
		return nil, err
	}
	ip1, err := layers.NewInnerProduct("ip1", layers.IPConfig{
		NumOutput: src.Classes(), WeightFiller: layers.GaussianFiller{Std: 0.01}, RNG: r.Split(4),
	})
	if err != nil {
		return nil, err
	}
	specs := []net.LayerSpec{
		{Layer: dataL, Tops: []string{"data", "label"}},
		{Layer: conv1, Bottoms: []string{"data"}, Tops: []string{"conv1"}},
		{Layer: pool1, Bottoms: []string{"conv1"}, Tops: []string{"pool1"}},
		{Layer: layers.NewReLU("relu1", 0), Bottoms: []string{"pool1"}, Tops: []string{"relu1"}},
		{Layer: norm1, Bottoms: []string{"relu1"}, Tops: []string{"norm1"}},
		{Layer: conv2, Bottoms: []string{"norm1"}, Tops: []string{"conv2"}},
		{Layer: layers.NewReLU("relu2", 0), Bottoms: []string{"conv2"}, Tops: []string{"relu2"}},
		{Layer: pool2, Bottoms: []string{"relu2"}, Tops: []string{"pool2"}},
		{Layer: norm2, Bottoms: []string{"pool2"}, Tops: []string{"norm2"}},
		{Layer: conv3, Bottoms: []string{"norm2"}, Tops: []string{"conv3"}},
		{Layer: layers.NewReLU("relu3", 0), Bottoms: []string{"conv3"}, Tops: []string{"relu3"}},
		{Layer: pool3, Bottoms: []string{"relu3"}, Tops: []string{"pool3"}},
		{Layer: ip1, Bottoms: []string{"pool3"}, Tops: []string{"ip1"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip1", "label"}, Tops: []string{"loss"}},
	}
	if opt.Accuracy {
		specs = append(specs, net.LayerSpec{
			Layer: layers.NewAccuracy("accuracy", 1), Bottoms: []string{"ip1", "label"}, Tops: []string{"accuracy"},
		})
	}
	return specs, nil
}

// CIFARFullSolver returns the Caffe cifar10_full_solver.prototxt
// hyperparameters: SGD, base_lr 0.001, momentum 0.9, weight_decay 0.004,
// fixed policy.
func CIFARFullSolver() solver.Config {
	return solver.Config{
		Type: solver.SGD, BaseLR: 0.001, Momentum: 0.9, WeightDecay: 0.004,
		LRPolicy: "fixed",
	}
}

// Build is a convenience that constructs one of the named zoo networks.
func Build(name string, src layers.Source, opt Options) ([]net.LayerSpec, error) {
	switch name {
	case "lenet", "mnist":
		return LeNet(src, opt)
	case "cifar", "cifar10", "cifar10-full":
		return CIFARFull(src, opt)
	default:
		return nil, fmt.Errorf("zoo: unknown network %q (have lenet, cifar10-full)", name)
	}
}
