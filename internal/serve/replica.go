package serve

import (
	"fmt"
	"time"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/trace"
)

// feeder adapts the current batch of requests to the layers.Source
// interface so the network's own Data layer stages inputs — no second
// staging copy, no dataset on disk. Len is pinned at MaxBatch (the
// Data layer validates batch sizes against it); Read pulls sample i
// straight from request i's input buffer. Labels are meaningless when
// serving, so Read returns class 0.
//
// Read is on the request hot path: dnnlint's hotalloc analyzer holds
// feeder Read* methods to the training-pass standard (LINTING.md §4).
type feeder struct {
	shape   []int
	classes int
	batch   int
	reqs    []*Request
}

// Len implements layers.Source.
func (f *feeder) Len() int { return f.batch }

// SampleShape implements layers.Source.
func (f *feeder) SampleShape() []int { return f.shape }

// Classes implements layers.Source.
func (f *feeder) Classes() int { return f.classes }

// Read implements layers.Source: slot i of the staged batch.
func (f *feeder) Read(i int, out []float32) int {
	copy(out, f.reqs[i].in)
	return 0
}

// replica is one pre-warmed forward-only net plus its feeder. Replica 0
// owns the weights; the rest alias them via net.ShareParamsWith. Each
// replica is driven by exactly one worker goroutine, so Infer needs no
// locking.
type replica struct {
	rank   int
	srv    *Server
	feed   *feeder
	net    *net.Net
	data   *layers.Data
	scores *blob.Blob
	batch  int // batch size the net is currently shaped for
	seq    int // dispatched-batch sequence number (trace Band)
}

// newReplica builds one replica: fresh layer instances over a fresh
// feeder, training tail stripped, shaped for MaxBatch.
func newReplica(rank int, s *Server) (*replica, error) {
	f := &feeder{shape: s.cfg.SampleShape, classes: s.cfg.Classes, batch: s.cfg.MaxBatch}
	specs, err := s.cfg.Build(f)
	if err != nil {
		return nil, fmt.Errorf("serve: replica %d build: %w", rank, err)
	}
	specs = StripTraining(specs)
	n, err := net.NewForward(specs, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: replica %d: %w", rank, err)
	}
	var dl *layers.Data
	for _, l := range n.Layers() {
		if d, ok := l.(*layers.Data); ok {
			dl = d
			break
		}
	}
	if dl == nil {
		return nil, fmt.Errorf("serve: replica %d: network has no Data layer", rank)
	}
	if dl.BatchSize() != s.cfg.MaxBatch {
		dl.SetBatchSize(s.cfg.MaxBatch)
		n.Reshape()
	}
	sb := n.Blob(s.cfg.ScoreBlob)
	if sb == nil {
		return nil, fmt.Errorf("serve: replica %d: no blob %q in network", rank, s.cfg.ScoreBlob)
	}
	if sb.Count() != s.cfg.MaxBatch*s.cfg.Classes {
		return nil, fmt.Errorf("serve: replica %d: score blob %q has %d elements at batch %d, want %d classes per sample",
			rank, s.cfg.ScoreBlob, sb.Count(), s.cfg.MaxBatch, s.cfg.Classes)
	}
	return &replica{rank: rank, srv: s, feed: f, net: n, data: dl, scores: sb, batch: s.cfg.MaxBatch}, nil
}

// Infer runs one dynamic batch: stage the requests behind the feeder,
// resize the net if the batch size changed (buffer-reusing, so
// allocation-free once warmed at MaxBatch), forward, scatter the score
// rows back into the requests, and signal completion. This is the
// steady-state request hot path — dnnlint's hotalloc analyzer enforces
// that its loops allocate nothing (LINTING.md §4).
func (rep *replica) Infer(reqs []*Request) {
	start := time.Now()
	b := len(reqs)
	rep.feed.reqs = reqs
	if b != rep.batch {
		rep.data.SetBatchSize(b)
		rep.net.Reshape()
		rep.batch = b
	}
	rep.data.Rewind()
	rep.net.Forward()
	out := rep.scores.Data()
	cls := rep.feed.classes
	for i, r := range reqs {
		copy(r.scores, out[i*cls:(i+1)*cls])
	}
	rep.feed.reqs = nil
	end := time.Now()

	tr := rep.srv.cfg.Tracer
	if tr.Enabled() {
		// Single-writer discipline: every span lands on this replica's
		// rank shard, and only this worker goroutine writes it.
		tr.Record(trace.Span{
			Name: "batch", Phase: trace.PhaseServe, Rank: rep.rank, Band: rep.seq,
			Lo: 0, Hi: b, Start: tr.Stamp(start), Dur: end.Sub(start),
		})
		for i, r := range reqs {
			tr.Record(trace.Span{
				Name: "request", Phase: trace.PhaseServe, Rank: rep.rank, Band: rep.seq,
				Lo: i, Hi: i + 1, Start: tr.Stamp(r.enq), Dur: end.Sub(r.enq),
			})
		}
	}
	rep.seq++

	var lat int64
	for _, r := range reqs {
		lat += int64(end.Sub(r.enq))
	}
	s := rep.srv
	s.batches.Add(1)
	s.samples.Add(int64(b))
	s.served.Add(int64(b))
	s.latencyNS.Add(lat)
	for _, r := range reqs {
		r.done <- struct{}{}
	}
}
