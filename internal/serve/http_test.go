package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, testConfig(4, time.Millisecond))
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPredictEndpoint(t *testing.T) {
	s, ts := testHTTPServer(t)
	in := make([]float32, s.SampleLen())
	fillSample(in, 3)
	resp := postJSON(t, ts.URL+"/v1/predict", map[string]any{"input": in})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out predictOut
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scores) != 1 || len(out.Scores[0]) != 10 || len(out.Argmax) != 1 {
		t.Fatalf("shape: %d score rows, %d argmax", len(out.Scores), len(out.Argmax))
	}
	if want := doSample(t, s, 3); out.Argmax[0] != Argmax(want) {
		t.Fatalf("argmax %d, want %d", out.Argmax[0], Argmax(want))
	}
}

func TestPredictEndpointMultiInput(t *testing.T) {
	s, ts := testHTTPServer(t)
	inputs := make([][]float32, 3)
	for i := range inputs {
		inputs[i] = make([]float32, s.SampleLen())
		fillSample(inputs[i], i)
	}
	resp := postJSON(t, ts.URL+"/v1/predict", map[string]any{"inputs": inputs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out predictOut
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scores) != 3 {
		t.Fatalf("%d score rows, want 3", len(out.Scores))
	}
	for i := range inputs {
		want := doSample(t, s, i)
		for j := range want {
			if out.Scores[i][j] != want[j] {
				t.Fatalf("row %d score %d: %g != %g", i, j, out.Scores[i][j], want[j])
			}
		}
	}
}

func TestPredictEndpointRejectsBadInput(t *testing.T) {
	s, ts := testHTTPServer(t)
	cases := []struct {
		name string
		body any
	}{
		{"empty", map[string]any{}},
		{"short input", map[string]any{"input": []float32{1, 2, 3}}},
		{"both fields", map[string]any{"input": make([]float32, s.SampleLen()), "inputs": [][]float32{make([]float32, s.SampleLen())}}},
		{"too many", map[string]any{"inputs": [][]float32{
			make([]float32, s.SampleLen()), make([]float32, s.SampleLen()), make([]float32, s.SampleLen()),
			make([]float32, s.SampleLen()), make([]float32, s.SampleLen()),
		}}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/predict", tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestTensorEndpointMatchesPredict round-trips two samples through the
// raw-f32 endpoint and checks bit-identity with the in-process path.
func TestTensorEndpointMatchesPredict(t *testing.T) {
	s, ts := testHTTPServer(t)
	const k = 2
	body := make([]byte, 4*k*s.SampleLen())
	sample := make([]float32, s.SampleLen())
	for i := 0; i < k; i++ {
		fillSample(sample, i)
		for j, v := range sample {
			binary.LittleEndian.PutUint32(body[4*(i*s.SampleLen()+j):], math.Float32bits(v))
		}
	}
	resp, err := http.Post(ts.URL+"/v1/tensor", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Batch"); got != "2" {
		t.Fatalf("X-Batch %q", got)
	}
	raw := make([]byte, 4*k*10)
	if _, err := io.ReadFull(resp.Body, raw); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		want := doSample(t, s, i)
		for j := range want {
			got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*(i*10+j):]))
			if got != want[j] {
				t.Fatalf("sample %d score %d: %g != %g", i, j, got, want[j])
			}
		}
	}
}

func TestTensorEndpointRejectsBadLength(t *testing.T) {
	_, ts := testHTTPServer(t)
	resp, err := http.Post(ts.URL+"/v1/tensor", "application/octet-stream", bytes.NewReader(make([]byte, 7)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestOverloadReturns429 drives the HTTP overload path with the same
// no-batcher trick as TestBackpressureRejects.
func TestOverloadReturns429(t *testing.T) {
	cfg := testConfig(4, time.Hour)
	cfg.QueueDepth = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	if err := s.submit(s.Acquire()); err != nil { // fill the queue
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	in := make([]float32, s.SampleLen())
	resp := postJSON(t, ts.URL+"/v1/predict", map[string]any{"input": in})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestInfoHealthStats(t *testing.T) {
	s, ts := testHTTPServer(t)
	doSample(t, s, 0)
	for _, path := range []string{"/healthz", "/v1/info", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		switch path {
		case "/v1/info":
			if body["classes"] != float64(10) || body["max_batch"] != float64(4) {
				t.Fatalf("info: %v", body)
			}
		case "/v1/stats":
			if body["served"].(float64) < 1 {
				t.Fatalf("stats: %v", body)
			}
		}
	}
}
