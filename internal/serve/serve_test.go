package serve

import (
	"sync"
	"testing"
	"time"

	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
)

// testBuild returns a Builder for a small MNIST-shaped net — data,
// conv1(4,5x5,stride2, lowered), ip1(10) — plus a SoftmaxWithLoss tail
// so every server construction also exercises StripTraining. Equal
// seeds give bit-identical weights across servers.
func testBuild(seed uint64) Builder {
	return func(src layers.Source) ([]net.LayerSpec, error) {
		d, err := layers.NewData("data", src, src.Len())
		if err != nil {
			return nil, err
		}
		conv, err := layers.NewConvolution("conv1", layers.ConvConfig{
			NumOutput: 4, Kernel: 5, Stride: 2, Lowered: true,
			WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 1),
		})
		if err != nil {
			return nil, err
		}
		ip, err := layers.NewInnerProduct("ip1", layers.IPConfig{
			NumOutput: src.Classes(), WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 2),
		})
		if err != nil {
			return nil, err
		}
		return []net.LayerSpec{
			{Layer: d, Tops: []string{"data", "label"}},
			{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv1"}},
			{Layer: ip, Bottoms: []string{"conv1"}, Tops: []string{"ip1"}},
			{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip1", "label"}, Tops: []string{"loss"}},
		}, nil
	}
}

func testConfig(maxBatch int, delay time.Duration) Config {
	return Config{
		Build:       testBuild(42),
		SampleShape: []int{1, 28, 28},
		Classes:     10,
		ScoreBlob:   "ip1",
		MaxBatch:    maxBatch,
		MaxDelay:    delay,
	}
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// fillSample writes a deterministic input for sample identity id.
func fillSample(in []float32, id int) {
	for j := range in {
		in[j] = float32((id*31+j)%17) / 17
	}
}

// doSample runs one request for identity id and returns a copy of its
// scores.
func doSample(t testing.TB, s *Server, id int) []float32 {
	t.Helper()
	r := s.Acquire()
	defer s.Release(r)
	fillSample(r.Input(), id)
	if err := s.Do(r); err != nil {
		t.Fatalf("Do(sample %d): %v", id, err)
	}
	return append([]float32(nil), r.Scores()...)
}

// TestFullBatchFlush pins the full-flush path: with an effectively
// infinite deadline, MaxBatch concurrent requests can only complete by
// filling the batch.
func TestFullBatchFlush(t *testing.T) {
	s := newTestServer(t, testConfig(4, time.Hour))
	s.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			doSample(t, s, id)
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.FullFlushes != 1 || st.DeadlineFlushes != 0 {
		t.Fatalf("flushes: full=%d deadline=%d, want 1/0", st.FullFlushes, st.DeadlineFlushes)
	}
	if st.Batches != 1 || st.Samples != 4 || st.Served != 4 {
		t.Fatalf("batches=%d samples=%d served=%d, want 1/4/4", st.Batches, st.Samples, st.Served)
	}
}

// TestDeadlineFlush pins the deadline path: fewer requests than
// MaxBatch complete only because the MaxDelay timer fires.
func TestDeadlineFlush(t *testing.T) {
	s := newTestServer(t, testConfig(32, 20*time.Millisecond))
	s.Start()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			doSample(t, s, id)
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.DeadlineFlushes < 1 || st.FullFlushes != 0 {
		t.Fatalf("flushes: full=%d deadline=%d, want 0/≥1", st.FullFlushes, st.DeadlineFlushes)
	}
	if st.Served != 3 {
		t.Fatalf("served=%d, want 3", st.Served)
	}
	if st.MeanLatency < 15*time.Millisecond {
		// A 3-sample batch under a 20ms deadline waited for the timer;
		// generous lower bound to stay robust on slow CI.
		t.Logf("note: mean latency %v below the deadline — deadline fired early?", st.MeanLatency)
	}
}

// TestBackpressureRejects fills the bounded queue with no batcher
// running (the server is force-marked started) and checks the
// non-blocking rejection contract.
func TestBackpressureRejects(t *testing.T) {
	cfg := testConfig(4, time.Hour)
	cfg.QueueDepth = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mark started without launching the batcher: every submission
	// stays queued, so the third must bounce.
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	for i := 0; i < 2; i++ {
		r := s.Acquire()
		if err := s.submit(r); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	r := s.Acquire()
	if err := s.submit(r); err != ErrOverloaded {
		t.Fatalf("submit over capacity: %v, want ErrOverloaded", err)
	}
	st := s.Stats()
	if st.Received != 2 || st.Rejected != 1 {
		t.Fatalf("received=%d rejected=%d, want 2/1", st.Received, st.Rejected)
	}
}

// TestSubmitLifecycleErrors pins ErrNotStarted and ErrClosed.
func TestSubmitLifecycleErrors(t *testing.T) {
	s := newTestServer(t, testConfig(2, time.Millisecond))
	r := s.Acquire()
	if err := s.Do(r); err != ErrNotStarted {
		t.Fatalf("Do before Start: %v, want ErrNotStarted", err)
	}
	s.Start()
	if err := s.Do(r); err != nil {
		t.Fatalf("Do after Start: %v", err)
	}
	s.Close()
	if err := s.Do(r); err != ErrClosed {
		t.Fatalf("Do after Close: %v, want ErrClosed", err)
	}
	s.Release(r)
}

// TestCloseDrainsAdmitted submits a burst and closes immediately:
// every admitted request must still be answered.
func TestCloseDrainsAdmitted(t *testing.T) {
	s := newTestServer(t, testConfig(4, time.Hour))
	s.Start()
	const n = 11
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := s.Acquire()
			defer s.Release(r)
			fillSample(r.Input(), id)
			errs[id] = s.Do(r)
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let most submissions land
	s.Close()
	wg.Wait()
	admitted := 0
	for _, err := range errs {
		switch err {
		case nil:
			admitted++
		case ErrClosed:
		default:
			t.Fatalf("unexpected Do error: %v", err)
		}
	}
	if st := s.Stats(); st.Served != int64(admitted) {
		t.Fatalf("served=%d but %d requests completed", st.Served, admitted)
	}
}

// TestRoutingUnderConcurrency hammers the batcher from many clients
// with identity-encoded inputs and checks every response carries the
// scores of that client's own sample — the response-routing contract
// under arbitrary batch mixing. Run with -race this also exercises the
// submit/flush/free-list synchronization.
func TestRoutingUnderConcurrency(t *testing.T) {
	ref := newTestServer(t, testConfig(1, time.Millisecond))
	ref.Start()
	const ids = 8
	want := make([][]float32, ids)
	for i := 0; i < ids; i++ {
		want[i] = doSample(t, ref, i)
	}

	s := newTestServer(t, testConfig(4, 500*time.Microsecond))
	s.Start()
	const clients, rounds = 16, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				id := (c + k) % ids
				got := doSample(t, s, id)
				for j := range got {
					if got[j] != want[id][j] {
						t.Errorf("client %d round %d: score[%d]=%g, want %g (cross-routed response?)",
							c, k, j, got[j], want[id][j])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestStripTraining checks the tail-stripping used by every replica
// build.
func TestStripTraining(t *testing.T) {
	f := &feeder{shape: []int{1, 28, 28}, classes: 10, batch: 4}
	specs, err := testBuild(1)(f)
	if err != nil {
		t.Fatal(err)
	}
	stripped := StripTraining(specs)
	if got, want := len(stripped), len(specs)-1; got != want {
		t.Fatalf("stripped to %d specs, want %d", got, want)
	}
	if last := stripped[len(stripped)-1].Layer.Type(); last != "InnerProduct" {
		t.Fatalf("last layer after strip is %s, want InnerProduct", last)
	}
	if len(StripTraining(nil)) != 0 {
		t.Fatal("StripTraining(nil) not empty")
	}
}
