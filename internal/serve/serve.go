// Package serve is the inference serving engine behind cmd/dnnserve: it
// turns a trained snapshot into a long-running prediction service whose
// throughput comes from the same observation the training side exploits —
// batched forward passes amortize per-call overheads (GEMM panel packing,
// layer dispatch) across samples (SERVING.md).
//
// # Architecture
//
// Concurrent single-sample requests enter a bounded queue. A single
// batcher goroutine coalesces them into dynamic batches: it flushes to a
// replica as soon as MaxBatch requests are waiting (a full flush) or
// MaxDelay has elapsed since the oldest queued request (a deadline
// flush), whichever comes first. Batches are executed by a pre-warmed
// pool of Replicas forward-only nets (net.NewForward) that share one
// copy of the weights (net.ShareParamsWith), so R replicas cost one
// net's parameters plus R sets of activations.
//
// # Determinism
//
// A batched forward is bit-identical to the serial single-request
// forward of each sample: every serving-path layer treats batch rows
// independently, and the blocked GEMM's row-band partitioning (PR 1's
// invariance property) makes each output row a function of that row's
// inputs only. The golden test in golden_test.go pins this.
//
// # Steady-state allocation
//
// After Start's warm-up pass at MaxBatch, the request hot path
// (replica.Infer, feeder.Read, and the net.Forward under them) performs
// no heap allocation: blob buffers are reused across dynamic batch sizes
// (capacity warmed at the maximum), request envelopes are pooled, and
// batch slices circulate through a free list. dnnlint's hotalloc
// analyzer enforces the loops of Infer/Read exactly like a training
// Forward pass (LINTING.md §4).
//
// # Backpressure
//
// Submit never blocks: when the queue is full the request is rejected
// with ErrOverloaded, which the HTTP layer maps to 429 + Retry-After.
// A bounded queue keeps worst-case latency proportional to
// QueueDepth/throughput instead of unbounded under overload.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/trace"
)

// Builder constructs a fresh copy of the model's layer specs over the
// given source. Each replica gets its own layer instances (layers hold
// per-pass scratch); parameter blobs are shared afterwards via
// net.ShareParamsWith. Training-tail layers in the result are stripped
// with StripTraining, so zoo builders can be used directly.
type Builder func(src layers.Source) ([]net.LayerSpec, error)

// Config assembles a Server.
type Config struct {
	// Build constructs the network over the serving input source.
	// Required.
	Build Builder
	// SampleShape is the per-sample input shape (channels, height,
	// width). Required.
	SampleShape []int
	// Classes is the number of output scores per sample. Required.
	Classes int
	// ScoreBlob names the network blob holding the per-sample class
	// scores (e.g. "ip2" for the zoo LeNet). Required.
	ScoreBlob string
	// Model is a display name reported by /v1/info.
	Model string

	// MaxBatch is the batch the batcher coalesces up to — the serving
	// analogue of the paper's band size. Default 32.
	MaxBatch int
	// MaxDelay bounds how long the oldest queued request waits for the
	// batch to fill before a deadline flush. Default 2ms.
	MaxDelay time.Duration
	// Replicas is the number of pre-warmed forward-only nets executing
	// batches. They share one copy of the weights. Default 1; more than
	// one only helps when batches overlap (multi-core hosts).
	Replicas int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrOverloaded. Default 4*MaxBatch.
	QueueDepth int

	// Tracer, when non-nil, records a PhaseServe batch span and one
	// request span per sample on the replica's rank shard. Create it
	// with trace.New(Replicas) or larger so every replica has a shard.
	Tracer *trace.Tracer
}

// Submission errors returned by Do.
var (
	// ErrOverloaded reports a full admission queue; the HTTP layer maps
	// it to 429 Too Many Requests with a Retry-After hint.
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrClosed reports a submission after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrNotStarted reports a submission before Start.
	ErrNotStarted = errors.New("serve: server not started")
)

// Request is one inference request: fill Input, pass it to Do, read
// Scores. Requests are pooled — Acquire one, Release it when the scores
// have been consumed, and do not retain either slice across Release.
type Request struct {
	in     []float32
	scores []float32
	done   chan struct{}
	enq    time.Time
}

// Input returns the request's input buffer (length = product of the
// server's SampleShape), to be filled before Do.
func (r *Request) Input() []float32 { return r.in }

// Scores returns the per-class scores filled in by Do.
func (r *Request) Scores() []float32 { return r.scores }

// Argmax returns the index of the highest score in scores.
func Argmax(scores []float32) int {
	best := 0
	for i, v := range scores {
		if v > scores[best] {
			best = i
		}
	}
	return best
}

// Server owns the admission queue, the batcher and the replica pool.
// Build with New, load weights with LoadSnapshot, then Start. All
// exported methods are safe for concurrent use once Start has returned.
type Server struct {
	cfg       Config
	sampleLen int

	queue    chan *Request
	dispatch chan []*Request
	free     chan []*Request
	replicas []*replica
	reqPool  sync.Pool

	mu          sync.RWMutex // guards closed/started against Submit's queue send
	closed      bool
	started     bool
	wg          sync.WaitGroup
	batcherDone chan struct{}

	received        atomic.Int64
	rejected        atomic.Int64
	served          atomic.Int64
	batches         atomic.Int64
	samples         atomic.Int64
	fullFlushes     atomic.Int64
	deadlineFlushes atomic.Int64
	latencyNS       atomic.Int64
}

// New assembles a server: builds Replicas forward-only nets over
// per-replica feeders, shares replica 0's weights into the others, and
// sizes the queue and batch free list. The server is idle until Start.
func New(cfg Config) (*Server, error) {
	if cfg.Build == nil {
		return nil, errors.New("serve: Config.Build is required")
	}
	if len(cfg.SampleShape) == 0 {
		return nil, errors.New("serve: Config.SampleShape is required")
	}
	if cfg.Classes <= 0 {
		return nil, errors.New("serve: Config.Classes must be positive")
	}
	if cfg.ScoreBlob == "" {
		return nil, errors.New("serve: Config.ScoreBlob is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	sampleLen := 1
	for _, d := range cfg.SampleShape {
		if d <= 0 {
			return nil, fmt.Errorf("serve: bad sample shape %v", cfg.SampleShape)
		}
		sampleLen *= d
	}
	s := &Server{
		cfg:         cfg,
		sampleLen:   sampleLen,
		queue:       make(chan *Request, cfg.QueueDepth),
		dispatch:    make(chan []*Request),
		free:        make(chan []*Request, cfg.Replicas+1),
		batcherDone: make(chan struct{}),
	}
	// One batch slice per replica plus one in the batcher's hands keeps
	// the free list from ever blocking a worker's return.
	for i := 0; i < cfg.Replicas+1; i++ {
		s.free <- make([]*Request, 0, cfg.MaxBatch)
	}
	for r := 0; r < cfg.Replicas; r++ {
		rep, err := newReplica(r, s)
		if err != nil {
			return nil, err
		}
		if r > 0 {
			if err := rep.net.ShareParamsWith(s.replicas[0].net); err != nil {
				return nil, fmt.Errorf("serve: replica %d: %w", r, err)
			}
		}
		s.replicas = append(s.replicas, rep)
	}
	s.reqPool.New = func() any {
		return &Request{
			in:     make([]float32, sampleLen),
			scores: make([]float32, cfg.Classes),
			done:   make(chan struct{}, 1),
		}
	}
	return s, nil
}

// SampleLen returns the flattened per-sample input length.
func (s *Server) SampleLen() int { return s.sampleLen }

// Config returns the (defaulted) configuration the server runs with.
func (s *Server) Config() Config { return s.cfg }

// LoadSnapshot restores trained coefficients into the shared weight set
// from a snapshot file (format v2, SNAPSHOT.md). Training-only sections
// (solver state, gradients) are ignored. Call before Start: replicas
// read the shared weights without synchronization.
func (s *Server) LoadSnapshot(path string) error {
	s.mu.RLock()
	started := s.started
	s.mu.RUnlock()
	if started {
		return errors.New("serve: LoadSnapshot after Start")
	}
	return snapshot.LoadNetFile(path, s.replicas[0].net)
}

// Start warms every replica with one full-size batch (so blob and GEMM
// scratch capacities reach their steady-state maximum and the request
// path allocates nothing afterwards), zeroes the warm-up out of the
// stats, and launches the batcher and replica workers.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()

	warm := make([]*Request, s.cfg.MaxBatch)
	for i := range warm {
		warm[i] = s.Acquire()
	}
	for _, rep := range s.replicas {
		rep.Infer(warm)
		for _, r := range warm {
			<-r.done
		}
	}
	for _, r := range warm {
		s.Release(r)
	}
	// Warm-up is not traffic: drop its spans and counters so exported
	// timelines and /v1/stats describe served requests only.
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.Reset()
	}
	s.resetStats()

	go s.batchLoop()
	for _, rep := range s.replicas {
		s.wg.Add(1)
		go s.replicaLoop(rep)
	}
}

// replicaLoop executes dispatched batches on one replica until the
// batcher closes the dispatch channel, recycling batch slices through
// the free list.
func (s *Server) replicaLoop(rep *replica) {
	defer s.wg.Done()
	for batch := range s.dispatch {
		rep.Infer(batch)
		s.free <- batch[:0]
	}
}

// Acquire returns a pooled request with Input and Scores sized for the
// model. Pair with Release.
func (s *Server) Acquire() *Request { return s.reqPool.Get().(*Request) }

// Release returns a request to the pool. The caller must be done with
// both Input and Scores.
func (s *Server) Release(r *Request) { s.reqPool.Put(r) }

// Do submits the request and blocks until its scores are filled. It
// returns without blocking when the server is overloaded
// (ErrOverloaded), closed (ErrClosed) or not yet started
// (ErrNotStarted).
func (s *Server) Do(r *Request) error {
	if err := s.submit(r); err != nil {
		return err
	}
	<-r.done
	return nil
}

// submit enqueues without blocking. The read lock spans the queue send
// so Close's close(s.queue) (taken under the write lock) can never race
// a send on the closed channel.
func (s *Server) submit(r *Request) error {
	r.enq = time.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if !s.started {
		return ErrNotStarted
	}
	select {
	case s.queue <- r:
		s.received.Add(1)
		return nil
	default:
		s.rejected.Add(1)
		return ErrOverloaded
	}
}

// Close drains and answers every admitted request, then stops the
// batcher and the replica workers. Subsequent submissions return
// ErrClosed. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	started := s.started
	if started {
		close(s.queue)
	}
	s.mu.Unlock()
	if !started {
		return
	}
	<-s.batcherDone
	s.wg.Wait()
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Received counts admitted requests; Rejected counts queue-full
	// rejections; Served counts completed requests.
	Received, Rejected, Served int64
	// Batches counts dispatched batches; Samples is the sum of their
	// sizes (equal to Served).
	Batches, Samples int64
	// FullFlushes counts batches flushed at MaxBatch; DeadlineFlushes
	// counts batches flushed by the MaxDelay timer.
	FullFlushes, DeadlineFlushes int64
	// MeanBatch is Samples/Batches.
	MeanBatch float64
	// MeanLatency is the mean queue-to-completion request latency.
	MeanLatency time.Duration
}

// Stats returns the current counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Received:        s.received.Load(),
		Rejected:        s.rejected.Load(),
		Served:          s.served.Load(),
		Batches:         s.batches.Load(),
		Samples:         s.samples.Load(),
		FullFlushes:     s.fullFlushes.Load(),
		DeadlineFlushes: s.deadlineFlushes.Load(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Samples) / float64(st.Batches)
	}
	if st.Served > 0 {
		st.MeanLatency = time.Duration(s.latencyNS.Load() / st.Served)
	}
	return st
}

func (s *Server) resetStats() {
	s.received.Store(0)
	s.rejected.Store(0)
	s.served.Store(0)
	s.batches.Store(0)
	s.samples.Store(0)
	s.fullFlushes.Store(0)
	s.deadlineFlushes.Store(0)
	s.latencyNS.Store(0)
}

// StripTraining removes trailing training-only layers (SoftmaxWithLoss,
// EuclideanLoss, Accuracy) from specs, leaving the raw score blob as the
// network output — serving returns scores, softmax being monotone the
// argmax is unchanged and callers wanting probabilities can normalize
// client-side. Zoo builders compose directly: StripTraining(zoo.LeNet(...)).
func StripTraining(specs []net.LayerSpec) []net.LayerSpec {
	for len(specs) > 0 {
		switch specs[len(specs)-1].Layer.Type() {
		case "SoftmaxWithLoss", "EuclideanLoss", "Accuracy":
			specs = specs[:len(specs)-1]
		default:
			return specs
		}
	}
	return specs
}
