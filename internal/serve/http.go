package serve

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/predict  JSON in/out (one input or a small list)
//	POST /v1/tensor   raw little-endian f32 tensors in/out
//	GET  /healthz     liveness
//	GET  /v1/info     model and batcher configuration
//	GET  /v1/stats    counters (Stats)
//
// SERVING.md documents the request/response schemas. Overload maps to
// 429 with a Retry-After hint; shutdown to 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/tensor", s.handleTensor)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// predictIn is the /v1/predict request body: exactly one of Input (a
// single sample) or Inputs (up to MaxBatch samples), each flattened to
// SampleLen floats.
type predictIn struct {
	Input  []float32   `json:"input,omitempty"`
	Inputs [][]float32 `json:"inputs,omitempty"`
}

// predictOut is the /v1/predict response body: one score row and one
// argmax per input, in order.
type predictOut struct {
	Scores [][]float32 `json:"scores"`
	Argmax []int       `json:"argmax"`
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// submitError maps a Do error onto the HTTP response, setting
// Retry-After on overload so well-behaved clients back off.
func submitError(w http.ResponseWriter, err error) {
	switch err {
	case ErrOverloaded:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	case ErrClosed, ErrNotStarted:
		writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var in predictIn
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(16+12*(s.cfg.MaxBatch+1)*s.sampleLen)))
	if err := dec.Decode(&in); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad JSON: " + err.Error()})
		return
	}
	inputs := in.Inputs
	if in.Input != nil {
		if inputs != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: `use "input" or "inputs", not both`})
			return
		}
		inputs = [][]float32{in.Input}
	}
	if len(inputs) == 0 {
		writeJSON(w, http.StatusBadRequest, httpError{Error: `missing "input" or "inputs"`})
		return
	}
	if len(inputs) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, httpError{
			Error: "too many inputs in one call (max " + strconv.Itoa(s.cfg.MaxBatch) + "); issue concurrent calls instead",
		})
		return
	}
	for i, one := range inputs {
		if len(one) != s.sampleLen {
			writeJSON(w, http.StatusBadRequest, httpError{
				Error: "input " + strconv.Itoa(i) + " has " + strconv.Itoa(len(one)) + " values, want " + strconv.Itoa(s.sampleLen),
			})
			return
		}
	}
	reqs, err := s.doAll(inputs, func(dst []float32, i int) { copy(dst, inputs[i]) })
	if err != nil {
		submitError(w, err)
		return
	}
	out := predictOut{Scores: make([][]float32, len(reqs)), Argmax: make([]int, len(reqs))}
	for i, req := range reqs {
		out.Scores[i] = append([]float32(nil), req.scores...)
		out.Argmax[i] = Argmax(req.scores)
		s.Release(req)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTensor is the raw-tensor endpoint: the body is k samples of
// SampleLen little-endian float32s back to back (k ≤ MaxBatch inferred
// from the body length); the response is k rows of Classes float32s in
// the same encoding, with X-Batch and X-Classes headers.
func (s *Server) handleTensor(w http.ResponseWriter, r *http.Request) {
	sampleBytes := 4 * s.sampleLen
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxBatch*sampleBytes)+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "body too large or unreadable: " + err.Error()})
		return
	}
	if len(body) == 0 || len(body)%sampleBytes != 0 {
		writeJSON(w, http.StatusBadRequest, httpError{
			Error: "body length " + strconv.Itoa(len(body)) + " is not a positive multiple of " + strconv.Itoa(sampleBytes) +
				" (SampleLen " + strconv.Itoa(s.sampleLen) + " × 4 bytes)",
		})
		return
	}
	k := len(body) / sampleBytes
	reqs, err := s.doAll(make([][]float32, k), func(dst []float32, i int) {
		raw := body[i*sampleBytes:]
		for j := range dst {
			dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
		}
	})
	if err != nil {
		submitError(w, err)
		return
	}
	out := make([]byte, 4*k*s.cfg.Classes)
	for i, req := range reqs {
		for j, v := range req.scores {
			binary.LittleEndian.PutUint32(out[4*(i*s.cfg.Classes+j):], math.Float32bits(v))
		}
		s.Release(req)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Batch", strconv.Itoa(k))
	w.Header().Set("X-Classes", strconv.Itoa(s.cfg.Classes))
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// doAll acquires one request per input, stages inputs via fill, submits
// them all (so samples from one HTTP call can share a batch), then
// waits. On a submission error the already-submitted requests are
// drained before everything is released, so no request leaks into the
// pool while still in flight.
func (s *Server) doAll(inputs [][]float32, fill func(dst []float32, i int)) ([]*Request, error) {
	reqs := make([]*Request, len(inputs))
	for i := range inputs {
		reqs[i] = s.Acquire()
		fill(reqs[i].in, i)
	}
	for i, req := range reqs {
		if err := s.submit(req); err != nil {
			for _, prev := range reqs[:i] {
				<-prev.done
			}
			for _, r := range reqs {
				s.Release(r)
			}
			return nil, err
		}
	}
	for _, req := range reqs {
		<-req.done
	}
	return reqs, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"model":        s.cfg.Model,
		"sample_shape": s.cfg.SampleShape,
		"sample_len":   s.sampleLen,
		"classes":      s.cfg.Classes,
		"score_blob":   s.cfg.ScoreBlob,
		"max_batch":    s.cfg.MaxBatch,
		"max_delay_ms": float64(s.cfg.MaxDelay.Microseconds()) / 1000,
		"replicas":     s.cfg.Replicas,
		"queue_depth":  s.cfg.QueueDepth,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"received":         st.Received,
		"rejected":         st.Rejected,
		"served":           st.Served,
		"batches":          st.Batches,
		"samples":          st.Samples,
		"full_flushes":     st.FullFlushes,
		"deadline_flushes": st.DeadlineFlushes,
		"mean_batch":       st.MeanBatch,
		"mean_latency_ms":  float64(st.MeanLatency.Microseconds()) / 1000,
	})
}
