package serve

import "time"

// batchLoop is the single consumer of the admission queue. Its state
// machine has two modes:
//
//   - idle: block on the queue; the first arrival starts a batch and
//     arms the deadline timer.
//   - collecting: accept further arrivals until the batch reaches
//     MaxBatch (full flush) or the timer fires (deadline flush), then
//     hand the batch to a replica worker and return to idle.
//
// A flush blocks on the free list when every replica is busy — that is
// the intended backpressure chain: busy replicas → batcher stalls →
// queue fills → Submit rejects with ErrOverloaded.
//
// Closing the queue (Close) flushes the partial batch and closes the
// dispatch channel, so every admitted request is answered before Close
// returns.
func (s *Server) batchLoop() {
	defer close(s.batcherDone)
	defer close(s.dispatch)
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	batch := <-s.free
	for {
		r, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch, r)
		if len(batch) == s.cfg.MaxBatch {
			s.fullFlushes.Add(1)
			batch = s.flush(batch)
			continue
		}
		timer.Reset(s.cfg.MaxDelay)
		flushed := false
		for !flushed {
			select {
			case r2, ok2 := <-s.queue:
				if !ok2 {
					stopTimer(timer)
					s.deadlineFlushes.Add(1)
					s.flush(batch)
					return
				}
				batch = append(batch, r2)
				if len(batch) == s.cfg.MaxBatch {
					stopTimer(timer)
					s.fullFlushes.Add(1)
					batch = s.flush(batch)
					flushed = true
				}
			case <-timer.C:
				s.deadlineFlushes.Add(1)
				batch = s.flush(batch)
				flushed = true
			}
		}
	}
}

// flush hands the batch to a replica worker and takes a fresh slice
// from the free list (blocking until a worker returns one — the
// backpressure stall described on batchLoop).
func (s *Server) flush(batch []*Request) []*Request {
	s.dispatch <- batch
	next := <-s.free
	return next[:0]
}

// stopTimer stops t and drains a pending fire so the next Reset arms
// cleanly (the time.Timer reuse idiom).
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}
