package serve

import (
	"sync"
	"testing"
	"time"

	"coarsegrain/internal/trace"
)

// TestGoldenBatchedMatchesSerial is the serving determinism contract:
// scores computed inside a coalesced batch are bit-identical to the
// same sample's scores from a batch-of-1 server. The property rests on
// per-sample independence of every serving-path layer plus the blocked
// GEMM's row-band invariance (PR 1), so any future layer or kernel
// change that breaks row independence fails here first.
func TestGoldenBatchedMatchesSerial(t *testing.T) {
	serial := newTestServer(t, testConfig(1, time.Millisecond))
	serial.Start()
	const n = 8
	want := make([][]float32, n)
	for i := 0; i < n; i++ {
		want[i] = doSample(t, serial, i)
	}

	batched := newTestServer(t, testConfig(n, time.Hour))
	batched.Start()
	got := make([][]float32, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			got[id] = doSample(t, batched, id)
		}(i)
	}
	wg.Wait()
	if st := batched.Stats(); st.FullFlushes != 1 || st.MeanBatch != n {
		t.Fatalf("expected one full batch of %d, got stats %+v", n, st)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("sample %d score %d: batched %g != serial %g (bit-identity broken)",
					i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestServeTraceSpans checks the latency observability: each dispatched
// batch records one PhaseServe batch span and one request span per
// sample on the executing replica's rank shard.
func TestServeTraceSpans(t *testing.T) {
	cfg := testConfig(4, time.Hour)
	cfg.Replicas = 2
	cfg.Tracer = trace.New(cfg.Replicas)
	s := newTestServer(t, cfg)
	s.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			doSample(t, s, id)
		}(i)
	}
	wg.Wait()
	s.Close() // join workers so the shard read below is safe
	var batchSpans, reqSpans int
	for _, sp := range cfg.Tracer.Snapshot() {
		if sp.Phase != trace.PhaseServe {
			continue
		}
		if sp.Rank < 0 || sp.Rank >= cfg.Replicas {
			t.Fatalf("serve span on rank %d, want 0..%d", sp.Rank, cfg.Replicas-1)
		}
		switch sp.Name {
		case "batch":
			batchSpans++
			if sp.Lo != 0 || sp.Hi < 1 || sp.Hi > 4 {
				t.Fatalf("batch span range [%d,%d)", sp.Lo, sp.Hi)
			}
		case "request":
			reqSpans++
			if sp.Dur <= 0 {
				t.Fatalf("request span with non-positive latency %v", sp.Dur)
			}
		}
	}
	if batchSpans != 1 || reqSpans != 4 {
		t.Fatalf("spans: %d batch + %d request, want 1 + 4", batchSpans, reqSpans)
	}
}
