//go:build !race

// The race detector's instrumentation allocates, so the zero-alloc
// steady-state check only runs in normal test passes; the same code
// paths are race-checked by the rest of the suite.

package serve

import (
	"testing"
	"time"
)

// TestSteadyStateAllocationFree measures the whole request path —
// submit, batch, Infer, response — after warm-up. The serving design
// note (SERVING.md) promises zero steady-state allocation; the pooled
// envelopes, free-listed batch slices and capacity-warmed blobs are
// what make this hold.
func TestSteadyStateAllocationFree(t *testing.T) {
	s := newTestServer(t, testConfig(4, 200*time.Microsecond))
	s.Start()
	r := s.Acquire()
	defer s.Release(r)
	fillSample(r.Input(), 1)
	for i := 0; i < 8; i++ { // settle pools and timer paths
		if err := s.Do(r); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.Do(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state request path allocates %.1f objects per request, want 0", allocs)
	}
}
