// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (Figures 4-9 plus the §3.2.1
// memory numbers and the convergence-invariance claim) from this
// repository's implementation. See DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-reproduction results.
//
// Each experiment runs the *real* network (real layers, real engines) to
// measure single-thread per-layer costs, then evaluates parallel
// executions two ways:
//
//   - measured: actual goroutine teams timed with the wall clock —
//     meaningful on a multi-core host;
//   - modeled: the simtime analytic model driven by the measured serial
//     costs and the layers' true iteration extents — the documented
//     substitution for the paper's 16-core Xeon (DESIGN.md §4.1).
package bench

import (
	"fmt"
	"time"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/simtime"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

// Options configures an experiment run.
type Options struct {
	// Net selects the benchmark: "mnist" (LeNet) or "cifar"
	// (CIFAR-10-full).
	Net string
	// Batch overrides the Caffe default batch (64 MNIST / 100 CIFAR).
	Batch int
	// Samples sizes the synthetic dataset (default 4*batch).
	Samples int
	// Iterations is how many timed iterations the measurement averages
	// over (default 3).
	Iterations int
	// Warmup iterations excluded from timing (default 1).
	Warmup int
	// Threads lists the worker counts to evaluate (default the paper's
	// 1, 2, 4, 8, 12, 16).
	Threads []int
	// Seed drives weights and synthetic data.
	Seed uint64
	// DataDir, when set, is searched for the real MNIST/CIFAR files;
	// synthetic data is used otherwise.
	DataDir string
	// Measure additionally times real parallel engine runs at each
	// thread count (only meaningful on a multi-core host).
	Measure bool
	// Machine overrides the modeled hardware (DefaultMachine otherwise).
	Machine *simtime.Machine
}

func (o *Options) normalize() error {
	switch o.Net {
	case "", "mnist", "lenet":
		o.Net = "mnist"
	case "cifar", "cifar10", "cifar10-full":
		o.Net = "cifar"
	default:
		return fmt.Errorf("bench: unknown net %q", o.Net)
	}
	if o.Batch == 0 {
		if o.Net == "mnist" {
			o.Batch = 64
		} else {
			o.Batch = 100
		}
	}
	if o.Samples == 0 {
		o.Samples = 4 * o.Batch
	}
	if o.Iterations == 0 {
		o.Iterations = 3
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8, 12, 16}
	}
	if o.Machine == nil {
		m := simtime.DefaultMachine()
		o.Machine = &m
	}
	return nil
}

// sourceFor returns the benchmark's data source (real files when present,
// synthetic otherwise).
func sourceFor(o Options) layers.Source {
	if o.Net == "mnist" {
		src, _ := data.LoadMNIST(o.DataDir, o.Samples, o.Seed)
		return src
	}
	src, _ := data.LoadCIFAR10(o.DataDir, o.Samples, o.Seed)
	return src
}

// buildNet constructs the selected benchmark network with a fresh source.
func buildNet(o Options, eng core.Engine) (*net.Net, error) {
	specs, err := zoo.Build(o.Net, sourceFor(o), zoo.Options{BatchSize: o.Batch, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	return net.New(specs, eng)
}

// solverFor returns the Caffe solver configuration of the benchmark.
func solverFor(o Options) solver.Config {
	if o.Net == "mnist" {
		return zoo.LeNetSolver()
	}
	return zoo.CIFARFullSolver()
}

// MeasureSerial runs the network under the sequential engine and returns
// the net plus a recorder holding mean per-layer forward/backward times.
func MeasureSerial(o Options) (*net.Net, *profile.Recorder, error) {
	if err := o.normalize(); err != nil {
		return nil, nil, err
	}
	n, err := buildNet(o, core.NewSequential())
	if err != nil {
		return nil, nil, err
	}
	rec := profile.NewRecorder()
	for i := 0; i < o.Warmup; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
	n.SetRecorder(rec)
	for i := 0; i < o.Iterations; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
	n.SetRecorder(nil)
	return n, rec, nil
}

// MeasureEngine times full iterations of the network under an arbitrary
// engine, returning the recorder (per-layer) and the mean iteration time.
func MeasureEngine(o Options, eng core.Engine) (*profile.Recorder, time.Duration, error) {
	if err := o.normalize(); err != nil {
		return nil, 0, err
	}
	n, err := buildNet(o, eng)
	if err != nil {
		return nil, 0, err
	}
	rec := profile.NewRecorder()
	for i := 0; i < o.Warmup; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
	n.SetRecorder(rec)
	start := time.Now()
	for i := 0; i < o.Iterations; i++ {
		n.ZeroParamDiffs()
		n.ForwardBackward()
	}
	mean := time.Since(start) / time.Duration(o.Iterations)
	return rec, mean, nil
}

// classifyDist maps a layer to its data-thread distribution class, the
// quantity behind the paper's locality analysis: the data layer writes
// sequentially; sample-coalesced layers (LRN, InnerProduct, losses)
// distribute whole samples; everything else distributes (sample, channel)
// planes.
func classifyDist(l layers.Layer, batch int) simtime.Dist {
	ext := l.ForwardExtent()
	switch {
	case ext == 0:
		return simtime.DistSequential
	case ext == batch:
		return simtime.DistSamples
	default:
		return simtime.DistPlanes
	}
}

// ModelsFromNet builds the analytic model inputs from a real network and
// its measured serial per-layer times — the layer extents, parameter
// counts and distribution classes come from the live layer objects, not
// from assumptions.
func ModelsFromNet(n *net.Net, rec *profile.Recorder, batch int) []simtime.LayerModel {
	var out []simtime.LayerModel
	for _, l := range n.Layers() {
		params := 0
		for _, p := range l.Params() {
			params += p.Count()
		}
		d := classifyDist(l, batch)
		out = append(out, simtime.LayerModel{
			Name:        l.Name(),
			FwdSerialUS: float64(rec.Mean(l.Name(), profile.Forward).Nanoseconds()) / 1000,
			BwdSerialUS: float64(rec.Mean(l.Name(), profile.Backward).Nanoseconds()) / 1000,
			FwdExtent:   l.ForwardExtent(),
			BwdExtent:   l.BackwardExtent(),
			ParamElems:  params,
			Consumes:    d,
			Produces:    d,
		})
	}
	return out
}
