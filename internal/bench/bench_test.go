package bench

import (
	"bytes"
	"strings"
	"testing"

	"coarsegrain/internal/profile"
)

// fastMNIST returns options sized so the experiments run in test time.
func fastMNIST() Options {
	return Options{Net: "mnist", Batch: 64, Samples: 128, Iterations: 1, Warmup: 1, Seed: 1}
}

func fastCIFAR() Options {
	return Options{Net: "cifar", Batch: 16, Samples: 32, Iterations: 1, Warmup: 1, Seed: 1}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	if o.Net != "mnist" || o.Batch != 64 || len(o.Threads) != 6 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	o2 := Options{Net: "cifar10-full"}
	if err := o2.normalize(); err != nil {
		t.Fatal(err)
	}
	if o2.Net != "cifar" || o2.Batch != 100 {
		t.Fatalf("cifar defaults wrong: %+v", o2)
	}
	bad := Options{Net: "alexnet"}
	if err := bad.normalize(); err == nil {
		t.Fatal("unknown net accepted")
	}
}

func TestMeasureSerialRecordsEveryLayer(t *testing.T) {
	n, rec, err := MeasureSerial(fastMNIST())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Layers()) != len(n.Layers()) {
		t.Fatalf("recorded %d of %d layers", len(rec.Layers()), len(n.Layers()))
	}
	// The paper's Figure 4 observation: convolutional layers dominate.
	if rec.Mean("conv1", profile.Forward) == 0 {
		t.Fatal("conv1 forward not timed")
	}
}

// Paper §4.1.1: "convolutional and pooling layers always account for
// almost 80% of total execution time".
func TestConvAndPoolDominate(t *testing.T) {
	_, rec, err := MeasureSerial(fastMNIST())
	if err != nil {
		t.Fatal(err)
	}
	total := float64(rec.TotalMean())
	var convPool float64
	for _, l := range []string{"conv1", "conv2", "pool1", "pool2"} {
		convPool += float64(rec.Mean(l, profile.Forward) + rec.Mean(l, profile.Backward))
	}
	if frac := convPool / total; frac < 0.6 {
		t.Fatalf("conv+pool account for only %.0f%% of iteration time", frac*100)
	}
	dom := DominatingLayers(rec, 0.6)
	if len(dom) == 0 || len(dom) > 5 {
		t.Fatalf("dominating layers: %v", dom)
	}
}

func TestModelsFromNetStructure(t *testing.T) {
	o := fastMNIST()
	n, rec, err := MeasureSerial(o)
	if err != nil {
		t.Fatal(err)
	}
	models := ModelsFromNet(n, rec, o.Batch)
	if len(models) != 9 {
		t.Fatalf("LeNet models: %d", len(models))
	}
	byName := map[string]int{}
	for i, m := range models {
		byName[m.Name] = i
	}
	// Data layer: sequential, extent 0.
	d := models[byName["mnist"]]
	if d.FwdExtent != 0 || d.Consumes != "sequential" {
		t.Fatalf("data model wrong: %+v", d)
	}
	// conv1: planes, fwd extent 64*20, bwd extent 64, params 20*25+20.
	c := models[byName["conv1"]]
	if c.FwdExtent != 64*20 || c.BwdExtent != 64 || c.ParamElems != 20*25+20 || c.Consumes != "planes" {
		t.Fatalf("conv1 model wrong: %+v", c)
	}
	// ip1: sample distribution.
	ip := models[byName["ip1"]]
	if ip.Consumes != "samples" || ip.FwdExtent != 64 {
		t.Fatalf("ip1 model wrong: %+v", ip)
	}
	// loss has positive serial times.
	if models[byName["loss"]].FwdSerialUS <= 0 {
		t.Fatal("loss forward time missing")
	}
}

func TestPerLayerTimesFigure4Shape(t *testing.T) {
	res, err := PerLayerTimes(fastMNIST())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != 9 {
		t.Fatalf("layers: %v", res.Layers)
	}
	// Iteration time must shrink monotonically with threads up to the
	// socket boundary.
	if !(res.Total(8) < res.Total(4) && res.Total(4) < res.Total(2) && res.Total(2) < res.Total(1)) {
		t.Fatalf("totals not decreasing: %v %v %v %v",
			res.Total(1), res.Total(2), res.Total(4), res.Total(8))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"conv1", "pool2", "weight", "8 thread"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPerLayerScalabilityUShape(t *testing.T) {
	o := fastMNIST()
	o.Iterations = 3 // average out measurement noise (this test also runs
	// inside `go test -bench` where the host is saturated)
	res, err := PerLayerScalability(o)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 5: conv layers scale well; the loss layer barely
	// scales; at 16 threads the contrast is maximal.
	conv := res.FwdSpeedup[16]["conv2"]
	loss := res.FwdSpeedup[16]["loss"]
	if conv < 8 {
		t.Fatalf("conv2 fwd speedup at 16 threads = %v, want >= 8", conv)
	}
	if loss > conv/2 {
		t.Fatalf("loss layer scales too well (%v vs conv %v) — u-shape lost", loss, conv)
	}
	// ip1's backward saturates around 8 threads (paper: 5.93x at 8, no
	// improvement beyond).
	ip8 := res.BwdSpeedup[8]["ip1"]
	ip16 := res.BwdSpeedup[16]["ip1"]
	if ip16 > ip8*2.2 {
		t.Fatalf("ip1 bwd keeps scaling: %v @8 -> %v @16", ip8, ip16)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "conv1") {
		t.Fatal("render missing layers")
	}
}

func TestOverallFigure6Shape(t *testing.T) {
	res, err := Overall(fastMNIST())
	if err != nil {
		t.Fatal(err)
	}
	// Paper headline: ~6x at 8 threads, ~8x at 16.
	s8, s16 := res.CoarseModeled[8], res.CoarseModeled[16]
	if s8 < 4.5 || s8 > 8.5 {
		t.Fatalf("coarse speedup @8 = %v, want ~6", s8)
	}
	if s16 < 6.5 || s16 > 11 {
		t.Fatalf("coarse speedup @16 = %v, want ~8", s16)
	}
	if s16 <= s8 {
		t.Fatalf("no gain from 8 to 16 threads: %v -> %v", s8, s16)
	}
	// Paper: plain-GPU ~2x on MNIST — the coarse CPU version beats it.
	if res.PlainGPU > s8 {
		t.Fatalf("plain GPU (%v) should lose to coarse@8 (%v) on MNIST", res.PlainGPU, s8)
	}
	if res.PlainGPU < 1 || res.PlainGPU > 4 {
		t.Fatalf("plain GPU speedup = %v, want ~2", res.PlainGPU)
	}
	// Paper: cuDNN ~12x — it beats the coarse version.
	if res.CuDNNGPU < s16 {
		t.Fatalf("cuDNN (%v) should beat coarse@16 (%v)", res.CuDNNGPU, s16)
	}
	if res.CuDNNGPU < 8 || res.CuDNNGPU > 20 {
		t.Fatalf("cuDNN speedup = %v, want ~12", res.CuDNNGPU)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "cuDNN-GPU") {
		t.Fatal("render missing GPU lines")
	}
}

func TestOverallFigure9Shape(t *testing.T) {
	res, err := Overall(fastCIFAR())
	if err != nil {
		t.Fatal(err)
	}
	s8, s16 := res.CoarseModeled[8], res.CoarseModeled[16]
	// Paper: ~6x at 8, 8.83x at 16 for CIFAR-10.
	if s8 < 4.5 || s8 > 8.5 {
		t.Fatalf("cifar coarse @8 = %v", s8)
	}
	if s16 < 6.5 || s16 > 11 {
		t.Fatalf("cifar coarse @16 = %v", s16)
	}
	// Paper: cuDNN delivers ~27x on CIFAR — far beyond everything else.
	if res.CuDNNGPU < 18 {
		t.Fatalf("cifar cuDNN = %v, want ~27", res.CuDNNGPU)
	}
	if res.CuDNNGPU <= res.PlainGPU {
		t.Fatalf("cuDNN (%v) must beat plain GPU (%v)", res.CuDNNGPU, res.PlainGPU)
	}
}

func TestMemoryOverheadExperiment(t *testing.T) {
	o := fastMNIST()
	o.Threads = []int{1, 4, 16}
	res, err := Memory(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.NetBytes <= 0 {
		t.Fatal("net bytes missing")
	}
	// Privatization grows with workers; 1 worker needs none.
	if res.ScratchBytes[1] != 0 {
		t.Fatalf("1-worker scratch = %d, want 0", res.ScratchBytes[1])
	}
	if !(res.ScratchBytes[16] > res.ScratchBytes[4]) {
		t.Fatalf("scratch not growing: %v", res.ScratchBytes)
	}
	// The steady-state bound of §3.2.1: scratch is reused across layers,
	// so the total is workers x (largest layer's coefficients), not the
	// sum over layers. LeNet's largest layer is ip1 (500x800 + 500).
	maxParams := int64(500*800 + 500)
	bound := 16 * maxParams * 4 * 11 / 10 // 10% slack for the bias blob rounding
	if res.ScratchBytes[16] > bound {
		t.Fatalf("scratch %d exceeds reuse bound %d — arena not reusing across layers",
			res.ScratchBytes[16], bound)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "scratch") {
		t.Fatal("render missing scratch lines")
	}
}

func TestConvergenceExperiment(t *testing.T) {
	o := fastMNIST()
	o.Batch = 16
	o.Samples = 64
	o.Threads = []int{1, 4}
	res, err := Convergence(o, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeqTrace) != 10 {
		t.Fatalf("trace length %d", len(res.SeqTrace))
	}
	if res.MaxRelDeviation[4] > 1e-3 {
		t.Fatalf("coarse trace deviates by %v", res.MaxRelDeviation[4])
	}
	if !res.Deterministic[4] {
		t.Fatal("coarse training not deterministic at fixed worker count")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "deterministic") {
		t.Fatal("render missing determinism line")
	}
}

func TestAblationExperiment(t *testing.T) {
	o := fastMNIST()
	o.Threads = []int{2, 8, 16}
	res, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	// Ordered merge cost grows linearly with workers, tree ~log.
	if !(res.ReductionOrderedUS[16] > res.ReductionTreeUS[16]) {
		t.Fatalf("ordered (%v) should cost more than tree (%v) at 16 workers",
			res.ReductionOrderedUS[16], res.ReductionTreeUS[16])
	}
	// Coalescing must help (or at least not hurt) at every thread count,
	// and strictly help where ceil imbalance bites (12 is not in this
	// list; 16 divides 64 evenly for the sample loop, so compare at 16
	// via the conv forward extent 1280 vs 64: both divide evenly -> equal
	// compute, but pool extents 64*20=1280 too... assert >=).
	for _, th := range res.Threads {
		if res.CoalescedSpeedup[th] < res.UncoalescedSpeedup[th]-1e-9 {
			t.Fatalf("coalescing hurts at %d threads: %v vs %v",
				th, res.CoalescedSpeedup[th], res.UncoalescedSpeedup[th])
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "coalesc") {
		t.Fatal("render missing coalescing lines")
	}
}

func TestAblationCoalescingHelpsAtRaggedThreadCounts(t *testing.T) {
	o := fastMNIST()
	o.Threads = []int{12} // 64 samples / 12 threads -> ceil 6 vs 5.33
	res, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoalescedSpeedup[12] <= res.UncoalescedSpeedup[12] {
		t.Fatalf("coalescing should strictly win at 12 threads: %v vs %v",
			res.CoalescedSpeedup[12], res.UncoalescedSpeedup[12])
	}
}

func TestMeasureModeFillsWallClock(t *testing.T) {
	o := fastMNIST()
	o.Threads = []int{1, 2}
	o.Measure = true
	res, err := Overall(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.CoarseMeasured[2]; !ok {
		t.Fatal("measured mode did not record wall-clock speedup")
	}
	if res.FineMeasured <= 0 || res.TunedMeasured <= 0 {
		t.Fatal("fine/tuned engines not measured")
	}
}

func TestEngineComparison(t *testing.T) {
	o := fastMNIST()
	o.Threads = []int{2}
	res, err := EngineComparison(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeanIterUS <= 0 {
			t.Fatalf("%s: no time measured", row.Name)
		}
		if row.Loss <= 0 {
			t.Fatalf("%s: loss %v", row.Name, row.Loss)
		}
	}
	// All configurations compute (nearly) the same function.
	base := res.Rows[0].Loss
	for _, row := range res.Rows[1:] {
		rel := (row.Loss - base) / base
		if rel > 1e-3 || rel < -1e-3 {
			t.Fatalf("%s: loss %v deviates from %v", row.Name, row.Loss, base)
		}
	}
	// The lowered convolution is an algorithmic win even on one core.
	var direct, lowered float64
	for _, row := range res.Rows {
		switch row.Name {
		case "sequential/direct-conv":
			direct = row.MeanIterUS
		case "sequential/lowered-conv":
			lowered = row.MeanIterUS
		}
	}
	if lowered >= direct {
		t.Fatalf("lowered conv (%v us) not faster than direct (%v us)", lowered, direct)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "tuned") {
		t.Fatal("render missing rows")
	}
}

func TestGemmKernelsReportsEveryShape(t *testing.T) {
	for _, netName := range []string{"mnist", "cifar"} {
		res, err := GemmKernels(Options{Net: netName, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Shapes) == 0 || len(res.RefMFLOPS) != len(res.Shapes) || len(res.BlockedMFLOPS) != len(res.Shapes) {
			t.Fatalf("%s: ragged result: %d shapes, %d ref, %d blocked",
				netName, len(res.Shapes), len(res.RefMFLOPS), len(res.BlockedMFLOPS))
		}
		for i, s := range res.Shapes {
			if res.RefMFLOPS[i] <= 0 || res.BlockedMFLOPS[i] <= 0 {
				t.Fatalf("%s/%s: non-positive throughput", netName, s.Name)
			}
		}
		var buf bytes.Buffer
		res.Render(&buf)
		if !strings.Contains(buf.String(), "conv1-fwd") {
			t.Fatalf("%s: render missing shapes:\n%s", netName, buf.String())
		}
	}
}

func TestCommFigureShape(t *testing.T) {
	o := Options{Net: "mnist", Batch: 8, Samples: 16, Iterations: 2, Warmup: 1, Seed: 1}
	res, err := Comm(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("want 6 topology x wire rows, got %d", len(res.Rows))
	}
	byKey := map[string]CommRow{}
	for _, r := range res.Rows {
		if r.GradBytesPerIter <= 0 || r.StepUS <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		byKey[r.Topology+"/"+r.Wire] = r
	}
	for _, topo := range []string{"tree", "ring"} {
		f32 := byKey[topo+"/f32"]
		int8 := byKey[topo+"/int8"]
		if ratio := float64(f32.GradBytesPerIter) / float64(int8.GradBytesPerIter); ratio < 3.5 {
			t.Errorf("%s: int8 reduction %.2fx < 3.5x", topo, ratio)
		}
	}
	// The relay ring's determinism price: more gradient bytes than the
	// tree at the same wire format (k/2 vs (k-1)/k of the gradient per
	// link at k=4).
	if byKey["ring/f32"].GradBytesPerIter <= byKey["tree/f32"].GradBytesPerIter {
		t.Errorf("ring f32 bytes %d not above tree f32 %d",
			byKey["ring/f32"].GradBytesPerIter, byKey["tree/f32"].GradBytesPerIter)
	}
	var buf strings.Builder
	res.Render(&buf)
	if out := buf.String(); !strings.Contains(out, "ring") || !strings.Contains(out, "int8") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}
