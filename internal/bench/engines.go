package bench

import (
	"fmt"
	"io"
	"time"

	"coarsegrain/internal/core"
	"coarsegrain/internal/net"
	"coarsegrain/internal/zoo"
)

// EngineRow is one measured configuration in the engine comparison.
type EngineRow struct {
	Name string
	// MeanIterUS is the measured wall-clock mean of one full training
	// iteration (forward + backward).
	MeanIterUS float64
	// Loss is the iteration loss, to confirm the configurations compute
	// the same function.
	Loss float64
}

// EngineComparisonResult is the measured (wall-clock) comparison of every
// execution strategy on this host — the single experiment that remains
// fully *measured* even without the paper's hardware, because two of the
// contrasts (direct vs lowered convolution, plain vs tuned kernels) are
// algorithmic, not thread-count, effects.
type EngineComparisonResult struct {
	Net  string
	Rows []EngineRow
}

// Render prints the comparison with speedups over the first row.
func (r *EngineComparisonResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s measured engine comparison (this host) ==\n", r.Net)
	if len(r.Rows) == 0 {
		return
	}
	base := r.Rows[0].MeanIterUS
	fmt.Fprintf(w, "%-24s %14s %10s %12s\n", "configuration", "iter (us)", "speedup", "loss")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %14.0f %9.2fx %12.6f\n", row.Name, row.MeanIterUS, base/row.MeanIterUS, row.Loss)
	}
}

// EngineComparison measures one training iteration of the benchmark under
// every engine, plus the lowered-convolution variant of the coarse engine.
func EngineComparison(o Options) (*EngineComparisonResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	workers := maxInt(o.Threads)
	type cfg struct {
		name    string
		engine  func() core.Engine
		lowered bool
	}
	cfgs := []cfg{
		{"sequential/direct-conv", func() core.Engine { return core.NewSequential() }, false},
		{"sequential/lowered-conv", func() core.Engine { return core.NewSequential() }, true},
		{fmt.Sprintf("coarse/%d/direct-conv", workers), func() core.Engine { return core.NewCoarse(workers) }, false},
		{fmt.Sprintf("coarse/%d/lowered-conv", workers), func() core.Engine { return core.NewCoarse(workers) }, true},
		{fmt.Sprintf("fine/%d", workers), func() core.Engine { return core.NewFine(workers) }, false},
		{fmt.Sprintf("tuned/%d", workers), func() core.Engine { return core.NewTuned(workers) }, false},
	}
	res := &EngineComparisonResult{Net: o.Net}
	for _, c := range cfgs {
		eng := c.engine()
		n, err := buildNetVariant(o, eng, c.lowered)
		if err != nil {
			eng.Close()
			return nil, err
		}
		for i := 0; i < o.Warmup; i++ {
			n.ZeroParamDiffs()
			n.ForwardBackward()
		}
		start := time.Now()
		var loss float64
		for i := 0; i < o.Iterations; i++ {
			n.ZeroParamDiffs()
			loss = n.ForwardBackward()
		}
		mean := time.Since(start) / time.Duration(o.Iterations)
		eng.Close()
		res.Rows = append(res.Rows, EngineRow{
			Name:       c.name,
			MeanIterUS: float64(mean.Microseconds()),
			Loss:       loss,
		})
	}
	return res, nil
}

// buildNetVariant is buildNet with control over the conv implementation.
func buildNetVariant(o Options, eng core.Engine, lowered bool) (*net.Net, error) {
	src := sourceFor(o)
	specs, err := zoo.Build(o.Net, src, zoo.Options{BatchSize: o.Batch, Seed: o.Seed, LoweredConv: lowered})
	if err != nil {
		return nil, err
	}
	return net.New(specs, eng)
}
