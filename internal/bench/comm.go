package bench

// The communication-cost figure behind DISTRIBUTED.md §9 and the
// PERFORMANCE.md comm-bytes table: for each gradient-exchange topology ×
// wire format, run a real in-process distributed group with metered
// transports and report the gradient bytes that actually crossed the
// wire per iteration beside the measured step time. Bytes are counted at
// the transport layer (transport.Meter), not computed from the codec's
// nominal ratio, so framing overhead (int8 group scale words, odd-tail
// padding) and the ring's relay traffic are all in the number.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"coarsegrain/internal/data"
	"coarsegrain/internal/dist"
	"coarsegrain/internal/net"
	"coarsegrain/internal/transport"
	"coarsegrain/internal/zoo"
)

// CommRow is one measured (topology, wire format) configuration.
type CommRow struct {
	Topology string
	Wire     string
	// GradBytesPerIter is the gradient traffic (KindGrad + KindRing
	// frames) summed over all ranks, per iteration, as metered at the
	// transport layer.
	GradBytesPerIter int64
	// StepUS is the measured mean wall time of one lockstep iteration.
	StepUS float64
}

// CommResult holds the comm figure: every topology × wire combination
// over the same model, group size and seed, so rows differ only in the
// exchange configuration.
type CommResult struct {
	Net        string
	Replicas   int
	Iterations int
	Rows       []CommRow
}

// Render prints the comm table. The reduction column is each row's
// bytes-on-wire ratio against the same topology's f32 row — the
// apples-to-apples compression factor (the ring moves more bytes than
// the tree at the same wire format; that is the relay price, visible by
// comparing f32 rows across topologies).
func (r *CommResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s gradient exchange: bytes on wire and step time (%d replicas, %d iters) ==\n",
		r.Net, r.Replicas, r.Iterations)
	fmt.Fprintf(w, "%-8s %-6s %14s %10s %12s\n", "reduce", "wire", "grad-KB/iter", "reduction", "step-ms")
	f32 := map[string]float64{}
	for _, row := range r.Rows {
		if row.Wire == "f32" {
			f32[row.Topology] = float64(row.GradBytesPerIter)
		}
	}
	for _, row := range r.Rows {
		red := "-"
		if base, ok := f32[row.Topology]; ok && row.GradBytesPerIter > 0 && row.Wire != "f32" {
			red = fmt.Sprintf("%.2fx", base/float64(row.GradBytesPerIter))
		}
		fmt.Fprintf(w, "%-8s %-6s %14.1f %10s %12.2f\n",
			row.Topology, row.Wire, float64(row.GradBytesPerIter)/1024, red, row.StepUS/1e3)
	}
}

// Comm measures the comm figure: a 4-rank in-process group per
// configuration, identical seeds and shards throughout, transports
// wrapped in Meters. Warmup iterations run before timing; byte counts
// are averaged over every iteration (per-iteration traffic is
// deterministic, so the average is exact).
func Comm(o Options) (*CommResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	const replicas = 4
	if o.Batch%replicas != 0 {
		return nil, fmt.Errorf("bench: batch %d not divisible by %d replicas", o.Batch, replicas)
	}
	res := &CommResult{Net: o.Net, Replicas: replicas, Iterations: o.Iterations}
	for _, topo := range []string{dist.TopologyTree, dist.TopologyRing} {
		for _, wire := range []string{"f32", "f16", "int8"} {
			row, err := commRun(o, replicas, topo, wire)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", topo, wire, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// commRun executes one configuration and meters it.
func commRun(o Options, replicas int, topo, wire string) (CommRow, error) {
	row := CommRow{Topology: topo, Wire: wire}
	meters := make([]*transport.Meter, replicas)
	trs := make([]transport.Transport, replicas)
	for i, l := range transport.NewLocalGroup(replicas) {
		meters[i] = transport.NewMeter(l)
		trs[i] = meters[i]
	}
	nets := make([]*net.Net, replicas)
	for r := 0; r < replicas; r++ {
		shard, err := data.NewShard(sourceFor(o), r, replicas, o.Batch)
		if err != nil {
			return row, err
		}
		specs, err := zoo.Build(o.Net, shard, zoo.Options{BatchSize: shard.LocalBatch(), Seed: o.Seed})
		if err != nil {
			return row, err
		}
		if nets[r], err = net.New(specs, nil); err != nil {
			return row, err
		}
	}

	opts := dist.Options{Topology: topo, GradWire: wire}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		errs    []error
		elapsed time.Duration
	)
	total := o.Warmup + o.Iterations
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer trs[r].Close()
			var nd *dist.Node
			var err error
			if r == 0 {
				nd, err = dist.NewRoot(trs[r], nets[r], solverFor(o), opts)
			} else {
				nd, err = dist.NewWorker(trs[r], nets[r], opts)
			}
			if err == nil {
				_, err = nd.Step(o.Warmup)
			}
			if err == nil {
				start := time.Now()
				_, err = nd.Step(o.Iterations)
				if r == 0 {
					elapsed = time.Since(start)
				}
			}
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("rank %d: %w", r, err))
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if len(errs) > 0 {
		return row, errs[0]
	}
	var bytes int64
	for _, m := range meters {
		bytes += m.GradBytes()
	}
	row.GradBytesPerIter = bytes / int64(total)
	row.StepUS = float64(elapsed.Microseconds()) / float64(o.Iterations)
	return row, nil
}
