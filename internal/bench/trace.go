package bench

// Trace capture: the measured experiment behind OBSERVABILITY.md. It
// trains the benchmark network for a few iterations with the span tracer
// attached, writes the Chrome trace-event JSON, and reports the derived
// per-layer table and worker-utilization summary — the same artifacts the
// paper's §4 figures are built from, but measured on this host.

import (
	"fmt"
	"io"
	"strings"

	"coarsegrain/internal/core"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/trace"
)

// TraceCaptureResult summarizes one traced training run.
type TraceCaptureResult struct {
	Net     string
	Path    string
	Workers int
	Iters   int
	Spans   int
	Dropped int64
	// LayerTable is the paper-style per-layer table derived from the
	// trace's driver spans (identical format to profile.Recorder.Table).
	LayerTable string
	// Utilization is the worker-utilization/imbalance report.
	Utilization string
}

// Render prints the capture summary.
func (r *TraceCaptureResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s traced run: %d iterations, coarse engine, %d workers ==\n",
		r.Net, r.Iters, r.Workers)
	fmt.Fprintf(w, "%d spans (%d dropped) -> %s (chrome://tracing or https://ui.perfetto.dev)\n\n",
		r.Spans, r.Dropped, r.Path)
	fmt.Fprint(w, r.LayerTable)
	fmt.Fprintln(w)
	fmt.Fprint(w, r.Utilization)
}

// TraceCapture trains the benchmark network under the coarse engine with
// the span tracer attached and writes Chrome trace-event JSON to path.
// The worker count is the maximum of o.Threads; o.Warmup untraced
// iterations run first so the trace shows steady-state behavior.
func TraceCapture(o Options, path string) (*TraceCaptureResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	workers := maxInt(o.Threads)
	eng := core.NewCoarse(workers)
	defer eng.Close()
	n, err := buildNet(o, eng)
	if err != nil {
		return nil, err
	}
	s, err := solver.New(solverFor(o), n)
	if err != nil {
		return nil, err
	}
	s.Step(o.Warmup)

	tr := trace.New(workers)
	s.SetTracer(tr)
	s.Step(o.Iterations)
	s.SetTracer(nil)

	if err := tr.WriteChromeTraceFile(path); err != nil {
		return nil, err
	}
	spans := tr.Snapshot()
	var util strings.Builder
	trace.WriteUtilizationReport(&util, spans, workers)
	return &TraceCaptureResult{
		Net: o.Net, Path: path, Workers: workers, Iters: o.Iterations,
		Spans: len(spans), Dropped: tr.Dropped(),
		LayerTable:  trace.LayerRecorder(spans).Table(),
		Utilization: util.String(),
	}, nil
}
