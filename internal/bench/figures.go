package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"coarsegrain/internal/core"
	"coarsegrain/internal/profile"
	"coarsegrain/internal/simtime"
	"coarsegrain/internal/solver"
)

// PerLayerResult reproduces Figures 4 (MNIST) / 7 (CIFAR-10): absolute
// per-layer forward/backward times and relative weights for each thread
// count.
type PerLayerResult struct {
	Net     string
	Threads []int
	Layers  []string
	// FwdUS[t][layer] and BwdUS[t][layer] are times in microseconds under
	// t coarse-grain workers (t=1 is the measured serial execution; t>1
	// is modeled from it — DESIGN.md §4.1).
	FwdUS, BwdUS map[int]map[string]float64
	// MeasuredTotalUS[t] is the wall-clock mean iteration time of a real
	// t-worker run, filled only when Options.Measure was set.
	MeasuredTotalUS map[int]float64
}

// Total returns the summed layer time at a thread count.
func (r *PerLayerResult) Total(threads int) float64 {
	var t float64
	for _, l := range r.Layers {
		t += r.FwdUS[threads][l] + r.BwdUS[threads][l]
	}
	return t
}

// Render prints the result in the layout of the paper's stacked-bar
// figures: one block per thread count with absolute times and weights.
func (r *PerLayerResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s per-layer execution time (us); serial measured, multi-thread modeled ==\n", r.Net)
	for _, t := range r.Threads {
		total := r.Total(t)
		fmt.Fprintf(w, "\n-- %d thread(s), iteration total %.0f us --\n", t, total)
		fmt.Fprintf(w, "%-8s %12s %12s %8s\n", "layer", "fwd_us", "bwd_us", "weight")
		for _, l := range r.Layers {
			f, b := r.FwdUS[t][l], r.BwdUS[t][l]
			pct := 0.0
			if total > 0 {
				pct = (f + b) / total * 100
			}
			fmt.Fprintf(w, "%-8s %12.1f %12.1f %7.1f%%\n", l, f, b, pct)
		}
		if m, ok := r.MeasuredTotalUS[t]; ok {
			fmt.Fprintf(w, "measured wall-clock iteration: %.0f us\n", m)
		}
	}
}

// PerLayerTimes runs the Figure 4/7 experiment.
func PerLayerTimes(o Options) (*PerLayerResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	n, rec, err := MeasureSerial(o)
	if err != nil {
		return nil, err
	}
	models := ModelsFromNet(n, rec, o.Batch)
	res := &PerLayerResult{
		Net:             o.Net,
		Threads:         o.Threads,
		FwdUS:           map[int]map[string]float64{},
		BwdUS:           map[int]map[string]float64{},
		MeasuredTotalUS: map[int]float64{},
	}
	for _, m := range models {
		res.Layers = append(res.Layers, m.Name)
	}
	for _, t := range o.Threads {
		fwd, bwd, _ := o.Machine.NetworkTime(models, t)
		res.FwdUS[t] = fwd
		res.BwdUS[t] = bwd
		if o.Measure && t > 1 {
			eng := core.NewCoarse(t)
			_, mean, err := MeasureEngine(o, eng)
			eng.Close()
			if err != nil {
				return nil, err
			}
			res.MeasuredTotalUS[t] = float64(mean.Microseconds())
		}
	}
	return res, nil
}

// ScalabilityResult reproduces Figures 5 (MNIST) / 8 (CIFAR-10): per-layer
// speedup factors over the serial execution.
type ScalabilityResult struct {
	Net     string
	Threads []int
	Layers  []string
	// FwdSpeedup[t][layer], BwdSpeedup[t][layer].
	FwdSpeedup, BwdSpeedup map[int]map[string]float64
}

// Render prints the speedup clusters.
func (r *ScalabilityResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s per-layer scalability (speedup vs serial, modeled) ==\n", r.Net)
	fmt.Fprintf(w, "%-8s", "layer")
	for _, t := range r.Threads {
		fmt.Fprintf(w, " %6dT-f %6dT-b", t, t)
	}
	fmt.Fprintln(w)
	for _, l := range r.Layers {
		fmt.Fprintf(w, "%-8s", l)
		for _, t := range r.Threads {
			fmt.Fprintf(w, " %8.2f %8.2f", r.FwdSpeedup[t][l], r.BwdSpeedup[t][l])
		}
		fmt.Fprintln(w)
	}
}

// PerLayerScalability runs the Figure 5/8 experiment.
func PerLayerScalability(o Options) (*ScalabilityResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	// Drop the 1-thread column (speedup of 1 by definition).
	pl, err := PerLayerTimes(o)
	if err != nil {
		return nil, err
	}
	res := &ScalabilityResult{
		Net:        pl.Net,
		Layers:     pl.Layers,
		FwdSpeedup: map[int]map[string]float64{},
		BwdSpeedup: map[int]map[string]float64{},
	}
	for _, t := range pl.Threads {
		if t == 1 {
			continue
		}
		res.Threads = append(res.Threads, t)
		fs := map[string]float64{}
		bs := map[string]float64{}
		for _, l := range pl.Layers {
			fs[l] = speedup(pl.FwdUS[1][l], pl.FwdUS[t][l])
			bs[l] = speedup(pl.BwdUS[1][l], pl.BwdUS[t][l])
		}
		res.FwdSpeedup[t] = fs
		res.BwdSpeedup[t] = bs
	}
	return res, nil
}

func speedup(serial, parallel float64) float64 {
	if serial == 0 {
		return 1 // a phase with no measurable serial time neither gains nor loses
	}
	if parallel <= 0 {
		return 0
	}
	return serial / parallel
}

// OverallResult reproduces Figures 6 (MNIST) / 9 (CIFAR-10): overall
// speedups of the coarse-grain parallelization at each thread count plus
// the plain-GPU and cuDNN-GPU configurations, and the per-layer GPU
// scalability panel.
type OverallResult struct {
	Net     string
	Threads []int
	// CoarseModeled[t] is the modeled overall speedup at t workers.
	CoarseModeled map[int]float64
	// CoarseMeasured[t] is the wall-clock overall speedup (Measure mode).
	CoarseMeasured map[int]float64
	// FineMeasured / TunedMeasured are the wall-clock speedups of the
	// fine-grain goroutine engines (plain-GPU / cuDNN analogues) on this
	// host (Measure mode).
	FineMeasured, TunedMeasured float64
	// PlainGPU / CuDNNGPU are the modeled overall GPU speedups under the
	// paper-calibrated per-layer profiles.
	PlainGPU, CuDNNGPU float64
	// GPULayers is the per-layer GPU panel: layer -> {plain, cudnn} x
	// {fwd, bwd} speedups (the calibration constants, listed for the
	// figure's right side).
	GPULayers map[string][4]float64
	// LayerOrder preserves network order for rendering.
	LayerOrder []string
}

// Render prints the overall comparison.
func (r *OverallResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s overall speedup vs serial ==\n", r.Net)
	for _, t := range r.Threads {
		line := fmt.Sprintf("coarse %2d threads: %5.2fx (modeled)", t, r.CoarseModeled[t])
		if m, ok := r.CoarseMeasured[t]; ok {
			line += fmt.Sprintf("   %5.2fx (measured)", m)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "plain-GPU (calibrated): %5.2fx\n", r.PlainGPU)
	fmt.Fprintf(w, "cuDNN-GPU (calibrated): %5.2fx\n", r.CuDNNGPU)
	if r.FineMeasured > 0 {
		fmt.Fprintf(w, "fine engine (this host): %5.2fx measured\n", r.FineMeasured)
	}
	if r.TunedMeasured > 0 {
		fmt.Fprintf(w, "tuned engine (this host): %5.2fx measured\n", r.TunedMeasured)
	}
	fmt.Fprintln(w, "\n-- GPU layer scalability (calibrated from the paper) --")
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s\n", "layer", "plain-f", "plain-b", "cudnn-f", "cudnn-b")
	for _, l := range r.LayerOrder {
		v, ok := r.GPULayers[l]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-8s %9.2fx %9.2fx %9.2fx %9.2fx\n", l, v[0], v[1], v[2], v[3])
	}
}

// Overall runs the Figure 6/9 experiment.
func Overall(o Options) (*OverallResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	n, rec, err := MeasureSerial(o)
	if err != nil {
		return nil, err
	}
	models := ModelsFromNet(n, rec, o.Batch)
	plain, cudnn := GPUProfilesFor(o.Net)
	res := &OverallResult{
		Net:            o.Net,
		Threads:        o.Threads,
		CoarseModeled:  map[int]float64{},
		CoarseMeasured: map[int]float64{},
		PlainGPU:       simtime.GPUSpeedup(models, plain),
		CuDNNGPU:       simtime.GPUSpeedup(models, cudnn),
		GPULayers:      map[string][4]float64{},
	}
	for _, m := range models {
		res.LayerOrder = append(res.LayerOrder, m.Name)
		p, pok := plain[m.Name]
		c, cok := cudnn[m.Name]
		if pok || cok {
			res.GPULayers[m.Name] = [4]float64{p.Fwd, p.Bwd, c.Fwd, c.Bwd}
		}
	}
	var serialMean float64
	if o.Measure {
		_, sm, err := MeasureEngine(o, core.NewSequential())
		if err != nil {
			return nil, err
		}
		serialMean = float64(sm.Microseconds())
	}
	for _, t := range o.Threads {
		res.CoarseModeled[t] = o.Machine.Speedup(models, t)
		if o.Measure && t > 1 {
			eng := core.NewCoarse(t)
			_, mean, err := MeasureEngine(o, eng)
			eng.Close()
			if err != nil {
				return nil, err
			}
			res.CoarseMeasured[t] = serialMean / float64(mean.Microseconds())
		}
	}
	if o.Measure {
		fe := core.NewFine(maxInt(o.Threads))
		_, fm, err := MeasureEngine(o, fe)
		fe.Close()
		if err != nil {
			return nil, err
		}
		res.FineMeasured = serialMean / float64(fm.Microseconds())
		te := core.NewTuned(maxInt(o.Threads))
		_, tm, err := MeasureEngine(o, te)
		te.Close()
		if err != nil {
			return nil, err
		}
		res.TunedMeasured = serialMean / float64(tm.Microseconds())
	}
	return res, nil
}

func maxInt(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MemoryResult reproduces the §3.2.1 memory-overhead analysis: the extra
// per-thread privatized gradient storage versus the network's total
// allocation.
type MemoryResult struct {
	Net string
	// NetBytes is the memory of all blobs and parameters.
	NetBytes int64
	// ScratchBytes[t] is the coarse engine's privatization arena after a
	// t-worker backward pass.
	ScratchBytes map[int]int64
	Threads      []int
}

// Render prints the comparison with the paper's reported numbers.
func (r *MemoryResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s privatization memory overhead (paper §3.2.1) ==\n", r.Net)
	fmt.Fprintf(w, "network allocation: %.1f MB\n", float64(r.NetBytes)/(1<<20))
	for _, t := range r.Threads {
		sb := r.ScratchBytes[t]
		fmt.Fprintf(w, "%2d threads: scratch %7.1f KB (%.2f%% of network)\n",
			t, float64(sb)/1024, float64(sb)/float64(r.NetBytes)*100)
	}
}

// Memory runs the memory-overhead experiment.
func Memory(o Options) (*MemoryResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	res := &MemoryResult{Net: o.Net, Threads: o.Threads, ScratchBytes: map[int]int64{}}
	for _, t := range o.Threads {
		eng := core.NewCoarse(t)
		n, err := buildNet(o, eng)
		if err != nil {
			eng.Close()
			return nil, err
		}
		n.ZeroParamDiffs()
		n.ForwardBackward()
		res.ScratchBytes[t] = eng.ScratchBytes()
		if res.NetBytes == 0 {
			res.NetBytes = n.MemoryBytes()
		}
		eng.Close()
	}
	return res, nil
}

// ConvergenceResult reproduces the convergence-invariance claim: the loss
// trace of the coarse parallelization versus the sequential trace, per
// worker count, plus the fixed-worker-count determinism check.
type ConvergenceResult struct {
	Net        string
	Iterations int
	Workers    []int
	// SeqTrace is the sequential loss trace.
	SeqTrace []float64
	// MaxRelDeviation[w] is max_i |loss_w(i) - loss_seq(i)| / loss_seq(i).
	MaxRelDeviation map[int]float64
	// Deterministic[w] reports whether two runs at w workers were
	// bit-identical.
	Deterministic map[int]bool
}

// Render prints the invariance summary.
func (r *ConvergenceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s convergence invariance over %d iterations ==\n", r.Net, r.Iterations)
	fmt.Fprintf(w, "sequential final loss: %.6f\n", r.SeqTrace[len(r.SeqTrace)-1])
	for _, wk := range r.Workers {
		fmt.Fprintf(w, "%2d workers: max relative loss deviation %.2e, bitwise deterministic: %v\n",
			wk, r.MaxRelDeviation[wk], r.Deterministic[wk])
	}
}

// Convergence runs the convergence-invariance experiment over iters
// training iterations.
func Convergence(o Options, iters int) (*ConvergenceResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	if iters <= 0 {
		iters = 20
	}
	train := func(eng core.Engine) ([]float64, error) {
		n, err := buildNet(o, eng)
		if err != nil {
			return nil, err
		}
		s, err := solver.New(solverFor(o), n)
		if err != nil {
			return nil, err
		}
		return s.Step(iters), nil
	}
	seq, err := train(core.NewSequential())
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{
		Net:             o.Net,
		Iterations:      iters,
		SeqTrace:        seq,
		MaxRelDeviation: map[int]float64{},
		Deterministic:   map[int]bool{},
	}
	for _, t := range o.Threads {
		if t == 1 {
			continue
		}
		res.Workers = append(res.Workers, t)
		e1 := core.NewCoarse(t)
		a, err := train(e1)
		e1.Close()
		if err != nil {
			return nil, err
		}
		e2 := core.NewCoarse(t)
		b, err := train(e2)
		e2.Close()
		if err != nil {
			return nil, err
		}
		var maxRel float64
		det := true
		for i := range seq {
			rel := math.Abs(a[i]-seq[i]) / math.Max(math.Abs(seq[i]), 1e-12)
			if rel > maxRel {
				maxRel = rel
			}
			if a[i] != b[i] {
				det = false
			}
		}
		res.MaxRelDeviation[t] = maxRel
		res.Deterministic[t] = det
	}
	return res, nil
}

// AblationResult covers the two design-choice ablations DESIGN.md calls
// out: the reduction strategy (ordered vs tree) and the loop-coalescing
// transformation (Algorithm 4's civ loop vs parallelizing only the sample
// loop).
type AblationResult struct {
	Net     string
	Threads []int
	// ReductionOrderedUS / ReductionTreeUS are modeled merge costs of the
	// largest parameterized layer at each thread count.
	ReductionOrderedUS, ReductionTreeUS map[int]float64
	// CoalescedSpeedup / UncoalescedSpeedup are modeled overall speedups
	// with and without the coalescing transformation.
	CoalescedSpeedup, UncoalescedSpeedup map[int]float64
}

// Render prints both ablations.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ablations ==\n", r.Net)
	fmt.Fprintln(w, "-- reduction strategy (modeled merge cost of largest layer, us) --")
	for _, t := range r.Threads {
		fmt.Fprintf(w, "%2d workers: ordered %8.1f   tree %8.1f\n",
			t, r.ReductionOrderedUS[t], r.ReductionTreeUS[t])
	}
	fmt.Fprintln(w, "-- loop coalescing (modeled overall speedup) --")
	for _, t := range r.Threads {
		fmt.Fprintf(w, "%2d workers: coalesced %5.2fx   sample-loop only %5.2fx\n",
			t, r.CoalescedSpeedup[t], r.UncoalescedSpeedup[t])
	}
}

// Ablation runs both ablations.
func Ablation(o Options) (*AblationResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	n, rec, err := MeasureSerial(o)
	if err != nil {
		return nil, err
	}
	models := ModelsFromNet(n, rec, o.Batch)
	// Largest parameterized layer drives the reduction cost.
	largest := 0
	for _, m := range models {
		if m.ParamElems > largest {
			largest = m.ParamElems
		}
	}
	// Uncoalesced variant: every parallel phase distributes at most one
	// batch sample per iteration (extent clamped to the batch size).
	unco := make([]simtime.LayerModel, len(models))
	copy(unco, models)
	for i := range unco {
		if unco[i].FwdExtent > o.Batch {
			unco[i].FwdExtent = o.Batch
		}
		if unco[i].BwdExtent > o.Batch {
			unco[i].BwdExtent = o.Batch
		}
	}
	res := &AblationResult{
		Net:                o.Net,
		Threads:            o.Threads,
		ReductionOrderedUS: map[int]float64{},
		ReductionTreeUS:    map[int]float64{},
		CoalescedSpeedup:   map[int]float64{},
		UncoalescedSpeedup: map[int]float64{},
	}
	for _, t := range o.Threads {
		perElem := o.Machine.MergePerElemNS / 1000
		res.ReductionOrderedUS[t] = float64(largest) * float64(t) * perElem
		res.ReductionTreeUS[t] = float64(largest) * math.Ceil(math.Log2(float64(t))) * perElem
		res.CoalescedSpeedup[t] = o.Machine.Speedup(models, t)
		res.UncoalescedSpeedup[t] = o.Machine.Speedup(unco, t)
	}
	return res, nil
}

// DominatingLayers returns the layers accounting for at least frac of the
// serial iteration time, most expensive first — used to verify the paper's
// "conv+pool account for ~80%" observation.
func DominatingLayers(rec *profile.Recorder, frac float64) []string {
	names := rec.SortedLayersByCost()
	total := float64(rec.TotalMean())
	var out []string
	var acc float64
	for _, n := range names {
		out = append(out, n)
		acc += float64(rec.Mean(n, profile.Forward) + rec.Mean(n, profile.Backward))
		if acc/total >= frac {
			break
		}
	}
	sort.Strings(out)
	return out
}
