package bench

import (
	"fmt"
	"io"
	"time"

	"coarsegrain/internal/blas"
	"coarsegrain/internal/rng"
)

// GemmShape is one GEMM a benchmark network actually issues: per-sample
// lowered convolutions (M = output channels, N = outH*outW, K = C*KH*KW)
// and batch-band fully connected passes (M = batch). These are the shapes
// PERFORMANCE.md's kernel table reports and the shapes the blocked kernel
// is tuned for.
type GemmShape struct {
	Name           string
	TransA, TransB blas.Transpose
	M, N, K        int
}

// NetGemmShapes returns the GEMM shapes the selected benchmark network
// ("mnist" or "cifar") emits on its lowered-convolution and fully
// connected paths, forward and backward.
func NetGemmShapes(netName string) []GemmShape {
	nt, tr := blas.NoTrans, blas.Trans
	if netName == "cifar" {
		return []GemmShape{
			{"conv1-fwd", nt, nt, 32, 1024, 75},
			{"conv2-fwd", nt, nt, 32, 256, 800},
			{"conv3-fwd", nt, nt, 64, 64, 800},
			{"conv1-bwdX", tr, nt, 75, 1024, 32},
		}
	}
	return []GemmShape{
		{"conv1-fwd", nt, nt, 20, 576, 25},
		{"conv2-fwd", nt, nt, 50, 64, 500},
		{"conv2-bwdW", nt, tr, 50, 500, 64},
		{"conv2-bwdX", tr, nt, 500, 64, 50},
		{"ip1-fwd", nt, tr, 64, 500, 800},
		{"ip1-bwdW", tr, nt, 500, 800, 64},
	}
}

// GemmKernelResult compares the retained reference kernel against the
// blocked packed kernel on the network's own GEMM shapes.
type GemmKernelResult struct {
	Net    string
	Shapes []GemmShape
	// RefMFLOPS[i] and BlockedMFLOPS[i] are throughputs for Shapes[i].
	RefMFLOPS, BlockedMFLOPS []float64
}

// Render prints the kernel comparison table.
func (r *GemmKernelResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s GEMM kernel throughput (reference vs blocked, this host) ==\n", r.Net)
	fmt.Fprintf(w, "%-12s %6s %6s %6s %12s %12s %8s\n", "shape", "M", "N", "K", "ref MFLOP/s", "blk MFLOP/s", "speedup")
	for i, s := range r.Shapes {
		sp := 0.0
		if r.RefMFLOPS[i] > 0 {
			sp = r.BlockedMFLOPS[i] / r.RefMFLOPS[i]
		}
		fmt.Fprintf(w, "%-12s %6d %6d %6d %12.0f %12.0f %7.2fx\n",
			s.Name, s.M, s.N, s.K, r.RefMFLOPS[i], r.BlockedMFLOPS[i], sp)
	}
}

// GemmKernels runs the kernel comparison for the selected network. Small
// shapes dispatch to the reference kernel on both sides (the blocked path
// declines them), so their speedup is ~1 by construction.
func GemmKernels(o Options) (*GemmKernelResult, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	res := &GemmKernelResult{Net: o.Net, Shapes: NetGemmShapes(o.Net)}
	res.RefMFLOPS = make([]float64, len(res.Shapes))
	res.BlockedMFLOPS = make([]float64, len(res.Shapes))
	for i, s := range res.Shapes {
		//dnnlint:ignore hotalloc benchmark harness: fresh operands per timed kernel by design
		res.RefMFLOPS[i] = timeGemm(s, blas.GemmReference)
		//dnnlint:ignore hotalloc benchmark harness: fresh operands per timed kernel by design
		res.BlockedMFLOPS[i] = timeGemm(s, func(ta, tb blas.Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
			blas.Gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		})
	}
	return res, nil
}

type gemmFunc func(ta, tb blas.Transpose, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int)

// timeGemm returns the throughput of f on shape s in MFLOP/s, timing
// enough repetitions to average out scheduler noise.
func timeGemm(s GemmShape, f gemmFunc) float64 {
	arows, acols := s.M, s.K
	if s.TransA == blas.Trans {
		arows, acols = s.K, s.M
	}
	brows, bcols := s.K, s.N
	if s.TransB == blas.Trans {
		brows, bcols = s.N, s.K
	}
	r := rng.New(11, 11)
	a := make([]float32, arows*acols)
	b := make([]float32, brows*bcols)
	c := make([]float32, s.M*s.N)
	for i := range a {
		a[i] = r.Range(-1, 1)
	}
	for i := range b {
		b[i] = r.Range(-1, 1)
	}
	run := func(reps int) time.Duration {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f(s.TransA, s.TransB, s.M, s.N, s.K, 1, a, acols, b, bcols, 0, c, s.N)
		}
		return time.Since(start)
	}
	// Calibrate the repetition count to a ~20ms measurement window.
	reps := 1
	for {
		if d := run(reps); d > 2*time.Millisecond {
			reps = int(float64(reps) * float64(20*time.Millisecond) / float64(d))
			if reps < 1 {
				reps = 1
			}
			break
		}
		reps *= 4
	}
	elapsed := run(reps)
	flops := 2 * float64(s.M) * float64(s.N) * float64(s.K) * float64(reps)
	return flops / elapsed.Seconds() / 1e6
}
