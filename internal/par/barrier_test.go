package par

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBarrierBackToBackRegions hammers the hot path the barrier is built
// for: thousands of consecutive fork/joins with no idle gap, so dispatch
// stays in the spin phase. Every region must run every rank exactly once,
// and the join must be a full happens-before fence (the counter read
// after Region must see all worker increments without extra sync).
func TestBarrierBackToBackRegions(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		p := NewPool(workers)
		counts := make([]int64, workers)
		const regions = 2000
		for i := 0; i < regions; i++ {
			p.Region(func(rank int) {
				atomic.AddInt64(&counts[rank], 1)
			})
			for r := 0; r < workers; r++ {
				if got := atomic.LoadInt64(&counts[r]); got != int64(i+1) {
					t.Fatalf("P=%d: after region %d, rank %d ran %d times", workers, i, r, got)
				}
			}
		}
		p.Close()
	}
}

// TestBarrierParkAndRewake idles the pool long enough that every worker
// exhausts its spin budget and parks on the cond var, then dispatches
// again: the park/rewake path must work repeatedly, not just the spin
// path.
func TestBarrierParkAndRewake(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 5; round++ {
		time.Sleep(20 * time.Millisecond) // far beyond the spin+yield budget
		var ran atomic.Int32
		p.Region(func(rank int) { ran.Add(1) })
		if got := ran.Load(); got != 4 {
			t.Fatalf("round %d: %d ranks ran, want 4", round, got)
		}
	}
}

// TestBarrierLongRegionParksJoiner makes the workers outlast the caller's
// join spin budget so the joiner takes the park path, and checks the
// last-finisher wakeup works.
func TestBarrierLongRegionParksJoiner(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int32
	p.Region(func(rank int) {
		if rank != 0 {
			time.Sleep(10 * time.Millisecond)
		}
		ran.Add(1)
	})
	if got := ran.Load(); got != 4 {
		t.Fatalf("%d ranks ran, want 4", got)
	}
}

// TestBarrierMixedWorksharingStress interleaves Region/For/ForTiles/
// OrderedSlices with empty ranges and panics — the shapes the training
// loop and its error paths produce — to shake out dispatch races under
// -race.
func TestBarrierMixedWorksharingStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	sum := make([]int64, 64)
	for i := 0; i < 300; i++ {
		p.For(64, func(lo, hi, rank int) {
			for j := lo; j < hi; j++ {
				sum[j]++
			}
		})
		p.For(0, func(lo, hi, rank int) { t.Error("body ran for n=0") })
		p.ForTiles(64, 8, func(lo, hi, rank int) {
			for j := lo; j < hi; j++ {
				sum[j]++
			}
		})
		if i%37 == 5 {
			func() {
				defer func() {
					if r := recover(); r == nil {
						t.Error("expected panic to propagate")
					}
				}()
				p.Region(func(rank int) {
					if rank%2 == 1 {
						panic("stress")
					}
				})
			}()
		}
		p.OrderedSlices(64, func(lo, hi, rank int) {
			for j := lo; j < hi; j++ {
				sum[j]++
			}
		})
	}
	for j, v := range sum {
		if v != 300*(2+4) {
			t.Fatalf("element %d: %d increments, want %d", j, v, 300*6)
		}
	}
}

// TestRegionOnClosedPoolPanics: the barrier cannot dispatch to an exited
// team, so using a closed pool is a programming error that must fail
// loudly instead of hanging the join.
func TestRegionOnClosedPoolPanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected Region on closed Pool to panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "closed Pool") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	p.Region(func(rank int) {})
}

// TestClosedSingleWorkerPoolStillInline: a P=1 pool has no team to shut
// down; its inline execution keeps working after Close (matching the old
// channel implementation, which only closed channels of ranks >= 1).
func TestClosedSingleWorkerPoolStillInline(t *testing.T) {
	p := NewPool(1)
	p.Close()
	var ran atomic.Bool
	p.Region(func(rank int) { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("inline region did not run on closed P=1 pool")
	}
}
