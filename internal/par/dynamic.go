package par

import "sync/atomic"

// ForDynamic executes body over [0, n) with OpenMP-style dynamic
// scheduling: workers repeatedly claim the next chunk of `chunk`
// iterations from a shared counter until the space is exhausted.
//
// Dynamic scheduling tolerates irregular per-iteration cost better than
// the static split (no rank is stuck with a fixed share), at the price of
// the shared-counter contention and — crucially for the paper's
// convergence argument — of *losing the fixed work-to-rank mapping*: which
// iterations a rank executes varies between runs, so privatized
// reductions over dynamic chunks are not deterministic even with an
// ordered merge. This is why the coarse engine defaults to static
// scheduling and offers dynamic only as an ablation (DESIGN.md A-coal).
//
// chunk < 1 is treated as 1. Like For, ranges handed to different body
// invocations are disjoint and cover [0, n) exactly once.
func (p *Pool) ForDynamic(n, chunk int, body func(lo, hi, rank int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if p.tracer.Enabled() {
		// Dynamic bands are the claimed chunks, so the band index is the
		// chunk ordinal — the trace shows which rank won each chunk.
		body = p.traced(body, func(lo, _ int) int { return lo / chunk })
	}
	if p.workers == 1 {
		body(0, n, 0)
		return
	}
	var next int64
	p.region(func(rank int) {
		for {
			lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(lo, hi, rank)
		}
	})
}

// DefaultDynamicChunk returns the chunk size the coarse engine uses for
// dynamic scheduling: enough chunks for ~8 per worker, but never below 1.
func DefaultDynamicChunk(n, workers int) int {
	c := n / (8 * workers)
	if c < 1 {
		c = 1
	}
	return c
}
