package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForDynamicExactCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{1, 3, 7, 100} {
			p := NewPool(workers)
			n := 500
			hits := make([]int32, n)
			p.ForDynamic(n, chunk, func(lo, hi, rank int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			p.Close()
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d chunk=%d: iteration %d hit %d times", workers, chunk, i, h)
				}
			}
		}
	}
}

func TestForDynamicEmptyAndChunkClamp(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var called int32
	p.ForDynamic(0, 4, func(lo, hi, rank int) { atomic.AddInt32(&called, 1) })
	if atomic.LoadInt32(&called) != 0 {
		t.Fatal("body called for empty loop")
	}
	// chunk <= 0 treated as 1: still exact coverage.
	var n int32
	p.ForDynamic(10, 0, func(lo, hi, rank int) { atomic.AddInt32(&n, int32(hi-lo)) })
	if n != 10 {
		t.Fatalf("covered %d", n)
	}
}

func TestForDynamicRangesWithinBounds(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.ForDynamic(103, 10, func(lo, hi, rank int) {
		if lo < 0 || hi > 103 || lo >= hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
	})
}

func TestDefaultDynamicChunk(t *testing.T) {
	if DefaultDynamicChunk(1280, 16) != 10 {
		t.Fatalf("chunk = %d", DefaultDynamicChunk(1280, 16))
	}
	if DefaultDynamicChunk(5, 16) != 1 {
		t.Fatal("small n should clamp to 1")
	}
}

func TestQuickForDynamicCoverage(t *testing.T) {
	f := func(nRaw uint16, wRaw, cRaw uint8) bool {
		n := int(nRaw % 1000)
		w := int(wRaw%8) + 1
		c := int(cRaw % 50)
		p := NewPool(w)
		defer p.Close()
		hits := make([]int32, n)
		p.ForDynamic(n, c, func(lo, hi, rank int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
