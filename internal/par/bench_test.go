package par

import (
	"fmt"
	"testing"
)

// BenchmarkRegionForkJoin measures the pure fork/join cost of an empty
// parallel region — the per-region launch latency every worksharing layer
// pays once per pass. The small-extent layers (ReLU, Softmax, Accuracy)
// run bodies of a few microseconds, so this number is a double-digit
// fraction of their span time; PERFORMANCE.md §7 tracks it.
func BenchmarkRegionForkJoin(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Region(func(rank int) {})
			}
		})
	}
}

// BenchmarkForForkJoin is BenchmarkRegionForkJoin through the worksharing
// loop entry point: an n-iteration For whose body is trivial, so the
// measurement is dominated by dispatch + join rather than the loop.
func BenchmarkForForkJoin(b *testing.B) {
	for _, w := range []int{2, 4} {
		b.Run(fmt.Sprintf("P=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			sink := make([]int, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.For(w, func(lo, hi, rank int) { sink[rank] = lo })
			}
		})
	}
}
