package par

import "fmt"

// Space describes a coalesced iteration space: the outermost k loops of a
// layer's loop nest collapsed into a single counted loop, exactly the
// transformation of Algorithm 4 (line 4) / Algorithm 5 (line 8). The paper
// applies the coalescing so that one static-schedule iteration is a small
// work unit, avoiding the imbalance of distributing whole batch samples.
//
// A Space with dims (S, D1, D2) has extent S*D1*D2 and Decompose recovers
// (s, d1, d2) from the coalesced induction variable civ — the f_s, f_1,
// f_2... functions of Algorithm 4 lines 5-9.
type Space struct {
	dims   []int
	extent int
}

// NewSpace builds a coalesced space over the given dimensions. Zero
// dimensions yield a zero-extent space. Negative dimensions panic.
func NewSpace(dims ...int) Space {
	ext := 1
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("par: negative dimension %d in space %v", d, dims))
		}
		ext *= d
	}
	return Space{dims: append([]int(nil), dims...), extent: ext}
}

// Extent returns the total number of coalesced iterations.
func (s Space) Extent() int { return s.extent }

// Dims returns the coalesced dimensions (do not modify).
func (s Space) Dims() []int { return s.dims }

// Decompose writes the multi-index corresponding to civ into out, which
// must have len(out) == len(dims). Index order matches dims order
// (outermost first).
func (s Space) Decompose(civ int, out []int) {
	if len(out) != len(s.dims) {
		panic("par: Decompose output length mismatch")
	}
	for i := len(s.dims) - 1; i >= 0; i-- {
		d := s.dims[i]
		out[i] = civ % d
		civ /= d
	}
}

// Index2 decomposes civ for a 2-D space, avoiding allocation in hot loops.
func (s Space) Index2(civ int) (i0, i1 int) {
	d1 := s.dims[1]
	return civ / d1, civ % d1
}

// Index3 decomposes civ for a 3-D space.
func (s Space) Index3(civ int) (i0, i1, i2 int) {
	d2 := s.dims[2]
	i01 := civ / d2
	i2 = civ % d2
	d1 := s.dims[1]
	return i01 / d1, i01 % d1, i2
}
