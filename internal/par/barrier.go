package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Fork/join dispatch for the worker team.
//
// The original pool forked a region with one unbuffered channel send per
// worker and joined with a WaitGroup: two scheduler handoffs per worker
// per region. At thousands of regions per second (one per layer per pass),
// that latency is a double-digit fraction of the span time of small-extent
// layers (ReLU, Softmax, Accuracy). Real OpenMP runtimes use
// spin-then-park barriers instead, and this is that: the caller publishes
// the region's task and bumps an atomic epoch ("generation") counter;
// workers spin briefly on the epoch and only fall back to a sync.Cond
// park when no region arrives. Back-to-back regions — the training hot
// loop — are dispatched and joined entirely in user space.
//
// Memory ordering: every handoff is ordered by a sync/atomic operation
// (epoch on the fork side, pending on the join side). Per the Go memory
// model an atomic read observing an atomic write establishes
// happens-before, so the plain fields published around those operations
// (cur before the epoch bump, the task's writes before the pending
// decrement) are visible without further synchronization — and the race
// detector models the same edges, so -race understands this barrier.
type barrier struct {
	// epoch is the region generation counter. The caller bumps it once
	// per region (and once at Close, after setting stop); a worker knows
	// a new region is ready when the value moves past the last one it
	// served.
	epoch atomic.Uint64
	// cur is the region's task, written by the caller before the epoch
	// bump and read by workers after observing it.
	cur task
	// stop is set (before a final epoch bump) by Close; workers observing
	// it exit instead of running cur.
	stop bool
	// pending counts unfinished shares of the current region, including
	// the caller's rank-0 share. The worker that decrements it to zero
	// wakes a parked joiner.
	pending atomic.Int64

	// Dispatch-side park: workers that exhaust their spin budget wait on
	// dcond. parked counts them so a fork can skip the mutex entirely
	// when every worker is still spinning — the common hot-loop case.
	dmu    sync.Mutex
	dcond  *sync.Cond
	parked atomic.Int32

	// Join-side park: the caller waits on jcond when the region outlasts
	// its spin budget. joinParked tells the last-finishing worker whether
	// a wakeup is needed.
	jmu        sync.Mutex
	jcond      *sync.Cond
	joinParked atomic.Bool

	// active is this team's pure-spin budget — spinActive when every
	// goroutine can have its own P, near zero when the team oversubscribes
	// GOMAXPROCS (spinning then only steals the CPU the peer needs; OpenMP
	// runtimes make the same blocktime adjustment).
	active int
}

// Spin budgets. A parallel region in the training loop is followed by
// another within microseconds, so both sides first spin on their atomic
// (spinActive pure loads, then spinYield rounds that runtime.Gosched
// between loads — the yields keep a spinning goroutine from starving the
// peers it is waiting for when the team is larger than GOMAXPROCS, and
// are what makes the barrier live on a single-CPU host). Only when the
// whole budget is exhausted — an idle pool, or a region far longer than
// the dispatch latency — does the goroutine take the mutex and park.
const (
	spinActive = 256
	spinYield  = 64
)

func newBarrier(team int) *barrier {
	b := &barrier{active: spinActive}
	if team > runtime.GOMAXPROCS(0) {
		b.active = 1
	}
	b.dcond = sync.NewCond(&b.dmu)
	b.jcond = sync.NewCond(&b.jmu)
	return b
}

// post publishes t as the next region for a team with the given number of
// shares and releases the workers. Caller side of the fork.
func (b *barrier) post(t task, shares int) {
	b.cur = t
	b.pending.Store(int64(shares))
	b.epoch.Add(1)
	// Wake parked workers only: spinning workers see the epoch move on
	// their own. If a worker is between its last spin and parked.Add, the
	// epoch re-check it performs under dmu (see await) sees the new value
	// — the sequentially consistent atomics order the bump above before
	// that re-check — so no wakeup is lost by skipping the broadcast here.
	if b.parked.Load() > 0 {
		b.dmu.Lock()
		b.dcond.Broadcast()
		b.dmu.Unlock()
	}
}

// await blocks until the epoch moves past last — a new region, or the
// Close bump — and returns the new epoch. Worker side of the fork.
func (b *barrier) await(last uint64) uint64 {
	for i := 0; i < b.active; i++ {
		if e := b.epoch.Load(); e != last {
			return e
		}
	}
	for i := 0; i < spinYield; i++ {
		runtime.Gosched()
		if e := b.epoch.Load(); e != last {
			return e
		}
	}
	b.dmu.Lock()
	b.parked.Add(1)
	for {
		if e := b.epoch.Load(); e != last {
			b.parked.Add(-1)
			b.dmu.Unlock()
			return e
		}
		b.dcond.Wait()
	}
}

// done retires one share of the current region; the share that brings
// pending to zero wakes a parked joiner. Worker side of the join.
func (b *barrier) done() {
	if b.pending.Add(-1) != 0 {
		return
	}
	// If the joiner is still in its spin phase it sees pending hit zero
	// itself; joinParked only reads true once the joiner has committed to
	// parking (set under jmu, re-checking pending before the Wait — the
	// same no-lost-wakeup argument as post/await, with roles swapped).
	if !b.joinParked.Load() {
		return
	}
	b.jmu.Lock()
	b.jcond.Broadcast()
	b.jmu.Unlock()
}

// join blocks until every share of the current region has retired.
// Caller side of the join.
func (b *barrier) join() {
	for i := 0; i < b.active; i++ {
		if b.pending.Load() == 0 {
			return
		}
	}
	for i := 0; i < spinYield; i++ {
		runtime.Gosched()
		if b.pending.Load() == 0 {
			return
		}
	}
	b.jmu.Lock()
	b.joinParked.Store(true)
	for b.pending.Load() != 0 {
		b.jcond.Wait()
	}
	b.joinParked.Store(false)
	b.jmu.Unlock()
}

// close releases the team for shutdown: stop is published by the final
// epoch bump, and every worker — spinning or parked — observes it and
// exits.
func (b *barrier) close() {
	b.stop = true
	b.epoch.Add(1)
	b.dmu.Lock()
	b.dcond.Broadcast()
	b.dmu.Unlock()
}
