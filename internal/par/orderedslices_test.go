package par

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// serialOrderedFold is the reference the tentpole guarantee is stated
// against: the accumulation order of Pool.Ordered — for each element,
// partials are folded rank 0, 1, ..., P-1.
func serialOrderedFold(partials [][]float32) []float32 {
	out := make([]float32, len(partials[0]))
	for _, part := range partials {
		for i, v := range part {
			out[i] += v
		}
	}
	return out
}

func randomPartials(workers, n int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	parts := make([][]float32, workers)
	for r := range parts {
		parts[r] = make([]float32, n)
		for i := range parts[r] {
			// Mixed magnitudes so a different accumulation order would
			// actually round differently (catching an implementation that
			// is merely approximately equal).
			parts[r][i] = (rng.Float32() - 0.5) * float32(math.Pow(10, float64(rng.Intn(6)-3)))
		}
	}
	return parts
}

// TestOrderedSlicesBitIdenticalToOrdered is the tentpole determinism
// proof: the element-parallel fold must be bit-identical to the serial
// ordered merge at every worker count, because each element sees the
// ranks in the same order either way.
func TestOrderedSlicesBitIdenticalToOrdered(t *testing.T) {
	const n = 1037 // not a multiple of any tested P, so slices are uneven
	for _, workers := range []int{1, 2, 3, 4, 7, 8} {
		p := NewPool(workers)
		parts := randomPartials(workers, n, int64(workers)*7919)
		want := serialOrderedFold(parts)

		got := make([]float32, n)
		p.OrderedSlices(n, func(lo, hi, rank int) {
			for i := lo; i < hi; i++ {
				got[i] += parts[rank][i]
			}
		})
		p.Close()

		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("P=%d: element %d = %x, want %x (not bit-identical)",
					workers, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

// TestOrderedSlicesRankOrderPerElement checks the contract directly:
// every element is visited exactly once per rank, and the ranks arrive in
// strictly increasing order.
func TestOrderedSlicesRankOrderPerElement(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 8} {
		const n = 53
		p := NewPool(workers)
		lastRank := make([]int, n) // lastRank[i]-1 = last rank folded into i
		p.OrderedSlices(n, func(lo, hi, rank int) {
			for i := lo; i < hi; i++ {
				if lastRank[i] != rank {
					t.Errorf("P=%d: element %d saw rank %d after %d ranks", workers, i, rank, lastRank[i])
				}
				lastRank[i]++
			}
		})
		p.Close()
		for i, c := range lastRank {
			if c != workers {
				t.Fatalf("P=%d: element %d folded %d times, want %d", workers, i, c, workers)
			}
		}
	}
}

// TestOrderedSlicesSlicesAreChunks pins the partitioning to the static
// schedule: the slice handed to each folding worker is exactly
// Chunk(n, P, worker), and all P rank calls of a worker share its slice.
func TestOrderedSlicesSlicesAreChunks(t *testing.T) {
	const n = 41
	for _, workers := range []int{2, 3, 4, 8} {
		p := NewPool(workers)
		var mu sync.Mutex
		calls := map[[2]int]int{} // slice -> number of rank calls
		p.OrderedSlices(n, func(lo, hi, rank int) {
			mu.Lock()
			calls[[2]int{lo, hi}]++
			mu.Unlock()
		})
		p.Close()
		for w := 0; w < workers; w++ {
			lo, hi := Chunk(n, workers, w)
			if lo >= hi {
				continue
			}
			if got := calls[[2]int{lo, hi}]; got != workers {
				t.Fatalf("P=%d: slice [%d,%d) folded by %d rank calls, want %d", workers, lo, hi, got, workers)
			}
			delete(calls, [2]int{lo, hi})
		}
		if len(calls) != 0 {
			t.Fatalf("P=%d: unexpected non-chunk slices: %v", workers, calls)
		}
	}
}

// TestOrderedSlicesEmpty: n <= 0 must not call merge at all.
func TestOrderedSlicesEmpty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, -3} {
		p.OrderedSlices(n, func(lo, hi, rank int) {
			t.Fatalf("merge called for n=%d with [%d,%d) rank %d", n, lo, hi, rank)
		})
	}
}

// TestOrderedSlicesSingleWorker: P == 1 degenerates to one inline call
// covering the whole range.
func TestOrderedSlicesSingleWorker(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var calls atomic.Int32
	p.OrderedSlices(9, func(lo, hi, rank int) {
		calls.Add(1)
		if lo != 0 || hi != 9 || rank != 0 {
			t.Fatalf("got merge(%d, %d, %d), want merge(0, 9, 0)", lo, hi, rank)
		}
	})
	if got := calls.Load(); got != 1 {
		t.Fatalf("merge called %d times, want 1", got)
	}
}

// TestOrderedSlicesPanicPropagates: a panicking merge must surface on the
// caller and leave the pool usable, like every other worksharing region.
func TestOrderedSlicesPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected panic to propagate")
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
				t.Fatalf("unexpected panic payload: %v", r)
			}
		}()
		p.OrderedSlices(100, func(lo, hi, rank int) {
			if rank == 1 {
				panic("boom")
			}
		})
	}()
	// Pool must survive for the next region.
	got := make([]float32, 16)
	p.OrderedSlices(16, func(lo, hi, rank int) {
		for i := lo; i < hi; i++ {
			got[i]++
		}
	})
	for i, v := range got {
		if v != 4 {
			t.Fatalf("element %d folded %v times after recovery, want 4", i, v)
		}
	}
}
