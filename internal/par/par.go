// Package par is the OpenMP-like shared-memory parallel runtime that the
// coarse-grain parallelization is built on. It provides the three primitives
// the paper's code transformation needs (§3.2, Algorithms 4 and 5):
//
//   - Pool.For: a parallel loop over a coalesced iteration space with
//     OpenMP-default *static scheduling* (one contiguous chunk of
//     ceil(n/P) iterations per thread);
//   - per-worker privatization (workers are identified by a stable rank,
//     so callers can index per-thread private storage);
//   - Pool.Ordered: the `#pragma omp for ordered` analogue used for the
//     deterministic gradient reduction — each worker's merge section runs
//     in strictly increasing rank order, which makes the reduced value
//     bit-identical to the sequential execution for any worker count;
//   - Pool.OrderedSlices: the element-parallel form of the same ordered
//     reduction — the element space is sliced across workers and every
//     worker folds ranks 0..P-1 in rank order over its own slice, so each
//     element sees the exact accumulation order of Ordered while the
//     serial section shrinks from O(n) to O(n/P).
//
// The pool keeps P long-lived goroutines pinned to ranks so that repeated
// parallel regions (one per layer per pass per iteration — thousands per
// second) do not pay goroutine creation costs, mirroring an OpenMP thread
// team that persists across parallel regions.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"coarsegrain/internal/trace"
)

// Pool is a team of worker goroutines with stable ranks 0..P-1.
// A Pool with P == 1 executes everything inline on the caller's goroutine,
// which is the sequential execution the paper compares against.
//
// Pool methods are not safe for concurrent use by multiple goroutines: like
// an OpenMP thread team, one parallel region runs at a time.
type Pool struct {
	workers int
	// bar is the epoch-based spin-then-park fork/join barrier that
	// dispatches regions to worker ranks 1..P-1 (rank 0 is the caller).
	// See barrier.go for the protocol and its memory-ordering argument.
	bar *barrier

	mu         sync.Mutex
	firstPanic any

	closed bool

	// tracer, when non-nil, records one span per worker per worksharing
	// region, labeled with the tracer's current scope (the layer and
	// phase the driver set before entering the region). Nil costs one
	// branch per region.
	tracer *trace.Tracer
}

type task func(rank int)

// NewPool creates a team of n workers. n < 1 is treated as 1.
// Workers beyond rank 0 are goroutines; rank 0 work runs on the calling
// goroutine (like an OpenMP master thread).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{workers: n, bar: newBarrier(n)}
	for r := 1; r < n; r++ {
		go p.worker(r)
	}
	return p
}

// NewDefaultPool creates a pool sized to the machine (GOMAXPROCS).
func NewDefaultPool() *Pool { return NewPool(runtime.GOMAXPROCS(0)) }

// Workers returns the team size P.
func (p *Pool) Workers() int { return p.workers }

// SetTracer attaches (or, with nil, detaches) a span tracer. Worker
// spans carry the tracer's current scope, the executing rank, the band
// index and the iteration sub-range. Must be called while no region is
// in flight; create the tracer with at least Workers() ranks or worker
// spans beyond its team size are dropped.
func (p *Pool) SetTracer(t *trace.Tracer) { p.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (p *Pool) Tracer() *trace.Tracer { return p.tracer }

// traced wraps a loop body so each invocation records one worker span.
// band maps an invocation to its schedule-band index (the rank under
// static scheduling, the chunk index under dynamic).
func (p *Pool) traced(body func(lo, hi, rank int), band func(lo, rank int) int) func(lo, hi, rank int) {
	tr := p.tracer
	name, phase := tr.Scope()
	return func(lo, hi, rank int) {
		start := time.Now()
		body(lo, hi, rank)
		tr.Record(trace.Span{
			Name: name, Phase: phase, Rank: rank, Band: band(lo, rank),
			Lo: lo, Hi: hi, Start: tr.Stamp(start), Dur: time.Since(start),
		})
	}
}

// staticBand is the band index of a static-schedule invocation: the rank.
func staticBand(_, rank int) int { return rank }

// Close shuts the team down. The pool must not be used afterwards: a
// parallel region on a closed pool panics. Closing an already-closed
// pool is a no-op.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.workers > 1 {
		p.bar.close()
	}
}

// worker is the loop run by ranks 1..P-1: wait for the barrier to publish
// a region (or the shutdown epoch), run our share, retire it, repeat.
func (p *Pool) worker(rank int) {
	var last uint64
	for {
		last = p.bar.await(last)
		if p.bar.stop {
			return
		}
		p.runTask(p.bar.cur, rank)
	}
}

// runTask executes t(rank), converting a panic into a recorded failure so
// that a panicking loop body cannot wedge the team: the region still
// completes, and the first panic is re-raised on the caller's goroutine.
func (p *Pool) runTask(t task, rank int) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			if p.firstPanic == nil {
				//dnnlint:ignore hotalloc panic-recovery path: runs at most once per worker panic, never in steady state
				p.firstPanic = fmt.Sprintf("par: worker %d panicked: %v", rank, r)
			}
			p.mu.Unlock()
		}
		p.bar.done()
	}()
	t(rank)
}

// region runs t once on every rank (a `#pragma omp parallel` region) and
// waits for completion. Panics in workers are re-raised here.
func (p *Pool) region(t task) {
	if p.workers == 1 {
		t(0)
		return
	}
	if p.closed {
		panic("par: parallel region on closed Pool")
	}
	p.bar.post(t, p.workers)
	p.runTask(t, 0)
	p.bar.join()
	p.mu.Lock()
	fp := p.firstPanic
	p.firstPanic = nil
	p.mu.Unlock()
	if fp != nil {
		panic(fp)
	}
}

// Chunk returns the static-scheduling chunk [lo, hi) assigned to the given
// rank for an n-iteration loop: chunks are contiguous, of size ceil(n/P),
// and the trailing ranks may receive empty ranges. This is the OpenMP
// default ("static") schedule and is exposed so tests and the analytic
// scalability model can reason about the exact work distribution.
func Chunk(n, workers, rank int) (lo, hi int) {
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	lo = rank * chunk
	hi = lo + chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// For executes body over the iteration space [0, n) using static
// scheduling: worker r runs body(lo_r, hi_r, r) exactly once with the
// contiguous range returned by Chunk. Workers whose range is empty still
// enter the region (they may own private state) but body is not called for
// them. For blocks until all workers finish.
//
// body must not assume any execution order between ranks; ranges of
// distinct ranks are disjoint, so writes indexed by the iteration variable
// are race-free by construction.
func (p *Pool) For(n int, body func(lo, hi, rank int)) {
	if n <= 0 {
		return
	}
	if p.tracer.Enabled() {
		body = p.traced(body, staticBand)
	}
	if p.workers == 1 {
		body(0, n, 0)
		return
	}
	p.region(func(rank int) {
		lo, hi := Chunk(n, p.workers, rank)
		if lo < hi {
			body(lo, hi, rank)
		}
	})
}

// ForTiles is For over an iteration space whose natural work unit is a
// tile of `tile` consecutive iterations: the ceil(n/tile) tiles are
// statically chunked across workers (Chunk over tiles), and body receives
// the element range [lo, hi) of its tile run — lo is always tile-aligned,
// hi is min(hi_tile*tile, n). Blocked kernels use this so worker
// boundaries never split a tile (e.g. GemmParallel hands each worker
// whole micro-tile rows of C).
//
// Edge cases, part of the contract:
//
//   - tile <= 0 is treated as tile 1, i.e. ForTiles degenerates to For's
//     element-wise static schedule;
//   - n <= 0 runs nothing (as with For);
//   - n <= tile leaves a single (possibly partial) tile, which static
//     chunking assigns entirely to rank 0: body runs exactly once, as
//     body(0, n, 0) on the calling goroutine — the fork/join of an
//     all-but-one-idle region is skipped. Callers must not assume every
//     rank's body runs.
func (p *Pool) ForTiles(n, tile int, body func(lo, hi, rank int)) {
	if n <= 0 {
		return
	}
	if tile < 1 {
		tile = 1
	}
	tiles := (n + tile - 1) / tile
	if p.tracer.Enabled() {
		body = p.traced(body, staticBand)
	}
	if p.workers == 1 || tiles == 1 {
		body(0, n, 0)
		return
	}
	p.region(func(rank int) {
		tlo, thi := Chunk(tiles, p.workers, rank)
		if tlo >= thi {
			return
		}
		lo := tlo * tile
		hi := thi * tile
		if hi > n {
			hi = n
		}
		body(lo, hi, rank)
	})
}

// Region runs body once per rank, like `#pragma omp parallel` with no
// worksharing loop. Useful when the caller wants full control over private
// allocation and work splitting.
func (p *Pool) Region(body func(rank int)) {
	if tr := p.tracer; tr.Enabled() {
		name, phase := tr.Scope()
		inner := body
		body = func(rank int) {
			start := time.Now()
			inner(rank)
			tr.Record(trace.Span{
				Name: name, Phase: phase, Rank: rank, Band: rank,
				Start: tr.Stamp(start), Dur: time.Since(start),
			})
		}
	}
	p.region(body)
}

// Ordered runs body(rank) for every rank in strictly increasing rank order,
// on the caller's goroutine. This is the reduction idiom of Algorithm 5
// (lines 22-23): after the parallel loop has filled per-rank private
// gradient blobs, the merge happens in a fixed order so the result is
// bit-identical to a sequential execution regardless of the worker count.
//
// The merge itself is sequential by design: the paper chooses the ordered
// update over an unordered reduction precisely to preserve the sequential
// loss trace for debugging and tuning (§3.2.1).
func (p *Pool) Ordered(body func(rank int)) {
	for r := 0; r < p.workers; r++ {
		body(r)
	}
}

// ForOrdered is a convenience composition: a static parallel loop followed
// by an in-order merge phase. compute(lo, hi, rank) runs in parallel;
// merge(rank) then runs sequentially for rank = 0..P-1.
func (p *Pool) ForOrdered(n int, compute func(lo, hi, rank int), merge func(rank int)) {
	p.For(n, compute)
	p.Ordered(merge)
}

// OrderedSlices is the element-parallel form of Ordered for reductions
// whose state is an n-element vector (Algorithm 5's gradient merge viewed
// element-wise). The element space [0, n) is statically sliced across
// workers with Chunk, and each worker folds the source ranks 0..P-1 in
// strictly increasing rank order over its own slice: worker w calls
// merge(lo_w, hi_w, 0), merge(lo_w, hi_w, 1), ..., merge(lo_w, hi_w, P-1).
//
// Because every element is owned by exactly one worker and that worker
// applies the ranks in the same order Ordered would, each element's
// accumulation order — and therefore its rounding — is identical to the
// sequential ordered merge: the result is bit-identical to Ordered at any
// worker count, while the merge's critical path drops from O(n·P) to
// O(n·P/P) = O(n). This is the sanctioned way to accumulate one rank's
// float state into another's in parallel; dnnlint's orderedreduce
// analyzer flags hand-rolled cross-rank folds inside other worksharing
// constructs.
//
// merge(lo, hi, rank) must fold source rank's elements [lo, hi) into the
// reduction target and must touch nothing outside [lo, hi). Slices of
// distinct workers are disjoint, so the writes are race-free by
// construction. n <= 0 runs nothing. With P == 1 the single call
// merge(0, n, 0) runs inline on the caller.
func (p *Pool) OrderedSlices(n int, merge func(lo, hi, rank int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	fold := func(lo, hi, _ int) {
		for r := 0; r < workers; r++ {
			merge(lo, hi, r)
		}
	}
	if p.tracer.Enabled() {
		// One span per worker covering its whole rank fold: Band is the
		// folding worker's rank, Lo/Hi its element slice.
		fold = p.traced(fold, staticBand)
	}
	if workers == 1 {
		fold(0, n, 0)
		return
	}
	p.region(func(rank int) {
		lo, hi := Chunk(n, workers, rank)
		if lo < hi {
			fold(lo, hi, rank)
		}
	})
}

// ReduceTree merges per-rank partial results with a pairwise tree:
// combine(dst, src) must fold partial src into partial dst. Tree reduction
// is the *unordered* alternative the paper mentions — cheaper in parallel
// (log P depth) but not guaranteed to reproduce the sequential value
// because float addition is not associative. It is provided for the
// ablation study (A-red in DESIGN.md).
func (p *Pool) ReduceTree(combine func(dst, src int)) {
	for stride := 1; stride < p.workers; stride *= 2 {
		// The k-th pair of this stride is (2*stride*k, 2*stride*k+stride);
		// it exists while its src index stays below the team size, giving
		// ceil((workers-stride) / (2*stride)) pairs — computed instead of
		// materialized so steady-state tree reduction allocates nothing.
		m := (p.workers - stride + 2*stride - 1) / (2 * stride)
		p.For(m, func(klo, khi, _ int) {
			for k := klo; k < khi; k++ {
				dst := 2 * stride * k
				combine(dst, dst+stride)
			}
		})
	}
}
