package par

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunkCoversAndDisjoint(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 100, 1000} {
		for _, p := range []int{1, 2, 3, 7, 16, 64} {
			covered := make([]int, n)
			prevHi := 0
			for r := 0; r < p; r++ {
				lo, hi := Chunk(n, p, r)
				if lo > hi {
					t.Fatalf("n=%d p=%d r=%d: lo %d > hi %d", n, p, r, lo, hi)
				}
				if lo < prevHi {
					t.Fatalf("n=%d p=%d r=%d: overlap", n, p, r)
				}
				for i := lo; i < hi; i++ {
					covered[i]++
				}
				prevHi = hi
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d p=%d: iteration %d covered %d times", n, p, i, c)
				}
			}
		}
	}
}

func TestChunkStaticBalance(t *testing.T) {
	// Static scheduling gives every non-trailing rank exactly ceil(n/P).
	n, p := 103, 8
	want := (n + p - 1) / p
	lo, hi := Chunk(n, p, 0)
	if hi-lo != want {
		t.Fatalf("rank 0 got %d iterations, want %d", hi-lo, want)
	}
	// Trailing rank may be short or empty.
	lo, hi = Chunk(n, p, p-1)
	if hi-lo < 0 || hi-lo > want {
		t.Fatalf("trailing rank got %d iterations", hi-lo)
	}
}

func TestChunkDegenerateWorkers(t *testing.T) {
	lo, hi := Chunk(10, 0, 0)
	if lo != 0 || hi != 10 {
		t.Fatalf("workers=0 should behave as 1: [%d,%d)", lo, hi)
	}
}

func TestForCoversAllIterations(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		n := 1000
		hits := make([]int32, n)
		p.For(n, func(lo, hi, rank int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: iteration %d hit %d times", workers, i, h)
			}
		}
		p.Close()
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var called int32
	p.For(0, func(lo, hi, rank int) { atomic.AddInt32(&called, 1) })
	p.For(-5, func(lo, hi, rank int) { atomic.AddInt32(&called, 1) })
	if atomic.LoadInt32(&called) != 0 {
		t.Fatal("body called for empty loop")
	}
}

func TestForFewerIterationsThanWorkers(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var n int32
	p.For(3, func(lo, hi, rank int) {
		atomic.AddInt32(&n, int32(hi-lo))
	})
	if n != 3 {
		t.Fatalf("covered %d iterations, want 3", n)
	}
}

func TestForTilesCoverageAndAlignment(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 3, 4, 37, 64, 129, 1000} {
			for _, tile := range []int{1, 4, 16} {
				hits := make([]int32, n)
				var bad atomic.Value
				p.ForTiles(n, tile, func(lo, hi, rank int) {
					if lo%tile != 0 {
						bad.Store(fmt.Sprintf("lo %d not aligned to tile %d", lo, tile))
					}
					if hi != n && hi%tile != 0 {
						bad.Store(fmt.Sprintf("interior hi %d not aligned to tile %d", hi, tile))
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				if msg := bad.Load(); msg != nil {
					t.Fatalf("workers=%d n=%d tile=%d: %v", workers, n, tile, msg)
				}
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d tile=%d: iteration %d hit %d times", workers, n, tile, i, h)
					}
				}
			}
		}
		p.Close()
	}
}

func TestForTilesDegenerateTile(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// tile < 1 behaves as tile = 1; n <= 0 never calls the body.
	var covered int32
	p.ForTiles(10, 0, func(lo, hi, rank int) { atomic.AddInt32(&covered, int32(hi-lo)) })
	if covered != 10 {
		t.Fatalf("tile=0 covered %d iterations, want 10", covered)
	}
	p.ForTiles(0, 4, func(lo, hi, rank int) { t.Error("body called for empty loop") })
}

func TestForTilesFewerTilesThanWorkers(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	// 5 elements, tile 4 -> 2 tiles; at most 2 workers get work, the split
	// must still cover [0, 5) exactly once.
	var covered int32
	p.ForTiles(5, 4, func(lo, hi, rank int) { atomic.AddInt32(&covered, int32(hi-lo)) })
	if covered != 5 {
		t.Fatalf("covered %d iterations, want 5", covered)
	}
}

func TestRegionRunsEveryRankOnce(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	var mu sync.Mutex
	seen := map[int]int{}
	p.Region(func(rank int) {
		mu.Lock()
		seen[rank]++
		mu.Unlock()
	})
	if len(seen) != 5 {
		t.Fatalf("ranks seen: %v", seen)
	}
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("rank %d ran %d times", r, c)
		}
	}
}

func TestOrderedRunsInRankOrder(t *testing.T) {
	p := NewPool(6)
	defer p.Close()
	var order []int
	p.Ordered(func(rank int) { order = append(order, rank) })
	for i, r := range order {
		if r != i {
			t.Fatalf("ordered ran out of order: %v", order)
		}
	}
	if len(order) != 6 {
		t.Fatalf("ordered visited %d ranks", len(order))
	}
}

func TestForOrderedReductionDeterminism(t *testing.T) {
	// Summing a pseudo-random vector with privatization + ordered merge must
	// be bit-identical for every worker count (the paper's convergence-
	// invariance mechanism).
	n := 4097
	xs := make([]float32, n)
	v := float32(0.1)
	for i := range xs {
		v = v*1.0001 + 0.7
		xs[i] = v
	}
	ref := func() float32 {
		var s float32
		for _, x := range xs {
			s += x
		}
		return s
	}()
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		p := NewPool(workers)
		priv := make([]float32, workers)
		var total float32
		p.ForOrdered(n,
			func(lo, hi, rank int) {
				var s float32
				for i := lo; i < hi; i++ {
					s += xs[i]
				}
				priv[rank] = s
			},
			func(rank int) { total += priv[rank] },
		)
		p.Close()
		// Ordered merge of contiguous chunks reproduces the exact sequential
		// sum because each private partial is the exact sum of a contiguous
		// range and the merge adds them left to right... which is only
		// bit-equal when partials associate identically. Verify closeness
		// and, critically, determinism across repeated runs.
		if rel := float64(total-ref) / float64(ref); rel > 1e-5 || rel < -1e-5 {
			t.Fatalf("workers=%d: total %v vs ref %v", workers, total, ref)
		}
		p2 := NewPool(workers)
		priv2 := make([]float32, workers)
		var total2 float32
		p2.ForOrdered(n,
			func(lo, hi, rank int) {
				var s float32
				for i := lo; i < hi; i++ {
					s += xs[i]
				}
				priv2[rank] = s
			},
			func(rank int) { total2 += priv2[rank] },
		)
		p2.Close()
		if total != total2 {
			t.Fatalf("workers=%d: ordered reduction not deterministic: %v vs %v", workers, total, total2)
		}
	}
}

func TestPanicPropagatesAndPoolSurvives(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic in body not propagated")
			}
			if !strings.Contains(r.(string), "boom") {
				t.Fatalf("panic message lost: %v", r)
			}
		}()
		p.For(100, func(lo, hi, rank int) {
			if rank == 2 {
				panic("boom")
			}
		})
	}()
	// Pool must still work after a panicking region (failure injection).
	var n int32
	p.For(10, func(lo, hi, rank int) { atomic.AddInt32(&n, int32(hi-lo)) })
	if n != 10 {
		t.Fatalf("pool wedged after panic: covered %d", n)
	}
}

func TestPanicOnMaster(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("master panic not propagated")
		}
	}()
	p.For(3, func(lo, hi, rank int) {
		if rank == 0 {
			panic("master boom")
		}
	})
}

func TestNewPoolClampsToOne(t *testing.T) {
	p := NewPool(-3)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("workers = %d, want 1", p.Workers())
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}

func TestDefaultPool(t *testing.T) {
	p := NewDefaultPool()
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
}

func TestReduceTree(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 8} {
		p := NewPool(workers)
		parts := make([]int64, workers)
		for r := range parts {
			parts[r] = int64(r + 1)
		}
		p.ReduceTree(func(dst, src int) {
			parts[dst] += parts[src]
			parts[src] = 0
		})
		want := int64(workers * (workers + 1) / 2)
		if parts[0] != want {
			t.Fatalf("workers=%d: tree reduce = %d, want %d", workers, parts[0], want)
		}
		p.Close()
	}
}

// Property: for arbitrary n and worker counts, For covers each iteration
// exactly once with no overlap.
func TestQuickForExactCoverage(t *testing.T) {
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw % 2000)
		w := int(wRaw%16) + 1
		p := NewPool(w)
		defer p.Close()
		hits := make([]int32, n)
		p.For(n, func(lo, hi, rank int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceDecompose(t *testing.T) {
	s := NewSpace(3, 4, 5)
	if s.Extent() != 60 {
		t.Fatalf("extent = %d", s.Extent())
	}
	out := make([]int, 3)
	for civ := 0; civ < 60; civ++ {
		s.Decompose(civ, out)
		if got := (out[0]*4+out[1])*5 + out[2]; got != civ {
			t.Fatalf("Decompose(%d) = %v recomposes to %d", civ, out, got)
		}
		i0, i1, i2 := s.Index3(civ)
		if i0 != out[0] || i1 != out[1] || i2 != out[2] {
			t.Fatalf("Index3(%d) = (%d,%d,%d), want %v", civ, i0, i1, i2, out)
		}
	}
}

func TestSpaceIndex2(t *testing.T) {
	s := NewSpace(7, 9)
	for civ := 0; civ < 63; civ++ {
		i0, i1 := s.Index2(civ)
		if i0*9+i1 != civ {
			t.Fatalf("Index2(%d) = (%d,%d)", civ, i0, i1)
		}
	}
}

func TestSpaceZeroDim(t *testing.T) {
	if NewSpace(4, 0, 3).Extent() != 0 {
		t.Fatal("zero dim should give zero extent")
	}
}

func TestSpaceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dim did not panic")
		}
	}()
	NewSpace(2, -1)
}

func TestSpaceDims(t *testing.T) {
	s := NewSpace(2, 3)
	d := s.Dims()
	if len(d) != 2 || d[0] != 2 || d[1] != 3 {
		t.Fatalf("Dims = %v", d)
	}
}

func TestDecomposeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSpace(2, 2).Decompose(0, make([]int, 3))
}
