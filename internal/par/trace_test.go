package par

import (
	"sync/atomic"
	"testing"

	"coarsegrain/internal/trace"
)

// TestForTilesSingleTileContract pins the documented n <= tile behavior:
// the single (possibly partial) tile runs exactly once, as body(0, n, 0),
// on the calling goroutine.
func TestForTilesSingleTileContract(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var calls int32
	var gotLo, gotHi, gotRank int
	p.ForTiles(3, 8, func(lo, hi, rank int) {
		if atomic.AddInt32(&calls, 1) == 1 {
			gotLo, gotHi, gotRank = lo, hi, rank //dnnlint:ignore parbody single-tile contract runs the body exactly once, on the calling goroutine
		}
	})
	if calls != 1 {
		t.Fatalf("body ran %d times, want 1", calls)
	}
	if gotLo != 0 || gotHi != 3 || gotRank != 0 {
		t.Fatalf("body(%d, %d, %d), want body(0, 3, 0)", gotLo, gotHi, gotRank)
	}
}

// TestForTilesNegativeTile pins tile <= 0 (including negative) as
// tile 1 — ForTiles degenerates to For's element-wise static schedule.
func TestForTilesNegativeTile(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	seen := make([]int32, 9)
	p.ForTiles(9, -5, func(lo, hi, rank int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d covered %d times", i, c)
		}
	}
}

func TestForRecordsWorkerSpans(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	tr := trace.New(3)
	p.SetTracer(tr)
	if p.Tracer() != tr {
		t.Fatal("Tracer() does not return the attached tracer")
	}
	tr.SetScope("conv1", trace.PhaseForward)
	p.For(9, func(lo, hi, rank int) {})
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	var covered int
	for _, s := range spans {
		if s.Name != "conv1" || s.Phase != trace.PhaseForward {
			t.Fatalf("span has wrong scope: %+v", s)
		}
		if s.Band != s.Rank {
			t.Fatalf("static band %d != rank %d", s.Band, s.Rank)
		}
		covered += s.Hi - s.Lo
	}
	if covered != 9 {
		t.Fatalf("spans cover %d iterations, want 9", covered)
	}
}

func TestForDynamicRecordsChunkBands(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	tr := trace.New(2)
	p.SetTracer(tr)
	tr.SetScope("ip1", trace.PhaseBackward)
	p.ForDynamic(10, 2, func(lo, hi, rank int) {})
	bands := map[int]bool{}
	for _, s := range tr.Snapshot() {
		if s.Band != s.Lo/2 {
			t.Fatalf("dynamic band %d for lo %d", s.Band, s.Lo)
		}
		bands[s.Band] = true
	}
	if len(bands) != 5 {
		t.Fatalf("saw %d distinct bands, want 5", len(bands))
	}
}

func TestRegionRecordsPerRankSpans(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	tr := trace.New(4)
	p.SetTracer(tr)
	tr.SetScope("conv1", trace.PhaseBackward)
	p.Region(func(rank int) {})
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	ranks := map[int]bool{}
	for _, s := range spans {
		ranks[s.Rank] = true
	}
	for r := 0; r < 4; r++ {
		if !ranks[r] {
			t.Fatalf("rank %d missing from region spans", r)
		}
	}
}

// TestTracerDetach checks SetTracer(nil) restores the untraced path.
func TestTracerDetach(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	tr := trace.New(2)
	p.SetTracer(tr)
	p.For(4, func(lo, hi, rank int) {})
	p.SetTracer(nil)
	p.For(4, func(lo, hi, rank int) {})
	if got := tr.Len(); got != 2 {
		t.Fatalf("detached pool still recorded: %d spans", got)
	}
}

// BenchmarkForNoTracer / BenchmarkForTraced bound the per-region tracing
// cost on an empty body (the worst case: all overhead, no work).
func BenchmarkForNoTracer(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	for i := 0; i < b.N; i++ {
		p.For(64, func(lo, hi, rank int) {})
	}
}

func BenchmarkForTraced(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	tr := trace.NewWithCapacity(2, 1<<10)
	p.SetTracer(tr)
	tr.SetScope("bench", trace.PhaseForward)
	for i := 0; i < b.N; i++ {
		p.For(64, func(lo, hi, rank int) {})
	}
}
