package trace

import "testing"

// The phase vocabulary is a single table consumed by Phase.String, the
// Chrome-trace validator and dnnlint's phasespan analyzer; these tests
// pin the table's completeness so a new Phase cannot ship half-wired.

func TestPhaseNamesCoverEveryPhase(t *testing.T) {
	names := PhaseNames()
	if len(names) != int(PhaseRecover)+1 {
		t.Fatalf("PhaseNames has %d entries, want %d (one per Phase constant)",
			len(names), int(PhaseRecover)+1)
	}
	seen := map[string]bool{}
	for p := PhaseForward; p <= PhaseRecover; p++ {
		s := p.String()
		if s == "" {
			t.Fatalf("Phase(%d).String() is empty", p)
		}
		if !KnownPhase(s) {
			t.Fatalf("Phase(%d).String() = %q is not in the shared vocabulary", p, s)
		}
		if seen[s] {
			t.Fatalf("phase name %q appears twice", s)
		}
		seen[s] = true
	}
	if KnownPhase("bogus") {
		t.Fatal("KnownPhase accepted a name outside the table")
	}
	if got := Phase(99).String(); got != "region" {
		t.Fatalf("out-of-range phase renders %q, want the region fallback", got)
	}
}

func TestPhaseNamesReturnsACopy(t *testing.T) {
	a := PhaseNames()
	a[0] = "clobbered"
	if b := PhaseNames(); b[0] != PhaseForward.String() {
		t.Fatalf("mutating the returned slice leaked into the table: %q", b[0])
	}
}

func TestBeginEndRecordsNestedSpans(t *testing.T) {
	tr := New(1)
	tr.Begin("iteration", PhaseIteration)
	tr.Begin("fwd", PhaseForward)
	tr.End()
	tr.End()
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// The outer span starts first; Snapshot orders by start time.
	if spans[0].Name != "iteration" || spans[0].Phase != PhaseIteration {
		t.Fatalf("outer span = %+v", spans[0])
	}
	if spans[1].Name != "fwd" || spans[1].Phase != PhaseForward {
		t.Fatalf("inner span = %+v", spans[1])
	}
	for _, s := range spans {
		if s.Rank != RankDriver || s.Band != -1 {
			t.Fatalf("Begin/End span must be a driver non-band span, got %+v", s)
		}
		if s.Dur < 0 {
			t.Fatalf("negative duration: %+v", s)
		}
	}
	if spans[0].End() < spans[1].End() {
		t.Fatalf("outer span ended before inner: %+v vs %+v", spans[0], spans[1])
	}
}

func TestBeginEndNilAndUnbalancedAreSafe(t *testing.T) {
	var tr *Tracer
	tr.Begin("x", PhaseForward) // must not panic or read a clock
	tr.End()

	live := New(1)
	live.End() // no open span: no-op
	if got := live.Len(); got != 0 {
		t.Fatalf("unbalanced End recorded %d spans", got)
	}
	live.Begin("open", PhaseRegion)
	live.Reset() // Reset discards the open stack with the spans
	live.End()
	if got := live.Len(); got != 0 {
		t.Fatalf("End after Reset recorded %d spans, want 0", got)
	}
}
