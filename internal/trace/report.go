package trace

// This file derives the two textual reports from a span snapshot:
//
//   - LayerRecorder folds the driver-side layer spans back into a
//     profile.Recorder, so consumers of the paper-style per-layer table
//     (cmd/layerprof, PERFORMANCE.md) keep the exact output format the
//     profile package has always produced;
//   - UtilizationReport is new: it compares the time each worker rank was
//     busy inside a layer's parallel regions against the driver-observed
//     wall time of those regions, yielding per-layer utilization and the
//     static-schedule imbalance the paper's §4.2 scalability discussion
//     attributes the efficiency losses to.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"coarsegrain/internal/profile"
)

// LayerRecorder aggregates the driver-side layer spans of a snapshot
// into a profile.Recorder, preserving first-seen (network) order. The
// recorder's Table/Mean/SortedLayersByCost then behave exactly as if the
// net had recorded into it directly — the API-compatibility bridge
// between the tracer and the existing per-layer tooling.
func LayerRecorder(spans []Span) *profile.Recorder {
	rec := profile.NewRecorder()
	for _, s := range spans {
		if s.Rank != RankDriver {
			continue
		}
		switch s.Phase {
		case PhaseForward:
			rec.Add(s.Name, profile.Forward, s.Dur)
		case PhaseBackward:
			rec.Add(s.Name, profile.Backward, s.Dur)
		}
	}
	return rec
}

// regionKey identifies one aggregated parallel-region family.
type regionKey struct {
	name  string
	phase Phase
}

// regionStat accumulates worker-side busy time and driver-side wall time
// for one (layer, phase).
type regionStat struct {
	busy  []time.Duration // per-rank busy time inside the region family
	wall  time.Duration   // driver-observed total duration of the family
	spans int             // worker spans aggregated
	bands map[int]bool    // distinct band indices seen
}

// Utilization summarizes one (layer, phase) region family.
type Utilization struct {
	Name  string
	Phase Phase
	// Busy is the summed worker busy time, Wall the driver-observed wall
	// time of the enclosing engine calls.
	Busy, Wall time.Duration
	// Util is Busy / (Workers × Wall) — 1.0 means every rank was busy
	// for the whole region.
	Util float64
	// Imbalance is max(per-rank busy) / mean(per-rank busy) over ranks
	// that did any work — 1.0 is a perfectly balanced static schedule.
	Imbalance float64
	// Bands is the number of distinct schedule bands observed.
	Bands int
	// Spans is the number of worker spans aggregated.
	Spans int
}

// ComputeUtilization aggregates a snapshot into per-(layer, phase)
// utilization rows, ordered by first appearance of the driver span.
// workers is the pool team size the busy time is normalized against.
// Reduce rows aggregate the element-parallel ordered merge's per-worker
// fold spans against the driver's merge wall time, so the reduce section
// shows up with its own utilization instead of hiding inside backward.
// Comm rows (internal/dist's scatter/relay/fold/gather and the codec's
// encode/decode) are driver-side costs with no worker busy time: they
// report wall time, span count, and distinct peers in Bands, with Util
// and Imbalance zero. Compute phases without worker spans (sequential
// layers, update) produce no row.
func ComputeUtilization(spans []Span, workers int) []Utilization {
	if workers < 1 {
		workers = 1
	}
	stats := make(map[regionKey]*regionStat)
	var order []regionKey
	get := func(k regionKey) *regionStat {
		st, ok := stats[k]
		if !ok {
			st = &regionStat{busy: make([]time.Duration, workers), bands: make(map[int]bool)}
			stats[k] = st
			order = append(order, k)
		}
		return st
	}
	for _, s := range spans {
		if s.Phase != PhaseForward && s.Phase != PhaseBackward &&
			s.Phase != PhaseRegion && s.Phase != PhaseReduce &&
			s.Phase != PhaseComm {
			continue
		}
		k := regionKey{s.Name, s.Phase}
		if s.Phase == PhaseRegion {
			// Region spans are the coarse backward's privatize+compute
			// body; fold them into the backward family.
			k.phase = PhaseBackward
		}
		if s.Phase == PhaseComm {
			// Comm spans are driver-side only (the dist node runs on the
			// driving goroutine): wall time is the cost, Band is the peer
			// rank, and there is no worker busy time to normalize. One
			// row per sub-phase — scatter/relay/fold/gather and, under a
			// lossy wire format, encode/decode — so the codec's CPU cost
			// is visible beside the wire time it bought.
			st := get(k)
			st.wall += s.Dur
			st.spans++
			st.bands[s.Band] = true
			continue
		}
		st := get(k)
		if s.Rank == RankDriver {
			st.wall += s.Dur
			continue
		}
		if s.Rank >= 0 && s.Rank < workers {
			st.busy[s.Rank] += s.Dur
			st.spans++
			st.bands[s.Band] = true
		}
	}

	var out []Utilization
	for _, k := range order {
		st := stats[k]
		if st.spans == 0 {
			continue
		}
		var busy, maxBusy time.Duration
		active := 0
		for _, b := range st.busy {
			busy += b
			if b > maxBusy {
				maxBusy = b
			}
			if b > 0 {
				active++
			}
		}
		u := Utilization{
			Name: k.name, Phase: k.phase,
			Busy: busy, Wall: st.wall,
			Bands: len(st.bands), Spans: st.spans,
		}
		if st.wall > 0 {
			u.Util = float64(busy) / (float64(workers) * float64(st.wall))
		}
		if active > 0 {
			mean := float64(busy) / float64(active)
			if mean > 0 {
				u.Imbalance = float64(maxBusy) / mean
			}
		}
		out = append(out, u)
	}
	return out
}

// WorkerBusy returns the total busy time of each rank across all worker
// spans — the per-worker row of the utilization report.
func WorkerBusy(spans []Span, workers int) []time.Duration {
	if workers < 1 {
		workers = 1
	}
	busy := make([]time.Duration, workers)
	for _, s := range spans {
		if s.Rank >= 0 && s.Rank < workers {
			busy[s.Rank] += s.Dur
		}
	}
	return busy
}

// WriteUtilizationReport renders the worker-utilization/imbalance table
// for a snapshot: one row per traced (layer, phase) parallel-region
// family, an overall line, and the per-rank busy totals. This is the
// report OBSERVABILITY.md's methodology section builds the paper's
// Figure 5/8 efficiency analysis from.
func WriteUtilizationReport(w io.Writer, spans []Span, workers int) {
	rows := ComputeUtilization(spans, workers)
	fmt.Fprintf(w, "%-14s %-9s %12s %12s %7s %7s %6s\n",
		"layer", "phase", "busy (us)", "wall (us)", "util", "imbal", "bands")
	var totBusy, totWall, commWall time.Duration
	for _, u := range rows {
		fmt.Fprintf(w, "%-14s %-9s %12.1f %12.1f %6.1f%% %7.2f %6d\n",
			u.Name, u.Phase, us(u.Busy), us(u.Wall), u.Util*100, u.Imbalance, u.Bands)
		if u.Phase == PhaseComm {
			// Comm rows have no worker busy time; folding their wall
			// time into the compute TOTAL would dilute its utilization.
			commWall += u.Wall
			continue
		}
		totBusy += u.Busy
		totWall += u.Wall
	}
	if commWall > 0 {
		fmt.Fprintf(w, "%-14s %-9s %12s %12.1f\n", "COMM", "", "-", us(commWall))
	}
	if totWall > 0 {
		fmt.Fprintf(w, "%-14s %-9s %12.1f %12.1f %6.1f%%\n",
			"TOTAL", "", us(totBusy), us(totWall),
			float64(totBusy)/(float64(workers)*float64(totWall))*100)
	}
	busy := WorkerBusy(spans, workers)
	var sum time.Duration
	for _, b := range busy {
		sum += b
	}
	fmt.Fprintf(w, "per-worker busy:")
	for r, b := range busy {
		share := 0.0
		if sum > 0 {
			share = float64(b) / float64(sum) * 100
		}
		fmt.Fprintf(w, "  r%d %.1fus (%.1f%%)", r, us(b), share)
	}
	fmt.Fprintln(w)
}

// TopSpans returns the n longest spans of a snapshot — a quick textual
// answer to "where did the time go" without opening the timeline UI.
func TopSpans(spans []Span, n int) []Span {
	out := append([]Span(nil), spans...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// us converts a duration to float microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
