package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// None of these may panic.
	tr.Record(Span{Name: "x", Rank: 0})
	tr.SetScope("conv1", PhaseForward)
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Workers() != 0 {
		t.Fatal("nil tracer has state")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	if tr.Now() != 0 || tr.Stamp(time.Now()) != 0 {
		t.Fatal("nil tracer clock not zero")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer export succeeded")
	}
}

func TestRecordRoutesByRank(t *testing.T) {
	tr := New(2)
	tr.Record(Span{Name: "drv", Rank: RankDriver, Dur: time.Microsecond})
	tr.Record(Span{Name: "w0", Rank: 0, Dur: time.Microsecond})
	tr.Record(Span{Name: "w1", Rank: 1, Dur: time.Microsecond})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	// A rank the tracer has no shard for is dropped, not raced.
	tr.Record(Span{Name: "w9", Rank: 9})
	if tr.Len() != 3 || tr.Dropped() != 1 {
		t.Fatalf("unknown rank: Len=%d Dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewWithCapacity(1, 4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "s", Rank: 0, Lo: i, Hi: i + 1, Start: time.Duration(i)})
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("kept %d spans, want 4", len(spans))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	// The survivors are the newest, in order.
	for i, s := range spans {
		if want := 6 + i; s.Lo != want {
			t.Fatalf("span %d has Lo %d, want %d", i, s.Lo, want)
		}
	}
}

func TestSnapshotOrdersByStart(t *testing.T) {
	tr := New(2)
	tr.Record(Span{Name: "late", Rank: 1, Start: 300})
	tr.Record(Span{Name: "early", Rank: 0, Start: 100})
	tr.Record(Span{Name: "mid", Rank: RankDriver, Start: 200})
	got := tr.Snapshot()
	want := []string{"early", "mid", "late"}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("snapshot[%d] = %s, want %s", i, got[i].Name, name)
		}
	}
}

// TestConcurrentRecording exercises the lock-free single-writer-per-shard
// contract under the race detector: one goroutine per rank, all recording
// simultaneously, plus the driver on its own shard.
func TestConcurrentRecording(t *testing.T) {
	const workers = 8
	const perRank = 500
	tr := New(workers)
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < perRank; i++ {
				tr.Record(Span{Name: "conv1", Phase: PhaseForward, Rank: rank, Band: rank, Lo: i, Hi: i + 1, Dur: time.Microsecond})
			}
		}(r)
	}
	for i := 0; i < perRank; i++ {
		tr.Record(Span{Name: "conv1", Phase: PhaseForward, Rank: RankDriver, Dur: time.Microsecond})
	}
	wg.Wait()
	if got, want := tr.Len(), (workers+1)*perRank; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
}

func TestResetRearms(t *testing.T) {
	tr := NewWithCapacity(1, 2)
	for i := 0; i < 5; i++ {
		tr.Record(Span{Name: "s", Rank: 0})
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after reset: Len=%d Dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.Record(Span{Name: "s", Rank: 0})
	if tr.Len() != 1 {
		t.Fatalf("record after reset failed")
	}
}

func TestScope(t *testing.T) {
	tr := New(1)
	tr.SetScope("ip1", PhaseBackward)
	name, phase := tr.Scope()
	if name != "ip1" || phase != PhaseBackward {
		t.Fatalf("scope = %q/%v", name, phase)
	}
}

func TestPhaseStrings(t *testing.T) {
	for _, p := range []Phase{PhaseForward, PhaseBackward, PhaseReduce, PhaseUpdate, PhaseIteration, PhaseRegion} {
		if p.String() == "" || p.short() == "" {
			t.Fatalf("phase %d has empty name", p)
		}
	}
	if !strings.HasPrefix(PhaseForward.String(), "forward") {
		t.Fatal("unexpected forward phase name")
	}
}

// BenchmarkRecord measures the enabled recording path (the <5% overhead
// budget of the acceptance criteria rides on this being tens of ns).
func BenchmarkRecord(b *testing.B) {
	tr := NewWithCapacity(1, 1<<12)
	s := Span{Name: "conv1", Phase: PhaseForward, Rank: 0, Band: 0, Lo: 0, Hi: 64, Dur: time.Microsecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(s)
	}
}

// BenchmarkRecordNil measures the disabled path: a nil check only.
func BenchmarkRecordNil(b *testing.B) {
	var tr *Tracer
	s := Span{Name: "conv1", Rank: 0}
	for i := 0; i < b.N; i++ {
		tr.Record(s)
	}
}
