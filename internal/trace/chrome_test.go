package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildSample records a tiny but representative trace: two iterations of
// a two-layer net on a 2-worker team, with reduce and update sections.
func buildSample() *Tracer {
	tr := New(2)
	at := func(us int) time.Duration { return time.Duration(us) * time.Microsecond }
	for it := 0; it < 2; it++ {
		base := it * 100
		for li, layer := range []string{"conv1", "ip1"} {
			s := base + li*20
			tr.Record(Span{Name: layer, Phase: PhaseForward, Rank: RankDriver, Band: -1,
				Lo: 0, Hi: 8, Start: at(s), Dur: at(10), FLOPs: 1000, Bytes: 4096})
			tr.Record(Span{Name: layer, Phase: PhaseForward, Rank: 0, Band: 0,
				Lo: 0, Hi: 4, Start: at(s + 1), Dur: at(8)})
			tr.Record(Span{Name: layer, Phase: PhaseForward, Rank: 1, Band: 1,
				Lo: 4, Hi: 8, Start: at(s + 1), Dur: at(6)})
		}
		for li, layer := range []string{"ip1", "conv1"} {
			s := base + 40 + li*20
			tr.Record(Span{Name: layer, Phase: PhaseBackward, Rank: RankDriver, Band: -1,
				Lo: 0, Hi: 8, Start: at(s), Dur: at(12)})
			tr.Record(Span{Name: layer, Phase: PhaseBackward, Rank: 0, Band: 0,
				Lo: 0, Hi: 4, Start: at(s + 1), Dur: at(9)})
			tr.Record(Span{Name: layer, Phase: PhaseBackward, Rank: 1, Band: 1,
				Lo: 4, Hi: 8, Start: at(s + 1), Dur: at(10)})
			tr.Record(Span{Name: layer, Phase: PhaseReduce, Rank: RankDriver, Band: -1,
				Start: at(s + 13), Dur: at(2)})
		}
		tr.Record(Span{Name: "update", Phase: PhaseUpdate, Rank: RankDriver, Band: -1,
			Start: at(base + 85), Dur: at(5)})
		tr.Record(Span{Name: "iteration", Phase: PhaseIteration, Rank: RankDriver, Band: -1,
			Lo: it, Hi: it + 1, Start: at(base), Dur: at(95)})
	}
	return tr
}

func TestChromeExportRoundTrip(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if stats.Complete != tr.Len() {
		t.Fatalf("Complete = %d, want %d", stats.Complete, tr.Len())
	}
	// Driver + 2 workers.
	if stats.Threads != 3 {
		t.Fatalf("Threads = %d, want 3", stats.Threads)
	}
	if stats.Meta < 3 {
		t.Fatalf("Meta = %d, want >= 3 (process + thread names)", stats.Meta)
	}
	if stats.WallUS <= 0 {
		t.Fatalf("WallUS = %g", stats.WallUS)
	}
}

func TestChromeExportEventShape(t *testing.T) {
	tr := New(1)
	tr.Record(Span{Name: "conv1", Phase: PhaseForward, Rank: 0, Band: 0,
		Lo: 0, Hi: 16, Start: 1500 * time.Nanosecond, Dur: 2500 * time.Nanosecond,
		FLOPs: 42, Bytes: 128})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var span map[string]any
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			span = ev
		}
	}
	if span == nil {
		t.Fatal("no X event")
	}
	if span["name"] != "conv1 fwd" {
		t.Fatalf("name = %v", span["name"])
	}
	// ts/dur are microseconds.
	if span["ts"].(float64) != 1.5 || span["dur"].(float64) != 2.5 {
		t.Fatalf("ts/dur = %v/%v, want 1.5/2.5", span["ts"], span["dur"])
	}
	// Worker rank 0 renders on tid 1 (tid 0 is the driver).
	if span["tid"].(float64) != 1 {
		t.Fatalf("tid = %v, want 1", span["tid"])
	}
	args := span["args"].(map[string]any)
	for _, k := range []string{"band", "lo", "hi", "flops", "bytes", "phase"} {
		if _, ok := args[k]; !ok {
			t.Fatalf("args missing %q: %v", k, args)
		}
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":     "}{",
		"empty events": `{"traceEvents":[]}`,
		"nameless":     `{"traceEvents":[{"ph":"X","ts":1,"pid":1,"tid":0}]}`,
		"bad phase":    `{"traceEvents":[{"name":"a","ph":"Q","ts":1,"pid":1,"tid":0}]}`,
		"negative ts":  `{"traceEvents":[{"name":"a","ph":"X","ts":-4,"pid":1,"tid":0}]}`,
		"meta only":    `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":0}]}`,
		"wrong pid":    `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":7,"tid":0}]}`,
		"unknown cat":  `{"traceEvents":[{"name":"a","cat":"teleport","ph":"X","ts":1,"pid":1,"tid":0}]}`,
	}
	for label, doc := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validated", label)
		}
	}
}

func TestValidateAcceptsEveryPhase(t *testing.T) {
	// Every Phase the tracer can record must export under a category the
	// validator knows — this is the guard that keeps the known-phase
	// list, the Phase enum and the OBSERVABILITY.md table in sync.
	tr := New(1)
	for p := PhaseForward; p <= PhaseComm; p++ {
		tr.Record(Span{Name: "x", Phase: p, Rank: RankDriver, Band: -1,
			Start: time.Duration(p) * time.Microsecond, Dur: time.Microsecond})
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("a recordable phase fails validation: %v", err)
	}
}

func TestCommPhaseStrings(t *testing.T) {
	if PhaseComm.String() != "comm" || PhaseComm.short() != "comm" {
		t.Fatalf("PhaseComm renders %q/%q", PhaseComm.String(), PhaseComm.short())
	}
}

func TestChromeTraceFile(t *testing.T) {
	tr := buildSample()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateChromeTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Complete == 0 {
		t.Fatal("no spans in file")
	}
}
