package trace_test

import (
	"fmt"
	"os"
	"time"

	"coarsegrain/internal/profile"
	"coarsegrain/internal/trace"
)

// ExampleTracer records a hand-built iteration — one layer timed on the
// driver and split across two workers — and renders the derived reports.
// Real code never constructs spans by hand: net/solver/par record them
// when a tracer is attached (see OBSERVABILITY.md).
func ExampleTracer() {
	tr := trace.New(2)

	// The driver measures the whole forward pass of conv1 over 8 samples...
	tr.Record(trace.Span{
		Name: "conv1", Phase: trace.PhaseForward, Rank: trace.RankDriver,
		Band: -1, Lo: 0, Hi: 8, Start: 0, Dur: 100 * time.Microsecond,
	})
	// ...and each worker records its static band of the coalesced loop.
	tr.Record(trace.Span{
		Name: "conv1", Phase: trace.PhaseForward, Rank: 0,
		Band: 0, Lo: 0, Hi: 4, Start: 0, Dur: 90 * time.Microsecond,
	})
	tr.Record(trace.Span{
		Name: "conv1", Phase: trace.PhaseForward, Rank: 1,
		Band: 1, Lo: 4, Hi: 8, Start: 0, Dur: 80 * time.Microsecond,
	})

	spans := tr.Snapshot()
	fmt.Printf("%d spans, %d dropped\n", len(spans), tr.Dropped())
	rec := trace.LayerRecorder(spans) // the profile.Recorder bridge
	fmt.Printf("conv1 forward mean: %v\n", rec.Mean("conv1", profile.Forward))
	trace.WriteUtilizationReport(os.Stdout, spans, tr.Workers())

	// Output:
	// 3 spans, 0 dropped
	// conv1 forward mean: 100µs
	// layer          phase        busy (us)    wall (us)    util   imbal  bands
	// conv1          forward          170.0        100.0   85.0%    1.06      2
	// TOTAL                           170.0        100.0   85.0%
	// per-worker busy:  r0 90.0us (52.9%)  r1 80.0us (47.1%)
}
