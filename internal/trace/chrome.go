package trace

// This file implements Chrome trace-event export: the JSON object format
// consumed by chrome://tracing and by Perfetto's legacy-trace importer
// (https://ui.perfetto.dev → "Open trace file"). Every span becomes a
// complete ("X") event; the driver goroutine and each worker rank get
// their own named thread row, so band-level parallelism, worker
// imbalance and the serial reduce/update sections are directly visible
// on the timeline.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// chromeEvent is one entry of the trace-event "traceEvents" array. Field
// names and units (ts/dur in microseconds) are fixed by the format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromePID is the single process id all rows share.
const chromePID = 1

// WriteChromeTrace writes the recorded spans as Chrome trace-event JSON.
// Like Snapshot, it must run while no parallel region is in flight.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer")
	}
	spans := t.Snapshot()
	events := make([]chromeEvent, 0, len(spans)+t.Workers()+2)

	// Metadata rows: name the process and one thread per writer. The
	// sort index keeps the driver row on top.
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "coarsegrain training"},
	})
	events = append(events, chromeEvent{
		Name: "thread_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "driver (net/solver)"},
	})
	for r := 0; r < t.Workers(); r++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: r + 1,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", r)},
		})
	}

	for _, s := range spans {
		args := map[string]any{"phase": s.Phase.String()}
		if s.Band >= 0 {
			args["band"] = s.Band
		}
		if s.Lo != s.Hi {
			args["lo"], args["hi"] = s.Lo, s.Hi
		}
		if s.FLOPs > 0 {
			args["flops"] = s.FLOPs
		}
		if s.Bytes > 0 {
			args["bytes"] = s.Bytes
		}
		events = append(events, chromeEvent{
			Name: s.Name + " " + s.Phase.short(),
			Cat:  s.Phase.String(),
			Ph:   "X",
			TS:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			PID:  chromePID,
			TID:  s.Rank + 1,
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the trace to path, creating or truncating
// the file.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ChromeStats summarizes a validated trace file.
type ChromeStats struct {
	// Events is the total event count, Complete the "X" span count,
	// Meta the metadata ("M") count.
	Events, Complete, Meta int
	// Threads is the number of distinct tid rows seen.
	Threads int
	// WallUS is the span of [min ts, max ts+dur] in microseconds.
	WallUS float64
}

// The validator accepts exactly the categories the exporters emit: the
// shared phase vocabulary (PhaseNames in trace.go). Adding a Phase
// without adding its table row fails CI's trace smoke instead of
// shipping unlabeled spans; dnnlint's phasespan analyzer enforces the
// same vocabulary statically at every span construction site.

// ValidateChromeTrace parses trace-event JSON from r and checks the
// invariants the exporters guarantee: a non-empty traceEvents array,
// every complete event carrying a name, a known phase category and
// non-negative ts/dur, and a consistent pid. It is the "tiny Go check"
// scripts/check.sh runs over the dnnbench smoke trace (via
// cmd/tracecheck).
func ValidateChromeTrace(r io.Reader) (ChromeStats, error) {
	var doc chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return ChromeStats{}, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return ChromeStats{}, fmt.Errorf("trace: empty traceEvents array")
	}
	stats := ChromeStats{Events: len(doc.TraceEvents)}
	tids := make(map[int]bool)
	var minTS, maxEnd float64
	first := true
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return stats, fmt.Errorf("trace: event %d has no name", i)
		}
		if ev.PID != chromePID {
			return stats, fmt.Errorf("trace: event %d has pid %d, want %d", i, ev.PID, chromePID)
		}
		tids[ev.TID] = true
		switch ev.Ph {
		case "M":
			stats.Meta++
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				return stats, fmt.Errorf("trace: event %d (%s) has negative ts/dur", i, ev.Name)
			}
			if !KnownPhase(ev.Cat) {
				return stats, fmt.Errorf("trace: event %d (%s) has unknown phase category %q", i, ev.Name, ev.Cat)
			}
			stats.Complete++
			if first || ev.TS < minTS {
				minTS = ev.TS
			}
			if end := ev.TS + ev.Dur; first || end > maxEnd {
				maxEnd = end
			}
			first = false
		default:
			return stats, fmt.Errorf("trace: event %d has unsupported phase %q", i, ev.Ph)
		}
	}
	if stats.Complete == 0 {
		return stats, fmt.Errorf("trace: no complete (X) spans")
	}
	stats.Threads = len(tids)
	stats.WallUS = maxEnd - minTS
	return stats, nil
}

// ValidateChromeTraceFile is ValidateChromeTrace over a file.
func ValidateChromeTraceFile(path string) (ChromeStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ChromeStats{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ValidateChromeTrace(f)
}
