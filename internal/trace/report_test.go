package trace

import (
	"strings"
	"testing"
	"time"

	"coarsegrain/internal/profile"
)

func TestLayerRecorderMatchesProfileSemantics(t *testing.T) {
	tr := buildSample()
	rec := LayerRecorder(tr.Snapshot())

	// Only driver-side forward/backward spans count, first-seen order.
	if got := rec.Layers(); len(got) != 2 || got[0] != "conv1" || got[1] != "ip1" {
		t.Fatalf("layers = %v", got)
	}
	// buildSample records two 10us forward driver spans per layer.
	if got := rec.Mean("conv1", profile.Forward); got != 10*time.Microsecond {
		t.Fatalf("conv1 fwd mean = %v", got)
	}
	if got := rec.Mean("conv1", profile.Backward); got != 12*time.Microsecond {
		t.Fatalf("conv1 bwd mean = %v", got)
	}
	// The rendered table is the profile package's format verbatim.
	table := rec.Table()
	for _, want := range []string{"layer", "fwd (us)", "bwd (us)", "weight", "conv1", "ip1", "TOTAL"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestComputeUtilization(t *testing.T) {
	tr := buildSample()
	rows := ComputeUtilization(tr.Snapshot(), 2)
	if len(rows) != 4 { // 2 layers × fwd/bwd
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	byKey := map[string]Utilization{}
	for _, u := range rows {
		byKey[u.Name+"/"+u.Phase.String()] = u
	}
	u, ok := byKey["conv1/forward"]
	if !ok {
		t.Fatalf("no conv1/forward row: %+v", rows)
	}
	// Two iterations: busy = 2*(8+6)us = 28us, wall = 2*10us = 20us,
	// util = 28/(2*20) = 0.70, imbalance = 8/7.
	if u.Busy != 28*time.Microsecond || u.Wall != 20*time.Microsecond {
		t.Fatalf("busy/wall = %v/%v", u.Busy, u.Wall)
	}
	if u.Util < 0.699 || u.Util > 0.701 {
		t.Fatalf("util = %v, want 0.70", u.Util)
	}
	if u.Imbalance < 1.14 || u.Imbalance > 1.15 {
		t.Fatalf("imbalance = %v, want 8/7", u.Imbalance)
	}
	if u.Bands != 2 || u.Spans != 4 {
		t.Fatalf("bands/spans = %d/%d", u.Bands, u.Spans)
	}
}

func TestWorkerBusy(t *testing.T) {
	tr := buildSample()
	busy := WorkerBusy(tr.Snapshot(), 2)
	if len(busy) != 2 {
		t.Fatalf("len = %d", len(busy))
	}
	// Rank 0: 2 iters × (8+8 fwd + 9+9 bwd)us = 68us.
	if busy[0] != 68*time.Microsecond {
		t.Fatalf("rank 0 busy = %v", busy[0])
	}
	// Rank 1: 2 iters × (6+6 fwd + 10+10 bwd)us = 64us.
	if busy[1] != 64*time.Microsecond {
		t.Fatalf("rank 1 busy = %v", busy[1])
	}
}

func TestWriteUtilizationReport(t *testing.T) {
	tr := buildSample()
	var b strings.Builder
	WriteUtilizationReport(&b, tr.Snapshot(), 2)
	out := b.String()
	for _, want := range []string{"layer", "util", "imbal", "conv1", "ip1", "TOTAL", "per-worker busy:", "r0", "r1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTopSpans(t *testing.T) {
	spans := []Span{
		{Name: "a", Dur: 3}, {Name: "b", Dur: 9}, {Name: "c", Dur: 5},
	}
	top := TopSpans(spans, 2)
	if len(top) != 2 || top[0].Name != "b" || top[1].Name != "c" {
		t.Fatalf("top = %+v", top)
	}
	// n larger than the snapshot is fine.
	if got := TopSpans(spans, 10); len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
}

// Comm spans (internal/dist's driver-side exchange phases, including the
// codec's encode/decode) must surface as their own report rows: wall
// time and span count with distinct peers in Bands, and no dilution of
// the compute TOTAL's utilization.
func TestUtilizationReportShowsCommPhases(t *testing.T) {
	tr := New(2)
	tr.Record(Span{Name: "ip1", Phase: PhaseBackward, Rank: RankDriver, Dur: 100 * time.Microsecond})
	tr.Record(Span{Name: "ip1", Phase: PhaseBackward, Rank: 0, Dur: 90 * time.Microsecond})
	tr.Record(Span{Name: "ip1", Phase: PhaseBackward, Rank: 1, Dur: 90 * time.Microsecond})
	tr.Record(Span{Name: "encode", Phase: PhaseComm, Rank: RankDriver, Band: -1, Dur: 30 * time.Microsecond})
	tr.Record(Span{Name: "encode", Phase: PhaseComm, Rank: RankDriver, Band: -1, Dur: 10 * time.Microsecond})
	tr.Record(Span{Name: "decode", Phase: PhaseComm, Rank: RankDriver, Band: 1, Dur: 20 * time.Microsecond})
	spans := tr.Snapshot()

	rows := ComputeUtilization(spans, 2)
	byName := map[string]Utilization{}
	for _, u := range rows {
		byName[u.Name+"/"+u.Phase.String()] = u
	}
	enc, ok := byName["encode/comm"]
	if !ok {
		t.Fatalf("no encode comm row in %+v", rows)
	}
	if enc.Wall != 40*time.Microsecond || enc.Spans != 2 || enc.Busy != 0 {
		t.Fatalf("encode row wrong: %+v", enc)
	}
	dec, ok := byName["decode/comm"]
	if !ok || dec.Wall != 20*time.Microsecond {
		t.Fatalf("decode row wrong: %+v (ok=%v)", dec, ok)
	}

	var buf strings.Builder
	WriteUtilizationReport(&buf, spans, 2)
	out := buf.String()
	for _, want := range []string{"encode", "decode", "COMM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// The compute TOTAL must not be diluted by comm wall time:
	// busy 180us / (2 workers x 100us wall) = 90%.
	if !strings.Contains(out, "90.0%") {
		t.Fatalf("compute TOTAL diluted by comm wall:\n%s", out)
	}
}
