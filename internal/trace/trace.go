// Package trace is the span-based observability subsystem behind the
// repository's measurement methodology (OBSERVABILITY.md). It subsumes
// and extends package profile: where a profile.Recorder aggregates serial
// per-layer wall-clock means, a Tracer records every timed interval as a
// Span carrying (layer, phase, schedule band, worker rank, iteration
// range, duration, FLOP/byte counters), which is what the paper's §4
// analysis actually needs — band-level parallelism, worker imbalance and
// the serial sections are invisible to an aggregate mean but obvious on a
// timeline.
//
// # Recording model
//
// A Tracer owns one ring-buffered shard per writer: shard 0 for the
// driving goroutine (RankDriver) and one shard per worker rank of the
// par.Pool team. Each shard has exactly one writer — the pool pins ranks
// to goroutines, and the driver records only between parallel regions —
// so the recording path is lock-free and allocation-free: an index
// bump and a struct store, no atomics, no channels. When a shard's ring
// fills, the oldest spans are overwritten and counted in Dropped().
//
// Reading (Snapshot, the exporters in chrome.go and report.go) must
// happen while no parallel region is in flight; the pool's fork/join
// barrier provides the happens-before edge that makes worker-shard reads
// safe without synchronization.
//
// # The nil-tracer contract
//
// All Tracer methods are safe on a nil receiver and do nothing, so
// instrumented code holds a plain *Tracer handle and pays one nil check
// (via Enabled) when tracing is off. Instrumentation sites must hoist the
// time.Now calls behind Enabled so that a nil tracer adds no clock reads
// to the hot path; see net.Forward for the idiom.
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Phase classifies what a span measures.
type Phase uint8

const (
	// PhaseForward is a forward pass (of a layer, or of one worker's band).
	PhaseForward Phase = iota
	// PhaseBackward is a backward pass.
	PhaseBackward
	// PhaseReduce is the coarse engine's gradient merge (Algorithm 5's
	// ordered reduction or the tree ablation) — the serial section the
	// paper's §3.2.1 overhead analysis singles out.
	PhaseReduce
	// PhaseUpdate is the solver's updateCoefficients step.
	PhaseUpdate
	// PhaseIteration is one full training iteration (forward + backward +
	// update); Lo carries the iteration number.
	PhaseIteration
	// PhaseRegion is a generic parallel region with no worksharing loop
	// (par.Pool.Region), e.g. the coarse backward's privatize+compute body.
	PhaseRegion
	// PhaseGuard is a training-health check (internal/guard): the NaN/Inf
	// and gradient-norm scan plus the recovery decision it produced, so
	// skips and rollbacks are visible on the training timeline.
	PhaseGuard
	// PhaseServe is a serving-path interval (internal/serve): one
	// dispatched inference batch, or one request's queue-to-completion
	// latency. Batch spans carry the batch size in Hi; request spans
	// carry the request's batch slot in Lo.
	PhaseServe
	// PhaseComm is a distributed-communication interval (internal/dist):
	// shipping a gradient slice, waiting on a peer's contribution, or
	// routing reduced slices / updated weights through the reduction
	// tree. Spans carry the element count in Hi and the peer rank in
	// Band, so the comm/compute overlap (DISTRIBUTED.md) is visible on
	// the timeline next to the backward spans it hides behind.
	PhaseComm
	// PhaseRecover is a fault-recovery interval (internal/dist's elastic
	// layer): fencing the cluster at a checkpoint, re-forming the
	// reduction tree over the survivors, or re-broadcasting weights to a
	// re-formed membership. Spans carry the fence iteration in Lo and the
	// new membership size in Hi, so the cost of surviving a failure is
	// visible on the timeline next to the iterations it interrupted.
	PhaseRecover
)

// phaseNames is the single source of truth for the phase vocabulary,
// indexed by Phase value. Everything that names a phase derives from
// this table: Phase.String, the Chrome-trace validator (chrome.go), the
// OBSERVABILITY.md phase table, and dnnlint's phasespan analyzer (which
// imports it via PhaseNames/KnownPhase). Adding a Phase means adding a
// row here — and nowhere else.
var phaseNames = [...]string{
	PhaseForward:   "forward",
	PhaseBackward:  "backward",
	PhaseReduce:    "reduce",
	PhaseUpdate:    "update",
	PhaseIteration: "iteration",
	PhaseRegion:    "region",
	PhaseGuard:     "guard",
	PhaseServe:     "serve",
	PhaseComm:      "comm",
	PhaseRecover:   "recover",
}

// PhaseNames returns the canonical phase vocabulary in Phase order.
// The returned slice is a copy; callers may keep it.
func PhaseNames() []string {
	out := make([]string, len(phaseNames))
	copy(out, phaseNames[:])
	return out
}

// KnownPhase reports whether name is in the phase vocabulary — the
// exact acceptance test the Chrome-trace validator applies to span
// categories, shared so tools (dnnlint's phasespan analyzer, external
// trace consumers) cannot drift from the exporter.
func KnownPhase(name string) bool {
	for _, n := range phaseNames {
		if n == name {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "region"
}

// short is the compact phase tag used in exported span names.
func (p Phase) short() string {
	switch p {
	case PhaseForward:
		return "fwd"
	case PhaseBackward:
		return "bwd"
	case PhaseReduce:
		return "red"
	case PhaseUpdate:
		return "upd"
	case PhaseIteration:
		return "iter"
	case PhaseGuard:
		return "guard"
	case PhaseServe:
		return "srv"
	case PhaseComm:
		return "comm"
	case PhaseRecover:
		return "rcv"
	default:
		return "region"
	}
}

// RankDriver marks spans recorded by the driving goroutine (the layer
// loop, the solver) rather than a pool worker.
const RankDriver = -1

// Span is one timed interval.
type Span struct {
	// Name is the layer or region name ("conv1", "iteration").
	Name string
	// Phase classifies the interval.
	Phase Phase
	// Rank is the worker rank that executed the interval, or RankDriver.
	Rank int
	// Band is the static-schedule band (chunk) index within the parallel
	// region — the rank for static scheduling, the chunk index for
	// dynamic — or -1 when the span is not a worksharing band.
	Band int
	// Lo and Hi delimit the coalesced iteration sub-range the span
	// covered (Lo == Hi when not applicable). PhaseIteration spans store
	// the iteration number in Lo.
	Lo, Hi int
	// Start is the span's start offset from the tracer epoch.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
	// FLOPs counts the floating-point operations the interval performed
	// (0 when the layer does not report cost).
	FLOPs int64
	// Bytes counts the blob memory the interval touched (0 when unknown).
	Bytes int64
}

// End returns the span's end offset from the tracer epoch.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// DefaultShardCapacity is the per-writer ring size of New. At ~100 bytes
// per span it bounds each shard to ~1.6 MB; a 200-iteration LeNet run
// records well under half of it per worker.
const DefaultShardCapacity = 1 << 14

// shard is a single-writer span ring. pos is the overwrite cursor once
// the ring has wrapped (it then indexes the oldest span).
type shard struct {
	buf     []Span
	pos     int
	dropped int64
	_       [64]byte // keep adjacent shards off one cache line
}

func (sh *shard) add(s Span) {
	if len(sh.buf) < cap(sh.buf) {
		//dnnlint:ignore hotalloc ring fill within capacity pre-allocated by NewTracer; never grows
		sh.buf = append(sh.buf, s)
		return
	}
	sh.buf[sh.pos] = s
	sh.pos++
	if sh.pos == len(sh.buf) {
		sh.pos = 0
	}
	sh.dropped++
}

// snapshot returns the shard's spans in recording order.
func (sh *shard) snapshot() []Span {
	if sh.dropped == 0 {
		return append([]Span(nil), sh.buf...)
	}
	out := make([]Span, 0, len(sh.buf))
	out = append(out, sh.buf[sh.pos:]...)
	return append(out, sh.buf[:sh.pos]...)
}

// Tracer records spans from one driver goroutine and one pool worker
// team. Create it with the team size, attach it with the SetTracer hooks
// (solver → net → engine → pool), and export after training completes.
type Tracer struct {
	epoch  time.Time
	shards []*shard
	// scope is the (name, phase) label the driver sets before entering a
	// parallel region; workers stamp it onto their band spans. Written
	// only between regions, read inside them — the pool's channel
	// send/join orders the accesses.
	scopeName  string
	scopePhase Phase
	// droppedUnknown counts spans whose rank had no shard (a pool larger
	// than the tracer was created for). Atomic: any goroutine may trip it.
	droppedUnknown int64
	// open is the driver-side stack of Begin spans awaiting End.
	// Driver-goroutine only, like scope.
	open []openSpan
}

// openSpan is one Begin awaiting its matching End.
type openSpan struct {
	name  string
	phase Phase
	start time.Duration
}

// New creates a tracer for a team of `workers` pool ranks (plus the
// driver) with DefaultShardCapacity spans per writer. workers < 1 is
// treated as 1.
func New(workers int) *Tracer { return NewWithCapacity(workers, DefaultShardCapacity) }

// NewWithCapacity is New with an explicit per-writer ring capacity
// (minimum 1).
func NewWithCapacity(workers, perShard int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	if perShard < 1 {
		perShard = 1
	}
	t := &Tracer{epoch: time.Now(), shards: make([]*shard, workers+1)}
	for i := range t.shards {
		t.shards[i] = &shard{buf: make([]Span, 0, perShard)}
	}
	return t
}

// Enabled reports whether the handle records anything; it is the nil
// check instrumented code hoists its time.Now calls behind.
func (t *Tracer) Enabled() bool { return t != nil }

// Workers returns the pool team size the tracer was created for.
func (t *Tracer) Workers() int {
	if t == nil {
		return 0
	}
	return len(t.shards) - 1
}

// Epoch returns the tracer's time origin.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Now returns the current offset from the epoch.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Stamp converts an absolute time into an epoch offset.
func (t *Tracer) Stamp(at time.Time) time.Duration {
	if t == nil {
		return 0
	}
	return at.Sub(t.epoch)
}

// SetScope labels the parallel region the driver is about to enter;
// worker band spans recorded inside it carry this (name, phase). Must be
// called from the driving goroutine only, outside any region.
func (t *Tracer) SetScope(name string, phase Phase) {
	if t == nil {
		return
	}
	t.scopeName, t.scopePhase = name, phase
}

// Scope returns the current region label.
func (t *Tracer) Scope() (string, Phase) {
	if t == nil {
		return "", PhaseRegion
	}
	return t.scopeName, t.scopePhase
}

// Record stores one span on the writer shard selected by s.Rank. It is
// safe for concurrent use by the pool team because ranks are pinned to
// goroutines: each shard has exactly one writer. Spans with a rank the
// tracer has no shard for are dropped (counted in Dropped), never raced.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	idx := s.Rank + 1
	if idx < 0 || idx >= len(t.shards) {
		atomic.AddInt64(&t.droppedUnknown, 1)
		return
	}
	t.shards[idx].add(s)
}

// Begin opens a driver-side span: the interval from this call to the
// matching End is recorded as one Span with Rank RankDriver. Begins
// nest as a stack (iteration > phase > layer). Like every Tracer method
// it is nil-safe, and a nil tracer reads no clock. dnnlint's phasespan
// analyzer enforces the pairing discipline statically: every Begin must
// have a block-balanced End, and phase must be a named constant from
// the shared vocabulary.
func (t *Tracer) Begin(name string, phase Phase) {
	if t == nil {
		return
	}
	//dnnlint:ignore hotalloc span stack reaches steady nesting depth once, then reuses its capacity
	t.open = append(t.open, openSpan{name: name, phase: phase, start: t.Now()})
}

// End closes the innermost open Begin and records its span. End with no
// open span (or on a nil tracer) does nothing, so unwinding paths may
// call it unconditionally.
func (t *Tracer) End() {
	if t == nil {
		return
	}
	if len(t.open) == 0 {
		return
	}
	o := t.open[len(t.open)-1]
	t.open = t.open[:len(t.open)-1]
	t.Record(Span{Name: o.name, Phase: o.phase, Rank: RankDriver, Band: -1,
		Start: o.start, Dur: t.Now() - o.start})
}

// Dropped returns how many spans were lost to ring overflow or unknown
// ranks. Call it (like Snapshot) only while no region is in flight.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	n := atomic.LoadInt64(&t.droppedUnknown)
	for _, sh := range t.shards {
		n += sh.dropped
	}
	return n
}

// Len returns the number of spans currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, sh := range t.shards {
		n += len(sh.buf)
	}
	return n
}

// Snapshot copies all recorded spans, ordered by start time. It must run
// while no parallel region is in flight (after the pool's join), which
// is what makes the lock-free worker shards safe to read.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, t.Len())
	for _, sh := range t.shards {
		out = append(out, sh.snapshot()...)
	}
	sortSpans(out)
	return out
}

// Reset discards all recorded spans and re-arms the epoch, keeping the
// shard capacity. Like Snapshot, driver-only, between regions.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for _, sh := range t.shards {
		sh.buf = sh.buf[:0]
		sh.pos = 0
		sh.dropped = 0
	}
	atomic.StoreInt64(&t.droppedUnknown, 0)
	t.open = t.open[:0]
	t.epoch = time.Now()
}

// sortSpans orders spans by start offset (stable for equal starts, so
// enclosing driver spans precede the worker spans they contain when both
// start on the same tick).
func sortSpans(spans []Span) {
	// Shards are individually ordered, but a plain sort keeps the code
	// obvious; span counts are bounded by the ring capacities.
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Dur > spans[j].Dur
	})
}
