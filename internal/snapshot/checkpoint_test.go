package snapshot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

func tinySolver(t *testing.T, seed uint64) *solver.Solver {
	t.Helper()
	s, err := solver.New(zoo.LeNetSolver(), tinyNet(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckpointPathRoundTrips(t *testing.T) {
	p := CheckpointPath("d", 1234)
	if p != filepath.Join("d", "ckpt-00001234.cgdnn") {
		t.Fatalf("unexpected checkpoint path %q", p)
	}
	it, ok := checkpointIter(filepath.Base(p))
	if !ok || it != 1234 {
		t.Fatalf("checkpointIter(%q) = %d, %v", filepath.Base(p), it, ok)
	}
	for _, bad := range []string{
		"model.cgdnn", "ckpt-.cgdnn", "ckpt-12.bin", "ckpt--1.cgdnn",
		".ckpt-00000001.cgdnn.tmp-123", "ckpt-xx.cgdnn",
	} {
		if _, ok := checkpointIter(bad); ok {
			t.Errorf("%q misparsed as a checkpoint", bad)
		}
	}
}

func TestSaveCheckpointRetention(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts") // SaveCheckpoint must create it
	s := tinySolver(t, 1)
	for i := 0; i < 5; i++ {
		s.Step(1)
		if _, err := SaveCheckpoint(dir, s, 3); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("retention kept %d checkpoints, want 3: %v", len(paths), paths)
	}
	// The survivors are the NEWEST three, ascending.
	for i, want := range []int{3, 4, 5} {
		if paths[i] != CheckpointPath(dir, want) {
			t.Fatalf("survivor %d = %q, want iteration %d", i, paths[i], want)
		}
	}
}

func TestCheckpointsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := tinySolver(t, 2)
	s.Step(1)
	if _, err := SaveCheckpoint(dir, s, 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", "model.cgdnn", ".ckpt-00000009.cgdnn.tmp-1"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "ckpt-00000002.cgdnn"), 0o755); err != nil {
		t.Fatal(err)
	}
	paths, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != CheckpointPath(dir, 1) {
		t.Fatalf("foreign files leaked into listing: %v", paths)
	}
}

func TestLoadLatestValidFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	s := tinySolver(t, 3)
	for i := 0; i < 3; i++ {
		s.Step(1)
		if _, err := SaveCheckpoint(dir, s, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Damage the two newest in different ways: bit rot and a torn write.
	newest := CheckpointPath(dir, 3)
	f, err := os.OpenFile(newest, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAA}, 40); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.Truncate(CheckpointPath(dir, 2), 17); err != nil {
		t.Fatal(err)
	}

	s2 := tinySolver(t, 4)
	path, skipped, err := LoadLatestValid(dir, s2)
	if err != nil {
		t.Fatal(err)
	}
	if path != CheckpointPath(dir, 1) {
		t.Fatalf("loaded %q, want the oldest (only valid) checkpoint", path)
	}
	if len(skipped) != 2 || skipped[0] != CheckpointPath(dir, 3) || skipped[1] != CheckpointPath(dir, 2) {
		t.Fatalf("skipped = %v, want newest-first damaged pair", skipped)
	}
	if s2.Iter() != 1 {
		t.Fatalf("restored iteration %d, want 1", s2.Iter())
	}
}

func TestLoadLatestValidAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := tinySolver(t, 5)
	s.Step(1)
	if _, err := SaveCheckpoint(dir, s, 0); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(CheckpointPath(dir, 1), 3); err != nil {
		t.Fatal(err)
	}
	_, skipped, err := LoadLatestValid(dir, tinySolver(t, 6))
	if err == nil {
		t.Fatal("all-corrupt directory reported success")
	}
	if !strings.Contains(err.Error(), "no valid checkpoint") {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped = %v", skipped)
	}
}

func TestLoadLatestValidEmptyDir(t *testing.T) {
	if _, _, err := LoadLatestValid(t.TempDir(), tinySolver(t, 7)); err == nil {
		t.Fatal("empty directory reported success")
	}
	if _, _, err := LoadLatestValid(filepath.Join(t.TempDir(), "missing"), tinySolver(t, 8)); err == nil {
		t.Fatal("missing directory reported success")
	}
}
