package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"coarsegrain/internal/solver"
)

// Checkpoint files are named ckpt-<iteration>.cgdnn so the training
// iteration a file belongs to is recoverable from the directory listing
// alone; zero-padding keeps lexical and numeric order identical.
const (
	ckptPrefix = "ckpt-"
	ckptExt    = ".cgdnn"
)

// CheckpointPath returns the canonical file name of the checkpoint for
// the given iteration inside dir.
func CheckpointPath(dir string, iter int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", ckptPrefix, iter, ckptExt))
}

// checkpointIter parses the iteration out of a checkpoint base name, or
// returns false for files that are not checkpoints (temp files, foreign
// files sharing the directory).
func checkpointIter(base string) (int, bool) {
	if !strings.HasPrefix(base, ckptPrefix) || !strings.HasSuffix(base, ckptExt) {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(base, ckptPrefix), ckptExt)
	it, err := strconv.Atoi(num)
	if err != nil || it < 0 {
		return 0, false
	}
	return it, true
}

// Checkpoints lists the checkpoint files in dir, sorted by ascending
// iteration. Non-checkpoint files are ignored. A missing directory is
// reported as an error.
func Checkpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type ck struct {
		path string
		iter int
	}
	var cks []ck
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if it, ok := checkpointIter(e.Name()); ok {
			cks = append(cks, ck{path: filepath.Join(dir, e.Name()), iter: it})
		}
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].iter < cks[j].iter })
	paths := make([]string, len(cks))
	for i, c := range cks {
		paths[i] = c.path
	}
	return paths, nil
}

// SaveCheckpoint atomically writes the solver's full state to
// CheckpointPath(dir, s.Iter()), creating dir if needed, then applies the
// retention policy: only the newest keep checkpoints survive (keep <= 0
// keeps everything). Returns the path written.
func SaveCheckpoint(dir string, s *solver.Solver, keep int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := CheckpointPath(dir, s.Iter())
	if err := SaveSolverFile(path, s); err != nil {
		return "", err
	}
	if keep > 0 {
		if err := PruneCheckpoints(dir, keep); err != nil {
			return path, err
		}
	}
	return path, nil
}

// PruneCheckpoints removes all but the newest keep checkpoints from dir.
func PruneCheckpoints(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	paths, err := Checkpoints(dir)
	if err != nil {
		return err
	}
	for _, p := range paths[:max(0, len(paths)-keep)] {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	return nil
}

// LoadLatestValid restores the solver from the newest checkpoint in dir
// that passes the format's validation (magic, framing, per-section CRC32,
// architecture match), falling back through older checkpoints when the
// newest is truncated or corrupt — the crash-recovery entry point: a run
// that died mid-save, or a checkpoint later damaged on disk, never blocks
// resumption as long as one valid checkpoint survives.
//
// Returns the path actually loaded and the invalid paths skipped on the
// way (newest first). When no checkpoint is valid, the error wraps the
// newest checkpoint's failure.
func LoadLatestValid(dir string, s *solver.Solver) (path string, skipped []string, err error) {
	paths, err := Checkpoints(dir)
	if err != nil {
		return "", nil, err
	}
	if len(paths) == 0 {
		return "", nil, fmt.Errorf("snapshot: no checkpoints in %s", dir)
	}
	var firstErr error
	for i := len(paths) - 1; i >= 0; i-- {
		lerr := LoadSolverFile(paths[i], s)
		if lerr == nil {
			return paths[i], skipped, nil
		}
		if firstErr == nil {
			firstErr = lerr
		}
		skipped = append(skipped, paths[i])
	}
	return "", skipped, fmt.Errorf("snapshot: no valid checkpoint in %s (newest: %w)", dir, firstErr)
}
