package snapshot

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

// buildNet constructs a LeNet with a FIXED data stream and seed-dependent
// weights, so two nets with different seeds see the same batches but start
// from different parameters.
func buildNet(t *testing.T, seed uint64) *net.Net {
	t.Helper()
	src := data.NewSyntheticMNIST(128, 99)
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetRoundTrip(t *testing.T) {
	a := buildNet(t, 1)
	var buf bytes.Buffer
	if err := SaveNet(&buf, a); err != nil {
		t.Fatal(err)
	}
	b := buildNet(t, 2) // different weights
	if err := LoadNet(&buf, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Params() {
		av, bv := a.Params()[i].Data(), b.Params()[i].Data()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("param %d differs after round trip", i)
			}
		}
	}
	// Same forward behaviour.
	if a.Forward() != b.Forward() {
		t.Fatal("restored net computes a different loss")
	}
}

func TestNetFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.cgdnn")
	a := buildNet(t, 3)
	if err := SaveNetFile(path, a); err != nil {
		t.Fatal(err)
	}
	b := buildNet(t, 4)
	if err := LoadNetFile(path, b); err != nil {
		t.Fatal(err)
	}
	if a.Params()[0].Data()[0] != b.Params()[0].Data()[0] {
		t.Fatal("file round trip lost data")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	n := buildNet(t, 5)
	cases := [][]byte{
		nil,
		[]byte("XXXXX"),
		[]byte("CGDNN\x03"),                 // unsupported version
		[]byte("CGDNN\x00"),                 // version 0
		[]byte("CGDNN\x02"),                 // truncated after version
		[]byte("CGDNN\x01\xff\xff\xff\xff"), // huge count
		[]byte("CGDNN\x02\xff\xff\xff\xff"), // huge count, v2
		[]byte("CGDNN\x01\x01\x00\x00\x00\x05\x00"), // truncated name
		[]byte("CGDNN\x02\x01\x00\x00\x00\x05\x00"), // truncated name, v2
		// v2 section with a plausible body but a missing checksum.
		[]byte("CGDNN\x02\x01\x00\x00\x00\x01\x00x\x00"),
	}
	for i, c := range cases {
		if err := LoadNet(bytes.NewReader(c), n); err == nil {
			t.Fatalf("case %d: corrupt input accepted", i)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	a := buildNet(t, 6)
	var buf bytes.Buffer
	if err := SaveNet(&buf, a); err != nil {
		t.Fatal(err)
	}
	// A different architecture: conv-less tiny net.
	src := data.NewSyntheticMNIST(64, 6)
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	specs = specs[:0:0]
	_ = specs
	// Easiest wrong-arch: rename a section. Encode as v1 (no checksums) so
	// the name-matching path is exercised, not the CRC.
	raw := writeSectionsV1(t, netSections(a))
	mut := bytes.Replace(raw, []byte("conv1[0]"), []byte("convX[0]"), 1)
	if err := LoadNet(bytes.NewReader(mut), a); err == nil {
		t.Fatal("renamed section accepted")
	} else if !strings.Contains(err.Error(), "missing parameter") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSolverRoundTripResumesExactly(t *testing.T) {
	// Train 10 iterations, snapshot, train 10 more -> trace A.
	// Restore the snapshot into a fresh solver, train 10 -> must equal
	// the second half of trace A bit for bit (same data cursor is
	// achieved by rebuilding the net, whose data layer restarts, so we
	// snapshot at iteration 0 of a *fresh* epoch: use a dataset exactly
	// one batch long so the cursor position is always 0 at batch start).
	mk := func() (*net.Net, *solver.Solver) {
		src := data.NewSyntheticMNIST(8, 7) // one batch per epoch
		specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		n, err := net.New(specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := solver.New(zoo.LeNetSolver(), n)
		if err != nil {
			t.Fatal(err)
		}
		return n, s
	}
	_, s1 := mk()
	s1.Step(10)
	var buf bytes.Buffer
	if err := SaveSolver(&buf, s1); err != nil {
		t.Fatal(err)
	}
	traceA := s1.Step(10)

	_, s2 := mk()
	if err := LoadSolver(bytes.NewReader(buf.Bytes()), s2); err != nil {
		t.Fatal(err)
	}
	if s2.Iter() != 10 {
		t.Fatalf("restored iter = %d, want 10", s2.Iter())
	}
	traceB := s2.Step(10)
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Fatalf("resumed training diverged at step %d: %v vs %v", i, traceB[i], traceA[i])
		}
	}
}

func TestSolverFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solver.cgdnn")
	_, s := func() (*net.Net, *solver.Solver) {
		n := buildNet(t, 8)
		s, err := solver.New(zoo.LeNetSolver(), n)
		if err != nil {
			t.Fatal(err)
		}
		return n, s
	}()
	s.Step(3)
	if err := SaveSolverFile(path, s); err != nil {
		t.Fatal(err)
	}
	n2 := buildNet(t, 9)
	s2, err := solver.New(zoo.LeNetSolver(), n2)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadSolverFile(path, s2); err != nil {
		t.Fatal(err)
	}
	if s2.Iter() != 3 {
		t.Fatalf("iter = %d", s2.Iter())
	}
}

func TestPeekSolverIterReadsWithoutASolver(t *testing.T) {
	// PeekSolverIter is what a resuming rank calls before it has built
	// anything: the iteration decides the data-cursor skip and the
	// StartIter of the whole group, so it must be readable from the
	// file alone.
	dir := t.TempDir()
	path := filepath.Join(dir, "solver.cgdnn")
	n := buildNet(t, 8)
	s, err := solver.New(zoo.LeNetSolver(), n)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(5)
	if err := SaveSolverFile(path, s); err != nil {
		t.Fatal(err)
	}
	it, err := PeekSolverIter(path)
	if err != nil {
		t.Fatal(err)
	}
	if it != 5 {
		t.Fatalf("peeked iteration %d, want 5", it)
	}

	netPath := filepath.Join(dir, "net.cgdnn")
	if err := SaveNetFile(netPath, n); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekSolverIter(netPath); err == nil {
		t.Fatal("peek accepted a net-only snapshot")
	}
	if _, err := PeekSolverIter(filepath.Join(dir, "missing.cgdnn")); err == nil {
		t.Fatal("peek accepted a missing file")
	}
}

func TestLoadSolverRejectsNetSnapshot(t *testing.T) {
	n := buildNet(t, 10)
	var buf bytes.Buffer
	if err := SaveNet(&buf, n); err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(zoo.LeNetSolver(), n)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadSolver(&buf, s); err == nil {
		t.Fatal("net-only snapshot accepted as solver snapshot")
	}
}

func TestAdamSolverRoundTrip(t *testing.T) {
	mk := func() *solver.Solver {
		src := data.NewSyntheticMNIST(8, 12) // one batch per epoch
		specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		n, err := net.New(specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := solver.New(solver.Config{Type: solver.Adam, BaseLR: 0.001}, n)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := mk()
	s1.Step(5)
	var buf bytes.Buffer
	if err := SaveSolver(&buf, s1); err != nil {
		t.Fatal(err)
	}
	traceA := s1.Step(5)

	s2 := mk()
	if err := LoadSolver(bytes.NewReader(buf.Bytes()), s2); err != nil {
		t.Fatal(err)
	}
	traceB := s2.Step(5)
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Fatalf("adam resume diverged at %d: %v vs %v (second moments lost?)", i, traceB[i], traceA[i])
		}
	}
}

func TestLoadSolverRejectsMissingSecondMoments(t *testing.T) {
	// An SGD snapshot must not resume an Adam solver.
	src := data.NewSyntheticMNIST(8, 13)
	specs, _ := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: 13})
	n, _ := net.New(specs, nil)
	sgd, err := solver.New(solver.Config{Type: solver.SGD, BaseLR: 0.01}, n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSolver(&buf, sgd); err != nil {
		t.Fatal(err)
	}
	src2 := data.NewSyntheticMNIST(8, 13)
	specs2, _ := zoo.LeNet(src2, zoo.Options{BatchSize: 8, Seed: 13})
	n2, _ := net.New(specs2, nil)
	adam, err := solver.New(solver.Config{Type: solver.Adam, BaseLR: 0.001}, n2)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadSolver(&buf, adam); err == nil {
		t.Fatal("SGD snapshot accepted by Adam solver")
	}
}

func TestBatchNormStateSurvivesSnapshot(t *testing.T) {
	mk := func() *net.Net {
		src := data.NewSyntheticMNIST(64, 14)
		d, err := layers.NewData("data", src, 8)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := layers.NewBatchNorm("bn", layers.BNConfig{Momentum: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		n, err := net.New([]net.LayerSpec{
			{Layer: d, Tops: []string{"data", "label"}},
			{Layer: bn, Bottoms: []string{"data"}, Tops: []string{"bn"}},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk()
	// Accumulate non-trivial moving statistics.
	for i := 0; i < 5; i++ {
		a.Forward()
	}
	var buf bytes.Buffer
	if err := SaveNet(&buf, a); err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := LoadNet(&buf, b); err != nil {
		t.Fatal(err)
	}
	var aBN, bBN *layers.BatchNorm
	for _, l := range a.Layers() {
		if v, ok := l.(*layers.BatchNorm); ok {
			aBN = v
		}
	}
	for _, l := range b.Layers() {
		if v, ok := l.(*layers.BatchNorm); ok {
			bBN = v
		}
	}
	for si := range aBN.StateBlobs() {
		av := aBN.StateBlobs()[si].Data()
		bv := bBN.StateBlobs()[si].Data()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("BN state %d lost in snapshot", si)
			}
		}
	}
	// And it is non-trivial (the moving mean moved off zero).
	if aBN.StateBlobs()[0].AsumData() == 0 {
		t.Fatal("test premise broken: moving mean never updated")
	}
}

// microSource is a 4-pixel 2-class dataset: small enough that a solver
// snapshot of a net built on it is a few hundred bytes, so exhaustive
// per-byte corruption sweeps stay fast.
type microSource struct{}

func (microSource) Len() int           { return 4 }
func (microSource) SampleShape() []int { return []int{1, 2, 2} }
func (microSource) Classes() int       { return 2 }
func (microSource) Read(i int, out []float32) int {
	for j := range out {
		out[j] = float32(i*len(out)+j) / 16
	}
	return i % 2
}

// tinyNet builds a minimal data -> inner-product -> softmax-loss network
// over microSource. Its snapshot is tiny, so exhaustive corruption sweeps
// over every byte offset finish in milliseconds.
func tinyNet(t *testing.T, seed uint64) *net.Net {
	t.Helper()
	d, err := layers.NewData("data", microSource{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := layers.NewInnerProduct("ip", layers.IPConfig{NumOutput: 2, RNG: rng.New(seed, 0)})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New([]net.LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: ip, Bottoms: []string{"data"}, Tops: []string{"ip"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip", "label"}, Tops: []string{"loss"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// writeSectionsV1 reproduces the legacy version-1 encoding (no per-section
// checksums) so compatibility is pinned against real v1 bytes, not against
// the current writer.
func writeSectionsV1(t *testing.T, secs []section) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(version1)
	binary.Write(&buf, binary.LittleEndian, uint32(len(secs)))
	for _, s := range secs {
		binary.Write(&buf, binary.LittleEndian, uint16(len(s.name)))
		buf.WriteString(s.name)
		buf.WriteByte(byte(len(s.shape)))
		for _, d := range s.shape {
			binary.Write(&buf, binary.LittleEndian, uint32(d))
		}
		binary.Write(&buf, binary.LittleEndian, s.data)
	}
	return buf.Bytes()
}

func TestV1SnapshotsStillLoad(t *testing.T) {
	a := tinyNet(t, 1)
	raw := writeSectionsV1(t, netSections(a))
	b := tinyNet(t, 2)
	for _, p := range b.Params() {
		for j := range p.Data() {
			p.Data()[j] = -7 // scribble so the load visibly overwrites
		}
	}
	if err := LoadNet(bytes.NewReader(raw), b); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	for i := range a.Params() {
		av, bv := a.Params()[i].Data(), b.Params()[i].Data()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("param %d differs after v1 load", i)
			}
		}
	}
}

func TestCurrentWriterEmitsV2(t *testing.T) {
	n := tinyNet(t, 1)
	var buf bytes.Buffer
	if err := SaveNet(&buf, n); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[5]; got != version2 {
		t.Fatalf("writer emitted version %d, want %d", got, version2)
	}
}

// TestV2DetectsEverySingleByteCorruption is the acceptance property of the
// checksummed format: flipping ANY single byte of a v2 solver snapshot
// must make the load fail — never panic, never silently restore garbage.
func TestV2DetectsEverySingleByteCorruption(t *testing.T) {
	n := tinyNet(t, 3)
	s, err := solver.New(zoo.LeNetSolver(), n)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(2)
	var buf bytes.Buffer
	if err := SaveSolver(&buf, s); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	mut := make([]byte, len(clean))
	// The target solver is reused: LoadSolver only needs to REJECT, and a
	// fresh target per offset would dominate the sweep's runtime.
	n2 := tinyNet(t, 4)
	s2, err := solver.New(zoo.LeNetSolver(), n2)
	if err != nil {
		t.Fatal(err)
	}
	for off := range clean {
		copy(mut, clean)
		mut[off] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("offset %d: corrupt snapshot PANICKED: %v", off, r)
				}
			}()
			if err := LoadSolver(bytes.NewReader(mut), s2); err == nil {
				t.Fatalf("offset %d: single-byte corruption loaded silently", off)
			}
		}()
	}
}

func TestAtomicSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.cgdnn")
	n := tinyNet(t, 5)
	if err := SaveNetFile(path, n); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: the rename must replace, and no temp survives.
	if err := SaveNetFile(path, n); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.cgdnn" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after atomic saves: %v", names)
	}
}

func TestAtomicSavePreservesOldFileOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.cgdnn")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := func(w io.Writer) error {
		w.Write([]byte("partial"))
		return os.ErrClosed // simulated mid-write crash
	}
	if err := writeFileAtomic(path, boom); err == nil {
		t.Fatal("failed write reported success")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("failed save clobbered the previous snapshot: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp file leaked after failed save: %d entries", len(entries))
	}
}

// TestHistoryRestoredExactly pins the satellite requirement: resuming
// restores not just parameters and the iteration counter, but the full
// update history (momentum buffers for SGD, accumulated squared gradients
// for AdaGrad) bit for bit.
func TestHistoryRestoredExactly(t *testing.T) {
	for _, cfg := range []solver.Config{
		{Type: solver.SGD, BaseLR: 0.01, Momentum: 0.9},
		{Type: solver.AdaGrad, BaseLR: 0.01},
	} {
		mk := func() *solver.Solver {
			src := data.NewSyntheticMNIST(8, 21) // one batch per epoch
			specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			n, err := net.New(specs, nil)
			if err != nil {
				t.Fatal(err)
			}
			s, err := solver.New(cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		s1 := mk()
		s1.Step(6)
		var buf bytes.Buffer
		if err := SaveSolver(&buf, s1); err != nil {
			t.Fatal(err)
		}
		s2 := mk()
		if err := LoadSolver(bytes.NewReader(buf.Bytes()), s2); err != nil {
			t.Fatal(err)
		}
		for i := range s1.History() {
			h1, h2 := s1.History()[i].Data(), s2.History()[i].Data()
			nonzero := false
			for j := range h1 {
				if h1[j] != h2[j] {
					t.Fatalf("%s: history %d differs after restore", cfg.Type, i)
				}
				if h1[j] != 0 {
					nonzero = true
				}
			}
			if !nonzero {
				t.Fatalf("%s: history %d all zero — premise broken", cfg.Type, i)
			}
		}
		// And the trajectories coincide bit for bit.
		traceA := s1.Step(6)
		traceB := s2.Step(6)
		for i := range traceA {
			if traceA[i] != traceB[i] {
				t.Fatalf("%s: resumed trajectory diverged at %d", cfg.Type, i)
			}
		}
	}
}

// FuzzReadSections asserts the reader's no-panic contract on arbitrary
// bytes: corrupt input must produce errors, never a crash.
func FuzzReadSections(f *testing.F) {
	f.Add([]byte("CGDNN"))
	f.Add([]byte("CGDNN\x01\x01\x00\x00\x00"))
	f.Add([]byte("CGDNN\x02\x01\x00\x00\x00\x02\x00ab\x01\x04\x00\x00\x00"))
	var buf bytes.Buffer
	secs := []section{{name: "w", shape: []int{2, 2}, data: []float32{1, 2, 3, 4}}}
	if err := writeSections(&buf, secs); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, raw []byte) {
		secs, err := readSections(bytes.NewReader(raw))
		if err == nil && len(raw) < 10 {
			t.Fatalf("implausibly short input parsed: %d sections", len(secs))
		}
	})
}
