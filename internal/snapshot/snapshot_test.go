package snapshot

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

// buildNet constructs a LeNet with a FIXED data stream and seed-dependent
// weights, so two nets with different seeds see the same batches but start
// from different parameters.
func buildNet(t *testing.T, seed uint64) *net.Net {
	t.Helper()
	src := data.NewSyntheticMNIST(128, 99)
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetRoundTrip(t *testing.T) {
	a := buildNet(t, 1)
	var buf bytes.Buffer
	if err := SaveNet(&buf, a); err != nil {
		t.Fatal(err)
	}
	b := buildNet(t, 2) // different weights
	if err := LoadNet(&buf, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Params() {
		av, bv := a.Params()[i].Data(), b.Params()[i].Data()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("param %d differs after round trip", i)
			}
		}
	}
	// Same forward behaviour.
	if a.Forward() != b.Forward() {
		t.Fatal("restored net computes a different loss")
	}
}

func TestNetFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.cgdnn")
	a := buildNet(t, 3)
	if err := SaveNetFile(path, a); err != nil {
		t.Fatal(err)
	}
	b := buildNet(t, 4)
	if err := LoadNetFile(path, b); err != nil {
		t.Fatal(err)
	}
	if a.Params()[0].Data()[0] != b.Params()[0].Data()[0] {
		t.Fatal("file round trip lost data")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	n := buildNet(t, 5)
	cases := [][]byte{
		nil,
		[]byte("XXXXX"),
		[]byte("CGDNN\x02"),                 // bad version
		[]byte("CGDNN\x01\xff\xff\xff\xff"), // huge count
		[]byte("CGDNN\x01\x01\x00\x00\x00\x05\x00"), // truncated name
	}
	for i, c := range cases {
		if err := LoadNet(bytes.NewReader(c), n); err == nil {
			t.Fatalf("case %d: corrupt input accepted", i)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	a := buildNet(t, 6)
	var buf bytes.Buffer
	if err := SaveNet(&buf, a); err != nil {
		t.Fatal(err)
	}
	// A different architecture: conv-less tiny net.
	src := data.NewSyntheticMNIST(64, 6)
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	specs = specs[:0:0]
	_ = specs
	// Easiest wrong-arch: truncate the snapshot's sections by renaming.
	raw := buf.Bytes()
	mut := bytes.Replace(raw, []byte("conv1[0]"), []byte("convX[0]"), 1)
	if err := LoadNet(bytes.NewReader(mut), a); err == nil {
		t.Fatal("renamed section accepted")
	} else if !strings.Contains(err.Error(), "missing parameter") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSolverRoundTripResumesExactly(t *testing.T) {
	// Train 10 iterations, snapshot, train 10 more -> trace A.
	// Restore the snapshot into a fresh solver, train 10 -> must equal
	// the second half of trace A bit for bit (same data cursor is
	// achieved by rebuilding the net, whose data layer restarts, so we
	// snapshot at iteration 0 of a *fresh* epoch: use a dataset exactly
	// one batch long so the cursor position is always 0 at batch start).
	mk := func() (*net.Net, *solver.Solver) {
		src := data.NewSyntheticMNIST(8, 7) // one batch per epoch
		specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		n, err := net.New(specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := solver.New(zoo.LeNetSolver(), n)
		if err != nil {
			t.Fatal(err)
		}
		return n, s
	}
	_, s1 := mk()
	s1.Step(10)
	var buf bytes.Buffer
	if err := SaveSolver(&buf, s1); err != nil {
		t.Fatal(err)
	}
	traceA := s1.Step(10)

	_, s2 := mk()
	if err := LoadSolver(bytes.NewReader(buf.Bytes()), s2); err != nil {
		t.Fatal(err)
	}
	if s2.Iter() != 10 {
		t.Fatalf("restored iter = %d, want 10", s2.Iter())
	}
	traceB := s2.Step(10)
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Fatalf("resumed training diverged at step %d: %v vs %v", i, traceB[i], traceA[i])
		}
	}
}

func TestSolverFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solver.cgdnn")
	_, s := func() (*net.Net, *solver.Solver) {
		n := buildNet(t, 8)
		s, err := solver.New(zoo.LeNetSolver(), n)
		if err != nil {
			t.Fatal(err)
		}
		return n, s
	}()
	s.Step(3)
	if err := SaveSolverFile(path, s); err != nil {
		t.Fatal(err)
	}
	n2 := buildNet(t, 9)
	s2, err := solver.New(zoo.LeNetSolver(), n2)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadSolverFile(path, s2); err != nil {
		t.Fatal(err)
	}
	if s2.Iter() != 3 {
		t.Fatalf("iter = %d", s2.Iter())
	}
}

func TestLoadSolverRejectsNetSnapshot(t *testing.T) {
	n := buildNet(t, 10)
	var buf bytes.Buffer
	if err := SaveNet(&buf, n); err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(zoo.LeNetSolver(), n)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadSolver(&buf, s); err == nil {
		t.Fatal("net-only snapshot accepted as solver snapshot")
	}
}

func TestAdamSolverRoundTrip(t *testing.T) {
	mk := func() *solver.Solver {
		src := data.NewSyntheticMNIST(8, 12) // one batch per epoch
		specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		n, err := net.New(specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := solver.New(solver.Config{Type: solver.Adam, BaseLR: 0.001}, n)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := mk()
	s1.Step(5)
	var buf bytes.Buffer
	if err := SaveSolver(&buf, s1); err != nil {
		t.Fatal(err)
	}
	traceA := s1.Step(5)

	s2 := mk()
	if err := LoadSolver(bytes.NewReader(buf.Bytes()), s2); err != nil {
		t.Fatal(err)
	}
	traceB := s2.Step(5)
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Fatalf("adam resume diverged at %d: %v vs %v (second moments lost?)", i, traceB[i], traceA[i])
		}
	}
}

func TestLoadSolverRejectsMissingSecondMoments(t *testing.T) {
	// An SGD snapshot must not resume an Adam solver.
	src := data.NewSyntheticMNIST(8, 13)
	specs, _ := zoo.LeNet(src, zoo.Options{BatchSize: 8, Seed: 13})
	n, _ := net.New(specs, nil)
	sgd, err := solver.New(solver.Config{Type: solver.SGD, BaseLR: 0.01}, n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSolver(&buf, sgd); err != nil {
		t.Fatal(err)
	}
	src2 := data.NewSyntheticMNIST(8, 13)
	specs2, _ := zoo.LeNet(src2, zoo.Options{BatchSize: 8, Seed: 13})
	n2, _ := net.New(specs2, nil)
	adam, err := solver.New(solver.Config{Type: solver.Adam, BaseLR: 0.001}, n2)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadSolver(&buf, adam); err == nil {
		t.Fatal("SGD snapshot accepted by Adam solver")
	}
}

func TestBatchNormStateSurvivesSnapshot(t *testing.T) {
	mk := func() *net.Net {
		src := data.NewSyntheticMNIST(64, 14)
		d, err := layers.NewData("data", src, 8)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := layers.NewBatchNorm("bn", layers.BNConfig{Momentum: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		n, err := net.New([]net.LayerSpec{
			{Layer: d, Tops: []string{"data", "label"}},
			{Layer: bn, Bottoms: []string{"data"}, Tops: []string{"bn"}},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk()
	// Accumulate non-trivial moving statistics.
	for i := 0; i < 5; i++ {
		a.Forward()
	}
	var buf bytes.Buffer
	if err := SaveNet(&buf, a); err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := LoadNet(&buf, b); err != nil {
		t.Fatal(err)
	}
	var aBN, bBN *layers.BatchNorm
	for _, l := range a.Layers() {
		if v, ok := l.(*layers.BatchNorm); ok {
			aBN = v
		}
	}
	for _, l := range b.Layers() {
		if v, ok := l.(*layers.BatchNorm); ok {
			bBN = v
		}
	}
	for si := range aBN.StateBlobs() {
		av := aBN.StateBlobs()[si].Data()
		bv := bBN.StateBlobs()[si].Data()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("BN state %d lost in snapshot", si)
			}
		}
	}
	// And it is non-trivial (the moving mean moved off zero).
	if aBN.StateBlobs()[0].AsumData() == 0 {
		t.Fatal("test premise broken: moving mean never updated")
	}
}
