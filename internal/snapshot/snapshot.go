// Package snapshot serializes trained network parameters and solver state
// to a compact binary format, mirroring Caffe's snapshotting: training can
// be paused, saved, resumed and the learned coefficients (the output of
// the training algorithm, Algorithm 1) shipped to an evaluation process.
//
// The format is versioned and self-describing:
//
//	magic "CGDNN" | version u8 | section count u32
//	per section: name (u16 len + bytes) | rank u8 | dims (u32 each) |
//	             float32 payload (little endian) | crc32 u32 (v2 only)
//
// Version 2 (the current write format) appends an IEEE CRC32 of each
// section's serialized bytes, so any single-byte corruption of a section
// is detected at load time instead of silently producing garbage
// coefficients. Version 1 files (no checksums) remain readable.
//
// Network parameters are stored by their ParamNames; solver snapshots
// additionally store the iteration counter and per-parameter history
// (momentum / accumulated squared gradients).
//
// All file-writing entry points are crash-consistent: they write to a
// temporary file in the destination directory, fsync it, and atomically
// rename it over the target, so a crash mid-save can never leave a torn
// snapshot under the final name (see ROBUSTNESS.md).
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/net"
	"coarsegrain/internal/solver"
)

var magic = [5]byte{'C', 'G', 'D', 'N', 'N'}

const (
	version1 = 1 // no per-section checksums
	version2 = 2 // per-section CRC32 trailer
	// version is the format written by this package.
	version = version2
)

// section is one named tensor in the file.
type section struct {
	name  string
	shape []int
	data  []float32
}

// crcWriter tees everything written through it into an IEEE CRC32.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc.Write(p) // never returns an error
	return cw.w.Write(p)
}

// crcReader tees everything read through it into an IEEE CRC32.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

// writeSectionBody serializes one section (everything but the checksum).
func writeSectionBody(w io.Writer, s section) error {
	if len(s.name) > math.MaxUint16 {
		return fmt.Errorf("snapshot: section name too long (%d bytes)", len(s.name))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s.name))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, s.name); err != nil {
		return err
	}
	if len(s.shape) > 255 {
		return fmt.Errorf("snapshot: rank %d too large", len(s.shape))
	}
	if _, err := w.Write([]byte{byte(len(s.shape))}); err != nil {
		return err
	}
	for _, d := range s.shape {
		if d < 0 || d > math.MaxUint32 {
			return fmt.Errorf("snapshot: dimension %d out of range", d)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, s.data)
}

func writeSections(w io.Writer, secs []section) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(secs))); err != nil {
		return err
	}
	for _, s := range secs {
		cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
		if err := writeSectionBody(cw, s); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, cw.crc.Sum32()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readSectionBody parses one section (everything but the checksum) from r.
func readSectionBody(r io.Reader) (section, error) {
	var s section
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return s, err
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return s, err
	}
	var rank [1]byte
	if _, err := io.ReadFull(r, rank[:]); err != nil {
		return s, err
	}
	shape := make([]int, rank[0])
	total := 1
	for j := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return s, err
		}
		if d > 1<<28 {
			return s, fmt.Errorf("snapshot: dimension %d too large", d)
		}
		shape[j] = int(d)
		total *= int(d)
	}
	data := make([]float32, total)
	if err := binary.Read(r, binary.LittleEndian, data); err != nil {
		return s, fmt.Errorf("snapshot: reading %q payload: %w", nameBuf, err)
	}
	return section{name: string(nameBuf), shape: shape, data: data}, nil
}

func readSections(r io.Reader) ([]section, error) {
	br := bufio.NewReader(r)
	var m [5]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", m)
	}
	v, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if v != version1 && v != version2 {
		return nil, fmt.Errorf("snapshot: unsupported version %d", v)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("snapshot: implausible section count %d", count)
	}
	secs := make([]section, 0, count)
	for i := uint32(0); i < count; i++ {
		if v == version1 {
			s, err := readSectionBody(br)
			if err != nil {
				return nil, err
			}
			secs = append(secs, s)
			continue
		}
		cr := &crcReader{r: br, crc: crc32.NewIEEE()}
		s, err := readSectionBody(cr)
		if err != nil {
			return nil, err
		}
		sum := cr.crc.Sum32()
		var stored uint32
		if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("snapshot: reading %q checksum: %w", s.name, err)
		}
		if sum != stored {
			return nil, fmt.Errorf("snapshot: section %q checksum mismatch (stored %08x, computed %08x): file is corrupt",
				s.name, stored, sum)
		}
		secs = append(secs, s)
	}
	return secs, nil
}

// writeFileAtomic writes via write() to a temporary file in path's
// directory, fsyncs it, and renames it over path, so that path either
// keeps its previous contents or holds the complete new snapshot — never
// a torn prefix. The directory is fsynced best-effort afterwards so the
// rename itself survives a crash.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmpName, path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best-effort: some filesystems (and non-Unix platforms) reject
// fsync on directories, and the rename is still atomic without it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Stater is implemented by layers carrying non-learnable state that must
// survive a snapshot (BatchNorm's moving averages).
type Stater interface {
	StateBlobs() []*blob.Blob
}

func netSections(n *net.Net) []section {
	params := n.Params()
	names := n.ParamNames()
	secs := make([]section, len(params))
	for i, p := range params {
		secs[i] = section{name: names[i], shape: p.Shape(), data: p.Data()}
	}
	for _, l := range n.Layers() {
		st, ok := l.(Stater)
		if !ok {
			continue
		}
		for i, b := range st.StateBlobs() {
			secs = append(secs, section{
				name:  fmt.Sprintf("%s%s__%d", statePrefix, l.Name(), i),
				shape: b.Shape(),
				data:  b.Data(),
			})
		}
	}
	return secs
}

// restoreState loads layer state sections back into Stater layers.
func restoreState(n *net.Net, byName map[string]section) error {
	for _, l := range n.Layers() {
		st, ok := l.(Stater)
		if !ok {
			continue
		}
		for i, b := range st.StateBlobs() {
			key := fmt.Sprintf("%s%s__%d", statePrefix, l.Name(), i)
			sec, ok := byName[key]
			if !ok {
				return fmt.Errorf("snapshot: missing layer state %q", key)
			}
			if len(sec.data) != b.Count() {
				return fmt.Errorf("snapshot: layer state %q size mismatch", key)
			}
			copy(b.Data(), sec.data)
		}
	}
	return nil
}

// SaveNet writes the network's learnable parameters.
func SaveNet(w io.Writer, n *net.Net) error {
	return writeSections(w, netSections(n))
}

// LoadNet restores parameters saved by SaveNet into an architecturally
// identical network (matched by parameter name and element count).
func LoadNet(r io.Reader, n *net.Net) error {
	secs, err := readSections(r)
	if err != nil {
		return err
	}
	byName := make(map[string]section, len(secs))
	for _, s := range secs {
		byName[s.name] = s
	}
	params := n.Params()
	names := n.ParamNames()
	for i, p := range params {
		s, ok := byName[names[i]]
		if !ok {
			return fmt.Errorf("snapshot: missing parameter %q", names[i])
		}
		if len(s.data) != p.Count() {
			return fmt.Errorf("snapshot: parameter %q has %d values, net expects %d",
				names[i], len(s.data), p.Count())
		}
		copy(p.Data(), s.data)
	}
	return restoreState(n, byName)
}

// SaveNetFile atomically writes the network's parameters to path
// (temp + fsync + rename; see writeFileAtomic).
func SaveNetFile(path string, n *net.Net) error {
	return writeFileAtomic(path, func(w io.Writer) error { return SaveNet(w, n) })
}

// LoadNetFile restores parameters from a file written by SaveNetFile.
func LoadNetFile(path string, n *net.Net) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadNet(f, n)
}

// solver state is stored as extra sections with reserved names.
const (
	iterSection    = "__solver_iter__"
	historyPrefix  = "__history__"
	history2Prefix = "__history2__"
	statePrefix    = "__state__"
)

// SaveSolver writes network parameters plus solver state (iteration
// counter and update history), enabling exact training resumption.
func SaveSolver(w io.Writer, s *solver.Solver) error {
	secs := netSections(s.Net())
	secs = append(secs, section{
		name:  iterSection,
		shape: []int{1},
		data:  []float32{float32(s.Iter())},
	})
	for i, h := range s.History() {
		secs = append(secs, section{
			name:  fmt.Sprintf("%s%d", historyPrefix, i),
			shape: h.Shape(),
			data:  h.Data(),
		})
	}
	for i, h := range s.History2() {
		secs = append(secs, section{
			name:  fmt.Sprintf("%s%d", history2Prefix, i),
			shape: h.Shape(),
			data:  h.Data(),
		})
	}
	return writeSections(w, secs)
}

// LoadSolver restores a snapshot written by SaveSolver into a solver built
// over an architecturally identical network.
//
// The whole file is parsed and checksum-validated before any solver state
// is touched, so a corrupt snapshot leaves the solver unmodified.
func LoadSolver(r io.Reader, s *solver.Solver) error {
	secs, err := readSections(r)
	if err != nil {
		return err
	}
	byName := make(map[string]section, len(secs))
	for _, sec := range secs {
		byName[sec.name] = sec
	}
	n := s.Net()
	for i, p := range n.Params() {
		sec, ok := byName[n.ParamNames()[i]]
		if !ok {
			return fmt.Errorf("snapshot: missing parameter %q", n.ParamNames()[i])
		}
		if len(sec.data) != p.Count() {
			return fmt.Errorf("snapshot: parameter %q size mismatch", sec.name)
		}
		copy(p.Data(), sec.data)
	}
	it, ok := byName[iterSection]
	if !ok || len(it.data) != 1 {
		return fmt.Errorf("snapshot: not a solver snapshot (no iteration section)")
	}
	s.RestoreIter(int(it.data[0]))
	for i, h := range s.History() {
		sec, ok := byName[fmt.Sprintf("%s%d", historyPrefix, i)]
		if !ok {
			return fmt.Errorf("snapshot: missing history %d", i)
		}
		if len(sec.data) != h.Count() {
			return fmt.Errorf("snapshot: history %d size mismatch", i)
		}
		copy(h.Data(), sec.data)
	}
	for i, h := range s.History2() {
		sec, ok := byName[fmt.Sprintf("%s%d", history2Prefix, i)]
		if !ok {
			return fmt.Errorf("snapshot: missing second-moment history %d (snapshot from a different solver type?)", i)
		}
		if len(sec.data) != h.Count() {
			return fmt.Errorf("snapshot: second-moment history %d size mismatch", i)
		}
		copy(h.Data(), sec.data)
	}
	return restoreState(n, byName)
}

// SaveSolverFile atomically writes solver state to path
// (temp + fsync + rename; see writeFileAtomic).
func SaveSolverFile(path string, s *solver.Solver) error {
	return writeFileAtomic(path, func(w io.Writer) error { return SaveSolver(w, s) })
}

// PeekSolverIter reads just the iteration counter out of a solver
// snapshot without needing the network it was saved from. The elastic
// fault-tolerance layer uses it to learn the fence point of a
// checkpoint before any rank has built (or re-built) its net: the
// data cursor must be skipped to that iteration for the resumed run
// to see the same batches a clean run would. The whole file is still
// parsed and checksum-validated, so a torn or corrupt snapshot is
// rejected here rather than half-adopted later.
func PeekSolverIter(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	secs, err := readSections(f)
	if err != nil {
		return 0, err
	}
	for _, sec := range secs {
		if sec.name == iterSection && len(sec.data) == 1 {
			return int(sec.data[0]), nil
		}
	}
	return 0, fmt.Errorf("snapshot: %s is not a solver snapshot (no iteration section)", path)
}

// LoadSolverFile restores solver state from a file written by
// SaveSolverFile.
func LoadSolverFile(path string, s *solver.Solver) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadSolver(f, s)
}
