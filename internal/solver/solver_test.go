package solver

import (
	"math"
	"testing"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
)

// buildNet constructs a small trainable net on synthetic MNIST.
func buildNet(t *testing.T, seed uint64, eng core.Engine) *net.Net {
	t.Helper()
	src := data.NewSyntheticMNIST(512, seed)
	d, err := layers.NewData("data", src, 16)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := layers.NewConvolution("conv1", layers.ConvConfig{
		NumOutput: 6, Kernel: 5, Stride: 2,
		WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := layers.NewPooling("pool1", layers.PoolConfig{Method: layers.MaxPool, Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := layers.NewInnerProduct("ip1", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(seed, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New([]net.LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv1"}},
		{Layer: pool, Bottoms: []string{"conv1"}, Tops: []string{"pool1"}},
		{Layer: layers.NewReLU("relu1", 0), Bottoms: []string{"pool1"}, Tops: []string{"relu1"}},
		{Layer: ip, Bottoms: []string{"relu1"}, Tops: []string{"ip1"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip1", "label"}, Tops: []string{"loss"}},
		{Layer: layers.NewAccuracy("acc", 1), Bottoms: []string{"ip1", "label"}, Tops: []string{"acc"}},
	}, eng)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	n := buildNet(t, 1, nil)
	cases := []Config{
		{BaseLR: 0},                                 // missing lr
		{BaseLR: 0.1, LRPolicy: "bogus"},            // bad policy
		{BaseLR: 0.1, LRPolicy: "step"},             // step without size
		{BaseLR: 0.1, Momentum: 1.5},                // bad momentum
		{BaseLR: 0.1, Type: "LBFGS"},                // unknown type
		{BaseLR: 0.1, Type: AdaGrad, Momentum: 0.9}, // adagrad+momentum
	}
	for i, c := range cases {
		if _, err := New(c, n); err == nil {
			t.Fatalf("case %d: bad config accepted: %+v", i, c)
		}
	}
	if _, err := New(Config{BaseLR: 0.1}, nil); err == nil {
		t.Fatal("nil net accepted")
	}
	if _, err := New(Config{BaseLR: 0.1}, n); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestLearningRatePolicies(t *testing.T) {
	n := buildNet(t, 2, nil)
	mk := func(c Config) *Solver {
		s, err := New(c, n)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mk(Config{BaseLR: 0.1, LRPolicy: "fixed"})
	s.iter = 100
	if s.LearningRate() != 0.1 {
		t.Fatal("fixed policy changed lr")
	}
	s = mk(Config{BaseLR: 0.1, LRPolicy: "step", Gamma: 0.5, StepSize: 10})
	s.iter = 25
	if got, want := s.LearningRate(), float32(0.1*0.25); math.Abs(float64(got-want)) > 1e-7 {
		t.Fatalf("step lr = %v, want %v", got, want)
	}
	s = mk(Config{BaseLR: 0.1, LRPolicy: "exp", Gamma: 0.9})
	s.iter = 2
	if got, want := s.LearningRate(), float32(0.1*0.81); math.Abs(float64(got-want)) > 1e-7 {
		t.Fatalf("exp lr = %v, want %v", got, want)
	}
	s = mk(Config{BaseLR: 0.01, LRPolicy: "inv", Gamma: 0.0001, Power: 0.75})
	s.iter = 10000
	want := 0.01 * math.Pow(1+0.0001*10000, -0.75)
	if got := float64(s.LearningRate()); math.Abs(got-want) > 1e-8 {
		t.Fatalf("inv lr = %v, want %v", got, want)
	}
}

func TestSGDStepHandComputed(t *testing.T) {
	// One parameter, one iteration, by hand:
	// h1 = mu*0 + lr*g; w1 = w0 - h1.
	n := buildNet(t, 3, nil)
	s, err := New(Config{Type: SGD, BaseLR: 0.5, Momentum: 0.9}, n)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Params()[0]
	w0 := p.Data()[0]
	n.ZeroParamDiffs()
	n.ForwardBackward()
	g := p.Diff()[0]
	s.applyUpdate()
	want := w0 - 0.5*g
	if got := p.Data()[0]; math.Abs(float64(got-want)) > 1e-6 {
		t.Fatalf("sgd step: got %v, want %v", got, want)
	}
	// Second step uses momentum: h2 = 0.9*h1 + lr*g2.
	h1 := 0.5 * g
	w1 := p.Data()[0]
	n.ZeroParamDiffs()
	n.ForwardBackward()
	g2 := p.Diff()[0]
	s.applyUpdate()
	want2 := w1 - (0.9*h1 + 0.5*g2)
	if got := p.Data()[0]; math.Abs(float64(got-want2)) > 1e-6 {
		t.Fatalf("sgd momentum step: got %v, want %v", got, want2)
	}
}

func TestWeightDecayPullsTowardZero(t *testing.T) {
	// With zero gradient (fabricated), weight decay alone shrinks weights.
	n := buildNet(t, 4, nil)
	s, err := New(Config{Type: SGD, BaseLR: 0.1, WeightDecay: 0.5}, n)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Params()[0]
	p.Data()[0] = 1.0
	n.ZeroParamDiffs() // all-zero gradients
	s.applyUpdate()
	// w -= lr * wd * w = 1 - 0.1*0.5*1 = 0.95.
	if got := p.Data()[0]; math.Abs(float64(got-0.95)) > 1e-6 {
		t.Fatalf("weight decay step: got %v, want 0.95", got)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	for _, typ := range []Type{SGD, AdaGrad, Nesterov} {
		n := buildNet(t, 5, nil)
		cfg := Config{Type: typ, BaseLR: 0.05}
		if typ != AdaGrad {
			cfg.Momentum = 0.9
			cfg.BaseLR = 0.01
		}
		s, err := New(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		losses := s.Step(60)
		if s.Iter() != 60 {
			t.Fatalf("iter = %d", s.Iter())
		}
		first := avg(losses[:10])
		last := avg(losses[len(losses)-10:])
		if !(last < first*0.7) {
			t.Fatalf("%s: loss did not decrease: first10 %v, last10 %v", typ, first, last)
		}
		if math.IsNaN(last) {
			t.Fatalf("%s: NaN loss", typ)
		}
	}
}

func TestTrainingReachesAccuracy(t *testing.T) {
	n := buildNet(t, 6, nil)
	s, err := New(Config{Type: SGD, BaseLR: 0.01, Momentum: 0.9}, n)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(150)
	acc, err := n.Output("acc")
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Fatalf("accuracy after training = %v, want >= 0.6", acc)
	}
}

// Convergence invariance (the paper's second headline property): the loss
// trace under the coarse engine matches the sequential trace closely for
// every worker count, and is bit-identical between repeated runs at a
// fixed worker count.
func TestConvergenceInvariance(t *testing.T) {
	trace := func(eng core.Engine, iters int) []float64 {
		n := buildNet(t, 7, eng)
		s, err := New(Config{Type: SGD, BaseLR: 0.01, Momentum: 0.9}, n)
		if err != nil {
			t.Fatal(err)
		}
		return s.Step(iters)
	}
	ref := trace(core.NewSequential(), 40)
	for _, w := range []int{2, 4, 8} {
		e := core.NewCoarse(w)
		got := trace(e, 40)
		e.Close()
		for i := range ref {
			// Floating-point reassociation in the ordered reduction grows
			// slowly; the trajectory must stay within a tight relative band.
			rel := math.Abs(got[i]-ref[i]) / math.Max(math.Abs(ref[i]), 1e-8)
			if rel > 5e-3 {
				t.Fatalf("workers=%d: loss trace diverged at iter %d: %v vs %v (rel %g)",
					w, i, got[i], ref[i], rel)
			}
		}
		// Bitwise determinism at fixed worker count.
		e1 := core.NewCoarse(w)
		a := trace(e1, 15)
		e1.Close()
		e2 := core.NewCoarse(w)
		b := trace(e2, 15)
		e2.Close()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: repeated runs differ at iter %d: %v vs %v", w, i, a[i], b[i])
			}
		}
	}
}

// At 1 worker the coarse engine must be bit-identical to sequential.
func TestCoarseOneWorkerBitwiseSequential(t *testing.T) {
	n1 := buildNet(t, 8, core.NewSequential())
	s1, _ := New(Config{Type: SGD, BaseLR: 0.01, Momentum: 0.9}, n1)
	ref := s1.Step(20)
	e := core.NewCoarse(1)
	defer e.Close()
	n2 := buildNet(t, 8, e)
	s2, _ := New(Config{Type: SGD, BaseLR: 0.01, Momentum: 0.9}, n2)
	got := s2.Step(20)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("coarse(1) differs from sequential at iter %d: %v vs %v", i, got[i], ref[i])
		}
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
