// Package solver implements the gradient-descent training algorithms the
// paper's Caffe setup supports (§2.1): plain SGD with momentum, AdaGrad
// and Nesterov accelerated gradient, plus Caffe's learning-rate policies.
//
// The solver is engine-agnostic: the parallelization strategy lives
// entirely inside the net's execution engine, which is exactly the paper's
// convergence-invariance argument — no training parameter changes when the
// worker count changes.
package solver

import (
	"fmt"
	"math"
	"time"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/net"
	"coarsegrain/internal/trace"
)

// Type selects the update rule.
type Type string

const (
	// SGD is stochastic gradient descent with momentum [Bottou].
	SGD Type = "SGD"
	// AdaGrad is the adaptive subgradient method [Duchi et al.].
	AdaGrad Type = "AdaGrad"
	// Nesterov is Nesterov's accelerated gradient [Nesterov 1983].
	Nesterov Type = "Nesterov"
)

// Config mirrors the fields of a Caffe solver prototxt.
type Config struct {
	Type        Type
	BaseLR      float32
	Momentum    float32
	WeightDecay float32
	// LRPolicy is one of "fixed", "step", "exp", "inv".
	LRPolicy string
	Gamma    float32
	Power    float32
	StepSize int
	// Delta is the numerical-stability constant of the adaptive solvers
	// (AdaGrad, RMSProp, Adam; default 1e-8).
	Delta float32

	// extra holds hyperparameters of the extension solvers (see extra.go).
	extra extraConfig
}

func (c *Config) normalize() error {
	if c.Type == "" {
		c.Type = SGD
	}
	switch c.Type {
	case SGD, AdaGrad, Nesterov, RMSProp, Adam:
	default:
		return fmt.Errorf("solver: unknown type %q", c.Type)
	}
	if c.BaseLR <= 0 {
		return fmt.Errorf("solver: BaseLR must be positive, got %g", c.BaseLR)
	}
	if c.LRPolicy == "" {
		c.LRPolicy = "fixed"
	}
	switch c.LRPolicy {
	case "fixed", "step", "exp", "inv":
	default:
		return fmt.Errorf("solver: unknown lr_policy %q", c.LRPolicy)
	}
	if c.LRPolicy == "step" && c.StepSize <= 0 {
		return fmt.Errorf("solver: step policy needs positive StepSize")
	}
	if c.Delta == 0 {
		c.Delta = 1e-8
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("solver: momentum must be in [0,1), got %g", c.Momentum)
	}
	if c.Type == AdaGrad && c.Momentum != 0 {
		return fmt.Errorf("solver: AdaGrad does not use momentum")
	}
	return c.normalizeExtra()
}

// Solver drives the training loop of Algorithm 1: forward, backward,
// updateCoefficients.
type Solver struct {
	cfg     Config
	network *net.Net
	iter    int
	// history holds per-parameter state: momentum buffers (SGD/Nesterov),
	// accumulated squared gradients (AdaGrad), running averages (RMSProp)
	// or first moments (Adam), in the data field.
	history []*blob.Blob
	// history2 holds Adam's second-moment buffers (nil otherwise).
	history2 []*blob.Blob
	// tracer, when attached, wraps every Step iteration in an iteration
	// span and the update rule in an update span.
	tracer *trace.Tracer
	// preUpdate, when set, is consulted after every forward/backward pass
	// and before the parameter update — the hook the training health
	// monitor (internal/guard) uses to veto an update computed from a
	// poisoned gradient. Nil means always proceed.
	preUpdate PreUpdateHook
}

// PreUpdateAction is a pre-update hook's verdict on the just-computed
// gradient.
type PreUpdateAction int

const (
	// ActProceed applies the update normally.
	ActProceed PreUpdateAction = iota
	// ActSkip discards this batch's gradient: no parameter update is
	// applied, but the iteration counter still advances (the batch is
	// skipped, not retried).
	ActSkip
	// ActRollback signals that the hook has already restored the solver
	// to an earlier state (parameters, history and iteration counter, as
	// a snapshot restore does): the update is discarded and the iteration
	// counter is left exactly as the hook set it.
	ActRollback
	// ActHalt stops Step immediately; the losses collected so far are
	// returned.
	ActHalt
)

// PreUpdateHook inspects the state after forward/backward at iteration
// iter (loss is the batch loss) and decides whether the update proceeds.
type PreUpdateHook func(iter int, loss float64) PreUpdateAction

// SetPreUpdate installs the pre-update hook (nil removes it). The hook
// runs on the driver goroutine between parallel regions, so it may touch
// parameters, gradients and solver state freely.
func (s *Solver) SetPreUpdate(h PreUpdateHook) { s.preUpdate = h }

// ScaleLR multiplies the base learning rate by f — the guard's rollback
// backoff uses this to re-approach a divergence point more conservatively.
func (s *Solver) ScaleLR(f float32) { s.cfg.BaseLR *= f }

// New creates a solver for the given network.
func New(cfg Config, n *net.Net) (*Solver, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if n == nil {
		return nil, fmt.Errorf("solver: nil net")
	}
	s := &Solver{cfg: cfg, network: n}
	for _, p := range n.Params() {
		s.history = append(s.history, blob.New(p.Shape()...))
		if cfg.Type == Adam {
			s.history2 = append(s.history2, blob.New(p.Shape()...))
		}
	}
	return s, nil
}

// Net returns the network being trained.
func (s *Solver) Net() *net.Net { return s.network }

// SetTracer attaches a span tracer to the whole training stack: the
// solver records iteration and update spans, and the tracer is handed
// down to the net (and through it to the engine and its worker pool).
// One call instruments everything; nil detaches everywhere.
func (s *Solver) SetTracer(t *trace.Tracer) {
	s.tracer = t
	s.network.SetTracer(t)
}

// Iter returns the number of completed iterations.
func (s *Solver) Iter() int { return s.iter }

// RestoreIter overwrites the iteration counter — used when resuming from a
// snapshot (the learning-rate policy depends on it).
func (s *Solver) RestoreIter(i int) { s.iter = i }

// History exposes the per-parameter update state (momentum buffers for
// SGD/Nesterov, accumulated squared gradients for AdaGrad), parallel to
// Net().Params(). Used by snapshotting; treat as read/write state, not as
// something to resize.
func (s *Solver) History() []*blob.Blob { return s.history }

// History2 exposes Adam's second-moment buffers (nil for other solvers).
func (s *Solver) History2() []*blob.Blob { return s.history2 }

// LearningRate returns the rate for the current iteration under the
// configured policy.
func (s *Solver) LearningRate() float32 {
	c := &s.cfg
	switch c.LRPolicy {
	case "step":
		return c.BaseLR * float32(math.Pow(float64(c.Gamma), float64(s.iter/c.StepSize)))
	case "exp":
		return c.BaseLR * float32(math.Pow(float64(c.Gamma), float64(s.iter)))
	case "inv":
		return c.BaseLR * float32(math.Pow(1+float64(c.Gamma)*float64(s.iter), -float64(c.Power)))
	default: // fixed
		return c.BaseLR
	}
}

// Step runs iters training iterations and returns the loss of each — the
// trace a developer watches to monitor convergence (§3.2.1's argument for
// the deterministic ordered reduction).
func (s *Solver) Step(iters int) []float64 {
	losses := make([]float64, 0, iters)
	tr := s.tracer
	for i := 0; i < iters; i++ {
		var iterStart time.Time
		if tr.Enabled() {
			iterStart = time.Now()
		}
		s.network.ZeroParamDiffs()
		loss := s.network.ForwardBackward()
		act := ActProceed
		if s.preUpdate != nil {
			act = s.preUpdate(s.iter, loss)
		}
		iterBefore := s.iter
		switch act {
		case ActProceed:
			var updStart time.Time
			if tr.Enabled() {
				updStart = time.Now()
			}
			s.applyUpdate()
			if tr.Enabled() {
				tr.Record(trace.Span{
					Name: "update", Phase: trace.PhaseUpdate, Rank: trace.RankDriver, Band: -1,
					Start: tr.Stamp(updStart), Dur: time.Since(updStart),
				})
			}
			s.iter++
		case ActSkip:
			s.iter++
		case ActRollback:
			// The hook restored an earlier solver state, including the
			// iteration counter; leave everything as it set it.
		}
		if tr.Enabled() {
			tr.Record(trace.Span{
				Name: "iteration", Phase: trace.PhaseIteration, Rank: trace.RankDriver, Band: -1,
				Lo: iterBefore, Hi: iterBefore + 1,
				Start: tr.Stamp(iterStart), Dur: time.Since(iterStart),
			})
		}
		losses = append(losses, loss)
		if act == ActHalt {
			return losses
		}
	}
	return losses
}

// UpdateFromGradients applies one update step using gradients already
// accumulated in the network's parameter diffs (without running any
// passes), then advances the iteration counter. Used by the replica
// trainer, which computes the global-batch gradient across devices before
// handing it to the solver.
func (s *Solver) UpdateFromGradients() {
	s.applyUpdate()
	s.iter++
}

// applyUpdate implements updateCoefficients (Algorithm 1 line 11): it
// regularizes the gradient, computes the per-parameter step according to
// the solver type, stores it in the parameter's diff and applies it.
func (s *Solver) applyUpdate() {
	lr := s.LearningRate()
	for i, p := range s.network.Params() {
		data := p.Data()
		diff := p.Diff()
		hist := s.history[i].Data()
		// L2 regularization: g += wd * w.
		if wd := s.cfg.WeightDecay; wd != 0 {
			for j := range diff {
				diff[j] += wd * data[j]
			}
		}
		switch s.cfg.Type {
		case SGD:
			mu := s.cfg.Momentum
			for j := range diff {
				hist[j] = mu*hist[j] + lr*diff[j]
				diff[j] = hist[j]
			}
		case Nesterov:
			mu := s.cfg.Momentum
			for j := range diff {
				hPrev := hist[j]
				hist[j] = mu*hPrev + lr*diff[j]
				diff[j] = (1+mu)*hist[j] - mu*hPrev
			}
		case AdaGrad:
			delta := s.cfg.Delta
			for j := range diff {
				g := diff[j]
				hist[j] += g * g
				diff[j] = lr * g / (float32(math.Sqrt(float64(hist[j]))) + delta)
			}
		case RMSProp, Adam:
			var m2 []float32
			if s.history2 != nil {
				m2 = s.history2[i].Data()
			}
			s.applyUpdateExtra(lr, data, diff, hist, m2)
		}
		p.Update()
	}
}
