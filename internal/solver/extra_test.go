package solver

import (
	"math"
	"testing"
)

func TestExtraSolversReduceLoss(t *testing.T) {
	for _, cfg := range []Config{
		{Type: RMSProp, BaseLR: 0.002},
		{Type: Adam, BaseLR: 0.002},
	} {
		n := buildNet(t, 30, nil)
		s, err := New(cfg, n)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Type, err)
		}
		losses := s.Step(60)
		first := avg(losses[:10])
		last := avg(losses[len(losses)-10:])
		if !(last < first*0.8) {
			t.Fatalf("%s: loss did not decrease: %v -> %v", cfg.Type, first, last)
		}
		if math.IsNaN(last) {
			t.Fatalf("%s: NaN", cfg.Type)
		}
	}
}

func TestExtraConfigValidation(t *testing.T) {
	n := buildNet(t, 31, nil)
	if _, err := New(Config{Type: RMSProp, BaseLR: 0.01, Momentum: 0.5}, n); err == nil {
		t.Fatal("RMSProp with momentum accepted")
	}
	bad := Config{Type: RMSProp, BaseLR: 0.01}
	bad.SetRMSDecay(1.5)
	if _, err := New(bad, n); err == nil {
		t.Fatal("RMSDecay out of range accepted")
	}
	badAdam := Config{Type: Adam, BaseLR: 0.01}
	badAdam.SetAdamBetas(2, 0.999)
	if _, err := New(badAdam, n); err == nil {
		t.Fatal("Adam beta out of range accepted")
	}
}

func TestAdamAllocatesSecondMoments(t *testing.T) {
	n := buildNet(t, 32, nil)
	s, err := New(Config{Type: Adam, BaseLR: 0.001}, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.History2()) != len(n.Params()) {
		t.Fatalf("history2 len %d, want %d", len(s.History2()), len(n.Params()))
	}
	sgd, err := New(Config{Type: SGD, BaseLR: 0.001}, n)
	if err != nil {
		t.Fatal(err)
	}
	if sgd.History2() != nil {
		t.Fatal("SGD should have no second moments")
	}
}

func TestRMSPropHandComputed(t *testing.T) {
	// One parameter step by hand: m1 = (1-d)*g²; step = lr*g/(sqrt(m1)+eps).
	n := buildNet(t, 33, nil)
	cfg := Config{Type: RMSProp, BaseLR: 0.1, Delta: 1e-8}
	cfg.SetRMSDecay(0.9)
	s, err := New(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Params()[0]
	w0 := p.Data()[0]
	n.ZeroParamDiffs()
	n.ForwardBackward()
	g := float64(p.Diff()[0])
	s.applyUpdate()
	m1 := 0.1 * g * g
	want := float64(w0) - 0.1*g/(math.Sqrt(m1)+1e-8)
	if got := float64(p.Data()[0]); math.Abs(got-want) > 1e-5*math.Max(1, math.Abs(want)) {
		t.Fatalf("rmsprop step: got %v, want %v", got, want)
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, Adam's first step magnitude is ~lr per
	// coordinate (for any nonzero gradient).
	n := buildNet(t, 34, nil)
	s, err := New(Config{Type: Adam, BaseLR: 0.01}, n)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Params()[0]
	w0 := append([]float32(nil), p.Data()...)
	n.ZeroParamDiffs()
	n.ForwardBackward()
	grads := append([]float32(nil), p.Diff()...)
	s.applyUpdate()
	for j := range w0 {
		if grads[j] == 0 {
			continue
		}
		step := math.Abs(float64(p.Data()[j] - w0[j]))
		if step > 0.0101 || step < 0.0099 {
			t.Fatalf("adam first step %v, want ~0.01", step)
		}
	}
}

func TestEvaluate(t *testing.T) {
	n := buildNet(t, 35, nil)
	res, err := Evaluate(n, []string{"loss", "acc"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res["loss"] <= 0 || math.IsNaN(res["loss"]) {
		t.Fatalf("eval loss %v", res["loss"])
	}
	if res["acc"] < 0 || res["acc"] > 1 {
		t.Fatalf("eval acc %v", res["acc"])
	}
	if _, err := Evaluate(n, []string{"missing"}, 2); err == nil {
		t.Fatal("missing output accepted")
	}
	if _, err := Evaluate(n, nil, 0); err == nil {
		t.Fatal("zero iters accepted")
	}
}
