package solver

import (
	"fmt"
	"math"

	"coarsegrain/internal/net"
)

// The paper's Caffe supported SGD, AdaGrad and Nesterov (§2.1). Later
// Caffe releases added RMSProp and Adam; they are provided here as
// extensions — the coarse-grain parallelization is solver-agnostic (the
// engine never sees the update rule), so any solver inherits the same
// convergence-invariance argument.

const (
	// RMSProp is Tieleman & Hinton's running-average method.
	RMSProp Type = "RMSProp"
	// Adam is Kingma & Ba's adaptive moment estimation.
	Adam Type = "Adam"
)

// extraConfig holds the additional hyperparameters of the extension
// solvers, with Caffe's defaults.
type extraConfig struct {
	// RMSDecay is RMSProp's running-average factor (default 0.99).
	RMSDecay float32
	// Beta1/Beta2 are Adam's moment decays (defaults 0.9 / 0.999).
	Beta1, Beta2 float32
}

func (c *Config) normalizeExtra() error {
	switch c.Type {
	case RMSProp:
		if c.Momentum != 0 {
			return fmt.Errorf("solver: RMSProp does not use momentum")
		}
		if c.extra.RMSDecay == 0 {
			c.extra.RMSDecay = 0.99
		}
		if c.extra.RMSDecay <= 0 || c.extra.RMSDecay >= 1 {
			return fmt.Errorf("solver: RMSDecay must be in (0,1), got %g", c.extra.RMSDecay)
		}
	case Adam:
		if c.extra.Beta1 == 0 {
			c.extra.Beta1 = 0.9
		}
		if c.extra.Beta2 == 0 {
			c.extra.Beta2 = 0.999
		}
		if c.extra.Beta1 <= 0 || c.extra.Beta1 >= 1 || c.extra.Beta2 <= 0 || c.extra.Beta2 >= 1 {
			return fmt.Errorf("solver: Adam betas must be in (0,1)")
		}
	}
	return nil
}

// SetRMSDecay configures RMSProp's decay (call before New-created solvers
// step; zero value means the default 0.99).
func (c *Config) SetRMSDecay(v float32) { c.extra.RMSDecay = v }

// SetAdamBetas configures Adam's moment decays (zero values mean the
// defaults 0.9 and 0.999).
func (c *Config) SetAdamBetas(b1, b2 float32) { c.extra.Beta1, c.extra.Beta2 = b1, b2 }

// applyUpdateExtra implements the extension update rules. m1/m2 are the
// two history buffers (Adam needs both; RMSProp uses m1 only).
func (s *Solver) applyUpdateExtra(lr float32, data, diff, m1, m2 []float32) {
	switch s.cfg.Type {
	case RMSProp:
		decay := s.cfg.extra.RMSDecay
		delta := s.cfg.Delta
		for j := range diff {
			g := diff[j]
			m1[j] = decay*m1[j] + (1-decay)*g*g
			diff[j] = lr * g / (float32(math.Sqrt(float64(m1[j]))) + delta)
		}
	case Adam:
		b1, b2 := s.cfg.extra.Beta1, s.cfg.extra.Beta2
		t := float64(s.iter + 1)
		correction := float32(math.Sqrt(1-math.Pow(float64(b2), t)) / (1 - math.Pow(float64(b1), t)))
		delta := s.cfg.Delta
		for j := range diff {
			g := diff[j]
			m1[j] = b1*m1[j] + (1-b1)*g
			m2[j] = b2*m2[j] + (1-b2)*g*g
			diff[j] = lr * correction * m1[j] / (float32(math.Sqrt(float64(m2[j]))) + delta)
		}
	}
}

// Evaluate runs the network in test mode for iters forward passes and
// returns the mean of each requested scalar output (losses, accuracies) —
// the test phase of a Caffe solver. The network's train mode is restored
// afterwards.
func Evaluate(n *net.Net, outputs []string, iters int) (map[string]float64, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("solver: Evaluate needs positive iters")
	}
	n.SetTrain(false)
	defer n.SetTrain(true)
	sums := make(map[string]float64, len(outputs))
	for i := 0; i < iters; i++ {
		n.Forward()
		for _, name := range outputs {
			v, err := n.Output(name)
			if err != nil {
				return nil, err
			}
			sums[name] += float64(v)
		}
	}
	for name := range sums {
		sums[name] /= float64(iters)
	}
	return sums, nil
}
