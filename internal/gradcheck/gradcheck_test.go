package gradcheck

import (
	"strings"
	"testing"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

func randomBlob(r *rng.RNG, lo, hi float32, shape ...int) *blob.Blob {
	b := blob.New(shape...)
	for i := range b.Data() {
		b.Data()[i] = r.Range(lo, hi)
	}
	return b
}

func TestCorrectLayersPass(t *testing.T) {
	r := rng.New(1, 1)
	conv, err := layers.NewConvolution("c", layers.ConvConfig{
		NumOutput: 3, Kernel: 3, Pad: 1,
		WeightFiller: layers.GaussianFiller{Std: 0.3}, RNG: r.Split(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	mis, err := Check(conv, []*blob.Blob{randomBlob(r, -1, 1, 2, 2, 5, 5)},
		Config{Eps: 1e-2, CheckParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 0 {
		t.Fatalf("correct conv reported mismatches: %v", mis)
	}

	bn, err := layers.NewBatchNorm("bn", layers.BNConfig{Eps: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	mis, err = Check(bn, []*blob.Blob{randomBlob(r, -1, 1, 4, 2, 3, 3)},
		Config{Tol: 3e-2, CheckParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 0 {
		t.Fatalf("correct batchnorm reported mismatches: %v", mis)
	}
}

// brokenLayer is a ReLU whose backward drops a factor of 2 — the checker
// must catch it.
type brokenLayer struct {
	layers.Layer
}

func (b *brokenLayer) BackwardRange(lo, hi int, bottom, top []*blob.Blob, pg []*blob.Blob) {
	b.Layer.BackwardRange(lo, hi, bottom, top, pg)
	for i := range bottom[0].Diff() {
		bottom[0].Diff()[i] *= 0.5 // the bug
	}
}

func TestBrokenLayerCaught(t *testing.T) {
	r := rng.New(2, 1)
	l := &brokenLayer{Layer: layers.NewSigmoid("s")}
	mis, err := Check(l, []*blob.Blob{randomBlob(r, -2, 2, 3, 4)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) == 0 {
		t.Fatal("broken backward not caught")
	}
	if !strings.Contains(mis[0].String(), "bottom0") {
		t.Fatalf("mismatch report malformed: %v", mis[0])
	}
}

func TestCheckBottomsSelection(t *testing.T) {
	// SoftmaxWithLoss: label bottom has no gradient; restrict to bottom 0.
	r := rng.New(3, 1)
	scores := randomBlob(r, -2, 2, 4, 5)
	labels := blob.New(4)
	for s := 0; s < 4; s++ {
		labels.Data()[s] = float32(r.Intn(5))
	}
	mis, err := Check(layers.NewSoftmaxWithLoss("loss"),
		[]*blob.Blob{scores, labels}, Config{CheckBottoms: []bool{true, false}})
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 0 {
		t.Fatalf("softmax loss mismatches: %v", mis)
	}
}

func TestSetUpErrorPropagates(t *testing.T) {
	conv, _ := layers.NewConvolution("c", layers.ConvConfig{NumOutput: 1, Kernel: 3})
	if _, err := Check(conv, []*blob.Blob{blob.New(4, 4)}, Config{}); err == nil {
		t.Fatal("SetUp error not propagated")
	}
}
