// Package gradcheck verifies layer implementations against centered
// finite differences — the tool a layer author runs before trusting a new
// layer, mirroring Caffe's GradientChecker. Because the engines are
// network-agnostic, a layer that passes this check and honors the
// disjoint-range contract is automatically correct under every engine.
//
// The check builds the scalar objective J = Σ_t <top_t, w_t> for fixed
// random positive weights w_t, obtains analytic gradients by seeding the
// top diffs with w and running the layer's backward pass (including the
// optional serial hooks), and compares against (J(x+eps)-J(x-eps))/(2eps)
// for every bottom and parameter element.
package gradcheck

import (
	"fmt"
	"math"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/rng"
)

// Config tunes the check.
type Config struct {
	// Eps is the finite-difference step (default 1e-3).
	Eps float64
	// Tol is the relative tolerance (default 2e-2): a mismatch is
	// reported when |analytic-numeric| > Tol * max(1, |analytic|,
	// |numeric|).
	Tol float64
	// CheckBottoms selects which bottoms' gradients to verify (nil =
	// all).
	CheckBottoms []bool
	// CheckParams verifies parameter gradients too.
	CheckParams bool
	// Seed drives the objective weights.
	Seed uint64
}

func (c *Config) normalize() {
	if c.Eps == 0 {
		c.Eps = 1e-3
	}
	if c.Tol == 0 {
		c.Tol = 2e-2
	}
}

// Mismatch describes one failing element.
type Mismatch struct {
	// Blob identifies the checked tensor ("bottom0", "param1", ...).
	Blob string
	// Index is the flat element index.
	Index int
	// Analytic and Numeric are the two gradient estimates.
	Analytic, Numeric float64
}

// String implements fmt.Stringer.
func (m Mismatch) String() string {
	return fmt.Sprintf("%s[%d]: analytic %g vs numeric %g", m.Blob, m.Index, m.Analytic, m.Numeric)
}

// forward runs the layer's full forward pass (hooks included).
func forward(l layers.Layer, bottoms, tops []*blob.Blob) {
	if p, ok := l.(layers.ForwardPreparer); ok {
		p.ForwardPrepare(bottoms, tops)
	}
	if n := l.ForwardExtent(); n > 0 {
		l.ForwardRange(0, n, bottoms, tops)
	}
	if f, ok := l.(layers.ForwardFinisher); ok {
		f.ForwardFinish(bottoms, tops)
	}
}

// backward runs the layer's full backward pass (hooks included),
// accumulating parameter gradients into the parameters themselves.
func backward(l layers.Layer, bottoms, tops []*blob.Blob) {
	n := l.BackwardExtent()
	if n == 0 {
		return
	}
	if p, ok := l.(layers.BackwardPreparer); ok {
		p.BackwardPrepare(bottoms, tops)
	}
	l.BackwardRange(0, n, bottoms, tops, l.Params())
	if f, ok := l.(layers.BackwardFinisher); ok {
		f.BackwardFinish(bottoms, tops)
	}
}

// Check sets the layer up on the given bottoms and verifies its
// gradients, returning every mismatching element (empty = pass).
//
// The layer must be freshly constructed: Check calls SetUp. Layers whose
// forward consumes random state (Dropout) cannot be checked this way —
// freeze their state first or check them manually.
func Check(l layers.Layer, bottoms []*blob.Blob, cfg Config) ([]Mismatch, error) {
	cfg.normalize()
	nTops := 1
	if l.Type() == "Data" {
		nTops = 2
	}
	tops := make([]*blob.Blob, nTops)
	for i := range tops {
		tops[i] = blob.New()
	}
	if err := l.SetUp(bottoms, tops); err != nil {
		return nil, fmt.Errorf("gradcheck: SetUp: %w", err)
	}

	r := rng.New(cfg.Seed^0x9E3779B9, 42)
	forward(l, bottoms, tops) // fix top shapes
	weights := make([][]float32, len(tops))
	for ti, top := range tops {
		w := make([]float32, top.Count())
		for i := range w {
			w[i] = r.Range(0.5, 1.5)
		}
		weights[ti] = w
	}
	objective := func() float64 {
		forward(l, bottoms, tops)
		var j float64
		for ti, top := range tops {
			for i, v := range top.Data() {
				j += float64(v) * float64(weights[ti][i])
			}
		}
		return j
	}

	// Analytic gradients.
	for _, b := range bottoms {
		b.ZeroDiff()
	}
	for _, p := range l.Params() {
		p.ZeroDiff()
	}
	forward(l, bottoms, tops)
	for ti, top := range tops {
		copy(top.Diff(), weights[ti])
	}
	backward(l, bottoms, tops)

	var mismatches []Mismatch
	checkBlob := func(name string, target *blob.Blob) {
		grad := append([]float32(nil), target.Diff()...)
		d := target.Data()
		for i := range d {
			orig := d[i]
			d[i] = orig + float32(cfg.Eps)
			jPlus := objective()
			d[i] = orig - float32(cfg.Eps)
			jMinus := objective()
			d[i] = orig
			numeric := (jPlus - jMinus) / (2 * cfg.Eps)
			analytic := float64(grad[i])
			scale := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
			if math.Abs(analytic-numeric)/scale > cfg.Tol {
				mismatches = append(mismatches, Mismatch{
					Blob: name, Index: i, Analytic: analytic, Numeric: numeric,
				})
			}
		}
	}

	for bi, b := range bottoms {
		if cfg.CheckBottoms != nil && (bi >= len(cfg.CheckBottoms) || !cfg.CheckBottoms[bi]) {
			continue
		}
		checkBlob(fmt.Sprintf("bottom%d", bi), b)
	}
	if cfg.CheckParams {
		for pi, p := range l.Params() {
			checkBlob(fmt.Sprintf("param%d", pi), p)
		}
	}
	return mismatches, nil
}
