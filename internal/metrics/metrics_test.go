package metrics

import (
	"math"
	"strings"
	"testing"

	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
)

func TestConfusionBasics(t *testing.T) {
	cm, err := NewConfusion(3)
	if err != nil {
		t.Fatal(err)
	}
	// 2 correct 0s, 1 correct 1, one 0 predicted as 2, one 2 predicted as 1.
	for _, p := range [][2]int{{0, 0}, {0, 0}, {1, 1}, {0, 2}, {2, 1}} {
		if err := cm.Add(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Total() != 5 {
		t.Fatalf("total %d", cm.Total())
	}
	if cm.Count(0, 2) != 1 || cm.Count(0, 0) != 2 {
		t.Fatal("counts wrong")
	}
	if got := cm.Accuracy(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("accuracy %v", got)
	}
	if got := cm.Recall(0); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("recall(0) %v", got)
	}
	if got := cm.Precision(1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("precision(1) %v", got)
	}
	// Unseen class: recall/precision default to 1.
	cm2, _ := NewConfusion(4)
	cm2.Add(0, 0)
	if cm2.Recall(3) != 1 || cm2.Precision(3) != 1 {
		t.Fatal("unseen class should report 1")
	}
}

func TestConfusionValidation(t *testing.T) {
	if _, err := NewConfusion(0); err == nil {
		t.Fatal("zero classes accepted")
	}
	cm, _ := NewConfusion(2)
	if err := cm.Add(2, 0); err == nil {
		t.Fatal("out-of-range true label accepted")
	}
	if err := cm.Add(0, -1); err == nil {
		t.Fatal("out-of-range predicted label accepted")
	}
}

func TestConfusionString(t *testing.T) {
	cm, _ := NewConfusion(2)
	cm.Add(0, 0)
	cm.Add(1, 0)
	out := cm.String()
	for _, want := range []string{"recall", "prec", "overall accuracy", "50.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestCollectFromTrainedNet(t *testing.T) {
	src := data.NewSyntheticMNIST(256, 41)
	d, err := layers.NewData("data", src, 16)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := layers.NewConvolution("conv", layers.ConvConfig{
		NumOutput: 6, Kernel: 5, Stride: 2,
		WeightFiller: layers.XavierFiller{}, RNG: rng.New(41, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := layers.NewInnerProduct("ip", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(41, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New([]net.LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv"}},
		{Layer: layers.NewReLU("relu", 0), Bottoms: []string{"conv"}, Tops: []string{"relu"}},
		{Layer: ip, Bottoms: []string{"relu"}, Tops: []string{"ip"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip", "label"}, Tops: []string{"loss"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(solver.Config{Type: solver.SGD, BaseLR: 0.02, Momentum: 0.9}, n)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(80)
	cm, err := Collect(n, "ip", "label", 8)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Classes() != 10 || cm.Total() != 8*16 {
		t.Fatalf("collected %d samples over %d classes", cm.Total(), cm.Classes())
	}
	if cm.Accuracy() < 0.5 {
		t.Fatalf("trained net accuracy %v implausibly low", cm.Accuracy())
	}
	if _, err := Collect(n, "nope", "label", 1); err == nil {
		t.Fatal("missing blob accepted")
	}
	if _, err := Collect(n, "ip", "label", 0); err == nil {
		t.Fatal("zero batches accepted")
	}
}
