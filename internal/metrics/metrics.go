// Package metrics provides classification evaluation beyond the Accuracy
// layer's scalar: confusion matrices and per-class precision/recall, used
// by cmd/dnneval to report model quality after training.
package metrics

import (
	"fmt"
	"strings"

	"coarsegrain/internal/net"
)

// Confusion is a square confusion matrix: rows are true labels, columns
// predicted labels.
type Confusion struct {
	classes int
	counts  []int64
}

// NewConfusion creates an empty matrix over the given class count.
func NewConfusion(classes int) (*Confusion, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("metrics: class count must be positive, got %d", classes)
	}
	return &Confusion{classes: classes, counts: make([]int64, classes*classes)}, nil
}

// Classes returns the class count.
func (c *Confusion) Classes() int { return c.classes }

// Add records one (true, predicted) observation.
func (c *Confusion) Add(trueLab, predLab int) error {
	if trueLab < 0 || trueLab >= c.classes || predLab < 0 || predLab >= c.classes {
		return fmt.Errorf("metrics: label out of range: true=%d pred=%d classes=%d", trueLab, predLab, c.classes)
	}
	c.counts[trueLab*c.classes+predLab]++
	return nil
}

// Count returns the number of observations with the given true and
// predicted labels.
func (c *Confusion) Count(trueLab, predLab int) int64 {
	return c.counts[trueLab*c.classes+predLab]
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int64 {
	var t int64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Accuracy returns the overall fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	var diag int64
	for i := 0; i < c.classes; i++ {
		diag += c.Count(i, i)
	}
	return float64(diag) / float64(total)
}

// Recall returns class k's recall: correct k / true k (1 when class k
// never occurred).
func (c *Confusion) Recall(k int) float64 {
	var row int64
	for j := 0; j < c.classes; j++ {
		row += c.Count(k, j)
	}
	if row == 0 {
		return 1
	}
	return float64(c.Count(k, k)) / float64(row)
}

// Precision returns class k's precision: correct k / predicted k (1 when
// k was never predicted).
func (c *Confusion) Precision(k int) float64 {
	var col int64
	for i := 0; i < c.classes; i++ {
		col += c.Count(i, k)
	}
	if col == 0 {
		return 1
	}
	return float64(c.Count(k, k)) / float64(col)
}

// String renders the matrix with per-class precision/recall.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "t\\p")
	for j := 0; j < c.classes; j++ {
		fmt.Fprintf(&b, "%7d", j)
	}
	fmt.Fprintf(&b, "%9s\n", "recall")
	for i := 0; i < c.classes; i++ {
		fmt.Fprintf(&b, "%-6d", i)
		for j := 0; j < c.classes; j++ {
			fmt.Fprintf(&b, "%7d", c.Count(i, j))
		}
		fmt.Fprintf(&b, "%8.1f%%\n", c.Recall(i)*100)
	}
	fmt.Fprintf(&b, "%-6s", "prec")
	for j := 0; j < c.classes; j++ {
		fmt.Fprintf(&b, "%6.0f%%", c.Precision(j)*100)
	}
	fmt.Fprintf(&b, "\noverall accuracy: %.2f%% over %d samples\n", c.Accuracy()*100, c.Total())
	return b.String()
}

// Collect runs `batches` forward passes of a classification network in
// test mode and fills a confusion matrix from the score and label blobs.
// The scores blob must be (S x C); argmax over C is the prediction.
func Collect(n *net.Net, scoresBlob, labelsBlob string, batches int) (*Confusion, error) {
	scores := n.Blob(scoresBlob)
	labels := n.Blob(labelsBlob)
	if scores == nil || labels == nil {
		return nil, fmt.Errorf("metrics: blobs %q/%q not found", scoresBlob, labelsBlob)
	}
	n.SetTrain(false)
	defer n.SetTrain(true)
	var cm *Confusion
	for b := 0; b < batches; b++ {
		n.Forward()
		s := scores.Dim(0)
		classes := scores.CountFrom(1)
		if cm == nil {
			var err error
			if cm, err = NewConfusion(classes); err != nil {
				return nil, err
			}
		}
		for i := 0; i < s; i++ {
			row := scores.Data()[i*classes : (i+1)*classes]
			pred := 0
			for j, v := range row {
				if v > row[pred] {
					pred = j
				}
			}
			if err := cm.Add(int(labels.Data()[i]), pred); err != nil {
				return nil, err
			}
		}
	}
	if cm == nil {
		return nil, fmt.Errorf("metrics: no batches evaluated")
	}
	return cm, nil
}
