package lint

import (
	"runtime"
	"strings"
	"testing"
)

// These tests pin the loader's edge cases: packages that vanish entirely
// under build constraints, directories whose only sources are test
// variants, and the type-check-failure path cmd/dnnlint turns into exit
// status 2.

// A directory whose every file is excluded by constraints must be
// skipped silently — not loaded as an empty package and not an error.
func TestLoaderSkipsFullyConstrainedPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": "package a\n\n// V is a value.\nvar V = 1\n",
		// Both files of b are constrained out: an impossible tag pair and
		// a filename suffix for a platform this test never runs on.
		"b/never.go": "//go:build plan9 && windows\n\npackage b\n\nvar V = 1\n",
		"b/only_" + otherGOOS() + ".go": "package b\n\nvar W = 2\n",
	})
	loader, err := NewLoader(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(pkgs); err != nil {
		t.Fatalf("type errors: %v", err)
	}
	if len(pkgs) != 1 || !strings.HasSuffix(pkgs[0].Path, "/a") {
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		t.Fatalf("loaded %v, want only example.com/m/a (b is fully constrained out)", paths)
	}
}

// otherGOOS returns a real GOOS that is not the one running the test,
// so filename-suffix exclusion can be exercised portably.
func otherGOOS() string {
	if runtime.GOOS == "windows" {
		return "linux"
	}
	return "windows"
}

// A directory holding only in-package test files is a real package when
// Tests is set and nothing at all when it is not.
func TestLoaderTestOnlyDirectory(t *testing.T) {
	files := map[string]string{
		"go.mod":      "module example.com/m\n\ngo 1.22\n",
		"a/a_test.go": "package a\n\n// V exists only in the test variant.\nvar V = 1\n",
		// The external _test package next door must never be loaded.
		"a/a_ext_test.go": "package a_test\n",
	}

	loader, err := NewLoader(Config{Dir: writeTree(t, files), Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(pkgs); err != nil {
		t.Fatalf("type errors: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("Tests:true loaded %d packages, want the one-file test-only package a", len(pkgs))
	}
	if pkgs[0].Types.Name() != "a" {
		t.Fatalf("test-only directory type-checked as package %q, want a", pkgs[0].Types.Name())
	}

	loader, err = NewLoader(Config{Dir: writeTree(t, files), Tests: false})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err = loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 0 {
		t.Fatalf("Tests:false loaded %d packages from a test-only directory, want 0", len(pkgs))
	}
}

// With Tests unset, in-package test files must not leak into analysis:
// dnnlint -tests=false and the fixture harness rely on this.
func TestLoaderExcludesTestFilesByDefault(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":      "module example.com/m\n\ngo 1.22\n",
		"a/a.go":      "package a\n\n// V is a value.\nvar V = 1\n",
		"a/a_test.go": "package a\n\nvar W = V * 2\n",
	})
	loader, err := NewLoader(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./a")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("got %d packages / %d files, want 1 package with only a.go", len(pkgs), len(pkgs[0].Files))
	}
	name := pkgs[0].Fset.Position(pkgs[0].Files[0].Pos()).Filename
	if !strings.HasSuffix(name, "a.go") || strings.HasSuffix(name, "a_test.go") {
		t.Fatalf("loaded %s, want a.go only", name)
	}
}

// A package that fails type-checking must still load — carrying its
// errors — so FirstError can surface them; cmd/dnnlint maps that to
// exit status 2 rather than analyzing a half-checked package.
func TestFirstErrorSurfacesTypeCheckFailure(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": "package a\n\n// V has a deliberate type error.\nvar V int = \"not an int\"\n\n// W is fine.\nvar W = 2\n",
	})
	loader, err := NewLoader(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./a")
	if err != nil {
		t.Fatalf("Load must succeed past type errors, got %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].Errors) == 0 {
		t.Fatal("package with a type error carries no Errors")
	}
	if pkgs[0].Types == nil || pkgs[0].Types.Name() != "a" {
		t.Fatal("partial type information was not recovered")
	}
	err = FirstError(pkgs)
	if err == nil {
		t.Fatal("FirstError returned nil for a package with type errors")
	}
	if !strings.Contains(err.Error(), "cannot use") && !strings.Contains(err.Error(), "truncated") &&
		!strings.Contains(err.Error(), "string") {
		t.Fatalf("FirstError message %q does not describe the conversion error", err)
	}
}
