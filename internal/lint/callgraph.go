package lint

// This file is the interprocedural half of the framework (dnnlint v2):
// a module-wide index of function declarations plus their statically
// resolved callees. Analyzers stay per-package (a Pass still carries one
// package), but every Pass now also carries the Program built over the
// whole analysis set, so a check inside one function can ask what a
// callee — possibly in another package — does to its arguments. The
// effect summaries consuming this index live in effects.go.

import (
	"go/ast"
	"go/types"
)

// A FuncInfo ties one declared function or method to its syntax, its
// defining package and the functions it statically calls.
type FuncInfo struct {
	// Fn is the type-checker's object for the declaration.
	Fn *types.Func
	// Decl is the declaration syntax (Body may be nil for assembly or
	// linkname stubs).
	Decl *ast.FuncDecl
	// Pkg is the loaded package the declaration lives in.
	Pkg *Package
	// Callees lists every function the body calls that resolved to a
	// declaration in the Program, deduplicated, in source order of first
	// call. Calls through function values, builtins and functions outside
	// the analysis set (standard library) are not recorded.
	Callees []*types.Func
}

// A Program is the whole analysis set seen at once: every function
// declaration of every package handed to Run, indexed by its
// *types.Func. Because all packages are type-checked through one shared
// Loader, a callee's object resolved from a caller in another package is
// identical to the object of its own declaration, so cross-package
// edges need no name-based matching.
type Program struct {
	pkgs      []*Package
	funcs     map[*types.Func]*FuncInfo
	order     []*types.Func // deterministic iteration order
	summaries map[*types.Func]*Summary
	edges     map[*types.Func][]callEdge
}

// NewProgram indexes pkgs and computes effect summaries (effects.go).
func NewProgram(pkgs []*Package) *Program {
	p := &Program{pkgs: pkgs, funcs: map[*types.Func]*FuncInfo{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.funcs[fn] = &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				p.order = append(p.order, fn)
			}
		}
	}
	for _, fn := range p.order {
		p.resolveCallees(p.funcs[fn])
	}
	p.computeSummaries()
	return p
}

// FuncInfo returns the declaration info for fn, or nil when fn was not
// declared inside the analysis set.
func (p *Program) FuncInfo(fn *types.Func) *FuncInfo {
	if p == nil || fn == nil {
		return nil
	}
	return p.funcs[fn]
}

// DeclOf returns the body syntax of fn, or nil.
func (p *Program) DeclOf(fn *types.Func) *ast.FuncDecl {
	if fi := p.FuncInfo(fn); fi != nil {
		return fi.Decl
	}
	return nil
}

// CalleeOf resolves the declared function or method a call invokes, or
// nil for calls through function values, builtins, conversions and
// functions outside the analysis set. It is the interprocedural
// counterpart of the per-package callee helpers analyzers already use.
func (p *Program) CalleeOf(info *types.Info, call *ast.CallExpr) *FuncInfo {
	if p == nil {
		return nil
	}
	return p.funcs[staticCallee(info, call)]
}

// resolveCallees records fi's statically resolved callees.
func (p *Program) resolveCallees(fi *FuncInfo) {
	if fi.Decl.Body == nil {
		return
	}
	seen := map[*types.Func]bool{}
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || seen[fn] {
			return true
		}
		if _, inProgram := p.funcs[fn]; !inProgram {
			return true
		}
		seen[fn] = true
		fi.Callees = append(fi.Callees, fn)
		return true
	})
}

// staticCallee resolves a call expression to the *types.Func it invokes,
// if the call names the function directly (plain call, selector call or
// method value on a concrete receiver). Interface method calls resolve
// to the interface's method object, which never has a declaration in
// the Program, so they naturally fall outside the summarized set.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
