package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked package, ready for
// analysis.
type Package struct {
	// Path is the package's import path (module-derived for repository
	// packages, the raw import string for fixture packages).
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errors holds type-checking problems. A package with errors still
	// carries whatever syntax and type information was recovered, but
	// analyzers should not be trusted on it.
	Errors []error
}

// Config controls package loading.
type Config struct {
	// Dir is the directory patterns are resolved against (the working
	// directory when empty). The enclosing module is discovered by
	// walking up to go.mod.
	Dir string
	// Tests includes in-package *_test.go files. External test packages
	// (package foo_test) are never loaded; `go vet` covers those.
	Tests bool
	// SrcDirs are extra roots that resolve imports which are neither
	// module-internal nor standard library, GOPATH-style: import "par"
	// is looked up as <srcdir>/par. The fixture harness uses this.
	SrcDirs []string
}

// Loader loads packages on demand, caching by import path, and doubles as
// the types.Importer used during type checking. Module-internal and
// SrcDirs packages are parsed and checked from source by the loader
// itself; everything else is delegated to the standard library's source
// importer (go/importer "source"), which resolves from $GOROOT/src — no
// compiled export data, no x/tools, no go-command subprocesses.
type Loader struct {
	cfg    Config
	fset   *token.FileSet
	module string // module path from go.mod
	root   string // directory containing go.mod
	std    types.Importer
	pkgs   map[string]*Package
	active map[string]bool // cycle detection
}

// NewLoader creates a loader for the module enclosing cfg.Dir.
func NewLoader(cfg Config) (*Loader, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, module, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		cfg:    cfg,
		fset:   fset,
		module: module,
		root:   root,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		active: map[string]bool{},
	}, nil
}

// Fset returns the file set all loaded packages share.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Module returns the module path declared in go.mod.
func (l *Loader) Module() string { return l.module }

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		gomod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("lint: no module directive in %s", gomod)
			}
			return d, string(m[1]), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves the given patterns ("./...", "./internal/par", a plain
// directory) to directories, then loads, parses and type-checks each as a
// package. Loading continues past type errors; they are accumulated on
// the returned packages.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	base := l.cfg.Dir
	if base == "" {
		base = "."
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			start := filepath.Join(base, rest)
			err := filepath.WalkDir(start, func(path string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !de.IsDir() {
					return nil
				}
				name := de.Name()
				if path != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(base, pat))
	}
	var out []*Package
	var firstErr error
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", dir, err)
			}
			continue
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, firstErr
}

// hasGoFiles reports whether dir directly contains at least one .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir loads the package in dir under its module-derived import path.
// It returns (nil, nil) for directories holding only files excluded by
// build constraints or only an external test package.
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.module
	if rel, err := filepath.Rel(l.root, abs); err == nil && rel != "." {
		if strings.HasPrefix(rel, "..") {
			path = filepath.ToSlash(rel) // outside the module: label by dir
		} else {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
	}
	return l.load(path, abs)
}

// Import implements types.Importer: module-internal and SrcDirs imports
// load from source through the cache; "unsafe" maps to types.Unsafe;
// everything else is treated as standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.resolve(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no buildable Go files for %q in %s", path, dir)
		}
		if len(pkg.Errors) > 0 {
			return pkg.Types, pkg.Errors[0]
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// resolve maps an import path to a source directory the loader owns:
// module-internal paths map into the module tree, bare paths are looked
// up in SrcDirs.
func (l *Loader) resolve(path string) (string, bool) {
	if path == l.module {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	for _, src := range l.cfg.SrcDirs {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	return "", false
}

// load parses and type-checks the package in dir, caching under path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		Files: files,
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, pkg.Info)
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the buildable files of the package in dir: the
// non-test files plus, when cfg.Tests is set, the in-package test files.
// Files excluded by //go:build constraints or filename GOOS/GOARCH
// suffixes are skipped. External test files (package foo_test) are
// always skipped.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") && !l.cfg.Tests {
			continue
		}
		if !fileNameMatches(n) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	var testFiles []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildConstraintsMatch(f) {
			continue
		}
		if strings.HasSuffix(n, "_test.go") {
			testFiles = append(testFiles, f)
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: multiple packages (%s, %s) in %s", pkgName, f.Name.Name, dir)
		}
		files = append(files, f)
	}
	for _, f := range testFiles {
		if pkgName == "" {
			// Test-only directory: accept the in-package test files and
			// ignore the external test package.
			if !strings.HasSuffix(f.Name.Name, "_test") {
				pkgName = f.Name.Name
				files = append(files, f)
			}
			continue
		}
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}
	return files, nil
}

// goVersionTags lists the go1.x release tags satisfied by the running
// toolchain, derived from runtime.Version (e.g. "go1.24.0" enables
// go1.1 .. go1.24).
func goVersionTags() map[string]bool {
	tags := map[string]bool{}
	v := runtime.Version()
	var major, minor int
	if _, err := fmt.Sscanf(v, "go%d.%d", &major, &minor); err != nil || major != 1 {
		return tags
	}
	for i := 1; i <= minor; i++ {
		tags[fmt.Sprintf("go1.%d", i)] = true
	}
	return tags
}

var versionTags = goVersionTags()

// tagMatches is the build-tag predicate for the running platform.
func tagMatches(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "cgo":
		return false
	}
	return versionTags[tag]
}

// buildConstraintsMatch evaluates a file's //go:build (or legacy
// +build) constraint against the running platform.
func buildConstraintsMatch(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break // only comments above the package clause can constrain
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) || constraint.IsPlusBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err != nil {
					continue
				}
				if !expr.Eval(tagMatches) {
					return false
				}
			}
		}
	}
	return true
}

// knownOS and knownArch drive filename-based implicit constraints
// (name_linux.go, name_amd64.go, name_linux_amd64.go).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// fileNameMatches applies the implicit GOOS/GOARCH filename constraint.
func fileNameMatches(name string) bool {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".go"), "_test")
	parts := strings.Split(base, "_")
	if len(parts) == 1 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// FirstError returns the first type-checking error across pkgs, or nil.
func FirstError(pkgs []*Package) error {
	var errs []string
	for _, p := range pkgs {
		for _, e := range p.Errors {
			errs = append(errs, e.Error())
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return errors.New(strings.Join(errs, "\n"))
}
