package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> contents under a temp
// module root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderResolvesModuleImports(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     "module example.com/m\n\ngo 1.22\n",
		"a/a.go":     "package a\n\nimport \"example.com/m/b\"\n\n// V re-exports b's value.\nvar V = b.V\n",
		"b/b.go":     "package b\n\n// V is a value.\nvar V = 42\n",
		"b/b_std.go": "package b\n\nimport \"fmt\"\n\n// S formats V.\nfunc S() string { return fmt.Sprint(V) }\n",
	})
	loader, err := NewLoader(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(pkgs); err != nil {
		t.Fatalf("type errors: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	got := strings.Join(paths, " ")
	if !strings.Contains(got, "example.com/m/a") || !strings.Contains(got, "example.com/m/b") {
		t.Fatalf("loaded %q, want both module packages", got)
	}
}

func TestLoaderSkipsTestdataAndExternalTests(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                "module example.com/m\n\ngo 1.22\n",
		"a/a.go":                "package a\n\n// V is a value.\nvar V = 1\n",
		"a/a_test.go":           "package a\n\n// W doubles V (in-package test file).\nvar W = V * 2\n",
		"a/a_ext_test.go":       "package a_test\n",
		"a/testdata/bad/bad.go": "package bad\n\nthis does not parse",
	})
	loader, err := NewLoader(Config{Dir: root, Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(pkgs); err != nil {
		t.Fatalf("type errors: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1 (testdata must be skipped)", len(pkgs))
	}
	sawTest := false
	for _, f := range pkgs[0].Files {
		name := pkgs[0].Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "a_test.go") {
			sawTest = true
		}
		if strings.HasSuffix(name, "a_ext_test.go") {
			t.Fatalf("external test package file was loaded into package a")
		}
	}
	if !sawTest {
		t.Fatalf("in-package test file was not loaded despite Tests: true")
	}
}

func TestBuildConstraintFiltering(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": "package a\n\n// V is set per platform.\nvar V int\n",
		// A constraint no platform satisfies: must be excluded, or the
		// duplicate declaration below would be a type error.
		"a/never.go":     "//go:build plan9 && windows\n\npackage a\n\nfunc init() { V = 1 }\n",
		"a/also.go":    "//go:build !plan9 || !windows\n\npackage a\n\nfunc init() { V = 2 }\n",
		"a/a_plan9.go": "package a\n\nfunc init() { V = 3 }\n",
	})
	loader, err := NewLoader(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./a")
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(pkgs); err != nil {
		t.Fatalf("type errors (constraint filtering broken?): %v", err)
	}
	for _, f := range pkgs[0].Files {
		name := pkgs[0].Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "never.go") || strings.HasSuffix(name, "a_plan9.go") {
			t.Errorf("constrained-out file %s was loaded", name)
		}
	}
}

func TestIgnoreDirectives(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"a/a.go": `package a

// F is flagged by the test analyzer on every return statement.
func F() int {
	return 1 //dnnlint:ignore testcheck the fixture waives this site
}

// G is flagged with no waiver.
func G() int {
	return 2
}

// H carries a bare, unjustified waiver: the directive itself is flagged.
func H() int {
	return 3 //dnnlint:ignore testcheck
}
`,
	})
	loader, err := NewLoader(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./a")
	if err != nil {
		t.Fatal(err)
	}
	testcheck := &Analyzer{
		Name: "testcheck",
		Doc:  "flags every return statement (framework test)",
		Run: func(p *Pass) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if ret, ok := n.(*ast.ReturnStmt); ok {
						p.Reportf(ret.Pos(), "return statement")
					}
					return true
				})
			}
		},
	}
	diags := Run(pkgs, []*Analyzer{testcheck})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+d.Message[:min(20, len(d.Message))])
	}
	// Expected: G's return flagged; H's return suppressed but its bare
	// directive reported; F fully suppressed.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(diags), got)
	}
	seenReturn, seenBare := false, false
	for _, d := range diags {
		switch d.Analyzer {
		case "testcheck":
			seenReturn = true
		case "ignore":
			seenBare = true
			if !strings.Contains(d.Message, "justification") {
				t.Errorf("bare directive message %q", d.Message)
			}
		}
	}
	if !seenReturn || !seenBare {
		t.Fatalf("diagnostics %v: want one testcheck (G) and one bare-directive report (H)", got)
	}
}
