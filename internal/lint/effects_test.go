package lint

import (
	"go/types"
	"testing"
)

// loadProgram loads a synthetic module and builds its Program.
func loadProgram(t *testing.T, files map[string]string) (*Program, []*Package) {
	t.Helper()
	root := writeTree(t, files)
	l, err := NewLoader(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(pkgs); err != nil {
		t.Fatal(err)
	}
	return NewProgram(pkgs), pkgs
}

// fnNamed finds a declared function or method by name across the program.
func fnNamed(t *testing.T, p *Program, name string) *types.Func {
	t.Helper()
	for _, fn := range p.order {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %s not found in program", name)
	return nil
}

const effectsMod = "module effectstest\n\ngo 1.22\n"

func TestSummaryDirectParamWrite(t *testing.T) {
	p, _ := loadProgram(t, map[string]string{
		"go.mod": effectsMod,
		"a/a.go": `package a

var gcount int

func fill(dst []float32, v float32) {
	for i := range dst {
		dst[i] = v
	}
}

func scale(dst []float32, lo, hi int, v float32) {
	for i := lo; i < hi; i++ {
		dst[i] *= v
	}
}

func local(n int) int {
	buf := make([]int, n)
	buf[0] = n // write to a local: not a caller-visible effect
	return buf[0]
}

func bump() { gcount++ }
`,
	})
	s := p.Summary(fnNamed(t, p, "fill"))
	if !s.Params[0].Found || s.Params[0].Steered {
		t.Fatalf("fill: want unsteered write through param 0, got %+v", s.Params[0])
	}
	s = p.Summary(fnNamed(t, p, "scale"))
	if !s.Params[0].Found || !s.Params[0].Steered {
		t.Fatalf("scale: want steered write through param 0, got %+v", s.Params[0])
	}
	s = p.Summary(fnNamed(t, p, "local"))
	if s.Params[0].Found || s.Global.Found {
		t.Fatalf("local: want no caller-visible writes, got %+v", s)
	}
	if !s.Alloc.Found || s.Alloc.What != "make" {
		t.Fatalf("local: want make allocation, got %+v", s.Alloc)
	}
	s = p.Summary(fnNamed(t, p, "bump"))
	if !s.Global.Found {
		t.Fatalf("bump: want global write, got %+v", s)
	}
}

func TestSummaryPropagatesThroughCalls(t *testing.T) {
	p, _ := loadProgram(t, map[string]string{
		"go.mod": effectsMod,
		"a/a.go": `package a

type Buf struct{ data []float64 }

// poke writes its receiver's backing array through an alias.
func (b *Buf) poke(i int, v float64) {
	d := b.data
	d[i] = v
}

// steered keeps the write range parameter-controlled at every hop.
func steered(b *Buf, lo, hi int) {
	for i := lo; i < hi; i++ {
		b.poke(i, 0)
	}
}

// unsteered fixes the location, severing the steering chain.
func unsteered(b *Buf) {
	b.poke(0, 0)
}

// deep buries an allocation two calls down.
func deep() []byte  { return mid() }
func mid() []byte   { return leaf() }
func leaf() []byte  { return make([]byte, 8) }

func spawnIndirect() { spawner() }
func spawner()       { go func() {}() }
`,
	})
	s := p.Summary(fnNamed(t, p, "poke"))
	if !s.Recv.Found || !s.Recv.Steered {
		t.Fatalf("poke: want steered receiver write via alias, got %+v", s.Recv)
	}
	s = p.Summary(fnNamed(t, p, "steered"))
	if !s.Params[0].Found || !s.Params[0].Steered || s.Params[0].Depth != 1 {
		t.Fatalf("steered: want steered depth-1 write through param 0, got %+v", s.Params[0])
	}
	s = p.Summary(fnNamed(t, p, "unsteered"))
	if !s.Params[0].Found || s.Params[0].Steered {
		t.Fatalf("unsteered: want unsteered write through param 0, got %+v", s.Params[0])
	}
	s = p.Summary(fnNamed(t, p, "deep"))
	if !s.Alloc.Found || s.Alloc.Depth != 2 || s.Alloc.What != "make" {
		t.Fatalf("deep: want depth-2 make, got %+v", s.Alloc)
	}
	if !p.Summary(fnNamed(t, p, "spawnIndirect")).Spawns {
		t.Fatal("spawnIndirect: want Spawns via callee")
	}
}

func TestSummaryAllocWaiversAndPanics(t *testing.T) {
	p, _ := loadProgram(t, map[string]string{
		"go.mod": effectsMod,
		"a/a.go": `package a

// ring grows amortized within pre-sized capacity; the waiver keeps the
// append out of every caller's summary.
func ring(buf []int, v int) []int {
	//dnnlint:ignore hotalloc amortized growth within pre-sized capacity
	return append(buf, v)
}

func checked(n int) {
	if n < 0 {
		panic("bad " + string(rune(n)))
	}
}

func sprint(n int) string {
	return stringify(n)
}

func stringify(n int) string {
	if n < 0 {
		panic(stringifyBad(n)) // callee alloc under panic: not counted
	}
	return "ok"
}

func stringifyBad(n int) string { return string(make([]byte, 1)) }
`,
	})
	if s := p.Summary(fnNamed(t, p, "ring")); s.Alloc.Found {
		t.Fatalf("ring: waived append must not appear in summary, got %+v", s.Alloc)
	}
	if s := p.Summary(fnNamed(t, p, "checked")); s.Alloc.Found {
		t.Fatalf("checked: panic-path allocation must not count, got %+v", s.Alloc)
	}
	if s := p.Summary(fnNamed(t, p, "stringify")); s.Alloc.Found {
		t.Fatalf("stringify: callee alloc under panic must not propagate, got %+v", s.Alloc)
	}
}

func TestSummaryTransportErrFlow(t *testing.T) {
	p, _ := loadProgram(t, map[string]string{
		"go.mod": effectsMod,
		"transport/transport.go": `package transport

type Link struct{}

func (l *Link) Send(to int, b []byte) error { return nil }
func (l *Link) Recv(from int) ([]byte, error) { return nil, nil }
`,
		"dist/dist.go": `package dist

import "effectstest/transport"

// push wraps Send and hands the failure to its caller.
func push(l *transport.Link, b []byte) error {
	return l.Send(0, b)
}

// relay is two hops above the transport call.
func relay(l *transport.Link, b []byte) error {
	return push(l, b)
}

// swallow calls Send but returns no error: handled (or dropped) here.
func swallow(l *transport.Link, b []byte) {
	_ = l.Send(0, b)
}
`,
	})
	if s := p.Summary(fnNamed(t, p, "push")); !s.TransportErr.Found || s.TransportErr.Depth != 0 {
		t.Fatalf("push: want direct transport error source, got %+v", s.TransportErr)
	}
	if s := p.Summary(fnNamed(t, p, "relay")); !s.TransportErr.Found || s.TransportErr.Depth != 1 {
		t.Fatalf("relay: want depth-1 transport error source, got %+v", s.TransportErr)
	}
	if s := p.Summary(fnNamed(t, p, "swallow")); s.TransportErr.Found {
		t.Fatalf("swallow: no error result, must not be an error source, got %+v", s.TransportErr)
	}
}

func TestCallGraphResolvesCrossPackage(t *testing.T) {
	p, pkgs := loadProgram(t, map[string]string{
		"go.mod": effectsMod,
		"a/a.go": `package a

func Helper(dst []int) { dst[0] = 1 }
`,
		"b/b.go": `package b

import "effectstest/a"

func Use(dst []int) { a.Helper(dst) }
`,
	})
	use := fnNamed(t, p, "Use")
	fi := p.FuncInfo(use)
	if fi == nil || len(fi.Callees) != 1 || fi.Callees[0].Name() != "Helper" {
		t.Fatalf("Use: want one callee Helper, got %+v", fi)
	}
	// The cross-package edge must carry effects: Use writes dst[0] via Helper.
	if s := p.Summary(use); !s.Params[0].Found || s.Params[0].Depth != 1 {
		t.Fatalf("Use: want depth-1 param write via Helper, got %+v", s.Params[0])
	}
	_ = pkgs
}
