// Package analyzers holds the domain analyzers dnnlint runs: the
// machine-checked form of the determinism and parallelism contracts the
// runtime otherwise enforces only by convention (see LINTING.md for the
// catalogue of invariants, violating examples and fixes).
//
// The analyzers identify the runtime's types structurally — a method
// named For on a type Pool in a package named par — rather than by full
// import path, so the fixture packages under testdata/src can stand in
// for the real internal/par, internal/blob and internal/trace.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"coarsegrain/internal/lint"
)

// All returns every analyzer in the suite, in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Parbody, OrderedReduce, BlobAlias, HotAlloc, TraceNil, TransErr, GoroLife, PhaseSpan, ChanMisuse}
}

// prodFiles returns the pass's non-test files. The concurrency and
// transport contract analyzers (transerr, gorolife, phasespan,
// chanmisuse) scope themselves to production code: tests deliberately
// exercise the forbidden shapes — dropping Send errors to provoke
// reconnects, leaving spans open to prove End is unbalanced-safe — and
// a violated contract there fails the test itself.
func prodFiles(pass *lint.Pass) []*ast.File {
	out := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// calleeOf resolves the function or method a call invokes, or nil for
// calls through function values, builtins and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isNamed reports whether t (after stripping pointers) is the named type
// typeName defined in a package named pkgName.
func isNamed(t types.Type, pkgName, typeName string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// isMethodOn reports whether fn is a method with the given name on
// (possibly a pointer to) pkgName.typeName.
func isMethodOn(fn *types.Func, pkgName, typeName, method string) bool {
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), pkgName, typeName)
}

// poolClosure is one worksharing closure handed to the par.Pool API,
// together with the set of "schedule-derived" objects: the closure's own
// (lo, hi, rank) parameters plus every local whose value is computed from
// them. Writes into captured memory are race-free exactly when they are
// steered by a schedule-derived index — that is the repo's privatization
// contract.
type poolClosure struct {
	call   *ast.CallExpr
	method string // For, ForTiles, ForDynamic, ForOrdered, Region
	fn     *ast.FuncLit
	info   *types.Info
	safe   map[types.Object]bool
}

// poolMethods maps each worksharing method to the index of the argument
// holding the parallel body closure. (ForOrdered's merge argument runs
// sequentially in rank order and is deliberately not analyzed.)
var poolMethods = map[string]int{
	"For":           1,
	"ForTiles":      2,
	"ForDynamic":    2,
	"ForOrdered":    1,
	"OrderedSlices": 1,
	"Region":        0,
}

// forEachPoolClosure invokes visit for every func-literal worksharing
// body in the package. Bodies passed as named function values cannot be
// analyzed and are skipped.
func forEachPoolClosure(pass *lint.Pass, visit func(c *poolClosure)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Info, call)
			if fn == nil {
				return true
			}
			argIdx, ok := poolMethods[fn.Name()]
			if !ok || !isMethodOn(fn, "par", "Pool", fn.Name()) || argIdx >= len(call.Args) {
				return true
			}
			lit, ok := ast.Unparen(call.Args[argIdx]).(*ast.FuncLit)
			if !ok {
				return true
			}
			c := &poolClosure{call: call, method: fn.Name(), fn: lit, info: pass.Info}
			c.computeSafe()
			visit(c)
			return true
		})
	}
}

// computeSafe seeds the schedule-derived set with the closure parameters
// and propagates it through local assignments to a fixed point: in
//
//	for i := lo; i < hi; i++ { out[i] = v }
//
// i is derived from lo, so out[i] is a safe write.
func (c *poolClosure) computeSafe() {
	c.safe = map[types.Object]bool{}
	for _, field := range c.fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := c.info.Defs[name]; obj != nil {
				c.safe[obj] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Does any RHS mention a schedule-derived object?
			derived := false
			for _, rhs := range as.Rhs {
				if c.mentionsSafe(rhs) {
					derived = true
					break
				}
			}
			if !derived {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objectOf(c.info, id)
				if obj == nil || c.safe[obj] || c.capturedBy(obj) {
					continue // captured vars never become safe
				}
				c.safe[obj] = true
				changed = true
			}
			return true
		})
	}
}

// mentionsSafe reports whether expr references any schedule-derived
// object.
func (c *poolClosure) mentionsSafe(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.info.Uses[id]; obj != nil && c.safe[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// capturedBy reports whether obj is declared outside the closure — i.e.
// the closure captures it and all ranks share it.
func (c *poolClosure) capturedBy(obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < c.fn.Pos() || obj.Pos() >= c.fn.End()
}

// sharedWrite describes one write to captured memory found in a closure.
type sharedWrite struct {
	pos  token.Pos
	root types.Object // the captured variable at the base of the target
	// compound is true for op-assignments and ++/-- (accumulations).
	compound bool
	// tok is the assignment operator (token.ASSIGN, ADD_ASSIGN, INC, ...).
	tok token.Token
	// lhs is the full written expression.
	lhs ast.Expr
}

// writesToShared collects writes whose target's base is captured and
// which are not steered by a schedule-derived index: plain writes to a
// captured variable, and element/field writes whose entire index chain
// mentions no schedule-derived object.
func (c *poolClosure) writesToShared() []sharedWrite {
	var out []sharedWrite
	consider := func(lhs ast.Expr, tok token.Token, pos token.Pos) {
		root, safeIndexed := c.unwrapTarget(lhs)
		if root == nil {
			return
		}
		obj := objectOf(c.info, root)
		if obj == nil || !c.capturedBy(obj) || safeIndexed || c.safe[obj] {
			return
		}
		compound := tok != token.ASSIGN && tok != token.DEFINE
		out = append(out, sharedWrite{pos: pos, root: obj, compound: compound, tok: tok, lhs: lhs})
	}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				consider(lhs, st.Tok, lhs.Pos())
			}
		case *ast.IncDecStmt:
			consider(st.X, st.Tok, st.X.Pos())
		}
		return true
	})
	return out
}

// unwrapTarget walks a write target down to its base identifier,
// reporting whether any index step along the chain is schedule-derived.
// Chains it understands: x, x[i], x[i][j], x.f, (*p), and combinations.
func (c *poolClosure) unwrapTarget(expr ast.Expr) (root *ast.Ident, safeIndexed bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e, safeIndexed
		case *ast.IndexExpr:
			if c.mentionsSafe(e.Index) {
				safeIndexed = true
			}
			expr = e.X
		case *ast.SliceExpr:
			// A view like out[oc*ohw:(oc+1)*ohw] with schedule-derived
			// bounds is a rank-owned window: writes through it are safe.
			if e.Low != nil && c.mentionsSafe(e.Low) || e.High != nil && c.mentionsSafe(e.High) {
				safeIndexed = true
			}
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil, safeIndexed
		}
	}
}

// objectOf resolves an identifier's object from uses or defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isFloat reports whether t is a floating-point type (after following
// named types).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprString renders a short source form of an expression for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(fset, e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(fset, e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(fset, e.X)
	case *ast.ParenExpr:
		return "(" + exprString(fset, e.X) + ")"
	}
	return "expression"
}
