package analyzers

import (
	"go/ast"

	"coarsegrain/internal/lint"
)

// GoroLife enforces the goroutine-lifecycle discipline of the
// long-lived subsystems (transport, serve, dist): every goroutine
// spawned there must be joinable by a Close/drain path, because these
// packages are torn down and restarted within one process (server
// drain, transport reconnect, test suites) and a leaked goroutine
// keeps conns, buffers and whole Blob arenas alive across restarts.
//
// A `go` statement is sanctioned when the spawn is visibly tied to a
// join handle by one of the repo's two idioms:
//
//   - Add-before-spawn: the statement immediately before the spawn
//     calls Add on a WaitGroup-like handle (t.readers.Add(1); go ...),
//     so the matching Wait observes the goroutine.
//   - Done/close-first: the spawned function's first statement is
//     `defer x.Done()` or `defer close(ch)`, announcing its own join
//     edge (batchLoop's `defer close(s.batcherDone)`).
//
// Anything else is a naked goroutine and is flagged; genuinely fire-
// and-forget spawns must carry a //dnnlint:ignore gorolife waiver
// naming the drain path.
var GoroLife = &lint.Analyzer{
	Name: "gorolife",
	Doc: "flags goroutines in transport/serve/dist not visibly joined by a Close/drain " +
		"path (no Add-before-spawn, and the spawned body does not open with defer " +
		"Done/close)",
	Run: runGoroLife,
}

// goroLifePkgs are the long-lived subsystems the discipline applies to;
// compute kernels and benches may use structured fork/join freely.
var goroLifePkgs = map[string]bool{"transport": true, "serve": true, "dist": true}

func runGoroLife(pass *lint.Pass) {
	if !goroLifePkgs[pass.Pkg.Name()] {
		return
	}
	for _, f := range prodFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				return true
			}
			for i, st := range stmts {
				gs, ok := st.(*ast.GoStmt)
				if !ok {
					continue
				}
				if i > 0 && isWaitGroupAdd(stmts[i-1]) {
					continue
				}
				if opensWithJoinDefer(pass, gs.Call) {
					continue
				}
				pass.Reportf(gs.Pos(),
					"naked goroutine in package %s: no Add before the spawn and the spawned "+
						"body does not open with defer Done/close, so no Close/drain path can "+
						"join it — tie it to a WaitGroup or done channel (or waive with the "+
						"drain path named)", pass.Pkg.Name())
			}
			return true
		})
	}
}

// isWaitGroupAdd reports whether st is an expression statement calling
// a method named Add (the x.wg.Add(1) half of Add-before-spawn). The
// receiver is matched by name only: the repo's join handles are
// sync.WaitGroup and small wrappers with the same contract.
func isWaitGroupAdd(st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Add"
}

// opensWithJoinDefer reports whether the goroutine's function — a
// literal, or a declared function/method resolved through the call
// graph — begins with `defer x.Done()` or `defer close(ch)`.
func opensWithJoinDefer(pass *lint.Pass, call *ast.CallExpr) bool {
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := calleeOf(pass.Info, call); fn != nil {
		if decl := pass.Prog.DeclOf(fn); decl != nil {
			body = decl.Body
		}
	}
	if body == nil || len(body.List) == 0 {
		return false
	}
	ds, ok := body.List[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(ds.Call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Done"
	case *ast.Ident:
		return fun.Name == "close"
	}
	return false
}
