package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"coarsegrain/internal/lint"
)

// TraceNil enforces the nil-tracer contract of internal/trace: every
// instrumented site holds a plain *trace.Tracer handle that is nil when
// tracing is off, and the trace package promises that every Tracer method
// no-ops on a nil receiver. Two rules keep that contract honest:
//
//  1. In the trace package itself, every exported pointer-receiver method
//     of Tracer must begin with a nil-receiver guard (`if t == nil`) or
//     be a direct nil test (Enabled's `return t != nil`). A new method
//     without the guard would panic at every untraced call site.
//
//  2. Everywhere else, tracer handles must be tested with Enabled(), not
//     compared to nil directly. Enabled is the single point of truth for
//     "is tracing on": raw nil comparisons duplicate its current
//     implementation inline and silently diverge if enablement ever
//     grows beyond nil-ness (sampling, per-phase gates).
var TraceNil = &lint.Analyzer{
	Name: "tracenil",
	Doc: "enforces the nil-safe tracer contract: Tracer methods guard their nil receiver, " +
		"call sites test tracers with Enabled() instead of comparing to nil",
	Run: runTraceNil,
}

func runTraceNil(pass *lint.Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "trace" {
		checkTracerMethods(pass)
		return
	}
	checkTracerComparisons(pass)
}

// checkTracerMethods verifies rule 1 inside the defining package.
func checkTracerMethods(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
				continue
			}
			recvType := pass.TypeOf(fd.Recv.List[0].Type)
			if _, ptr := recvType.(*types.Pointer); !ptr {
				continue // value receivers cannot be nil
			}
			if !isNamed(recvType, "trace", "Tracer") {
				continue
			}
			recv := fd.Recv.List[0].Names[0]
			if recv.Name == "_" || !methodStartsWithNilGuard(pass, fd, recv.Name) {
				pass.Reportf(fd.Name.Pos(),
					"exported Tracer method %s does not begin with a nil-receiver guard: "+
						"the nil-tracer contract promises every method no-ops on a nil receiver "+
						"(start with `if %s == nil { return ... }`)",
					fd.Name.Name, recvName(recv))
			}
		}
	}
}

func recvName(id *ast.Ident) string {
	if id.Name == "_" {
		return "t"
	}
	return id.Name
}

// methodStartsWithNilGuard accepts either an opening `if recv == nil`
// statement or a first statement that is itself a nil test of the
// receiver (`return t != nil`).
func methodStartsWithNilGuard(pass *lint.Pass, fd *ast.FuncDecl, recv string) bool {
	if len(fd.Body.List) == 0 {
		return true // empty body is trivially nil-safe
	}
	first := fd.Body.List[0]
	switch st := first.(type) {
	case *ast.IfStmt:
		return isNilTestOf(st.Cond, recv)
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			if isNilTestOf(res, recv) {
				return true
			}
		}
	}
	return false
}

// isNilTestOf reports whether expr is `recv == nil` or `recv != nil`.
func isNilTestOf(expr ast.Expr, recv string) bool {
	be, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
}

// checkTracerComparisons verifies rule 2 outside the defining package.
func checkTracerComparisons(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			var tracerSide ast.Expr
			if isNilIdent(pass, be.Y) && isTracerExpr(pass, be.X) {
				tracerSide = be.X
			} else if isNilIdent(pass, be.X) && isTracerExpr(pass, be.Y) {
				tracerSide = be.Y
			}
			if tracerSide == nil {
				return true
			}
			var suggestion string
			if be.Op == token.EQL {
				suggestion = "!" + exprString(pass.Fset, tracerSide) + ".Enabled()"
			} else {
				suggestion = exprString(pass.Fset, tracerSide) + ".Enabled()"
			}
			pass.Reportf(be.Pos(),
				"*trace.Tracer compared to nil: use the nil-safe idiom %s instead — "+
					"Enabled is the contract for \"is tracing on\" and raw nil checks diverge "+
					"from it if enablement ever grows beyond nil-ness",
				suggestion)
			return true
		})
	}
}

func isNilIdent(pass *lint.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := pass.ObjectOf(id).(*types.Nil)
	return isNil
}

func isTracerExpr(pass *lint.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	return t != nil && isNamed(t, "trace", "Tracer")
}
