package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"coarsegrain/internal/lint"
)

// OrderedReduce enforces the deterministic-reduction contract (Algorithm 5
// of the paper, internal/par's Ordered/ForOrdered): floating-point
// accumulation is not associative, so any float reduction whose visit
// order is not fixed yields results that differ between runs in the last
// bits — exactly what the convergence-invariance property forbids. Two
// shapes are flagged:
//
//  1. float accumulation into captured state inside a parallel
//     worksharing closure (the merge must instead go through Pool.Ordered,
//     which visits ranks in increasing order on one goroutine);
//  2. float accumulation driven by `range` over a map, whose iteration
//     order is randomized by the runtime even on a single goroutine;
//  3. a hand-rolled cross-rank fold — a loop bounded by Pool.Workers()
//     accumulating per-rank float partials inside a live worksharing
//     closure. Even when the writes are element-disjoint, the fold reads
//     peer ranks' partials while those ranks may still be producing them.
//     Pool.OrderedSlices is the sanctioned form: it runs the same
//     rank-ordered fold in its own region, after the compute region's
//     join, and carries the bit-determinism proof and reduce-phase
//     tracing with it.
var OrderedReduce = &lint.Analyzer{
	Name: "orderedreduce",
	Doc: "flags nondeterministic floating-point reductions: cross-rank float accumulation " +
		"outside Pool.Ordered/ForOrdered, float accumulation over map iteration order, " +
		"and hand-rolled rank folds that should go through Pool.OrderedSlices",
	Run: runOrderedReduce,
}

func runOrderedReduce(pass *lint.Pass) {
	// Shape 1: cross-rank accumulation inside worksharing closures.
	forEachPoolClosure(pass, func(c *poolClosure) {
		for _, w := range c.writesToShared() {
			// Compound forms (+=, ++) carry the determinism message; the
			// plain `x = x + v` form is already reported by parbody as a
			// shared write.
			if !w.compound {
				continue
			}
			if !isFloat(pass.TypeOf(w.lhs)) {
				continue
			}
			pass.Reportf(w.pos,
				"cross-rank floating-point accumulation into %q inside Pool.%s closure: "+
					"accumulation order depends on rank interleaving, so the result is not "+
					"bit-deterministic — privatize per rank and merge with Pool.Ordered/ForOrdered",
				exprString(pass.Fset, w.lhs), c.method)
		}

		// Shape 3: hand-rolled rank folds. OrderedSlices closures ARE the
		// sanctioned rank fold, so they are exempt; everywhere else a
		// Workers()-bounded loop that accumulates floats into captured
		// memory is merging partials inside a live region.
		if c.method == "OrderedSlices" {
			return
		}
		reportRawRankFolds(pass, c)
	})

	// Shape 2: float accumulation under map iteration.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rng.X); t == nil || !isMapType(t) {
				return true
			}
			// A target indexed by the range key (or value) is a per-entry
			// update — each key is visited exactly once, so iteration
			// order cannot change the result. Only loop-invariant
			// accumulation targets are order-sensitive.
			iterVars := map[types.Object]bool{}
			for _, v := range []ast.Expr{rng.Key, rng.Value} {
				if id, ok := v.(*ast.Ident); ok && id != nil {
					if obj := objectOf(pass.Info, id); obj != nil {
						iterVars[obj] = true
					}
				}
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				switch st := m.(type) {
				case *ast.AssignStmt:
					if st.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range st.Lhs {
						if !isFloat(pass.TypeOf(lhs)) {
							continue
						}
						if indexedByAny(pass.Info, lhs, iterVars) {
							continue
						}
						accum := st.Tok != token.ASSIGN
						if !accum && len(st.Lhs) == len(st.Rhs) {
							accum = isSelfAssign(pass.Info, lhs, st)
						}
						if accum && declaredOutside(pass.Info, lhs, rng) {
							pass.Reportf(lhs.Pos(),
								"floating-point accumulation into %q is driven by `range` over a map: "+
									"map iteration order is nondeterministic, so the sum's rounding differs "+
									"between runs — iterate sorted keys instead",
								exprString(pass.Fset, lhs))
						}
					}
				}
				return true
			})
			return true
		})
	}
}

// reportRawRankFolds flags shape 3 inside one worksharing closure:
// compound float accumulation into captured memory, nested in a for
// loop whose condition is bounded by a (par.Pool).Workers() call. Only
// schedule-indexed targets are reported here — folds into unindexed
// captured state are already shape 1 findings, and reporting both would
// double-diagnose one write.
func reportRawRankFolds(pass *lint.Pass, c *poolClosure) {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond == nil || !mentionsWorkersCall(pass, loop.Cond) {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			st, ok := m.(*ast.AssignStmt)
			if !ok || st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if !isFloat(pass.TypeOf(lhs)) {
					continue
				}
				root, safeIndexed := c.unwrapTarget(lhs)
				if root == nil || !safeIndexed {
					continue
				}
				obj := objectOf(pass.Info, root)
				if obj == nil || !c.capturedBy(obj) {
					continue
				}
				pass.Reportf(lhs.Pos(),
					"hand-rolled cross-rank fold into %q inside Pool.%s closure: the Workers()-bounded "+
						"loop merges rank partials while peer ranks may still be writing them — run the "+
						"merge through Pool.OrderedSlices after the compute region has joined",
					exprString(pass.Fset, lhs), c.method)
			}
			return true
		})
		return true
	})
}

// mentionsWorkersCall reports whether expr contains a call to the
// worker-team size accessor (par.Pool).Workers.
func mentionsWorkersCall(pass *lint.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if fn := calleeOf(pass.Info, call); fn != nil && isMethodOn(fn, "par", "Pool", "Workers") {
			found = true
		}
		return !found
	})
	return found
}

// indexedByAny reports whether any index step in lhs's access chain
// mentions one of the given objects.
func indexedByAny(info *types.Info, lhs ast.Expr, objs map[types.Object]bool) bool {
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && objs[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if mentions(e.Index) {
				return true
			}
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return false
		}
	}
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isSelfAssign reports whether st assigns lhs an expression that reads
// lhs's own base object (x = x + v).
func isSelfAssign(info *types.Info, lhs ast.Expr, st *ast.AssignStmt) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objectOf(info, id)
	if obj == nil {
		return false
	}
	for _, rhs := range st.Rhs {
		found := false
		ast.Inspect(rhs, func(n ast.Node) bool {
			if rid, ok := n.(*ast.Ident); ok && info.Uses[rid] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// declaredOutside reports whether lhs's base object is declared outside
// the given statement (so the accumulation escapes the loop).
func declaredOutside(info *types.Info, lhs ast.Expr, within ast.Node) bool {
	root := lhs
	for {
		switch e := ast.Unparen(root).(type) {
		case *ast.IndexExpr:
			root = e.X
			continue
		case *ast.SelectorExpr:
			root = e.X
			continue
		case *ast.StarExpr:
			root = e.X
			continue
		}
		break
	}
	id, ok := ast.Unparen(root).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objectOf(info, id)
	if obj == nil {
		return false
	}
	return obj.Pos() < within.Pos() || obj.Pos() >= within.End()
}
