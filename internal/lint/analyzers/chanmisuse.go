package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"coarsegrain/internal/lint"
)

// ChanMisuse catches the two channel mistakes that have bitten (or
// nearly bitten) the long-lived subsystems:
//
//   - a blocking channel operation while a mutex is held. The batcher
//     and the transport inboxes pair a mutex-guarded table with
//     channels; a send that blocks under the lock deadlocks every other
//     goroutine that needs the same lock to drain the channel. Sends
//     guarded by a select with a default clause are non-blocking and
//     fine (serve.submit's overload path), as is close(), which never
//     blocks.
//   - a send on an unexported channel field that no code in the package
//     ever receives from, ranges over, closes or selects on. Such a
//     send can only come from a forgotten drain path: the sender parks
//     forever once the buffer fills.
//
// Scope is the subsystems that own locks+channels (transport, serve,
// dist); kernel packages use channels only through par's structured
// fork/join.
var ChanMisuse = &lint.Analyzer{
	Name: "chanmisuse",
	Doc: "flags blocking channel sends/receives while a mutex is held (select-with-default " +
		"and close are exempt) and sends on unexported channel fields no code in the " +
		"package drains",
	Run: runChanMisuse,
}

func runChanMisuse(pass *lint.Pass) {
	if !goroLifePkgs[pass.Pkg.Name()] {
		return
	}
	u := &chanUse{
		pass:  pass,
		sends: map[types.Object][]token.Pos{},
		drain: map[types.Object]bool{},
	}
	for _, f := range prodFiles(pass) {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				walkHeld(pass, fd.Body.List, map[string]bool{})
			}
		}
		u.collect(f)
	}
	u.reportUndrained()
}

// --- part 1: channel ops under a held mutex -------------------------

// mutexOp classifies an expression statement as a lock or unlock on
// some handle and returns the handle's printed form ("s.mu").
func mutexOp(fset *token.FileSet, st ast.Stmt) (handle string, lock, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", false, false
	}
	call, isCall := ast.Unparen(es.X).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprString(fset, sel.X), true, true
	case "Unlock", "RUnlock":
		return exprString(fset, sel.X), false, true
	}
	return "", false, false
}

// walkHeld walks a statement list in order, tracking which mutexes are
// lexically held, and checks every statement that executes under a lock
// for blocking channel operations. Nested blocks inherit a copy of the
// held set; a defer Unlock leaves the mutex held for the rest of the
// list (that is the point of the idiom).
func walkHeld(pass *lint.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, st := range stmts {
		if h, lock, ok := mutexOp(pass.Fset, st); ok {
			if lock {
				held[h] = true
			} else {
				delete(held, h)
			}
			continue
		}
		if len(held) > 0 {
			checkBlockingOps(pass, st, heldNames(held))
		}
		// Recurse into nested statement lists with a copy, so a Lock
		// inside an if-branch does not leak into the siblings.
		for _, list := range nestedStmtLists(st) {
			walkHeld(pass, list, copyHeld(held))
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k := range held {
		c[k] = true
	}
	return c
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) == 1 {
		return names[0]
	}
	// Deterministic enough for a diagnostic: held rarely exceeds one.
	s := names[0]
	for _, n := range names[1:] {
		if n < s {
			s = n
		}
	}
	return s
}

// nestedStmtLists returns the statement lists directly nested in st
// (if/for/switch/select bodies). The statements themselves are checked
// by the caller; only list-structured recursion happens here.
func nestedStmtLists(st ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := st.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil { // else-block or else-if, both are statements
			out = append(out, nestedStmtLists(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(s.Stmt)...)
	}
	return out
}

// checkBlockingOps flags blocking sends and receives inside st (one
// statement, not its nested lists). Select statements with a default
// clause are non-blocking by construction and their comm clauses are
// exempt; function literals run on other goroutines at other times and
// are skipped entirely.
func checkBlockingOps(pass *lint.Pass, st ast.Stmt, held string) {
	nested := map[ast.Node]bool{}
	for _, list := range nestedStmtLists(st) {
		for _, s := range list {
			nested[s] = true
		}
	}
	ast.Inspect(st, func(n ast.Node) bool {
		if nested[n] {
			return false // handled by walkHeld's recursion
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if selectHasDefault(x) {
				return false // non-blocking; bodies are in nested lists
			}
			return true
		case *ast.SendStmt:
			pass.Reportf(x.Pos(),
				"blocking send on %s while %s is held: every goroutine that needs %s to "+
					"drain the channel deadlocks behind this send — release the lock first "+
					"or make the send non-blocking (select with default)",
				exprString(pass.Fset, x.Chan), held, held)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.Pos(),
					"blocking receive on %s while %s is held: the sender may need %s to "+
						"make progress — release the lock before waiting on the channel",
					exprString(pass.Fset, x.X), held, held)
			}
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// --- part 2: sends on channel fields nothing drains -----------------

// chanUse aggregates, per package, every send on an unexported
// chan-typed struct field and every drain edge (receive, range, close,
// select case) touching one.
type chanUse struct {
	pass  *lint.Pass
	sends map[types.Object][]token.Pos
	drain map[types.Object]bool
}

// fieldOf resolves e to an unexported chan-typed struct field accessed
// as a selector (s.queue), or nil.
func (u *chanUse) fieldOf(e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := u.pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Exported() {
		return nil
	}
	if v.Pkg() != u.pass.Pkg {
		return nil
	}
	if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	return v
}

func (u *chanUse) collect(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if fld := u.fieldOf(x.Chan); fld != nil {
				u.sends[fld] = append(u.sends[fld], x.Pos())
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if fld := u.fieldOf(x.X); fld != nil {
					u.drain[fld] = true
				}
			}
		case *ast.RangeStmt:
			if fld := u.fieldOf(x.X); fld != nil {
				u.drain[fld] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if fld := u.fieldOf(x.Args[0]); fld != nil {
					u.drain[fld] = true
				}
			}
		}
		return true
	})
}

func (u *chanUse) reportUndrained() {
	for fld, sites := range u.sends {
		if u.drain[fld] {
			continue
		}
		for _, pos := range sites {
			u.pass.Reportf(pos,
				"send on channel field %s but no receive, range, close or select case in "+
					"this package drains it: once the buffer fills the sender parks forever — "+
					"wire the drain path or delete the channel", fld.Name())
		}
	}
}
