package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"coarsegrain/internal/lint"
)

// TransErr machine-checks the transport error contract (DISTRIBUTED.md):
// Send and Recv report link failures through their error results, and
// transport.ErrTransient specifically marks a failure the caller is
// expected to absorb with a bounded retry. Dropping one of these errors
// silently desynchronizes a rank — the reduction tree then blocks or
// folds stale gradients — and matching the sentinel with == instead of
// errors.Is breaks as soon as a wrapper (Flaky's %w, a future annotated
// transport) adds context.
//
// Three shapes are flagged:
//   - a call to a transport Send/Recv whose error result is discarded
//     (expression statement, blank assignment, go/defer);
//   - the same discard on a call to any function whose effect summary
//     says its error can originate from a transport Send/Recv (the
//     interprocedural part: helpers that wrap Send are held to the same
//     standard as Send itself);
//   - comparing an error against transport.ErrTransient with == or !=.
var TransErr = &lint.Analyzer{
	Name: "transerr",
	Doc: "flags dropped errors from transport Send/Recv/SendCtrl/RecvCtrl (directly or through " +
		"wrappers, via effect summaries) and ==/!= comparisons against transport.ErrTransient " +
		"or transport.ErrPeerDown (use errors.Is so wrapped sentinels still match)",
	Run: runTransErr,
}

func runTransErr(pass *lint.Pass) {
	for _, f := range prodFiles(pass) {
		var inIsMethod bool
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				// An errors.Is protocol method — `func (e *E) Is(target
				// error) bool` — is the one sanctioned home of a ==
				// sentinel comparison: it is what makes errors.Is work.
				inIsMethod = isErrorsIsMethod(pass, st)
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
					checkDropped(pass, call, "discarded")
				}
			case *ast.GoStmt:
				checkDropped(pass, st.Call, "discarded by go")
			case *ast.DeferStmt:
				checkDropped(pass, st.Call, "discarded by defer")
			case *ast.AssignStmt:
				checkBlankAssign(pass, st)
			case *ast.BinaryExpr:
				if !inIsMethod {
					checkSentinelCompare(pass, st)
				}
			}
			return true
		})
	}
}

// isErrorsIsMethod reports whether decl is an errors.Is protocol
// implementation: a method named Is taking one error and returning one
// bool.
func isErrorsIsMethod(pass *lint.Pass, decl *ast.FuncDecl) bool {
	if decl.Recv == nil || decl.Name.Name != "Is" {
		return false
	}
	fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && isErrType(sig.Params().At(0).Type()) &&
		sig.Results().Len() == 1 && types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// transportErrCall reports whether call's error result carries a
// transport failure: a direct Send/Recv, or a summarized wrapper whose
// error flow reaches one. The second return names the origin for the
// message.
func transportErrCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(pass.Info, call)
	if fn == nil {
		return "", false
	}
	if lint.IsTransportSendRecv(fn) {
		return "transport." + fn.Name(), true
	}
	if s := pass.Prog.Summary(fn); s != nil && s.TransportErr.Found {
		return fn.Name() + " (which forwards a transport " + s.TransportErr.What + " error)", true
	}
	return "", false
}

func checkDropped(pass *lint.Pass, call *ast.CallExpr, how string) {
	origin, ok := transportErrCall(pass, call)
	if !ok {
		return
	}
	if !callReturnsError(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s is %s: a lost link failure silently desynchronizes the rank — "+
			"retry transient failures (errors.Is(err, transport.ErrTransient)) or propagate the error",
		origin, how)
}

// checkBlankAssign flags assignments that bind the call's error result
// to the blank identifier.
func checkBlankAssign(pass *lint.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	origin, ok := transportErrCall(pass, call)
	if !ok {
		return
	}
	// The error is the last result; with a single LHS the whole call is
	// one value (the error itself for Send-shaped signatures).
	errIdx := len(st.Lhs) - 1
	tup, ok := pass.TypeOf(call).(*types.Tuple)
	if ok {
		errIdx = tup.Len() - 1
		if errIdx >= len(st.Lhs) {
			return
		}
	}
	id, ok := st.Lhs[errIdx].(*ast.Ident)
	if !ok || id.Name != "_" {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s is assigned to _: a lost link failure silently desynchronizes the rank — "+
			"retry transient failures (errors.Is(err, transport.ErrTransient)) or propagate the error",
		origin)
}

// checkSentinelCompare flags err == transport.ErrTransient and
// err == transport.ErrPeerDown (and !=): both sentinels arrive wrapped
// (Flaky wraps with %w, PeerDownError carries its cause), so only
// errors.Is matches them reliably.
func checkSentinelCompare(pass *lint.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if name, ok := transportSentinel(pass, side); ok {
			pass.Reportf(be.Pos(),
				"comparing against transport.%s with %s misses wrapped sentinels "+
					"(Flaky wraps with %%w, PeerDownError wraps its cause): use errors.Is(err, transport.%s)",
				name, be.Op, name)
			return
		}
	}
}

// transportSentinel reports whether e names the ErrTransient or
// ErrPeerDown variable of a package named transport (matched
// structurally, so the fixture stand-in exercises the same rule as the
// real package), returning the sentinel's name.
func transportSentinel(pass *lint.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.Ident:
		id = x
	default:
		return "", false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Name() != "transport" {
		return "", false
	}
	if v.Name() != "ErrTransient" && v.Name() != "ErrPeerDown" {
		return "", false
	}
	return v.Name(), true
}

// callReturnsError reports whether the call has an error among its
// results (guards against same-named methods with no error result).
func callReturnsError(pass *lint.Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrType(t.At(i).Type()) {
				return true
			}
		}
	case nil:
		return false
	default:
		return isErrType(t)
	}
	return false
}

func isErrType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
