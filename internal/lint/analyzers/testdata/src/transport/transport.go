// Package transport is a miniature stand-in for
// coarsegrain/internal/transport: the transerr analyzer matches the
// real package structurally (a method named Send/Recv with an error
// result on a type in a package named transport, a variable named
// ErrTransient), so this skeleton is all the fixtures need.
package transport

import "errors"

// ErrTransient marks a link failure the caller should retry.
var ErrTransient = errors.New("transient transport failure")

// ErrPeerDown marks a peer declared dead by failure detection; it
// arrives wrapped in a PeerDownError carrying the rank and cause.
var ErrPeerDown = errors.New("peer down")

// Msg is one framed message.
type Msg struct {
	Seq     uint64
	Payload []float32
}

// Conn is a rank-to-rank link.
type Conn struct {
	closed bool
}

// Send ships m to the peer.
func (c *Conn) Send(m Msg) error {
	if c.closed {
		return ErrTransient
	}
	return nil
}

// Recv blocks for the next message from the peer.
func (c *Conn) Recv() (Msg, error) {
	if c.closed {
		return Msg{}, ErrTransient
	}
	return Msg{Seq: 1}, nil
}

// SendCtrl ships a control-plane frame (heartbeat, fence, join).
func (c *Conn) SendCtrl(m Msg) error {
	if c.closed {
		return ErrPeerDown
	}
	return nil
}

// RecvCtrl blocks for the next control-plane frame.
func (c *Conn) RecvCtrl() (Msg, error) {
	if c.closed {
		return Msg{}, ErrPeerDown
	}
	return Msg{Seq: 2}, nil
}

// Close tears the link down.
func (c *Conn) Close() error {
	c.closed = true
	return nil
}

// Codec packs gradient payloads for the wire (f16/int8 in the real
// package). Encode/Decode are pure transforms — no error result — so
// only the Send/Recv they wrap carry the transport error contract.
type Codec struct{}

// Encode packs src into a wire frame.
func (Codec) Encode(src []float32) []float32 { return src }

// Decode unpacks a wire frame.
func (Codec) Decode(wire []float32) []float32 { return wire }
