// Package trace is a miniature stand-in for coarsegrain/internal/trace:
// a nil-safe Tracer handle, just enough surface for the tracenil
// call-site fixtures.
package trace

// Span is one recorded interval.
type Span struct {
	Name string
}

// Tracer records spans; all methods are nil-safe.
type Tracer struct {
	spans []Span
}

// New creates a tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether the handle records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Record stores one span.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, s)
}

// Len returns the number of spans held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}
