// Package trace is a miniature stand-in for coarsegrain/internal/trace:
// a nil-safe Tracer handle with the phase vocabulary surface, enough for
// the tracenil and phasespan call-site fixtures. The phase names mirror
// the real table; phasespan's vocabulary check imports the real package,
// so only the shapes (Phase type, Begin/End/SetScope, Span.Phase) matter
// here.
package trace

// Phase classifies a span.
type Phase int

// The phase constants mirror the real vocabulary.
const (
	PhaseForward Phase = iota
	PhaseBackward
	PhaseReduce
	PhaseUpdate
	PhaseIteration
	PhaseRegion
	PhaseGuard
	PhaseServe
	PhaseComm
)

var phaseNames = [...]string{
	PhaseForward:   "forward",
	PhaseBackward:  "backward",
	PhaseReduce:    "reduce",
	PhaseUpdate:    "update",
	PhaseIteration: "iteration",
	PhaseRegion:    "region",
	PhaseGuard:     "guard",
	PhaseServe:     "serve",
	PhaseComm:      "comm",
}

// String renders the phase name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "region"
}

// Span is one recorded interval.
type Span struct {
	Name  string
	Phase Phase
}

// Tracer records spans; all methods are nil-safe.
type Tracer struct {
	spans []Span
	open  int
}

// New creates a tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether the handle records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Record stores one span.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, s)
}

// Len returns the number of spans held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Begin opens a span on the driver-side stack.
func (t *Tracer) Begin(name string, phase Phase) {
	if t == nil {
		return
	}
	t.open++
	t.spans = append(t.spans, Span{Name: name, Phase: phase})
}

// End closes the innermost open span.
func (t *Tracer) End() {
	if t == nil {
		return
	}
	if t.open > 0 {
		t.open--
	}
}

// SetScope labels subsequent worker spans.
func (t *Tracer) SetScope(name string, phase Phase) {
	if t == nil {
		return
	}
	_ = name
	_ = phase
}
