// Package orderedreduce exercises the orderedreduce analyzer: float
// reductions whose visit order is not fixed, against the deterministic
// ordered-merge idiom.
package orderedreduce

import "par"

// badCrossRank accumulates floats across ranks outside Pool.Ordered.
func badCrossRank(p *par.Pool, in []float32) float32 {
	var sum float32
	var sums [4]float64
	p.For(len(in), func(lo, hi, rank int) {
		for i := lo; i < hi; i++ {
			sum += in[i] // want `cross-rank floating-point accumulation into "sum" inside Pool\.For closure`
		}
		sums[0] += float64(in[lo]) // want `cross-rank floating-point accumulation into "sums\[\.\.\.\]" inside Pool\.For closure`
	})
	return sum + float32(sums[0])
}

// badMapRange accumulates floats in map iteration order.
func badMapRange(weights map[string]float64) float64 {
	var total float64
	for _, w := range weights {
		total += w // want "floating-point accumulation into \"total\" is driven by `range` over a map"
	}
	var norm float64
	for _, w := range weights {
		norm = norm + w*w // want "floating-point accumulation into \"norm\" is driven by `range` over a map"
	}
	return total + norm
}

// badRawCrossRankFold hand-rolls the element-parallel rank fold inside a
// live worksharing region: the writes are element-disjoint, but the fold
// reads every rank's partials while those ranks may still be producing
// them, and bypasses the audited OrderedSlices merge.
func badRawCrossRankFold(p *par.Pool, parts [][]float32, dst []float32) {
	p.For(len(dst), func(lo, hi, rank int) {
		for r := 0; r < p.Workers(); r++ {
			for i := lo; i < hi; i++ {
				dst[i] += parts[r][i] // want `hand-rolled cross-rank fold into "dst\[\.\.\.\]" inside Pool\.For closure`
			}
		}
	})
}

// goodOrderedSlices routes the same fold through the sanctioned
// primitive: each element is owned by one worker and folded in rank
// order after the compute region has joined (never flagged).
func goodOrderedSlices(p *par.Pool, parts [][]float32, dst []float32) {
	p.OrderedSlices(len(dst), func(lo, hi, rank int) {
		for i := lo; i < hi; i++ {
			dst[i] += parts[rank][i]
		}
	})
}

// goodWorkersBoundedCompute shows that a Workers()-bounded loop alone is
// not a finding: this one only reads, writing nothing captured.
func goodWorkersBoundedCompute(p *par.Pool, parts [][]float32) []float32 {
	maxes := make([]float32, p.Workers())
	p.For(len(parts[0]), func(lo, hi, rank int) {
		var m float32
		for r := 0; r < p.Workers(); r++ {
			if parts[r][lo] > m {
				m = parts[r][lo]
			}
		}
		maxes[rank] = m
	})
	return maxes
}

// goodOrdered privatizes per rank and merges in rank order: the
// sanctioned deterministic reduction (never flagged).
func goodOrdered(p *par.Pool, in []float32) float32 {
	partials := make([]float32, p.Workers())
	p.ForOrdered(len(in),
		func(lo, hi, rank int) {
			var local float32
			for i := lo; i < hi; i++ {
				local += in[i] // closure-local: visit order fixed within one rank
			}
			partials[rank] = local
		},
		func(rank int) {
			partials[0] += partials[rank] // ordered merge: exempt by design
		})
	return partials[0]
}

// goodMapUses shows map iteration that is fine: non-float accumulation,
// and float accumulation over a deterministically ordered slice.
func goodMapUses(weights map[string]float64, keys []string) float64 {
	n := 0
	for range weights {
		n++ // integer count: order-independent
	}
	var total float64
	for _, k := range keys { // sorted-keys idiom: slice range is ordered
		total += weights[k]
	}
	// Accumulation into a loop-local float resets each pass: harmless.
	for _, w := range weights {
		half := 0.0
		half += w / 2
		_ = half
	}
	// Per-key updates touch each entry exactly once: iteration order
	// cannot change the result, so they are not reductions.
	for k := range weights {
		weights[k] /= total
	}
	for k, w := range weights {
		weights[k] = w * w
	}
	return total + float64(n)
}
