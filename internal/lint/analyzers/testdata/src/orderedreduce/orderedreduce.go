// Package orderedreduce exercises the orderedreduce analyzer: float
// reductions whose visit order is not fixed, against the deterministic
// ordered-merge idiom.
package orderedreduce

import "par"

// badCrossRank accumulates floats across ranks outside Pool.Ordered.
func badCrossRank(p *par.Pool, in []float32) float32 {
	var sum float32
	var sums [4]float64
	p.For(len(in), func(lo, hi, rank int) {
		for i := lo; i < hi; i++ {
			sum += in[i] // want `cross-rank floating-point accumulation into "sum" inside Pool\.For closure`
		}
		sums[0] += float64(in[lo]) // want `cross-rank floating-point accumulation into "sums\[\.\.\.\]" inside Pool\.For closure`
	})
	return sum + float32(sums[0])
}

// badMapRange accumulates floats in map iteration order.
func badMapRange(weights map[string]float64) float64 {
	var total float64
	for _, w := range weights {
		total += w // want "floating-point accumulation into \"total\" is driven by `range` over a map"
	}
	var norm float64
	for _, w := range weights {
		norm = norm + w*w // want "floating-point accumulation into \"norm\" is driven by `range` over a map"
	}
	return total + norm
}

// goodOrdered privatizes per rank and merges in rank order: the
// sanctioned deterministic reduction (never flagged).
func goodOrdered(p *par.Pool, in []float32) float32 {
	partials := make([]float32, p.Workers())
	p.ForOrdered(len(in),
		func(lo, hi, rank int) {
			var local float32
			for i := lo; i < hi; i++ {
				local += in[i] // closure-local: visit order fixed within one rank
			}
			partials[rank] = local
		},
		func(rank int) {
			partials[0] += partials[rank] // ordered merge: exempt by design
		})
	return partials[0]
}

// goodMapUses shows map iteration that is fine: non-float accumulation,
// and float accumulation over a deterministically ordered slice.
func goodMapUses(weights map[string]float64, keys []string) float64 {
	n := 0
	for range weights {
		n++ // integer count: order-independent
	}
	var total float64
	for _, k := range keys { // sorted-keys idiom: slice range is ordered
		total += weights[k]
	}
	// Accumulation into a loop-local float resets each pass: harmless.
	for _, w := range weights {
		half := 0.0
		half += w / 2
		_ = half
	}
	// Per-key updates touch each entry exactly once: iteration order
	// cannot change the result, so they are not reductions.
	for k := range weights {
		weights[k] /= total
	}
	for k, w := range weights {
		weights[k] = w * w
	}
	return total + float64(n)
}
