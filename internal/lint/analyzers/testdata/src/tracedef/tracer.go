// Package trace (fixture import path "tracedef") exercises the tracenil
// analyzer's defining-package rule: every exported pointer-receiver
// Tracer method must open with a nil-receiver guard.
package trace

// Span is one recorded interval.
type Span struct{ Name string }

// Tracer records spans and promises nil-safety on every method.
type Tracer struct {
	spans []Span
	on    bool
}

// Enabled is the canonical nil test: a direct nil comparison as the
// first (and only) statement satisfies the contract.
func (t *Tracer) Enabled() bool { return t != nil }

// Record guards its receiver: compliant.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, s)
}

// Len forgets the guard: a nil handle panics here.
func (t *Tracer) Len() int { // want `exported Tracer method Len does not begin with a nil-receiver guard`
	return len(t.spans)
}

// Toggle also forgets the guard, with a non-empty body.
func (t *Tracer) Toggle() { // want `exported Tracer method Toggle does not begin with a nil-receiver guard`
	t.on = !t.on
}

// reset is unexported: internal callers own the nil discipline.
func (t *Tracer) reset() {
	t.spans = t.spans[:0]
}

// Copy has a value receiver: it can never be nil, so no guard needed.
func (t Tracer) Copy() Tracer { return t }
