// Package blob is a miniature stand-in for coarsegrain/internal/blob,
// just enough surface for the blobalias fixtures.
package blob

// Blob mimics the two-buffer N-d array of the real runtime.
type Blob struct {
	data []float32
	diff []float32
}

// New creates a blob with the given element count.
func New(n int) *Blob {
	return &Blob{data: make([]float32, n), diff: make([]float32, n)}
}

// Reshape changes the shape, possibly reallocating the buffers.
func (b *Blob) Reshape(shape ...int) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if cap(b.data) < n {
		b.data = make([]float32, n)
		b.diff = make([]float32, n)
		return
	}
	b.data = b.data[:n]
	b.diff = b.diff[:n]
}

// ReshapeLike reshapes b to o's element count.
func (b *Blob) ReshapeLike(o *Blob) { b.Reshape(len(o.data)) }

// Data returns the value buffer.
func (b *Blob) Data() []float32 { return b.data }

// Diff returns the gradient buffer.
func (b *Blob) Diff() []float32 { return b.diff }

// Count returns the element count.
func (b *Blob) Count() int { return len(b.data) }
