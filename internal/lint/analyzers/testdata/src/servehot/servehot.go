// Package serve (fixture) exercises hotalloc's serving rule: Infer*
// methods on serve.replica run once per dispatched batch and Read*
// methods on serve.feeder once per staged sample, for the lifetime of
// the daemon, so allocation inside their loops is flagged exactly like
// a Forward pass — while methods outside that shape (other names, other
// receivers) stay exempt.
package serve

// replica mirrors internal/serve.replica structurally.
type replica struct {
	scores []float32
	out    [][]float32
}

// feeder mirrors internal/serve.feeder structurally.
type feeder struct {
	samples [][]float32
	log     []string
}

// Infer is the per-batch entry point: hot.
func (r *replica) Infer(reqs []int) {
	for range reqs {
		row := make([]float32, 10) // want `make in a loop of hot function Infer`
		r.out = append(r.out, row) // want `append in a loop of hot function Infer`
	}
}

// InferOne shares the Infer* prefix: also hot, closures included.
func (r *replica) InferOne(slot int) {
	for i := 0; i < slot; i++ {
		r.scores = append(r.scores, 0) // want `append in a loop of hot function InferOne`
	}
}

// Read stages one sample per call from the Data layer: hot.
func (f *feeder) Read(i int, in []float32) int {
	for j := range in {
		tmp := new(float32) // want `new in a loop of hot function Read`
		*tmp = f.samples[i][j]
		in[j] = *tmp
	}
	return 0
}

// Warm is not an Infer*/Read* method: its loops may allocate freely.
func (r *replica) Warm(n int) {
	for i := 0; i < n; i++ {
		r.out = append(r.out, make([]float32, 10))
	}
}

// logger is neither replica nor feeder: an Infer method on it is exempt.
type logger struct{ lines []string }

func (l *logger) Infer(n int) {
	for i := 0; i < n; i++ {
		l.lines = append(l.lines, "x")
	}
}
