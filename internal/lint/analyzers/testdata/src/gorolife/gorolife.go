// This fixture exercises the gorolife analyzer. The package is named
// serve because the analyzer scopes itself to the long-lived subsystems
// (transport, serve, dist) by package name.
package serve

import "sync"

type server struct {
	wg    sync.WaitGroup
	done  chan struct{}
	conns chan int
}

// loop is a worker body with no self-announcing join edge; spawning it
// is legal only behind an Add.
func (s *server) loop() {
	for range s.conns {
	}
}

func (s *server) handle(v int) { _ = v }

// batchLoop announces its own join edge: the first statement closes the
// done channel on exit, so Close can drain it.
func (s *server) batchLoop() {
	defer close(s.done)
	for range s.conns {
	}
}

// --- naked spawns ----------------------------------------------------

func (s *server) startBad() {
	go s.loop() // want `naked goroutine in package serve`
	go func() { // want `naked goroutine in package serve`
		s.handle(1)
	}()
}

// A spawn is only sanctioned by an Add immediately before it; an Add
// further up does not visibly tie this goroutine to the group.
func (s *server) startAddTooFar() {
	s.wg.Add(1)
	s.handle(0)
	go s.loop() // want `naked goroutine in package serve`
}

// --- the sanctioned idioms -------------------------------------------

// Add-before-spawn: the statement before the go ties it to a group.
func (s *server) startAddBefore() {
	s.wg.Add(1)
	go s.loop()
}

// Done-first: the spawned literal opens with defer Done.
func (s *server) startDeferDone() {
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.handle(2)
	}()
	go func() {
		defer s.wg.Done()
		s.handle(3)
	}()
}

// Close-first through a named method: the callee's declaration is
// resolved through the call graph and opens with defer close.
func (s *server) startLoopClose() {
	go s.batchLoop()
}

// The idioms apply per statement list: a case clause is its own list.
func (s *server) dispatch(v int) {
	switch v {
	case 1:
		s.wg.Add(1)
		go s.loop()
	default:
		go s.loop() // want `naked goroutine in package serve`
	}
}

// Fire-and-forget spawns must carry a waiver naming the drain path.
func (s *server) startWaived() {
	//dnnlint:ignore gorolife drained by the closeFlush handshake before Close returns
	go s.loop()
}

// --- heartbeat goroutines --------------------------------------------

// pingLoop is the failure-detector shape the elastic supervisor spawns:
// a ticker-driven sender that must be tied to the supervisor's
// WaitGroup like any other long-lived goroutine.
func (s *server) pingLoop() {
	for range s.conns {
		s.handle(0) // stands in for the periodic SendCtrl ping
	}
}

func (s *server) startHeartbeatBad() {
	go s.pingLoop() // want `naked goroutine in package serve`
}

// The sanctioned supervisor shape: every listener and the pinger are
// Add-ed before spawn so Close can wg.Wait them all out.
func (s *server) startHeartbeatGood(peers int) {
	for i := 0; i < peers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(1) // stands in for the per-peer RecvCtrl listener
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.pingLoop()
	}()
}
