// Package guard (fixture) exercises hotalloc's guard rule: Check*/scan*
// methods on guard.Monitor run once per training iteration from the
// solver's pre-update hook, so allocation inside their loops is flagged
// exactly like a Forward/Backward pass — and methods outside that shape
// (other names, other receivers) stay exempt.
package guard

// Monitor mirrors internal/guard.Monitor structurally.
type Monitor struct {
	sumsq  []float64
	cur    []float32
	report []string
}

// Check is the per-iteration entry point: hot.
func (m *Monitor) Check(iter int, loss float64) int {
	bad := 0
	for i := range m.cur {
		tmp := make([]float64, 1) // want `make in a loop of hot function Check`
		tmp[0] = float64(m.cur[i])
		if tmp[0] != tmp[0] {
			bad++
		}
	}
	return bad
}

// scanRange is a scan helper: hot, including closures in its loops.
func (m *Monitor) scanRange(lo, hi int) {
	for j := lo; j < hi; j++ {
		m.report = append(m.report, "x") // want `append in a loop of hot function scanRange`
	}
}

// Report is not a Check*/scan* method: its loops may allocate freely.
func (m *Monitor) Report() []string {
	var out []string
	for range m.sumsq {
		out = append(out, "line")
	}
	return out
}

// reporter is not a Monitor: a Check method on it is not guard-hot.
type reporter struct{ lines []int }

func (r *reporter) Check() {
	for i := 0; i < 3; i++ {
		r.lines = append(r.lines, i)
	}
}
