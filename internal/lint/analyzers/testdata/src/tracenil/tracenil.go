// Package tracenil exercises the tracenil analyzer's call-site rule:
// tracer handles must be tested with Enabled(), never compared to nil.
package tracenil

import "trace"

type net struct {
	tracer *trace.Tracer
	label  *string
}

// badComparisons test the handle against nil directly.
func badComparisons(n *net, tr *trace.Tracer) int {
	count := 0
	if tr != nil { // want `\*trace\.Tracer compared to nil: use the nil-safe idiom tr\.Enabled\(\)`
		count++
	}
	if n.tracer == nil { // want `\*trace\.Tracer compared to nil: use the nil-safe idiom !n\.tracer\.Enabled\(\)`
		count--
	}
	timed := n.label != nil || n.tracer != nil // want `\*trace\.Tracer compared to nil: use the nil-safe idiom n\.tracer\.Enabled\(\)`
	if timed {
		count++
	}
	return count
}

// goodEnabled uses the nil-safe idiom.
func goodEnabled(n *net, tr *trace.Tracer) {
	if tr.Enabled() {
		tr.Record(trace.Span{Name: "layer"})
	}
	if !n.tracer.Enabled() {
		return
	}
	n.tracer.Record(trace.Span{Name: "iter"})
}

// goodOtherNil compares a non-tracer pointer to nil: out of scope.
func goodOtherNil(n *net) bool {
	return n.label == nil
}
