// Package parbody exercises the parbody analyzer: writes to captured
// shared state inside worksharing closures, against the safe rank- and
// range-indexed idioms of the runtime.
package parbody

import "par"

// bad demonstrates the data-race shapes the analyzer must flag.
func bad(p *par.Pool, out []float32, m map[int]float32) {
	var sum float32
	count := 0
	var last float32
	p.For(len(out), func(lo, hi, rank int) {
		for i := lo; i < hi; i++ {
			sum = sum + out[i] // want `write to captured "sum" inside Pool\.For closure`
		}
		count++              // want `write to captured "count" inside Pool\.For closure`
		last = out[lo]       // want `write to captured "last" inside Pool\.For closure`
		m[0] = float32(rank) // want `write to captured "m\[\.\.\.\]" inside Pool\.For closure`
	})

	var scratch []float32
	p.ForTiles(len(out), 8, func(lo, hi, rank int) {
		scratch = append(scratch, out[lo]) // want `write to captured "scratch" inside Pool\.ForTiles closure`
	})

	p.ForDynamic(len(out), 4, func(lo, hi, rank int) {
		out[0] = 1 // want `write to captured "out\[\.\.\.\]" inside Pool\.ForDynamic closure`
	})

	type state struct{ n int }
	var shared state
	p.Region(func(rank int) {
		shared.n = rank // want `write to captured "shared\.n" inside Pool\.Region closure`
	})
	_ = sum + last
}

// badOrderedCompute shows that ForOrdered's parallel compute closure is
// checked even though its merge closure is exempt.
func badOrderedCompute(p *par.Pool, out []float32) {
	var total float32
	partial := make([]float32, p.Workers())
	p.ForOrdered(len(out),
		func(lo, hi, rank int) {
			total = out[lo] // want `write to captured "total" inside Pool\.ForOrdered closure`
			partial[rank] = out[lo]
		},
		func(rank int) {
			total += partial[rank] // merge runs sequentially in rank order: exempt
		})
	_ = total
}

// good demonstrates the privatization idioms that must NOT be flagged.
func good(p *par.Pool, in, out []float32) {
	// Writes steered by the iteration range are disjoint by construction.
	p.For(len(out), func(lo, hi, rank int) {
		for i := lo; i < hi; i++ {
			out[i] = in[i] * 2
		}
	})

	// Rank-indexed privatization: each rank owns its slot.
	partials := make([]float32, p.Workers())
	p.For(len(in), func(lo, hi, rank int) {
		var local float32 // closure-local accumulation is fine
		for i := lo; i < hi; i++ {
			local += in[i]
		}
		partials[rank] = local
	})

	// Indices derived from the range (lo+j) are schedule-derived.
	p.ForTiles(len(out), 8, func(lo, hi, rank int) {
		for j := 0; j+lo < hi; j++ {
			out[lo+j] = in[lo+j]
		}
	})

	// A pointer derived from a rank-indexed slot stays safe.
	p.Region(func(rank int) {
		slot := &partials[rank]
		*slot = 0
	})

	// The ordered merge is the sanctioned place to touch shared state.
	var sum float32
	p.Ordered(func(rank int) {
		sum += partials[rank]
	})
	_ = sum
}
