// Package hotalloc exercises the hotalloc analyzer: allocation and
// formatting inside the loops of hot (Forward*/Backward*/GEMM) functions.
package hotalloc

import "fmt"

type layer struct {
	scratch []float32
	names   []string
}

// ForwardRange is hot: allocations inside its loops are flagged.
func (l *layer) ForwardRange(lo, hi int, out []float32) {
	buf := make([]float32, 8) // setup before the loop: fine
	for i := lo; i < hi; i++ {
		tmp := make([]float32, 4) // want `make in a loop of hot function ForwardRange`
		out[i] = tmp[0] + buf[0]
	}
	for i := lo; i < hi; i++ {
		l.names = append(l.names, "x") // want `append in a loop of hot function ForwardRange`
		_ = i
	}
}

// BackwardRange is hot: fmt calls inside its loops are flagged, even
// inside nested closures (worksharing bodies).
func (l *layer) BackwardRange(lo, hi int, grad []float32) {
	for i := lo; i < hi; i++ {
		msg := fmt.Sprintf("grad[%d]", i) // want `fmt\.Sprintf in a loop of hot function BackwardRange`
		_ = msg
		func() {
			p := new(float32) // want `new in a loop of hot function BackwardRange`
			grad[i] += *p
		}()
	}
}

// gemmPack is hot by name (contains "gemm").
func gemmPack(a []float32) [][]float32 {
	var panels [][]float32
	for i := 0; i < len(a); i += 4 {
		panels = append(panels, a[i:i+4]) // want `append in a loop of hot function gemmPack`
	}
	return panels
}

// BackwardPrepare allocates once per pass with an explicit waiver.
func (l *layer) BackwardPrepare(n int) {
	for len(l.scratch) < n {
		//dnnlint:ignore hotalloc grows once to the high-water mark, then never again
		l.scratch = append(l.scratch, 0)
	}
}

// reshapeScratch is not a hot function: allocation in its loops is fine.
func reshapeScratch(shapes [][]int) [][]float32 {
	var bufs [][]float32
	for _, s := range shapes {
		n := 1
		for _, d := range s {
			n *= d
		}
		bufs = append(bufs, make([]float32, n))
	}
	return bufs
}
