// Package blobalias exercises the blobalias analyzer: Data()/Diff()
// slices retained across a Reshape of their source blob.
package blobalias

import "blob"

// layer carries a blob in a field, to exercise selector-chain receivers.
type layer struct {
	top *blob.Blob
}

// badRetained uses a stale alias after the blob was reshaped.
func badRetained(b *blob.Blob) float32 {
	d := b.Data()
	b.Reshape(16, 16)
	return d[0] // want `"d" was bound to b\.Data\(\) before b\.Reshape and used after it`
}

// badDiff does the same through the gradient buffer and a write.
func badDiff(b *blob.Blob) {
	g := b.Diff()
	b.Reshape(4)
	g[0] = 1 // want `"g" was bound to b\.Diff\(\) before b\.Reshape and used after it`
}

// badField tracks the alias through a field-selection receiver.
func badField(l *layer, o *blob.Blob) float32 {
	d := l.top.Data()
	l.top.ReshapeLike(o)
	return d[0] // want `"d" was bound to l\.top\.Data\(\) before l\.top\.Reshape and used after it`
}

// goodRefetch re-fetches the buffer after the reshape: the reaching
// binding postdates the reshape, so nothing is stale.
func goodRefetch(b *blob.Blob) float32 {
	d := b.Data()
	_ = d[0]
	b.Reshape(16, 16)
	d = b.Data()
	return d[0]
}

// goodOtherBlob reshapes a different blob: the alias stays valid.
func goodOtherBlob(b, o *blob.Blob) float32 {
	d := b.Data()
	o.Reshape(8)
	return d[0]
}

// goodUseBeforeReshape finishes with the alias before reshaping.
func goodUseBeforeReshape(b *blob.Blob) float32 {
	d := b.Data()
	v := d[0]
	b.Reshape(2, 2)
	return v
}
