// Package hotcall exercises hotalloc's interprocedural extension: the
// v1 engine only saw make/append/new/fmt literally inside the hot loop,
// so an allocation tucked into a helper passed clean. These must now
// flag through the call, at any summary depth, while waived helper
// sites stay exempt.
package hotcall

import "fmt"

// scratch allocates a fresh buffer per call.
func scratch(n int) []float32 {
	return make([]float32, n)
}

// deepScratch buries the allocation a second call down.
func deepScratch(n int) []float32 {
	return scratch(n)
}

// describe formats per call (fmt allocates and boxes its operands).
func describe(i int) string {
	return fmt.Sprintf("step %d", i)
}

// grow appends within capacity pre-sized by the caller; the waiver
// keeps the amortized append out of caller summaries.
func grow(buf []float32, v float32) []float32 {
	//dnnlint:ignore hotalloc amortized growth within caller-pre-sized capacity
	return append(buf, v)
}

// axpy is allocation-free: calling it in a hot loop is fine.
func axpy(dst, src []float32, a float32) {
	for i := range dst {
		dst[i] += a * src[i]
	}
}

func Forward(in, out []float32) {
	for i := range out {
		buf := scratch(len(in))     // want `call to scratch in a loop of hot function Forward allocates per iteration \(make at hotcall\.go`
		tmp := deepScratch(len(in)) // want `call to deepScratch in a loop of hot function Forward allocates per iteration .* 2 call\(s\) deep`
		_ = describe(i)             // want `call to describe in a loop of hot function Forward allocates per iteration \(fmt\.Sprintf`
		out[i] = buf[0] + tmp[0]
	}
}

func backwardPass(in, out []float32) {
	buf := make([]float32, len(in)) // hoisted: allocation outside the loop is fine
	for i := range out {
		axpy(out, in, 2)        // allocation-free helper: must not flag
		buf = grow(buf, in[i])  // waived amortized growth: must not flag
		out[i] = buf[i%len(in)] // arithmetic only
	}
}

// checkShapes panics on misuse; allocations on the panic path are cold
// even when reached through a helper call in a hot loop.
func checkShapes(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hotcall: mismatched shapes %d vs %d", len(a), len(b)))
	}
}

func gemmTile(a, b, c []float32) {
	for i := range c {
		checkShapes(a, b) // cold-path alloc under panic: must not flag
		c[i] = a[i] * b[i]
	}
}
