// Package transerr exercises the transerr analyzer: dropped transport
// errors (directly and through wrapper helpers, resolved via effect
// summaries) and == comparisons against the ErrTransient sentinel.
package transerr

import (
	"errors"

	"transport"
)

// --- dropped errors on direct Send/Recv calls -----------------------

func dropSend(c *transport.Conn, m transport.Msg) {
	c.Send(m) // want `error from transport\.Send is discarded`
}

func blankRecv(c *transport.Conn) transport.Msg {
	m, _ := c.Recv() // want `error from transport\.Recv is assigned to _`
	return m
}

func fireAndForget(c *transport.Conn, m transport.Msg) {
	go c.Send(m)    // want `error from transport\.Send is discarded by go`
	defer c.Send(m) // want `error from transport\.Send is discarded by defer`
}

// --- dropped errors through wrappers (interprocedural) --------------

// push forwards Send's error: its summary marks it a transport error
// source, so dropping push's error is as bad as dropping Send's.
func push(c *transport.Conn, m transport.Msg) error {
	return c.Send(m)
}

// relay is a second-level wrapper: the summary propagates through push.
func relay(c *transport.Conn, m transport.Msg) error {
	return push(c, m)
}

func dropWrapped(c *transport.Conn, m transport.Msg) {
	push(c, m)  // want `error from push \(which forwards a transport Send error\) is discarded`
	relay(c, m) // want `error from relay \(which forwards a transport Send error\) is discarded`
}

// swallow handles the error itself and returns none, so it is not an
// error source and callers may ignore it freely.
func swallow(c *transport.Conn, m transport.Msg) int {
	if err := c.Send(m); err != nil {
		return 1
	}
	return 0
}

func okToDrop(c *transport.Conn, m transport.Msg) {
	swallow(c, m) // ok: swallow has no error result
}

// --- the control plane is held to the same standard ------------------

func dropCtrl(c *transport.Conn, m transport.Msg) {
	c.SendCtrl(m) // want `error from transport\.SendCtrl is discarded`
}

func blankCtrl(c *transport.Conn) transport.Msg {
	m, _ := c.RecvCtrl() // want `error from transport\.RecvCtrl is assigned to _`
	return m
}

// pushCtrl forwards SendCtrl's error, so its summary makes it a
// transport error source like any data-plane wrapper.
func pushCtrl(c *transport.Conn, m transport.Msg) error {
	return c.SendCtrl(m)
}

func dropWrappedCtrl(c *transport.Conn, m transport.Msg) {
	pushCtrl(c, m) // want `error from pushCtrl \(which forwards a transport SendCtrl error\) is discarded`
}

// goodCtrlWaived is the sanctioned best-effort heartbeat shape: the
// waiver names why the loss is tolerable.
func goodCtrlWaived(c *transport.Conn) {
	//dnnlint:ignore transerr heartbeat loss is indistinguishable from peer death; the timeout handles both
	c.SendCtrl(transport.Msg{})
}

// --- sentinel comparison --------------------------------------------

func retryCompareEq(c *transport.Conn, m transport.Msg) error {
	err := c.Send(m)
	if err == transport.ErrTransient { // want `comparing against transport\.ErrTransient with ==`
		return c.Send(m)
	}
	return err
}

func retryCompareNeq(err error) bool {
	return err != transport.ErrTransient // want `comparing against transport\.ErrTransient with !=`
}

func peerDownCompare(err error) bool {
	return err == transport.ErrPeerDown // want `comparing against transport\.ErrPeerDown with ==`
}

// peerErr implements the errors.Is protocol; the == inside Is is the
// sanctioned comparison that makes errors.Is work in the first place.
type peerErr struct{ rank int }

func (e *peerErr) Error() string { return "peer down" }

func (e *peerErr) Is(target error) bool {
	return target == transport.ErrPeerDown // ok: errors.Is protocol method
}

// --- the sanctioned shapes ------------------------------------------

func good(c *transport.Conn, m transport.Msg) error {
	if err := c.Send(m); err != nil {
		if errors.Is(err, transport.ErrTransient) {
			return c.Send(m) // one bounded retry, error propagated
		}
		return err
	}
	_, err := c.Recv()
	return err
}

func goodPeerDown(c *transport.Conn, m transport.Msg) error {
	err := c.SendCtrl(m)
	if errors.Is(err, transport.ErrPeerDown) {
		return err // dead peer: surface it so the supervisor can fence
	}
	return err
}

// goodWaived shows the escape hatch for genuinely ignorable errors.
func goodWaived(c *transport.Conn) {
	//dnnlint:ignore transerr best-effort close notification; peer detects EOF anyway
	c.Send(transport.Msg{})
}

// --- codec call sites: compression wrappers around Send/Recv ---------

// sendEncoded is the compressed-wire idiom internal/dist uses: encode
// the payload, ship the frame. The codec call contributes no error, but
// the wrapper still forwards Send's — its summary must survive the
// intervening Encode call site.
func sendEncoded(c *transport.Conn, cod transport.Codec, m transport.Msg) error {
	m.Payload = cod.Encode(m.Payload)
	return c.Send(m)
}

// recvDecoded mirrors it on the receive path.
func recvDecoded(c *transport.Conn, cod transport.Codec) ([]float32, error) {
	m, err := c.Recv()
	if err != nil {
		return nil, err
	}
	return cod.Decode(m.Payload), nil
}

func dropEncodedSend(c *transport.Conn, cod transport.Codec, m transport.Msg) {
	sendEncoded(c, cod, m) // want `error from sendEncoded \(which forwards a transport Send error\) is discarded`
}

func dropDecodedRecv(c *transport.Conn, cod transport.Codec) {
	recvDecoded(c, cod) // want `error from recvDecoded \(which forwards a transport Recv error\) is discarded`
}

func okEncodedHandled(c *transport.Conn, cod transport.Codec, m transport.Msg) int {
	if err := sendEncoded(c, cod, m); err != nil {
		return 1
	}
	return 0
}
