// This fixture exercises the chanmisuse analyzer. The package is named
// dist because the analyzer scopes itself to the lock+channel
// subsystems (transport, serve, dist) by package name.
package dist

import "sync"

type inbox struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	queue chan int
	acks  chan int
	lost  chan int
	free  chan int
}

// --- blocking channel ops under a held mutex --------------------------

func (b *inbox) postLocked(v int) {
	b.mu.Lock()
	b.queue <- v // want `blocking send on b\.queue while b\.mu is held`
	b.mu.Unlock()
}

func (b *inbox) waitLocked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.acks // want `blocking receive on b\.acks while b\.mu is held`
}

func (b *inbox) selectLocked(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.acks <- v: // want `blocking send on b\.acks while b\.mu is held`
	}
}

// --- the sanctioned shapes --------------------------------------------

// Unlock before the blocking op.
func (b *inbox) postUnlocked(v int) {
	b.mu.Lock()
	b.mu.Unlock()
	b.queue <- v
}

// A select with a default clause never blocks (serve.submit's shape).
func (b *inbox) tryPost(v int) bool {
	b.rw.RLock()
	defer b.rw.RUnlock()
	select {
	case b.queue <- v:
		return true
	default:
		return false
	}
}

// close never blocks, so closing under the lock is fine (serve.Close's
// shape); it also counts as the drain edge for queue.
func (b *inbox) shutdown() {
	b.mu.Lock()
	defer b.mu.Unlock()
	close(b.queue)
}

// A lock taken inside a branch does not leak into its siblings.
func (b *inbox) branchLocked(v int, flush bool) {
	if flush {
		b.mu.Lock()
		b.mu.Unlock()
	}
	b.queue <- v
}

// --- sends nothing in the package drains ------------------------------

func (b *inbox) recordLoss(v int) {
	b.lost <- v // want `send on channel field lost but no receive, range, close or select case in this package drains it`
}

// free is drained by the range below, so refilling it is fine.
func (b *inbox) refill(v int) {
	b.free <- v
}

func (b *inbox) drainFree() {
	for v := range b.free {
		_ = v
	}
}
