// Package phasespan exercises the phasespan analyzer: numeric-literal
// phases at span construction sites, string comparisons against names
// outside the shared vocabulary, and unbalanced Begin/End pairs.
package phasespan

import "trace"

// --- literal phases ---------------------------------------------------

func badLiterals(tr *trace.Tracer) {
	tr.Begin("fwd", 3) // want `phase passed to Begin as the literal 3`
	tr.End()
	tr.Begin("bwd", trace.Phase(2)) // want `phase passed to Begin as the literal 2`
	tr.End()
	tr.SetScope("conv1", 1) // want `phase passed to SetScope as the literal 1`
}

func badSpanLiteral(tr *trace.Tracer) {
	tr.Record(trace.Span{Name: "x", Phase: 5}) // want `Phase field of Span literal set to the literal 5`
}

func goodConstants(tr *trace.Tracer) {
	tr.Begin("fwd", trace.PhaseForward)
	tr.End()
	tr.SetScope("conv1", trace.PhaseBackward)
	tr.Record(trace.Span{Name: "x", Phase: trace.PhaseReduce})
}

// A phase that arrives as a value is the caller's concern, not a
// literal at this site.
func goodForwarded(tr *trace.Tracer, p trace.Phase) {
	tr.Begin("fwd", p)
	tr.End()
}

// --- vocabulary for phase-name strings --------------------------------

type event struct{ Cat string }

func badCat(ev event) bool {
	return ev.Cat == "fordward" // want `string "fordward" compared against a phase name but is not in the shared phase vocabulary`
}

func badString(p trace.Phase) bool {
	return p.String() != "backwards" // want `string "backwards" compared against a phase name`
}

func goodCat(ev event, p trace.Phase) bool {
	return ev.Cat == "forward" || p.String() == "backward"
}

// Comparing two non-literal strings is out of scope.
func goodDynamic(ev event, name string) bool {
	return ev.Cat == name
}

// --- Begin/End balance ------------------------------------------------

func badOpenSpan(tr *trace.Tracer, n int) {
	tr.Begin("iteration", trace.PhaseIteration) // want `unbalanced trace spans: 1 Begin vs 0 End`
	if n > 0 {
		return
	}
}

func goodDeferredEnd(tr *trace.Tracer) {
	tr.Begin("iteration", trace.PhaseIteration)
	defer tr.End()
}

func goodPaired(tr *trace.Tracer) {
	tr.Begin("iteration", trace.PhaseIteration)
	tr.Begin("fwd", trace.PhaseForward)
	tr.End()
	tr.End()
}

// --- comm sub-phase spans (dist codec/ring instrumentation) -----------

// The dist node records its exchange sub-phases — scatter, relay, fold,
// gather, and under a lossy wire format encode/decode — as named spans
// under PhaseComm. The names are span labels, not phases: only the
// Phase field is held to the vocabulary.
func goodCommSpans(tr *trace.Tracer) {
	tr.Record(trace.Span{Name: "encode", Phase: trace.PhaseComm})
	tr.Record(trace.Span{Name: "decode", Phase: trace.PhaseComm})
	tr.Record(trace.Span{Name: "relay", Phase: trace.PhaseComm})
}

func badCommSpanLiteral(tr *trace.Tracer) {
	tr.Record(trace.Span{Name: "encode", Phase: 8}) // want `Phase field of Span literal set to the literal 8`
}
