// Package interproc exercises parbody's interprocedural extension: the
// v1 engine stopped at the closure boundary, so every violation in this
// file passed clean — each write here hides inside a called helper, one
// or two calls below the worksharing closure. The fixture pins the v2
// regression: these must flag, and the steered helpers must not.
package interproc

import "par"

// fill writes every element of dst: unsteered, so calling it on a
// captured slice races across ranks.
func fill(dst []float32, v float32) {
	for i := range dst {
		dst[i] = v
	}
}

// deepFill buries fill's write a second call down.
func deepFill(dst []float32, v float32) {
	fill(dst, v)
}

// fillRange is the sanctioned shape: the written range is steered by
// its integer parameters, so disjoint [lo, hi) arguments stay race-free.
func fillRange(dst []float32, lo, hi int, v float32) {
	for i := lo; i < hi; i++ {
		dst[i] = v
	}
}

// acc is a receiver-based accumulator.
type acc struct{ vals []float32 }

// addAll writes the receiver's backing store unsteered.
func (a *acc) addAll(v float32) {
	for i := range a.vals {
		a.vals[i] += v
	}
}

// addRange steers the receiver write by its parameters.
func (a *acc) addRange(lo, hi int, v float32) {
	for i := lo; i < hi; i++ {
		a.vals[i] += v
	}
}

var seen int

// mark writes package-level state.
func mark() {
	seen++
}

func bad(p *par.Pool, out []float32, a *acc) {
	p.For(len(out), func(lo, hi, rank int) {
		fill(out, 1)     // want `call to fill inside Pool\.For closure writes captured "out"`
		deepFill(out, 1) // want `call to deepFill inside Pool\.For closure writes captured "out" .* 2 call\(s\) below the closure`
		a.addAll(1)      // want `call to addAll inside Pool\.For closure writes its captured receiver "a"`
		mark()           // want `call to mark inside Pool\.For closure writes package-level state`
	})

	// Steered helpers called with constants sever the steering chain:
	// every rank writes the same fixed range.
	p.ForTiles(len(out), 8, func(lo, hi, rank int) {
		fillRange(out, 0, 4, 1) // want `call to fillRange inside Pool\.ForTiles closure writes captured "out"`
	})
}

func good(p *par.Pool, out []float32, accs []acc) {
	p.For(len(out), func(lo, hi, rank int) {
		// The helper's write range is steered by schedule-derived args.
		fillRange(out, lo, hi, 1)
		// A slice view with schedule-derived bounds is a rank-owned
		// window: the unsteered helper only touches this rank's slice.
		fill(out[lo:hi], 1)
		// Receiver writes steered by the closure's range are disjoint.
		accs[0].addRange(lo, hi, 1)
		// A rank-owned receiver may do unsteered writes: the target is
		// private to this rank.
		accs[rank].addAll(1)
	})

	// Locals derived from the schedule keep helper targets private.
	p.Region(func(rank int) {
		mine := accs[rank]
		mine.addAll(1)
	})
}
