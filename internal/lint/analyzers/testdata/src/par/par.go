// Package par is a miniature stand-in for coarsegrain/internal/par: the
// analyzers match the runtime's API structurally (method name + receiver
// type Pool + package name par), so this skeleton is all fixtures need.
package par

// Pool mimics the worker team of the real runtime.
type Pool struct{ workers int }

// NewPool creates a team of n workers.
func NewPool(n int) *Pool { return &Pool{workers: n} }

// Workers returns the team size.
func (p *Pool) Workers() int { return p.workers }

// Chunk mirrors the static-schedule chunk computation.
func Chunk(n, workers, rank int) (lo, hi int) {
	chunk := (n + workers - 1) / workers
	lo = rank * chunk
	hi = lo + chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// For runs body over [0, n) with static scheduling.
func (p *Pool) For(n int, body func(lo, hi, rank int)) {
	body(0, n, 0)
}

// ForTiles runs body over tile-aligned ranges.
func (p *Pool) ForTiles(n, tile int, body func(lo, hi, rank int)) {
	body(0, n, 0)
}

// ForDynamic runs body with dynamic chunk claiming.
func (p *Pool) ForDynamic(n, chunk int, body func(lo, hi, rank int)) {
	body(0, n, 0)
}

// Region runs body once per rank.
func (p *Pool) Region(body func(rank int)) {
	for r := 0; r < p.workers; r++ {
		body(r)
	}
}

// Ordered runs body for every rank in increasing order.
func (p *Pool) Ordered(body func(rank int)) {
	for r := 0; r < p.workers; r++ {
		body(r)
	}
}

// ForOrdered is a parallel loop followed by an ordered merge.
func (p *Pool) ForOrdered(n int, compute func(lo, hi, rank int), merge func(rank int)) {
	p.For(n, compute)
	p.Ordered(merge)
}

// OrderedSlices folds ranks 0..P-1 in rank order over per-worker element
// slices — the sanctioned element-parallel ordered reduction.
func (p *Pool) OrderedSlices(n int, merge func(lo, hi, rank int)) {
	for w := 0; w < p.workers; w++ {
		lo, hi := Chunk(n, p.workers, w)
		for r := 0; r < p.workers; r++ {
			merge(lo, hi, r)
		}
	}
}
