package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"coarsegrain/internal/lint"
)

// HotAlloc polices the hot path: the Forward*/Backward* methods and the
// GEMM kernels run once per layer per pass per iteration — thousands of
// times per second — and the coarse engine's whole design (arenas,
// reshape-in-place blobs, packed GEMM scratch) exists to keep them
// allocation-free. An allocation inside one of their loops turns into
// GC pressure scaling with batch size × iterations, and fmt calls
// additionally box every operand. The analyzer flags make/append/new and
// fmt.* calls inside any loop of a hot function (closures included, so
// worksharing bodies are covered).
//
// The training health monitor's scan path is hot for the same reason:
// guard.Monitor's Check/scan methods run from the solver's pre-update
// hook once per iteration, so methods named Check*/scan* on a type named
// Monitor in a package named guard are held to the same standard
// (identified structurally, like the other analyzers, so the fixture
// package stands in for the real internal/guard).
//
// The serving request path is the third hot surface: serve.replica's
// Infer* methods and serve.feeder's Read* methods run once per dispatched
// batch (respectively once per staged sample) for the lifetime of the
// daemon, and the server's zero-alloc steady-state contract (SERVING.md)
// depends on them staying allocation-free after warm-up.
//
// Deliberate allocations (e.g. one-time growth amortized across batches)
// are waived with `//dnnlint:ignore hotalloc <why>`.
var HotAlloc = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "flags make/append/new and fmt.* calls inside loops of Forward*/Backward*/GEMM " +
		"functions, guard.Monitor Check*/scan* methods, and serve.replica Infer* / " +
		"serve.feeder Read* methods (allocation in the per-iteration hot path)",
	Run: runHotAlloc,
}

// hotFunc reports whether a function name marks per-iteration hot code.
// Test entry points are exempt even when their names mention a kernel
// (TestGemmAgainstNaive builds inputs in loops by design).
func hotFunc(name string) bool {
	for _, p := range []string{"Test", "Benchmark", "Fuzz", "Example"} {
		if strings.HasPrefix(name, p) {
			return false
		}
	}
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "forward") ||
		strings.HasPrefix(lower, "backward") ||
		strings.Contains(lower, "gemm")
}

// isGuardScan reports whether fd is a per-iteration guard scan: a method
// named Check* or scan* on (a pointer to) a type named Monitor in a
// package named guard. These run from the solver's pre-update hook every
// iteration, so their loops are as hot as a Backward pass.
func isGuardScan(pass *lint.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	lower := strings.ToLower(fd.Name.Name)
	if !strings.HasPrefix(lower, "check") && !strings.HasPrefix(lower, "scan") {
		return false
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), "guard", "Monitor")
}

// isServeHot reports whether fd is on the serving request path: an
// Infer* method on serve.replica (runs once per dispatched batch) or a
// Read* method on serve.feeder (runs once per staged sample via the
// Data layer). These execute for every request for the lifetime of the
// daemon, so their loops are held to the same zero-alloc standard as a
// Forward pass.
func isServeHot(pass *lint.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	name := fd.Name.Name
	wantType := ""
	switch {
	case strings.HasPrefix(name, "Infer"):
		wantType = "replica"
	case strings.HasPrefix(name, "Read"):
		wantType = "feeder"
	default:
		return false
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), "serve", wantType)
}

func runHotAlloc(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hotFunc(fd.Name.Name) && !isGuardScan(pass, fd) && !isServeHot(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				flagAllocs(pass, fd.Name.Name, body)
				return true
			})
		}
	}
}

// flagAllocs reports allocating calls under body, stopping at nested
// loops: the caller's walk visits those separately, so each call is
// reported exactly once, attributed to its innermost enclosing loop.
func flagAllocs(pass *lint.Pass, fn string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Stop at nested loops: the outer walk visits them separately.
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "panic":
					// Everything under panic() is a cold failure path:
					// the allocation happens once, on the way down.
					return false
				case "make", "append", "new":
					pass.Reportf(call.Pos(),
						"%s in a loop of hot function %s allocates per iteration: "+
							"hoist the buffer out of the loop (or into the engine arena)",
						b.Name(), fn)
				}
				return true
			}
		}
		callee := calleeOf(pass.Info, call)
		if callee == nil {
			return true
		}
		if callee.Pkg() != nil && callee.Pkg().Name() == "fmt" {
			pass.Reportf(call.Pos(),
				"fmt.%s in a loop of hot function %s allocates and boxes every operand per iteration: "+
					"move diagnostics out of the hot path",
				callee.Name(), fn)
			return true
		}
		// The engine arena is the sanctioned amortized allocator — the
		// fix this analyzer recommends — so calls into it are exempt.
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil &&
			isNamed(sig.Recv().Type(), "core", "arena") {
			return true
		}
		// v2: see through the call — a helper whose effect summary
		// allocates (make/append/new/fmt anywhere within the summary
		// depth, waived sites excluded) still allocates per iteration.
		if s := pass.Prog.Summary(callee); s != nil && s.Alloc.Found {
			site := pass.Fset.Position(s.Alloc.Site)
			pass.Reportf(call.Pos(),
				"call to %s in a loop of hot function %s allocates per iteration "+
					"(%s at %s:%d, %d call(s) deep): hoist the allocation out of the hot path "+
					"or waive the site with a justification",
				callee.Name(), fn, s.Alloc.What,
				filepath.Base(site.Filename), site.Line, s.Alloc.Depth+1)
		}
		return true
	})
}
