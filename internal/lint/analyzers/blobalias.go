package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"coarsegrain/internal/lint"
)

// BlobAlias enforces the buffer-alias discipline of internal/blob: the
// slices returned by Blob.Data() and Blob.Diff() alias the blob's backing
// store only until the next Reshape/ReshapeLike, which may reallocate the
// store when it grows. A slice taken before a Reshape and used after it
// silently points at the *old* buffer — reads see stale values and writes
// vanish, with no panic to betray the bug. The analyzer tracks, within
// each function, variables bound to Data()/Diff() results and flags uses
// that occur after a Reshape of the source blob without re-fetching.
//
// The tracking is flow-insensitive (source order approximates execution
// order), which matches how reshape-then-use bugs actually read in this
// codebase.
var BlobAlias = &lint.Analyzer{
	Name: "blobalias",
	Doc: "flags blob.Data()/Diff() slices retained across a Reshape of their source blob " +
		"(Reshape may reallocate, silently detaching the alias)",
	Run: runBlobAlias,
}

// aliasBind records `v := b.Data()` — v aliases blob b's buffer.
type aliasBind struct {
	pos    token.Pos
	blob   string // stable key of the source blob expression
	method string // Data or Diff
}

func runBlobAlias(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBlobAliases(pass, fd.Body)
		}
	}
}

func checkBlobAliases(pass *lint.Pass, body *ast.BlockStmt) {
	// assigns: every assignment position per variable object (to find the
	// binding that reaches a use); binds: alias bindings per variable;
	// reshapes: Reshape call positions per blob key; uses: identifier uses.
	assigns := map[types.Object][]token.Pos{}
	binds := map[types.Object][]aliasBind{}
	reshapes := map[string][]token.Pos{}
	type use struct {
		id  *ast.Ident
		obj types.Object
	}
	var uses []use
	// LHS identifiers of plain assignments re-bind the variable rather
	// than read the aliased slice; they must not count as uses.
	lhsIdent := map[*ast.Ident]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					lhsIdent[id] = true
					obj := objectOf(pass.Info, id)
					if obj == nil {
						continue
					}
					assigns[obj] = append(assigns[obj], id.Pos())
					if recv, method, ok := blobBufferCall(pass.Info, st.Rhs[i]); ok {
						if key, ok := exprKey(pass.Info, recv); ok {
							binds[obj] = append(binds[obj], aliasBind{pos: id.Pos(), blob: key, method: method})
						}
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeOf(pass.Info, st)
			if fn != nil && (fn.Name() == "Reshape" || fn.Name() == "ReshapeLike") &&
				isMethodOn(fn, "blob", "Blob", fn.Name()) {
				if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok {
					if key, ok := exprKey(pass.Info, sel.X); ok {
						reshapes[key] = append(reshapes[key], st.Pos())
					}
				}
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[st]; obj != nil && !lhsIdent[st] {
				uses = append(uses, use{id: st, obj: obj})
			}
		}
		return true
	})

	for key := range reshapes {
		sort.Slice(reshapes[key], func(i, j int) bool { return reshapes[key][i] < reshapes[key][j] })
	}

	// A use of v at U is stale when the latest assignment to v before U is
	// an alias binding to blob b, and b was reshaped between that binding
	// and U. Report each (variable, reshape) pair once.
	reported := map[types.Object]map[token.Pos]bool{}
	for _, u := range uses {
		bindList := binds[u.obj]
		if len(bindList) == 0 {
			continue
		}
		var latest token.Pos
		for _, p := range assigns[u.obj] {
			if p < u.id.Pos() && p > latest {
				latest = p
			}
		}
		var bind *aliasBind
		for i := range bindList {
			if bindList[i].pos == latest {
				bind = &bindList[i]
				break
			}
		}
		if bind == nil {
			continue // reaching assignment re-bound v to something else
		}
		for _, r := range reshapes[bind.blob] {
			if r > bind.pos && r < u.id.Pos() {
				if reported[u.obj] == nil {
					reported[u.obj] = map[token.Pos]bool{}
				}
				if reported[u.obj][r] {
					break
				}
				reported[u.obj][r] = true
				pass.Reportf(u.id.Pos(),
					"%q was bound to %s.%s() before %s.Reshape and used after it: "+
						"Reshape may reallocate the backing buffer, leaving this slice aliased to the old one — "+
						"re-fetch %s() after the Reshape",
					u.id.Name, bind.blob, bind.method, bind.blob, bind.method)
				break
			}
		}
	}
}

// blobBufferCall recognizes `expr` as a call to (*blob.Blob).Data or
// .Diff and returns the receiver expression and method name.
func blobBufferCall(info *types.Info, expr ast.Expr) (recv ast.Expr, method string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	fn := calleeOf(info, call)
	if fn == nil || (fn.Name() != "Data" && fn.Name() != "Diff") ||
		!isMethodOn(fn, "blob", "Blob", fn.Name()) {
		return nil, "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

// exprKey derives a stable identity for a blob-valued receiver: a chain
// of identifiers and field selections (b, l.top, s.net.blob). Receivers
// with calls or index expressions have no stable identity and are not
// tracked.
func exprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if objectOf(info, e) == nil {
			return "", false
		}
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return exprKey(info, e.X)
	}
	return "", false
}
