package analyzers

import (
	"testing"

	"coarsegrain/internal/lint"
)

// Each analyzer is pinned to its fixture package: the positive `// want`
// expectations fail the test if the detection logic is disabled, the
// negative sections fail it if the analyzer over-reports the sanctioned
// idioms (rank-indexed writes, ordered merges, nil-guarded methods).

func TestParbody(t *testing.T) {
	lint.Fixture(t, Parbody, "parbody")
}

func TestOrderedReduce(t *testing.T) {
	lint.Fixture(t, OrderedReduce, "orderedreduce")
}

func TestBlobAlias(t *testing.T) {
	lint.Fixture(t, BlobAlias, "blobalias")
}

func TestParbodyInterprocedural(t *testing.T) {
	lint.Fixture(t, Parbody, "interproc")
}

func TestHotAlloc(t *testing.T) {
	lint.Fixture(t, HotAlloc, "hotalloc")
}

func TestHotAllocInterprocedural(t *testing.T) {
	lint.Fixture(t, HotAlloc, "hotcall")
}

func TestHotAllocGuardScans(t *testing.T) {
	lint.Fixture(t, HotAlloc, "guardhot")
}

func TestHotAllocServePath(t *testing.T) {
	lint.Fixture(t, HotAlloc, "servehot")
}

func TestTraceNilCallSites(t *testing.T) {
	lint.Fixture(t, TraceNil, "tracenil")
}

func TestTraceNilDefiningPackage(t *testing.T) {
	lint.Fixture(t, TraceNil, "tracedef")
}

func TestTransErr(t *testing.T) {
	lint.Fixture(t, TransErr, "transerr")
}

func TestGoroLife(t *testing.T) {
	lint.Fixture(t, GoroLife, "gorolife")
}

func TestPhaseSpan(t *testing.T) {
	lint.Fixture(t, PhaseSpan, "phasespan")
}

func TestChanMisuse(t *testing.T) {
	lint.Fixture(t, ChanMisuse, "chanmisuse")
}

func TestAllIsComplete(t *testing.T) {
	want := map[string]bool{
		"parbody": true, "orderedreduce": true, "blobalias": true,
		"hotalloc": true, "tracenil": true, "transerr": true,
		"gorolife": true, "phasespan": true, "chanmisuse": true,
	}
	got := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if got[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		got[a.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("All() is missing analyzer %q", name)
		}
	}
	for name := range got {
		if !want[name] {
			t.Errorf("All() has unexpected analyzer %q (update this test and LINTING.md)", name)
		}
	}
}
