package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"

	"coarsegrain/internal/lint"
)

// Parbody enforces the worksharing privatization contract of internal/par:
// a closure handed to Pool.For / ForTiles / ForDynamic / ForOrdered /
// Region runs concurrently on every rank, so the only captured memory it
// may write is memory partitioned by the schedule — an element indexed by
// the closure's rank or by an index derived from its [lo, hi) range.
// Any other write is executed by all ranks against the same location:
// a data race, and the exact shape that destroys the paper's convergence
// invariance (parallel training bit-identical to sequential).
//
// Since v2 the check is interprocedural: a call inside the closure is
// looked up in the Program's effect summaries (lint.Summary), so a
// helper that writes a captured argument, a captured receiver or
// package-level state is flagged even when the write sits several calls
// below the closure. A callee write that is itself steered by integer
// parameters (blob.AccumulateDiffRange's [lo, hi) range) stays legal
// when the call site passes schedule-derived values for them.
//
// Methods on trace.Tracer are exempt: the tracer is rank-sharded by
// construction (one shard per worker, Record writes only the caller's
// shard), which the summary's root analysis cannot see.
var Parbody = &lint.Analyzer{
	Name: "parbody",
	Doc: "flags writes to captured shared variables inside par.Pool worksharing closures " +
		"that are not steered by the worker's rank or iteration range, including writes " +
		"performed by called helpers (via effect summaries)",
	Run: runParbody,
}

func runParbody(pass *lint.Pass) {
	forEachPoolClosure(pass, func(c *poolClosure) {
		for _, w := range c.writesToShared() {
			pass.Reportf(w.pos,
				"write to captured %q inside Pool.%s closure is not indexed by the worker's rank or [lo,hi) range: "+
					"every rank hits the same location (data race; breaks convergence invariance) — "+
					"privatize per rank and merge with Pool.Ordered",
				exprString(pass.Fset, w.lhs), c.method)
		}
		reportSharedEffectCalls(pass, c)
	})
}

// reportSharedEffectCalls flags calls inside a worksharing closure whose
// callee — per its effect summary — writes captured memory or package
// state without the call site keeping the write schedule-steered.
func reportSharedEffectCalls(pass *lint.Pass, c *poolClosure) {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fi := pass.Prog.CalleeOf(pass.Info, call)
		if fi == nil || isTracerMethod(fi.Fn) {
			return true
		}
		s := pass.Prog.Summary(fi.Fn)
		if s == nil {
			return true
		}
		// Does any argument carry a schedule-derived value? If so, the
		// callee's parameter-steered writes stay partitioned per rank.
		argsSteer := false
		for _, a := range call.Args {
			if c.mentionsSafe(a) {
				argsSteer = true
				break
			}
		}
		report := func(eff lint.Effect, target string) {
			site := pass.Fset.Position(eff.Site)
			pass.Reportf(call.Pos(),
				"call to %s inside Pool.%s closure writes %s without rank/range steering "+
					"(%s at %s:%d, %d call(s) below the closure): every rank hits the same location "+
					"(data race; breaks convergence invariance) — pass a schedule-derived index or privatize per rank",
				fi.Fn.Name(), c.method, target,
				eff.What, filepath.Base(site.Filename), site.Line, eff.Depth+1)
		}
		sig := fi.Fn.Type().(*types.Signature)
		np := sig.Params().Len()
		for i, arg := range call.Args {
			pi := i
			if sig.Variadic() && pi >= np-1 {
				pi = np - 1
			}
			if pi >= len(s.Params) {
				break
			}
			eff := s.Params[pi]
			if !eff.Found {
				continue
			}
			root, safeIndexed := c.unwrapTarget(arg)
			if root == nil {
				continue
			}
			obj := objectOf(c.info, root)
			if obj == nil || !c.capturedBy(obj) || c.safe[obj] {
				continue
			}
			if safeIndexed || (eff.Steered && argsSteer) {
				continue // a rank-owned view, or a range the caller partitions
			}
			report(eff, fmt.Sprintf("captured %q through its parameter", exprString(pass.Fset, arg)))
		}
		if s.Recv.Found {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				root, safeIndexed := c.unwrapTarget(sel.X)
				if root != nil {
					obj := objectOf(c.info, root)
					if obj != nil && c.capturedBy(obj) && !c.safe[obj] &&
						!safeIndexed && !(s.Recv.Steered && argsSteer) {
						report(s.Recv, fmt.Sprintf("its captured receiver %q", exprString(pass.Fset, sel.X)))
					}
				}
			}
		}
		if s.Global.Found && !(s.Global.Steered && argsSteer) {
			report(s.Global, fmt.Sprintf("package-level state (%s)", s.Global.What))
		}
		return true
	})
}

// isTracerMethod reports whether fn is a method on trace.Tracer, whose
// rank-sharded single-writer discipline the summaries cannot express.
func isTracerMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isNamed(sig.Recv().Type(), "trace", "Tracer")
}
