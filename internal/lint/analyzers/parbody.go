package analyzers

import (
	"coarsegrain/internal/lint"
)

// Parbody enforces the worksharing privatization contract of internal/par:
// a closure handed to Pool.For / ForTiles / ForDynamic / ForOrdered /
// Region runs concurrently on every rank, so the only captured memory it
// may write is memory partitioned by the schedule — an element indexed by
// the closure's rank or by an index derived from its [lo, hi) range.
// Any other write is executed by all ranks against the same location:
// a data race, and the exact shape that destroys the paper's convergence
// invariance (parallel training bit-identical to sequential).
var Parbody = &lint.Analyzer{
	Name: "parbody",
	Doc: "flags writes to captured shared variables inside par.Pool worksharing closures " +
		"that are not steered by the worker's rank or iteration range",
	Run: runParbody,
}

func runParbody(pass *lint.Pass) {
	forEachPoolClosure(pass, func(c *poolClosure) {
		for _, w := range c.writesToShared() {
			pass.Reportf(w.pos,
				"write to captured %q inside Pool.%s closure is not indexed by the worker's rank or [lo,hi) range: "+
					"every rank hits the same location (data race; breaks convergence invariance) — "+
					"privatize per rank and merge with Pool.Ordered",
				exprString(pass.Fset, w.lhs), c.method)
		}
	})
}
