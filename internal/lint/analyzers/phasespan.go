package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"coarsegrain/internal/lint"
	"coarsegrain/internal/trace"
)

// PhaseSpan enforces the trace phase vocabulary statically. The
// vocabulary is a single table (trace.PhaseNames) consumed by
// Phase.String, the Chrome-trace validator and the timeline UI; a span
// tagged outside it renders as an unlabeled grey block and fails the CI
// trace smoke — but only at runtime, only on the code path the smoke
// happens to execute. This analyzer moves the check to every span
// construction site, and additionally keeps Begin/End spans balanced so
// the driver-side span stack cannot drift open.
//
// Flagged shapes:
//   - a numeric literal (raw or via a Phase(N) conversion) used where a
//     trace.Phase is expected: Begin/SetScope arguments and the Phase
//     field of Span composite literals — use the named constants;
//   - a string literal compared against a phase name (a .Cat field or a
//     Phase.String() call) that is not in the shared vocabulary;
//   - a statement list whose direct Begin calls on a Tracer outnumber
//     its End calls or vice versa (defers count as the list they are
//     written in).
//
// The vocabulary itself is imported from the real internal/trace, so a
// phase added there is accepted here with no analyzer change.
var PhaseSpan = &lint.Analyzer{
	Name: "phasespan",
	Doc: "flags trace phases written as numeric literals instead of named constants, " +
		"string comparisons against names outside the shared phase vocabulary, and " +
		"unbalanced Begin/End pairs in a statement list",
	Run: runPhaseSpan,
}

func runPhaseSpan(pass *lint.Pass) {
	for _, f := range prodFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkPhaseArgs(pass, x)
			case *ast.CompositeLit:
				checkSpanLiteral(pass, x)
			case *ast.BinaryExpr:
				checkPhaseNameCompare(pass, x)
			case *ast.BlockStmt:
				checkBeginEndBalance(pass, x.List)
			case *ast.CaseClause:
				checkBeginEndBalance(pass, x.Body)
			case *ast.CommClause:
				checkBeginEndBalance(pass, x.Body)
			}
			return true
		})
	}
}

// isPhaseType reports whether t is (a pointer/alias to) the Phase type
// of a package named trace — matched structurally so fixture stand-ins
// exercise the same rule as the real package.
func isPhaseType(t types.Type) bool {
	return isNamed(t, "trace", "Phase")
}

// phaseLiteral returns the offending literal when e supplies a phase as
// a bare number: an untyped constant (Begin("x", 3)) or an explicit
// Phase(3) conversion. Named constants resolve through idents and
// selectors, which are not literals, so they pass.
func phaseLiteral(e ast.Expr) *ast.BasicLit {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return x
	case *ast.CallExpr:
		// Phase(3) / trace.Phase(3): a conversion wrapping a literal.
		if len(x.Args) != 1 {
			return nil
		}
		var name string
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name != "Phase" {
			return nil
		}
		if lit, ok := ast.Unparen(x.Args[0]).(*ast.BasicLit); ok {
			return lit
		}
	}
	return nil
}

// checkPhaseArgs flags numeric-literal phases at call sites whose
// parameter type is trace.Phase (Begin, SetScope, and any future API
// with a Phase parameter).
func checkPhaseArgs(pass *lint.Pass, call *ast.CallExpr) {
	fn := calleeOf(pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np || !isPhaseType(sig.Params().At(pi).Type()) {
			continue
		}
		if lit := phaseLiteral(arg); lit != nil {
			pass.Reportf(lit.Pos(),
				"phase passed to %s as the literal %s: literals bypass the shared phase "+
					"vocabulary and render as unlabeled spans — use a named trace.Phase constant",
				fn.Name(), lit.Value)
		}
	}
}

// checkSpanLiteral flags numeric-literal Phase fields in composite
// literals of a type from a package named trace (Span and friends).
func checkSpanLiteral(pass *lint.Pass, cl *ast.CompositeLit) {
	t := pass.TypeOf(cl)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "trace" {
		return
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Phase" {
			continue
		}
		if lit := phaseLiteral(kv.Value); lit != nil {
			pass.Reportf(lit.Pos(),
				"Phase field of %s literal set to the literal %s: literals bypass the shared "+
					"phase vocabulary and render as unlabeled spans — use a named trace.Phase constant",
				named.Obj().Name(), lit.Value)
		}
	}
}

// checkPhaseNameCompare flags ==/!= between a string literal and a
// phase-name expression (a selector ending in .Cat, or a String() call
// on a trace.Phase) when the literal is not in the shared vocabulary.
func checkPhaseNameCompare(pass *lint.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	lit, other := ast.Unparen(be.X), ast.Unparen(be.Y)
	bl, ok := lit.(*ast.BasicLit)
	if !ok {
		bl, ok = other.(*ast.BasicLit)
		other = lit
	}
	if !ok || bl.Kind != token.STRING {
		return
	}
	if !isPhaseNameExpr(pass, other) {
		return
	}
	name, err := strconv.Unquote(bl.Value)
	if err != nil || trace.KnownPhase(name) {
		return
	}
	pass.Reportf(bl.Pos(),
		"string %s compared against a phase name but is not in the shared phase "+
			"vocabulary (trace.PhaseNames): the comparison can never be true — use a "+
			"known name or trace.KnownPhase", bl.Value)
}

// isPhaseNameExpr reports whether e evaluates to a phase name: a .Cat
// selector (the Chrome event category carries Phase.String()) or a
// String() call whose receiver is a trace.Phase.
func isPhaseNameExpr(pass *lint.Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "Cat"
	case *ast.CallExpr:
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "String" {
			return false
		}
		return isPhaseType(pass.TypeOf(sel.X))
	}
	return false
}

// checkBeginEndBalance counts direct Begin and End statements on Tracer
// receivers in one statement list and flags a mismatch. Only top-level
// statements of the list are counted — a Begin whose End lives in a
// nested block is exactly the drift this check exists to catch, since
// an early return between them leaves the span stack open.
func checkBeginEndBalance(pass *lint.Pass, stmts []ast.Stmt) {
	var begins, ends int
	var firstPos token.Pos
	count := func(call *ast.CallExpr) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if !isNamed(pass.TypeOf(sel.X), "trace", "Tracer") {
			return
		}
		switch sel.Sel.Name {
		case "Begin":
			begins++
			if firstPos == token.NoPos {
				firstPos = call.Pos()
			}
		case "End":
			ends++
			if firstPos == token.NoPos {
				firstPos = call.Pos()
			}
		}
	}
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				count(call)
			}
		case *ast.DeferStmt:
			count(s.Call)
		}
	}
	if begins != ends {
		pass.Reportf(firstPos,
			"unbalanced trace spans: %d Begin vs %d End in this block — an early return "+
				"or a missed End leaves the driver span stack open and every later span "+
				"nests under the wrong parent (defer tr.End() immediately after Begin)",
			begins, ends)
	}
}
