package lint

// Per-function effect summaries — the second half of dnnlint v2. For
// every function in the Program we record, bottom-up with bounded
// depth, whether calling it (a) writes memory the caller can see
// through a parameter or the receiver, (b) writes package-level state,
// (c) allocates (make/append/new/fmt, the hotalloc vocabulary),
// (d) spawns a goroutine, or (e) can return a transport error
// (transport.Send/Recv error flow). parbody and hotalloc consume (a–c)
// to see through the closure boundary; transerr consumes (e).
//
// Writes carry a "steered" bit: a write is steered when the element it
// touches is selected by an integer parameter (directly, or through a
// slice/index chain derived from one). Steered writes are the sanctioned
// privatization idiom — blob.AccumulateDiffRange(o, lo, hi) writes
// b.diff[lo:hi] and is race-free exactly because each worker passes a
// disjoint range — so analyzers only flag unsteered effects, or steered
// ones whose call-site arguments are not schedule-derived.
//
// The pass is flow-insensitive and intentionally conservative in both
// directions a linter can afford: a few aliasing patterns are missed
// (address-of escapes, writes through stored struct fields), and waived
// allocation sites (//dnnlint:ignore hotalloc) do not poison caller
// summaries, so an amortized append inside a pre-sized ring does not
// condemn every hot loop that records a trace span.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maxSummaryDepth bounds interprocedural propagation: an effect more
// than this many calls below a function is not attributed to it.
const maxSummaryDepth = 4

// An Effect records one kind of caller-visible behaviour of a function.
type Effect struct {
	// Found reports whether the effect occurs at all.
	Found bool
	// Site is the position of the underlying operation (the assignment,
	// the make call, ...), possibly several calls below the summarized
	// function.
	Site token.Pos
	// Depth is the number of call hops between the summarized function
	// and Site: 0 for a direct effect.
	Depth int
	// What is a short rendering of the underlying operation, for
	// diagnostics ("b.diff[i] +=", "append", ...).
	What string
	// Steered reports that the written location is selected by an
	// integer parameter of the summarized function, so the caller
	// controls which element is touched (the privatization idiom).
	// Meaningless for Alloc and TransportErr.
	Steered bool
}

// A Summary is the bounded-depth effect summary of one function.
type Summary struct {
	// Params[i] is the write effect through parameter i (memory the
	// caller sees: slice elements, pointees, map entries).
	Params []Effect
	// Recv is the write effect through the method receiver.
	Recv Effect
	// Global is a write to a package-level variable.
	Global Effect
	// Alloc is a heap allocation (make/append/new or a fmt call),
	// excluding panic paths and sites waived for hotalloc.
	Alloc Effect
	// Spawns reports that calling the function may launch a goroutine.
	Spawns bool
	// TransportErr reports that the function returns an error that can
	// originate from a transport Send/Recv, so callers dropping its
	// error drop a transport failure.
	TransportErr Effect
}

// Summary returns fn's effect summary, or nil when fn was not declared
// inside the analysis set.
func (p *Program) Summary(fn *types.Func) *Summary {
	if p == nil || fn == nil {
		return nil
	}
	return p.summaries[fn]
}

// rootKind classifies what an expression's write target resolves to.
type rootKind int

const (
	rootNone rootKind = iota
	rootParam
	rootRecv
	rootGlobal
)

type rootRef struct {
	kind  rootKind
	param int          // parameter index for rootParam
	obj   types.Object // the package-level variable for rootGlobal
}

// An argRef ties one call argument (or the receiver) to the caller's
// own roots, for folding callee effects into the caller's summary.
type argRef struct {
	root    rootRef
	steered bool // the argument expression is itself a steered view (buf[lo:hi])
	param   int  // callee parameter index this argument binds
}

type callEdge struct {
	callee      *types.Func
	pos         token.Pos
	recv        argRef
	hasRecv     bool
	args        []argRef
	argsDerived bool // some argument mentions a caller-parameter-derived value
	underPanic  bool
}

type posRange struct{ lo, hi token.Pos }

// funcScope carries the per-function context the direct-effect walk
// needs: parameter objects, the receiver, the set of values derived
// from integer parameters (steering sources) and local aliases of
// parameter/receiver/global memory.
type funcScope struct {
	info    *types.Info
	params  map[types.Object]int
	recv    types.Object
	derived map[types.Object]bool
	alias   map[types.Object]aliasTarget
	panics  []posRange
}

type aliasTarget struct {
	root    rootRef
	steered bool
}

func (p *Program) computeSummaries() {
	p.summaries = map[*types.Func]*Summary{}
	p.edges = map[*types.Func][]callEdge{}
	directives := map[string]map[int]*ignoreDirective{}
	for _, pkg := range p.pkgs {
		for _, f := range pkg.Files {
			parseIgnores(pkg.Fset, f, directives)
		}
	}
	for _, fn := range p.order {
		p.direct(p.funcs[fn], directives)
	}
	// Bounded propagation: each round folds callee effects one hop
	// higher, so round k attributes effects up to k calls deep.
	for round := 0; round < maxSummaryDepth; round++ {
		changed := false
		for _, fn := range p.order {
			if p.propagate(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// direct computes fn's depth-0 effects and records its call edges.
func (p *Program) direct(fi *FuncInfo, directives map[string]map[int]*ignoreDirective) {
	fn := fi.Fn
	sig := fn.Type().(*types.Signature)
	s := &Summary{Params: make([]Effect, sig.Params().Len())}
	p.summaries[fn] = s
	if fi.Decl.Body == nil {
		return
	}
	sc := &funcScope{
		info:    fi.Pkg.Info,
		params:  map[types.Object]int{},
		derived: map[types.Object]bool{},
		alias:   map[types.Object]aliasTarget{},
	}
	for i := 0; i < sig.Params().Len(); i++ {
		v := sig.Params().At(i)
		sc.params[v] = i
		// Integer parameters seed the steering set: values computed
		// from them select which element a write touches.
		if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			sc.derived[v] = true
		}
	}
	if r := sig.Recv(); r != nil {
		sc.recv = r
	}
	body := fi.Decl.Body
	sc.collectPanics(body)
	sc.fixpoint(body)

	waivedAlloc := func(pos token.Pos) bool {
		pp := fi.Pkg.Fset.Position(pos)
		byLine := directives[pp.Filename]
		if byLine == nil {
			return false
		}
		for _, line := range [2]int{pp.Line, pp.Line - 1} {
			if d := byLine[line]; d != nil && (d.names["all"] || d.names["hotalloc"]) {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true // := targets are fresh locals, never shared memory
			}
			for _, lhs := range st.Lhs {
				sc.recordWrite(s, lhs, st.Tok.String())
			}
		case *ast.IncDecStmt:
			sc.recordWrite(s, st.X, st.Tok.String())
		case *ast.GoStmt:
			s.Spawns = true
		case *ast.CallExpr:
			sc.call(p, fi, s, st, waivedAlloc)
		}
		return true
	})
	// A function with an error result that calls transport Send/Recv
	// can hand that failure to its caller.
	if s.TransportErr.Found && !returnsError(sig) {
		s.TransportErr = Effect{}
	}
}

// call handles one call expression during the direct walk: allocation
// vocabulary, copy-as-write, transport error sources and call edges.
func (sc *funcScope) call(p *Program, fi *FuncInfo, s *Summary, call *ast.CallExpr, waived func(token.Pos) bool) {
	inPanic := sc.inPanic(call.Pos())
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make", "new", "append":
			if _, isBuiltin := sc.info.Uses[fun].(*types.Builtin); isBuiltin {
				if !inPanic && !waived(call.Pos()) {
					setAlloc(&s.Alloc, call.Pos(), fun.Name)
				}
			}
		case "copy", "clear":
			if _, isBuiltin := sc.info.Uses[fun].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
				// copy/clear write dst's elements: a through-write.
				root, steered, _ := sc.rootOf(call.Args[0])
				setWrite(s, root, steered, true, call.Pos(), fun.Name)
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := sc.info.Uses[id].(*types.PkgName); ok && pn.Imported().Name() == "fmt" {
				if !inPanic && !waived(call.Pos()) {
					setAlloc(&s.Alloc, call.Pos(), "fmt."+fun.Sel.Name)
				}
			}
		}
	}
	fn := staticCallee(sc.info, call)
	if fn == nil {
		return
	}
	if IsTransportSendRecv(fn) {
		setAlloc(&s.TransportErr, call.Pos(), fn.Name())
	}
	if _, inProgram := p.funcs[fn]; !inProgram {
		return
	}
	edge := callEdge{callee: fn, pos: call.Pos(), underPanic: inPanic}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			root, steered, _ := sc.rootOf(sel.X)
			edge.recv = argRef{root: root, steered: steered, param: -1}
			edge.hasRecv = true
		}
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np {
			break
		}
		root, steered, _ := sc.rootOf(arg)
		edge.args = append(edge.args, argRef{root: root, steered: steered, param: pi})
		if !edge.argsDerived && sc.mentionsDerived(arg) {
			edge.argsDerived = true
		}
	}
	p.edges[fi.Fn] = append(p.edges[fi.Fn], edge)
}

// recordWrite attributes one assignment target to a parameter, the
// receiver or a global, if the write is visible to the caller (it
// crosses a reference: slice/map index, pointer deref, field of a
// pointer — or targets package state).
func (sc *funcScope) recordWrite(s *Summary, target ast.Expr, op string) {
	root, steered, crossed := sc.rootOf(target)
	setWrite(s, root, steered, crossed, target.Pos(), types.ExprString(target)+" "+op)
}

func setWrite(s *Summary, root rootRef, steered, crossed bool, pos token.Pos, what string) {
	var dst *Effect
	switch root.kind {
	case rootParam:
		if !crossed {
			return // writing the parameter variable itself is local
		}
		dst = &s.Params[root.param]
	case rootRecv:
		if !crossed {
			return
		}
		dst = &s.Recv
	case rootGlobal:
		dst = &s.Global // even a bare `g = x` is shared state
		what = root.obj.Name() + " " + op(what)
	default:
		return
	}
	ne := Effect{Found: true, Site: pos, What: what, Steered: steered}
	if !dst.Found || (dst.Steered && !steered) {
		*dst = ne // first effect wins, unless an unsteered (riskier) one appears
	}
}

// op trims the rendered target off a "target op" What string so global
// messages read "gvar =" rather than duplicating the expression.
func op(what string) string {
	for i := len(what) - 1; i >= 0; i-- {
		if what[i] == ' ' {
			return what[i+1:]
		}
	}
	return what
}

func setAlloc(e *Effect, pos token.Pos, what string) {
	if !e.Found {
		*e = Effect{Found: true, Site: pos, What: what}
	}
}

// propagate folds callee summaries one hop into fn's; reports change.
func (p *Program) propagate(fn *types.Func) bool {
	s := p.summaries[fn]
	changed := false
	for _, e := range p.edges[fn] {
		cs := p.summaries[e.callee]
		if cs == nil {
			continue
		}
		if cs.Alloc.Found && !e.underPanic && !s.Alloc.Found && cs.Alloc.Depth < maxSummaryDepth {
			s.Alloc = Effect{Found: true, Site: cs.Alloc.Site, Depth: cs.Alloc.Depth + 1, What: cs.Alloc.What}
			changed = true
		}
		if cs.Spawns && !s.Spawns {
			s.Spawns = true
			changed = true
		}
		if cs.Global.Found && !s.Global.Found && cs.Global.Depth < maxSummaryDepth {
			s.Global = Effect{Found: true, Site: cs.Global.Site, Depth: cs.Global.Depth + 1,
				What: cs.Global.What, Steered: cs.Global.Steered && e.argsDerived}
			changed = true
		}
		if cs.TransportErr.Found && !s.TransportErr.Found && cs.TransportErr.Depth < maxSummaryDepth &&
			returnsError(fn.Type().(*types.Signature)) {
			s.TransportErr = Effect{Found: true, Site: cs.TransportErr.Site,
				Depth: cs.TransportErr.Depth + 1, What: cs.TransportErr.What}
			changed = true
		}
		for _, a := range e.args {
			if a.param < len(cs.Params) && cs.Params[a.param].Found {
				if p.fold(s, a, cs.Params[a.param], e) {
					changed = true
				}
			}
		}
		if e.hasRecv && cs.Recv.Found {
			if p.fold(s, e.recv, cs.Recv, e) {
				changed = true
			}
		}
	}
	return changed
}

// fold attributes a callee's through-write to the caller's root the
// argument (or receiver) resolves to. The write stays steered only if
// the call site keeps it parameter-controlled: either the callee's
// steering inputs come from caller-derived values, or the argument is
// itself a steered view of the memory.
func (p *Program) fold(s *Summary, a argRef, eff Effect, e callEdge) bool {
	if eff.Depth >= maxSummaryDepth {
		return false
	}
	ne := Effect{Found: true, Site: eff.Site, Depth: eff.Depth + 1, What: eff.What,
		Steered: (eff.Steered && e.argsDerived) || a.steered}
	var dst *Effect
	switch a.root.kind {
	case rootParam:
		dst = &s.Params[a.root.param]
	case rootRecv:
		dst = &s.Recv
	case rootGlobal:
		dst = &s.Global
	default:
		return false
	}
	if !dst.Found || (dst.Steered && !ne.Steered) {
		*dst = ne
		return true
	}
	return false
}

// rootOf unwraps an expression to the identifier whose memory it
// denotes. It reports whether the index/slice chain mentions a
// parameter-derived value (steered) and whether the chain crosses a
// reference (so a write through it is visible outside the function).
func (sc *funcScope) rootOf(e ast.Expr) (rootRef, bool, bool) {
	steered, crossed := false, false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			if sc.mentionsDerived(x.Index) {
				steered = true
			}
			switch sc.typeOf(x.X).(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				crossed = true
			}
			e = x.X
		case *ast.SliceExpr:
			if sc.mentionsDerived(x.Low) || sc.mentionsDerived(x.High) {
				steered = true
			}
			if _, ok := sc.typeOf(x.X).(*types.Slice); ok {
				crossed = true
			}
			e = x.X
		case *ast.StarExpr:
			crossed = true
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := sc.info.Uses[id].(*types.PkgName); isPkg {
					e = x.Sel // pkg.Var: the selected name is the root
					continue
				}
			}
			if _, ok := sc.typeOf(x.X).(*types.Pointer); ok {
				crossed = true // implicit deref: p.f reaches the pointee
			}
			e = x.X
		case *ast.Ident:
			obj := sc.info.Uses[x]
			if obj == nil {
				obj = sc.info.Defs[x]
			}
			switch {
			case obj == nil:
				return rootRef{}, steered, crossed
			case sc.recv != nil && obj == sc.recv:
				return rootRef{kind: rootRecv}, steered, crossed
			default:
				if i, ok := sc.params[obj]; ok {
					return rootRef{kind: rootParam, param: i}, steered, crossed
				}
				if isPackageLevel(obj) {
					return rootRef{kind: rootGlobal, obj: obj}, steered, crossed
				}
				if al, ok := sc.alias[obj]; ok {
					// A local alias of param/recv/global memory is
					// reference-typed by construction: writing through
					// it writes the shared backing.
					return al.root, steered || al.steered, true
				}
				return rootRef{}, steered, crossed
			}
		default:
			return rootRef{}, steered, crossed
		}
	}
}

// fixpoint grows the derived (steering) set and the alias map until
// stable: locals assigned from parameter-derived values steer writes;
// locals bound to views of parameter/receiver/global memory alias it.
func (sc *funcScope) fixpoint(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						if sc.bind(lhs, st.Rhs[i]) {
							changed = true
						}
					}
				} else if len(st.Rhs) == 1 { // tuple assignment
					if sc.mentionsDerived(st.Rhs[0]) {
						for _, lhs := range st.Lhs {
							if sc.markDerived(lhs) {
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				// Ranging over a steered view yields steered indices:
				// for i := range b.diff[lo:hi] partitions by i.
				if sc.mentionsDerived(st.X) || sc.rootSteered(st.X) {
					if sc.markDerived(st.Key) {
						changed = true
					}
					if sc.markDerived(st.Value) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// bind processes one lhs := rhs (or =) pair for derived/alias tracking.
func (sc *funcScope) bind(lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := sc.info.Defs[id]
	if obj == nil {
		obj = sc.info.Uses[id]
	}
	if obj == nil {
		return false
	}
	changed := false
	if !sc.derived[obj] && sc.mentionsDerived(rhs) {
		sc.derived[obj] = true
		changed = true
	}
	if _, known := sc.alias[obj]; !known && isRefType(sc.typeOf(rhs)) {
		root, steered, _ := sc.rootOf(rhs)
		if root.kind != rootNone {
			sc.alias[obj] = aliasTarget{root: root, steered: steered}
			changed = true
		}
	}
	return changed
}

func (sc *funcScope) markDerived(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := sc.info.Defs[id]
	if obj == nil {
		obj = sc.info.Uses[id]
	}
	if obj == nil || sc.derived[obj] {
		return false
	}
	sc.derived[obj] = true
	return true
}

func (sc *funcScope) mentionsDerived(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if obj := sc.info.Uses[id]; obj != nil && sc.derived[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootSteered reports whether e is (a view of) memory whose alias
// chain was itself steered, e.g. ranging over bd := b.diff[lo:hi].
func (sc *funcScope) rootSteered(e ast.Expr) bool {
	_, steered, _ := sc.rootOf(e)
	return steered
}

func (sc *funcScope) typeOf(e ast.Expr) types.Type {
	if tv, ok := sc.info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

func (sc *funcScope) collectPanics(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := sc.info.Uses[id].(*types.Builtin); isBuiltin {
					sc.panics = append(sc.panics, posRange{call.Pos(), call.End()})
				}
			}
		}
		return true
	})
}

func (sc *funcScope) inPanic(pos token.Pos) bool {
	for _, r := range sc.panics {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

func isRefType(t types.Type) bool {
	switch t.(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func returnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// IsTransportSendRecv matches the transport error-source contract
// structurally: a method named Send/Recv (data plane) or
// SendCtrl/RecvCtrl (control plane — heartbeats, fences, joins)
// declared (on a concrete type or an interface) in a package named
// "transport", so fixtures with a stand-in package exercise the same
// rule as the real one.
func IsTransportSendRecv(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "transport" {
		return false
	}
	switch fn.Name() {
	case "Send", "Recv", "SendCtrl", "RecvCtrl":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
