// Package lint is a from-scratch static-analysis framework for enforcing
// the repository's determinism and parallelism contracts (LINTING.md).
//
// The runtime guarantees the paper's headline property — parallel training
// that is bit-identical to sequential training — only by convention: static
// scheduling in internal/par, ordered gradient reduction via Pool.Ordered,
// nil-safe tracer handles in internal/trace, alias discipline on blob
// buffers. Those conventions are one careless closure away from being
// silently broken, so this package machine-checks them.
//
// The framework deliberately mirrors the shape of golang.org/x/tools/go/
// analysis (Analyzer, Pass, position-accurate Diagnostics) but is built
// exclusively on the standard library: go/parser, go/ast, go/types and the
// stdlib source importer. See Load for how packages are resolved without
// x/tools.
//
// # Suppressing a diagnostic
//
// A finding can be waived at a single site with a directive comment on the
// flagged line or the line above it:
//
//	//dnnlint:ignore hotalloc per-batch growth is amortized by the arena
//
// The directive names one analyzer (or a comma-separated list, or "all")
// and must carry a justification; bare suppressions are themselves
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single package via the
// Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives
	// (lower-case, no spaces).
	Name string
	// Doc is a short description: first line is a one-sentence summary,
	// the rest elaborates the enforced invariant.
	Doc string
	// Run performs the check on one type-checked package.
	Run func(*Pass)
}

// A Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the interprocedural view over the whole analysis set:
	// the call graph and per-function effect summaries (callgraph.go,
	// effects.go). It is shared by every pass of one Run.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id (its use or definition), or
// nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// Run applies every analyzer to every package and returns the surviving
// findings ordered by position. Ignore directives (see the package
// comment) are honored here; an ignore directive without a justification
// is converted into its own finding.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	diags = applyIgnores(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective is one parsed //dnnlint:ignore comment.
type ignoreDirective struct {
	names     map[string]bool // analyzer names, or {"all": true}
	justified bool
	pos       token.Position
}

const ignorePrefix = "//dnnlint:ignore"

// parseIgnores scans a file's comments for directives, keyed by line.
func parseIgnores(fset *token.FileSet, f *ast.File, out map[string]map[int]*ignoreDirective) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			fields := strings.Fields(rest)
			d := &ignoreDirective{names: map[string]bool{}, pos: fset.Position(c.Pos())}
			if len(fields) > 0 {
				for _, n := range strings.Split(fields[0], ",") {
					d.names[n] = true
				}
				d.justified = len(fields) > 1
			}
			byLine := out[d.pos.Filename]
			if byLine == nil {
				byLine = map[int]*ignoreDirective{}
				out[d.pos.Filename] = byLine
			}
			byLine[d.pos.Line] = d
		}
	}
}

// applyIgnores drops diagnostics waived by a directive on their line or
// the line above, and reports unjustified directives.
func applyIgnores(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	directives := map[string]map[int]*ignoreDirective{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			parseIgnores(pkg.Fset, f, directives)
		}
	}
	matching := func(d Diagnostic) *ignoreDirective {
		byLine := directives[d.Pos.Filename]
		if byLine == nil {
			return nil
		}
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			if dir := byLine[line]; dir != nil && (dir.names["all"] || dir.names[d.Analyzer]) {
				return dir
			}
		}
		return nil
	}
	out := diags[:0]
	for _, d := range diags {
		if matching(d) == nil {
			out = append(out, d)
		}
	}
	for _, byLine := range directives {
		for _, dir := range byLine {
			if !dir.justified {
				out = append(out, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "ignore",
					Message:  "dnnlint:ignore directive needs a justification after the analyzer name",
				})
			}
		}
	}
	return out
}
