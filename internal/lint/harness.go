package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Fixture runs one analyzer over the fixture package testdata/src/<pkg>
// (relative to the calling test's directory) and compares its findings
// against `// want "regexp"` expectation comments in the fixture source,
// in the style of x/tools' analysistest:
//
//	sum += v // want `cross-rank floating-point accumulation`
//
// Each want comment carries one or more quoted regular expressions; every
// expectation must be matched by a diagnostic on its line, and every
// diagnostic must be claimed by an expectation. The fixture package must
// type-check; its imports resolve against testdata/src (so fixtures can
// import miniature stand-ins for par, blob and trace).
//
// Because unmatched expectations fail the test, every analyzer's fixture
// also proves the detection logic is alive: disable the analyzer and the
// positive expectations become failures.
func Fixture(t testing.TB, a *Analyzer, pkg string) {
	t.Helper()
	src := filepath.Join("testdata", "src")
	loader, err := NewLoader(Config{Dir: src, SrcDirs: []string{src}})
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load(pkg)
	if err != nil {
		t.Fatalf("load %s: %v", pkg, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", pkg, len(pkgs))
	}
	if err := FirstError(pkgs); err != nil {
		t.Fatalf("fixture %s does not type-check: %v", pkg, err)
	}
	diags := Run(pkgs, []*Analyzer{a})
	checkExpectations(t, pkgs[0], diags)
}

// expectation is one parsed want regexp with its location.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

var wantRe = regexp.MustCompile("^(?:/[/*] *)?want +(.*)$")

// parseExpectations extracts want comments from the fixture files.
func parseExpectations(t testing.TB, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, q, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, text: q})
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t testing.TB, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var q string
		var err error
		switch s[0] {
		case '"':
			end := len(s)
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i + 1
					break
				}
			}
			q, err = strconv.Unquote(s[:end])
			s = strings.TrimSpace(s[end:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				err = fmt.Errorf("unterminated backquote")
				break
			}
			q = s[1 : 1+end]
			s = strings.TrimSpace(s[2+end:])
		default:
			err = fmt.Errorf("expected quoted regexp, found %q", s)
		}
		if err != nil {
			t.Fatalf("%s: malformed want comment: %v", pos, err)
		}
		out = append(out, q)
	}
	return out
}

// checkExpectations matches diagnostics against expectations line by line.
func checkExpectations(t testing.TB, pkg *Package, diags []Diagnostic) {
	t.Helper()
	expects := parseExpectations(t, pkg)
	for _, d := range diags {
		claimed := false
		for _, e := range expects {
			if !e.met && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.met = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.text)
		}
	}
}
