package simtime

// This file extends the analytic model from one node to a cluster: the
// FireCaffe-style question (PAPERS.md, Iandola et al.) of how far
// data-parallel replication scales before gradient communication eats
// the compute speedup, answered from a handful of measured quantities —
// before buying the hardware. The modeled execution is exactly what
// internal/dist implements: per-iteration ordered reduce-scatter of the
// gradients across k replicas, a fan-out-f tree gather of the reduced
// slices to the coordinator, the solver step, and a tree broadcast of
// the updated weights, with the scatter partially hidden behind the
// backward pass (DISTRIBUTED.md). cmd/dnncluster -predict evaluates it;
// EXPERIMENTS.md records predicted vs measured.

import "math"

// ClusterMachine holds the calibrated constants of a replica cluster:
// the interconnect and the physical cores the replicas actually get.
type ClusterMachine struct {
	// Cores is the number of physical cores executing replicas. For a
	// real cluster this is ≥ the replica count (one-plus cores each);
	// for the in-process transport on one host it is the host's core
	// count, which caps the compute speedup at min(k, Cores) — on this
	// repository's single-core container, modeling Cores=1 is what
	// makes the k=4 prediction match the measured run.
	Cores int
	// LinkMBps is one link's usable bandwidth in megabytes/second
	// (loopback/in-process: memory bandwidth; 1 GbE: ~110).
	LinkMBps float64
	// LatencyUS is the fixed per-message cost in microseconds (syscall +
	// queue + propagation; in-process: the inbox handoff).
	LatencyUS float64
	// OverlapFraction is the share of scatter traffic hidden behind
	// backward compute by the layer-hook overlap, in [0,1]. 0 models a
	// strictly phase-ordered exchange; measured traces put the dist
	// implementation near 0.5 on LeNet (EXPERIMENTS.md).
	OverlapFraction float64
}

// LocalCluster returns constants calibrated for the in-process
// transport on this repository's development container: no real NIC, so
// bandwidth is a memcpy and latency a mutex handoff; Cores comes from
// the caller because it is the whole story on an oversubscribed host.
func LocalCluster(cores int) ClusterMachine {
	if cores < 1 {
		cores = 1
	}
	return ClusterMachine{
		Cores:           cores,
		LinkMBps:        3000,
		LatencyUS:       8,
		OverlapFraction: 0.5,
	}
}

// ClusterWorkload is one iteration's work, measured once on a single
// replica (e.g. from a sequential dnntrain run or its trace).
type ClusterWorkload struct {
	// ComputeUS is the serial forward+backward+update time of the full
	// global batch on one replica, in microseconds.
	ComputeUS float64
	// BackwardFrac is the backward pass's share of ComputeUS — the
	// window the scatter can hide in. LeNet measures ≈ 0.55.
	BackwardFrac float64
	// ParamElems is the total learnable element count.
	ParamElems int
	// ParamTensors is the number of parameter blobs (message count per
	// phase scales with it).
	ParamTensors int
}

// ClusterPrediction breaks one modeled iteration into its terms, all in
// microseconds.
type ClusterPrediction struct {
	// ComputeUS is the per-replica compute time of the sharded batch,
	// accounting for core oversubscription.
	ComputeUS float64
	// ScatterUS is the full cost of the all-to-all gradient
	// reduce-scatter; HiddenUS of it overlaps backward compute.
	ScatterUS, HiddenUS float64
	// TreeUS is the gather-plus-broadcast cost through the reduction
	// tree (grows with tree depth, not replica count — the FireCaffe
	// argument for trees over a flat parameter server).
	TreeUS float64
	// TotalUS is the modeled wall time of one iteration.
	TotalUS float64
	// Speedup is serial ComputeUS divided by TotalUS.
	Speedup float64
	// TreeDepth is the modeled reduction tree's depth.
	TreeDepth int
}

// TreeDepth returns the depth (root = 0) of the heap-numbered fan-out-f
// tree over n ranks — the number of sequential hops a gather or
// broadcast takes.
func TreeDepth(n, fanout int) int {
	if n <= 1 {
		return 0
	}
	if fanout < 1 {
		fanout = 1
	}
	depth, levelCap, total := 0, 1, 1
	for total < n {
		levelCap *= fanout
		total += levelCap
		depth++
	}
	return depth
}

// Predict models one training iteration on k replicas with a fan-out-f
// reduction tree and an uncompressed f32 wire.
func (m ClusterMachine) Predict(w ClusterWorkload, replicas, fanout int) ClusterPrediction {
	return m.PredictEx(w, replicas, fanout, "tree", 1)
}

// PredictEx extends Predict across the gradient-exchange design space
// internal/dist implements: topology is "tree" or "ring", and wireScale
// is the codec's bytes-on-wire ratio for encoded gradient frames (1 for
// f32, ~0.5 for f16, ~0.26 for int8 — callers measure it from
// transport.Codec.WireLen so the model and the implementation cannot
// drift). wireScale applies only to the legs that carry encoded
// contributions; reduced gradients and weights always cross as raw f32,
// exactly as in the implementation.
//
// The ring modeled here is dist's deterministic relay ring, not the
// textbook partial-sum ring: contributions travel bit-unchanged to
// their chunk owner, so a chunk originating at distance d occupies d
// links instead of being folded into a running partial at each hop.
// Summing over origins, every link carries (k-1)/2 of the gradient
// bytes in k(k-1)/2 frames per tensor — ~k/2 times the textbook ring's
// (k-1)/k bytes. That is the honest price of bitwise determinism under
// relays; compression is what buys it back (int8 at k=4 ships fewer
// bytes per link than an uncompressed textbook ring would). The
// all-gather leg is the textbook one — (k-1)/k of the reduced bytes per
// link, raw f32 — and the tree term shrinks to the weight broadcast,
// the only master-state traffic left on the tree under the ring.
func (m ClusterMachine) PredictEx(w ClusterWorkload, replicas, fanout int, topology string, wireScale float64) ClusterPrediction {
	if replicas < 1 {
		replicas = 1
	}
	if fanout < 1 {
		fanout = 1
	}
	if wireScale <= 0 {
		wireScale = 1
	}
	k := float64(replicas)
	cores := m.Cores
	if cores < 1 {
		cores = 1
	}

	// Compute: the global batch splits k ways, but only Cores replicas
	// execute at once — ceil(k/Cores) serialized waves. On a host with
	// cores ≥ k this is the ideal ComputeUS/k; on one core it collapses
	// to ComputeUS, which is why single-host "distributed" runs cannot
	// beat the serial baseline and the model must say so.
	waves := math.Ceil(k / float64(cores))
	p := ClusterPrediction{ComputeUS: w.ComputeUS / k * waves, TreeDepth: TreeDepth(replicas, fanout)}

	if replicas == 1 {
		p.TotalUS = p.ComputeUS
		p.Speedup = w.ComputeUS / p.TotalUS
		return p
	}

	paramMB := 4 * float64(w.ParamElems) / 1e6
	msgs := float64(w.ParamTensors)
	d := float64(p.TreeDepth)

	if topology == "ring" {
		// Relay-ring reduce-scatter: each link carries every rank's own
		// (k-1) contributions plus the relays passing through — summed
		// over origin distances, k(k-1)/2 frames and (k-1)/2 of the
		// encoded gradient bytes per tensor per link. Links run
		// concurrently; one link's budget is the bound.
		p.ScatterUS = k*(k-1)/2*msgs*m.LatencyUS + paramMB*(k-1)/2*wireScale/m.LinkMBps*1e6
		p.HiddenUS = math.Min(m.OverlapFraction*p.ScatterUS, w.BackwardFrac*p.ComputeUS)
		// Ring all-gather of the reduced slices — raw f32, (k-1)/k of
		// the bytes per link — plus the weight broadcast, which stays on
		// the tree (master state takes the lowest-latency route).
		allGather := (k-1)*msgs*m.LatencyUS + paramMB*(k-1)/k/m.LinkMBps*1e6
		p.TreeUS = allGather + d*(msgs*m.LatencyUS + paramMB/m.LinkMBps*1e6)
	} else {
		// Reduce-scatter: every rank ships (k-1)/k of its (encoded)
		// gradient bytes and receives as much, in (k-1) per-tensor
		// messages each way. The links are full-duplex and distinct
		// sender/receiver pairs run concurrently, so one rank's send
		// budget is the bound.
		p.ScatterUS = (k-1)*msgs*m.LatencyUS + paramMB*(k-1)/k*wireScale/m.LinkMBps*1e6
		// The layer hook ships slices while backward still runs; the
		// hidden share is capped by the backward window itself.
		p.HiddenUS = math.Min(m.OverlapFraction*p.ScatterUS, w.BackwardFrac*p.ComputeUS)

		// Tree gather + broadcast: each of the depth levels forwards the
		// full reduced vector (gather up, weights down), level by level.
		// Depth is what the fan-out buys: a flat star (fanout k-1) pays
		// one huge level, a binary tree log2(k) small ones.
		p.TreeUS = 2 * d * (msgs*m.LatencyUS + paramMB/m.LinkMBps*1e6)
	}

	p.TotalUS = p.ComputeUS + (p.ScatterUS - p.HiddenUS) + p.TreeUS
	p.Speedup = w.ComputeUS / p.TotalUS
	return p
}

// ClusterSpeedup returns the modeled speedup of k replicas over the
// serial run — the cluster analogue of Machine.Speedup.
func (m ClusterMachine) ClusterSpeedup(w ClusterWorkload, replicas, fanout int) float64 {
	return m.Predict(w, replicas, fanout).Speedup
}

// RecoveryPrediction breaks one elastic fence (internal/dist.RunElastic
// losing a rank) into its modeled terms, all in microseconds: the pause
// a failure inserts between the last committed iteration and the first
// committed iteration of the survivor membership.
type RecoveryPrediction struct {
	// DetectUS is the heartbeat silence until the peer is declared dead
	// (the coordinator's PeerTimeout — policy, not physics, so the
	// caller supplies it).
	DetectUS float64
	// CheckpointUS is the fence checkpoint's write plus the reload into
	// the re-formed group's solver.
	CheckpointUS float64
	// SyncUS is the full weight re-broadcast down the survivor tree
	// (every level forwards every parameter byte).
	SyncUS float64
	// RedoUS is the abandoned iteration re-run at the survivor
	// membership — the commit rule never folds a partial iteration, so
	// the work between the fence point and the failure is repeated.
	RedoUS float64
	// TotalUS is the whole modeled pause.
	TotalUS float64
}

// PredictRecovery models the cost of losing one rank: replicas shrinks
// to survivors, detection takes detectUS (the configured peer timeout),
// and the fence checkpoint moves at diskMBps (<= 0 models a page-cached
// tmpfs at the link bandwidth). The result answers the capacity
// question ROBUSTNESS.md poses: how many iterations of progress one
// failure costs, which with Predict gives the break-even failure rate
// for a checkpoint interval.
func (m ClusterMachine) PredictRecovery(w ClusterWorkload, survivors, fanout int, detectUS, diskMBps float64) RecoveryPrediction {
	if survivors < 1 {
		survivors = 1
	}
	if diskMBps <= 0 {
		diskMBps = m.LinkMBps
	}
	paramMB := 4 * float64(w.ParamElems) / 1e6
	msgs := float64(w.ParamTensors)

	p := RecoveryPrediction{DetectUS: math.Max(detectUS, 0)}
	p.CheckpointUS = 2 * paramMB / diskMBps * 1e6 // write at the fence, read at the rebuild
	d := float64(TreeDepth(survivors, fanout))
	p.SyncUS = d * (msgs*m.LatencyUS + paramMB/m.LinkMBps*1e6)
	p.RedoUS = m.Predict(w, survivors, fanout).TotalUS
	p.TotalUS = p.DetectUS + p.CheckpointUS + p.SyncUS + p.RedoUS
	return p
}
