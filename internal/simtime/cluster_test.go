package simtime

import "testing"

func TestTreeDepth(t *testing.T) {
	cases := []struct{ n, fanout, want int }{
		{1, 2, 0},
		{2, 2, 1},
		{3, 2, 1},
		{4, 2, 2},
		{7, 2, 2},
		{8, 2, 3},
		{4, 3, 1},
		{5, 3, 2},
		{4, 1, 3},
		{16, 4, 2},
	}
	for _, c := range cases {
		if got := TreeDepth(c.n, c.fanout); got != c.want {
			t.Errorf("TreeDepth(%d, %d) = %d, want %d", c.n, c.fanout, got, c.want)
		}
	}
}

func lenetLikeWorkload() ClusterWorkload {
	return ClusterWorkload{
		ComputeUS:    400_000, // LeNet batch 64 iteration on one container core
		BackwardFrac: 0.55,
		ParamElems:   431_080,
		ParamTensors: 8,
	}
}

func TestPredictSingleReplicaIsBaseline(t *testing.T) {
	m := LocalCluster(4)
	p := m.Predict(lenetLikeWorkload(), 1, 2)
	if p.Speedup != 1 {
		t.Fatalf("k=1 speedup = %v, want exactly 1", p.Speedup)
	}
	if p.ScatterUS != 0 || p.TreeUS != 0 {
		t.Fatalf("k=1 pays communication: %+v", p)
	}
}

func TestPredictScalesWithCores(t *testing.T) {
	w := lenetLikeWorkload()
	m := LocalCluster(16)
	s2 := m.ClusterSpeedup(w, 2, 2)
	s4 := m.ClusterSpeedup(w, 4, 2)
	s8 := m.ClusterSpeedup(w, 8, 2)
	if !(s2 > 1.5 && s4 > s2 && s8 > s4) {
		t.Fatalf("compute-bound workload should scale: s2=%v s4=%v s8=%v", s2, s4, s8)
	}
	if s8 >= 8 {
		t.Fatalf("speedup %v exceeds ideal — communication cost vanished", s8)
	}
}

func TestPredictOversubscribedHostDoesNotSpeedUp(t *testing.T) {
	// One core hosting k replicas: compute cannot shrink, communication
	// only adds — the model must predict speedup ≤ 1 (this is the
	// acceptance scenario for the container measurement).
	m := LocalCluster(1)
	for _, k := range []int{2, 4} {
		p := m.Predict(lenetLikeWorkload(), k, 2)
		if p.Speedup > 1 {
			t.Fatalf("k=%d on 1 core predicts speedup %v > 1", k, p.Speedup)
		}
		if p.Speedup < 0.5 {
			t.Fatalf("k=%d on 1 core predicts speedup %v — comm overhead implausibly large", k, p.Speedup)
		}
	}
}

func TestPredictTermsCompose(t *testing.T) {
	m := LocalCluster(4)
	p := m.Predict(lenetLikeWorkload(), 4, 2)
	sum := p.ComputeUS + (p.ScatterUS - p.HiddenUS) + p.TreeUS
	if p.TotalUS != sum {
		t.Fatalf("TotalUS %v != composed terms %v", p.TotalUS, sum)
	}
	if p.HiddenUS > p.ScatterUS {
		t.Fatalf("hidden %v exceeds scatter %v", p.HiddenUS, p.ScatterUS)
	}
	if p.TreeDepth != 2 {
		t.Fatalf("tree depth %d, want 2", p.TreeDepth)
	}
}

func TestPredictSlowLinkHurts(t *testing.T) {
	w := lenetLikeWorkload()
	fast := ClusterMachine{Cores: 16, LinkMBps: 3000, LatencyUS: 8, OverlapFraction: 0.5}
	slow := fast
	slow.LinkMBps = 10
	if sf, ss := fast.ClusterSpeedup(w, 8, 2), slow.ClusterSpeedup(w, 8, 2); ss >= sf {
		t.Fatalf("slow link speedup %v >= fast link %v", ss, sf)
	}
}

func TestPredictTreeBeatsFlatStarAtScale(t *testing.T) {
	// FireCaffe's core claim: at large k on a latency-bound network, a
	// log-depth tree gathers faster than a flat star (fanout k-1 ⇒ the
	// root ingests everything in one level... which the model prices as
	// depth-1 but the scatter's (k-1) per-message latency dominates).
	// Here: compare the tree term directly across fan-outs at fixed k.
	m := ClusterMachine{Cores: 64, LinkMBps: 110, LatencyUS: 50, OverlapFraction: 0}
	w := lenetLikeWorkload()
	deep := m.Predict(w, 64, 2)  // depth 6
	flat := m.Predict(w, 64, 63) // depth 1
	if deep.TreeDepth <= flat.TreeDepth {
		t.Fatalf("depths: tree %d vs flat %d", deep.TreeDepth, flat.TreeDepth)
	}
	// Both must remain finite and positive; the relative ranking of the
	// full iteration depends on the byte/latency balance, which is the
	// point of having a model at all.
	if deep.TotalUS <= 0 || flat.TotalUS <= 0 {
		t.Fatalf("degenerate totals: %+v vs %+v", deep, flat)
	}
}

func TestPredictRecoveryTermsCompose(t *testing.T) {
	m := LocalCluster(4)
	w := lenetLikeWorkload()
	p := m.PredictRecovery(w, 3, 2, 200_000, 500)
	if p.DetectUS != 200_000 {
		t.Fatalf("detect term %v, want the supplied peer timeout", p.DetectUS)
	}
	if p.CheckpointUS <= 0 || p.SyncUS <= 0 || p.RedoUS <= 0 {
		t.Fatalf("non-positive recovery term: %+v", p)
	}
	if sum := p.DetectUS + p.CheckpointUS + p.SyncUS + p.RedoUS; p.TotalUS != sum {
		t.Fatalf("TotalUS %v != sum of terms %v", p.TotalUS, sum)
	}
	if p.RedoUS != m.Predict(w, 3, 2).TotalUS {
		t.Fatalf("redo term %v, want one survivor-membership iteration %v",
			p.RedoUS, m.Predict(w, 3, 2).TotalUS)
	}
}

func TestPredictRecoveryScalesWithModelAndDisk(t *testing.T) {
	m := LocalCluster(4)
	small := lenetLikeWorkload()
	big := small
	big.ParamElems *= 10
	if m.PredictRecovery(big, 3, 2, 0, 500).CheckpointUS <=
		m.PredictRecovery(small, 3, 2, 0, 500).CheckpointUS {
		t.Fatal("10x parameters did not raise the checkpoint term")
	}
	if m.PredictRecovery(small, 3, 2, 0, 50).CheckpointUS <=
		m.PredictRecovery(small, 3, 2, 0, 500).CheckpointUS {
		t.Fatal("a 10x slower disk did not raise the checkpoint term")
	}
	// diskMBps <= 0 models a page-cached write at link speed.
	if got := m.PredictRecovery(small, 3, 2, 0, 0).CheckpointUS; got <= 0 {
		t.Fatalf("default disk term %v", got)
	}
	// A solo survivor has no tree to re-sync.
	if p := m.PredictRecovery(small, 1, 2, 0, 500); p.SyncUS != 0 {
		t.Fatalf("single survivor pays a sync: %+v", p)
	}
}

func TestPredictExTreeF32MatchesPredict(t *testing.T) {
	m := LocalCluster(4)
	w := lenetLikeWorkload()
	for _, k := range []int{1, 2, 4, 8} {
		a, b := m.Predict(w, k, 2), m.PredictEx(w, k, 2, "tree", 1)
		if a != b {
			t.Fatalf("k=%d: PredictEx(tree, 1) %+v != Predict %+v", k, b, a)
		}
	}
}

func TestPredictExCompressionShrinksScatterOnly(t *testing.T) {
	m := LocalCluster(4)
	w := lenetLikeWorkload()
	for _, topo := range []string{"tree", "ring"} {
		f32 := m.PredictEx(w, 4, 2, topo, 1)
		int8 := m.PredictEx(w, 4, 2, topo, 0.26)
		if int8.ScatterUS >= f32.ScatterUS {
			t.Fatalf("%s: int8 scatter %v not below f32 %v", topo, int8.ScatterUS, f32.ScatterUS)
		}
		// The gather/broadcast legs carry raw f32 either way.
		if int8.TreeUS != f32.TreeUS {
			t.Fatalf("%s: compression changed the raw-f32 legs: %v vs %v", topo, int8.TreeUS, f32.TreeUS)
		}
		if int8.TotalUS >= f32.TotalUS {
			t.Fatalf("%s: int8 total %v not below f32 %v", topo, int8.TotalUS, f32.TotalUS)
		}
	}
}

// The relay ring pays ~k/2 times the textbook ring's scatter bytes for
// bitwise determinism: at k=4 its f32 reduce-scatter moves (k-1)/2 = 1.5
// of the gradient per link vs the tree's (k-1)/k = 0.75. The model must
// price that honestly — and show int8 compression (0.26) buying it back.
func TestPredictExRingCostsMoreThanTreeUncompressed(t *testing.T) {
	// Bandwidth-bound regime so byte counts dominate.
	m := ClusterMachine{Cores: 16, LinkMBps: 110, LatencyUS: 1, OverlapFraction: 0}
	w := lenetLikeWorkload()
	ringF32 := m.PredictEx(w, 4, 2, "ring", 1)
	treeF32 := m.PredictEx(w, 4, 2, "tree", 1)
	if ringF32.ScatterUS <= treeF32.ScatterUS {
		t.Fatalf("relay ring f32 scatter %v not above tree %v", ringF32.ScatterUS, treeF32.ScatterUS)
	}
	ringInt8 := m.PredictEx(w, 4, 2, "ring", 0.26)
	if ringInt8.ScatterUS >= treeF32.ScatterUS {
		t.Fatalf("int8 ring scatter %v should undercut f32 tree %v", ringInt8.ScatterUS, treeF32.ScatterUS)
	}
}

func TestPredictExTermsCompose(t *testing.T) {
	m := LocalCluster(4)
	p := m.PredictEx(lenetLikeWorkload(), 4, 2, "ring", 0.5)
	sum := p.ComputeUS + (p.ScatterUS - p.HiddenUS) + p.TreeUS
	if p.TotalUS != sum {
		t.Fatalf("TotalUS %v != composed terms %v", p.TotalUS, sum)
	}
	if p.HiddenUS > p.ScatterUS {
		t.Fatalf("hidden %v exceeds scatter %v", p.HiddenUS, p.ScatterUS)
	}
}
