package simtime

import (
	"testing"
	"testing/quick"
)

func bigLayer() LayerModel {
	return LayerModel{
		Name: "conv", FwdSerialUS: 10000, BwdSerialUS: 20000,
		FwdExtent: 1280, BwdExtent: 64, ParamElems: 25000,
		Consumes: DistPlanes, Produces: DistPlanes,
	}
}

func tinyLayer() LayerModel {
	return LayerModel{
		Name: "loss", FwdSerialUS: 20, BwdSerialUS: 10,
		FwdExtent: 64, BwdExtent: 64,
		Consumes: DistSamples, Produces: DistSamples,
	}
}

func TestSerialIsIdentity(t *testing.T) {
	m := DefaultMachine()
	l := bigLayer()
	if got := m.LayerTime(l, Forward, "", 1); got != l.FwdSerialUS {
		t.Fatalf("1-thread forward = %v, want %v", got, l.FwdSerialUS)
	}
	if got := m.LayerTime(l, Backward, "", 1); got != l.BwdSerialUS {
		t.Fatalf("1-thread backward = %v", got)
	}
}

func TestZeroSerialIsFree(t *testing.T) {
	m := DefaultMachine()
	l := LayerModel{Name: "x", FwdExtent: 10}
	if m.LayerTime(l, Forward, "", 8) != 0 {
		t.Fatal("zero serial time should model to zero")
	}
}

func TestSequentialExtentNeverSpeedsUp(t *testing.T) {
	m := DefaultMachine()
	l := LayerModel{Name: "data", FwdSerialUS: 500, FwdExtent: 0, Produces: DistSequential}
	for _, p := range []int{2, 8, 16} {
		if got := m.LayerTime(l, Forward, "", p); got != 500 {
			t.Fatalf("sequential layer at %d threads = %v", p, got)
		}
	}
}

func TestBigLayerScalesNearLinearlyToSocket(t *testing.T) {
	m := DefaultMachine()
	l := bigLayer()
	t1 := m.LayerTime(l, Forward, DistPlanes, 1)
	t8 := m.LayerTime(l, Forward, DistPlanes, 8)
	sp := t1 / t8
	if sp < 7 || sp > 8.05 {
		t.Fatalf("big layer speedup at 8 threads = %v, want ~8", sp)
	}
}

func TestTinyLayerDoesNotScale(t *testing.T) {
	// The center of the paper's u-shape: small layers are overhead-bound.
	m := DefaultMachine()
	l := tinyLayer()
	t1 := m.LayerTime(l, Forward, DistSamples, 1)
	t16 := m.LayerTime(l, Forward, DistSamples, 16)
	if sp := t1 / t16; sp > 4 {
		t.Fatalf("tiny layer speedup at 16 threads = %v, should be overhead-bound", sp)
	}
}

func TestLocalityPenaltyOrdering(t *testing.T) {
	m := DefaultMachine()
	l := bigLayer()
	same := m.LayerTime(l, Forward, DistPlanes, 8)
	mismatch := m.LayerTime(l, Forward, DistSamples, 8)
	seq := m.LayerTime(l, Forward, DistSequential, 8)
	if !(same < mismatch && mismatch < seq) {
		t.Fatalf("penalty ordering violated: same %v mismatch %v seq %v", same, mismatch, seq)
	}
}

func TestNUMAKinkBeyondSocket(t *testing.T) {
	// Efficiency (speedup/threads) must drop when crossing 8 threads more
	// than it drops within the socket.
	m := DefaultMachine()
	l := bigLayer()
	t1 := m.LayerTime(l, Forward, DistPlanes, 1)
	eff := func(p int) float64 { return t1 / m.LayerTime(l, Forward, DistPlanes, p) / float64(p) }
	within := eff(4) - eff(8)
	across := eff(8) - eff(12)
	if across <= within {
		t.Fatalf("no NUMA kink: eff drop within socket %v, across %v", within, across)
	}
}

func TestReductionCostGrowsWithThreadsAndParams(t *testing.T) {
	m := DefaultMachine()
	l := bigLayer()
	b4 := m.LayerTime(l, Backward, DistPlanes, 4)
	b16 := m.LayerTime(l, Backward, DistPlanes, 16)
	// More threads = less compute but more merge; with huge params the
	// merge term must be visible: compare against a param-free clone.
	free := l
	free.ParamElems = 0
	f4 := m.LayerTime(free, Backward, DistPlanes, 4)
	f16 := m.LayerTime(free, Backward, DistPlanes, 16)
	if (b4 - f4) >= (b16 - f16) {
		t.Fatalf("merge cost did not grow with threads: %v vs %v", b4-f4, b16-f16)
	}
}

func TestStaticImbalanceCeil(t *testing.T) {
	// extent 100, 16 threads: ceil(100/16)=7 -> compute share 7/100 of
	// serial, not 1/16.
	m := Machine{Cores: 16, CoresPerSocket: 16}
	l := LayerModel{Name: "x", FwdSerialUS: 1000, FwdExtent: 100, Consumes: DistPlanes, Produces: DistPlanes}
	got := m.LayerTime(l, Forward, DistPlanes, 16)
	if got != 70 {
		t.Fatalf("imbalanced compute = %v, want 70", got)
	}
}

func TestNetworkTimeTracksDistributions(t *testing.T) {
	m := DefaultMachine()
	netw := []LayerModel{
		{Name: "data", FwdSerialUS: 100, FwdExtent: 0, Produces: DistSequential},
		{Name: "conv1", FwdSerialUS: 1000, FwdExtent: 1000, Consumes: DistPlanes, Produces: DistPlanes},
		{Name: "pool1", FwdSerialUS: 500, FwdExtent: 1000, Consumes: DistPlanes, Produces: DistPlanes},
	}
	fwd, _, total := m.NetworkTime(netw, 8)
	if total <= 0 {
		t.Fatal("total not positive")
	}
	// conv1 consumes from the sequential data layer -> penalized more
	// than pool1 per unit serial time.
	convEff := 1000 / fwd["conv1"]
	poolEff := 500 / fwd["pool1"]
	if convEff >= poolEff {
		t.Fatalf("conv1 (after data) should scale worse than pool1: %v vs %v", convEff, poolEff)
	}
}

func TestSpeedupMonotoneUpToSocket(t *testing.T) {
	m := DefaultMachine()
	netw := []LayerModel{bigLayer(), tinyLayer()}
	prev := 0.0
	for _, p := range []int{1, 2, 4, 8} {
		sp := m.Speedup(netw, p)
		if sp <= prev {
			t.Fatalf("speedup not monotone: %v at %d threads after %v", sp, p, prev)
		}
		prev = sp
	}
}

func TestGPUTimeAndSpeedup(t *testing.T) {
	netw := []LayerModel{
		{Name: "conv", FwdSerialUS: 1000, BwdSerialUS: 1000},
		{Name: "data", FwdSerialUS: 100}, // unprofiled: runs at CPU speed
	}
	prof := GPUProfile{"conv": {Fwd: 10, Bwd: 5}}
	want := 1000.0/10 + 1000.0/5 + 100
	if got := GPUTime(netw, prof); got != want {
		t.Fatalf("GPUTime = %v, want %v", got, want)
	}
	sp := GPUSpeedup(netw, prof)
	if sp <= 1 || sp >= 21 {
		t.Fatalf("GPUSpeedup = %v implausible", sp)
	}
	if GPUSpeedup(nil, prof) != 0 {
		t.Fatal("empty network should give 0")
	}
}

// Property: modeled time is never negative and never exceeds serial time
// by more than overhead+penalty bounds for any thread count.
func TestQuickModelSane(t *testing.T) {
	m := DefaultMachine()
	f := func(serialRaw uint16, extentRaw uint16, threadsRaw uint8) bool {
		serial := float64(serialRaw%10000) + 1
		extent := int(extentRaw%2000) + 1
		threads := int(threadsRaw%32) + 1
		l := LayerModel{Name: "x", FwdSerialUS: serial, FwdExtent: extent,
			Consumes: DistPlanes, Produces: DistPlanes}
		got := m.LayerTime(l, Forward, DistSequential, threads)
		if got < 0 {
			return false
		}
		// Upper bound: serial * worst penalties + overheads.
		bound := serial*(1+m.SequentialPenalty)*(1+m.NUMAPenalty) +
			m.RegionOverheadUS + m.RegionPerThreadUS*float64(threads) + 1e-9
		return got <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
