// Package simtime is the analytic performance model that stands in for the
// paper's 16-core Xeon E5-2667v2 testbed (DESIGN.md §4.1). The container
// this repository is built in may expose a single core, so raw wall-clock
// cannot exhibit multi-thread speedups; instead, the model computes the
// execution time a P-thread coarse-grain run would take from quantities
// the *real* implementation exposes:
//
//   - the measured single-thread time of each layer phase;
//   - the layer's actual coalesced iteration extent (which determines the
//     static-scheduling work split, including the ceil() imbalance);
//   - the parameter element count (which determines the ordered-reduction
//     serial section of Algorithm 5);
//   - the layer's data-thread distribution class, from which the paper's
//     inter-layer locality penalties follow (§4.3 "Locality between
//     layers", "Sequential memory allocation").
//
// The model's terms are exactly the paper's identified limiting factors:
// work imbalance under static scheduling, parallel-region overhead, the
// ordered gradient reduction, locality loss between layers with different
// data-thread distributions, the sequential data layer, and the NUMA
// penalty beyond one socket. Constants are calibrated once (DefaultMachine)
// against the paper's headline numbers (~6x @ 8 threads, ~8x @ 16).
//
// The model's inputs and its predictions can both be checked against the
// span tracer (package trace, OBSERVABILITY.md): the measured
// single-thread layer times are the driver spans of a sequential-engine
// run, and on a multicore host the model's imbalance and reduction terms
// correspond to the utilization report's imbal column and the red spans
// of a coarse-engine trace.
package simtime

import "math"

// Dist classifies a layer's data-thread distribution — which worker
// touches which part of a blob. Two adjacent layers with equal classes
// preserve locality; a change forces data movement (§4.3).
type Dist string

const (
	// DistSequential marks data produced by one thread (the data layer).
	DistSequential Dist = "sequential"
	// DistPlanes marks work distributed over (sample, channel) planes
	// (convolution outputs, pooling, ReLU).
	DistPlanes Dist = "planes"
	// DistSamples marks work distributed over whole samples (LRN,
	// inner product, softmax/loss).
	DistSamples Dist = "samples"
)

// Phase selects forward or backward.
type Phase int

const (
	// Forward pass.
	Forward Phase = iota
	// Backward pass.
	Backward
)

// LayerModel carries the per-layer quantities the model consumes. Build it
// from a real layer with bench.ModelsFromNet (measured serial times plus
// introspected extents).
type LayerModel struct {
	Name string
	// FwdSerialUS / BwdSerialUS are measured single-thread times.
	FwdSerialUS, BwdSerialUS float64
	// FwdExtent / BwdExtent are the coalesced iteration counts
	// (0 = the phase runs sequentially, e.g. the data layer's load).
	FwdExtent, BwdExtent int
	// ParamElems is the total learnable element count (reduction size).
	ParamElems int
	// Consumes / Produces are the distribution classes of the layer's
	// input and output access patterns.
	Consumes, Produces Dist
}

// Machine holds the calibrated hardware constants.
type Machine struct {
	// Cores is the total core count (the paper's machine: 16).
	Cores int
	// CoresPerSocket bounds one NUMA node (8 on the E5-2667v2 pair).
	CoresPerSocket int
	// RegionOverheadUS is the fork/join cost of one parallel region.
	RegionOverheadUS float64
	// RegionPerThreadUS is the additional per-thread region cost.
	RegionPerThreadUS float64
	// MergePerElemNS is the ordered-reduction cost per parameter element
	// per worker (the serial section of Algorithm 5).
	MergePerElemNS float64
	// ZeroPerElemNS is the per-element cost of zero-initializing one
	// worker's private gradient blob (runs in parallel, once per worker).
	ZeroPerElemNS float64
	// LocalityPenalty is the fractional slowdown, at full thread count,
	// of a layer whose consumed distribution differs from what its
	// predecessor produced.
	LocalityPenalty float64
	// SequentialPenalty is the (stronger) penalty for consuming data that
	// one thread wrote (the data layer case).
	SequentialPenalty float64
	// NUMAPenalty is the extra fractional cost once threads span sockets.
	NUMAPenalty float64
}

// DefaultMachine returns constants calibrated to reproduce the paper's
// overall speedup curve (~6x at 8 threads, ~8x at 16 on MNIST).
func DefaultMachine() Machine {
	return Machine{
		Cores:             16,
		CoresPerSocket:    8,
		RegionOverheadUS:  1.5,
		RegionPerThreadUS: 0.15,
		MergePerElemNS:    0.25,
		ZeroPerElemNS:     0.1,
		LocalityPenalty:   0.45,
		SequentialPenalty: 0.60,
		NUMAPenalty:       1.10,
	}
}

// LayerTime returns the modeled execution time in microseconds of one
// layer phase under `threads` coarse-grain workers, given the distribution
// class `prev` produced by the layer's predecessor.
func (m Machine) LayerTime(l LayerModel, phase Phase, prev Dist, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	serial := l.FwdSerialUS
	extent := l.FwdExtent
	if phase == Backward {
		serial = l.BwdSerialUS
		extent = l.BwdExtent
	}
	if serial == 0 {
		return 0
	}
	// Sequential phases (extent 0) never speed up.
	if extent == 0 || threads == 1 {
		return serial
	}

	// Static scheduling: the slowest rank executes ceil(extent/threads)
	// iterations — the work-imbalance term the paper addresses with loop
	// coalescing (§3.2.1 "Work unbalance").
	chunk := math.Ceil(float64(extent) / float64(threads))
	compute := serial * chunk / float64(extent)

	// Locality: consuming data laid out by a different distribution adds
	// a penalty that grows with thread count (more caches to miss into),
	// saturating at LocalityPenalty/SequentialPenalty (§4.3).
	spread := 1 - 1/float64(threads)
	if prev == DistSequential {
		compute *= 1 + m.SequentialPenalty*spread
	} else if prev != "" && prev != l.Consumes {
		compute *= 1 + m.LocalityPenalty*spread
	}

	// NUMA: crossing the socket boundary adds a cross-node traffic share
	// (§4.2.1: "when crossing the 8 thread border, NUMA considerations
	// come into play").
	if m.CoresPerSocket > 0 && threads > m.CoresPerSocket {
		over := float64(threads-m.CoresPerSocket) / float64(threads)
		compute *= 1 + m.NUMAPenalty*over
	}

	// Parallel region fork/join.
	total := compute + m.RegionOverheadUS + m.RegionPerThreadUS*float64(threads)

	// Backward of parameterized layers: private-gradient zeroing (in
	// parallel, one blob per rank) plus the ordered merge (serial in rank
	// order) — Algorithm 5's privatization and reduction.
	if phase == Backward && l.ParamElems > 0 && threads > 1 {
		total += float64(l.ParamElems) * m.ZeroPerElemNS / 1000
		total += float64(l.ParamElems) * float64(threads) * m.MergePerElemNS / 1000
	}
	return total
}

// NetworkTime evaluates a whole network: it walks the layers in order
// (forward) and reverse (backward), tracks the produced distribution to
// apply locality penalties, and returns per-layer times plus the total.
// The returned maps are keyed by layer name.
func (m Machine) NetworkTime(layersIn []LayerModel, threads int) (fwd, bwd map[string]float64, total float64) {
	fwd = make(map[string]float64, len(layersIn))
	bwd = make(map[string]float64, len(layersIn))
	prev := Dist("")
	for _, l := range layersIn {
		t := m.LayerTime(l, Forward, prev, threads)
		fwd[l.Name] = t
		total += t
		prev = l.Produces
	}
	// Backward: the "previous" layer in execution order is the successor
	// in the network, whose backward writes the diffs this layer reads.
	prev = ""
	for i := len(layersIn) - 1; i >= 0; i-- {
		l := layersIn[i]
		t := m.LayerTime(l, Backward, prev, threads)
		bwd[l.Name] = t
		total += t
		if l.BwdExtent > 0 {
			prev = l.Consumes // backward writes follow the consumed layout
		}
	}
	return fwd, bwd, total
}

// Speedup returns the modeled overall speedup of `threads` workers over
// the serial execution for the given network.
func (m Machine) Speedup(layersIn []LayerModel, threads int) float64 {
	_, _, t1 := m.NetworkTime(layersIn, 1)
	_, _, tp := m.NetworkTime(layersIn, threads)
	if tp == 0 {
		return 0
	}
	return t1 / tp
}

// GPUKind selects one of the two fine-grain GPU configurations of the
// paper's evaluation.
type GPUKind int

const (
	// PlainGPU is Caffe's native GPU implementation of every layer.
	PlainGPU GPUKind = iota
	// CuDNNGPU replaces convolution and pooling kernels with cuDNN.
	CuDNNGPU
)

// GPUProfile maps layer name -> per-phase speedup over the serial CPU
// execution. The values are *calibration constants transcribed from the
// paper's Figures 6 and 9* (see bench.MNISTGPUProfile/CIFARGPUProfile);
// they are not measured here — the K40 is hardware this reproduction
// substitutes (DESIGN.md §4.2).
type GPUProfile map[string]PhaseSpeedup

// PhaseSpeedup holds the forward/backward speedup factors of one layer.
type PhaseSpeedup struct {
	Fwd, Bwd float64
}

// GPUTime returns the modeled total iteration time under a GPU profile:
// every layer's serial time divided by its calibrated speedup, with
// unprofiled layers (e.g. the data layer) running at CPU speed.
func GPUTime(layersIn []LayerModel, prof GPUProfile) float64 {
	var total float64
	for _, l := range layersIn {
		sp, ok := prof[l.Name]
		if !ok || sp.Fwd <= 0 {
			total += l.FwdSerialUS
		} else {
			total += l.FwdSerialUS / sp.Fwd
		}
		if !ok || sp.Bwd <= 0 {
			total += l.BwdSerialUS
		} else {
			total += l.BwdSerialUS / sp.Bwd
		}
	}
	return total
}

// GPUSpeedup returns the modeled overall speedup of a GPU profile over
// the serial CPU execution.
func GPUSpeedup(layersIn []LayerModel, prof GPUProfile) float64 {
	var serial float64
	for _, l := range layersIn {
		serial += l.FwdSerialUS + l.BwdSerialUS
	}
	t := GPUTime(layersIn, prof)
	if t == 0 {
		return 0
	}
	return serial / t
}
