// Package guard is the training health monitor: the runtime leg of the
// repository's robustness story (ROBUSTNESS.md). The paper's Algorithm 1
// guarantees that parallel training converges exactly like the sequential
// run — but nothing in the algorithm protects a run from *numerical*
// failure: a poisoned batch, an exploding gradient, a NaN that silently
// propagates into every coefficient. The guard hooks into the solver's
// pre-update point (after forward/backward, before updateCoefficients)
// and, every CheckEvery iterations, scans the loss, all parameter
// gradients and all parameters for NaN/Inf and the gradient's global L2
// norm — in parallel, over its own par.Pool team, with zero per-iteration
// allocation (enforced by dnnlint's hotalloc analyzer, which treats
// Monitor's Check/scan methods as hot code).
//
// When a check fails, the configured Policy decides the recovery:
//
//   - Halt stops training immediately (Err reports why);
//   - SkipBatch discards the poisoned gradient and moves on — the update
//     is vetoed, the batch skipped;
//   - Rollback restores the newest valid checkpoint (via the Restore
//     callback, typically snapshot.LoadLatestValid), scales the learning
//     rate down by LRBackoff, and re-trains from there.
//
// Every decision is emitted as a PhaseGuard trace span, so recoveries are
// visible on the same Chrome-trace timeline as the compute they protect.
package guard

import (
	"fmt"
	"math"
	"time"

	"coarsegrain/internal/blob"
	"coarsegrain/internal/par"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/trace"
)

// Policy selects the reaction to a failed health check.
type Policy int

const (
	// Halt stops training at the first fault.
	Halt Policy = iota
	// SkipBatch discards the faulty gradient and advances to the next
	// batch without updating parameters.
	SkipBatch
	// Rollback restores the last valid checkpoint and backs the learning
	// rate off before continuing.
	Rollback
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SkipBatch:
		return "skip"
	case Rollback:
		return "rollback"
	default:
		return "halt"
	}
}

// ParsePolicy converts a -guard-policy flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "halt":
		return Halt, nil
	case "skip", "skip-batch":
		return SkipBatch, nil
	case "rollback":
		return Rollback, nil
	}
	return Halt, fmt.Errorf("guard: unknown policy %q (halt|skip|rollback)", s)
}

// Config tunes the monitor.
type Config struct {
	// Policy is the reaction to a fault (default Halt).
	Policy Policy
	// MaxGradNorm faults the iteration when the global L2 norm of the
	// gradient exceeds it. 0 disables the norm check; NaN/Inf scanning is
	// always on.
	MaxGradNorm float64
	// LRBackoff scales the learning rate after each rollback (default
	// 0.5; must be in (0, 1]).
	LRBackoff float32
	// CheckEvery runs the scan every N iterations (default 1).
	CheckEvery int
}

// Verdict is the outcome of one health check.
type Verdict struct {
	Iter      int
	Loss      float64
	GradNorm  float64
	BadGrads  int // non-finite gradient values
	BadParams int // non-finite parameter values
	LossBad   bool
	// Reason is empty when the iteration is healthy.
	Reason string
}

// Stats counts the monitor's activity.
type Stats struct {
	Checks    int
	Faults    int
	Skips     int
	Rollbacks int
	Halts     int
	// LastRollback is the checkpoint path of the most recent rollback.
	LastRollback string
	// LastVerdict is the most recent faulty verdict.
	LastVerdict Verdict
}

// RestoreFunc rolls the solver back to the last durable good state,
// returning a description of what was restored (a checkpoint path).
type RestoreFunc func(*solver.Solver) (string, error)

// Monitor is a solver pre-update hook performing the health checks.
// Not safe for concurrent use; it runs on the driver goroutine.
type Monitor struct {
	cfg     Config
	s       *solver.Solver
	pool    *par.Pool
	ownPool bool
	tracer  *trace.Tracer
	restore RestoreFunc

	// cur is the slice being scanned; scanBody is allocated once so the
	// per-iteration scan closes over nothing new.
	cur      []float32
	scanBody func(lo, hi, rank int)
	// sumsq and bad are per-rank partials; writes are rank-indexed, so
	// the parallel scan is race-free by the privatization contract.
	sumsq []float64
	bad   []int64

	stats Stats
	err   error
}

// New creates a monitor for the solver. pool supplies the worker team for
// the parallel scans; nil means a private single-worker (inline) team.
// Close releases only a team the monitor created itself.
func New(cfg Config, s *solver.Solver, pool *par.Pool) (*Monitor, error) {
	if s == nil {
		return nil, fmt.Errorf("guard: nil solver")
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	if cfg.LRBackoff == 0 {
		cfg.LRBackoff = 0.5
	}
	if cfg.LRBackoff < 0 || cfg.LRBackoff > 1 {
		return nil, fmt.Errorf("guard: LRBackoff must be in (0,1], got %g", cfg.LRBackoff)
	}
	if cfg.MaxGradNorm < 0 || math.IsNaN(cfg.MaxGradNorm) {
		return nil, fmt.Errorf("guard: MaxGradNorm must be >= 0, got %g", cfg.MaxGradNorm)
	}
	m := &Monitor{cfg: cfg, s: s, pool: pool}
	if m.pool == nil {
		m.pool = par.NewPool(1)
		m.ownPool = true
	}
	p := m.pool.Workers()
	m.sumsq = make([]float64, p)
	m.bad = make([]int64, p)
	m.scanBody = func(lo, hi, rank int) {
		xs := m.cur
		var ss float64
		var nb int64
		for j := lo; j < hi; j++ {
			x := xs[j]
			// x != x catches NaN; the range checks catch ±Inf (which
			// compare outside every finite float32).
			if x != x || x > math.MaxFloat32 || x < -math.MaxFloat32 {
				nb++
				continue
			}
			ss += float64(x) * float64(x)
		}
		m.sumsq[rank] += ss
		m.bad[rank] += nb
	}
	return m, nil
}

// SetTracer attaches a span tracer; each check's scan+decision is
// recorded as one PhaseGuard span on the driver rank.
func (m *Monitor) SetTracer(t *trace.Tracer) { m.tracer = t }

// SetRestore installs the rollback target (required for the Rollback
// policy; a Rollback fault without one degrades to Halt).
func (m *Monitor) SetRestore(f RestoreFunc) { m.restore = f }

// Attach installs the monitor as the solver's pre-update hook. Use
// Check directly to compose with other hooks (e.g. fault injectors).
func (m *Monitor) Attach() { m.s.SetPreUpdate(m.Check) }

// Stats returns the activity counters so far.
func (m *Monitor) Stats() Stats { return m.stats }

// Err reports why the monitor halted training, or nil.
func (m *Monitor) Err() error { return m.err }

// Close releases the monitor's private worker team, if it created one.
func (m *Monitor) Close() {
	if m.ownPool {
		m.pool.Close()
	}
}

// Check is the solver pre-update hook: it scans the just-computed state
// and returns the action the configured policy dictates. Healthy
// iterations return ActProceed.
func (m *Monitor) Check(iter int, loss float64) solver.PreUpdateAction {
	if m.err != nil {
		return solver.ActHalt
	}
	if iter%m.cfg.CheckEvery != 0 {
		return solver.ActProceed
	}
	tr := m.tracer
	var start time.Time
	if tr.Enabled() {
		start = time.Now()
	}
	m.stats.Checks++
	v := m.verdict(iter, loss)
	act := solver.ActProceed
	name := "guard"
	if v.Reason != "" {
		m.stats.Faults++
		m.stats.LastVerdict = v
		act, name = m.react(&v)
	}
	if tr.Enabled() {
		tr.Record(trace.Span{
			Name: name, Phase: trace.PhaseGuard, Rank: trace.RankDriver, Band: -1,
			Lo: iter, Hi: iter + 1,
			Start: tr.Stamp(start), Dur: time.Since(start),
		})
	}
	return act
}

// verdict runs the scans and classifies the iteration.
func (m *Monitor) verdict(iter int, loss float64) Verdict {
	v := Verdict{Iter: iter, Loss: loss}
	v.LossBad = math.IsNaN(loss) || math.IsInf(loss, 0)
	params := m.s.Net().Params()
	sumsq, badG := m.scanParams(params, true)
	v.GradNorm = math.Sqrt(sumsq)
	v.BadGrads = badG
	_, badP := m.scanParams(params, false)
	v.BadParams = badP
	switch {
	case v.LossBad:
		v.Reason = "non-finite loss"
	case v.BadGrads > 0:
		v.Reason = "non-finite gradient"
	case v.BadParams > 0:
		v.Reason = "non-finite parameter"
	case m.cfg.MaxGradNorm > 0 && v.GradNorm > m.cfg.MaxGradNorm:
		v.Reason = "gradient norm explosion"
	}
	return v
}

// scanParams scans every blob's diff (diff=true) or data slice, returning
// the float64 sum of squares of the finite values and the count of
// non-finite ones. The per-rank partials are merged in rank order, so the
// result is deterministic for a fixed team size.
func (m *Monitor) scanParams(blobs []*blob.Blob, diff bool) (sumsq float64, bad int) {
	p := m.pool.Workers()
	for r := 0; r < p; r++ {
		m.sumsq[r] = 0
		m.bad[r] = 0
	}
	for _, b := range blobs {
		if diff {
			m.cur = b.Diff()
		} else {
			m.cur = b.Data()
		}
		m.pool.For(len(m.cur), m.scanBody)
	}
	m.cur = nil
	for r := 0; r < p; r++ {
		sumsq += m.sumsq[r]
		bad += int(m.bad[r])
	}
	return sumsq, bad
}

// react applies the policy to a faulty verdict, returning the solver
// action and the trace-span name recording the decision.
func (m *Monitor) react(v *Verdict) (solver.PreUpdateAction, string) {
	switch m.cfg.Policy {
	case SkipBatch:
		m.stats.Skips++
		return solver.ActSkip, "guard:skip"
	case Rollback:
		if m.restore != nil {
			path, err := m.restore(m.s)
			if err == nil {
				m.stats.Rollbacks++
				m.stats.LastRollback = path
				m.s.ScaleLR(m.cfg.LRBackoff)
				return solver.ActRollback, "guard:rollback"
			}
			m.err = fmt.Errorf("guard: %s at iteration %d and rollback failed: %w", v.Reason, v.Iter, err)
			m.stats.Halts++
			return solver.ActHalt, "guard:halt"
		}
		m.err = fmt.Errorf("guard: %s at iteration %d and no rollback target configured", v.Reason, v.Iter)
		m.stats.Halts++
		return solver.ActHalt, "guard:halt"
	}
	m.stats.Halts++
	m.err = fmt.Errorf("guard: halting: %s at iteration %d (loss %g, grad norm %g, %d bad gradient / %d bad parameter values)",
		v.Reason, v.Iter, v.Loss, v.GradNorm, v.BadGrads, v.BadParams)
	return solver.ActHalt, "guard:halt"
}
