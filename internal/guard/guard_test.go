package guard_test

import (
	"math"
	"strings"
	"testing"

	"coarsegrain/internal/data"
	"coarsegrain/internal/guard"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/par"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/snapshot"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

// microSource is a 4-sample, 2-class, 4-pixel dataset: one batch per epoch
// at batch size 4, so the data cursor is always at 0 when an iteration
// starts and a rollback's resumed trajectory is bit-identical.
type microSource struct{}

func (microSource) Len() int           { return 4 }
func (microSource) SampleShape() []int { return []int{1, 2, 2} }
func (microSource) Classes() int       { return 2 }
func (microSource) Read(i int, out []float32) int {
	for j := range out {
		out[j] = float32(i*len(out)+j) / 16
	}
	return i % 2
}

func tinySolver(t testing.TB, seed uint64) *solver.Solver {
	t.Helper()
	d, err := layers.NewData("data", microSource{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := layers.NewInnerProduct("ip", layers.IPConfig{NumOutput: 2, RNG: rng.New(seed, 0)})
	if err != nil {
		t.Fatal(err)
	}
	n, err := net.New([]net.LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: ip, Bottoms: []string{"data"}, Tops: []string{"ip"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip", "label"}, Tops: []string{"loss"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(solver.Config{Type: solver.SGD, BaseLR: 0.1, Momentum: 0.9}, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// poisonDiff writes a NaN into the first parameter gradient.
func poisonDiff(s *solver.Solver) {
	s.Net().Params()[0].Diff()[0] = float32(math.NaN())
}

func TestHealthyRunIsUnperturbed(t *testing.T) {
	plain := tinySolver(t, 1)
	ref := plain.Step(8)

	guarded := tinySolver(t, 1)
	mon, err := guard.New(guard.Config{Policy: guard.Halt, MaxGradNorm: 1e9}, guarded, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Attach()
	got := guarded.Step(8)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("guard changed the loss trajectory at %d: %v vs %v", i, got[i], ref[i])
		}
	}
	st := mon.Stats()
	if st.Checks != 8 || st.Faults != 0 {
		t.Fatalf("stats = %+v, want 8 clean checks", st)
	}
	if mon.Err() != nil {
		t.Fatalf("healthy run reported error: %v", mon.Err())
	}
}

func TestHaltOnNaNLoss(t *testing.T) {
	s := tinySolver(t, 2)
	mon, err := guard.New(guard.Config{Policy: guard.Halt}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if act := mon.Check(0, math.NaN()); act != solver.ActHalt {
		t.Fatalf("NaN loss produced action %v, want halt", act)
	}
	if mon.Err() == nil || !strings.Contains(mon.Err().Error(), "non-finite loss") {
		t.Fatalf("Err = %v", mon.Err())
	}
	// A halted monitor stays halted.
	if act := mon.Check(1, 0.5); act != solver.ActHalt {
		t.Fatal("monitor forgot it halted")
	}
}

func TestHaltOnPoisonedGradient(t *testing.T) {
	s := tinySolver(t, 3)
	pool := par.NewPool(4)
	defer pool.Close()
	mon, err := guard.New(guard.Config{Policy: guard.Halt}, s, pool)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPreUpdate(func(iter int, loss float64) solver.PreUpdateAction {
		if iter == 2 {
			poisonDiff(s)
		}
		return mon.Check(iter, loss)
	})
	losses := s.Step(10)
	if len(losses) != 3 {
		t.Fatalf("training ran %d iterations past the poison, want halt at 3", len(losses))
	}
	if s.Iter() != 2 {
		t.Fatalf("iter = %d: the poisoned update must not be applied", s.Iter())
	}
	if mon.Err() == nil || !strings.Contains(mon.Err().Error(), "non-finite gradient") {
		t.Fatalf("Err = %v", mon.Err())
	}
	st := mon.Stats()
	if st.Faults != 1 || st.Halts != 1 || st.LastVerdict.BadGrads == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHaltOnNonFiniteParameter(t *testing.T) {
	s := tinySolver(t, 4)
	mon, err := guard.New(guard.Config{Policy: guard.Halt}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	s.Net().Params()[0].Data()[1] = float32(math.Inf(1))
	if act := mon.Check(0, 0.7); act != solver.ActHalt {
		t.Fatalf("action = %v", act)
	}
	if !strings.Contains(mon.Err().Error(), "non-finite parameter") {
		t.Fatalf("Err = %v", mon.Err())
	}
}

func TestHaltOnGradientNormExplosion(t *testing.T) {
	s := tinySolver(t, 5)
	mon, err := guard.New(guard.Config{Policy: guard.Halt, MaxGradNorm: 1e-9}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	for i := range s.Net().Params()[0].Diff() {
		s.Net().Params()[0].Diff()[i] = 1
	}
	if act := mon.Check(0, 0.7); act != solver.ActHalt {
		t.Fatalf("action = %v", act)
	}
	if !strings.Contains(mon.Err().Error(), "gradient norm explosion") {
		t.Fatalf("Err = %v", mon.Err())
	}
	if v := mon.Stats().LastVerdict; v.GradNorm <= 0 {
		t.Fatalf("verdict did not record the norm: %+v", v)
	}
}

func TestSkipBatchDiscardsUpdateAndContinues(t *testing.T) {
	s := tinySolver(t, 6)
	mon, err := guard.New(guard.Config{Policy: guard.SkipBatch}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	s.SetPreUpdate(func(iter int, loss float64) solver.PreUpdateAction {
		if iter == 3 {
			poisonDiff(s)
		}
		return mon.Check(iter, loss)
	})
	losses := s.Step(8)
	if len(losses) != 8 {
		t.Fatalf("skip policy stopped training: %d iterations", len(losses))
	}
	if s.Iter() != 8 {
		t.Fatalf("iter = %d, want 8 (skipped batches still advance)", s.Iter())
	}
	if st := mon.Stats(); st.Skips != 1 || st.Faults != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if mon.Err() != nil {
		t.Fatalf("skip policy set Err: %v", mon.Err())
	}
	// The skipped update really was discarded: parameters stay finite.
	for _, p := range s.Net().Params() {
		for _, x := range p.Data() {
			if x != x {
				t.Fatal("NaN leaked into parameters through a skipped batch")
			}
		}
	}
}

func TestRollbackRestoresCheckpointAndBacksOffLR(t *testing.T) {
	dir := t.TempDir()
	s := tinySolver(t, 7)
	s.Step(2)
	if _, err := snapshot.SaveCheckpoint(dir, s, 0); err != nil {
		t.Fatal(err)
	}
	mon, err := guard.New(guard.Config{Policy: guard.Rollback, LRBackoff: 0.5}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SetRestore(func(sv *solver.Solver) (string, error) {
		path, _, err := snapshot.LoadLatestValid(dir, sv)
		return path, err
	})
	s.SetPreUpdate(func(iter int, loss float64) solver.PreUpdateAction {
		if iter == 4 {
			poisonDiff(s)
		}
		return mon.Check(iter, loss)
	})
	lr0 := s.LearningRate()
	// Passes from iter 2: 2,3,4(rollback->2),3,4(rollback->2) = 6 passes.
	losses := s.Step(6)
	if len(losses) != 6 {
		t.Fatalf("rollback policy stopped training: %d passes", len(losses))
	}
	st := mon.Stats()
	if st.Rollbacks != 2 {
		t.Fatalf("stats = %+v, want 2 rollbacks (poison refires at iter 4)", st)
	}
	if st.LastRollback != snapshot.CheckpointPath(dir, 2) {
		t.Fatalf("LastRollback = %q", st.LastRollback)
	}
	if s.Iter() != 2 {
		t.Fatalf("iter = %d, want 2 (restored by the second rollback)", s.Iter())
	}
	if got, want := s.LearningRate(), lr0*0.25; got != want {
		t.Fatalf("LR = %g after two rollbacks, want %g", got, want)
	}
	if mon.Err() != nil {
		t.Fatalf("rollback set Err: %v", mon.Err())
	}
}

func TestRollbackWithoutRestoreDegradesToHalt(t *testing.T) {
	s := tinySolver(t, 8)
	mon, err := guard.New(guard.Config{Policy: guard.Rollback}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	poisonDiff(s)
	if act := mon.Check(0, 0.7); act != solver.ActHalt {
		t.Fatalf("action = %v", act)
	}
	if mon.Err() == nil || !strings.Contains(mon.Err().Error(), "no rollback target") {
		t.Fatalf("Err = %v", mon.Err())
	}
}

func TestCheckEveryGatesScans(t *testing.T) {
	s := tinySolver(t, 9)
	mon, err := guard.New(guard.Config{Policy: guard.Halt, CheckEvery: 3}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.Attach()
	s.Step(6) // iters 0..5: checks at 0 and 3
	if st := mon.Stats(); st.Checks != 2 {
		t.Fatalf("CheckEvery=3 over 6 iterations ran %d checks, want 2", st.Checks)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]guard.Policy{
		"halt": guard.Halt, "skip": guard.SkipBatch,
		"skip-batch": guard.SkipBatch, "rollback": guard.Rollback,
	} {
		got, err := guard.ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := guard.ParsePolicy("retry"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	s := tinySolver(t, 10)
	if _, err := guard.New(guard.Config{LRBackoff: 1.5}, s, nil); err == nil {
		t.Error("LRBackoff > 1 accepted")
	}
	if _, err := guard.New(guard.Config{MaxGradNorm: math.NaN()}, s, nil); err == nil {
		t.Error("NaN MaxGradNorm accepted")
	}
	if _, err := guard.New(guard.Config{}, nil, nil); err == nil {
		t.Error("nil solver accepted")
	}
}

// lenetSolver builds the benchmark workload: LeNet on synthetic MNIST,
// matching the acceptance criterion's "guard overhead <= 2% on a LeNet
// iteration".
func lenetSolver(b *testing.B) *solver.Solver {
	b.Helper()
	src := data.NewSyntheticMNIST(64, 11)
	specs, err := zoo.LeNet(src, zoo.Options{BatchSize: 16, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	n, err := net.New(specs, nil)
	if err != nil {
		b.Fatal(err)
	}
	s, err := solver.New(zoo.LeNetSolver(), n)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkLeNetIteration(b *testing.B) {
	s := lenetSolver(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(1)
	}
}

func BenchmarkLeNetIterationGuarded(b *testing.B) {
	s := lenetSolver(b)
	pool := par.NewPool(4)
	defer pool.Close()
	mon, err := guard.New(guard.Config{Policy: guard.Halt, MaxGradNorm: 1e12}, s, pool)
	if err != nil {
		b.Fatal(err)
	}
	mon.Attach()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(1)
	}
	if mon.Err() != nil {
		b.Fatal(mon.Err())
	}
}

// BenchmarkGuardCheck isolates the scan itself (no training pass), the
// number the <= 2% overhead budget is spent on.
func BenchmarkGuardCheck(b *testing.B) {
	s := lenetSolver(b)
	s.Step(1) // populate gradients
	pool := par.NewPool(4)
	defer pool.Close()
	mon, err := guard.New(guard.Config{Policy: guard.Halt, MaxGradNorm: 1e12}, s, pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if act := mon.Check(0, 0.5); act != solver.ActProceed {
			b.Fatal("healthy check vetoed")
		}
	}
}
