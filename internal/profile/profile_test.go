package profile

import (
	"strings"
	"testing"
	"time"
)

func TestAddAndStats(t *testing.T) {
	r := NewRecorder()
	r.Add("conv1", Forward, 10*time.Microsecond)
	r.Add("conv1", Forward, 30*time.Microsecond)
	r.Add("conv1", Backward, 100*time.Microsecond)
	s := r.Stat("conv1", Forward)
	if s.Count != 2 || s.Total != 40*time.Microsecond {
		t.Fatalf("stat %+v", s)
	}
	if s.Min != 10*time.Microsecond || s.Max != 30*time.Microsecond {
		t.Fatalf("min/max %+v", s)
	}
	if r.Mean("conv1", Forward) != 20*time.Microsecond {
		t.Fatalf("mean %v", r.Mean("conv1", Forward))
	}
	if r.Mean("conv1", Backward) != 100*time.Microsecond {
		t.Fatal("backward mean wrong")
	}
}

func TestMissingIsZero(t *testing.T) {
	r := NewRecorder()
	if r.Mean("nope", Forward) != 0 {
		t.Fatal("missing layer should be zero")
	}
	if s := r.Stat("nope", Backward); s.Count != 0 {
		t.Fatal("missing stat should be zero value")
	}
	if (Stat{}).Mean() != 0 {
		t.Fatal("zero stat mean should be 0")
	}
}

func TestLayerOrderIsFirstSeen(t *testing.T) {
	r := NewRecorder()
	r.Add("b", Forward, time.Microsecond)
	r.Add("a", Forward, time.Microsecond)
	r.Add("b", Backward, time.Microsecond)
	got := r.Layers()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("order %v", got)
	}
}

func TestTotalMean(t *testing.T) {
	r := NewRecorder()
	r.Add("a", Forward, 10*time.Microsecond)
	r.Add("a", Backward, 20*time.Microsecond)
	r.Add("b", Forward, 5*time.Microsecond)
	if r.TotalMean() != 35*time.Microsecond {
		t.Fatalf("total %v", r.TotalMean())
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Add("a", Forward, time.Microsecond)
	r.Reset()
	if len(r.Layers()) != 0 || r.TotalMean() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTableContainsLayersAndWeights(t *testing.T) {
	r := NewRecorder()
	r.Add("conv1", Forward, 75*time.Microsecond)
	r.Add("conv1", Backward, 0)
	r.Add("loss", Forward, 25*time.Microsecond)
	tbl := r.Table()
	for _, want := range []string{"conv1", "loss", "75.0", "TOTAL"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	if !strings.Contains(tbl, "75.0%") {
		t.Fatalf("relative weight missing:\n%s", tbl)
	}
}

func TestSortedLayersByCost(t *testing.T) {
	r := NewRecorder()
	r.Add("small", Forward, time.Microsecond)
	r.Add("big", Forward, 100*time.Microsecond)
	r.Add("mid", Backward, 10*time.Microsecond)
	got := r.SortedLayersByCost()
	if got[0] != "big" || got[1] != "mid" || got[2] != "small" {
		t.Fatalf("sorted %v", got)
	}
}

func TestPhaseString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("phase strings wrong")
	}
}
