package profile

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestAddAndStats(t *testing.T) {
	r := NewRecorder()
	r.Add("conv1", Forward, 10*time.Microsecond)
	r.Add("conv1", Forward, 30*time.Microsecond)
	r.Add("conv1", Backward, 100*time.Microsecond)
	s := r.Stat("conv1", Forward)
	if s.Count != 2 || s.Total != 40*time.Microsecond {
		t.Fatalf("stat %+v", s)
	}
	if s.Min != 10*time.Microsecond || s.Max != 30*time.Microsecond {
		t.Fatalf("min/max %+v", s)
	}
	if r.Mean("conv1", Forward) != 20*time.Microsecond {
		t.Fatalf("mean %v", r.Mean("conv1", Forward))
	}
	if r.Mean("conv1", Backward) != 100*time.Microsecond {
		t.Fatal("backward mean wrong")
	}
}

func TestMissingIsZero(t *testing.T) {
	r := NewRecorder()
	if r.Mean("nope", Forward) != 0 {
		t.Fatal("missing layer should be zero")
	}
	if s := r.Stat("nope", Backward); s.Count != 0 {
		t.Fatal("missing stat should be zero value")
	}
	if (Stat{}).Mean() != 0 {
		t.Fatal("zero stat mean should be 0")
	}
}

func TestLayerOrderIsFirstSeen(t *testing.T) {
	r := NewRecorder()
	r.Add("b", Forward, time.Microsecond)
	r.Add("a", Forward, time.Microsecond)
	r.Add("b", Backward, time.Microsecond)
	got := r.Layers()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("order %v", got)
	}
}

func TestTotalMean(t *testing.T) {
	r := NewRecorder()
	r.Add("a", Forward, 10*time.Microsecond)
	r.Add("a", Backward, 20*time.Microsecond)
	r.Add("b", Forward, 5*time.Microsecond)
	if r.TotalMean() != 35*time.Microsecond {
		t.Fatalf("total %v", r.TotalMean())
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Add("a", Forward, time.Microsecond)
	r.Reset()
	if len(r.Layers()) != 0 || r.TotalMean() != 0 {
		t.Fatal("reset incomplete")
	}
	// Re-adding after a reset re-establishes first-seen order from
	// scratch (the membership index must be cleared too).
	r.Add("z", Forward, time.Microsecond)
	r.Add("a", Forward, time.Microsecond)
	if got := r.Layers(); len(got) != 2 || got[0] != "z" || got[1] != "a" {
		t.Fatalf("order after reset %v", got)
	}
}

// TestManyLayersFirstSeenOrder covers the membership-map path that
// replaced the linear first-seen scan: order stays stable and duplicate
// names are never re-appended, regardless of layer count.
func TestManyLayersFirstSeenOrder(t *testing.T) {
	r := NewRecorder()
	const n = 500
	for i := 0; i < n; i++ {
		name := "layer" + string(rune('a'+i%26)) + fmt.Sprint(i)
		r.Add(name, Forward, time.Microsecond)
		r.Add(name, Backward, time.Microsecond) // same layer, other phase
	}
	if got := len(r.Layers()); got != n {
		t.Fatalf("got %d layers, want %d", got, n)
	}
	if r.Layers()[0] != "layera0" || r.Layers()[n-1] != "layer"+string(rune('a'+(n-1)%26))+fmt.Sprint(n-1) {
		t.Fatalf("order endpoints wrong: %v ... %v", r.Layers()[0], r.Layers()[n-1])
	}
}

func TestTableContainsLayersAndWeights(t *testing.T) {
	r := NewRecorder()
	r.Add("conv1", Forward, 75*time.Microsecond)
	r.Add("conv1", Backward, 0)
	r.Add("loss", Forward, 25*time.Microsecond)
	tbl := r.Table()
	for _, want := range []string{"conv1", "loss", "75.0", "TOTAL"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	if !strings.Contains(tbl, "75.0%") {
		t.Fatalf("relative weight missing:\n%s", tbl)
	}
}

func TestSortedLayersByCost(t *testing.T) {
	r := NewRecorder()
	r.Add("small", Forward, time.Microsecond)
	r.Add("big", Forward, 100*time.Microsecond)
	r.Add("mid", Backward, 10*time.Microsecond)
	got := r.SortedLayersByCost()
	if got[0] != "big" || got[1] != "mid" || got[2] != "small" {
		t.Fatalf("sorted %v", got)
	}
}

func TestPhaseString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("phase strings wrong")
	}
}
