// Package profile implements the per-layer timing instrumentation behind
// the paper's evaluation methodology: every figure in §4 is built from
// per-layer forward/backward execution times under different thread
// counts. A Recorder accumulates wall-clock durations per (layer, phase)
// and reports means over the recorded iterations.
//
// The span-based tracer (package trace) subsumes this aggregate view —
// trace.LayerRecorder folds a span snapshot back into a Recorder, so the
// table format rendered here remains the one canonical per-layer report
// (see OBSERVABILITY.md for when to reach for which instrument).
package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phase distinguishes the two passes of a layer.
type Phase int

const (
	// Forward is the forward pass.
	Forward Phase = iota
	// Backward is the backward pass.
	Backward
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p == Forward {
		return "forward"
	}
	return "backward"
}

type key struct {
	layer string
	phase Phase
}

// Stat aggregates the durations recorded for one (layer, phase).
type Stat struct {
	Count    int
	Total    time.Duration
	Min, Max time.Duration
}

// Mean returns the average duration (0 when nothing was recorded).
func (s Stat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Recorder accumulates per-layer, per-phase timings. It is not safe for
// concurrent use; the net records on the training goroutine only.
type Recorder struct {
	stats map[key]*Stat
	order []string            // layer names in first-seen order
	seen  map[string]struct{} // membership index over order
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{stats: make(map[key]*Stat), seen: make(map[string]struct{})}
}

// Add records one duration.
func (r *Recorder) Add(layer string, phase Phase, d time.Duration) {
	k := key{layer, phase}
	s, ok := r.stats[k]
	if !ok {
		s = &Stat{Min: d, Max: d}
		r.stats[k] = s
		if _, dup := r.seen[layer]; !dup {
			r.seen[layer] = struct{}{}
			//dnnlint:ignore hotalloc first-sight registration, bounded by layer count; steady state never reaches here
			r.order = append(r.order, layer)
		}
	}
	s.Count++
	s.Total += d
	if d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
}

// Reset discards all recorded data.
func (r *Recorder) Reset() {
	r.stats = make(map[key]*Stat)
	r.order = r.order[:0]
	r.seen = make(map[string]struct{})
}

// Layers returns layer names in first-seen (network) order.
func (r *Recorder) Layers() []string { return r.order }

// Stat returns the aggregate for (layer, phase); the zero Stat if absent.
func (r *Recorder) Stat(layer string, phase Phase) Stat {
	if s, ok := r.stats[key{layer, phase}]; ok {
		return *s
	}
	return Stat{}
}

// Mean returns the mean duration for (layer, phase).
func (r *Recorder) Mean(layer string, phase Phase) time.Duration {
	return r.Stat(layer, phase).Mean()
}

// TotalMean returns the sum over all layers and phases of mean durations —
// the mean cost of one full training iteration.
func (r *Recorder) TotalMean() time.Duration {
	var t time.Duration
	for _, l := range r.order {
		t += r.Mean(l, Forward) + r.Mean(l, Backward)
	}
	return t
}

// Table renders a fixed-width per-layer table of mean microseconds, in the
// style of the paper's Figures 4 and 7 (absolute layer times plus relative
// weight of the total).
func (r *Recorder) Table() string {
	var b strings.Builder
	total := r.TotalMean()
	fmt.Fprintf(&b, "%-12s %14s %14s %8s\n", "layer", "fwd (us)", "bwd (us)", "weight")
	for _, l := range r.order {
		f := r.Mean(l, Forward)
		w := r.Mean(l, Backward)
		rel := 0.0
		if total > 0 {
			rel = float64(f+w) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-12s %14.1f %14.1f %7.1f%%\n",
			l, float64(f.Microseconds()), float64(w.Microseconds()), rel)
	}
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "TOTAL", fmt.Sprintf("%.1f", float64(total.Microseconds())), "")
	return b.String()
}

// SortedLayersByCost returns layer names sorted by descending mean
// forward+backward cost — used to find the dominating layers (the paper's
// observation that conv+pool account for ~80% of the time).
func (r *Recorder) SortedLayersByCost() []string {
	out := append([]string(nil), r.order...)
	sort.SliceStable(out, func(i, j int) bool {
		ci := r.Mean(out[i], Forward) + r.Mean(out[i], Backward)
		cj := r.Mean(out[j], Forward) + r.Mean(out[j], Backward)
		return ci > cj
	})
	return out
}
