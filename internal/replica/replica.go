// Package replica implements synchronous data-parallel training across
// multiple network replicas — the "compatible with multi-GPU execution
// without altering the algorithm convergence rate" claim of the paper's
// introduction.
//
// Each replica ("device") owns a full copy of the model and processes one
// contiguous shard of every global batch (see data.Shard); replicas run
// concurrently, each with its own execution engine (so batch-level
// coarse-grain parallelism composes with cross-device parallelism exactly
// as OpenMP-within-a-GPU-server composes with multiple GPUs). After every
// iteration the per-replica gradients are combined *in ascending replica
// order* — per element, replica 1's contribution is added to replica 0's,
// then replica 2's, and so on, the same rank-ordered fold that
// par.Pool.OrderedSlices uses inside the coarse engine's reduce — scaled
// by 1/R, and applied to the master weights, which are then broadcast
// back bitwise. The fixed fold order is what makes an R-replica run
// bit-reproducible, and it is the exact contract internal/dist carries
// across process boundaries: a k-rank distributed run is asserted
// bit-identical to this trainer with k replicas (DISTRIBUTED.md).
//
// Because shard gradients sum to exactly the global-batch gradient, no
// training parameter changes: the trainer's loss trace matches a
// single-device run over the same global batches, which is the
// convergence-invariance property extended across devices.
//
// # Observability
//
// Each replica's network accepts its own instruments — attach a
// profile.Recorder or a trace.Tracer to an individual replica's net to
// measure within-device behavior (each replica has a private engine and
// worker team, so tracers must not be shared across replicas; the
// tracer's shards are keyed by one pool's ranks). Cross-device timing —
// the synchronous merge barrier — is visible as the gap between a
// replica's last backward span and the next iteration's first forward
// span. See OBSERVABILITY.md.
package replica

import (
	"fmt"
	"sync"

	"coarsegrain/internal/net"
	"coarsegrain/internal/solver"
)

// Trainer drives R replicas synchronously.
type Trainer struct {
	replicas []*net.Net
	master   *net.Net // replicas[0]; owns the authoritative weights
	solver   *solver.Solver
	scale    float32 // 1/R, applied after the ordered combine
}

// New creates a trainer over the given replicas. All replicas must have
// identical architectures and identical initial weights (build them with
// the same seed). cfg configures the solver that updates the master
// weights.
func New(replicas []*net.Net, cfg solver.Config) (*Trainer, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("replica: no replicas")
	}
	master := replicas[0]
	for i, r := range replicas[1:] {
		if len(r.Params()) != len(master.Params()) {
			return nil, fmt.Errorf("replica: replica %d has %d params, master has %d",
				i+1, len(r.Params()), len(master.Params()))
		}
		for pi, p := range r.Params() {
			mp := master.Params()[pi]
			if p.Count() != mp.Count() {
				return nil, fmt.Errorf("replica: replica %d param %d count mismatch", i+1, pi)
			}
			for j, v := range p.Data() {
				if v != mp.Data()[j] {
					return nil, fmt.Errorf("replica: replica %d param %d differs from master at %d (build replicas with the same seed)", i+1, pi, j)
				}
			}
		}
	}
	s, err := solver.New(cfg, master)
	if err != nil {
		return nil, err
	}
	return &Trainer{
		replicas: replicas,
		master:   master,
		solver:   s,
		scale:    1 / float32(len(replicas)),
	}, nil
}

// Replicas returns the replica count.
func (t *Trainer) Replicas() int { return len(t.replicas) }

// Iter returns the completed iteration count.
func (t *Trainer) Iter() int { return t.solver.Iter() }

// Solver exposes the master solver (learning rate, snapshots).
func (t *Trainer) Solver() *solver.Solver { return t.solver }

// Master returns the net holding the authoritative weights.
func (t *Trainer) Master() *net.Net { return t.master }

// Step runs iters synchronous iterations and returns the global loss of
// each (the mean of replica losses, which equals the loss a single device
// would compute over the whole global batch).
func (t *Trainer) Step(iters int) []float64 {
	losses := make([]float64, 0, iters)
	r := len(t.replicas)
	replicaLoss := make([]float64, r)
	var wg sync.WaitGroup
	for it := 0; it < iters; it++ {
		// Compute phase: every replica processes its shard concurrently.
		// Each replica accumulates gradients into its own parameter
		// blobs; no sharing happens until the combine below.
		for i, n := range t.replicas {
			wg.Add(1)
			go func(i int, n *net.Net) {
				defer wg.Done()
				n.ZeroParamDiffs()
				replicaLoss[i] = n.ForwardBackward()
			}(i, n)
		}
		wg.Wait()

		// Combine phase: average gradients in replica order into the
		// master's diffs (replica 0's own gradient is already there).
		for pi, mp := range t.master.Params() {
			for _, rep := range t.replicas[1:] {
				mp.AccumulateDiffFrom(rep.Params()[pi])
			}
			mp.ScaleDiff(t.scale)
		}

		// Update + broadcast: the solver consumes the combined gradient;
		// the new master weights are copied to every other replica.
		t.solver.UpdateFromGradients()
		for _, rep := range t.replicas[1:] {
			for pi, p := range rep.Params() {
				p.CopyDataFrom(t.master.Params()[pi])
			}
		}

		var sum float64
		for _, l := range replicaLoss {
			sum += l
		}
		losses = append(losses, sum/float64(r))
	}
	return losses
}

// Accuracy returns the mean of a named scalar output across replicas
// (e.g. per-shard batch accuracy).
func (t *Trainer) Accuracy(blobName string) (float32, error) {
	var sum float32
	for _, rep := range t.replicas {
		v, err := rep.Output(blobName)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float32(len(t.replicas)), nil
}
