package replica

import (
	"math"
	"testing"

	"coarsegrain/internal/core"
	"coarsegrain/internal/data"
	"coarsegrain/internal/layers"
	"coarsegrain/internal/net"
	"coarsegrain/internal/rng"
	"coarsegrain/internal/solver"
	"coarsegrain/internal/zoo"
)

const (
	globalBatch = 16
	sourceLen   = 128
	dataSeed    = 55
	weightSeed  = 77
)

func solverCfg() solver.Config {
	return solver.Config{Type: solver.SGD, BaseLR: 0.01, Momentum: 0.9}
}

// buildReplicas constructs r LeNet replicas over contiguous shards of the
// same synthetic stream, all with identical weights.
func buildReplicas(t *testing.T, r int, eng func() core.Engine) []*net.Net {
	t.Helper()
	src := data.NewSyntheticMNIST(sourceLen, dataSeed)
	out := make([]*net.Net, r)
	for i := 0; i < r; i++ {
		shard, err := data.NewShard(src, i, r, globalBatch)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := tinySpecs(t, shard, shard.LocalBatch())
		if err != nil {
			t.Fatal(err)
		}
		var e core.Engine
		if eng != nil {
			e = eng()
		}
		n, err := net.New(specs, e)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = n
	}
	return out
}

func TestShardMapping(t *testing.T) {
	src := data.NewSyntheticMNIST(32, 1)
	s0, err := data.NewShard(src, 0, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := data.NewShard(src, 1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s0.Len() != 16 || s0.LocalBatch() != 4 {
		t.Fatalf("shard len %d local %d", s0.Len(), s0.LocalBatch())
	}
	// Global batch 0 = samples 0..7; shard 0 sees 0..3, shard 1 sees 4..7.
	buf := make([]float32, 28*28)
	ref := make([]float32, 28*28)
	for i := 0; i < 4; i++ {
		lab := s0.Read(i, buf)
		wantLab := src.Read(i, ref)
		if lab != wantLab {
			t.Fatalf("shard0[%d] label %d want %d", i, lab, wantLab)
		}
		lab = s1.Read(i, buf)
		wantLab = src.Read(i+4, ref)
		if lab != wantLab {
			t.Fatalf("shard1[%d] label %d want %d", i, lab, wantLab)
		}
	}
	// Local index 4 starts global batch 1 = global sample 8 (shard 0).
	if got, want := s0.Read(4, buf), src.Read(8, ref); got != want {
		t.Fatalf("shard0[4] label %d want %d", got, want)
	}
}

func TestShardValidation(t *testing.T) {
	src := data.NewSyntheticMNIST(32, 1)
	if _, err := data.NewShard(src, 0, 3, 8); err == nil {
		t.Fatal("indivisible batch accepted")
	}
	if _, err := data.NewShard(src, 2, 2, 8); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
	if _, err := data.NewShard(src, 0, 2, 7); err == nil {
		t.Fatal("misaligned source length accepted")
	}
}

func TestTrainerValidation(t *testing.T) {
	if _, err := New(nil, solverCfg()); err == nil {
		t.Fatal("empty replica set accepted")
	}
	reps := buildReplicas(t, 2, nil)
	// Corrupt replica 1's weights: must be rejected.
	reps[1].Params()[0].Data()[0] += 1
	if _, err := New(reps, solverCfg()); err == nil {
		t.Fatal("mismatched initial weights accepted")
	}
}

// The multi-GPU convergence-invariance claim: R replicas over shards of
// the global batch produce the same loss trace as one device over the
// whole batch.
func TestReplicatedMatchesSingleDevice(t *testing.T) {
	// Single device: full global batch.
	src := data.NewSyntheticMNIST(sourceLen, dataSeed)
	specs, err := tinySpecs(t, src, globalBatch)
	if err != nil {
		t.Fatal(err)
	}
	single, err := net.New(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.New(solverCfg(), single)
	if err != nil {
		t.Fatal(err)
	}
	ref := s.Step(12)

	for _, r := range []int{2, 4} {
		tr, err := New(buildReplicas(t, r, nil), solverCfg())
		if err != nil {
			t.Fatal(err)
		}
		got := tr.Step(12)
		for i := range ref {
			rel := math.Abs(got[i]-ref[i]) / math.Max(ref[i], 1e-12)
			if rel > 1e-4 {
				t.Fatalf("replicas=%d: trace diverged at iter %d: %v vs %v (rel %g)",
					r, i, got[i], ref[i], rel)
			}
		}
		if tr.Iter() != 12 || tr.Replicas() != r {
			t.Fatalf("trainer state wrong: iter %d replicas %d", tr.Iter(), tr.Replicas())
		}
	}
}

// Replicated training is bit-deterministic across runs: the combine phase
// sums gradients in replica order.
func TestReplicatedDeterministic(t *testing.T) {
	runOK := func() []float64 {
		tr, err := New(buildReplicas(t, 4, nil), solverCfg())
		if err != nil {
			t.Fatal(err)
		}
		return tr.Step(8)
	}
	a := runOK()
	b := runOK()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replicated training not deterministic at iter %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Replicas compose with the coarse engine: each "device" runs batch-level
// parallel workers internally.
func TestReplicasComposeWithCoarseEngine(t *testing.T) {
	engines := make([]core.Engine, 0, 2)
	tr, err := New(buildReplicas(t, 2, func() core.Engine {
		e := core.NewCoarse(2)
		engines = append(engines, e)
		return e
	}), solverCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	losses := tr.Step(15)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestTrainerAccuracyAggregation(t *testing.T) {
	src := data.NewSyntheticMNIST(sourceLen, dataSeed)
	reps := make([]*net.Net, 2)
	for i := range reps {
		shard, err := data.NewShard(src, i, 2, globalBatch)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := zoo.LeNet(shard, zoo.Options{BatchSize: shard.LocalBatch(), Seed: weightSeed, Accuracy: true})
		if err != nil {
			t.Fatal(err)
		}
		n, err := net.New(specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = n
	}
	tr, err := New(reps, solverCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr.Step(2)
	acc, err := tr.Accuracy("accuracy")
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("aggregated accuracy %v", acc)
	}
	if _, err := tr.Accuracy("missing"); err == nil {
		t.Fatal("missing blob accepted")
	}
}

// tinySpecs builds a small conv net (conv 4x5x5/2 -> relu -> ip 10 ->
// loss) — enough structure for the equivalence experiments at a fraction
// of LeNet's cost.
func tinySpecs(t *testing.T, src layers.Source, batch int) ([]net.LayerSpec, error) {
	t.Helper()
	d, err := layers.NewData("data", src, batch)
	if err != nil {
		return nil, err
	}
	conv, err := layers.NewConvolution("conv1", layers.ConvConfig{
		NumOutput: 4, Kernel: 5, Stride: 2,
		WeightFiller: layers.XavierFiller{}, RNG: rng.New(weightSeed, 1),
	})
	if err != nil {
		return nil, err
	}
	ip, err := layers.NewInnerProduct("ip1", layers.IPConfig{
		NumOutput: 10, WeightFiller: layers.XavierFiller{}, RNG: rng.New(weightSeed, 2),
	})
	if err != nil {
		return nil, err
	}
	return []net.LayerSpec{
		{Layer: d, Tops: []string{"data", "label"}},
		{Layer: conv, Bottoms: []string{"data"}, Tops: []string{"conv1"}},
		{Layer: layers.NewReLU("relu1", 0), Bottoms: []string{"conv1"}, Tops: []string{"relu1"}},
		{Layer: ip, Bottoms: []string{"relu1"}, Tops: []string{"ip1"}},
		{Layer: layers.NewSoftmaxWithLoss("loss"), Bottoms: []string{"ip1", "label"}, Tops: []string{"loss"}},
	}, nil
}
