package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTagRoundTrip(t *testing.T) {
	cases := []struct {
		kind   Kind
		epoch  int
		iter   int
		param  int
		origin int
	}{
		{KindGrad, 0, 0, 0, 0},
		{KindGather, 0, 7, 3, 2},
		{KindBcast, 3, 199, 13, 63},
		{KindSync, 17, 4096, 9, 5},
		{KindFence, MaxEpoch, 12, 0, 0},
		{KindAck, MaxEpoch, MaxIter, 1<<14 - 1, 1<<16 - 1},
	}
	for _, c := range cases {
		tag := MakeTagE(c.kind, c.epoch, c.iter, c.param, c.origin)
		if tag.Kind() != c.kind || tag.Epoch() != c.epoch || tag.Iter() != c.iter ||
			tag.Param() != c.param || tag.Origin() != c.origin {
			t.Errorf("MakeTagE(%v,%d,%d,%d,%d) round-tripped to (%v,%d,%d,%d,%d)",
				c.kind, c.epoch, c.iter, c.param, c.origin,
				tag.Kind(), tag.Epoch(), tag.Iter(), tag.Param(), tag.Origin())
		}
	}
	// MakeTag is the epoch-0 shorthand.
	if MakeTag(KindGrad, 5, 2, 1) != MakeTagE(KindGrad, 0, 5, 2, 1) {
		t.Error("MakeTag is not MakeTagE with epoch 0")
	}
}

func TestKindCtrlClassification(t *testing.T) {
	for k, want := range map[Kind]bool{
		KindGrad: false, KindGather: false, KindBcast: false, KindLoss: false, KindSync: false,
		KindPing: true, KindPong: true, KindFence: true, KindJoin: true, KindAck: true,
	} {
		if k.Ctrl() != want {
			t.Errorf("%v.Ctrl() = %v, want %v", k, k.Ctrl(), want)
		}
	}
}

func TestTagDistinct(t *testing.T) {
	// Tags that differ in exactly one field must differ as values.
	base := MakeTag(KindGrad, 5, 2, 1)
	for _, other := range []Tag{
		MakeTag(KindGather, 5, 2, 1),
		MakeTag(KindGrad, 6, 2, 1),
		MakeTag(KindGrad, 5, 3, 1),
		MakeTag(KindGrad, 5, 2, 2),
		MakeTagE(KindGrad, 1, 5, 2, 1),
	} {
		if other == base {
			t.Errorf("tag %v collides with %v", other, base)
		}
	}
}

func TestMakeTagPanicsOutOfRange(t *testing.T) {
	for name, fn := range map[string]func(){
		"iter":      func() { MakeTag(KindGrad, -1, 0, 0) },
		"iter-high": func() { MakeTag(KindGrad, MaxIter+1, 0, 0) },
		"param":     func() { MakeTag(KindGrad, 0, 1<<14, 0) },
		"origin":    func() { MakeTag(KindGrad, 0, 0, 1<<16) },
		"epoch":     func() { MakeTagE(KindGrad, MaxEpoch+1, 0, 0, 0) },
		"kind":      func() { MakeTagE(KindAck+1, 0, 0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeTag with out-of-range %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLocalSendRecv(t *testing.T) {
	g := NewLocalGroup(2)
	tag := MakeTag(KindGrad, 0, 0, 1)
	want := []float32{1, 2, 3}
	if err := g[1].Send(0, tag, want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got := make([]float32, 3)
	if err := g[0].Recv(1, tag, got); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLocalSendCopiesPayload(t *testing.T) {
	g := NewLocalGroup(2)
	tag := MakeTag(KindGrad, 0, 0, 1)
	payload := []float32{1, 2, 3}
	if err := g[1].Send(0, tag, payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	payload[0] = 99 // mutate after send: the receiver must see the original
	got := make([]float32, 3)
	if err := g[0].Recv(1, tag, got); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got[0] != 1 {
		t.Fatalf("payload[0] = %v after sender mutation, want 1 (Send must copy)", got[0])
	}
}

func TestLocalFIFOPerLink(t *testing.T) {
	g := NewLocalGroup(2)
	const n = 100
	for i := 0; i < n; i++ {
		if err := g[1].Send(0, MakeTag(KindGrad, 0, i%(1<<14), 1), []float32{float32(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	buf := make([]float32, 1)
	for i := 0; i < n; i++ {
		if err := g[0].Recv(1, MakeTag(KindGrad, 0, i%(1<<14), 1), buf); err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if buf[0] != float32(i) {
			t.Fatalf("message %d carried %v, want %v", i, buf[0], float32(i))
		}
	}
}

func TestRecvDiscardsDuplicates(t *testing.T) {
	g := NewLocalGroup(2)
	a := MakeTag(KindGrad, 0, 0, 1)
	b := MakeTag(KindGrad, 0, 1, 1)
	// a, a(dup), b: the second a must be discarded while waiting for b.
	g[1].Send(0, a, []float32{1})
	g[1].Send(0, a, []float32{1})
	g[1].Send(0, b, []float32{2})
	buf := make([]float32, 1)
	if err := g[0].Recv(1, a, buf); err != nil {
		t.Fatalf("Recv a: %v", err)
	}
	if err := g[0].Recv(1, b, buf); err != nil {
		t.Fatalf("Recv b after duplicate: %v", err)
	}
	if buf[0] != 2 {
		t.Fatalf("got %v, want 2", buf[0])
	}
}

func TestRecvDiscardsStaleIterations(t *testing.T) {
	g := NewLocalGroup(2)
	old := MakeTag(KindGrad, 0, 0, 1)
	cur := MakeTag(KindGrad, 1, 0, 1)
	// Iter-0 frame delivered, then a stale iter-0 duplicate arrives while
	// the receiver has moved on to iter 1.
	g[1].Send(0, old, []float32{1})
	buf := make([]float32, 1)
	if err := g[0].Recv(1, old, buf); err != nil {
		t.Fatalf("Recv iter 0: %v", err)
	}
	g[1].Send(0, old, []float32{1}) // stale duplicate
	g[1].Send(0, cur, []float32{2})
	if err := g[0].Recv(1, cur, buf); err != nil {
		t.Fatalf("Recv iter 1 after stale frame: %v", err)
	}
	if buf[0] != 2 {
		t.Fatalf("got %v, want 2", buf[0])
	}
}

func TestRecvFailsOnUnexpectedTag(t *testing.T) {
	g := NewLocalGroup(2)
	g[1].Send(0, MakeTag(KindBcast, 2, 0, 1), []float32{1})
	err := g[0].Recv(1, MakeTag(KindGrad, 1, 0, 1), make([]float32, 1))
	var ute *UnexpectedTagError
	if !errors.As(err, &ute) {
		t.Fatalf("Recv of wrong tag: err = %v, want *UnexpectedTagError", err)
	}
}

func TestRecvFailsOnSizeMismatch(t *testing.T) {
	g := NewLocalGroup(2)
	tag := MakeTag(KindGrad, 0, 0, 1)
	g[1].Send(0, tag, []float32{1, 2, 3})
	err := g[0].Recv(1, tag, make([]float32, 2))
	var sme *SizeMismatchError
	if !errors.As(err, &sme) {
		t.Fatalf("Recv with short buffer: err = %v, want *SizeMismatchError", err)
	}
}

func TestPeerErrors(t *testing.T) {
	g := NewLocalGroup(2)
	var pe *PeerError
	if err := g[0].Send(0, MakeTag(KindGrad, 0, 0, 0), nil); !errors.As(err, &pe) {
		t.Errorf("self-send: err = %v, want *PeerError", err)
	}
	if err := g[0].Send(5, MakeTag(KindGrad, 0, 0, 0), nil); !errors.As(err, &pe) {
		t.Errorf("out-of-range send: err = %v, want *PeerError", err)
	}
	if err := g[0].Recv(-1, MakeTag(KindGrad, 0, 0, 0), nil); !errors.As(err, &pe) {
		t.Errorf("out-of-range recv: err = %v, want *PeerError", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	g := NewLocalGroup(2)
	done := make(chan error, 1)
	go func() {
		done <- g[0].Recv(1, MakeTag(KindGrad, 0, 0, 1), make([]float32, 1))
	}()
	time.Sleep(5 * time.Millisecond)
	g[0].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
	if err := g[0].Send(1, MakeTag(KindGrad, 0, 0, 0), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close: err = %v, want ErrClosed", err)
	}
}

// exchangeAllPairs runs a full all-pairs exchange over the given group:
// every rank sends a distinct payload to every other rank, then receives
// and checks what every peer sent it. It is the shared conformance body
// for Local and TCP.
func exchangeAllPairs(t *testing.T, group []Transport, iters int) {
	t.Helper()
	size := len(group)
	value := func(iter, from, to, i int) float32 {
		return float32(iter*1000 + from*100 + to*10 + i)
	}
	var wg sync.WaitGroup
	errc := make(chan error, size)
	for r := range group {
		wg.Add(1)
		go func(r int, tr Transport) {
			defer wg.Done()
			for iter := 0; iter < iters; iter++ {
				for to := 0; to < size; to++ {
					if to == r {
						continue
					}
					payload := []float32{value(iter, r, to, 0), value(iter, r, to, 1)}
					if err := tr.Send(to, MakeTag(KindGrad, iter, 0, r), payload); err != nil {
						errc <- fmt.Errorf("rank %d send to %d: %w", r, to, err)
						return
					}
				}
				buf := make([]float32, 2)
				for from := 0; from < size; from++ {
					if from == r {
						continue
					}
					if err := tr.Recv(from, MakeTag(KindGrad, iter, 0, from), buf); err != nil {
						errc <- fmt.Errorf("rank %d recv from %d: %w", r, from, err)
						return
					}
					for i := range buf {
						if buf[i] != value(iter, from, r, i) {
							errc <- fmt.Errorf("rank %d got %v from %d at iter %d, want %v",
								r, buf[i], from, iter, value(iter, from, r, i))
							return
						}
					}
				}
			}
		}(r, group[r])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestLocalAllPairs(t *testing.T) {
	for _, size := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("size%d", size), func(t *testing.T) {
			locals := NewLocalGroup(size)
			group := make([]Transport, size)
			for i, l := range locals {
				group[i] = l
			}
			exchangeAllPairs(t, group, 5)
			for _, l := range locals {
				l.Close()
			}
		})
	}
}

// dialTCPGroup rendezvouses a size-rank TCP group on loopback and
// returns all endpoints (index = rank).
func dialTCPGroup(t *testing.T, size int) []Transport {
	t.Helper()
	coord, err := NewCoordinator("127.0.0.1:0", size)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	group := make([]Transport, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr, err := coord.Wait()
		group[0], errs[0] = tr, err
	}()
	for w := 1; w < size; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr, err := DialTCP(coord.Addr())
			if err != nil {
				errs[w] = err
				return
			}
			group[tr.Rank()] = tr
		}(w)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rendezvous (slot %d): %v", r, err)
		}
	}
	for r, tr := range group {
		if tr == nil || tr.Rank() != r || tr.Size() != size {
			t.Fatalf("rank %d endpoint missing or mislabeled: %+v", r, tr)
		}
	}
	return group
}

func TestTCPAllPairs(t *testing.T) {
	for _, size := range []int{2, 4} {
		t.Run(fmt.Sprintf("size%d", size), func(t *testing.T) {
			group := dialTCPGroup(t, size)
			exchangeAllPairs(t, group, 5)
			for _, tr := range group {
				tr.Close()
			}
		})
	}
}

func TestTCPCloseFlushesInFlight(t *testing.T) {
	group := dialTCPGroup(t, 2)
	const n = 200
	payload := make([]float32, 256)
	for i := range payload {
		payload[i] = float32(i)
	}
	for i := 0; i < n; i++ {
		if err := group[1].Send(0, MakeTag(KindGrad, 0, i%(1<<14), 1), payload); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Close the sender immediately: every enqueued frame must still
	// arrive (Close flushes before tearing the socket down).
	group[1].Close()
	buf := make([]float32, 256)
	for i := 0; i < n; i++ {
		if err := group[0].Recv(1, MakeTag(KindGrad, 0, i%(1<<14), 1), buf); err != nil {
			t.Fatalf("Recv %d after sender Close: %v", i, err)
		}
	}
	if buf[255] != 255 {
		t.Fatalf("last frame corrupted: %v", buf[255])
	}
	group[0].Close()
}

func TestFlakyDropReturnsTransient(t *testing.T) {
	g := NewLocalGroup(2)
	f := NewFlaky(g[1], FlakyConfig{DropProb: 1}, 1)
	err := f.Send(0, MakeTag(KindGrad, 0, 0, 1), []float32{1})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("Send under DropProb=1: err = %v, want ErrTransient", err)
	}
	if s := f.Stats(); s.Drops != 1 || s.Sends != 1 {
		t.Fatalf("stats = %+v, want 1 send, 1 drop", s)
	}
}

func TestFlakyDuplicatesAreDeduped(t *testing.T) {
	g := NewLocalGroup(2)
	f := NewFlaky(g[1], FlakyConfig{DupProb: 1}, 2)
	a := MakeTag(KindGrad, 0, 0, 1)
	b := MakeTag(KindGrad, 0, 1, 1)
	if err := f.Send(0, a, []float32{1}); err != nil {
		t.Fatalf("Send a: %v", err)
	}
	if err := f.Send(0, b, []float32{2}); err != nil {
		t.Fatalf("Send b: %v", err)
	}
	buf := make([]float32, 1)
	if err := g[0].Recv(1, a, buf); err != nil || buf[0] != 1 {
		t.Fatalf("Recv a: %v (got %v)", err, buf[0])
	}
	if err := g[0].Recv(1, b, buf); err != nil || buf[0] != 2 {
		t.Fatalf("Recv b: %v (got %v)", err, buf[0])
	}
	if s := f.Stats(); s.Dups != 2 {
		t.Fatalf("stats = %+v, want 2 dups", s)
	}
}

func TestFlakyIsSeededDeterministic(t *testing.T) {
	run := func() FlakyStats {
		g := NewLocalGroup(2)
		f := NewFlaky(g[1], FlakyConfig{DropProb: 0.3, DupProb: 0.3}, 42)
		tag := func(i int) Tag { return MakeTag(KindGrad, 0, i%(1<<14), 1) }
		for i := 0; i < 200; i++ {
			f.Send(0, tag(i), []float32{float32(i)})
		}
		return f.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault sequences: %+v vs %+v", a, b)
	}
	if a.Drops == 0 || a.Dups == 0 {
		t.Fatalf("faults not exercised: %+v", a)
	}
}

// TestFlakyConvergesWithRetry drives an all-pairs exchange through flaky
// endpoints with a bounded retry loop: the values delivered must be
// exactly the ones sent, despite drops, duplicates and delays.
func TestFlakyConvergesWithRetry(t *testing.T) {
	locals := NewLocalGroup(3)
	group := make([]Transport, 3)
	for i, l := range locals {
		group[i] = &retrying{Transport: NewFlaky(l, FlakyConfig{
			DropProb: 0.2, DupProb: 0.2, DelayProb: 0.1, MaxDelay: 100 * time.Microsecond,
		}, uint64(7+i))}
	}
	exchangeAllPairs(t, group, 10)
	for _, l := range locals {
		l.Close()
	}
}

// retrying is the minimal bounded-retry send wrapper the dist package
// implements for real; here it makes the flaky conformance test
// self-contained.
type retrying struct{ Transport }

func (r *retrying) Send(to int, tag Tag, payload []float32) error {
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if err = r.Transport.Send(to, tag, payload); !errors.Is(err, ErrTransient) {
			return err
		}
	}
	return err
}
