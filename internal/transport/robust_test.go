package transport

import (
	"encoding/binary"
	"errors"
	gonet "net"
	"strings"
	"testing"
	"time"
)

// --- control plane ---------------------------------------------------

func TestCtrlPlaneLocal(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	defer g[1].Close()
	tag := MakeTag(KindPing, 3, 0, 0)
	if err := g[0].SendCtrl(1, tag, []float32{7}); err != nil {
		t.Fatalf("SendCtrl: %v", err)
	}
	got, payload, err := g[1].RecvCtrl(0, time.Second)
	if err != nil {
		t.Fatalf("RecvCtrl: %v", err)
	}
	if got != tag || len(payload) != 1 || payload[0] != 7 {
		t.Fatalf("RecvCtrl = %v %v, want %v [7]", got, payload, tag)
	}
	if _, _, err := g[1].RecvCtrl(0, 10*time.Millisecond); !errors.Is(err, ErrCtrlTimeout) {
		t.Fatalf("empty RecvCtrl: err = %v, want ErrCtrlTimeout", err)
	}
}

func TestCtrlPlaneCloseUnblocksRecvCtrl(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := g[1].RecvCtrl(0, time.Minute)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	g[1].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("RecvCtrl after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvCtrl did not unblock after Close")
	}
}

// TestCtrlBypassesBlockedDataRecv pins the property the elastic fencing
// protocol depends on: a control frame gets through while the receiver's
// data plane is wedged mid-Recv.
func TestCtrlBypassesBlockedDataRecv(t *testing.T) {
	group := dialTCPGroup(t, 2)
	defer group[0].Close()
	defer group[1].Close()
	recvDone := make(chan error, 1)
	go func() {
		// Blocks forever: no data frame with this tag is ever sent.
		recvDone <- group[0].Recv(1, MakeTag(KindGrad, 0, 0, 1), make([]float32, 1))
	}()
	time.Sleep(5 * time.Millisecond)
	fence := MakeTagE(KindFence, 1, 4, 0, 1)
	if err := group[1].SendCtrl(0, fence, []float32{1, 2}); err != nil {
		t.Fatalf("SendCtrl: %v", err)
	}
	got, payload, err := group[0].RecvCtrl(1, 2*time.Second)
	if err != nil {
		t.Fatalf("RecvCtrl while data Recv blocked: %v", err)
	}
	if got != fence || len(payload) != 2 {
		t.Fatalf("RecvCtrl = %v (%d elems), want %v (2 elems)", got, len(payload), fence)
	}
	// Unblock and drain the pending data Recv.
	group[0].Interrupt(&PeerDownError{Rank: 1})
	if err := <-recvDone; !errors.Is(err, ErrPeerDown) {
		t.Fatalf("interrupted Recv: err = %v, want ErrPeerDown", err)
	}
}

// --- interrupt / resume ----------------------------------------------

func TestInterruptUnblocksRecvAndResumeClears(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	defer g[1].Close()
	tag := MakeTag(KindGrad, 0, 0, 1)
	done := make(chan error, 1)
	go func() {
		done <- g[0].Recv(1, tag, make([]float32, 1))
	}()
	time.Sleep(5 * time.Millisecond)
	cause := &PeerDownError{Rank: 1, Cause: errors.New("heartbeat timeout")}
	g[0].Interrupt(cause)
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("interrupted Recv: err = %v, want ErrPeerDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Interrupt")
	}
	// While interrupted, an empty-queue Recv fails immediately.
	if err := g[0].Recv(1, tag, make([]float32, 1)); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("Recv while interrupted: err = %v, want ErrPeerDown", err)
	}
	// Resume clears the poison: delivery works again.
	g[0].Resume()
	if err := g[1].Send(0, tag, []float32{5}); err != nil {
		t.Fatalf("Send after Resume: %v", err)
	}
	buf := make([]float32, 1)
	if err := g[0].Recv(1, tag, buf); err != nil || buf[0] != 5 {
		t.Fatalf("Recv after Resume: %v (got %v), want 5", err, buf)
	}
}

// TestInterruptDoesNotPreemptQueuedFrames pins that a frame already
// delivered to the inbox wins over a pending interrupt — a completed
// iteration is never torn down retroactively by a late fence.
func TestInterruptDoesNotPreemptQueuedFrames(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	defer g[1].Close()
	tag := MakeTag(KindGrad, 0, 0, 1)
	if err := g[1].Send(0, tag, []float32{9}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	g[0].Interrupt(&PeerDownError{Rank: 1})
	buf := make([]float32, 1)
	if err := g[0].Recv(1, tag, buf); err != nil || buf[0] != 9 {
		t.Fatalf("Recv with queued frame under interrupt: %v (got %v), want 9", err, buf)
	}
	// Queue drained: now the interrupt surfaces.
	if err := g[0].Recv(1, tag, buf); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("Recv after drain: err = %v, want ErrPeerDown", err)
	}
}

// --- epoch staleness --------------------------------------------------

func TestRecvDiscardsStaleEpochs(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	defer g[1].Close()
	// An abandoned epoch-0 iteration leaves frames in flight whose
	// (iter, param) coordinates alias the post-fence epoch-1 traffic.
	stale := MakeTagE(KindGrad, 0, 5, 0, 1)
	cur := MakeTagE(KindGrad, 1, 3, 0, 1)
	g[1].Send(0, stale, []float32{1})
	g[1].Send(0, cur, []float32{2})
	buf := make([]float32, 1)
	// Note the stale frame has a HIGHER iteration than the current one:
	// only the epoch ordering makes it discardable.
	if err := g[0].Recv(1, cur, buf); err != nil {
		t.Fatalf("Recv across epoch fence: %v", err)
	}
	if buf[0] != 2 {
		t.Fatalf("got %v, want 2 (stale epoch-0 frame leaked through)", buf[0])
	}
}

func TestPeerDownErrorMatchesSentinel(t *testing.T) {
	inner := errors.New("socket reset")
	err := error(&PeerDownError{Rank: 3, Cause: inner})
	if !errors.Is(err, ErrPeerDown) {
		t.Fatal("PeerDownError does not match ErrPeerDown")
	}
	if errors.Is(err, ErrTransient) {
		t.Fatal("PeerDownError must not match ErrTransient: it is not retryable")
	}
	if !errors.Is(err, inner) {
		t.Fatal("PeerDownError does not unwrap its cause")
	}
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.Rank != 3 {
		t.Fatalf("errors.As failed to recover the rank: %+v", pd)
	}
}

// TestTCPPeerDeathSurfacesPeerDown pins link-death attribution: when a
// peer's process goes away, the survivor's pending Recv fails with a
// typed *PeerDownError naming the dead rank.
func TestTCPPeerDeathSurfacesPeerDown(t *testing.T) {
	group := dialTCPGroup(t, 2)
	defer group[0].Close()
	done := make(chan error, 1)
	go func() {
		done <- group[0].Recv(1, MakeTag(KindGrad, 0, 0, 1), make([]float32, 1))
	}()
	time.Sleep(5 * time.Millisecond)
	group[1].Close() // the "process" dies
	select {
	case err := <-done:
		var pd *PeerDownError
		if !errors.As(err, &pd) || pd.Rank != 1 {
			t.Fatalf("Recv after peer death: err = %v, want *PeerDownError{Rank: 1}", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock when the peer died")
	}
}

// --- bounded close (shutdown-race satellite) -------------------------

// TestWriterCloseFlushBounded pins that closeFlush gives up after its
// bound when the drain loop cannot make progress (a peer that stopped
// reading), instead of hanging Close forever.
func TestWriterCloseFlushBounded(t *testing.T) {
	w := newTCPWriter()
	// No loop goroutine is draining: the queue can never empty.
	if err := w.enqueue(make([]byte, 64)); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	start := time.Now()
	donec := make(chan struct{})
	go func() {
		w.closeFlush(50 * time.Millisecond)
		close(donec)
	}()
	select {
	case <-donec:
	case <-time.After(5 * time.Second):
		t.Fatal("closeFlush hung past its bound")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("closeFlush returned after %v without waiting for the bound", elapsed)
	}
	if err := w.enqueue(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after abandoned close: err = %v, want ErrClosed", err)
	}
}

// --- rendezvous hardening --------------------------------------------

// TestCoordinatorFailsLoudOnDeadJoiner covers a worker dying mid-JOIN:
// it connects, writes half a length prefix, and vanishes. The
// coordinator must fail the rendezvous with the peer's address.
func TestCoordinatorFailsLoudOnDeadJoiner(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", 2)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	coord.JoinTimeout = 200 * time.Millisecond
	errc := make(chan error, 1)
	go func() {
		_, err := coord.Wait()
		errc <- err
	}()
	conn, err := gonet.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn.Write([]byte{9, 0}) // half a length prefix
	local := conn.LocalAddr().String()
	conn.Close() // dies mid-handshake
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Wait succeeded despite a dead joiner")
		}
		if !strings.Contains(err.Error(), local) {
			t.Fatalf("rendezvous error %q does not name the peer address %q", err, local)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator wedged on a dead joiner")
	}
}

// TestCoordinatorFailsLoudOnStalledJoiner covers the wedge case: a
// worker that connects and then sends nothing. The join deadline must
// fire and name the peer.
func TestCoordinatorFailsLoudOnStalledJoiner(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", 2)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	coord.JoinTimeout = 100 * time.Millisecond
	errc := make(chan error, 1)
	go func() {
		_, err := coord.Wait()
		errc <- err
	}()
	conn, err := gonet.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	local := conn.LocalAddr().String()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Wait succeeded despite a stalled joiner")
		}
		if !strings.Contains(err.Error(), local) {
			t.Fatalf("rendezvous error %q does not name the peer address %q", err, local)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator wedged on a stalled joiner")
	}
}

// TestCoordinatorFailsLoudOnMalformedJoin covers garbage on the wire: a
// well-framed message that is not valid JSON.
func TestCoordinatorFailsLoudOnMalformedJoin(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", 2)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := coord.Wait()
		errc <- err
	}()
	conn, err := gonet.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	local := conn.LocalAddr().String()
	garbage := []byte("this is not json")
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(garbage)))
	conn.Write(hdr[:])
	conn.Write(garbage)
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Wait accepted a malformed JOIN")
		}
		if !strings.Contains(err.Error(), local) {
			t.Fatalf("rendezvous error %q does not name the peer address %q", err, local)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator wedged on a malformed JOIN")
	}
}

// TestWorkerFailsLoudOnMalformedHello covers the mesh side: a peer that
// dials a worker's mesh listener and sends a malformed HELLO must fail
// that worker's rendezvous with the dialer's address, not wedge it.
func TestWorkerFailsLoudOnMalformedHello(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", 3)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	coordErr := make(chan error, 1)
	go func() {
		tr, err := coord.Wait()
		if tr != nil {
			tr.Close()
		}
		coordErr <- err
	}()
	// The honest worker joins first, so it is assigned rank 1 and will
	// wait for rank 2's HELLO on its mesh listener.
	workerErr := make(chan error, 1)
	go func() {
		tr, err := DialTCP(coord.Addr())
		if tr != nil {
			tr.Close()
		}
		workerErr <- err
	}()
	time.Sleep(50 * time.Millisecond)
	// The impostor joins as rank 2, learns rank 1's mesh address from the
	// assignment, dials it, and sends garbage instead of a HELLO.
	conn, err := gonet.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatalf("impostor dial: %v", err)
	}
	defer conn.Close()
	if err := writeCtrl(conn, ctrlMsg{Type: "join", Addr: "127.0.0.1:1"}); err != nil {
		t.Fatalf("impostor join: %v", err)
	}
	assign, err := readCtrl(conn, "assign")
	if err != nil {
		t.Fatalf("impostor assign: %v", err)
	}
	mesh, err := gonet.Dial("tcp", assign.Addrs[1])
	if err != nil {
		t.Fatalf("impostor mesh dial: %v", err)
	}
	defer mesh.Close()
	local := mesh.LocalAddr().String()
	if err := writeCtrl(mesh, ctrlMsg{Type: "hello", Rank: 9999}); err != nil {
		t.Fatalf("impostor hello: %v", err)
	}
	select {
	case err := <-workerErr:
		if err == nil {
			t.Fatal("worker accepted a malformed HELLO")
		}
		if !strings.Contains(err.Error(), local) {
			t.Fatalf("worker error %q does not name the dialer address %q", err, local)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker wedged on a malformed HELLO")
	}
	<-coordErr // coordinator outcome is irrelevant; just reap it
}

// --- chaos ------------------------------------------------------------

func TestChaosCrashAtIteration(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	c := NewChaos(g[1], ChaosConfig{Mode: ChaosCrash, AtIter: 2}, 0)
	defer c.Close()
	buf := make([]float32, 1)
	for iter := 0; iter < 2; iter++ {
		tag := MakeTag(KindGrad, iter, 0, 1)
		if err := c.Send(0, tag, []float32{1}); err != nil {
			t.Fatalf("Send iter %d before trigger: %v", iter, err)
		}
		if err := g[0].Recv(1, tag, buf); err != nil {
			t.Fatalf("Recv iter %d: %v", iter, err)
		}
	}
	if c.Fired() {
		t.Fatal("chaos fired before its trigger iteration")
	}
	if err := c.Send(0, MakeTag(KindGrad, 2, 0, 1), []float32{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send at trigger: err = %v, want ErrClosed", err)
	}
	if !c.Fired() {
		t.Fatal("chaos did not fire at its trigger iteration")
	}
	if err := c.Recv(0, MakeTag(KindBcast, 2, 0, 0), buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after crash: err = %v, want ErrClosed", err)
	}
	if err := c.SendCtrl(0, MakeTag(KindPong, 0, 0, 1), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendCtrl after crash: err = %v, want ErrClosed", err)
	}
}

func TestChaosSeededTriggerIsDeterministic(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	defer g[1].Close()
	cfg := ChaosConfig{Mode: ChaosCrash, AtIter: -1, IterSpan: 16}
	a := NewChaos(g[1], cfg, 1234)
	b := NewChaos(g[1], cfg, 1234)
	if a.TriggerIter() != b.TriggerIter() {
		t.Fatalf("same seed, different triggers: %d vs %d", a.TriggerIter(), b.TriggerIter())
	}
	if it := a.TriggerIter(); it < 0 || it >= 16 {
		t.Fatalf("seeded trigger %d outside [0,16)", it)
	}
}

func TestChaosHangBlocksUntilClose(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	c := NewChaos(g[1], ChaosConfig{Mode: ChaosHang, AtIter: 0}, 0)
	done := make(chan error, 1)
	go func() {
		done <- c.Send(0, MakeTag(KindGrad, 0, 0, 1), []float32{1})
	}()
	select {
	case err := <-done:
		t.Fatalf("hung Send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Send after hang+Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hung Send did not unblock on Close")
	}
}

func TestChaosPartitionCutsConfiguredPeersOnly(t *testing.T) {
	g := NewLocalGroup(3)
	for _, l := range g {
		defer l.Close()
	}
	c := NewChaos(g[1], ChaosConfig{Mode: ChaosPartition, AtIter: 0, Peers: []int{0}}, 0)
	tag := MakeTag(KindGrad, 0, 0, 1)
	if err := c.Send(0, tag, []float32{1}); err != nil {
		t.Fatalf("partitioned Send must drop silently, got %v", err)
	}
	if err := c.Send(2, tag, []float32{2}); err != nil {
		t.Fatalf("Send to uncut peer: %v", err)
	}
	buf := make([]float32, 1)
	if err := g[2].Recv(1, tag, buf); err != nil || buf[0] != 2 {
		t.Fatalf("uncut peer Recv: %v (got %v), want 2", err, buf)
	}
	// The cut peer got nothing: its control queue and inbox stay empty.
	if err := c.SendCtrl(0, MakeTag(KindPong, 0, 0, 1), nil); err != nil {
		t.Fatalf("partitioned SendCtrl: %v", err)
	}
	if _, _, err := g[0].RecvCtrl(1, 50*time.Millisecond); !errors.Is(err, ErrCtrlTimeout) {
		t.Fatalf("cut peer received a control frame through the partition: %v", err)
	}
}

func TestChaosStraggleDelaysOncePerIteration(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	defer g[1].Close()
	const delay = 60 * time.Millisecond
	c := NewChaos(g[1], ChaosConfig{Mode: ChaosStraggle, AtIter: 1, StraggleDelay: delay}, 0)
	tag0 := MakeTag(KindGrad, 0, 0, 1)
	start := time.Now()
	if err := c.Send(0, tag0, []float32{1}); err != nil {
		t.Fatalf("Send before trigger: %v", err)
	}
	if e := time.Since(start); e >= delay {
		t.Fatalf("pre-trigger Send slept %v", e)
	}
	start = time.Now()
	tag1a := MakeTag(KindGrad, 1, 0, 1)
	tag1b := MakeTag(KindGrad, 1, 1, 1)
	if err := c.Send(0, tag1a, []float32{2}); err != nil {
		t.Fatalf("straggling Send: %v", err)
	}
	if e := time.Since(start); e < delay {
		t.Fatalf("straggling iteration slept only %v, want >= %v", e, delay)
	}
	start = time.Now()
	if err := c.Send(0, tag1b, []float32{3}); err != nil {
		t.Fatalf("second Send of straggling iteration: %v", err)
	}
	if e := time.Since(start); e >= delay {
		t.Fatalf("straggle slept twice in one iteration (%v)", e)
	}
	// Everything still arrives: straggle degrades, never drops.
	buf := make([]float32, 1)
	for i, tag := range []Tag{tag0, tag1a, tag1b} {
		if err := g[0].Recv(1, tag, buf); err != nil {
			t.Fatalf("Recv %d from straggler: %v", i, err)
		}
	}
}

// --- flaky × chaos composition ---------------------------------------

// TestFlakyDupOverPartitionDeliveryCounts composes Flaky duplication
// over a Chaos partition: duplicates of partitioned frames must all be
// shed, duplicates of unpartitioned ones must all arrive (then be
// deduped on delivery). Seeded and fully deterministic: DupProb 1.
func TestFlakyDupOverPartitionDeliveryCounts(t *testing.T) {
	g := NewLocalGroup(3)
	for _, l := range g {
		defer l.Close()
	}
	chaos := NewChaos(g[1], ChaosConfig{Mode: ChaosPartition, AtIter: 0, Peers: []int{0}}, 7)
	f := NewFlaky(chaos, FlakyConfig{DupProb: 1}, 7)
	tag := MakeTag(KindGrad, 0, 0, 1)
	if err := f.Send(0, tag, []float32{1}); err != nil {
		t.Fatalf("Send to cut peer: %v", err)
	}
	if err := f.Send(2, tag, []float32{2}); err != nil {
		t.Fatalf("Send to open peer: %v", err)
	}
	if s := f.Stats(); s.Sends != 2 || s.Dups != 2 {
		t.Fatalf("stats = %+v, want 2 sends and 2 dups", s)
	}
	// Raw delivery counts, observed at the shared inboxes before any
	// Recv dedupes them: 0 frames through the partition, 2 (original +
	// duplicate) on the open link.
	if n := len(g[0].boxes[0][1].frames); n != 0 {
		t.Fatalf("cut link delivered %d frames, want 0", n)
	}
	if n := len(g[2].boxes[2][1].frames); n != 2 {
		t.Fatalf("open link delivered %d frames, want 2", n)
	}
	// And the receiver still sees exactly one copy.
	buf := make([]float32, 1)
	if err := g[2].Recv(1, tag, buf); err != nil || buf[0] != 2 {
		t.Fatalf("Recv: %v (got %v), want 2", err, buf)
	}
	next := MakeTag(KindGrad, 0, 1, 1)
	g[1].Send(2, next, []float32{4})
	if err := g[2].Recv(1, next, buf); err != nil || buf[0] != 4 {
		t.Fatalf("Recv after dedupe: %v (got %v), want 4", err, buf)
	}
}

// TestFlakyDelayOverCrashDeliveryCounts composes Flaky delay over a
// Chaos crash: delayed frames before the trigger all arrive; the crash
// then dominates every later send, and the flaky layer propagates
// ErrClosed untouched.
func TestFlakyDelayOverCrashDeliveryCounts(t *testing.T) {
	g := NewLocalGroup(2)
	defer g[0].Close()
	chaos := NewChaos(g[1], ChaosConfig{Mode: ChaosCrash, AtIter: 1}, 11)
	f := NewFlaky(chaos, FlakyConfig{DelayProb: 1, MaxDelay: time.Millisecond}, 11)
	defer f.Close()
	buf := make([]float32, 1)
	for p := 0; p < 3; p++ {
		tag := MakeTag(KindGrad, 0, p, 1)
		if err := f.Send(0, tag, []float32{float32(p)}); err != nil {
			t.Fatalf("delayed Send %d: %v", p, err)
		}
		if err := g[0].Recv(1, tag, buf); err != nil || buf[0] != float32(p) {
			t.Fatalf("Recv %d: %v (got %v)", p, err, buf)
		}
	}
	if s := f.Stats(); s.Sends != 3 || s.Delays != 3 {
		t.Fatalf("stats = %+v, want 3 delayed sends", s)
	}
	if err := f.Send(0, MakeTag(KindGrad, 1, 0, 1), []float32{9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after crash: err = %v, want ErrClosed", err)
	}
}

// --- views ------------------------------------------------------------

func TestViewReRanksSurvivors(t *testing.T) {
	g := NewLocalGroup(3)
	for _, l := range g {
		defer l.Close()
	}
	// Rank 1 died; 0 and 2 re-form as a 2-rank group.
	v0, err := NewView(g[0], []int{0, 2})
	if err != nil {
		t.Fatalf("NewView rank 0: %v", err)
	}
	v2, err := NewView(g[2], []int{0, 2})
	if err != nil {
		t.Fatalf("NewView rank 2: %v", err)
	}
	if v0.Rank() != 0 || v0.Size() != 2 || v2.Rank() != 1 || v2.Size() != 2 {
		t.Fatalf("view ranks: %d/%d and %d/%d, want 0/2 and 1/2", v0.Rank(), v0.Size(), v2.Rank(), v2.Size())
	}
	// v2 is view-rank 1; sending to view-rank 0 must reach base rank 0.
	tag := MakeTagE(KindGrad, 1, 0, 0, 1)
	if err := v2.Send(0, tag, []float32{42}); err != nil {
		t.Fatalf("view Send: %v", err)
	}
	buf := make([]float32, 1)
	if err := v0.Recv(1, tag, buf); err != nil || buf[0] != 42 {
		t.Fatalf("view Recv: %v (got %v), want 42", err, buf)
	}
	// Control plane translates the same way.
	ptag := MakeTagE(KindPong, 1, 0, 0, 1)
	if err := v2.SendCtrl(0, ptag, []float32{7}); err != nil {
		t.Fatalf("view SendCtrl: %v", err)
	}
	got, payload, err := v0.RecvCtrl(1, time.Second)
	if err != nil || got != ptag || payload[0] != 7 {
		t.Fatalf("view RecvCtrl = %v %v (%v), want %v [7]", got, payload, err, ptag)
	}
}

func TestViewValidation(t *testing.T) {
	g := NewLocalGroup(3)
	for _, l := range g {
		defer l.Close()
	}
	if _, err := NewView(g[0], nil); err == nil {
		t.Error("empty view accepted")
	}
	if _, err := NewView(g[0], []int{2, 0}); err == nil {
		t.Error("unsorted members accepted")
	}
	if _, err := NewView(g[0], []int{0, 0}); err == nil {
		t.Error("duplicate members accepted")
	}
	if _, err := NewView(g[0], []int{0, 3}); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := NewView(g[1], []int{0, 2}); err == nil {
		t.Error("view excluding its own base rank accepted")
	}
	v, err := NewView(g[0], []int{0, 2})
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	var pe *PeerError
	if err := v.Send(2, MakeTag(KindGrad, 0, 0, 0), nil); !errors.As(err, &pe) {
		t.Errorf("send to out-of-view rank: err = %v, want *PeerError", err)
	}
}

func TestViewInterruptReachesBase(t *testing.T) {
	g := NewLocalGroup(3)
	for _, l := range g {
		defer l.Close()
	}
	v0, err := NewView(g[0], []int{0, 2})
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		done <- v0.Recv(1, MakeTagE(KindGrad, 1, 0, 0, 1), make([]float32, 1))
	}()
	time.Sleep(5 * time.Millisecond)
	v0.Interrupt(&PeerDownError{Rank: 2})
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("view Recv under Interrupt: err = %v, want ErrPeerDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("view Recv did not unblock on Interrupt")
	}
	v0.Resume()
}
