package transport

import (
	"sync/atomic"
	"time"
)

// Local is the in-process Transport: every rank lives in the same
// process (one goroutine per replica, as in internal/replica) and links
// are plain shared-memory FIFOs. It is the reference fabric — fully
// deterministic in the values it delivers, race-testable, and free of
// real I/O so simtime can model a run over it — and it is what
// dnncluster's single-process mode and the dist test suite use. The TCP
// transport must be observationally identical to it.
type Local struct {
	rank, size int
	// boxes is the group-shared link matrix: boxes[to][from] is the
	// inbox rank `to` reads frames from rank `from` out of.
	boxes [][]*inbox
	// ctrl is the group-shared control-plane matrix, ctrl[to][from].
	ctrl   [][]*ctrlQueue
	done   chan struct{}
	closed atomic.Bool
}

var _ Transport = (*Local)(nil)

// NewLocalGroup creates a fully-wired in-process group of size ranks
// and returns one endpoint per rank. size must be >= 1.
func NewLocalGroup(size int) []*Local {
	if size < 1 {
		panic("transport: group size must be >= 1")
	}
	boxes := make([][]*inbox, size)
	ctrl := make([][]*ctrlQueue, size)
	for to := range boxes {
		boxes[to] = make([]*inbox, size)
		ctrl[to] = make([]*ctrlQueue, size)
		for from := range boxes[to] {
			boxes[to][from] = newInbox()
			ctrl[to][from] = newCtrlQueue()
		}
	}
	group := make([]*Local, size)
	for r := range group {
		group[r] = &Local{rank: r, size: size, boxes: boxes, ctrl: ctrl, done: make(chan struct{})}
	}
	return group
}

// Rank implements Transport.
func (l *Local) Rank() int { return l.rank }

// Size implements Transport.
func (l *Local) Size() int { return l.size }

// Send implements Transport: it copies payload and enqueues it on the
// (rank → to) link without blocking.
func (l *Local) Send(to int, tag Tag, payload []float32) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= l.size || to == l.rank {
		return &PeerError{Op: "send", Rank: l.rank, Peer: to, Size: l.size}
	}
	l.boxes[to][l.rank].push(frame{tag: tag, payload: append([]float32(nil), payload...)})
	return nil
}

// Recv implements Transport.
func (l *Local) Recv(from int, tag Tag, buf []float32) error {
	if from < 0 || from >= l.size || from == l.rank {
		return &PeerError{Op: "recv", Rank: l.rank, Peer: from, Size: l.size}
	}
	return l.boxes[l.rank][from].recv(from, tag, buf)
}

// SendCtrl implements Transport: it enqueues a control frame on the
// (rank → to) link, shedding it if the peer's queue is full.
func (l *Local) SendCtrl(to int, tag Tag, payload []float32) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= l.size || to == l.rank {
		return &PeerError{Op: "send-ctrl", Rank: l.rank, Peer: to, Size: l.size}
	}
	l.ctrl[to][l.rank].offer(frame{tag: tag, payload: append([]float32(nil), payload...)})
	return nil
}

// RecvCtrl implements Transport.
func (l *Local) RecvCtrl(from int, timeout time.Duration) (Tag, []float32, error) {
	if from < 0 || from >= l.size || from == l.rank {
		return 0, nil, &PeerError{Op: "recv-ctrl", Rank: l.rank, Peer: from, Size: l.size}
	}
	return l.ctrl[l.rank][from].take(timeout, l.done)
}

// Interrupt implements Transport: it poisons this rank's blocked
// data-plane Recvs with err until Resume.
func (l *Local) Interrupt(err error) {
	for _, ib := range l.boxes[l.rank] {
		ib.interrupt(err)
	}
}

// Resume implements Transport.
func (l *Local) Resume() {
	for _, ib := range l.boxes[l.rank] {
		ib.resume()
	}
}

// Close implements Transport: it closes this rank's inboxes, unblocking
// its pending Recvs with ErrClosed and its pending RecvCtrls. Other
// ranks' endpoints are unaffected; their sends to this rank are shed.
func (l *Local) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	close(l.done)
	for _, ib := range l.boxes[l.rank] {
		ib.close()
	}
	return nil
}
