package transport

import (
	"fmt"
	"sync"
	"time"

	"coarsegrain/internal/rng"
)

// FlakyConfig sets the per-Send fault probabilities of a Flaky wrapper.
// The probabilities are evaluated independently in the order drop, then
// duplicate, then delay; a dropped frame is never also duplicated.
type FlakyConfig struct {
	// DropProb is the probability a Send silently loses the frame and
	// reports ErrTransient, exercising the caller's retry loop.
	DropProb float32
	// DupProb is the probability a Send transmits the frame twice,
	// exercising the receiver's dedupe.
	DupProb float32
	// DelayProb is the probability a Send sleeps up to MaxDelay first,
	// exercising ordering under skew.
	DelayProb float32
	// MaxDelay bounds the injected delay (default 2ms when zero and
	// DelayProb > 0).
	MaxDelay time.Duration
}

// FlakyStats counts the faults a Flaky wrapper has injected.
type FlakyStats struct {
	Sends, Drops, Dups, Delays int
}

// Flaky wraps a Transport with seeded, reproducible message faults —
// the network analogue of faultinject.FlakyOpener. Because every fault
// decision comes from a private internal/rng stream, a failing scenario
// replays exactly under the same seed (ROBUSTNESS.md); and because the
// receiving side's dedupe plus the sender's bounded retry absorb every
// injected fault, a flaky run must still converge to the bit-identical
// training result — asserted by the dist test suite.
type Flaky struct {
	inner Transport
	cfg   FlakyConfig

	mu    sync.Mutex
	r     *rng.RNG
	stats FlakyStats
}

var _ Transport = (*Flaky)(nil)

// NewFlaky wraps t with seeded faults. A zero config injects nothing.
func NewFlaky(t Transport, cfg FlakyConfig, seed uint64) *Flaky {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	return &Flaky{inner: t, cfg: cfg, r: rng.New(seed, 0xF1A2B)}
}

// Stats returns the fault counts so far.
func (f *Flaky) Stats() FlakyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Rank implements Transport.
func (f *Flaky) Rank() int { return f.inner.Rank() }

// Size implements Transport.
func (f *Flaky) Size() int { return f.inner.Size() }

// Send implements Transport, possibly dropping, duplicating or delaying
// the frame first.
func (f *Flaky) Send(to int, tag Tag, payload []float32) error {
	f.mu.Lock()
	f.stats.Sends++
	drop := f.r.Bernoulli(f.cfg.DropProb)
	dup := !drop && f.r.Bernoulli(f.cfg.DupProb)
	var delay time.Duration
	if !drop && f.r.Bernoulli(f.cfg.DelayProb) {
		delay = time.Duration(f.r.Intn(int(f.cfg.MaxDelay)))
		f.stats.Delays++
	}
	if drop {
		f.stats.Drops++
	}
	if dup {
		f.stats.Dups++
	}
	f.mu.Unlock()

	if drop {
		return fmt.Errorf("flaky: dropped %v to rank %d: %w", tag, to, ErrTransient)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if err := f.inner.Send(to, tag, payload); err != nil {
		return err
	}
	if dup {
		return f.inner.Send(to, tag, payload)
	}
	return nil
}

// Recv implements Transport.
func (f *Flaky) Recv(from int, tag Tag, buf []float32) error {
	return f.inner.Recv(from, tag, buf)
}

// SendCtrl implements Transport. Control frames pass through unfaulted:
// the fault model targets the lock-step data plane, and the elastic
// fencing protocol already tolerates shed control frames by re-sending.
func (f *Flaky) SendCtrl(to int, tag Tag, payload []float32) error {
	return f.inner.SendCtrl(to, tag, payload)
}

// RecvCtrl implements Transport.
func (f *Flaky) RecvCtrl(from int, timeout time.Duration) (Tag, []float32, error) {
	return f.inner.RecvCtrl(from, timeout)
}

// Interrupt implements Transport.
func (f *Flaky) Interrupt(err error) { f.inner.Interrupt(err) }

// Resume implements Transport.
func (f *Flaky) Resume() { f.inner.Resume() }

// Close implements Transport.
func (f *Flaky) Close() error { return f.inner.Close() }
