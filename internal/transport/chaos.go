package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"coarsegrain/internal/rng"
)

// ChaosMode selects the failure a Chaos wrapper injects.
type ChaosMode int

const (
	// ChaosNone injects nothing.
	ChaosNone ChaosMode = iota
	// ChaosCrash kills the endpoint at the trigger iteration: the
	// underlying transport is closed and every subsequent operation
	// returns ErrClosed — the in-process analogue of kill -9.
	ChaosCrash
	// ChaosHang freezes the endpoint at the trigger iteration: every
	// subsequent operation blocks until Close. The rank looks alive at
	// the TCP level but goes silent — the failure heartbeats exist for.
	ChaosHang
	// ChaosPartition cuts this endpoint's outbound traffic (data and
	// control) to the configured peers from the trigger iteration on;
	// frames are silently dropped, as a one-way network partition would.
	// Wrap both endpoints to model a symmetric cut.
	ChaosPartition
	// ChaosStraggle slows the endpoint down: from the trigger iteration
	// on, the first data-plane send of every iteration sleeps for
	// StraggleDelay. Heartbeats still flow, so the rank is demonstrably
	// alive — just too slow — which is exactly what separates the
	// straggler-deadline path from the dead-peer path.
	ChaosStraggle
)

// String implements fmt.Stringer.
func (m ChaosMode) String() string {
	switch m {
	case ChaosNone:
		return "none"
	case ChaosCrash:
		return "crash"
	case ChaosHang:
		return "hang"
	case ChaosPartition:
		return "partition"
	case ChaosStraggle:
		return "straggle"
	default:
		return fmt.Sprintf("chaos(%d)", int(m))
	}
}

// ChaosConfig configures one injected cluster failure.
type ChaosConfig struct {
	Mode ChaosMode
	// AtIter is the training iteration whose first data-plane operation
	// triggers the failure. Negative means pick one from the seed in
	// [0, IterSpan) — seeded chaos that replays exactly.
	AtIter int
	// IterSpan bounds the seeded trigger choice (default 8).
	IterSpan int
	// Peers lists the base ranks a partition cuts (ChaosPartition only).
	Peers []int
	// StraggleDelay is the per-iteration slowdown (ChaosStraggle only,
	// default 250ms).
	StraggleDelay time.Duration
}

// Chaos wraps a Transport with one seeded, reproducible failure —
// crash, hang, partition, or straggle — triggered when the data plane
// first touches the configured iteration. It is the cluster-level
// member of the faultinject family: Flaky perturbs individual frames,
// Chaos removes (or degrades) a whole rank, which is what the elastic
// fault-tolerance layer in internal/dist exists to survive.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig
	cut   map[int]bool

	fired     atomic.Bool
	lastSlept atomic.Int64 // last iteration a straggle sleep ran for
	stopped   chan struct{}
	closeOnce sync.Once
}

var _ Transport = (*Chaos)(nil)

// NewChaos wraps t with the configured failure. seed drives the trigger
// choice when cfg.AtIter is negative.
func NewChaos(t Transport, cfg ChaosConfig, seed uint64) *Chaos {
	if cfg.IterSpan <= 0 {
		cfg.IterSpan = 8
	}
	if cfg.AtIter < 0 {
		cfg.AtIter = rng.New(seed, 0xC4A05).Intn(cfg.IterSpan)
	}
	if cfg.StraggleDelay <= 0 {
		cfg.StraggleDelay = 250 * time.Millisecond
	}
	cut := make(map[int]bool, len(cfg.Peers))
	for _, p := range cfg.Peers {
		cut[p] = true
	}
	c := &Chaos{inner: t, cfg: cfg, cut: cut, stopped: make(chan struct{})}
	c.lastSlept.Store(-1)
	return c
}

// TriggerIter returns the resolved trigger iteration (after any seeded
// choice).
func (c *Chaos) TriggerIter() int { return c.cfg.AtIter }

// Fired reports whether the failure has triggered.
func (c *Chaos) Fired() bool { return c.fired.Load() }

// arm fires the failure if tag has reached the trigger iteration and
// reports whether the failure is active.
func (c *Chaos) arm(tag Tag) bool {
	if c.cfg.Mode == ChaosNone {
		return false
	}
	if c.fired.Load() {
		return true
	}
	if tag.Iter() >= c.cfg.AtIter {
		c.fired.Store(true)
		return true
	}
	return false
}

// crash closes the wrapped endpoint exactly once.
func (c *Chaos) crash() {
	c.closeOnce.Do(func() {
		close(c.stopped)
		c.inner.Close()
	})
}

// hang blocks until the endpoint is closed.
func (c *Chaos) hang() {
	<-c.stopped
}

// straggleSleep sleeps once per iteration, interruptibly.
func (c *Chaos) straggleSleep(iter int) {
	if int(c.lastSlept.Load()) >= iter {
		return
	}
	c.lastSlept.Store(int64(iter))
	t := time.NewTimer(c.cfg.StraggleDelay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.stopped:
	}
}

// Rank implements Transport.
func (c *Chaos) Rank() int { return c.inner.Rank() }

// Size implements Transport.
func (c *Chaos) Size() int { return c.inner.Size() }

// Send implements Transport, injecting the configured failure first.
func (c *Chaos) Send(to int, tag Tag, payload []float32) error {
	if c.arm(tag) {
		switch c.cfg.Mode {
		case ChaosCrash:
			c.crash()
			return ErrClosed
		case ChaosHang:
			c.hang()
			return ErrClosed
		case ChaosPartition:
			if c.cut[to] {
				return nil // dropped on the floor, as a partition would
			}
		case ChaosStraggle:
			c.straggleSleep(tag.Iter())
		}
	}
	return c.inner.Send(to, tag, payload)
}

// Recv implements Transport.
func (c *Chaos) Recv(from int, tag Tag, buf []float32) error {
	if c.arm(tag) {
		switch c.cfg.Mode {
		case ChaosCrash:
			c.crash()
			return ErrClosed
		case ChaosHang:
			c.hang()
			return ErrClosed
		}
	}
	return c.inner.Recv(from, tag, buf)
}

// SendCtrl implements Transport. Control sends obey the current failure
// state but never trigger it: arming is a data-plane event keyed to the
// training iteration, which heartbeat tags do not carry.
func (c *Chaos) SendCtrl(to int, tag Tag, payload []float32) error {
	if c.fired.Load() {
		switch c.cfg.Mode {
		case ChaosCrash:
			return ErrClosed
		case ChaosHang:
			c.hang()
			return ErrClosed
		case ChaosPartition:
			if c.cut[to] {
				return nil
			}
		}
	}
	return c.inner.SendCtrl(to, tag, payload)
}

// RecvCtrl implements Transport.
func (c *Chaos) RecvCtrl(from int, timeout time.Duration) (Tag, []float32, error) {
	if c.fired.Load() {
		switch c.cfg.Mode {
		case ChaosCrash:
			return 0, nil, ErrClosed
		case ChaosHang:
			c.hang()
			return 0, nil, ErrClosed
		}
	}
	return c.inner.RecvCtrl(from, timeout)
}

// Interrupt implements Transport.
func (c *Chaos) Interrupt(err error) { c.inner.Interrupt(err) }

// Resume implements Transport.
func (c *Chaos) Resume() { c.inner.Resume() }

// Close implements Transport; it also unblocks a hung or straggling
// endpoint.
func (c *Chaos) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.stopped)
		err = c.inner.Close()
	})
	return err
}
