package transport

import (
	"math"
	"testing"
)

// gradLike fills out with a deterministic gradient-shaped signal: mixed
// magnitudes across several decades, signs alternating irregularly, a
// sprinkle of exact zeros. A splitmix-style generator keeps it
// reproducible without the seeded rng package (this is the transport
// layer; no heavy deps).
func gradLike(out []float32, seed uint64) {
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range out {
		r := next()
		if r%17 == 0 {
			out[i] = 0
			continue
		}
		mag := math.Pow(10, -float64(r>>8%7)) // 1e0 .. 1e-6
		v := (float64(r%2001)/1000 - 1) * mag
		out[i] = float32(v)
	}
}

func TestF16SpecialValuesRoundTrip(t *testing.T) {
	cases := []struct {
		in   float32
		want float32
	}{
		{0, 0},
		{float32(math.Copysign(0, -1)), float32(math.Copysign(0, -1))},
		{1, 1},
		{-1, -1},
		{0.5, 0.5},
		{65504, 65504},             // largest f16 normal
		{65505, 65504},             // rounds back down
		{65520, float32(math.Inf(1))}, // midpoint rounds to even = Inf
		{1e30, float32(math.Inf(1))},  // overflow saturates
		{-1e30, float32(math.Inf(-1))},
		{5.9604645e-8, 5.9604645e-8}, // smallest f16 subnormal
		{1e-10, 0},                   // below subnormal range
		{float32(math.Inf(1)), float32(math.Inf(1))},
		{0.0999755859375, 0.0999755859375}, // exactly representable in f16
	}
	for _, c := range cases {
		got := f16ToF32(f16FromF32(c.in))
		if math.Float32bits(got) != math.Float32bits(c.want) {
			t.Errorf("f16 round trip of %g: got %g (bits %08x), want %g", c.in, got, math.Float32bits(got), c.want)
		}
	}
	if got := f16ToF32(f16FromF32(float32(math.NaN()))); !math.IsNaN(float64(got)) {
		t.Errorf("f16 round trip of NaN: got %g, want NaN", got)
	}
}

// TestF16RoundToNearestEven pins the tie-breaking rule: a value exactly
// between two representable halves must round to the even mantissa.
func TestF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly between f16(1.0) (mantissa 0, even) and
	// 1+2^-10 (mantissa 1, odd): must round down to 1.0.
	in := float32(1) + float32(math.Ldexp(1, -11))
	if got := f16ToF32(f16FromF32(in)); got != 1 {
		t.Errorf("tie at 1+2^-11 rounded to %g, want 1 (even)", got)
	}
	// 1 + 3*2^-11 is exactly between mantissa 1 (odd) and 2 (even):
	// must round up to 1+2^-9.
	in = float32(1) + 3*float32(math.Ldexp(1, -11))
	want := float32(1) + float32(math.Ldexp(1, -9))
	if got := f16ToF32(f16FromF32(in)); got != want {
		t.Errorf("tie at 1+3*2^-11 rounded to %g, want %g (even)", got, want)
	}
}

func TestCodecWireLen(t *testing.T) {
	cases := []struct {
		codec   Codec
		n, want int
	}{
		{F32Codec{}, 0, 0}, {F32Codec{}, 7, 7}, {F32Codec{}, 1000, 1000},
		{F16Codec{}, 0, 0}, {F16Codec{}, 1, 1}, {F16Codec{}, 7, 4}, {F16Codec{}, 8, 4},
		{Int8Codec{}, 0, 0}, {Int8Codec{}, 1, 2}, {Int8Codec{}, 4, 2}, {Int8Codec{}, 5, 3},
		{Int8Codec{}, 256, 65}, {Int8Codec{}, 257, 67}, {Int8Codec{}, 512, 130},
	}
	for _, c := range cases {
		if got := c.codec.WireLen(c.n); got != c.want {
			t.Errorf("%s.WireLen(%d) = %d, want %d", c.codec.Name(), c.n, got, c.want)
		}
	}
}

// TestCodecDifferentialErrorBounds is the differential test against the
// f32 path: every codec's decode(encode(x)) must stay within its format
// error bound of x, element by element, on gradient-shaped data spanning
// seven decades — including lengths that exercise the odd-tail and
// group-boundary paths.
func TestCodecDifferentialErrorBounds(t *testing.T) {
	for _, n := range []int{1, 2, 3, 255, 256, 257, 1000, 4096} {
		src := make([]float32, n)
		gradLike(src, uint64(n)*31+7)
		for _, codec := range []Codec{F32Codec{}, F16Codec{}, Int8Codec{}} {
			wire := make([]float32, codec.WireLen(n))
			dec := make([]float32, n)
			codec.Encode(wire, src)
			codec.Decode(dec, wire)
			for i, want := range src {
				got := dec[i]
				var bound float64
				switch codec.(type) {
				case F32Codec:
					bound = 0 // identity: bit-exact
				case F16Codec:
					// Relative 2^-11 for normals plus the subnormal
					// quantum for the tiny tail.
					bound = math.Abs(float64(want))/2048 + math.Ldexp(1, -25)
				case Int8Codec:
					// Half a quantization step of the element's group.
					lo := (i / Int8GroupLen) * Int8GroupLen
					hi := lo + Int8GroupLen
					if hi > n {
						hi = n
					}
					var maxabs float64
					for _, v := range src[lo:hi] {
						if a := math.Abs(float64(v)); a > maxabs {
							maxabs = a
						}
					}
					bound = maxabs / 254 * 1.0001
				}
				if err := math.Abs(float64(got - want)); err > bound {
					t.Fatalf("%s n=%d elem %d: decode %g vs source %g, error %g exceeds bound %g",
						codec.Name(), n, i, got, want, err, bound)
				}
			}
		}
	}
}

// TestCodecDeterministic pins bit-for-bit reproducibility of the wire:
// encoding the same gradient twice must produce identical words (the
// cluster's determinism contract extends to compressed frames).
func TestCodecDeterministic(t *testing.T) {
	const n = 2000
	src := make([]float32, n)
	gradLike(src, 99)
	for _, codec := range []Codec{F32Codec{}, F16Codec{}, Int8Codec{}} {
		a := make([]float32, codec.WireLen(n))
		b := make([]float32, codec.WireLen(n))
		codec.Encode(a, src)
		codec.Encode(b, src)
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%s: wire word %d differs across identical encodes", codec.Name(), i)
			}
		}
	}
}

func TestInt8AllZeroGroupDecodesExact(t *testing.T) {
	src := make([]float32, 300) // one full group of zeros plus a live tail
	for i := 256; i < 300; i++ {
		src[i] = float32(i-270) * 0.01
	}
	codec := Int8Codec{}
	wire := make([]float32, codec.WireLen(len(src)))
	dec := make([]float32, len(src))
	codec.Encode(wire, src)
	codec.Decode(dec, wire)
	for i := 0; i < 256; i++ {
		if dec[i] != 0 {
			t.Fatalf("zero group element %d decoded to %g", i, dec[i])
		}
	}
}

// TestInt8RoundHalfAwayFromZero pins the quantizer's rounding rule: it
// must be an odd function so compression cannot introduce sign bias.
func TestInt8RoundHalfAwayFromZero(t *testing.T) {
	// scale = 1 (maxabs = 127), so x quantizes to round(x).
	src := []float32{127, 0.5, -0.5, 1.5, -1.5, 2.5, -2.5}
	codec := Int8Codec{}
	wire := make([]float32, codec.WireLen(len(src)))
	dec := make([]float32, len(src))
	codec.Encode(wire, src)
	codec.Decode(dec, wire)
	want := []float32{127, 1, -1, 2, -2, 3, -3}
	for i := range want {
		if dec[i] != want[i] {
			t.Errorf("quantize %g: got %g, want %g", src[i], dec[i], want[i])
		}
	}
}

// TestCodecWireRatio pins the compression ratios the PERFORMANCE.md
// table claims: f16 halves the wire, int8 cuts it ~3.9x — comfortably
// beyond the ≥3.5x acceptance bar — at gradient-slice sizes.
func TestCodecWireRatio(t *testing.T) {
	const n = 100000
	if r := float64(n) / float64((F16Codec{}).WireLen(n)); r < 1.99 {
		t.Errorf("f16 wire ratio %.2f, want ~2", r)
	}
	if r := float64(n) / float64((Int8Codec{}).WireLen(n)); r < 3.5 {
		t.Errorf("int8 wire ratio %.2f, want >= 3.5", r)
	}
}

func TestCodecByName(t *testing.T) {
	for name, want := range map[string]string{"": "f32", "f32": "f32", "f16": "f16", "int8": "int8"} {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatalf("CodecByName(%q): %v", name, err)
		}
		if c.Name() != want {
			t.Errorf("CodecByName(%q).Name() = %q, want %q", name, c.Name(), want)
		}
	}
	if _, err := CodecByName("bf16"); err == nil {
		t.Error("CodecByName(bf16) should fail")
	}
}

func BenchmarkCodec(b *testing.B) {
	const n = 1 << 20
	src := make([]float32, n)
	gradLike(src, 5)
	for _, codec := range []Codec{F32Codec{}, F16Codec{}, Int8Codec{}} {
		wire := make([]float32, codec.WireLen(n))
		dec := make([]float32, n)
		b.Run("encode/"+codec.Name(), func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			for i := 0; i < b.N; i++ {
				codec.Encode(wire, src)
			}
		})
		b.Run("decode/"+codec.Name(), func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			for i := 0; i < b.N; i++ {
				codec.Decode(dec, wire)
			}
		})
	}
}
