package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP wire protocol, v1 (DISTRIBUTED.md):
//
// Rendezvous (length-prefixed JSON control messages, u32 LE length):
//
//	worker → coordinator  {"type":"join","addr":"<mesh listen addr>"}
//	coordinator → worker  {"type":"assign","rank":r,"size":k,"addrs":[...]}
//	worker → worker       {"type":"hello","rank":r}   (on each mesh dial)
//
// The coordinator is rank 0; it assigns worker ranks 1..k-1 in join
// order and its join connections become its mesh links. Workers listen
// for mesh peers before joining, then rank r dials every lower worker
// rank and accepts every higher one — an acyclic dial order, so the
// mesh always completes.
//
// Data frames (after rendezvous, both directions on every link):
//
//	tag     u64 LE   (see Tag)
//	count   u32 LE   (payload length in float32s)
//	payload count × float32 LE
//
// Everything is little-endian to match the snapshot format (CGDNN).

// maxFrameElems bounds a frame's declared payload length; anything
// larger is a corrupt or hostile header, not a real tensor.
const maxFrameElems = 1 << 26

// maxCtrlLen bounds a control message's declared length.
const maxCtrlLen = 1 << 20

// defaultRendezvousTimeout bounds how long a rendezvous read (the
// coordinator waiting for a JOIN, a worker waiting for a mesh HELLO)
// may block on one peer. A worker that connects and then dies or stalls
// mid-handshake fails the rendezvous loudly — with the peer's address —
// instead of wedging the group forever.
const defaultRendezvousTimeout = 30 * time.Second

// closeDrainTimeout bounds how long Close waits for a link's outbound
// queue to drain. A peer that stopped reading (dead process, full
// kernel buffers) would otherwise hang Close; after the bound the
// remaining frames are abandoned and the socket is torn down.
const closeDrainTimeout = 5 * time.Second

// ctrlMsg is the JSON rendezvous message.
type ctrlMsg struct {
	Type  string   `json:"type"`
	Addr  string   `json:"addr,omitempty"`
	Rank  int      `json:"rank,omitempty"`
	Size  int      `json:"size,omitempty"`
	Addrs []string `json:"addrs,omitempty"`
}

func writeCtrl(w io.Writer, m ctrlMsg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func readCtrl(r io.Reader, wantType string) (ctrlMsg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return ctrlMsg{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxCtrlLen {
		return ctrlMsg{}, fmt.Errorf("transport: control message length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return ctrlMsg{}, err
	}
	var m ctrlMsg
	if err := json.Unmarshal(b, &m); err != nil {
		return ctrlMsg{}, fmt.Errorf("transport: bad control message: %w", err)
	}
	if m.Type != wantType {
		return ctrlMsg{}, fmt.Errorf("transport: control message type %q, want %q", m.Type, wantType)
	}
	return m, nil
}

// encodeFrame serializes one data frame.
func encodeFrame(tag Tag, payload []float32) []byte {
	b := make([]byte, 12+4*len(payload))
	binary.LittleEndian.PutUint64(b, uint64(tag))
	binary.LittleEndian.PutUint32(b[8:], uint32(len(payload)))
	for i, v := range payload {
		binary.LittleEndian.PutUint32(b[12+4*i:], math.Float32bits(v))
	}
	return b
}

// tcpWriter is one link's outbound queue. Send enqueues encoded frames
// and returns immediately; a dedicated goroutine drains the queue onto
// the socket, so a full kernel buffer can never block the training
// goroutine (and, because every peer's reader goroutine always drains,
// the socket itself can never jam the mesh into a deadlock).
type tcpWriter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	err    error
	closed bool
}

func newTCPWriter() *tcpWriter {
	w := &tcpWriter{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *tcpWriter) enqueue(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	w.queue = append(w.queue, b)
	w.cond.Signal()
	return nil
}

// loop drains the queue onto conn until closed (after a final flush) or
// a write error (recorded for subsequent enqueues).
func (w *tcpWriter) loop(conn gonet.Conn) {
	bw := bufio.NewWriter(conn)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed && w.err == nil {
			// Opportunistically flush buffered bytes before sleeping.
			w.mu.Unlock()
			if err := bw.Flush(); err != nil {
				w.fail(err)
				return
			}
			w.mu.Lock()
			if len(w.queue) == 0 && !w.closed && w.err == nil {
				w.cond.Wait()
			}
		}
		if w.err != nil || (w.closed && len(w.queue) == 0) {
			w.cond.Broadcast()
			w.mu.Unlock()
			bw.Flush()
			return
		}
		b := w.queue[0]
		w.queue[0] = nil
		w.queue = w.queue[1:]
		w.mu.Unlock()
		if _, err := bw.Write(b); err != nil {
			w.fail(err)
			return
		}
	}
}

func (w *tcpWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = fmt.Errorf("transport: write: %w", err)
	}
	w.queue = nil
	w.cond.Broadcast()
	w.mu.Unlock()
}

// closeFlush marks the writer closed and waits until the loop has
// drained the queue (or failed), so Close never cuts off in-flight
// frames — but only up to limit: a peer that stopped reading would
// otherwise park Close forever behind full kernel buffers. On timeout
// the remaining frames are abandoned (the caller tears the socket down
// next, which unblocks the loop goroutine's pending write).
func (w *tcpWriter) closeFlush(limit time.Duration) {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	wake := time.AfterFunc(limit, func() {
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	})
	deadline := time.Now().Add(limit)
	for len(w.queue) > 0 && w.err == nil && time.Now().Before(deadline) {
		w.cond.Wait()
	}
	wake.Stop()
	if len(w.queue) > 0 && w.err == nil {
		w.err = fmt.Errorf("transport: close abandoned %d undrained frames after %v: %w",
			len(w.queue), limit, ErrClosed)
		w.queue = nil
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// TCP is the cross-process Transport: a full mesh of TCP connections
// carrying length-prefixed binary frames, built by a coordinator
// rendezvous (NewCoordinator on rank 0, DialTCP on workers). Delivery
// semantics are identical to Local — per-link FIFO with duplicate and
// stale-frame discard — so a distributed run over TCP is bit-identical
// to the same run over the in-process fabric.
type TCP struct {
	rank, size int
	conns      []gonet.Conn // conns[peer]; nil at own rank
	writers    []*tcpWriter
	inboxes    []*inbox
	ctrls      []*ctrlQueue
	done       chan struct{}
	closed     atomic.Bool
	readers    sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// newTCP wires the loops over an established mesh. conns[rank] must be
// nil and every other entry a live connection.
func newTCP(rank int, conns []gonet.Conn) *TCP {
	t := &TCP{rank: rank, size: len(conns), conns: conns,
		writers: make([]*tcpWriter, len(conns)), inboxes: make([]*inbox, len(conns)),
		ctrls: make([]*ctrlQueue, len(conns)), done: make(chan struct{})}
	for peer, conn := range conns {
		if conn == nil {
			continue
		}
		t.writers[peer] = newTCPWriter()
		t.inboxes[peer] = newInbox()
		t.ctrls[peer] = newCtrlQueue()
		//dnnlint:ignore gorolife joined by the closeFlush cond handshake: Close drains the queue and loop exits on the closed flag
		go t.writers[peer].loop(conn)
		t.readers.Add(1)
		go t.readLoop(peer, conn)
	}
	return t
}

// readLoop drains one link, pushing frames into its inbox. Always
// draining is what guarantees the mesh cannot deadlock on full socket
// buffers.
func (t *TCP) readLoop(peer int, conn gonet.Conn) {
	defer t.readers.Done()
	br := bufio.NewReader(conn)
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.linkDown(peer, err)
			return
		}
		tag := Tag(binary.LittleEndian.Uint64(hdr[:8]))
		n := binary.LittleEndian.Uint32(hdr[8:])
		if n > maxFrameElems {
			t.linkDown(peer, fmt.Errorf("transport: frame from rank %d declares %d elements", peer, n))
			return
		}
		raw := make([]byte, 4*n)
		if _, err := io.ReadFull(br, raw); err != nil {
			t.linkDown(peer, err)
			return
		}
		payload := make([]float32, n)
		for i := range payload {
			payload[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		// Control frames ride the same socket (preserving one wire format)
		// but land in the out-of-band queue so a blocked data Recv cannot
		// starve a heartbeat or fence.
		if tag.Kind().Ctrl() {
			t.ctrls[peer].offer(frame{tag: tag, payload: payload})
			continue
		}
		t.inboxes[peer].push(frame{tag: tag, payload: payload})
	}
}

// linkDown ends a link: a close-time EOF just closes the inbox, an
// unexpected failure poisons it with *PeerDownError so pending Recvs
// fail loudly and the elastic supervisor can attribute the death.
func (t *TCP) linkDown(peer int, err error) {
	if t.closed.Load() {
		t.inboxes[peer].close()
		return
	}
	t.inboxes[peer].fail(&PeerDownError{Rank: peer, Cause: fmt.Errorf("link read: %w", err)})
}

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCP) Size() int { return t.size }

// Send implements Transport: it serializes the frame and enqueues it on
// the link's writer without waiting for the socket. A link whose writer
// has failed reports *PeerDownError naming the peer.
func (t *TCP) Send(to int, tag Tag, payload []float32) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= t.size || to == t.rank {
		return &PeerError{Op: "send", Rank: t.rank, Peer: to, Size: t.size}
	}
	if err := t.writers[to].enqueue(encodeFrame(tag, payload)); err != nil {
		if errors.Is(err, ErrClosed) || errors.Is(err, ErrPeerDown) {
			return err
		}
		return &PeerDownError{Rank: to, Cause: err}
	}
	return nil
}

// Recv implements Transport.
func (t *TCP) Recv(from int, tag Tag, buf []float32) error {
	if from < 0 || from >= t.size || from == t.rank {
		return &PeerError{Op: "recv", Rank: t.rank, Peer: from, Size: t.size}
	}
	return t.inboxes[from].recv(from, tag, buf)
}

// SendCtrl implements Transport: control frames use the same socket and
// wire format as data, differing only in where the receiver routes them.
func (t *TCP) SendCtrl(to int, tag Tag, payload []float32) error {
	return t.Send(to, tag, payload)
}

// RecvCtrl implements Transport.
func (t *TCP) RecvCtrl(from int, timeout time.Duration) (Tag, []float32, error) {
	if from < 0 || from >= t.size || from == t.rank {
		return 0, nil, &PeerError{Op: "recv-ctrl", Rank: t.rank, Peer: from, Size: t.size}
	}
	return t.ctrls[from].take(timeout, t.done)
}

// Interrupt implements Transport.
func (t *TCP) Interrupt(err error) {
	for _, ib := range t.inboxes {
		if ib != nil {
			ib.interrupt(err)
		}
	}
}

// Resume implements Transport.
func (t *TCP) Resume() {
	for _, ib := range t.inboxes {
		if ib != nil {
			ib.resume()
		}
	}
}

// Close implements Transport: it flushes every outbound queue (bounded
// — a dead peer cannot park Close behind full kernel buffers), then
// tears the mesh down and waits for the readers to exit.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	for _, w := range t.writers {
		if w != nil {
			w.closeFlush(closeDrainTimeout)
		}
	}
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
	t.readers.Wait()
	return nil
}

// Coordinator is the rendezvous point of a TCP training group: rank 0
// listens, workers DialTCP it, and Wait blocks until all size-1 workers
// have joined, then returns rank 0's wired endpoint.
type Coordinator struct {
	ln   gonet.Listener
	size int
	// JoinTimeout bounds how long Wait blocks on one accepted connection
	// for its JOIN message (zero means defaultRendezvousTimeout). A
	// worker that connects and then dies or stalls mid-handshake fails
	// the rendezvous with its address instead of wedging it.
	JoinTimeout time.Duration
}

// NewCoordinator starts listening for a group of size ranks on addr
// (e.g. "127.0.0.1:0"; use Addr for the bound address). The handshake
// itself happens in Wait, so callers can publish Addr — dnncluster's
// -addr-file — before blocking.
func NewCoordinator(addr string, size int) (*Coordinator, error) {
	if size < 1 {
		return nil, fmt.Errorf("transport: group size %d < 1", size)
	}
	if size > 1<<16 {
		return nil, fmt.Errorf("transport: group size %d exceeds tag origin field", size)
	}
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Coordinator{ln: ln, size: size}, nil
}

// Addr returns the coordinator's bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Wait accepts the size-1 worker joins, assigns ranks in join order,
// distributes the mesh address book, and returns rank 0's Transport.
// The join connections become rank 0's mesh links.
func (c *Coordinator) Wait() (*TCP, error) {
	defer c.ln.Close()
	conns := make([]gonet.Conn, c.size)
	addrs := make([]string, c.size)
	fail := func(err error) (*TCP, error) {
		for _, conn := range conns {
			if conn != nil {
				conn.Close()
			}
		}
		return nil, err
	}
	joinTimeout := c.JoinTimeout
	if joinTimeout <= 0 {
		joinTimeout = defaultRendezvousTimeout
	}
	for r := 1; r < c.size; r++ {
		conn, err := c.ln.Accept()
		if err != nil {
			return fail(err)
		}
		// Deadline the handshake read: a joiner that dies or stalls
		// mid-JOIN must fail this rendezvous loudly, not wedge it.
		conn.SetReadDeadline(time.Now().Add(joinTimeout))
		join, err := readCtrl(conn, "join")
		if err != nil {
			addr := conn.RemoteAddr()
			conn.Close()
			return fail(fmt.Errorf("transport: join from %v: %w", addr, err))
		}
		conn.SetReadDeadline(time.Time{})
		conns[r] = conn
		addrs[r] = join.Addr
	}
	for r := 1; r < c.size; r++ {
		if err := writeCtrl(conns[r], ctrlMsg{Type: "assign", Rank: r, Size: c.size, Addrs: addrs}); err != nil {
			return fail(fmt.Errorf("transport: assign rank %d: %w", r, err))
		}
	}
	return newTCP(0, conns), nil
}

// DialTCP joins a worker to the group rendezvousing at coordAddr and
// blocks until the full mesh is wired, returning the worker's endpoint
// (rank assigned by the coordinator, in join order). The worker's mesh
// listener binds to the local interface that reaches the coordinator,
// so multi-host groups advertise a routable address.
func DialTCP(coordAddr string) (*TCP, error) {
	coord, err := gonet.Dial("tcp", coordAddr)
	if err != nil {
		return nil, err
	}
	host, _, err := gonet.SplitHostPort(coord.LocalAddr().String())
	if err != nil {
		coord.Close()
		return nil, err
	}
	ln, err := gonet.Listen("tcp", gonet.JoinHostPort(host, "0"))
	if err != nil {
		coord.Close()
		return nil, err
	}
	defer ln.Close()
	if err := writeCtrl(coord, ctrlMsg{Type: "join", Addr: ln.Addr().String()}); err != nil {
		coord.Close()
		return nil, err
	}
	assign, err := readCtrl(coord, "assign")
	if err != nil {
		coord.Close()
		return nil, fmt.Errorf("transport: waiting for assignment: %w", err)
	}
	rank, size := assign.Rank, assign.Size
	if rank < 1 || rank >= size || len(assign.Addrs) != size {
		coord.Close()
		return nil, fmt.Errorf("transport: bad assignment rank=%d size=%d addrs=%d", rank, size, len(assign.Addrs))
	}
	conns := make([]gonet.Conn, size)
	conns[0] = coord
	fail := func(err error) (*TCP, error) {
		for _, conn := range conns {
			if conn != nil {
				conn.Close()
			}
		}
		return nil, err
	}
	// Dial every lower worker rank. Their listeners were bound before
	// they joined, so the kernel backlog holds our connection even if
	// they have not reached their accept loop yet.
	for q := 1; q < rank; q++ {
		conn, err := gonet.Dial("tcp", assign.Addrs[q])
		if err != nil {
			return fail(fmt.Errorf("transport: dial rank %d at %s: %w", q, assign.Addrs[q], err))
		}
		if err := writeCtrl(conn, ctrlMsg{Type: "hello", Rank: rank}); err != nil {
			conn.Close()
			return fail(fmt.Errorf("transport: hello to rank %d: %w", q, err))
		}
		conns[q] = conn
	}
	// Accept every higher worker rank.
	for n := rank + 1; n < size; n++ {
		conn, err := ln.Accept()
		if err != nil {
			return fail(err)
		}
		// Deadline the HELLO like the coordinator deadlines JOINs: a mesh
		// peer that connects and stalls must not wedge this worker.
		conn.SetReadDeadline(time.Now().Add(defaultRendezvousTimeout))
		hello, err := readCtrl(conn, "hello")
		if err != nil {
			addr := conn.RemoteAddr()
			conn.Close()
			return fail(fmt.Errorf("transport: hello from %v: %w", addr, err))
		}
		conn.SetReadDeadline(time.Time{})
		if hello.Rank <= rank || hello.Rank >= size || conns[hello.Rank] != nil {
			addr := conn.RemoteAddr()
			conn.Close()
			return fail(fmt.Errorf("transport: unexpected hello claiming rank %d from %v", hello.Rank, addr))
		}
		conns[hello.Rank] = conn
	}
	return newTCP(rank, conns), nil
}
