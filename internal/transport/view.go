package transport

import (
	"fmt"
	"time"
)

// View presents a subset of a base group as a smaller, contiguously
// ranked group. It is how elastic membership re-forms after a fence:
// the survivors of a k-rank mesh (identified by their base ranks) become
// ranks 0..k'-1 of a view, and the dist reduction protocol runs over the
// view exactly as it would over a freshly built k'-rank group — same
// tree shapes, same rank-ordered folds, so the determinism argument is
// unchanged. The base endpoints stay alive underneath; fencing to a new
// membership is just building a new View, no re-dial.
//
// Tags flowing through a View carry view-space ranks. Because every
// fence also advances the membership epoch carried in the Tag, frames
// from an abandoned view can never alias the new one's: receivers
// discard them as stale by epoch.
type View struct {
	base    Transport
	members []int // base ranks, strictly ascending
	rank    int   // this endpoint's view rank: index into members
}

var _ Transport = (*View)(nil)

// NewView wraps base so that the base ranks listed in members form a
// group of size len(members), ranked in member order. members must be
// strictly ascending, within the base group, and include base.Rank().
func NewView(base Transport, members []int) (*View, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("transport: view needs at least one member")
	}
	rank := -1
	for i, m := range members {
		if m < 0 || m >= base.Size() {
			return nil, fmt.Errorf("transport: view member %d outside base group of %d", m, base.Size())
		}
		if i > 0 && m <= members[i-1] {
			return nil, fmt.Errorf("transport: view members not strictly ascending: %v", members)
		}
		if m == base.Rank() {
			rank = i
		}
	}
	if rank < 0 {
		return nil, fmt.Errorf("transport: base rank %d not in view members %v", base.Rank(), members)
	}
	return &View{base: base, members: append([]int(nil), members...), rank: rank}, nil
}

// Members returns the view's base ranks in view-rank order.
func (v *View) Members() []int { return append([]int(nil), v.members...) }

// Rank implements Transport.
func (v *View) Rank() int { return v.rank }

// Size implements Transport.
func (v *View) Size() int { return len(v.members) }

// translate maps a view rank to its base rank.
func (v *View) translate(op string, peer int) (int, error) {
	if peer < 0 || peer >= len(v.members) || peer == v.rank {
		return -1, &PeerError{Op: op, Rank: v.rank, Peer: peer, Size: len(v.members)}
	}
	return v.members[peer], nil
}

// Send implements Transport.
func (v *View) Send(to int, tag Tag, payload []float32) error {
	base, err := v.translate("send", to)
	if err != nil {
		return err
	}
	return v.base.Send(base, tag, payload)
}

// Recv implements Transport.
func (v *View) Recv(from int, tag Tag, buf []float32) error {
	base, err := v.translate("recv", from)
	if err != nil {
		return err
	}
	return v.base.Recv(base, tag, buf)
}

// SendCtrl implements Transport.
func (v *View) SendCtrl(to int, tag Tag, payload []float32) error {
	base, err := v.translate("send-ctrl", to)
	if err != nil {
		return err
	}
	return v.base.SendCtrl(base, tag, payload)
}

// RecvCtrl implements Transport.
func (v *View) RecvCtrl(from int, timeout time.Duration) (Tag, []float32, error) {
	base, err := v.translate("recv-ctrl", from)
	if err != nil {
		return 0, nil, err
	}
	return v.base.RecvCtrl(base, timeout)
}

// Interrupt implements Transport.
func (v *View) Interrupt(err error) { v.base.Interrupt(err) }

// Resume implements Transport.
func (v *View) Resume() { v.base.Resume() }

// Close implements Transport. It is a no-op: the base endpoint outlives
// its views (the elastic supervisor builds a fresh view per membership
// epoch and closes the base exactly once, at the end of the run).
func (v *View) Close() error { return nil }
