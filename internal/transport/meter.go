package transport

import (
	"sync/atomic"
	"time"
)

// Meter wraps a Transport and counts data-plane payload traffic per
// message kind — the measurement layer behind the compression claims in
// PERFORMANCE.md: "int8 cuts gradient bytes 3.9x" is only a claim if
// the bytes are counted where they actually cross the wire, after the
// codec has packed them, not estimated from tensor shapes. Counters are
// sized by KindCount, so a newly added kind is counted from its first
// frame rather than falling through a stale switch.
//
// Only successful Sends are counted (a dropped frame under fault
// injection never left the rank, and its retry is a real resend that
// did). Counting happens on the send side because every data-plane frame
// is sent exactly once per link — Recv-side counting would double-count
// the duplicates the inbox discards. Control-plane traffic (SendCtrl) is
// counted in frames only; its payloads are a few words of heartbeat
// state and never carry gradient.
type Meter struct {
	inner Transport

	words      [KindCount]atomic.Int64
	frames     [KindCount]atomic.Int64
	ctrlFrames atomic.Int64
}

// NewMeter wraps inner with per-kind traffic accounting.
func NewMeter(inner Transport) *Meter { return &Meter{inner: inner} }

// Rank implements Transport.
func (m *Meter) Rank() int { return m.inner.Rank() }

// Size implements Transport.
func (m *Meter) Size() int { return m.inner.Size() }

// Send implements Transport, counting the payload against tag's kind.
func (m *Meter) Send(to int, tag Tag, payload []float32) error {
	err := m.inner.Send(to, tag, payload)
	if err == nil {
		k := tag.Kind()
		m.words[k].Add(int64(len(payload)))
		m.frames[k].Add(1)
	}
	return err
}

// Recv implements Transport.
func (m *Meter) Recv(from int, tag Tag, buf []float32) error {
	return m.inner.Recv(from, tag, buf)
}

// SendCtrl implements Transport.
func (m *Meter) SendCtrl(to int, tag Tag, payload []float32) error {
	err := m.inner.SendCtrl(to, tag, payload)
	if err == nil {
		m.ctrlFrames.Add(1)
	}
	return err
}

// RecvCtrl implements Transport.
func (m *Meter) RecvCtrl(from int, timeout time.Duration) (Tag, []float32, error) {
	return m.inner.RecvCtrl(from, timeout)
}

// Interrupt implements Transport.
func (m *Meter) Interrupt(err error) { m.inner.Interrupt(err) }

// Resume implements Transport.
func (m *Meter) Resume() { m.inner.Resume() }

// Close implements Transport.
func (m *Meter) Close() error { return m.inner.Close() }

// SentWords returns the float32 payload words successfully sent under
// kind k.
func (m *Meter) SentWords(k Kind) int64 { return m.words[k].Load() }

// SentFrames returns the data-plane frames successfully sent under kind
// k.
func (m *Meter) SentFrames(k Kind) int64 { return m.frames[k].Load() }

// SentBytes returns the payload bytes successfully sent under kind k
// (4 bytes per word; framing overhead is transport-specific and
// excluded).
func (m *Meter) SentBytes(k Kind) int64 { return 4 * m.SentWords(k) }

// GradBytes returns the bytes of gradient contributions this rank put on
// the wire: the scatter frames of the tree path (KindGrad) plus the
// ring's relay frames (KindRing). This is the quantity the codec
// compresses; reduced slices, weight broadcasts and losses are f32 by
// design and excluded.
func (m *Meter) GradBytes() int64 {
	return m.SentBytes(KindGrad) + m.SentBytes(KindRing)
}
