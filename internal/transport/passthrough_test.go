package transport

import (
	"math"
	"testing"
	"time"
)

// TestInjectorsPassAllKindsThrough is the future-proofing audit for the
// fault injectors: Chaos and Flaky must forward every message kind —
// including ones added after they were written, such as KindRing —
// byte-for-byte when no fault fires. Both wrappers are deliberately
// kind-agnostic (Chaos switches on its ChaosMode, Flaky rolls its dice
// per Send), and this test iterates 0..KindCount so adding a kind
// without passthrough coverage is impossible: the new kind lands here
// automatically.
func TestInjectorsPassAllKindsThrough(t *testing.T) {
	wrap := map[string]func(tr Transport) Transport{
		"chaos-none": func(tr Transport) Transport {
			return NewChaos(tr, ChaosConfig{Mode: ChaosNone}, 1)
		},
		"flaky-clean": func(tr Transport) Transport {
			return NewFlaky(tr, FlakyConfig{}, 1)
		},
	}
	for name, w := range wrap {
		t.Run(name, func(t *testing.T) {
			locals := NewLocalGroup(2)
			a, b := w(locals[0]), w(locals[1])
			defer a.Close()
			defer b.Close()
			for k := Kind(0); k < KindCount; k++ {
				payload := []float32{float32(k) + 0.5, -1, 2}
				tag := MakeTagE(k, 1, 2, 3, 1)
				if k.Ctrl() {
					if err := b.SendCtrl(0, tag, payload); err != nil {
						t.Fatalf("%v: SendCtrl: %v", k, err)
					}
					gotTag, got, err := a.RecvCtrl(1, time.Second)
					if err != nil {
						t.Fatalf("%v: RecvCtrl: %v", k, err)
					}
					if gotTag != tag {
						t.Fatalf("%v: ctrl tag %v, want %v", k, gotTag, tag)
					}
					requireSameWords(t, k, got, payload)
					continue
				}
				if err := b.Send(0, tag, payload); err != nil {
					t.Fatalf("%v: Send: %v", k, err)
				}
				got := make([]float32, len(payload))
				if err := a.Recv(1, tag, got); err != nil {
					t.Fatalf("%v: Recv: %v", k, err)
				}
				requireSameWords(t, k, got, payload)
			}
		})
	}
}

func requireSameWords(t *testing.T, k Kind, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%v: payload length %d, want %d", k, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%v: payload word %d = %g, want %g", k, i, got[i], want[i])
		}
	}
}

// TestMeterCountsPerKind pins the transport-layer byte accounting that
// backs the compression measurements: words are attributed to the tag's
// kind, only successful sends count, and KindRing (an encoded frame)
// accumulates into GradBytes beside KindGrad.
func TestMeterCountsPerKind(t *testing.T) {
	locals := NewLocalGroup(2)
	m := NewMeter(locals[1])
	defer m.Close()
	defer locals[0].Close()

	send := func(k Kind, n int) {
		t.Helper()
		if err := m.Send(0, MakeTag(k, 0, 0, 1), make([]float32, n)); err != nil {
			t.Fatalf("send %v: %v", k, err)
		}
	}
	send(KindGrad, 100)
	send(KindGrad, 28)
	send(KindRing, 64)
	send(KindBcast, 1000)

	if got := m.SentWords(KindGrad); got != 128 {
		t.Errorf("SentWords(KindGrad) = %d, want 128", got)
	}
	if got := m.SentFrames(KindGrad); got != 2 {
		t.Errorf("SentFrames(KindGrad) = %d, want 2", got)
	}
	if got := m.GradBytes(); got != 4*(128+64) {
		t.Errorf("GradBytes = %d, want %d", got, 4*(128+64))
	}
	if got := m.SentBytes(KindBcast); got != 4000 {
		t.Errorf("SentBytes(KindBcast) = %d, want 4000", got)
	}
	if got := m.SentWords(KindLoss); got != 0 {
		t.Errorf("SentWords(KindLoss) = %d, want 0", got)
	}

	// A failed send must not count: drop everything via Flaky.
	fm := NewMeter(NewFlaky(NewLocalGroup(2)[1], FlakyConfig{DropProb: 1}, 3))
	if err := fm.Send(0, MakeTag(KindGrad, 0, 0, 1), make([]float32, 50)); err == nil {
		t.Fatal("expected dropped send to error")
	}
	if got := fm.SentWords(KindGrad); got != 0 {
		t.Errorf("dropped send counted: SentWords = %d, want 0", got)
	}
}

// TestKindRingTagging pins KindRing's place in the protocol: data plane,
// taggable (MakeTagE must accept every kind below KindCount), and
// distinct in String() output for trace/debug legibility.
func TestKindRingTagging(t *testing.T) {
	if KindRing.Ctrl() {
		t.Error("KindRing must travel on the data plane")
	}
	tag := MakeTagE(KindRing, 3, 7, 2, 0x0102) // origin<<8|owner packing
	if tag.Kind() != KindRing || tag.Epoch() != 3 || tag.Iter() != 7 || tag.Param() != 2 || tag.Origin() != 0x0102 {
		t.Errorf("KindRing tag fields scrambled: %v", tag)
	}
	if KindRing.String() != "ring" {
		t.Errorf("KindRing.String() = %q, want ring", KindRing.String())
	}
	for k := Kind(0); k < KindCount; k++ {
		MakeTagE(k, 0, 0, 0, 0) // must not panic for any defined kind
	}
}
