// Package transport abstracts point-to-point messaging between the
// replicas of a distributed data-parallel training run (DISTRIBUTED.md).
// It is the seam that lets the gradient reduction in internal/dist run
// unchanged over an in-process channel fabric (deterministic, race-
// testable, simtime-modelable) and over length-prefixed TCP between real
// processes — the FireCaffe-style path from one node to a cluster.
//
// # The model
//
// A training group is Size() ranks, 0..Size()-1; rank 0 is the
// coordinator (it owns the solver). Every rank holds one Transport whose
// Send and Recv address peers by rank. Messages are float32 payloads
// labeled by a Tag that encodes (kind, membership epoch, iteration,
// parameter, origin); the reduction protocol in internal/dist is
// lock-step, so a receiver always knows exactly which tag it expects
// next on each link.
//
// # Data plane and control plane
//
// Send/Recv are the data plane: lock-step, per-link FIFO, used for
// gradients, reduced slices, weights, and losses. SendCtrl/RecvCtrl are
// the out-of-band control plane used by the elastic supervisor in
// internal/dist: heartbeats (KindPing/KindPong), membership fences
// (KindFence/KindAck), and rejoin requests (KindJoin). Control frames
// bypass the data-plane queues so a heartbeat or fence gets through even
// while a data Recv is blocked; delivery is best-effort (a slow consumer
// may shed control frames) because the fencing protocol re-sends until
// acknowledged. Interrupt poisons blocked data-plane Recvs with a caller
// supplied error so a supervisor can unwind a wedged lock-step loop;
// Resume clears the interrupt for the next membership epoch.
//
// # Delivery guarantees
//
// Each ordered pair of ranks is an independent FIFO link: messages from
// one sender arrive in send order. Send is asynchronous (it enqueues and
// returns, which is what lets internal/dist overlap gradient shipping
// with backward compute) and Recv blocks until the expected message
// arrives. Recv discards stale frames — duplicates of already-delivered
// tags and leftovers from completed iterations or abandoned membership
// epochs — so an at-least-once sender (the bounded-retry loop in
// internal/dist, or the Flaky fault injector's duplicates) still yields
// exactly-once delivery; any other unexpected tag is a protocol
// violation and fails loudly with *UnexpectedTagError rather than
// silently desynchronizing the group.
//
// # Implementations
//
// NewLocalGroup wires Size in-process endpoints (goroutine-per-replica,
// used by tests and dnncluster's single-process mode); ListenTCP /
// DialTCP build a full mesh of TCP connections across processes via a
// coordinator rendezvous; NewFlaky wraps any Transport with seeded,
// reproducible drop/delay/duplicate faults; NewChaos wraps one with
// seeded crash/hang/partition/straggle failures; NewView re-ranks a
// subset of a group after an elastic membership change (ROBUSTNESS.md).
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind classifies what a message carries; it is part of the Tag so that
// the phases of one iteration can never be confused on a link.
type Kind uint8

const (
	// KindGrad is a raw gradient-slice contribution shipped to the
	// slice's owner during the scatter phase.
	KindGrad Kind = iota
	// KindGather is a reduced slice routed up the reduction tree.
	KindGather
	// KindBcast is an updated parameter tensor routed down the tree.
	KindBcast
	// KindLoss is a replica's scalar batch loss, sent to the coordinator.
	KindLoss
	// KindSync is a full parameter tensor broadcast down the tree after a
	// fence or resume, re-seeding every member with the coordinator's
	// weights before lock-step stepping restarts.
	KindSync
	// KindRing is an encoded gradient contribution relayed hop-by-hop
	// around the ring topology during the ring reduce-scatter. Its origin
	// field packs origin<<8|owner (both < 256 — the ring path caps the
	// group at 256 ranks) because a relayed frame must stay distinguishable
	// from the relaying rank's own contributions on the same link. The
	// payload is codec-encoded wire words, not raw f32 gradient, and the
	// epoch field in the tag keeps stale compressed chunks from aliasing
	// across elastic membership changes.
	KindRing
	// KindPing is a coordinator heartbeat probe (control plane).
	KindPing
	// KindPong answers a ping; its payload carries the worker's training
	// progress and the rank it is currently blocked on (control plane).
	KindPong
	// KindFence announces a membership change: the group abandons the
	// current iteration and re-forms at the fenced checkpoint (control
	// plane).
	KindFence
	// KindJoin asks the coordinator to admit this rank at the next
	// iteration boundary (control plane).
	KindJoin
	// KindAck acknowledges a fence; the coordinator holds the new epoch's
	// data plane until every member has acked (control plane).
	KindAck

	// KindCount is the number of message kinds. New kinds must be added
	// above it (the Tag layout holds 4 bits, so at most 16): MakeTagE
	// range-checks against KindCount rather than a named last kind, so a
	// freshly added kind is routable the moment it exists instead of
	// panicking in the tag packer — and wrappers that switch per kind
	// (Meter's byte accounting) size their tables from it so new kinds
	// pass through counted, never silently dropped.
	KindCount
)

// Ctrl reports whether the kind travels on the control plane
// (SendCtrl/RecvCtrl) rather than the data plane (Send/Recv).
func (k Kind) Ctrl() bool {
	switch k {
	case KindPing, KindPong, KindFence, KindJoin, KindAck:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGrad:
		return "grad"
	case KindGather:
		return "gather"
	case KindBcast:
		return "bcast"
	case KindLoss:
		return "loss"
	case KindSync:
		return "sync"
	case KindRing:
		return "ring"
	case KindPing:
		return "ping"
	case KindPong:
		return "pong"
	case KindFence:
		return "fence"
	case KindJoin:
		return "join"
	case KindAck:
		return "ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Tag labels one message: kind (4 bits) | membership epoch (8 bits) |
// iteration (22 bits) | parameter index (14 bits) | origin rank
// (16 bits). The iteration field is what lets receivers recognize and
// discard stale duplicates from finished iterations; the epoch field
// does the same across elastic membership changes, where ranks are
// re-numbered and tag fields from the abandoned group would otherwise
// alias the new one's.
type Tag uint64

const (
	// MaxEpoch is the largest membership epoch a Tag can carry; each
	// fence or rejoin consumes one epoch.
	MaxEpoch = 1<<8 - 1
	// MaxIter is the largest iteration a Tag can carry.
	MaxIter = 1<<22 - 1
)

// MakeTag packs a message label for membership epoch 0 (a group that has
// never fenced). Fields out of range panic: the protocol would silently
// alias tags otherwise.
func MakeTag(k Kind, iter, param, origin int) Tag {
	return MakeTagE(k, 0, iter, param, origin)
}

// MakeTagE packs a message label carrying an explicit membership epoch.
func MakeTagE(k Kind, epoch, iter, param, origin int) Tag {
	if k >= KindCount {
		panic(fmt.Sprintf("transport: kind %d out of range", k))
	}
	if epoch < 0 || epoch > MaxEpoch {
		panic(fmt.Sprintf("transport: epoch %d out of range", epoch))
	}
	if iter < 0 || iter > MaxIter {
		panic(fmt.Sprintf("transport: iteration %d out of range", iter))
	}
	if param < 0 || param >= 1<<14 {
		panic(fmt.Sprintf("transport: parameter index %d out of range", param))
	}
	if origin < 0 || origin >= 1<<16 {
		panic(fmt.Sprintf("transport: origin rank %d out of range", origin))
	}
	return Tag(uint64(k)<<60 | uint64(epoch)<<52 | uint64(iter)<<30 | uint64(param)<<16 | uint64(origin))
}

// Kind returns the message kind field.
func (t Tag) Kind() Kind { return Kind(t >> 60) }

// Epoch returns the membership-epoch field.
func (t Tag) Epoch() int { return int(t >> 52 & MaxEpoch) }

// Iter returns the iteration field.
func (t Tag) Iter() int { return int(t >> 30 & MaxIter) }

// Param returns the parameter-index field.
func (t Tag) Param() int { return int(t >> 16 & (1<<14 - 1)) }

// Origin returns the origin-rank field.
func (t Tag) Origin() int { return int(t & (1<<16 - 1)) }

// String implements fmt.Stringer.
func (t Tag) String() string {
	if e := t.Epoch(); e != 0 {
		return fmt.Sprintf("%s{epoch %d, iter %d, param %d, origin %d}", t.Kind(), e, t.Iter(), t.Param(), t.Origin())
	}
	return fmt.Sprintf("%s{iter %d, param %d, origin %d}", t.Kind(), t.Iter(), t.Param(), t.Origin())
}

// ErrTransient marks a send failure that a bounded retry should absorb
// (a dropped frame under fault injection, a full outbound queue). The
// retry policy lives in internal/dist, not here.
var ErrTransient = errors.New("transport: transient send failure")

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrPeerDown marks a peer the group has given up on: its link died or
// its heartbeats stopped for longer than the configured timeout. Unlike
// ErrTransient it must not be retried against the same membership — the
// caller fences and re-forms the group without the peer (or aborts).
// Match with errors.Is; the concrete *PeerDownError names the rank.
var ErrPeerDown = errors.New("transport: peer down")

// ErrCtrlTimeout is returned by RecvCtrl when no control frame arrived
// within the caller's timeout. It is an ordinary outcome for a
// heartbeat listener, not a failure of the transport.
var ErrCtrlTimeout = errors.New("transport: control receive timed out")

// PeerDownError reports a dead peer: a broken link, a missed heartbeat
// deadline, or an evicted straggler. errors.Is(err, ErrPeerDown) is true.
type PeerDownError struct {
	Rank  int
	Cause error
}

// Error implements error.
func (e *PeerDownError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("transport: peer rank %d down: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("transport: peer rank %d down", e.Rank)
}

// Unwrap exposes the underlying cause.
func (e *PeerDownError) Unwrap() error { return e.Cause }

// Is matches the ErrPeerDown sentinel.
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }

// UnexpectedTagError reports a protocol violation: a frame arrived that
// is neither the expected message, a duplicate, nor a stale leftover.
// The lock-step reduction protocol cannot recover from this; callers
// must fail the run loudly.
type UnexpectedTagError struct {
	From      int
	Got, Want Tag
}

// Error implements error.
func (e *UnexpectedTagError) Error() string {
	return fmt.Sprintf("transport: unexpected frame from rank %d: got %v, want %v", e.From, e.Got, e.Want)
}

// PeerError reports an out-of-range or self-addressed peer rank — a
// topology bug in the caller, never a transient fault.
type PeerError struct {
	Op         string
	Rank, Peer int
	Size       int
}

// Error implements error.
func (e *PeerError) Error() string {
	return fmt.Sprintf("transport: rank %d cannot %s rank %d (group size %d)", e.Rank, e.Op, e.Peer, e.Size)
}

// SizeMismatchError reports a frame whose payload length differs from
// the receiver's buffer — a wiring bug (mismatched nets), never a
// transient fault.
type SizeMismatchError struct {
	From      int
	Tag       Tag
	Got, Want int
}

// Error implements error.
func (e *SizeMismatchError) Error() string {
	return fmt.Sprintf("transport: frame %v from rank %d has %d elements, want %d", e.Tag, e.From, e.Got, e.Want)
}

// Transport is one rank's endpoint into the training group.
//
// Send enqueues a copy of payload for delivery to rank `to` and returns
// without waiting for the receiver (per-link FIFO order is preserved).
// Recv blocks until the frame labeled `tag` arrives from rank `from`
// and copies its payload into buf, whose length must equal the sender's
// payload length. Concurrent Sends are safe; Recv must be called by one
// goroutine per link at a time (the lock-step protocol does so
// naturally). SendCtrl/RecvCtrl move out-of-band control frames; one
// goroutine per link should consume RecvCtrl. Interrupt makes pending
// and future data-plane Recvs return err until Resume clears it — the
// elastic supervisor's handle for unwinding a lock-step loop that is
// blocked on a dead peer. Close releases the endpoint and unblocks
// pending Recvs with ErrClosed.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the group size.
	Size() int
	// Send enqueues payload for rank to under tag (data plane).
	Send(to int, tag Tag, payload []float32) error
	// Recv blocks until the frame labeled tag arrives from rank from.
	Recv(from int, tag Tag, buf []float32) error
	// SendCtrl enqueues a control frame for rank to. Best-effort: a slow
	// or dead receiver may shed it.
	SendCtrl(to int, tag Tag, payload []float32) error
	// RecvCtrl returns the next control frame from rank from, waiting at
	// most timeout (ErrCtrlTimeout on expiry). The returned payload is
	// owned by the caller.
	RecvCtrl(from int, timeout time.Duration) (Tag, []float32, error)
	// Interrupt poisons blocked and future data-plane Recvs with err.
	Interrupt(err error)
	// Resume clears a previous Interrupt.
	Resume()
	// Close shuts the endpoint down.
	Close() error
}

// frame is one in-flight message.
type frame struct {
	tag     Tag
	payload []float32
}

// ctrlQueueCap bounds each control-plane link queue. Control traffic is
// tiny (heartbeats, fences); a queue this deep only fills if the
// consumer is gone, in which case shedding is the right behavior — the
// fence protocol re-sends until acknowledged.
const ctrlQueueCap = 256

// inbox is the per-link receive queue shared by the Local and TCP
// transports: a FIFO of frames plus the stale-frame bookkeeping that
// turns at-least-once links into exactly-once delivery. One writer side
// (push/fail/close) and one reader side (recv) may run concurrently;
// interrupt/resume may be called from a supervisor goroutine.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []frame
	// delivered tracks tags consumed in the current (epoch, iteration) so
	// that duplicates (fault-injected or retry-induced) are recognized; it
	// is generational — reset whenever delivery advances — so it stays
	// bounded by one iteration's message count.
	delivered map[Tag]bool
	curEpoch  int
	curIter   int
	err       error // permanent failure (dead link)
	intr      error // soft interrupt, cleared by resume
	closed    bool
}

func newInbox() *inbox {
	ib := &inbox{delivered: make(map[Tag]bool)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

// push appends a frame (writer side). The payload must be owned by the
// inbox (callers copy before pushing).
func (ib *inbox) push(f frame) {
	ib.mu.Lock()
	if !ib.closed {
		ib.frames = append(ib.frames, f)
		ib.cond.Signal()
	}
	ib.mu.Unlock()
}

// fail poisons the inbox permanently: once queued frames drain, pending
// and future recvs return err.
func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.err == nil {
		ib.err = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// interrupt poisons the inbox softly: a recv with no deliverable frame
// returns err instead of blocking, until resume clears it. Frames
// already queued still win over the interrupt, so a completed iteration
// is never torn down retroactively.
func (ib *inbox) interrupt(err error) {
	ib.mu.Lock()
	if ib.intr == nil {
		ib.intr = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// resume clears a soft interrupt.
func (ib *inbox) resume() {
	ib.mu.Lock()
	ib.intr = nil
	ib.mu.Unlock()
}

// close marks the inbox closed; pending recvs return ErrClosed.
func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// staleTag reports whether got belongs to an earlier (epoch, iteration)
// than want — a leftover from a finished iteration or an abandoned
// membership epoch, safe to discard.
func staleTag(got, want Tag) bool {
	if got.Epoch() != want.Epoch() {
		return got.Epoch() < want.Epoch()
	}
	return got.Iter() < want.Iter()
}

// recv implements the matching discipline documented on Transport.Recv:
// deliver want, discard duplicates and stale iterations/epochs, reject
// anything else. from is only used for error reporting.
func (ib *inbox) recv(from int, want Tag, buf []float32) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for len(ib.frames) == 0 {
			if ib.intr != nil {
				return ib.intr
			}
			if ib.err != nil {
				return ib.err
			}
			if ib.closed {
				return ErrClosed
			}
			ib.cond.Wait()
		}
		f := ib.frames[0]
		// Release the head slot eagerly so the backing array is reusable.
		ib.frames[0] = frame{}
		ib.frames = ib.frames[1:]
		if len(ib.frames) == 0 {
			ib.frames = nil
		}
		switch {
		case f.tag == want:
			if len(f.payload) != len(buf) {
				return &SizeMismatchError{From: from, Tag: f.tag, Got: len(f.payload), Want: len(buf)}
			}
			if e, it := want.Epoch(), want.Iter(); e > ib.curEpoch || (e == ib.curEpoch && it > ib.curIter) {
				// New iteration (or epoch): previous generations are complete
				// on this link, so their dedupe entries can never match again.
				ib.curEpoch, ib.curIter = e, it
				clear(ib.delivered)
			}
			ib.delivered[want] = true
			copy(buf, f.payload)
			return nil
		case staleTag(f.tag, want):
			// Stale leftover from a finished iteration or an abandoned
			// epoch (a duplicate whose original was consumed before the
			// link advanced, or lock-step traffic cut short by a fence):
			// discard.
		case ib.delivered[f.tag]:
			// Duplicate within the current iteration: discard.
		default:
			return &UnexpectedTagError{From: from, Got: f.tag, Want: want}
		}
	}
}

// ctrlQueue is a per-link control-plane queue: a bounded channel plus a
// done latch so receivers unblock on close. Senders never block — if the
// queue is full the frame is shed (heartbeats are periodic and fences
// are re-sent until acked, so shedding is safe).
type ctrlQueue struct {
	ch chan frame
}

func newCtrlQueue() *ctrlQueue {
	return &ctrlQueue{ch: make(chan frame, ctrlQueueCap)}
}

// offer enqueues f if there is room, shedding it otherwise.
func (q *ctrlQueue) offer(f frame) {
	select {
	case q.ch <- f:
	default:
	}
}

// take dequeues the next control frame, waiting at most timeout; done
// aborts the wait with ErrClosed when the endpoint closes.
func (q *ctrlQueue) take(timeout time.Duration, done <-chan struct{}) (Tag, []float32, error) {
	// Fast path: drain anything already queued without arming a timer.
	select {
	case f := <-q.ch:
		return f.tag, f.payload, nil
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f := <-q.ch:
		return f.tag, f.payload, nil
	case <-done:
		return 0, nil, ErrClosed
	case <-timer.C:
		return 0, nil, ErrCtrlTimeout
	}
}
