// Package transport abstracts point-to-point messaging between the
// replicas of a distributed data-parallel training run (DISTRIBUTED.md).
// It is the seam that lets the gradient reduction in internal/dist run
// unchanged over an in-process channel fabric (deterministic, race-
// testable, simtime-modelable) and over length-prefixed TCP between real
// processes — the FireCaffe-style path from one node to a cluster.
//
// # The model
//
// A training group is Size() ranks, 0..Size()-1; rank 0 is the
// coordinator (it owns the solver). Every rank holds one Transport whose
// Send and Recv address peers by rank. Messages are float32 payloads
// labeled by a Tag that encodes (kind, iteration, parameter, origin);
// the reduction protocol in internal/dist is lock-step, so a receiver
// always knows exactly which tag it expects next on each link.
//
// # Delivery guarantees
//
// Each ordered pair of ranks is an independent FIFO link: messages from
// one sender arrive in send order. Send is asynchronous (it enqueues and
// returns, which is what lets internal/dist overlap gradient shipping
// with backward compute) and Recv blocks until the expected message
// arrives. Recv discards stale frames — duplicates of already-delivered
// tags and leftovers from completed iterations — so an at-least-once
// sender (the bounded-retry loop in internal/dist, or the Flaky fault
// injector's duplicates) still yields exactly-once delivery; any other
// unexpected tag is a protocol violation and fails loudly with
// *UnexpectedTagError rather than silently desynchronizing the group.
//
// # Implementations
//
// NewLocalGroup wires Size in-process endpoints (goroutine-per-replica,
// used by tests and dnncluster's single-process mode); ListenTCP /
// DialTCP build a full mesh of TCP connections across processes via a
// coordinator rendezvous; NewFlaky wraps any Transport with seeded,
// reproducible drop/delay/duplicate faults (ROBUSTNESS.md).
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Kind classifies what a message carries; it is part of the Tag so that
// the phases of one iteration can never be confused on a link.
type Kind uint8

const (
	// KindGrad is a raw gradient-slice contribution shipped to the
	// slice's owner during the scatter phase.
	KindGrad Kind = iota
	// KindGather is a reduced slice routed up the reduction tree.
	KindGather
	// KindBcast is an updated parameter tensor routed down the tree.
	KindBcast
	// KindLoss is a replica's scalar batch loss, sent to the coordinator.
	KindLoss
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGrad:
		return "grad"
	case KindGather:
		return "gather"
	case KindBcast:
		return "bcast"
	case KindLoss:
		return "loss"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Tag labels one message: kind (2 bits) | iteration (32 bits) |
// parameter index (14 bits) | origin rank (16 bits). The iteration field
// is what lets receivers recognize and discard stale duplicates from
// finished iterations.
type Tag uint64

// MakeTag packs a message label. Fields out of range panic: the protocol
// would silently alias tags otherwise.
func MakeTag(k Kind, iter, param, origin int) Tag {
	if k > 3 {
		panic(fmt.Sprintf("transport: kind %d out of range", k))
	}
	if iter < 0 || iter >= 1<<32 {
		panic(fmt.Sprintf("transport: iteration %d out of range", iter))
	}
	if param < 0 || param >= 1<<14 {
		panic(fmt.Sprintf("transport: parameter index %d out of range", param))
	}
	if origin < 0 || origin >= 1<<16 {
		panic(fmt.Sprintf("transport: origin rank %d out of range", origin))
	}
	return Tag(uint64(k)<<62 | uint64(iter)<<30 | uint64(param)<<16 | uint64(origin))
}

// Kind returns the message kind field.
func (t Tag) Kind() Kind { return Kind(t >> 62) }

// Iter returns the iteration field.
func (t Tag) Iter() int { return int(t >> 30 & (1<<32 - 1)) }

// Param returns the parameter-index field.
func (t Tag) Param() int { return int(t >> 16 & (1<<14 - 1)) }

// Origin returns the origin-rank field.
func (t Tag) Origin() int { return int(t & (1<<16 - 1)) }

// String implements fmt.Stringer.
func (t Tag) String() string {
	return fmt.Sprintf("%s{iter %d, param %d, origin %d}", t.Kind(), t.Iter(), t.Param(), t.Origin())
}

// ErrTransient marks a send failure that a bounded retry should absorb
// (a dropped frame under fault injection, a full outbound queue). The
// retry policy lives in internal/dist, not here.
var ErrTransient = errors.New("transport: transient send failure")

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// UnexpectedTagError reports a protocol violation: a frame arrived that
// is neither the expected message, a duplicate, nor a stale leftover.
// The lock-step reduction protocol cannot recover from this; callers
// must fail the run loudly.
type UnexpectedTagError struct {
	From      int
	Got, Want Tag
}

// Error implements error.
func (e *UnexpectedTagError) Error() string {
	return fmt.Sprintf("transport: unexpected frame from rank %d: got %v, want %v", e.From, e.Got, e.Want)
}

// PeerError reports an out-of-range or self-addressed peer rank — a
// topology bug in the caller, never a transient fault.
type PeerError struct {
	Op         string
	Rank, Peer int
	Size       int
}

// Error implements error.
func (e *PeerError) Error() string {
	return fmt.Sprintf("transport: rank %d cannot %s rank %d (group size %d)", e.Rank, e.Op, e.Peer, e.Size)
}

// SizeMismatchError reports a frame whose payload length differs from
// the receiver's buffer — a wiring bug (mismatched nets), never a
// transient fault.
type SizeMismatchError struct {
	From     int
	Tag      Tag
	Got, Want int
}

// Error implements error.
func (e *SizeMismatchError) Error() string {
	return fmt.Sprintf("transport: frame %v from rank %d has %d elements, want %d", e.Tag, e.From, e.Got, e.Want)
}

// Transport is one rank's endpoint into the training group.
//
// Send enqueues a copy of payload for delivery to rank `to` and returns
// without waiting for the receiver (per-link FIFO order is preserved).
// Recv blocks until the frame labeled `tag` arrives from rank `from`
// and copies its payload into buf, whose length must equal the sender's
// payload length. Concurrent Sends are safe; Recv must be called by one
// goroutine per link at a time (the lock-step protocol does so
// naturally). Close releases the endpoint and unblocks pending Recvs
// with ErrClosed.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the group size.
	Size() int
	// Send enqueues payload for rank to under tag.
	Send(to int, tag Tag, payload []float32) error
	// Recv blocks until the frame labeled tag arrives from rank from.
	Recv(from int, tag Tag, buf []float32) error
	// Close shuts the endpoint down.
	Close() error
}

// frame is one in-flight message.
type frame struct {
	tag     Tag
	payload []float32
}

// inbox is the per-link receive queue shared by the Local and TCP
// transports: a FIFO of frames plus the stale-frame bookkeeping that
// turns at-least-once links into exactly-once delivery. One writer side
// (push/fail/close) and one reader side (recv) may run concurrently.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []frame
	// delivered tracks tags consumed in the current iteration so that
	// duplicates (fault-injected or retry-induced) are recognized; it is
	// generational — reset whenever delivery advances to a new iteration —
	// so it stays bounded by one iteration's message count.
	delivered map[Tag]bool
	curIter   int
	err       error
	closed    bool
}

func newInbox() *inbox {
	ib := &inbox{delivered: make(map[Tag]bool)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

// push appends a frame (writer side). The payload must be owned by the
// inbox (callers copy before pushing).
func (ib *inbox) push(f frame) {
	ib.mu.Lock()
	if !ib.closed {
		ib.frames = append(ib.frames, f)
		ib.cond.Signal()
	}
	ib.mu.Unlock()
}

// fail poisons the inbox: pending and future recvs return err.
func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.err == nil {
		ib.err = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// close marks the inbox closed; pending recvs return ErrClosed.
func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// recv implements the matching discipline documented on Transport.Recv:
// deliver want, discard duplicates and stale iterations, reject anything
// else. from is only used for error reporting.
func (ib *inbox) recv(from int, want Tag, buf []float32) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for len(ib.frames) == 0 {
			if ib.err != nil {
				return ib.err
			}
			if ib.closed {
				return ErrClosed
			}
			ib.cond.Wait()
		}
		f := ib.frames[0]
		// Release the head slot eagerly so the backing array is reusable.
		ib.frames[0] = frame{}
		ib.frames = ib.frames[1:]
		if len(ib.frames) == 0 {
			ib.frames = nil
		}
		switch {
		case f.tag == want:
			if len(f.payload) != len(buf) {
				return &SizeMismatchError{From: from, Tag: f.tag, Got: len(f.payload), Want: len(buf)}
			}
			if it := want.Iter(); it > ib.curIter {
				// New iteration: previous iterations are complete on this
				// link, so their dedupe entries can never match again.
				ib.curIter = it
				clear(ib.delivered)
			}
			ib.delivered[want] = true
			copy(buf, f.payload)
			return nil
		case f.tag.Iter() < want.Iter():
			// Stale leftover from a finished iteration (a duplicate whose
			// original was consumed before the link advanced): discard.
		case ib.delivered[f.tag]:
			// Duplicate within the current iteration: discard.
		default:
			return &UnexpectedTagError{From: from, Got: f.tag, Want: want}
		}
	}
}
