package transport

import (
	"fmt"
	"math"
)

// Codec is the gradient wire format: how a slice of float32 gradient
// elements is packed into the float32 words a Transport actually ships.
// Payloads stay []float32 on every transport (the framing, the TCP
// encoder and the fault injectors are all word-oriented), so an encoded
// message is WireLen(n) words whose bits are the packed representation —
// the transport never needs to know whether a payload is raw or encoded.
//
// Contracts every Codec must honor (internal/dist's determinism proof
// leans on all three):
//
//   - Deterministic: Encode and Decode are pure functions of their
//     inputs. Same gradient in, same bits out, on every rank and every
//     run.
//   - Zero-alloc: Encode packs src into dst[:WireLen(len(src))] and
//     Decode unpacks src into dst, both caller-allocated. The hot path
//     in internal/dist preallocates every buffer once per run.
//   - Self-contained frames: a message decodes from its own words alone
//     (the int8 scales travel inside the frame), so a frame relayed
//     bit-unchanged around the ring decodes at the owner exactly as it
//     would have at the first hop.
//
// Lossy codecs (f16, int8) are paired with an error-feedback residual in
// internal/dist: the quantization error of each sent chunk is kept
// locally and added back into the next iteration's gradient before
// encoding, so the compression error is compensated over time instead of
// accumulating as bias (DISTRIBUTED.md §9).
type Codec interface {
	// Name is the wire-format name as spelled on the dnncluster command
	// line: "f32", "f16" or "int8".
	Name() string
	// WireLen returns how many float32 words Encode emits for n source
	// elements. It is a pure function of n, so sender and receiver
	// compute frame sizes independently.
	WireLen(n int) int
	// Encode packs src into dst[:WireLen(len(src))].
	Encode(dst, src []float32)
	// Decode unpacks src (WireLen(len(dst)) words) into dst.
	Decode(dst, src []float32)
}

// CodecByName resolves a wire-format name from the command line or
// dist.Options. The empty string means f32, the identity format.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", "f32":
		return F32Codec{}, nil
	case "f16":
		return F16Codec{}, nil
	case "int8":
		return Int8Codec{}, nil
	}
	return nil, fmt.Errorf("transport: unknown gradient wire format %q (want f32, f16 or int8)", name)
}

// F32Codec is the identity wire format: gradients cross the wire as the
// raw float32 words they already are. It exists so the codec seam has a
// lossless member to differential-test against; internal/dist special-
// cases it to skip the encode/decode passes entirely, keeping the f32
// path bit-for-bit and allocation-for-allocation what it was before
// codecs existed.
type F32Codec struct{}

// Name implements Codec.
func (F32Codec) Name() string { return "f32" }

// WireLen implements Codec.
func (F32Codec) WireLen(n int) int { return n }

// Encode implements Codec.
func (F32Codec) Encode(dst, src []float32) { copy(dst, src) }

// Decode implements Codec.
func (F32Codec) Decode(dst, src []float32) { copy(dst, src) }

// F16Codec packs two IEEE 754 binary16 values per float32 word
// (round-to-nearest-even conversion, the same rounding hardware f16
// units use). Wire size is half of f32, worst-case absolute error for
// normal values is 2^-11 relative (~4.9e-4), and values beyond ±65504
// saturate to ±Inf — gradients that large have already tripped the
// divergence guard.
type F16Codec struct{}

// Name implements Codec.
func (F16Codec) Name() string { return "f16" }

// WireLen implements Codec.
func (F16Codec) WireLen(n int) int { return (n + 1) / 2 }

// Encode implements Codec.
func (F16Codec) Encode(dst, src []float32) {
	n := len(src)
	for i := 0; i < n/2; i++ {
		lo := uint32(f16FromF32(src[2*i]))
		hi := uint32(f16FromF32(src[2*i+1]))
		dst[i] = math.Float32frombits(hi<<16 | lo)
	}
	if n%2 == 1 {
		dst[n/2] = math.Float32frombits(uint32(f16FromF32(src[n-1])))
	}
}

// Decode implements Codec.
func (F16Codec) Decode(dst, src []float32) {
	n := len(dst)
	for i := 0; i < n/2; i++ {
		w := math.Float32bits(src[i])
		dst[2*i] = f16ToF32(uint16(w))
		dst[2*i+1] = f16ToF32(uint16(w >> 16))
	}
	if n%2 == 1 {
		dst[n-1] = f16ToF32(uint16(math.Float32bits(src[n/2])))
	}
}

// f16FromF32 converts with round-to-nearest-even, producing the same
// bits as an IEEE-conformant hardware cvtps2ph. Subnormal halves are
// produced (not flushed): gradient tails live down there.
func f16FromF32(x float32) uint16 {
	b := math.Float32bits(x)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	man := b & 0x7fffff
	switch {
	case exp >= 31: // Inf, NaN, or overflow (saturates to Inf)
		if b&0x7fffffff > 0x7f800000 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp <= 0: // subnormal half or underflow to zero
		if exp < -10 {
			return sign
		}
		man |= 0x800000 // make the implicit bit explicit
		shift := uint32(14 - exp)
		q := man >> shift
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && q&1 == 1) {
			q++
		}
		return sign | uint16(q)
	}
	// Normal range: round the 23-bit mantissa to 10 bits; a rounding
	// carry propagates into the exponent by construction of the addition
	// (1023.5 rounds up to the next binade, 65504+ rounds to Inf).
	q := man >> 13
	rem := man & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && q&1 == 1) {
		q++
	}
	return sign | (uint16(exp)<<10 + uint16(q))
}

// f16ToF32 is the exact (lossless) widening conversion.
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal half: renormalize into the f32 format.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (man&0x3ff)<<13)
	case exp == 31:
		return math.Float32frombits(sign | 0x7f800000 | man<<13) // ±Inf / NaN
	}
	return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
}

// Int8GroupLen is the quantization group for Int8Codec: each run of this
// many source elements shares one max-abs scale. Smaller groups track
// the local gradient magnitude better (conv biases and the softmax rows
// live at very different scales); one word of scale per 256 elements
// costs 0.4% of the wire, keeping the compression ratio at ~3.9x.
const Int8GroupLen = 256

// Int8Codec quantizes each Int8GroupLen-element group to signed bytes
// against the group's max-abs scale: scale = maxabs/127, q =
// clamp(round(x/scale), -127, 127), four bytes packed per float32 word
// after one word carrying the scale itself. Rounding is half-away-from-
// zero, so q is an odd function of x and the codec cannot introduce a
// systematic sign bias. A group of all zeros encodes scale 0 and decodes
// to exact zeros.
type Int8Codec struct{}

// Name implements Codec.
func (Int8Codec) Name() string { return "int8" }

// WireLen implements Codec.
func (Int8Codec) WireLen(n int) int {
	w := 0
	for n > 0 {
		g := n
		if g > Int8GroupLen {
			g = Int8GroupLen
		}
		w += 1 + (g+3)/4
		n -= g
	}
	return w
}

// Encode implements Codec.
func (Int8Codec) Encode(dst, src []float32) {
	di := 0
	for len(src) > 0 {
		g := len(src)
		if g > Int8GroupLen {
			g = Int8GroupLen
		}
		grp := src[:g]
		var maxabs float32
		for _, v := range grp {
			if a := float32(math.Abs(float64(v))); a > maxabs {
				maxabs = a
			}
		}
		scale := maxabs / 127
		dst[di] = scale
		di++
		var inv float64
		if scale > 0 {
			inv = 1 / float64(scale)
		}
		for j := 0; j < g; j += 4 {
			var w uint32
			for b := 0; b < 4 && j+b < g; b++ {
				q := int32(math.Round(float64(grp[j+b]) * inv))
				if q > 127 {
					q = 127
				} else if q < -127 {
					q = -127
				}
				w |= uint32(uint8(int8(q))) << (8 * uint(b))
			}
			dst[di] = math.Float32frombits(w)
			di++
		}
		src = src[g:]
	}
}

// Decode implements Codec.
func (Int8Codec) Decode(dst, src []float32) {
	si := 0
	for len(dst) > 0 {
		g := len(dst)
		if g > Int8GroupLen {
			g = Int8GroupLen
		}
		scale := src[si]
		si++
		for j := 0; j < g; j += 4 {
			w := math.Float32bits(src[si])
			si++
			for b := 0; b < 4 && j+b < g; b++ {
				q := int8(uint8(w >> (8 * uint(b))))
				dst[j+b] = float32(q) * scale
			}
		}
		dst = dst[g:]
	}
}
